open Reseed_netlist
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Full-scan conversion --- *)

let sequential_src =
  {|# tiny Moore machine: two flip-flops and a little logic
INPUT(x)
OUTPUT(z)
q1 = DFF(d1)
q2 = DFF(d2)
d1 = AND(x, q2)
d2 = NOR(q1, x)
z = XOR(q1, q2)
|}

let test_full_scan_basic () =
  let c, dffs = Bench_io.parse_full_scan ~name:"moore" sequential_src in
  check_int "two flip-flops" 2 dffs;
  (* PIs: x + q1 + q2; POs: z + d1 + d2 *)
  check_int "inputs" 3 (Circuit.input_count c);
  check_int "outputs" 3 (Circuit.output_count c);
  Circuit.validate c

let test_full_scan_behaviour () =
  (* The core must compute the next-state logic combinationally. *)
  let c, _ = Bench_io.parse_full_scan ~name:"moore" sequential_src in
  let x = 1 and q1 = 1 and q2 = 0 in
  (* input order follows declaration order: x, then scan inputs q1, q2 *)
  let pattern = [| x = 1; q1 = 1; q2 = 1 |] in
  let out = Reseed_sim.Logic_sim.output_response c pattern in
  (* output order: z, d1, d2 *)
  check "z = q1 xor q2" true (out.(0) = (q1 <> q2));
  check "d1 = x and q2" true (out.(1) = (x = 1 && q2 = 1));
  check "d2 = nor(q1,x)" true (out.(2) = (q1 = 0 && x = 0))

let test_full_scan_rejected_by_parse () =
  check "plain parse rejects DFF" true
    (try
       ignore (Bench_io.parse ~name:"moore" sequential_src);
       false
     with Reseed_util.Error.Reseed_error _ -> true)

let test_full_scan_combinational_unchanged () =
  (* On a purely combinational source, full-scan parse = plain parse. *)
  let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n" in
  let c1 = Bench_io.parse ~name:"comb" src in
  let c2, dffs = Bench_io.parse_full_scan ~name:"comb" src in
  check_int "no dffs" 0 dffs;
  check "same text" true (Bench_io.to_string c1 = Bench_io.to_string c2)

let test_full_scan_flow_end_to_end () =
  (* The scan core feeds the ordinary reseeding flow. *)
  let c, _ = Bench_io.parse_full_scan ~name:"moore" sequential_src in
  let p = Reseed_core.Suite.prepare_circuit c in
  let tpg = Accumulator.adder (Circuit.input_count c) in
  let r =
    Reseed_core.Flow.run p.Reseed_core.Suite.sim tpg ~tests:p.Reseed_core.Suite.tests
      ~targets:p.Reseed_core.Suite.targets
  in
  check "coverage" true (r.Reseed_core.Flow.coverage_pct >= 100.0)

let test_full_scan_shared_state_net () =
  (* Two DFFs sampling the same data net: the pseudo-PO appears once. *)
  let src =
    "INPUT(x)\nOUTPUT(z)\nq1 = DFF(d)\nq2 = DFF(d)\nd = NOT(x)\nz = AND(q1, q2)\n"
  in
  let c, dffs = Bench_io.parse_full_scan ~name:"shared" src in
  check_int "two dffs" 2 dffs;
  check_int "outputs deduped" 2 (Circuit.output_count c)

(* --- MISR --- *)

let w4 = Word.of_int 4

let test_misr_step_known () =
  let misr = Misr.create ~width:4 ~taps:[ 3; 2 ] () in
  (* state 0b1000: shift out the 1 -> 0b0000 xor poly 0b1100 = 0b1100,
     then xor response 0b0011 = 0b1111 *)
  let next = Misr.step misr ~state:(w4 0b1000) ~response:(w4 0b0011) in
  check_int "known step" 0b1111 (Option.get (Word.to_int next));
  (* no carry: plain shift + response *)
  let next2 = Misr.step misr ~state:(w4 0b0010) ~response:(w4 0b0001) in
  check_int "no-carry step" 0b0101 (Option.get (Word.to_int next2))

let test_misr_signature_order_sensitive () =
  let misr = Misr.create ~width:8 () in
  let r1 = List.map (Word.of_int 8) [ 1; 2; 3 ] in
  let r2 = List.map (Word.of_int 8) [ 3; 2; 1 ] in
  check "order matters" false (Word.equal (Misr.signature misr r1) (Misr.signature misr r2))

let test_misr_detects_single_difference () =
  let misr = Misr.create ~width:8 () in
  let base = List.map (Word.of_int 8) [ 10; 20; 30; 40 ] in
  let tweaked = List.map (Word.of_int 8) [ 10; 21; 30; 40 ] in
  check "signature differs" false
    (Word.equal (Misr.signature misr base) (Misr.signature misr tweaked))

let test_misr_linear () =
  (* MISRs are linear: sig(a xor b) relative to zero stream = sig(a) xor
     sig(b) when starting from state 0. *)
  let misr = Misr.create ~width:8 () in
  let a = List.map (Word.of_int 8) [ 5; 9; 77 ] in
  let b = List.map (Word.of_int 8) [ 200; 3; 14 ] in
  let axb = List.map2 Word.logxor a b in
  check "linearity" true
    (Word.equal
       (Misr.signature misr axb)
       (Word.logxor (Misr.signature misr a) (Misr.signature misr b)))

let test_misr_of_bits () =
  let misr = Misr.create ~width:4 () in
  let responses = [| [| true; false; false; false |]; [| false; true; false; false |] |] in
  let s1 = Misr.signature_of_bits misr responses in
  let s2 = Misr.signature misr [ w4 1; w4 2 ] in
  check "bit interface agrees" true (Word.equal s1 s2)

let test_misr_validation () =
  check "width 1 rejected" true
    (try
       ignore (Misr.create ~width:1 ());
       false
     with Invalid_argument _ -> true);
  let misr = Misr.create ~width:4 () in
  check "width mismatch" true
    (try
       ignore (Misr.step misr ~state:(Word.zero 5) ~response:(Word.zero 4));
       false
     with Invalid_argument _ -> true);
  check "aliasing prob" true (abs_float (Misr.aliasing_probability misr -. 0.0625) < 1e-12)

(* --- weighted covering objective --- *)

let test_min_test_length_objective () =
  let p = Reseed_core.Suite.prepare_circuit (Library.ripple_adder 6) in
  let tpg = Accumulator.adder (Circuit.input_count (Library.ripple_adder 6)) in
  let open Reseed_core in
  let run objective =
    Flow.run
      ~config:{ Flow.default_config with Flow.objective }
      p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
  in
  let by_count = run Flow.Min_triplets in
  let by_length = run Flow.Min_test_length in
  check "both cover" true
    (by_count.Flow.coverage_pct >= 100.0 && by_length.Flow.coverage_pct >= 100.0);
  check "count objective minimal in count" true
    (Flow.reseedings by_count <= Flow.reseedings by_length);
  (* weighted objective never produces a longer estimated test *)
  check "length objective no worse in length" true
    (by_length.Flow.test_length <= by_count.Flow.test_length + 50)

let test_weighted_reduce_respects_weights () =
  (* equal rows, unequal weights: the cheap one must survive *)
  let open Reseed_setcover in
  let m =
    Matrix.of_rows ~cols:2
      [| Bitvec.of_list 2 [ 0; 1 ]; Bitvec.of_list 2 [ 0; 1 ] |]
  in
  let r = Reduce.run ~row_weights:[| 5.0; 1.0 |] m in
  check "expensive row dropped" true (r.Reduce.remaining_rows = [ 1 ] || r.Reduce.necessary = [ 1 ])

let test_weighted_solution_cost () =
  let open Reseed_setcover in
  (* row 0 covers everything at cost 10; rows 1-2 cover it at 2+2 *)
  let m =
    Matrix.of_rows ~cols:2
      [|
        Bitvec.of_list 2 [ 0; 1 ]; Bitvec.of_list 2 [ 0 ]; Bitvec.of_list 2 [ 1 ];
      |]
  in
  let sol = Solution.solve ~row_weights:[| 10.; 2.; 2. |] m in
  check "weighted pick" true (List.sort compare sol.Solution.rows = [ 1; 2 ])

let suite =
  [
    ( "fullscan+misr+weighted",
      [
        Alcotest.test_case "full-scan conversion" `Quick test_full_scan_basic;
        Alcotest.test_case "scan core behaviour" `Quick test_full_scan_behaviour;
        Alcotest.test_case "plain parse rejects DFF" `Quick test_full_scan_rejected_by_parse;
        Alcotest.test_case "combinational unchanged" `Quick test_full_scan_combinational_unchanged;
        Alcotest.test_case "scan core through the flow" `Quick test_full_scan_flow_end_to_end;
        Alcotest.test_case "shared state net deduped" `Quick test_full_scan_shared_state_net;
        Alcotest.test_case "misr known step" `Quick test_misr_step_known;
        Alcotest.test_case "misr order sensitivity" `Quick test_misr_signature_order_sensitive;
        Alcotest.test_case "misr detects difference" `Quick test_misr_detects_single_difference;
        Alcotest.test_case "misr linearity" `Quick test_misr_linear;
        Alcotest.test_case "misr bit interface" `Quick test_misr_of_bits;
        Alcotest.test_case "misr validation" `Quick test_misr_validation;
        Alcotest.test_case "min-test-length objective" `Slow test_min_test_length_objective;
        Alcotest.test_case "weighted reduce" `Quick test_weighted_reduce_respects_weights;
        Alcotest.test_case "weighted solution cost" `Quick test_weighted_solution_cost;
      ] );
  ]
