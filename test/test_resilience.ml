(* Anytime-flow resilience: deadlines and cancellation degrade gracefully,
   checkpointed matrix builds resume bit-identically (even past truncated
   or stale chunk files), and pool worker failures surface structured
   errors instead of hanging or killing the pool. *)

open Reseed_core
open Reseed_gatsby
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prepared_c17 = lazy (Suite.prepare "c17")

let mk_matrix ~cols rows =
  Matrix.of_rows ~cols (Array.of_list (List.map (Bitvec.of_list cols) rows))

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reseed-resilience-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* --- budgets --- *)

let test_budget_latch () =
  let b = Budget.create () in
  check "live" false (Budget.expired b);
  check "check None" false (Budget.check None);
  Budget.cancel b;
  check "cancelled" true (Budget.expired b);
  check "reason" true (Budget.stop_reason b = Some Budget.Cancelled);
  let d = Budget.create ~deadline_s:(-1.0) () in
  check "past deadline" true (Budget.expired d);
  check "deadline reason" true (Budget.stop_reason d = Some Budget.Deadline);
  (* Cancel wins even after a deadline trip is possible. *)
  let e = Budget.create ~deadline_s:(-1.0) () in
  Budget.cancel e;
  check "cancel precedence" true (Budget.stop_reason e = Some Budget.Cancelled)

let test_ilp_expired_budget_returns_incumbent () =
  (* 6x6 diagonal-ish instance: solvable, but the budget is already dead,
     so the solver must hand back its greedy incumbent immediately. *)
  let m =
    mk_matrix ~cols:6
      [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ]; [ 0; 5 ]; [ 1; 4 ]; [ 2; 5 ] ]
  in
  let budget = Budget.create ~deadline_s:0.0 () in
  let r = Ilp.solve ~budget m in
  check "not optimal" false r.Ilp.optimal;
  check "stop reason" true (r.Ilp.stop_reason = Ilp.Budget Budget.Deadline);
  check "incumbent covers" true (Matrix.covers m ~rows_subset:r.Ilp.selected);
  (* Same instance unconstrained is solved to optimality. *)
  let full = Ilp.solve m in
  check "unconstrained optimal" true full.Ilp.optimal;
  check "unconstrained complete" true (full.Ilp.stop_reason = Ilp.Complete);
  check "incumbent no better than optimum" true
    (List.length full.Ilp.selected <= List.length r.Ilp.selected)

let test_solution_records_degradation () =
  let m = mk_matrix ~cols:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
  let budget = Budget.create ~deadline_s:0.0 () in
  (* Reduction alone can finish this instance; disable it so the solver
     actually sees the budget. *)
  let s = Solution.solve ~method_:Solution.No_reduction_exact ~budget m in
  check "valid cover" true (Solution.verify m s);
  check "degraded recorded" true s.Solution.stats.Solution.degraded;
  check "solver not optimal" false s.Solution.stats.Solution.solver_optimal;
  let live = Solution.solve ~method_:Solution.No_reduction_exact m in
  check "live not degraded" false live.Solution.stats.Solution.degraded

let test_ga_budget_stops_after_initial_cohort () =
  let problem =
    {
      Ga.init = (fun rng -> Rng.int rng 1000);
      fitness = (fun g -> float_of_int g);
      crossover = (fun _ a b -> max a b);
      mutate = (fun rng g -> g + Rng.int rng 3);
    }
  in
  let budget = Budget.create () in
  Budget.cancel budget;
  let config = { Ga.default_config with Ga.population = 8; generations = 50 } in
  let o = Ga.optimize ~config ~budget ~rng:(Rng.create 7) problem in
  check "stopped early" true o.Ga.stopped_early;
  check_int "only the initial cohort evaluated" 8 o.Ga.evaluations

let test_builder_cancelled_budget_skips_all_rows () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let budget = Budget.create () in
  Budget.cancel budget;
  let b =
    Builder.build ~budget p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~config:Builder.default_config
  in
  check_int "all rows skipped" (Array.length p.Suite.tests) b.Builder.rows_skipped;
  check "matrix rows empty" true
    (Array.for_all
       (fun i -> Bitvec.is_empty (Matrix.row b.Builder.matrix i))
       (Array.init (Matrix.rows b.Builder.matrix) Fun.id));
  (* The degraded matrix still flows through the covering pipeline. *)
  let s = Solution.solve b.Builder.matrix in
  check "solvable" true (Solution.verify b.Builder.matrix s)

let test_flow_degraded_result_is_sound () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let budget = Budget.create () in
  Budget.cancel budget;
  let r = Flow.run ~budget p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  check "degraded" true r.Flow.degraded;
  check "stop reason" true (r.Flow.stop_reason = Some Budget.Cancelled);
  check "coverage honest" true (r.Flow.coverage_pct < 100.0);
  check "no phantom triplets" true (List.length r.Flow.final_triplets = 0)

(* --- checkpoint/resume --- *)

let build_ck p tpg ?budget ?checkpoint () =
  Builder.build ?budget ?checkpoint p.Suite.sim tpg ~tests:p.Suite.tests
    ~targets:p.Suite.targets ~config:Builder.default_config

let matrices_equal a b =
  Matrix.rows a = Matrix.rows b
  && Matrix.cols a = Matrix.cols b
  && Array.for_all
       (fun i -> Bitvec.equal (Matrix.row a i) (Matrix.row b i))
       (Array.init (Matrix.rows a) Fun.id)

let test_checkpoint_roundtrip_bit_identical () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let reference = build_ck p tpg () in
  with_temp_dir (fun dir ->
      let first = build_ck p tpg ~checkpoint:dir () in
      check_int "nothing restored on first run" 0 first.Builder.rows_restored;
      check "first run matches plain build" true
        (matrices_equal reference.Builder.matrix first.Builder.matrix);
      let resumed = build_ck p tpg ~checkpoint:dir () in
      check_int "full restore"
        (Array.length p.Suite.tests)
        resumed.Builder.rows_restored;
      check "resumed matrix bit-identical" true
        (matrices_equal reference.Builder.matrix resumed.Builder.matrix);
      check "useful cycles restored" true
        (reference.Builder.useful_cycles = resumed.Builder.useful_cycles))

let test_checkpoint_truncated_chunk_is_resimulated () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let reference = build_ck p tpg () in
  with_temp_dir (fun dir ->
      ignore (build_ck p tpg ~checkpoint:dir ());
      (* Kill mid-write: truncate the first chunk inside a row record. *)
      let chunk =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> Filename.check_suffix n ".ck")
        |> List.sort compare |> List.hd |> Filename.concat dir
      in
      let size = (Unix.stat chunk).Unix.st_size in
      let fd = Unix.openfile chunk [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size / 2);
      Unix.close fd;
      let resumed = build_ck p tpg ~checkpoint:dir () in
      (* c17 fits in one chunk, so truncation can drop everything; what
         matters is that the damaged chunk is not trusted. *)
      check "truncated chunk dropped" true
        (resumed.Builder.rows_restored < Array.length p.Suite.tests);
      check "matrix still bit-identical" true
        (matrices_equal reference.Builder.matrix resumed.Builder.matrix))

let test_checkpoint_corrupt_payload_is_resimulated () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let reference = build_ck p tpg () in
  with_temp_dir (fun dir ->
      ignore (build_ck p tpg ~checkpoint:dir ());
      let chunk =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> Filename.check_suffix n ".ck")
        |> List.sort compare |> List.hd |> Filename.concat dir
      in
      (* Flip one payload byte: the checksum must catch it. *)
      let fd = Unix.openfile chunk [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 45 Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      ignore (Unix.lseek fd 45 Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let resumed = build_ck p tpg ~checkpoint:dir () in
      check "corrupt chunk dropped" true
        (resumed.Builder.rows_restored < Array.length p.Suite.tests);
      check "matrix still bit-identical" true
        (matrices_equal reference.Builder.matrix resumed.Builder.matrix))

let test_checkpoint_fingerprint_mismatch_resets () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  with_temp_dir (fun dir ->
      ignore (build_ck p tpg ~checkpoint:dir ());
      (* Different evolution length → different matrix → the stale chunks
         must be wiped, not restored. *)
      let other_config = { Builder.default_config with Builder.cycles = 40 } in
      let other =
        Builder.build ~checkpoint:dir p.Suite.sim tpg ~tests:p.Suite.tests
          ~targets:p.Suite.targets ~config:other_config
      in
      check_int "stale chunks not restored" 0 other.Builder.rows_restored;
      let reference =
        Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
          ~config:other_config
      in
      check "fresh matrix correct" true
        (matrices_equal reference.Builder.matrix other.Builder.matrix))

let test_checkpoint_interrupted_build_resumes_bit_identically () =
  (* Cancel the budget part-way through a checkpointed build (after the
     first chunk, via a budget that a worker trips), then resume without
     a budget: D and the final solution must match an uninterrupted run. *)
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let reference = build_ck p tpg () in
  let ref_solution = Solution.solve reference.Builder.matrix in
  with_temp_dir (fun dir ->
      let budget = Budget.create () in
      Budget.cancel budget;
      let partial = build_ck p tpg ~budget ~checkpoint:dir () in
      check "interrupted run incomplete" true (partial.Builder.rows_skipped > 0);
      let resumed = build_ck p tpg ~checkpoint:dir () in
      check_int "no rows skipped after resume" 0 resumed.Builder.rows_skipped;
      check "resumed D bit-identical" true
        (matrices_equal reference.Builder.matrix resumed.Builder.matrix);
      let resumed_solution = Solution.solve resumed.Builder.matrix in
      check "identical solution rows" true
        (ref_solution.Solution.rows = resumed_solution.Solution.rows))

(* --- pool failure containment --- *)

let test_pool_task_error_context () =
  Pool.with_pool ~jobs:3 (fun pool ->
      match
        Pool.parallel_for ~pool ~chunk:4 ~label:"resilience probe" ~total:20
          (fun ~worker:_ ~lo ~hi:_ -> if lo = 8 then invalid_arg "injected")
      with
      | () -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error { label; lo; hi; attempts; exn; _ } ->
          check "label" true (label = "resilience probe");
          check_int "chunk lo" 8 lo;
          check_int "chunk hi" 12 hi;
          check_int "attempted twice" 2 attempts;
          check "underlying exn" true (exn = Invalid_argument "injected"))

let test_pool_transient_failure_retried () =
  (* Fails the first attempt of one chunk only; the retry must succeed and
     the overall region complete with correct results. *)
  let attempts = Array.init 32 (fun _ -> Atomic.make 0) in
  let out = Array.make 32 0 in
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.parallel_for ~pool ~chunk:1 ~label:"transient" ~total:32
        (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            if i = 13 && Atomic.fetch_and_add attempts.(i) 1 = 0 then
              failwith "transient glitch";
            out.(i) <- i * 3
          done));
  check "result correct" true (out = Array.init 32 (fun i -> i * 3));
  check_int "failed chunk ran twice" 2 (Atomic.get attempts.(13))

let test_pool_inline_jobs_one_retries_too () =
  let tries = Atomic.make 0 in
  Pool.with_pool ~jobs:1 (fun pool ->
      Pool.parallel_for ~pool ~total:4 (fun ~worker:_ ~lo ~hi:_ ->
          if lo = 0 && Atomic.fetch_and_add tries 1 = 0 then failwith "once"))

(* --- parser diagnostics --- *)

let expect_error f =
  match f () with
  | _ -> Alcotest.fail "expected Reseed_error"
  | exception Error.Reseed_error e -> e

let test_bench_io_error_coordinates () =
  let e =
    expect_error (fun () ->
        Bench_io.parse ~file:"x.bench" ~name:"x" "INPUT(a)\nOUTPUT(y)\ny = NOT(q)\n")
  in
  check "input code" true (e.Error.code = Error.Input_error);
  check "file recorded" true (e.Error.file = Some "x.bench");
  check "line of the bad reference" true (e.Error.line = Some 3);
  let loop =
    expect_error (fun () ->
        Bench_io.parse ~name:"l" "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n")
  in
  check "loop has a line" true (loop.Error.line <> None);
  let rendered = Error.to_string e in
  check "rendered coordinates" true
    (String.length rendered > String.length "x.bench:3:"
    && String.sub rendered 0 10 = "x.bench:3:")

let test_bench_io_bad_syntax_line () =
  let e =
    expect_error (fun () ->
        Bench_io.parse ~name:"s" "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n")
  in
  check_int "syntax error line"
    3
    (match e.Error.line with Some l -> l | None -> -1)

let test_unknown_circuit_error () =
  let e = expect_error (fun () -> Library.load "z9999") in
  check "input code" true (e.Error.code = Error.Input_error);
  check "names listed" true
    (let m = e.Error.message in
     let has_sub needle =
       let nl = String.length needle and ml = String.length m in
       let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
       go 0
     in
     has_sub "c432" && has_sub "z9999")

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "budget latch + precedence" `Quick test_budget_latch;
        Alcotest.test_case "ilp: expired budget → incumbent" `Quick
          test_ilp_expired_budget_returns_incumbent;
        Alcotest.test_case "solution: degradation recorded" `Quick
          test_solution_records_degradation;
        Alcotest.test_case "ga: budget stops after first cohort" `Quick
          test_ga_budget_stops_after_initial_cohort;
        Alcotest.test_case "builder: cancelled budget skips rows" `Quick
          test_builder_cancelled_budget_skips_all_rows;
        Alcotest.test_case "flow: degraded result is sound" `Quick
          test_flow_degraded_result_is_sound;
        Alcotest.test_case "checkpoint: roundtrip bit-identical" `Quick
          test_checkpoint_roundtrip_bit_identical;
        Alcotest.test_case "checkpoint: truncated chunk re-simulated" `Quick
          test_checkpoint_truncated_chunk_is_resimulated;
        Alcotest.test_case "checkpoint: corrupt payload re-simulated" `Quick
          test_checkpoint_corrupt_payload_is_resimulated;
        Alcotest.test_case "checkpoint: fingerprint mismatch resets" `Quick
          test_checkpoint_fingerprint_mismatch_resets;
        Alcotest.test_case "checkpoint: interrupt + resume = uninterrupted" `Quick
          test_checkpoint_interrupted_build_resumes_bit_identically;
        Alcotest.test_case "pool: task error carries context" `Quick
          test_pool_task_error_context;
        Alcotest.test_case "pool: transient failure retried once" `Quick
          test_pool_transient_failure_retried;
        Alcotest.test_case "pool: inline path retries too" `Quick
          test_pool_inline_jobs_one_retries_too;
        Alcotest.test_case "bench_io: file:line diagnostics" `Quick
          test_bench_io_error_coordinates;
        Alcotest.test_case "bench_io: syntax error line" `Quick
          test_bench_io_bad_syntax_line;
        Alcotest.test_case "library: unknown circuit lists catalog" `Quick
          test_unknown_circuit_error;
      ] );
  ]
