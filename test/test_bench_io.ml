open Reseed_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {|# comment line
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)   # trailing comment
|}

let test_parse_simple () =
  let c = Bench_io.parse ~name:"t" sample in
  check_int "inputs" 2 (Circuit.input_count c);
  check_int "outputs" 1 (Circuit.output_count c);
  check_int "gates" 1 (Circuit.gate_count c);
  Circuit.validate c

let test_parse_out_of_order () =
  (* definitions may reference nets defined later in the file *)
  let src = "INPUT(a)\nOUTPUT(z)\nz = NOT(m)\nm = BUF(a)\n" in
  let c = Bench_io.parse ~name:"ooo" src in
  check_int "gates" 2 (Circuit.gate_count c);
  Circuit.validate c

let test_parse_c17 () =
  let c = Library.c17 () in
  check_int "c17 inputs" 5 (Circuit.input_count c);
  check_int "c17 outputs" 2 (Circuit.output_count c);
  check_int "c17 gates" 6 (Circuit.gate_count c);
  check_int "c17 depth" 3 (Circuit.max_level c)

let expect_parse_error src =
  try
    ignore (Bench_io.parse ~name:"bad" src);
    false
  with Reseed_util.Error.Reseed_error e ->
    e.Reseed_util.Error.code = Reseed_util.Error.Input_error

let test_errors () =
  check "undefined net" true (expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = NOT(q)\n");
  check "loop" true
    (expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n");
  check "dff rejected" true
    (expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n");
  check "double definition" true
    (expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n");
  check "input also defined" true
    (expect_parse_error "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n");
  check "unknown gate" true
    (expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
  check "missing paren" true (expect_parse_error "INPUT(a\n");
  check "unknown decl" true (expect_parse_error "WIBBLE(a)\n");
  check "double OUTPUT" true
    (expect_parse_error "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n")

let test_roundtrip () =
  let c = Library.c17 () in
  let c2 = Bench_io.parse ~name:"c17" (Bench_io.to_string c) in
  check_int "same inputs" (Circuit.input_count c) (Circuit.input_count c2);
  check_int "same gates" (Circuit.gate_count c) (Circuit.gate_count c2);
  (* behavioural equivalence on all 32 input patterns *)
  let same = ref true in
  for p = 0 to 31 do
    let pat = Array.init 5 (fun i -> p lsr i land 1 = 1) in
    if
      Reseed_sim.Logic_sim.output_response c pat
      <> Reseed_sim.Logic_sim.output_response c2 pat
    then same := false
  done;
  check "responses equal" true !same

let test_roundtrip_generated () =
  let spec = Generator.default_spec "rt" ~inputs:12 ~outputs:4 ~gates:80 in
  let c = Generator.generate spec in
  let c2 = Bench_io.parse ~name:"rt" (Bench_io.to_string c) in
  check_int "same node count" (Circuit.node_count c) (Circuit.node_count c2);
  let rng = Reseed_util.Rng.create 1 in
  let same = ref true in
  for _ = 1 to 64 do
    let pat = Array.init 12 (fun _ -> Reseed_util.Rng.bool rng) in
    if
      Reseed_sim.Logic_sim.output_response c pat
      <> Reseed_sim.Logic_sim.output_response c2 pat
    then same := false
  done;
  check "generated roundtrip equal" true !same

let test_file_io () =
  let path = Filename.temp_file "reseed_test" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_io.write_file path (Library.c17 ());
      let c = Bench_io.parse_file path in
      check_int "parsed gates" 6 (Circuit.gate_count c))

let suite =
  [
    ( "bench_io",
      [
        Alcotest.test_case "parse simple" `Quick test_parse_simple;
        Alcotest.test_case "parse out-of-order defs" `Quick test_parse_out_of_order;
        Alcotest.test_case "parse embedded c17" `Quick test_parse_c17;
        Alcotest.test_case "malformed inputs rejected" `Quick test_errors;
        Alcotest.test_case "c17 write/parse roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "generated circuit roundtrip" `Quick test_roundtrip_generated;
        Alcotest.test_case "file io" `Quick test_file_io;
      ] );
  ]
