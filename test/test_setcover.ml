open Reseed_setcover
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build a matrix from a list of rows given as column-index lists. *)
let matrix_of cols rows =
  Matrix.of_rows ~cols (Array.of_list (List.map (Bitvec.of_list cols) rows))

(* Brute-force minimum cover cardinality by enumerating all row subsets. *)
let brute_force_optimum m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let coverable = Bitvec.create cols in
  for j = 0 to cols - 1 do
    if not (Bitvec.is_empty (Matrix.col m j)) then Bitvec.set coverable j
  done;
  let best = ref max_int in
  for mask = 0 to (1 lsl rows) - 1 do
    let u = Bitvec.create cols in
    let size = ref 0 in
    for i = 0 to rows - 1 do
      if mask lsr i land 1 = 1 then begin
        incr size;
        Bitvec.union_into ~into:u (Matrix.row m i)
      end
    done;
    if Bitvec.subset coverable u && !size < !best then best := !size
  done;
  !best

let random_instance rng =
  let rows = 3 + Rng.int rng 8 in
  let cols = 3 + Rng.int rng 10 in
  let m = Matrix.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Rng.int rng 100 < 35 then Matrix.set m ~row:i ~col:j
    done
  done;
  (* ensure feasibility: a final row covering everything missing *)
  m

(* --- Matrix --- *)

let test_matrix_basics () =
  let m = matrix_of 4 [ [ 0; 1 ]; [ 2 ]; [ 1; 3 ] ] in
  check_int "rows" 3 (Matrix.rows m);
  check_int "cols" 4 (Matrix.cols m);
  check "get" true (Matrix.get m ~row:0 ~col:1);
  check "get false" false (Matrix.get m ~row:1 ~col:1);
  check_int "ones" 5 (Matrix.ones m);
  check "row view" true (Bitvec.to_list (Matrix.row m 2) = [ 1; 3 ]);
  check "col view" true (Bitvec.to_list (Matrix.col m 1) = [ 0; 2 ]);
  check "covers all" true (Matrix.covers m ~rows_subset:[ 0; 1; 2 ]);
  check "partial doesn't" false (Matrix.covers m ~rows_subset:[ 0; 1 ]);
  check "density" true (abs_float (Matrix.density m -. (5. /. 12.)) < 1e-9)

let test_matrix_uncoverable () =
  let m = matrix_of 3 [ [ 0 ]; [ 0; 2 ] ] in
  check "col 1 uncoverable" true (Matrix.uncoverable m = [ 1 ])

let test_matrix_set_syncs_views () =
  let m = Matrix.create ~rows:2 ~cols:2 in
  Matrix.set m ~row:1 ~col:0;
  check "row view" true (Bitvec.get (Matrix.row m 1) 0);
  check "col view" true (Bitvec.get (Matrix.col m 0) 1)

(* --- Reduce --- *)

let test_essential_detection () =
  (* col 2 covered only by row 1 → row 1 necessary *)
  let m = matrix_of 3 [ [ 0 ]; [ 1; 2 ]; [ 0; 1 ] ] in
  let r = Reduce.run m in
  check "row1 necessary" true (List.mem 1 r.Reduce.necessary)

let test_row_dominance () =
  (* row 0 ⊂ row 1 → row 0 dropped *)
  let m = matrix_of 3 [ [ 0 ]; [ 0; 1 ]; [ 2 ] ] in
  let r =
    Reduce.run ~config:{ Reduce.default_config with Reduce.essentials = false; row_dominance = true; col_dominance = false } m
  in
  check "row 0 dominated" true (not (List.mem 0 r.Reduce.remaining_rows));
  check_int "one dominated" 1 r.Reduce.rows_dominated

let test_equal_rows_keep_one () =
  let m = matrix_of 2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  let r =
    Reduce.run ~config:{ Reduce.default_config with Reduce.essentials = false; row_dominance = true; col_dominance = false } m
  in
  check_int "exactly one row survives" 1 (List.length r.Reduce.remaining_rows)

let test_col_dominance () =
  (* rows(col0) = {0} ⊆ rows(col1) = {0,1} → col 1 removed *)
  let m = matrix_of 2 [ [ 0; 1 ]; [ 1 ] ] in
  let r =
    Reduce.run ~config:{ Reduce.default_config with Reduce.essentials = false; row_dominance = false; col_dominance = true } m
  in
  check "col 1 dropped" true (not (List.mem 1 r.Reduce.remaining_cols));
  check "col 0 kept" true (List.mem 0 r.Reduce.remaining_cols)

let test_reduction_fixpoint_solves_simple () =
  (* A chain where essentials cascade to a complete solution. *)
  let m = matrix_of 4 [ [ 0; 1 ]; [ 2 ]; [ 3 ] ] in
  let r = Reduce.run m in
  check "solved by essentials" true (r.Reduce.remaining_cols = []);
  check_int "three necessary" 3 (List.length r.Reduce.necessary)

let test_residual_maps () =
  let m = matrix_of 5 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 0 ] ] in
  let r = Reduce.run ~config:{ Reduce.default_config with Reduce.col_dominance = false } m in
  let sub, row_map, col_map = Reduce.residual m r in
  check_int "rows match" (List.length r.Reduce.remaining_rows) (Matrix.rows sub);
  check_int "cols match" (List.length r.Reduce.remaining_cols) (Matrix.cols sub);
  (* every cell of the residual matches the original through the maps *)
  for i = 0 to Matrix.rows sub - 1 do
    for j = 0 to Matrix.cols sub - 1 do
      if Matrix.get sub ~row:i ~col:j <> Matrix.get m ~row:row_map.(i) ~col:col_map.(j)
      then Alcotest.fail "residual cell mismatch"
    done
  done

(* Reduction must never change the optimal cover cardinality. *)
let prop_reduction_preserves_optimum =
  QCheck.Test.make ~name:"reduction preserves optimum" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let m = random_instance rng in
      let opt = brute_force_optimum m in
      let sol = Solution.solve m in
      Solution.verify m sol && Solution.cardinality sol = opt)

(* --- Greedy --- *)

let test_greedy_covers () =
  let m = matrix_of 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
  let picks = Greedy.solve m in
  check "covers" true (Matrix.covers m ~rows_subset:picks)

(* Regression: Greedy used to ignore [row_weights] entirely, silently
   minimising cardinality whatever the objective.  The weighted picker
   must rank by cost-effectiveness (gain per unit weight), so the
   expensive all-covering row loses to three cheap singletons. *)
let test_greedy_weighted_regression () =
  let m = matrix_of 3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1; 2 ] ] in
  let unweighted = Greedy.solve m in
  check "cardinality greedy takes the big row" true (unweighted = [ 3 ]);
  let weighted = Greedy.solve_weighted ~weights:[| 1.; 1.; 1.; 10. |] m in
  check "weighted greedy avoids it" true
    (List.sort compare weighted = [ 0; 1; 2 ]);
  check "weighted cost" true
    (abs_float (Greedy.cost ~weights:[| 1.; 1.; 1.; 10. |] weighted -. 3.) < 1e-9);
  check "bad weights rejected" true
    (try
       ignore (Greedy.solve_weighted ~weights:[| 1.; 1. |] m);
       false
     with Invalid_argument _ -> true)

(* Without weights, [solve_weighted] delegates to the original picker:
   identical picks in identical order on any instance. *)
let test_greedy_unweighted_unchanged () =
  let rng = Rng.create 31 in
  for _ = 1 to 20 do
    let m = random_instance rng in
    if Greedy.solve_weighted m <> Greedy.solve m then
      Alcotest.fail "solve_weighted without weights diverged from solve"
  done

(* Weighted greedy is a valid upper bound for the weighted exact solver:
   it covers, and never costs less than the optimum. *)
let prop_weighted_greedy_bounds_ilp =
  QCheck.Test.make ~name:"weighted greedy cost >= ILP cost" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 2000) in
      let m = random_instance rng in
      let weights =
        Array.init (Matrix.rows m) (fun _ -> 1. +. float_of_int (Rng.int rng 9))
      in
      let picks = Greedy.solve_weighted ~weights m in
      let r = Ilp.solve ~weights m in
      Matrix.covers m ~rows_subset:picks
      && (not r.Ilp.optimal || Greedy.cost ~weights picks >= r.Ilp.cost -. 1e-9))

let test_greedy_suboptimal_instance () =
  (* classic instance where greedy takes 3 rows but optimum is 2 *)
  let m =
    matrix_of 8
      [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 0; 1; 4; 5; 2 ] ]
  in
  let greedy = Greedy.solve m in
  check "greedy covers" true (Matrix.covers m ~rows_subset:greedy);
  let exact = Ilp.solve m in
  check "exact finds 2" true (List.length exact.Ilp.selected = 2)

(* --- Ilp --- *)

let test_ilp_simple () =
  let m = matrix_of 3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1; 2 ] ] in
  let r = Ilp.solve m in
  check "optimal" true r.Ilp.optimal;
  check "picks the covering row" true (r.Ilp.selected = [ 3 ])

let test_ilp_weighted () =
  (* the all-covering row is expensive: prefer three cheap singletons *)
  let m = matrix_of 3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1; 2 ] ] in
  let r = Ilp.solve ~weights:[| 1.; 1.; 1.; 10. |] m in
  check "avoids expensive row" true (r.Ilp.selected = [ 0; 1; 2 ]);
  check "cost 3" true (abs_float (r.Ilp.cost -. 3.) < 1e-9)

let test_ilp_infeasible () =
  (* Column 1 is coverable by no row: the exact solver must cover the
     rest and report it instead of raising, matching Greedy.solve. *)
  let m = matrix_of 2 [ [ 0 ] ] in
  let r = Ilp.solve m in
  check "uncovered reported" true (r.Ilp.uncovered = [ 1 ]);
  check "coverable part solved" true (r.Ilp.selected = [ 0 ]);
  check "still optimal" true r.Ilp.optimal;
  (* A fully uncoverable instance selects nothing. *)
  let empty = matrix_of 2 [] in
  let r2 = Ilp.solve empty in
  check "all uncovered" true (r2.Ilp.uncovered = [ 0; 1 ]);
  check "nothing selected" true (r2.Ilp.selected = [])

let test_ilp_bad_weights () =
  let m = matrix_of 1 [ [ 0 ] ] in
  check "negative weight rejected" true
    (try
       ignore (Ilp.solve ~weights:[| -1. |] m);
       false
     with Invalid_argument _ -> true);
  check "weight count" true
    (try
       ignore (Ilp.solve ~weights:[| 1.; 1. |] m);
       false
     with Invalid_argument _ -> true)

let prop_ilp_matches_brute_force =
  QCheck.Test.make ~name:"ILP = brute force optimum" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 1000) in
      let m = random_instance rng in
      let opt = brute_force_optimum m in
      if opt = max_int then true
      else begin
        (* drop uncoverable columns like the full pipeline would *)
        let sol = Solution.solve m in
        Solution.verify m sol && Solution.cardinality sol = opt
      end)

(* --- Solution pipeline --- *)

let test_solution_methods_agree_on_coverage () =
  let rng = Rng.create 99 in
  for _ = 1 to 10 do
    let m = random_instance rng in
    List.iter
      (fun method_ ->
        let sol = Solution.solve ~method_ m in
        if not (Solution.verify m sol) then Alcotest.fail "solution doesn't cover")
      [ Solution.Exact; Solution.Greedy_only; Solution.No_reduction_exact ]
  done

let test_solution_exact_beats_greedy () =
  let rng = Rng.create 123 in
  for _ = 1 to 10 do
    let m = random_instance rng in
    let e = Solution.solve ~method_:Solution.Exact m in
    let g = Solution.solve ~method_:Solution.Greedy_only m in
    if Solution.cardinality e > Solution.cardinality g then
      Alcotest.fail "exact worse than greedy"
  done

(* Regression: the Exact path used to drop [Ilp.result.uncovered] on the
   floor — a matrix carrying undetectable faults solved "cleanly" with
   no trace of the columns nothing can cover.  Every method must now
   surface them in [stats.uncovered]. *)
let test_solution_uncovered_surfaced () =
  let m = matrix_of 3 [ [ 0 ]; [ 0; 2 ] ] in
  List.iter
    (fun method_ ->
      let sol = Solution.solve ~method_ m in
      Alcotest.(check (list int))
        ("uncovered via " ^ Solution.method_name method_)
        [ 1 ] sol.Solution.stats.Solution.uncovered)
    [
      Solution.Exact;
      Solution.Greedy_only;
      Solution.No_reduction_exact;
      Solution.Portfolio_race;
    ];
  let feasible = matrix_of 2 [ [ 0 ]; [ 1 ] ] in
  let sol = Solution.solve feasible in
  check "feasible instance: empty" true (sol.Solution.stats.Solution.uncovered = [])

let test_solution_stats_consistent () =
  let m = matrix_of 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
  let sol = Solution.solve m in
  let s = sol.Solution.stats in
  check_int "initial rows" 4 s.Solution.initial_rows;
  check_int "initial cols" 4 s.Solution.initial_cols;
  check "solution = necessary + solver" true
    (List.sort_uniq compare sol.Solution.rows
    = List.sort_uniq compare (s.Solution.necessary @ s.Solution.from_solver))

let suite =
  [
    ( "setcover",
      [
        Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
        Alcotest.test_case "matrix uncoverable" `Quick test_matrix_uncoverable;
        Alcotest.test_case "matrix views in sync" `Quick test_matrix_set_syncs_views;
        Alcotest.test_case "essentiality" `Quick test_essential_detection;
        Alcotest.test_case "row dominance" `Quick test_row_dominance;
        Alcotest.test_case "equal rows keep one" `Quick test_equal_rows_keep_one;
        Alcotest.test_case "column dominance" `Quick test_col_dominance;
        Alcotest.test_case "essentials cascade" `Quick test_reduction_fixpoint_solves_simple;
        Alcotest.test_case "residual maps correct" `Quick test_residual_maps;
        Alcotest.test_case "greedy covers" `Quick test_greedy_covers;
        Alcotest.test_case "greedy honours weights" `Quick test_greedy_weighted_regression;
        Alcotest.test_case "unweighted greedy unchanged" `Quick test_greedy_unweighted_unchanged;
        Alcotest.test_case "greedy vs exact gap" `Quick test_greedy_suboptimal_instance;
        Alcotest.test_case "ilp simple" `Quick test_ilp_simple;
        Alcotest.test_case "ilp weighted" `Quick test_ilp_weighted;
        Alcotest.test_case "ilp infeasible" `Quick test_ilp_infeasible;
        Alcotest.test_case "ilp bad weights" `Quick test_ilp_bad_weights;
        Alcotest.test_case "methods all cover" `Quick test_solution_methods_agree_on_coverage;
        Alcotest.test_case "exact never worse than greedy" `Quick test_solution_exact_beats_greedy;
        Alcotest.test_case "stats consistent" `Quick test_solution_stats_consistent;
        Alcotest.test_case "uncovered surfaced" `Quick test_solution_uncovered_surfaced;
        QCheck_alcotest.to_alcotest prop_reduction_preserves_optimum;
        QCheck_alcotest.to_alcotest prop_weighted_greedy_bounds_ilp;
        QCheck_alcotest.to_alcotest prop_ilp_matches_brute_force;
      ] );
  ]
