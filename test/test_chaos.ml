(* Fault injection and crash consistency: the chaos spec grammar, the
   deterministic injection schedule, the shared retry policy, and the
   end-to-end guarantee that any single injected fault either heals,
   degrades to a cache miss, or surfaces as a documented diagnostic —
   never as a silently wrong answer. *)

open Reseed_core
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Force the modules that register catalog faultpoints to be linked (a
   library member with no other reference would never run its
   initialiser, silently shrinking the catalog). *)
let touch_registrars () =
  ignore Checkpoint.chunk_rows;
  ignore (Batch.parse_string "job c17 adder 10");
  ignore (Bench_io.parse ~name:"t" "INPUT(a)\nOUTPUT(o)\no = NOT(a)\n")

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reseed-chaos-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Artifact.mkdir_p dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let with_chaos spec f =
  Faultpoint.configure_string spec;
  Fun.protect ~finally:Faultpoint.disable f

let metric name = Metrics.value (Metrics.counter name)

let delta name f =
  let before = metric name in
  let v = f () in
  (v, metric name - before)

(* --- spec grammar ------------------------------------------------------ *)

let test_spec_parse_valid () =
  let accepts s =
    Faultpoint.configure_string s;
    check (s ^ " enables") true (Faultpoint.enabled ())
  in
  Fun.protect ~finally:Faultpoint.disable @@ fun () ->
  accepts "1:artifact.write=eio";
  accepts "42:artifact.*=torn:0.25@3";
  accepts "0:*=latency:0.0@p0.5";
  accepts "7:pool.task=fail@1,artifact.read=flip@2";
  Faultpoint.disable ();
  check "disable disables" false (Faultpoint.enabled ())

let test_spec_parse_invalid () =
  let rejects name s =
    match Faultpoint.configure_string s with
    | exception Error.Reseed_error e ->
        check (name ^ " is a usage error") true (e.Error.code = Error.Usage)
    | () -> Alcotest.failf "%s: expected Reseed_error" name
  in
  rejects "no seed" "artifact.write=eio";
  rejects "bad seed" "x:artifact.write=eio";
  rejects "no rules" "1:";
  rejects "no kind" "1:artifact.write";
  rejects "unknown kind" "1:artifact.write=explode";
  rejects "bad selector" "1:artifact.write=eio@zero";
  rejects "bad probability" "1:artifact.write=eio@p2";
  rejects "bad argument" "1:artifact.write=torn:-1";
  rejects "empty point" "1:=eio"

let test_catalog_registered () =
  touch_registrars ();
  let all = Faultpoint.all () in
  List.iter
    (fun p -> check ("catalog has " ^ p) true (List.mem p all))
    [
      "artifact.read"; "artifact.write"; "artifact.publish"; "checkpoint.store";
      "pool.task"; "batch.job"; "bench.write";
    ]

(* --- deterministic schedules ------------------------------------------- *)

let test_nth_selector () =
  let fp = Faultpoint.register "chaos.test.nth" in
  with_chaos "1:chaos.test.nth=fail@2" @@ fun () ->
  let fires () =
    match Faultpoint.hit fp with
    | () -> false
    | exception Faultpoint.Injected _ -> true
  in
  check "hit 1 passes" false (fires ());
  check "hit 2 fires" true (fires ());
  check "hit 3 passes" false (fires ());
  check_int "hits counted" 3 (Faultpoint.hit_count fp)

let test_probabilistic_schedule_replays () =
  let fp = Faultpoint.register "chaos.test.prob" in
  let schedule () =
    List.init 64 (fun _ ->
        match Faultpoint.hit fp with
        | () -> false
        | exception Faultpoint.Injected _ -> true)
  in
  let a = with_chaos "9:chaos.test.prob=fail@p0.5" schedule in
  let b = with_chaos "9:chaos.test.prob=fail@p0.5" schedule in
  check "same seed replays identically" true (a = b);
  let fired = List.length (List.filter Fun.id a) in
  check "some hits fire" true (fired > 0);
  check "some hits pass" true (fired < 64)

let test_mangle_torn_and_flip () =
  let fp = Faultpoint.register "chaos.test.mangle" in
  let torn =
    with_chaos "1:chaos.test.mangle=torn:0.5@1" @@ fun () ->
    Faultpoint.mangle fp "0123456789"
  in
  check_string "torn keeps the prefix" "01234" torn;
  let flipped =
    with_chaos "1:chaos.test.mangle=flip@1" @@ fun () ->
    Faultpoint.mangle fp "0123456789"
  in
  check "flip changes the payload" true (flipped <> "0123456789");
  check_int "flip keeps the length" 10 (String.length flipped);
  let diff = ref 0 in
  String.iteri
    (fun i c -> if c <> flipped.[i] then incr diff)
    "0123456789";
  check_int "flip touches one byte" 1 !diff;
  (* Disabled points return the payload unchanged through the fast path. *)
  check_string "disabled mangle is identity" "abc" (Faultpoint.mangle fp "abc")

(* --- retry policy ------------------------------------------------------ *)

let fast = { Retry.max_attempts = 3; base_delay_s = 0.; max_delay_s = 0. }

let test_retry_transient_heals () =
  let calls = ref 0 in
  let r, retries =
    delta "retry_attempts" (fun () ->
        Retry.run ~config:fast (fun ~attempt ->
            incr calls;
            if attempt = 1 then raise (Unix.Unix_error (Unix.EIO, "t", ""));
            "ok"))
  in
  check "heals" true (r = Ok "ok");
  check_int "two calls" 2 !calls;
  check_int "one retry counted" 1 retries

let test_retry_permanent_immediate () =
  let calls = ref 0 in
  let r =
    Retry.run ~config:fast (fun ~attempt:_ ->
        incr calls;
        raise (Unix.Unix_error (Unix.ENOENT, "t", "")))
  in
  (match r with
  | Error { Retry.attempts; _ } -> check_int "one attempt" 1 attempts
  | Ok _ -> Alcotest.fail "expected failure");
  check_int "never retried" 1 !calls

let test_retry_exhaustion () =
  match
    Retry.run ~config:fast (fun ~attempt:_ ->
        raise (Unix.Unix_error (Unix.EIO, "t", "")))
  with
  | Error { Retry.attempts; exn = Unix.Unix_error (Unix.EIO, _, _); _ } ->
      check_int "all attempts used" fast.Retry.max_attempts attempts
  | _ -> Alcotest.fail "expected EIO failure after exhaustion"

let test_retry_classification_defaults () =
  let cls e = Retry.class_name (Retry.classify e) in
  check_string "eio transient" "transient"
    (cls (Unix.Unix_error (Unix.EIO, "", "")));
  check_string "enospc permanent" "permanent"
    (cls (Unix.Unix_error (Unix.ENOSPC, "", "")));
  check_string "injected transient" "transient"
    (cls (Faultpoint.Injected { point = "p"; fault = "fail" }));
  check_string "sys_error transient" "transient" (cls (Sys_error "x"));
  check_string "diagnostics permanent" "permanent"
    (cls
       (Error.Reseed_error
          { Error.code = Error.Input_error; message = ""; file = None;
            line = None; column = None }));
  check_string "anything else permanent" "permanent" (cls Exit)

let test_retry_env_attempts () =
  Unix.putenv "RESEED_RETRIES" "0";
  Fun.protect ~finally:(fun () -> Unix.putenv "RESEED_RETRIES" "") @@ fun () ->
  check_int "RESEED_RETRIES=0 means one attempt" 1
    (Retry.default_config ()).Retry.max_attempts;
  let calls = ref 0 in
  (match
     Retry.run (fun ~attempt:_ ->
         incr calls;
         raise (Unix.Unix_error (Unix.EIO, "t", "")))
   with
  | Error { Retry.attempts = 1; _ } -> ()
  | _ -> Alcotest.fail "expected single-attempt failure");
  check_int "no retry at RESEED_RETRIES=0" 1 !calls;
  Unix.putenv "RESEED_RETRIES" "";
  check_int "unparsable falls back to one retry" 2
    (Retry.default_config ()).Retry.max_attempts

let test_retry_backoff_deterministic () =
  let cfg = { Retry.max_attempts = 3; base_delay_s = 0.001; max_delay_s = 0.01 } in
  let fail_all () =
    match
      Retry.run ~config:cfg ~label:"t" (fun ~attempt:_ ->
          raise (Unix.Unix_error (Unix.EIO, "t", "")))
    with
    | Error f -> f.Retry.backoff_s
    | Ok _ -> assert false
  in
  let a = fail_all () and b = fail_all () in
  check "backoff accumulated" true (a > 0.);
  check "backoff deterministic across runs" true (a = b)

(* --- artifact store under chaos ---------------------------------------- *)

let enc v =
  let b = Buffer.create 16 in
  Artifact.Codec.str b v;
  Some (Buffer.contents b)

let dec r = Artifact.Codec.get_str r

let cached store fp computes =
  Artifact.cached (Some store) ~stage:"chaos" ~fp ~encode:enc ~decode:dec
    (fun () ->
      incr computes;
      "payload")

let test_artifact_torn_write_recovers () =
  with_temp_dir @@ fun dir ->
  let store = Artifact.open_store dir in
  let fp = Fingerprint.string (Fingerprint.salted "chaos") "torn" in
  let computes = ref 0 in
  (* The torn first write publishes a truncated blob... *)
  let v1 = with_chaos "1:artifact.write=torn@1" (fun () -> cached store fp computes) in
  check_string "torn run still returns the result" "payload" v1;
  (* ...which the next run detects, recomputes and rewrites. *)
  let before_rw = metric "artifact_rewrites" in
  let v2, corrupt = delta "artifact_corrupt" (fun () -> cached store fp computes) in
  check_string "recovered" "payload" v2;
  check "corruption detected" true (corrupt >= 1);
  check_int "recomputed" 2 !computes;
  check_int "rewrite counted" 1 (metric "artifact_rewrites" - before_rw);
  (* The rewrite healed the blob: warm from here on. *)
  let v3, hits = delta "artifact_hits" (fun () -> cached store fp computes) in
  check_string "warm" "payload" v3;
  check_int "hits after rewrite" 1 hits;
  check_int "no further recompute" 2 !computes

let test_artifact_rewrite_counted () =
  with_temp_dir @@ fun dir ->
  let store = Artifact.open_store dir in
  let fp = Fingerprint.string (Fingerprint.salted "chaos") "rewrite" in
  let computes = ref 0 in
  ignore (with_chaos "1:artifact.write=flip@1" (fun () -> cached store fp computes));
  let _, rewrites = delta "artifact_rewrites" (fun () -> cached store fp computes) in
  check_int "corrupt blob overwrite counted" 1 rewrites

let test_artifact_read_eio_heals () =
  with_temp_dir @@ fun dir ->
  let store = Artifact.open_store dir in
  let fp = Fingerprint.string (Fingerprint.salted "chaos") "read" in
  let computes = ref 0 in
  ignore (cached store fp computes);
  check_int "written clean" 1 !computes;
  let v, retries =
    delta "retry_attempts" (fun () ->
        with_chaos "1:artifact.read=eio@1" (fun () -> cached store fp computes))
  in
  check_string "healed through retry" "payload" v;
  check "retried" true (retries >= 1);
  check_int "no recompute" 1 !computes

let test_artifact_save_failure_nonfatal () =
  with_temp_dir @@ fun dir ->
  let store = Artifact.open_store dir in
  let fp = Fingerprint.string (Fingerprint.salted "chaos") "nospace" in
  let computes = ref 0 in
  (* ENOSPC is permanent: the save fails, the result survives. *)
  let v, failures =
    delta "artifact_write_failures" (fun () ->
        with_chaos "1:artifact.write=enospc@1" (fun () -> cached store fp computes))
  in
  check_string "result survives failed save" "payload" v;
  check_int "failure counted" 1 failures;
  check_int "computed" 1 !computes;
  (* Nothing was cached: the next run misses and saves cleanly. *)
  let v2, misses = delta "artifact_misses" (fun () -> cached store fp computes) in
  check_string "recomputes next run" "payload" v2;
  check_int "missed" 1 misses;
  check_int "computed again" 2 !computes

let test_pool_task_fault_heals () =
  with_chaos "1:pool.task=fail@1" @@ fun () ->
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let out = Pool.parallel_init ~pool ~chunk:4 16 (fun i -> i * i) in
  check "pool result correct under one-shot fault" true
    (Array.for_all Fun.id (Array.mapi (fun i v -> v = i * i) out))

let test_pool_task_exhaustion_is_task_error () =
  Unix.putenv "RESEED_RETRIES" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "RESEED_RETRIES" "") @@ fun () ->
  with_chaos "1:pool.task=fail" @@ fun () ->
  (* [fail] with no selector fires on every hit: retries cannot heal it
     and the pool must surface a structured Task_error. *)
  Pool.with_pool ~jobs:2 @@ fun pool ->
  match Pool.parallel_init ~pool 8 (fun i -> i) with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Pool.Task_error { attempts; exn = Faultpoint.Injected _; _ } ->
      check_int "attempt count surfaced" 2 attempts

(* --- flow-level crash consistency -------------------------------------- *)

let prepared_c17 = lazy (Suite.prepare "c17")

let flow_signature (r : Flow.result) =
  ( Flow.reseedings r,
    r.Flow.test_length,
    r.Flow.final_triplets,
    r.Flow.coverage_pct )

let run_flow ~dir =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let config =
    {
      Flow.default_config with
      Flow.builder = { Builder.default_config with Builder.cycles = 40 };
    }
  in
  let store = Artifact.open_store (Filename.concat dir "cache") in
  Flow.run ~config ~store
    ~checkpoint:(Filename.concat dir "ckpt")
    ~fingerprint:p.Suite.fingerprint p.Suite.sim tpg ~tests:p.Suite.tests
    ~targets:p.Suite.targets

let test_checkpoint_store_fault_heals () =
  with_temp_dir @@ fun dir ->
  let clean = flow_signature (run_flow ~dir:(Filename.concat dir "a")) in
  let faulted =
    with_chaos "3:checkpoint.store=eio@1" (fun () ->
        flow_signature (run_flow ~dir:(Filename.concat dir "b")))
  in
  check "flow identical under checkpoint fault" true (clean = faulted)

(* Any single injected fault: the flow either produces the exact clean
   solution or raises a documented diagnostic — never a wrong answer. *)
let prop_single_fault_never_wrong =
  let points =
    [
      "artifact.read"; "artifact.write"; "artifact.publish"; "checkpoint.store";
      "pool.task";
    ]
  in
  let kinds = Faultpoint.[ Eio; Enospc; Torn; Flip; Fail ] in
  QCheck.Test.make ~name:"single fault: clean answer or documented error"
    ~count:25
    QCheck.(
      triple
        (int_bound (List.length points - 1))
        (int_bound (List.length kinds - 1))
        (int_range 1 1000))
    (fun (pi, ki, seed) ->
      touch_registrars ();
      with_temp_dir @@ fun dir ->
      let reference = flow_signature (run_flow ~dir:(Filename.concat dir "ref")) in
      let point = List.nth points pi and kind = List.nth kinds ki in
      let spec =
        Printf.sprintf "%d:%s=%s@1" seed point (Faultpoint.kind_name kind)
      in
      let outcome =
        with_chaos spec (fun () ->
            match run_flow ~dir:(Filename.concat dir "chaos") with
            | r -> `Result (flow_signature r)
            | exception Error.Reseed_error _ -> `Documented
            | exception Pool.Task_error _ -> `Documented
            | exception Unix.Unix_error _ -> `Documented)
      in
      match outcome with
      | `Result s -> s = reference
      | `Documented -> true)

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "spec: valid forms accepted" `Quick test_spec_parse_valid;
        Alcotest.test_case "spec: malformed rejected as usage" `Quick
          test_spec_parse_invalid;
        Alcotest.test_case "catalog: pipeline points registered" `Quick
          test_catalog_registered;
        Alcotest.test_case "schedule: @N fires exactly once" `Quick test_nth_selector;
        Alcotest.test_case "schedule: @p replays per seed" `Quick
          test_probabilistic_schedule_replays;
        Alcotest.test_case "mangle: torn and flip are deterministic" `Quick
          test_mangle_torn_and_flip;
        Alcotest.test_case "retry: transient heals" `Quick test_retry_transient_heals;
        Alcotest.test_case "retry: permanent fails fast" `Quick
          test_retry_permanent_immediate;
        Alcotest.test_case "retry: exhaustion surfaces last error" `Quick
          test_retry_exhaustion;
        Alcotest.test_case "retry: default classification" `Quick
          test_retry_classification_defaults;
        Alcotest.test_case "retry: RESEED_RETRIES bounds attempts" `Quick
          test_retry_env_attempts;
        Alcotest.test_case "retry: deterministic backoff" `Quick
          test_retry_backoff_deterministic;
        Alcotest.test_case "artifact: torn write detected and rewritten" `Quick
          test_artifact_torn_write_recovers;
        Alcotest.test_case "artifact: rewrite counter" `Quick
          test_artifact_rewrite_counted;
        Alcotest.test_case "artifact: read EIO heals warm hit" `Quick
          test_artifact_read_eio_heals;
        Alcotest.test_case "artifact: failed save is non-fatal" `Quick
          test_artifact_save_failure_nonfatal;
        Alcotest.test_case "pool: one-shot task fault heals" `Quick
          test_pool_task_fault_heals;
        Alcotest.test_case "pool: persistent fault is Task_error" `Quick
          test_pool_task_exhaustion_is_task_error;
        Alcotest.test_case "flow: checkpoint fault heals" `Quick
          test_checkpoint_store_fault_heals;
        QCheck_alcotest.to_alcotest prop_single_fault_never_wrong;
      ] );
  ]
