open Reseed_setcover
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let matrix_of cols rows =
  Matrix.of_rows ~cols (Array.of_list (List.map (Bitvec.of_list cols) rows))

let brute_force_optimum m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let coverable = Bitvec.create cols in
  for j = 0 to cols - 1 do
    if not (Bitvec.is_empty (Matrix.col m j)) then Bitvec.set coverable j
  done;
  let best = ref max_int in
  for mask = 0 to (1 lsl rows) - 1 do
    let u = Bitvec.create cols in
    let size = ref 0 in
    for i = 0 to rows - 1 do
      if mask lsr i land 1 = 1 then begin
        incr size;
        Bitvec.union_into ~into:u (Matrix.row m i)
      end
    done;
    if Bitvec.subset coverable u && !size < !best then best := !size
  done;
  !best

let random_instance rng =
  let rows = 3 + Rng.int rng 8 in
  let cols = 3 + Rng.int rng 10 in
  let m = Matrix.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Rng.int rng 100 < 35 then Matrix.set m ~row:i ~col:j
    done
  done;
  m

(* --- Satcover --- *)

let test_satcover_descent () =
  (* optimum 2: rows 0+1; the all-but-one row 2 forces a partner *)
  let m = matrix_of 6 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 1; 2; 3; 4 ] ] in
  let enc = Satcover.create ~ub:3 m in
  (match Satcover.solve_at_most enc ~k:2 ~max_conflicts:10_000 () with
  | Satcover.Cover rows ->
      check "cover of <= 2" true (List.length rows <= 2);
      check "covers" true (Matrix.covers m ~rows_subset:rows)
  | _ -> Alcotest.fail "expected a 2-cover");
  check "no 1-cover" true
    (Satcover.solve_at_most enc ~k:1 ~max_conflicts:10_000 () = Satcover.No_cover);
  (* k at or above the row count is vacuous — the cover clauses alone
     decide it — but a non-vacuous k beyond the encoded counter raises. *)
  (match Satcover.solve_at_most enc ~k:3 ~max_conflicts:10_000 () with
  | Satcover.Cover rows -> check "vacuous k covers" true (Matrix.covers m ~rows_subset:rows)
  | _ -> Alcotest.fail "expected a cover at vacuous k");
  let wide = matrix_of 4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let enc2 = Satcover.create ~ub:2 wide in
  check "k beyond counter rejected" true
    (try
       ignore (Satcover.solve_at_most enc2 ~k:3 ~max_conflicts:10 ());
       false
     with Invalid_argument _ -> true)

let test_satcover_uncoverable_skipped () =
  (* Column 2 is coverable by no row: cover clauses skip it, like Greedy. *)
  let m = matrix_of 3 [ [ 0 ]; [ 1 ] ] in
  let enc = Satcover.create ~ub:2 m in
  match Satcover.solve_at_most enc ~k:2 ~max_conflicts:1_000 () with
  | Satcover.Cover rows -> check "covers coverable part" true (Matrix.covers m ~rows_subset:rows)
  | _ -> Alcotest.fail "expected a cover"

(* --- Portfolio --- *)

let test_portfolio_simple () =
  let m = matrix_of 3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1; 2 ] ] in
  let r = Portfolio.solve m in
  check "optimal" true r.Portfolio.optimal;
  check "picks the covering row" true (r.Portfolio.selected = [ 3 ]);
  check "complete" true (r.Portfolio.stop_reason = Ilp.Complete);
  check "proved" true (r.Portfolio.proved_by <> None)

let test_portfolio_weighted () =
  let m = matrix_of 3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1; 2 ] ] in
  let r = Portfolio.solve ~weights:[| 1.; 1.; 1.; 10. |] m in
  check "avoids expensive row" true (r.Portfolio.selected = [ 0; 1; 2 ]);
  check "cost 3" true (abs_float (r.Portfolio.cost -. 3.) < 1e-9);
  check "optimal" true r.Portfolio.optimal

let test_portfolio_leg_attribution () =
  (* Greedy needs 3 rows here but the optimum is 2, so the root dual
     bound cannot close the instance and the legs actually race. *)
  let m = matrix_of 8 [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 0; 1; 4; 5; 2 ] ] in
  let r = Portfolio.solve m in
  check "optimal" true r.Portfolio.optimal;
  check_int "optimum 2" 2 (List.length r.Portfolio.selected);
  check "has legs" true (r.Portfolio.legs <> []);
  List.iter
    (fun l ->
      check "leg named" true
        (List.mem l.Portfolio.leg [ "ilp"; "sat"; "grasp" ]);
      (* The final answer is never worse than anything a leg produced. *)
      check "result <= leg best" true
        (r.Portfolio.cost <= l.Portfolio.best_cost +. 1e-9))
    r.Portfolio.legs

let test_portfolio_expired_budget () =
  let m = matrix_of 6 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 1; 2; 3; 4 ] ] in
  let b = Budget.create ~deadline_s:0. () in
  ignore (Budget.expired b);
  let r = Portfolio.solve ~budget:b m in
  (* Valid cover always; either a proof closed it or the budget stopped it. *)
  check "covers" true (Matrix.covers m ~rows_subset:r.Portfolio.selected);
  check "stop accounted" true
    (r.Portfolio.optimal
    || match r.Portfolio.stop_reason with Ilp.Budget _ -> true | _ -> false)

let prop_portfolio_matches_brute_force =
  QCheck.Test.make ~name:"portfolio = brute force optimum" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 7000) in
      let m = random_instance rng in
      let opt = brute_force_optimum m in
      if opt = max_int then true
      else begin
        let r = Portfolio.solve m in
        r.Portfolio.optimal
        && List.length r.Portfolio.selected = opt
        && Matrix.covers m ~rows_subset:r.Portfolio.selected
      end)

(* The table-1 agreement contract: when the standalone exact search
   completes, the portfolio completes too and reports the same rows at
   the same cost (its exact leg runs the identical node sequence). *)
let prop_portfolio_matches_exact =
  QCheck.Test.make ~name:"portfolio = Ilp.solve where exact completes" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 8000) in
      let m = random_instance rng in
      let e = Ilp.solve m in
      if not e.Ilp.optimal then true
      else begin
        let r = Portfolio.solve m in
        r.Portfolio.optimal
        && r.Portfolio.selected = e.Ilp.selected
        && abs_float (r.Portfolio.cost -. e.Ilp.cost) < 1e-9
      end)

(* Weighted variant: same contract under a non-uniform objective (the
   SAT leg sits out; exact + GRASP still race). *)
let prop_portfolio_matches_exact_weighted =
  QCheck.Test.make ~name:"weighted portfolio = weighted Ilp.solve" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 9000) in
      let m = random_instance rng in
      let weights =
        Array.init (Matrix.rows m) (fun _ -> 1. +. float_of_int (Rng.int rng 9))
      in
      let e = Ilp.solve ~weights m in
      if not e.Ilp.optimal then true
      else begin
        let r = Portfolio.solve ~weights m in
        r.Portfolio.optimal
        && r.Portfolio.selected = e.Ilp.selected
        && abs_float (r.Portfolio.cost -. e.Ilp.cost) < 1e-9
      end)

(* Racing on a pool must not change the answer: legs own their state and
   the merge happens at a barrier in fixed order, so 1, 2 and 4 jobs
   produce the identical incumbent. *)
let test_portfolio_determinism_across_jobs () =
  let rng = Rng.create 4242 in
  for _ = 1 to 8 do
    let m = random_instance rng in
    let solo = Pool.with_pool ~jobs:1 (fun pool -> Portfolio.solve ~pool m) in
    let duo = Pool.with_pool ~jobs:2 (fun pool -> Portfolio.solve ~pool m) in
    let quad = Pool.with_pool ~jobs:4 (fun pool -> Portfolio.solve ~pool m) in
    check "2 jobs = 1 job" true (duo.Portfolio.selected = solo.Portfolio.selected);
    check "4 jobs = 1 job" true (quad.Portfolio.selected = solo.Portfolio.selected);
    check "same winner" true
      (duo.Portfolio.winner = solo.Portfolio.winner
      && quad.Portfolio.winner = solo.Portfolio.winner);
    check "same rounds" true
      (duo.Portfolio.rounds = solo.Portfolio.rounds
      && quad.Portfolio.rounds = solo.Portfolio.rounds)
  done

(* --- Solution plumbing --- *)

let test_solution_portfolio_method () =
  let rng = Rng.create 777 in
  for _ = 1 to 6 do
    let m = random_instance rng in
    let p = Solution.solve ~method_:Solution.Portfolio_race m in
    let e = Solution.solve ~method_:Solution.Exact m in
    check "portfolio covers" true (Solution.verify m p);
    check "portfolio = exact cardinality" true
      (Solution.cardinality p = Solution.cardinality e);
    (* The winner is attributed whenever the portfolio actually ran; a
       residual fully solved by reduction never reaches it. *)
    check "winner recorded" true
      (p.Solution.stats.Solution.portfolio_winner <> None
      || p.Solution.stats.Solution.from_solver = []);
    check "exact has no legs" true (e.Solution.stats.Solution.portfolio_legs = [])
  done

let test_solution_portfolio_stats () =
  let m = matrix_of 6 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 1; 2; 3; 4 ] ] in
  let p = Solution.solve ~method_:Solution.Portfolio_race m in
  check "not degraded" true (not p.Solution.stats.Solution.degraded);
  check "optimal" true p.Solution.stats.Solution.solver_optimal;
  check_int "cardinality 2" 2 (Solution.cardinality p)

let suite =
  [
    ( "portfolio",
      [
        Alcotest.test_case "satcover descent" `Quick test_satcover_descent;
        Alcotest.test_case "satcover uncoverable" `Quick test_satcover_uncoverable_skipped;
        Alcotest.test_case "portfolio simple" `Quick test_portfolio_simple;
        Alcotest.test_case "portfolio weighted" `Quick test_portfolio_weighted;
        Alcotest.test_case "leg attribution" `Quick test_portfolio_leg_attribution;
        Alcotest.test_case "expired budget" `Quick test_portfolio_expired_budget;
        Alcotest.test_case "determinism across jobs" `Quick
          test_portfolio_determinism_across_jobs;
        Alcotest.test_case "solution portfolio method" `Quick
          test_solution_portfolio_method;
        Alcotest.test_case "solution portfolio stats" `Quick
          test_solution_portfolio_stats;
        QCheck_alcotest.to_alcotest prop_portfolio_matches_brute_force;
        QCheck_alcotest.to_alcotest prop_portfolio_matches_exact;
        QCheck_alcotest.to_alcotest prop_portfolio_matches_exact_weighted;
      ] );
  ]
