(* Multicore engine: Pool scheduling, per-domain simulator shards, and
   jobs-count invariance of every parallel phase.  All pools here are
   explicit ([with_pool ~jobs:4]) so the tests spawn real domains even on
   a single-core CI runner, where the default pool degrades to inline. *)

open Reseed_core
open Reseed_fault
open Reseed_netlist
open Reseed_gatsby
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Pool ----------------------------------------------------------- *)

let test_pool_map () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_int "jobs" 4 (Pool.jobs pool);
      let xs = Array.init 1000 (fun i -> i) in
      let f x = (x * 7919) mod 104729 in
      check "map = sequential map" true
        (Pool.parallel_map_array ~pool f xs = Array.map f xs);
      check "map chunk=1" true (Pool.parallel_map_array ~pool ~chunk:1 f xs = Array.map f xs);
      check "init = sequential init" true
        (Pool.parallel_init ~pool 777 f = Array.init 777 f);
      check "empty map" true (Pool.parallel_map_array ~pool f [||] = [||]);
      check "empty init" true (Pool.parallel_init ~pool 0 f = [||]))

let test_pool_reuse_and_order () =
  (* Result slot [i] always holds task [i]'s value, across repeated jobs
     on one pool. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 20 do
        let n = 50 + round in
        let out = Pool.parallel_init ~pool ~chunk:1 n (fun i -> (round * 1000) + i) in
        Array.iteri (fun i v -> check_int "slot" ((round * 1000) + i) v) out
      done)

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.parallel_for ~pool ~chunk:1 ~label:"boom job" ~total:100
           (fun ~worker:_ ~lo ~hi:_ -> if lo = 42 then failwith "boom")
       with
      | () -> Alcotest.fail "expected exception"
      | exception Pool.Task_error { label; lo; attempts; exn; _ } ->
          check "exn propagated" true (exn = Failure "boom");
          check "task label" true (label = "boom job");
          check "failing chunk" true (lo = 42);
          check "retried once" true (attempts = 2));
      (* The pool survives a failed job. *)
      let xs = Pool.parallel_init ~pool 100 (fun i -> i * i) in
      check "pool usable after failure" true (xs = Array.init 100 (fun i -> i * i)))

let test_pool_nested () =
  (* A submission from inside a running job must not deadlock: the inner
     call degrades to the sequential path. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.parallel_init ~pool ~chunk:1 8 (fun i ->
            let inner = Pool.parallel_init ~pool 10 (fun j -> (i * 10) + j) in
            Array.fold_left ( + ) 0 inner)
      in
      check "nested totals" true
        (out = Array.init 8 (fun i -> (i * 100) + 45)))

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let d = Domain.self () in
      let saw = ref true in
      Pool.parallel_for ~pool ~total:64 (fun ~worker:_ ~lo:_ ~hi:_ ->
          if Domain.self () <> d then saw := false);
      check "jobs=1 runs on the calling domain" true !saw)

(* --- Fault_sim.copy isolation --------------------------------------- *)

let random_patterns rng ~inputs ~n =
  Array.init n (fun _ -> Array.init inputs (fun _ -> Rng.bool rng))

let test_copy_isolation () =
  let c = Library.load "c432" in
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let rng = Rng.create 99 in
  let inputs = Circuit.input_count c in
  let jobs = 4 in
  let batches = Array.init jobs (fun _ -> random_patterns rng ~inputs ~n:40) in
  let active = Bitvec.create (Array.length faults) in
  Bitvec.fill_all active;
  (* Sequential reference: a fresh simulator per batch. *)
  let expect =
    Array.map
      (fun ps -> Fault_sim.detected_set (Fault_sim.create c faults) ps ~active)
      batches
  in
  (* Concurrent run: all batches at once, one shard per worker. *)
  let shard = Fault_sim.shard sim jobs in
  let got = Array.make jobs (Bitvec.create 0) in
  Pool.with_pool ~jobs (fun pool ->
      Pool.parallel_for ~pool ~chunk:1 ~total:jobs (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            got.(i) <- Fault_sim.detected_set shard.(i) batches.(i) ~active
          done));
  Array.iteri
    (fun i e -> check (Printf.sprintf "batch %d isolated" i) true (Bitvec.equal e got.(i)))
    expect;
  let before = Fault_sim.sims_performed sim in
  Fault_sim.merge_sims ~into:sim shard;
  check "merge_sims adds donor work" true (Fault_sim.sims_performed sim > before);
  let after = Fault_sim.sims_performed sim in
  Fault_sim.merge_sims ~into:sim shard;
  check_int "merge_sims idempotent" after (Fault_sim.sims_performed sim)

(* --- Builder / Gatsby / Tradeoff: jobs-count invariance -------------- *)

let builder_setup () =
  let c = Library.c17 () in
  let faults = Fault.all c in
  let inputs = Circuit.input_count c in
  let rng = Rng.create 7 in
  let tests = random_patterns rng ~inputs ~n:12 in
  let targets = Bitvec.create (Array.length faults) in
  Bitvec.fill_all targets;
  (c, faults, tests, targets, Accumulator.adder inputs)

let build_with ~jobs =
  let c, faults, tests, targets, tpg = builder_setup () in
  let sim = Fault_sim.create c faults in
  Pool.with_pool ~jobs (fun pool ->
      Builder.build ~pool sim tpg ~tests ~targets ~config:Builder.default_config)

let test_builder_jobs_invariant () =
  let b1 = build_with ~jobs:1 and b4 = build_with ~jobs:4 in
  check_int "rows" (Matrix.rows b1.Builder.matrix) (Matrix.rows b4.Builder.matrix);
  check_int "cols" (Matrix.cols b1.Builder.matrix) (Matrix.cols b4.Builder.matrix);
  for r = 0 to Matrix.rows b1.Builder.matrix - 1 do
    check
      (Printf.sprintf "matrix row %d bit-identical" r)
      true
      (Bitvec.equal (Matrix.row b1.Builder.matrix r) (Matrix.row b4.Builder.matrix r))
  done;
  check "useful_cycles identical" true (b1.Builder.useful_cycles = b4.Builder.useful_cycles);
  check_int "fault_sims identical" b1.Builder.fault_sims b4.Builder.fault_sims

let gatsby_with ~jobs =
  let c, faults, _tests, targets, tpg = builder_setup () in
  let sim = Fault_sim.create c faults in
  let config =
    {
      Gatsby.default_config with
      Gatsby.cycles = 30;
      max_rounds = 30;
      ga = { Ga.default_config with Ga.population = 6; generations = 3 };
    }
  in
  let rng = Rng.create 2024 in
  Pool.with_pool ~jobs (fun pool -> Gatsby.run ~config ~pool sim tpg ~rng ~targets)

let test_gatsby_jobs_invariant () =
  let g1 = gatsby_with ~jobs:1 and g4 = gatsby_with ~jobs:4 in
  check "detected identical" true (Bitvec.equal g1.Gatsby.detected g4.Gatsby.detected);
  check_int "test_length" g1.Gatsby.test_length g4.Gatsby.test_length;
  check_int "triplets" (List.length g1.Gatsby.triplets) (List.length g4.Gatsby.triplets);
  check_int "ga_evaluations" g1.Gatsby.ga_evaluations g4.Gatsby.ga_evaluations;
  check_int "fault_sims" g1.Gatsby.fault_sims g4.Gatsby.fault_sims

let tradeoff_with ~jobs =
  let c, faults, tests, targets, tpg = builder_setup () in
  let sim = Fault_sim.create c faults in
  Pool.with_pool ~jobs (fun pool ->
      Tradeoff.sweep ~pool sim tpg ~tests ~targets ~grid:[ 8; 16; 32; 64 ])

let test_tradeoff_jobs_invariant () =
  check "figure-2 series identical" true (tradeoff_with ~jobs:1 = tradeoff_with ~jobs:4)

(* --- Collapse -------------------------------------------------------- *)

let collapse_setup name =
  let c = Library.load name in
  let rng = Rng.create 31 in
  let patterns = random_patterns rng ~inputs:(Circuit.input_count c) ~n:60 in
  (c, patterns)

let detect c faults patterns =
  let sim = Fault_sim.create c faults in
  let active = Bitvec.create (Array.length faults) in
  Bitvec.fill_all active;
  Fault_sim.detected_set sim patterns ~active

let test_collapse_equivalence_exact () =
  (* Without dominance, classes are exact equivalences: simulating the
     representatives and expanding reproduces the universe detection
     bit-for-bit. *)
  List.iter
    (fun name ->
      let c, patterns = collapse_setup name in
      let cls = Collapse.compute ~dominance:false c in
      check_int "universe = Fault.universe"
        (Array.length (Fault.universe c))
        (Collapse.universe_count cls);
      check_int "classes = Fault.all" (Array.length (Fault.all c))
        (Collapse.equivalence_count cls);
      let expanded = Collapse.expand cls (detect c (Collapse.reps cls) patterns) in
      let actual = detect c (Collapse.universe cls) patterns in
      check (name ^ ": expansion = universe detection") true (Bitvec.equal expanded actual))
    [ "c17"; "c432" ]

let test_collapse_dominance_conservative () =
  (* With dominance removal the expansion is a sound lower bound: every
     fault it claims detected really is. *)
  let c, patterns = collapse_setup "c432" in
  let cls = Collapse.compute c in
  check_int "reps = Fault.all_collapsed"
    (Array.length (Fault.all_collapsed c))
    (Collapse.rep_count cls);
  check "collapsing shrinks the list" true
    (Collapse.rep_count cls < Collapse.universe_count cls);
  let expanded = Collapse.expand cls (detect c (Collapse.reps cls) patterns) in
  let actual = detect c (Collapse.universe cls) patterns in
  let sound = ref true in
  for i = 0 to Bitvec.length expanded - 1 do
    if Bitvec.get expanded i && not (Bitvec.get actual i) then sound := false
  done;
  check "expansion implies detection" true !sound;
  check "expansion not empty" true (Bitvec.count expanded > 0)

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool: maps match sequential" `Quick test_pool_map;
        Alcotest.test_case "pool: slot order across reuse" `Quick test_pool_reuse_and_order;
        Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
        Alcotest.test_case "pool: nested call degrades" `Quick test_pool_nested;
        Alcotest.test_case "pool: jobs=1 inline" `Quick test_pool_jobs_one_inline;
        Alcotest.test_case "fault_sim: shard isolation" `Quick test_copy_isolation;
        Alcotest.test_case "builder: jobs=1 = jobs=4" `Quick test_builder_jobs_invariant;
        Alcotest.test_case "gatsby: jobs=1 = jobs=4" `Quick test_gatsby_jobs_invariant;
        Alcotest.test_case "tradeoff: jobs=1 = jobs=4" `Quick test_tradeoff_jobs_invariant;
        Alcotest.test_case "collapse: equivalence exact" `Quick test_collapse_equivalence_exact;
        Alcotest.test_case "collapse: dominance conservative" `Quick
          test_collapse_dominance_conservative;
      ] );
  ]
