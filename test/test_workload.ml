(* Workload-generic core: the transition-delay model against a
   brute-force launch/capture oracle (all engines, block-boundary
   carries included), stuck-at-through-the-abstraction differentials,
   cross-model cache keying, the extended batch manifest schema, and the
   code-based compression workload. *)

open Reseed_atpg
open Reseed_core
open Reseed_fault
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let metric name = Metrics.value (Metrics.counter name)

let delta name f =
  let before = metric name in
  let v = f () in
  (v, metric name - before)

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reseed-workload-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f (Artifact.open_store dir))

let all_engines = [ Fault_sim.Event; Fault_sim.Cpt; Fault_sim.Hybrid ]

(* --- brute-force oracles ----------------------------------------------- *)

(* Single-pattern stuck-at detection, rebuilding the faulty circuit. *)
let brute_stuck_detects c (fault : Fault.t) pattern =
  let goodv = Reseed_sim.Logic_sim.output_response c pattern in
  let values = Reseed_sim.Logic_sim.simulate_bool c pattern in
  let fvals = Array.copy values in
  for i = 0 to Circuit.node_count c - 1 do
    (match c.Circuit.nodes.(i).Circuit.kind with
    | Gate.Input -> ()
    | k ->
        let args =
          Array.map (fun f -> fvals.(f)) c.Circuit.nodes.(i).Circuit.fanins
        in
        (match fault.Fault.site with
        | Fault.Pin { gate; pin } when gate = i -> args.(pin) <- fault.Fault.stuck
        | _ -> ());
        fvals.(i) <- Gate.eval k args);
    match fault.Fault.site with
    | Fault.Out g when g = i -> fvals.(i) <- fault.Fault.stuck
    | _ -> ()
  done;
  Array.map (fun o -> fvals.(o)) c.Circuit.outputs <> goodv

(* Launch/capture reference semantics: the launch pattern must put the
   fault's site signal at the slow initial value (= the capture-cycle
   stuck value), then the capture pattern must detect the stuck-at
   fault. *)
let brute_transition_detects c (fault : Fault.t) ~launch ~capture =
  let lv =
    (Reseed_sim.Logic_sim.simulate_bool c launch).(Fault_model.site_signal c
                                                     fault)
  in
  lv = fault.Fault.stuck && brute_stuck_detects c fault capture

let cross_check_transition c patterns =
  let faults = Fault_model.faults Fault_model.Transition_delay c in
  List.iter
    (fun engine ->
      let sim =
        Fault_sim.create ~engine ~model:Fault_model.Transition_delay c faults
      in
      let map = Fault_sim.detection_map sim patterns in
      Array.iteri
        (fun fi fault ->
          if Bitvec.get map.(fi) 0 then
            Alcotest.failf "[%s] %s: pattern 0 has no launch predecessor"
              (Fault_sim.engine_name engine)
              (Fault_model.fault_to_string Fault_model.Transition_delay c fault);
          for p = 1 to Array.length patterns - 1 do
            let brute =
              brute_transition_detects c fault ~launch:patterns.(p - 1)
                ~capture:patterns.(p)
            in
            let fast = Bitvec.get map.(fi) p in
            if brute <> fast then
              Alcotest.failf "[%s] %s pattern %d: brute=%b fast=%b"
                (Fault_sim.engine_name engine)
                (Fault_model.fault_to_string Fault_model.Transition_delay c
                   fault)
                p brute fast
          done)
        faults)
    all_engines

(* Hand-built circuits: small enough to brute-force, fanout-heavy enough
   that Pin faults get launch sites distinct from their stems. *)
let hand_fanout () =
  let open Circuit.Builder in
  let b = create "hand_fanout" in
  let a = add_input b "a" in
  let x = add_input b "x" in
  let y = add_input b "y" in
  let g1 = add_gate b Gate.Nand [ a; x ] "g1" in
  let g2 = add_gate b Gate.Or [ g1; y ] "g2" in
  let g3 = add_gate b Gate.And [ g1; a ] "g3" in
  let g4 = add_gate b Gate.Xor [ g2; g3 ] "g4" in
  let g5 = add_gate b Gate.Not [ g1 ] "g5" in
  mark_output b g4;
  mark_output b g5;
  finalize b

let hand_reconvergent () =
  let open Circuit.Builder in
  let b = create "hand_reconv" in
  let a = add_input b "a" in
  let x = add_input b "x" in
  let n1 = add_gate b Gate.Not [ a ] "n1" in
  let g1 = add_gate b Gate.Nor [ n1; x ] "g1" in
  let g2 = add_gate b Gate.And [ a; x ] "g2" in
  let g3 = add_gate b Gate.Or [ g1; g2 ] "g3" in
  let g4 = add_gate b Gate.Xnor [ g3; n1 ] "g4" in
  mark_output b g4;
  finalize b

let random_patterns ~seed ~inputs n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Array.init inputs (fun _ -> Rng.bool rng))

(* 150 patterns cross the 62-pattern block boundary twice, so the launch
   carry between blocks is part of what the oracle checks. *)
let test_transition_oracle_c17 () =
  let c = Library.c17 () in
  cross_check_transition c (random_patterns ~seed:41 ~inputs:5 150)

let test_transition_oracle_hand () =
  cross_check_transition (hand_fanout ()) (random_patterns ~seed:42 ~inputs:3 150);
  cross_check_transition (hand_reconvergent ())
    (random_patterns ~seed:43 ~inputs:2 150)

(* Deterministic block-boundary carry: one AND gate, every pattern (1,1)
   except pattern 61 = (0,0).  The slow-to-rise output fault is launched
   exactly at lane 61 of block 0 and captured at lane 0 of block 1. *)
let test_transition_block_carry () =
  let open Circuit.Builder in
  let b = create "carry" in
  let a = add_input b "a" in
  let x = add_input b "x" in
  let g1 = add_gate b Gate.And [ a; x ] "g1" in
  mark_output b g1;
  let c = finalize b in
  let faults = Fault_model.faults Fault_model.Transition_delay c in
  let g1i = Circuit.find c "g1" in
  let index_of stuck =
    let found = ref (-1) in
    Array.iteri
      (fun i (f : Fault.t) ->
        if f.Fault.site = Fault.Out g1i && f.Fault.stuck = stuck then found := i)
      faults;
    !found
  in
  let str = index_of false and stf = index_of true in
  check "both output transition faults enumerated" true (str >= 0 && stf >= 0);
  let patterns =
    Array.init 70 (fun p ->
        if p = 61 then [| false; false |] else [| true; true |])
  in
  List.iter
    (fun engine ->
      let sim =
        Fault_sim.create ~engine ~model:Fault_model.Transition_delay c faults
      in
      let map = Fault_sim.detection_map sim patterns in
      let name = Fault_sim.engine_name engine in
      check (name ^ ": STR launched at lane 61, captured at lane 0 of block 1")
        true
        (Bitvec.get map.(str) 62);
      check (name ^ ": STR capture needs good=1") false (Bitvec.get map.(str) 61);
      check (name ^ ": STR needs a 0 launch") false (Bitvec.get map.(str) 5);
      check (name ^ ": STF captured where the output falls") true
        (Bitvec.get map.(stf) 61);
      check (name ^ ": pattern 0 detects nothing") false
        (Bitvec.get map.(str) 0 || Bitvec.get map.(stf) 0);
      cross_check_transition c patterns)
    all_engines

(* --- stuck-at through the abstraction ---------------------------------- *)

let test_stuck_model_is_verbatim () =
  let c = Library.c17 () in
  let via_model = Fault_model.faults Fault_model.Stuck_at c in
  let direct = Fault.all c in
  check_int "same fault count" (Array.length direct) (Array.length via_model);
  Array.iteri
    (fun i f -> check "same fault list" true (Fault.equal f direct.(i)))
    via_model;
  let patterns = random_patterns ~seed:7 ~inputs:5 100 in
  let map_default =
    Fault_sim.detection_map (Fault_sim.create c direct) patterns
  in
  let map_explicit =
    Fault_sim.detection_map
      (Fault_sim.create ~model:Fault_model.Stuck_at c via_model)
      patterns
  in
  Array.iteri
    (fun i row ->
      check "detection map identical" true (Bitvec.equal row map_explicit.(i)))
    map_default

let test_stuck_atpg_differential () =
  let c = Library.load "s420" in
  let _, r_default = Atpg.run_circuit c in
  let _, r_explicit = Atpg.run_circuit ~fault_model:Fault_model.Stuck_at c in
  check "test sets identical" true (r_default.Atpg.tests = r_explicit.Atpg.tests);
  check "detected sets identical" true
    (Bitvec.equal r_default.Atpg.detected r_explicit.Atpg.detected);
  check "untestable identical" true
    (r_default.Atpg.untestable = r_explicit.Atpg.untestable)

let test_stuck_flow_differential () =
  let c = Library.load "c432" in
  let p_default = Suite.prepare_circuit c in
  let p_explicit = Suite.prepare_circuit ~fault_model:Fault_model.Stuck_at c in
  check "prepare fingerprints identical" true
    (Fingerprint.equal p_default.Suite.fingerprint p_explicit.Suite.fingerprint);
  check "test sets identical" true (p_default.Suite.tests = p_explicit.Suite.tests);
  let flow p =
    let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
    Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
  in
  let r_default = flow p_default and r_explicit = flow p_explicit in
  check_int "same triplet count" (Flow.reseedings r_default)
    (Flow.reseedings r_explicit);
  check_int "same test length" r_default.Flow.test_length
    r_explicit.Flow.test_length;
  check "same triplets" true
    (r_default.Flow.final_triplets = r_explicit.Flow.final_triplets)

(* --- transition end-to-end --------------------------------------------- *)

let test_transition_flow_end_to_end () =
  let c = Library.c17 () in
  let p = Suite.prepare_circuit ~fault_model:Fault_model.Transition_delay c in
  check "prepared under the requested model" true
    (p.Suite.fault_model = Fault_model.Transition_delay);
  check "simulator carries the model" true
    (Fault_sim.model p.Suite.sim = Fault_model.Transition_delay);
  check "targets are non-empty" true (Bitvec.count p.Suite.targets > 0);
  let tpg = Accumulator.adder (Circuit.input_count c) in
  let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  check "at least one reseeding" true (Flow.reseedings r >= 1);
  check "positive test length" true (r.Flow.test_length > 0);
  check "full coverage of the transition targets" true
    (r.Flow.coverage_pct >= 100.0 -. 1e-9);
  check "not degraded" false r.Flow.degraded

let test_transition_collapse_rejected () =
  let c = Library.c17 () in
  match
    Suite.prepare_circuit ~fault_model:Fault_model.Transition_delay
      ~collapse:true c
  with
  | exception Error.Reseed_error e ->
      check "usage error" true (e.Error.code = Error.Usage)
  | _ -> Alcotest.fail "collapsing under transition must be rejected"

(* --- cross-model cache keying ------------------------------------------ *)

let test_cross_model_cache_miss () =
  with_store @@ fun store ->
  let c = Library.load "c17" in
  let p_stuck, m =
    delta "stage_atpg_cache_misses" (fun () -> Suite.prepare_circuit ~store c)
  in
  check_int "cold stuck-at run misses" 1 m;
  let _, h =
    delta "stage_atpg_cache_hits" (fun () -> Suite.prepare_circuit ~store c)
  in
  check_int "warm stuck-at rerun hits" 1 h;
  (* The warm stuck-at artifact must never satisfy a transition-delay
     request: same circuit, same store, different fault model. *)
  let p_trans, m =
    delta "stage_atpg_cache_misses" (fun () ->
        Suite.prepare_circuit ~fault_model:Fault_model.Transition_delay ~store c)
  in
  check_int "transition run misses despite warm stuck-at cache" 1 m;
  check "stage keys differ across models" false
    (Fingerprint.equal p_stuck.Suite.fingerprint p_trans.Suite.fingerprint);
  let _, h =
    delta "stage_atpg_cache_hits" (fun () ->
        Suite.prepare_circuit ~fault_model:Fault_model.Transition_delay ~store c)
  in
  check_int "transition rerun hits its own artifact" 1 h

(* --- batch manifest schema --------------------------------------------- *)

let test_manifest_fault_models_and_compress () =
  let m =
    Batch.parse_string
      "circuits = c17\n\
       tpgs = adder\n\
       cycles = 10\n\
       fault_model = transition\n\
       job s420 adder 20 stuck\n\
       compress c17 8\n"
  in
  check "manifest default model" true
    (m.Batch.fault_model = Fault_model.Transition_delay);
  check "jobs: cross product under the default, then explicit" true
    (m.Batch.jobs
    = [
        {
          Batch.circuit = "c17";
          task =
            Batch.Reseed
              {
                tpg = "adder";
                cycles = 10;
                fault_model = Fault_model.Transition_delay;
              };
        };
        {
          Batch.circuit = "s420";
          task =
            Batch.Reseed
              { tpg = "adder"; cycles = 20; fault_model = Fault_model.Stuck_at };
        };
        { Batch.circuit = "c17"; task = Batch.Compress { width = 8 } };
      ]);
  check "compression jobs prepare under stuck-at" true
    (Batch.job_model (List.nth m.Batch.jobs 2) = Fault_model.Stuck_at)

let test_manifest_rejects_with_line_numbers () =
  let rejects name ~line text =
    match Batch.parse_string text with
    | exception Error.Reseed_error e ->
        check (name ^ " is an input error") true
          (e.Error.code = Error.Input_error);
        check_int (name ^ " carries the line number") line
          (Option.value ~default:(-1) e.Error.line)
    | _ -> Alcotest.failf "%s: expected Reseed_error" name
  in
  rejects "unknown manifest fault model" ~line:1
    "fault_model = stuckish\njob c17 adder 10";
  rejects "unknown job-line fault model" ~line:2
    "# header\njob c17 adder 10 slowpath";
  rejects "bad compress width" ~line:2 "# header\ncompress c17 99";
  rejects "non-numeric compress width" ~line:1 "compress c17 wide";
  rejects "compress arity" ~line:1 "compress c17";
  rejects "unknown workload" ~line:3 "# one\n# two\nfrobnicate c17 8";
  rejects "unknown key" ~line:1 "frobnicate = 1\njob c17 adder 10"

let count_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub haystack i n = needle then incr count
  done;
  !count

let test_batch_mixed_workloads_run () =
  let m =
    Batch.parse_string
      "circuits = c17\n\
       tpgs = adder\n\
       cycles = 30\n\
       job c17 adder 30 transition\n\
       compress c17 4\n"
  in
  let results = Batch.run m in
  check_int "three jobs" 3 (List.length results);
  List.iter
    (fun r -> check "job ran" true (r.Batch.status = Batch.Ok))
    results;
  (match (List.nth results 2).Batch.metrics with
  | Batch.Compress_metrics { entries; dictionary_bits; raw_bits; _ } ->
      check "entries selected" true (entries > 0);
      check "dictionary sized" true (dictionary_bits = entries * 4);
      check "raw bits positive" true (raw_bits > 0)
  | Batch.Reseed_metrics _ -> Alcotest.fail "third job should be compression");
  let report = Batch.report_json m results in
  check_int "exactly one transition job line" 1
    (count_substring report "\"fault_model\": \"transition\"");
  check_int "exactly one compression job line" 1
    (count_substring report "\"task\": \"compress\"");
  (* The stuck-at job line keeps the historical shape: no fault_model. *)
  check_int "stuck-at lines carry no fault_model field" 1
    (count_substring report "\"fault_model\"")

(* --- compression workload ---------------------------------------------- *)

let test_corpus_of_text () =
  let corpus = Workload.corpus_of_text ~width:2 "01X1\n# comment\n10\n" in
  check_int "three blocks" 3 (Array.length corpus.Workload.blocks);
  let b0 = corpus.Workload.blocks.(0)
  and b1 = corpus.Workload.blocks.(1)
  and b2 = corpus.Workload.blocks.(2) in
  (* bit j of a block is character j of its slice. *)
  check "block 0 = 01" true (b0.Workload.value = 2 && b0.Workload.care = 3);
  check "block 1 = X1" true (b1.Workload.value = 2 && b1.Workload.care = 2);
  check "block 2 = 10" true (b2.Workload.value = 1 && b2.Workload.care = 3);
  check "X position accepts both" true
    (Workload.covers ~entry:2 b1 && Workload.covers ~entry:3 b1);
  check "care positions constrain" false (Workload.covers ~entry:1 b0)

let test_corpus_bad_char_coordinates () =
  match Workload.corpus_of_text ~file:"corp.txt" ~width:4 "0101\n0121\n" with
  | exception Error.Reseed_error e ->
      check "input error" true (e.Error.code = Error.Input_error);
      check_int "line" 2 (Option.value ~default:(-1) e.Error.line);
      check_int "column" 3 (Option.value ~default:(-1) e.Error.column)
  | _ -> Alcotest.fail "bad corpus character must be rejected"

let test_compress_tail_padding () =
  (* A 5-bit vector at width 4: the tail block has one cared bit. *)
  let corpus = Workload.corpus_of_text ~width:4 "10110\n" in
  check_int "two blocks" 2 (Array.length corpus.Workload.blocks);
  let tail = corpus.Workload.blocks.(1) in
  check "tail cares about bit 0 only" true
    (tail.Workload.care = 1 && tail.Workload.value = 0);
  let r = Workload.solve corpus in
  check "tail block covered" true
    (List.exists (fun e -> Workload.covers ~entry:e tail) r.Workload.entries)

let test_compress_solve_and_accounting () =
  let corpus = Workload.corpus_of_text ~width:3 "101101\nX01\n101\n" in
  let r = Workload.solve corpus in
  check_int "corpus blocks" 4 r.Workload.corpus_blocks;
  (* 101 appears three times plus X01: distinct ternary blocks = 2. *)
  check_int "distinct blocks" 2 r.Workload.distinct_blocks;
  (* 101 covers X01 too, so one entry suffices. *)
  check_int "one dictionary entry" 1 (List.length r.Workload.entries);
  check_int "dictionary bits" 3 r.Workload.dictionary_bits;
  check_int "index bits (log2 1 = 0)" 0 r.Workload.index_bits;
  check_int "raw bits" 12 r.Workload.raw_bits;
  Array.iter
    (fun b ->
      check "every block covered" true
        (List.exists (fun e -> Workload.covers ~entry:e b) r.Workload.entries))
    corpus.Workload.blocks;
  check "entry renders bit 0 first" true
    (Workload.entry_to_string ~width:3 (List.hd r.Workload.entries) = "101")

let test_compress_cached_solve_identical () =
  with_store @@ fun store ->
  let corpus =
    Workload.corpus_of_text ~width:4 "1011X110\n0X100101\n11110000\n10X1\n"
  in
  let cold = Workload.solve ~store corpus in
  let warm, hits = delta "artifact_hits" (fun () -> Workload.solve ~store corpus) in
  check "warm rerun hits the store" true (hits > 0);
  check "entries identical" true (cold.Workload.entries = warm.Workload.entries);
  let plain = Workload.solve corpus in
  check "cached = uncached" true (plain.Workload.entries = cold.Workload.entries)

let random_corpus_text rng ~lines ~width ~exact ~allow_x =
  String.concat "\n"
    (List.init lines (fun _ ->
         let len =
           if exact then width * (1 + Rng.int rng 3)
           else 1 + Rng.int rng (width * 3)
         in
         String.init len (fun _ ->
             match Rng.int rng (if allow_x then 3 else 2) with
             | 0 -> '0'
             | 1 -> '1'
             | _ -> 'X')))

(* Fully-specified corpus, no padded tail: every block constrains all its
   bits, so the minimum dictionary is exactly the set of distinct block
   values. *)
let prop_compress_no_x_cost =
  QCheck.Test.make ~name:"compression: no-X corpus needs distinct blocks"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let width = 2 + Rng.int rng 4 in
      let text =
        random_corpus_text rng ~lines:(1 + Rng.int rng 4) ~width ~exact:true
          ~allow_x:false
      in
      let corpus = Workload.corpus_of_text ~width text in
      let r = Workload.solve corpus in
      List.length r.Workload.entries = r.Workload.distinct_blocks)

(* Don't-cares only help: the dictionary still covers every block and
   never exceeds the distinct-block count. *)
let prop_compress_with_x_covers =
  QCheck.Test.make ~name:"compression: dictionary covers, X never hurts"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create (seed + 2) in
      let width = 2 + Rng.int rng 4 in
      let text =
        random_corpus_text rng ~lines:(1 + Rng.int rng 4) ~width ~exact:false
          ~allow_x:true
      in
      let corpus = Workload.corpus_of_text ~width text in
      let r = Workload.solve corpus in
      Array.for_all
        (fun b -> List.exists (fun e -> Workload.covers ~entry:e b) r.Workload.entries)
        corpus.Workload.blocks
      && List.length r.Workload.entries <= r.Workload.distinct_blocks)

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "transition oracle: c17, 150 patterns" `Quick
          test_transition_oracle_c17;
        Alcotest.test_case "transition oracle: hand-built circuits" `Quick
          test_transition_oracle_hand;
        Alcotest.test_case "transition: block-boundary launch carry" `Quick
          test_transition_block_carry;
        Alcotest.test_case "stuck-at model is verbatim" `Quick
          test_stuck_model_is_verbatim;
        Alcotest.test_case "stuck-at ATPG differential" `Quick
          test_stuck_atpg_differential;
        Alcotest.test_case "stuck-at flow differential" `Quick
          test_stuck_flow_differential;
        Alcotest.test_case "transition flow end-to-end" `Quick
          test_transition_flow_end_to_end;
        Alcotest.test_case "transition rejects collapsing" `Quick
          test_transition_collapse_rejected;
        Alcotest.test_case "cross-model cache miss" `Quick
          test_cross_model_cache_miss;
        Alcotest.test_case "manifest: fault models and compress" `Quick
          test_manifest_fault_models_and_compress;
        Alcotest.test_case "manifest: rejects with line numbers" `Quick
          test_manifest_rejects_with_line_numbers;
        Alcotest.test_case "batch: mixed workloads run" `Quick
          test_batch_mixed_workloads_run;
        Alcotest.test_case "compress: corpus parsing" `Quick test_corpus_of_text;
        Alcotest.test_case "compress: bad char coordinates" `Quick
          test_corpus_bad_char_coordinates;
        Alcotest.test_case "compress: tail padding" `Quick
          test_compress_tail_padding;
        Alcotest.test_case "compress: solve and accounting" `Quick
          test_compress_solve_and_accounting;
        Alcotest.test_case "compress: cached solve identical" `Quick
          test_compress_cached_solve_identical;
        QCheck_alcotest.to_alcotest prop_compress_no_x_cost;
        QCheck_alcotest.to_alcotest prop_compress_with_x_covers;
      ] );
  ]
