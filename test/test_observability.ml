(* Tracing/metrics layer: span nesting and cross-domain merge, the
   near-zero disabled path, metrics registry round-trips, and regression
   tests for the covering-solver consistency fixes that shipped with the
   observability work. *)

open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_core
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Trace ------------------------------------------------------------ *)

(* The tracer is process-global: serialise every test that touches it
   behind a fresh reset/disable bracket. *)
let with_tracer f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

let test_span_nesting () =
  with_tracer @@ fun () ->
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner-a" (fun () -> ());
        Trace.with_span "inner-b" ~args:[ ("k", "v") ] (fun () -> 41 + 1))
  in
  check_int "body result" 42 r;
  match Trace.events () with
  | [ outer; a; b ] ->
      check "order: parent first" true
        (outer.Trace.name = "outer" && a.Trace.name = "inner-a"
        && b.Trace.name = "inner-b");
      check "parent starts first" true (outer.Trace.ts_ns <= a.Trace.ts_ns);
      check "children ordered" true (a.Trace.ts_ns <= b.Trace.ts_ns);
      check "parent encloses children" true
        (Int64.add outer.Trace.ts_ns outer.Trace.dur_ns
        >= Int64.add b.Trace.ts_ns b.Trace.dur_ns);
      check "args kept" true (b.Trace.args = [ ("k", "v") ])
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_exception_recorded () =
  with_tracer @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  check "span recorded on exception" true (Trace.span_names () = [ "boom" ])

let test_instant () =
  with_tracer @@ fun () ->
  Trace.instant "marker" ~args:[ ("width", "100") ];
  match Trace.events () with
  | [ e ] ->
      check "instant phase" true (e.Trace.ph = 'i');
      check "zero duration" true (e.Trace.dur_ns = 0L)
  | _ -> Alcotest.fail "expected exactly one event"

(* Worker-domain spans land in per-domain buffers and merge at export:
   the multiset of span names must not depend on the job count. *)
let names_at_jobs jobs =
  with_tracer @@ fun () ->
  Pool.with_pool ~jobs (fun pool ->
      Pool.parallel_for ~pool ~chunk:1 ~total:16 (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            Trace.with_span (Printf.sprintf "job-%02d" i) (fun () -> ())
          done));
  List.sort compare (Trace.span_names ())

let test_merge_determinism () =
  let seq = names_at_jobs 1 in
  check_int "16 spans at jobs=1" 16 (List.length seq);
  check "jobs=1 = jobs=4" true (seq = names_at_jobs 4);
  check "jobs=1 = jobs=3" true (seq = names_at_jobs 3)

let test_disabled_zero_alloc () =
  Trace.disable ();
  let f = Fun.id in
  (* Warm up so the closure and any lazy setup are allocated. *)
  for _ = 1 to 100 do
    Trace.with_span "off" f
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.with_span "off" f
  done;
  let allocated = Gc.minor_words () -. before in
  (* One word of slack per 100 iterations covers harness noise; a clock
     read or event allocation per span would cost thousands. *)
  check "disabled span allocates nothing" true (allocated < 100.0)

let test_chrome_json_shape () =
  with_tracer @@ fun () ->
  Trace.with_span "a\"b" ~args:[ ("n", "1") ] (fun () -> ());
  let json = Trace.to_json () in
  let has s = contains json s in
  check "traceEvents key" true (has "\"traceEvents\"");
  check "escaped name" true (has "\"a\\\"b\"");
  check "complete phase" true (has "\"ph\":\"X\"");
  check "args object" true (has "\"args\":{\"n\":\"1\"}")

(* --- Metrics ---------------------------------------------------------- *)

let test_metrics_roundtrip () =
  let c = Metrics.counter ~help:"test counter" "obs_test_counter" in
  let g = Metrics.gauge "obs_test_gauge" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.set g 2.5;
  check_int "counter accumulates" (base + 42) (Metrics.value c);
  check "gauge holds" true (Metrics.gauge_value g = 2.5);
  (* Registration is idempotent: same name, same cell. *)
  let c' = Metrics.counter "obs_test_counter" in
  Metrics.incr c';
  check_int "same cell" (base + 43) (Metrics.value c);
  check "snapshot sees counter" true
    (Metrics.get "obs_test_counter" = Some (Metrics.Counter_v (base + 43)));
  check "snapshot sees gauge" true
    (Metrics.get "obs_test_gauge" = Some (Metrics.Gauge_v 2.5));
  check "help kept" true (Metrics.help "obs_test_counter" = Some "test counter");
  check "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge "obs_test_counter");
       false
     with Invalid_argument _ -> true);
  let names = List.map fst (Metrics.snapshot ()) in
  check "snapshot sorted" true (List.sort compare names = names)

let test_metrics_parallel_adds () =
  let c = Metrics.counter "obs_test_parallel" in
  let base = Metrics.value c in
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.parallel_for ~pool ~chunk:1 ~total:64 (fun ~worker:_ ~lo ~hi ->
          for _ = lo to hi - 1 do
            Metrics.add c 5
          done));
  check_int "atomic under contention" (base + 320) (Metrics.value c)

let test_metrics_json () =
  ignore (Metrics.counter "obs_test_json");
  let json = Metrics.to_json () in
  check "flat json has key" true (contains json "\"obs_test_json\":");
  let nd = Metrics.to_ndjson () in
  check "ndjson self-describing" true
    (List.exists
       (fun line -> contains line "\"name\":\"obs_test_json\"")
       (String.split_on_char '\n' nd))

(* --- Bugfix regressions ----------------------------------------------- *)

let matrix_of cols rows =
  let m = Matrix.create ~rows:(List.length rows) ~cols in
  List.iteri (fun i cs -> List.iter (fun j -> Matrix.set m ~row:i ~col:j) cs) rows;
  m

(* Ilp.solve on a matrix with an uncoverable column: cover the rest and
   report, exactly like Greedy.solve's silent skip — no more mid-flow
   crash on undetectable faults. *)
let test_ilp_uncovered_consistency () =
  let m = matrix_of 3 [ [ 0 ]; [ 2 ] ] in
  let r = Ilp.solve m in
  check "uncovered column reported" true (r.Ilp.uncovered = [ 1 ]);
  check "coverable columns solved" true (r.Ilp.selected = [ 0; 1 ]);
  check "complete" true (r.Ilp.optimal);
  check "greedy agrees on coverage" true
    (List.sort compare (Greedy.solve m) = r.Ilp.selected)

(* storage_bits: ceil(log2 T) counter, not floor + 1 — a power-of-two
   burst length no longer pays a phantom bit. *)
let test_storage_bits_pow2 () =
  let bits cycles =
    let t =
      Triplet.make ~seed:(Word.of_int 4 3) ~operand:(Word.of_int 4 1) ~cycles
    in
    Triplet.storage_bits t - 8
  in
  check_int "T=1 needs a bit" 1 (bits 1);
  check_int "T=2" 1 (bits 2);
  check_int "T=3" 2 (bits 3);
  check_int "T=8 is 3 bits, not 4" 3 (bits 8);
  check_int "T=9" 4 (bits 9);
  check_int "T=150" 8 (bits 150);
  check_int "T=1024 is 10 bits, not 11" 10 (bits 1024)

(* uniform_test_length must price the uniform-T scheme: every selected
   triplet at its full configured burst length, not the truncated cycles
   of the surviving subset. *)
let test_uniform_test_length () =
  let circuit = Library.load "c17" in
  let p = Suite.prepare_circuit circuit in
  let tpg = Accumulator.adder (Circuit.input_count circuit) in
  let cycles = 150 in
  let config =
    {
      Flow.default_config with
      Flow.builder = { Builder.default_config with Builder.cycles };
    }
  in
  let r = Flow.run ~config p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  let n_selected = List.length r.Flow.solution.Solution.rows in
  check "something selected" true (n_selected > 0);
  check_int "uniform = |selected| x configured T" (n_selected * cycles)
    r.Flow.uniform_test_length;
  check "uniform >= truncated total" true (r.Flow.uniform_test_length >= r.Flow.test_length)

(* default_taps: primitive polynomials all the way to width 64.
   Exhaustive maximal-orbit check while 2^w is small, no-short-cycle
   sanity beyond, metrics-visible fallback past 64. *)
let test_default_taps_maximal () =
  for w = 2 to 16 do
    let tpg = Lfsr.fibonacci w (Lfsr.default_taps w) in
    let seed = Word.of_int w 1 and operand = Word.zero w in
    let expected = (1 lsl w) - 1 in
    match Tpg.period tpg ~seed ~operand ~limit:(expected + 2) with
    | Some p -> check_int (Printf.sprintf "width %d maximal" w) expected p
    | None -> Alcotest.failf "width %d: no period within 2^w+2" w
  done

let test_default_taps_no_short_cycle () =
  List.iter
    (fun w ->
      let tpg = Lfsr.fibonacci w (Lfsr.default_taps w) in
      let seed = Word.of_int w 1 and operand = Word.zero w in
      check
        (Printf.sprintf "width %d: no cycle within 65535 steps" w)
        true
        (Tpg.period tpg ~seed ~operand ~limit:65_535 = None))
    [ 17; 23; 31; 36; 41; 54; 60; 64 ]

let test_default_taps_fallback_metric () =
  let before =
    match Metrics.get "lfsr_fallback_taps" with
    | Some (Metrics.Counter_v n) -> n
    | _ -> 0
  in
  check "fallback taps shape" true (Lfsr.default_taps 100 = [ 99; 0 ]);
  match Metrics.get "lfsr_fallback_taps" with
  | Some (Metrics.Counter_v n) -> check_int "fallback counted" (before + 1) n
  | _ -> Alcotest.fail "lfsr_fallback_taps not registered"

let suite =
  [
    ( "observability",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span on exception" `Quick test_span_exception_recorded;
        Alcotest.test_case "instant" `Quick test_instant;
        Alcotest.test_case "merge determinism across jobs" `Quick test_merge_determinism;
        Alcotest.test_case "disabled zero alloc" `Quick test_disabled_zero_alloc;
        Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
        Alcotest.test_case "metrics roundtrip" `Quick test_metrics_roundtrip;
        Alcotest.test_case "metrics parallel adds" `Quick test_metrics_parallel_adds;
        Alcotest.test_case "metrics json" `Quick test_metrics_json;
        Alcotest.test_case "ilp uncovered consistency" `Quick test_ilp_uncovered_consistency;
        Alcotest.test_case "storage bits pow2" `Quick test_storage_bits_pow2;
        Alcotest.test_case "uniform test length" `Quick test_uniform_test_length;
        Alcotest.test_case "taps maximal 2..16" `Quick test_default_taps_maximal;
        Alcotest.test_case "taps no short cycle" `Quick test_default_taps_no_short_cycle;
        Alcotest.test_case "taps fallback metric" `Quick test_default_taps_fallback_metric;
      ] );
  ]
