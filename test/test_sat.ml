open Reseed_sat

let check = Alcotest.(check bool)

let test_trivial_sat () =
  let s = Sat.create 2 in
  Sat.add_clause s [ 1; 2 ];
  (match Sat.solve s with
  | Sat.Sat model -> check "clause satisfied" true (model.(1) || model.(2))
  | _ -> Alcotest.fail "expected SAT")

let test_trivial_unsat () =
  let s = Sat.create 1 in
  Sat.add_clause s [ 1 ];
  Sat.add_clause s [ -1 ];
  check "unsat" true (Sat.solve s = Sat.Unsat)

let test_empty_clause () =
  let s = Sat.create 1 in
  Sat.add_clause s [];
  check "empty clause unsat" true (Sat.solve s = Sat.Unsat)

let test_tautology_dropped () =
  let s = Sat.create 1 in
  Sat.add_clause s [ 1; -1 ];
  Alcotest.(check int) "tautology not stored" 0 (Sat.clause_count s);
  check "sat" true (match Sat.solve s with Sat.Sat _ -> true | _ -> false)

let test_unit_propagation_chain () =
  let s = Sat.create 4 in
  Sat.add_clause s [ 1 ];
  Sat.add_clause s [ -1; 2 ];
  Sat.add_clause s [ -2; 3 ];
  Sat.add_clause s [ -3; 4 ];
  (match Sat.solve s with
  | Sat.Sat model -> check "chain implied" true (model.(1) && model.(2) && model.(3) && model.(4))
  | _ -> Alcotest.fail "expected SAT")

let test_unsat_needs_search () =
  (* pigeonhole PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT *)
  let s = Sat.create 6 in
  (* var p_{i,h} = 2*(i-1)+h for i in 1..3, h in 1..2 *)
  let v i h = (2 * (i - 1)) + h in
  for i = 1 to 3 do
    Sat.add_clause s [ v i 1; v i 2 ]
  done;
  for h = 1 to 2 do
    for i = 1 to 3 do
      for j = i + 1 to 3 do
        Sat.add_clause s [ -(v i h); -(v j h) ]
      done
    done
  done;
  check "php(3,2) unsat" true (Sat.solve s = Sat.Unsat)

let test_assumptions () =
  let s = Sat.create 2 in
  Sat.add_clause s [ 1; 2 ];
  check "assume both false" true (Sat.solve ~assumptions:[ -1; -2 ] s = Sat.Unsat);
  (match Sat.solve ~assumptions:[ -1 ] s with
  | Sat.Sat model -> check "forced other" true model.(2)
  | _ -> Alcotest.fail "expected SAT");
  check "contradictory assumptions" true (Sat.solve ~assumptions:[ 1; -1 ] s = Sat.Unsat)

(* Regression: [solve] used to honour only [max_conflicts] and never
   poll the wall-clock budget — a hung instance could blow through a
   flow deadline.  An expired (or cancelled) budget must now surface as
   [Unknown], mirroring [Ilp.solve]'s cooperative stride polling. *)
let test_budget_polled () =
  let php n =
    (* pigeonhole PHP(n+1, n): UNSAT and exponential for DPLL *)
    let s = Sat.create ((n + 1) * n) in
    let v i h = ((i - 1) * n) + h in
    for i = 1 to n + 1 do
      Sat.add_clause s (List.init n (fun h -> v i (h + 1)))
    done;
    for h = 1 to n do
      for i = 1 to n + 1 do
        for j = i + 1 to n + 1 do
          Sat.add_clause s [ -(v i h); -(v j h) ]
        done
      done
    done;
    s
  in
  let expired = Reseed_util.Budget.create ~deadline_s:0. () in
  check "expired budget -> Unknown" true
    (Sat.solve ~budget:expired (php 6) = Sat.Unknown);
  let cancelled = Reseed_util.Budget.create () in
  Reseed_util.Budget.cancel cancelled;
  check "cancelled budget -> Unknown" true
    (Sat.solve ~budget:cancelled (php 6) = Sat.Unknown);
  (* A live budget leaves the verdict alone. *)
  let live = Reseed_util.Budget.create ~deadline_s:60. () in
  check "live budget -> Unsat" true (Sat.solve ~budget:live (php 4) = Sat.Unsat)

let test_new_var_grows () =
  let s = Sat.create 1 in
  Alcotest.(check int) "initial vars" 1 (Sat.nvars s);
  let v = Sat.new_var s in
  Alcotest.(check int) "fresh var" 2 v;
  Alcotest.(check int) "grown" 2 (Sat.nvars s);
  Sat.add_clause s [ 1 ];
  Sat.add_clause s [ -1; v ];
  match Sat.solve s with
  | Sat.Sat model -> check "new var propagated" true model.(v)
  | _ -> Alcotest.fail "expected SAT"

let test_bad_literal () =
  let s = Sat.create 2 in
  Alcotest.check_raises "zero literal" (Invalid_argument "Sat.add_clause: bad literal")
    (fun () -> Sat.add_clause s [ 0 ]);
  Alcotest.check_raises "out of range" (Invalid_argument "Sat.add_clause: bad literal")
    (fun () -> Sat.add_clause s [ 3 ])

(* Property: every model returned satisfies every clause; and on random
   3-CNF near the threshold the solver always terminates with a sound
   answer (cross-checked by brute force on <= 12 variables). *)
let prop_model_sound_and_complete =
  QCheck.Test.make ~name:"sat agrees with brute force" ~count:80 QCheck.small_int
    (fun seed ->
      let rng = Reseed_util.Rng.create (seed + 5000) in
      let nv = 4 + Reseed_util.Rng.int rng 8 in
      let nc = 2 + Reseed_util.Rng.int rng (4 * nv) in
      let clauses =
        List.init nc (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Reseed_util.Rng.int rng nv in
                if Reseed_util.Rng.bool rng then v else -v))
      in
      let s = Sat.create nv in
      List.iter (Sat.add_clause s) clauses;
      let brute_sat =
        let rec try_assign mask =
          if mask >= 1 lsl nv then false
          else
            let holds =
              List.for_all
                (fun clause ->
                  List.exists
                    (fun l ->
                      let bit = mask lsr (abs l - 1) land 1 = 1 in
                      if l > 0 then bit else not bit)
                    clause)
                clauses
            in
            holds || try_assign (mask + 1)
        in
        try_assign 0
      in
      match Sat.solve s with
      | Sat.Sat model ->
          brute_sat
          && List.for_all
               (fun clause ->
                 List.exists (fun l -> if l > 0 then model.(l) else not model.(-l)) clause)
               clauses
      | Sat.Unsat -> not brute_sat
      | Sat.Unknown -> false)

let suite =
  [
    ( "sat",
      [
        Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
        Alcotest.test_case "empty clause" `Quick test_empty_clause;
        Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
        Alcotest.test_case "unit propagation chain" `Quick test_unit_propagation_chain;
        Alcotest.test_case "pigeonhole unsat" `Quick test_unsat_needs_search;
        Alcotest.test_case "assumptions" `Quick test_assumptions;
        Alcotest.test_case "budget polled" `Quick test_budget_polled;
        Alcotest.test_case "new_var grows" `Quick test_new_var_grows;
        Alcotest.test_case "bad literals rejected" `Quick test_bad_literal;
        QCheck_alcotest.to_alcotest prop_model_sound_and_complete;
      ] );
  ]
