open Reseed_netlist
open Reseed_fault
open Reseed_util

let check = Alcotest.(check bool)

let engines = [ Fault_sim.Event; Fault_sim.Cpt; Fault_sim.Hybrid ]

(* Build one simulator per engine over the same fault list. *)
let sims_for c =
  let faults = Fault.all c in
  List.map (fun e -> Fault_sim.create ~engine:e c faults) engines

let check_identical_maps c patterns =
  match sims_for c with
  | [] | [ _ ] -> assert false
  | ref_sim :: rest ->
      let ref_map = Fault_sim.detection_map ref_sim patterns in
      List.iter
        (fun sim ->
          let map = Fault_sim.detection_map sim patterns in
          Array.iteri
            (fun fi row ->
              if not (Bitvec.equal row ref_map.(fi)) then
                Alcotest.failf "%s/%s: fault %d detection word differs from event"
                  (Circuit.name c)
                  (Fault_sim.engine_name (Fault_sim.engine sim))
                  fi)
            map)
        rest

(* Random generated circuits crossed with random pattern blocks, including
   a block count that leaves the final word partially filled. *)
let test_random_circuits () =
  let rng = Rng.create 777 in
  List.iter
    (fun (seed, n_patterns) ->
      let spec =
        {
          (Generator.default_spec "cpt" ~inputs:8 ~outputs:3 ~gates:70) with
          Generator.seed = seed;
        }
      in
      let c = Generator.generate spec in
      let patterns =
        Array.init n_patterns (fun _ -> Array.init 8 (fun _ -> Rng.bool rng))
      in
      check_identical_maps c patterns)
    [ (1, 100); (2, 62); (3, 63); (4, 7); (5, 125) ]

let test_structured_circuits () =
  let rng = Rng.create 778 in
  List.iter
    (fun c ->
      let n = Circuit.input_count c in
      let patterns = Array.init 90 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
      check_identical_maps c patterns)
    [
      Library.c17 ();
      Library.ripple_adder 4;
      Library.comparator 4;
      Library.mux_tree 3;
      Library.alu 2;
    ]

(* detected_set with a sparse active mask must agree across engines (this
   exercises Hybrid's per-block fallback to event mode on thin tails). *)
let test_detected_set_partial_active () =
  let rng = Rng.create 779 in
  let c = Library.load "c432" in
  let faults = Fault.all c in
  let nf = Array.length faults in
  let n = Circuit.input_count c in
  let patterns = Array.init 80 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  List.iter
    (fun keep_one_in ->
      let active = Bitvec.create nf in
      for fi = 0 to nf - 1 do
        if fi mod keep_one_in = 0 then Bitvec.set active fi
      done;
      match
        List.map
          (fun e ->
            let sim = Fault_sim.create ~engine:e c faults in
            Fault_sim.detected_set sim patterns ~active)
          engines
      with
      | [ ev; cpt; hy ] ->
          check "cpt = event (partial active)" true (Bitvec.equal cpt ev);
          check "hybrid = event (partial active)" true (Bitvec.equal hy ev)
      | _ -> assert false)
    [ 1; 3; 17 ]

(* Fault dropping: the first-detecting pattern index per fault must be
   engine-independent. *)
let test_first_detections_identical () =
  let rng = Rng.create 780 in
  List.iter
    (fun name ->
      let c = Library.load name in
      let n = Circuit.input_count c in
      let patterns = Array.init 70 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
      match List.map (fun sim -> Fault_sim.first_detections sim patterns) (sims_for c) with
      | [ ev; cpt; hy ] ->
          Alcotest.(check (array (option int))) (name ^ " cpt firsts") ev cpt;
          Alcotest.(check (array (option int))) (name ^ " hybrid firsts") ev hy
      | _ -> assert false)
    [ "c17"; "s420" ]

(* The optimisation claim itself: on a reconvergent benchmark the CPT
   engines must launch fewer event propagations than the event engine. *)
let test_props_reduction () =
  let rng = Rng.create 781 in
  let c = Library.load "c432" in
  let n = Circuit.input_count c in
  let patterns = Array.init 124 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  match sims_for c with
  | [ ev_sim; cpt_sim; hy_sim ] ->
      List.iter (fun sim -> ignore (Fault_sim.detection_map sim patterns))
        [ ev_sim; cpt_sim; hy_sim ];
      let ev = Fault_sim.event_propagations ev_sim in
      let cpt = Fault_sim.event_propagations cpt_sim in
      let hy = Fault_sim.event_propagations hy_sim in
      if not (2 * cpt <= ev) then
        Alcotest.failf "cpt props %d not >=2x below event props %d" cpt ev;
      if not (2 * hy <= ev) then
        Alcotest.failf "hybrid props %d not >=2x below event props %d" hy ev
  | _ -> assert false

let suite =
  [
    ( "cpt-differential",
      [
        Alcotest.test_case "random circuits x blocks" `Quick test_random_circuits;
        Alcotest.test_case "structured circuits" `Quick test_structured_circuits;
        Alcotest.test_case "partial active masks" `Quick test_detected_set_partial_active;
        Alcotest.test_case "first detections" `Quick test_first_detections_identical;
        Alcotest.test_case "propagation reduction" `Quick test_props_reduction;
      ] );
  ]
