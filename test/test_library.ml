open Reseed_netlist
open Reseed_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let to_bits width v = Array.init width (fun i -> v lsr i land 1 = 1)
let of_bits bits = Array.fold_right (fun b acc -> (acc lsl 1) lor (if b then 1 else 0)) bits 0

let test_ripple_adder_functional () =
  let n = 4 in
  let c = Library.ripple_adder n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let pattern = Array.concat [ to_bits n a; to_bits n b; [| cin = 1 |] ] in
        let out = Logic_sim.output_response c pattern in
        (* outputs: s0..s3, cout *)
        let sum = of_bits out in
        if sum <> a + b + cin then
          Alcotest.failf "adder %d+%d+%d gave %d" a b cin sum
      done
    done
  done

let test_parity_functional () =
  let c = Library.parity 8 in
  for v = 0 to 255 do
    let pattern = to_bits 8 v in
    let out = Logic_sim.output_response c pattern in
    let expect = Reseed_util.Bitvec.popcount_int v land 1 = 1 in
    if out.(0) <> expect then Alcotest.failf "parity of %d wrong" v
  done

let test_mux_functional () =
  let k = 3 in
  let c = Library.mux_tree k in
  let n = 1 lsl k in
  for data = 0 to (1 lsl n) - 1 do
    for sel = 0 to n - 1 do
      let pattern = Array.concat [ to_bits n data; to_bits k sel ] in
      let out = Logic_sim.output_response c pattern in
      let expect = data lsr sel land 1 = 1 in
      if out.(0) <> expect then Alcotest.failf "mux data=%d sel=%d" data sel
    done
  done

let test_comparator_functional () =
  let n = 3 in
  let c = Library.comparator n in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let pattern = Array.concat [ to_bits n a; to_bits n b ] in
      let out = Logic_sim.output_response c pattern in
      (* outputs: eq, lt *)
      if out.(0) <> (a = b) then Alcotest.failf "eq %d %d" a b;
      if out.(1) <> (a < b) then Alcotest.failf "lt %d %d" a b
    done
  done

let test_alu_functional () =
  let n = 3 in
  let c = Library.alu n in
  let mask = (1 lsl n) - 1 in
  for a = 0 to mask do
    for b = 0 to mask do
      List.iteri
        (fun op expect ->
          let s0 = op land 1 = 1 and s1 = op lsr 1 land 1 = 1 in
          let pattern = Array.concat [ to_bits n a; to_bits n b; [| s0; s1 |] ] in
          let out = Logic_sim.output_response c pattern in
          let result = of_bits (Array.sub out 0 n) in
          if result <> expect land mask then
            Alcotest.failf "alu op=%d a=%d b=%d got %d want %d" op a b result
              (expect land mask))
        [ a + b; a land b; a lor b; a lxor b ]
    done
  done

let test_catalog_complete () =
  check "c17 in catalog" true (List.mem "c17" Library.names);
  check "s1238 in catalog" true (List.mem "s1238" Library.names);
  check "s15850 in catalog" true (List.mem "s15850" Library.names);
  check_int "18 paper circuits" 18 (List.length Library.names);
  check_int "22 total" 22 (List.length Library.all_names);
  check "extended loadable" true
    (List.for_all (fun n -> List.mem n Library.all_names) [ "c2670"; "c3540"; "c5315"; "c6288" ]);
  check "unknown circuit" true
    (try
       ignore (Library.spec_of "c9999");
       false
     with Reseed_util.Error.Reseed_error e -> e.Reseed_util.Error.code = Reseed_util.Error.Input_error)

let test_load_all_small () =
  List.iter
    (fun name ->
      let c = Library.load ~scale_factor:8 name in
      Circuit.validate c)
    Library.all_names

let test_c17_is_real () =
  let c = Library.load "c17" in
  (* the canonical c17 netlist, not a synthetic stand-in *)
  check_int "6 NANDs" 6 (Circuit.gate_count c);
  Array.iter
    (fun (n : Circuit.node) ->
      if n.Circuit.kind <> Gate.Input then
        check "all gates NAND" true (n.Circuit.kind = Gate.Nand))
    c.Circuit.nodes

let suite =
  [
    ( "library",
      [
        Alcotest.test_case "ripple adder adds" `Quick test_ripple_adder_functional;
        Alcotest.test_case "parity tree" `Quick test_parity_functional;
        Alcotest.test_case "mux tree selects" `Quick test_mux_functional;
        Alcotest.test_case "comparator compares" `Quick test_comparator_functional;
        Alcotest.test_case "alu computes" `Quick test_alu_functional;
        Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
        Alcotest.test_case "all catalog circuits load (scaled)" `Slow test_load_all_small;
        Alcotest.test_case "c17 is the real netlist" `Quick test_c17_is_real;
      ] );
  ]
