(* Stage pipeline over the content-addressed artifact store: fingerprint
   invalidation (every upstream knob must miss the cache; identical
   reruns must hit bit-identically), corruption recovery, cached-vs-plain
   flow equality, the shared-prefix trade-off sweep, and the batch
   campaign runner. *)

open Reseed_core
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reseed-pipeline-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f (Artifact.open_store dir))

(* Counter deltas around a thunk — counters are global and monotonic. *)
let metric name = Metrics.value (Metrics.counter name)

let delta name f =
  let before = metric name in
  let v = f () in
  (v, metric name - before)

(* --- fingerprints ----------------------------------------------------- *)

let test_fingerprint_combinators () =
  let open Fingerprint in
  let h = salted "test" in
  check "deterministic" true (equal (string h "a") (string h "a"));
  check "value sensitive" false (equal (string h "a") (string h "b"));
  check "salt sensitive" false (equal (string (salted "other") "a") (string h "a"));
  (* Concatenation must not collide across field boundaries. *)
  check "length framed" false
    (equal (string (string h "ab") "c") (string (string h "a") "bc"));
  check "option framed" false (equal (option int h None) (option int h (Some 0)));
  check "list framed" false (equal (list int h [ 1; 2 ]) (list int h [ 12 ]));
  check_int "hex width" 16 (String.length (to_hex h))

let test_circuit_fingerprint () =
  let a = Suite.circuit_fingerprint (Library.load "c17") in
  let b = Suite.circuit_fingerprint (Library.load "c17") in
  let c = Suite.circuit_fingerprint (Library.load "c432") in
  check "same netlist, same fp" true (Fingerprint.equal a b);
  check "different netlist, different fp" false (Fingerprint.equal a c)

(* --- artifact store --------------------------------------------------- *)

let enc_str s = Some s
let dec_str r = Artifact.Codec.get_str r

let test_artifact_cached_and_corruption () =
  with_store @@ fun store ->
  let fp = Fingerprint.string (Fingerprint.salted "t") "payload" in
  let computes = ref 0 in
  let run () =
    Artifact.cached (Some store) ~stage:"t" ~fp
      ~encode:(fun v ->
        let b = Buffer.create 16 in
        Artifact.Codec.str b v;
        enc_str (Buffer.contents b))
      ~decode:dec_str
      (fun () ->
        incr computes;
        "hello")
  in
  let v1, misses = delta "artifact_misses" run in
  check_string "cold computes" "hello" v1;
  check_int "cold misses" 1 misses;
  let v2, hits = delta "artifact_hits" run in
  check_string "warm decodes" "hello" v2;
  check_int "warm hits" 1 hits;
  check_int "computed once" 1 !computes;
  (* Flip a payload byte: the checksum must reject it and the value must
     be recomputed and re-persisted. *)
  let path = Artifact.path store ~stage:"t" fp in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let bad = Bytes.of_string data in
  let last = Bytes.length bad - 1 in
  Bytes.set bad last (Char.chr (Char.code (Bytes.get bad last) lxor 0xff));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bad);
  let v3, corrupt = delta "artifact_corrupt" run in
  check_string "corrupt recomputes" "hello" v3;
  check_int "corruption detected" 1 corrupt;
  check_int "recomputed" 2 !computes;
  let v4, hits = delta "artifact_hits" run in
  check_string "overwritten artifact hits again" "hello" v4;
  check_int "rewarm hits" 1 hits

(* --- ATPG-stage invalidation ------------------------------------------ *)

let test_atpg_stage_invalidation () =
  with_store @@ fun store ->
  let c = Library.load "c17" in
  let prep ?atpg_config ?sim_engine ?collapse () =
    Suite.prepare_circuit ?atpg_config ?sim_engine ?collapse ~store c
  in
  let p_cold, m = delta "stage_atpg_cache_misses" (fun () -> prep ()) in
  check_int "cold run misses" 1 m;
  let p_warm, h = delta "stage_atpg_cache_hits" (fun () -> prep ()) in
  check_int "identical rerun hits" 1 h;
  check "warm tests identical" true (p_warm.Suite.tests = p_cold.Suite.tests);
  check "warm targets identical" true
    (Bitvec.equal p_warm.Suite.targets p_cold.Suite.targets);
  check "warm fingerprint identical" true
    (Fingerprint.equal p_warm.Suite.fingerprint p_cold.Suite.fingerprint);
  (* Each upstream knob must change the stage key. *)
  let miss name f =
    let p, m = delta "stage_atpg_cache_misses" f in
    check_int (name ^ " misses") 1 m;
    check (name ^ " changes fingerprint") false
      (Fingerprint.equal p.Suite.fingerprint p_cold.Suite.fingerprint)
  in
  miss "ATPG config" (fun () ->
      prep
        ~atpg_config:
          { Reseed_atpg.Atpg.default_config with Reseed_atpg.Atpg.seed = 99 }
        ());
  miss "sim engine" (fun () -> prep ~sim_engine:Reseed_fault.Fault_sim.Event ());
  miss "collapse mode" (fun () -> prep ~collapse:true ());
  (* A different netlist misses too (fresh store dir proves nothing —
     same store, different circuit key). *)
  let _, m =
    delta "stage_atpg_cache_misses" (fun () ->
        Suite.prepare_circuit ~store (Library.load "c432"))
  in
  check_int "netlist misses" 1 m

(* --- matrix-stage caching --------------------------------------------- *)

let test_matrix_stage_bit_identity () =
  with_store @@ fun store ->
  let p = Suite.prepare_circuit (Library.load "c17") in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let build ~cycles =
    let config = { Builder.default_config with Builder.cycles } in
    let fp =
      Builder.fingerprint ~salt:p.Suite.fingerprint ~tests:p.Suite.tests
        ~targets:p.Suite.targets tpg ~config
    in
    Builder.build ~store ~fingerprint:fp p.Suite.sim tpg ~tests:p.Suite.tests
      ~targets:p.Suite.targets ~config
  in
  let cold, m = delta "stage_matrix_cache_misses" (fun () -> build ~cycles:40) in
  check_int "cold misses" 1 m;
  let warm, h = delta "stage_matrix_cache_hits" (fun () -> build ~cycles:40) in
  check_int "warm hits" 1 h;
  check_int "warm run simulates nothing" 0 warm.Builder.fault_sims;
  check "matrix bit-identical" true
    (Array.for_all
       (fun i ->
         Bitvec.equal (Matrix.row cold.Builder.matrix i) (Matrix.row warm.Builder.matrix i))
       (Array.init (Matrix.rows cold.Builder.matrix) Fun.id));
  check "useful_cycles identical" true
    (cold.Builder.useful_cycles = warm.Builder.useful_cycles);
  check "triplets identical" true (cold.Builder.triplets = warm.Builder.triplets);
  (* Builder cycles participate in the key. *)
  let _, m = delta "stage_matrix_cache_misses" (fun () -> build ~cycles:80) in
  check_int "different cycles miss" 1 m

(* --- staged flow vs plain flow ---------------------------------------- *)

let flow_signature r =
  ( Flow.reseedings r,
    r.Flow.test_length,
    r.Flow.uniform_test_length,
    r.Flow.final_triplets,
    r.Flow.coverage_pct,
    r.Flow.degraded )

let test_staged_flow_matches_plain () =
  with_store @@ fun store ->
  let p = Suite.prepare_circuit (Library.load "c17") in
  let tpg = Accumulator.multiplier (Circuit.input_count p.Suite.circuit) in
  let run ?store ?fingerprint () =
    Flow.run ?store ?fingerprint p.Suite.sim tpg ~tests:p.Suite.tests
      ~targets:p.Suite.targets
  in
  let plain = run () in
  let cold = run ~store ~fingerprint:p.Suite.fingerprint () in
  let warm, sims =
    delta "fault_sims" (fun () -> run ~store ~fingerprint:p.Suite.fingerprint ())
  in
  check "cold = plain" true (flow_signature cold = flow_signature plain);
  check "warm = plain" true (flow_signature warm = flow_signature plain);
  check_int "fully warm run simulates nothing" 0 sims;
  check "verifies" true (Flow.verify p.Suite.sim tpg warm)

(* --- trade-off sweep --------------------------------------------------- *)

let test_sweep_matches_per_point_runs () =
  with_store @@ fun store ->
  let p = Suite.prepare_circuit (Library.load "c17") in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let grid = [ 10; 20; 40 ] in
  let sweep () =
    Tradeoff.sweep ~store ~fingerprint:p.Suite.fingerprint p.Suite.sim tpg
      ~tests:p.Suite.tests ~targets:p.Suite.targets ~grid
  in
  let points = sweep () in
  let naive =
    List.map
      (fun cycles ->
        let config =
          {
            Flow.default_config with
            Flow.builder = { Builder.default_config with Builder.cycles };
          }
        in
        let r =
          Flow.run ~config p.Suite.sim tpg ~tests:p.Suite.tests
            ~targets:p.Suite.targets
        in
        { Tradeoff.cycles; triplets = Flow.reseedings r; test_length = r.Flow.test_length })
      grid
  in
  check "prefix-shared sweep = naive per-point flows" true (points = naive);
  let warm, h = delta "stage_sweep_cache_hits" sweep in
  check "warm sweep identical" true (warm = points);
  check_int "first-detection table hits" 1 h

let test_default_grid_edges () =
  Alcotest.check_raises "0 rejected"
    (Invalid_argument "Tradeoff.default_grid: max_cycles must be >= 1") (fun () ->
      ignore (Tradeoff.default_grid ~max_cycles:0));
  Alcotest.(check (list int)) "below 8" [ 5 ] (Tradeoff.default_grid ~max_cycles:5);
  Alcotest.(check (list int)) "exactly 8" [ 8 ] (Tradeoff.default_grid ~max_cycles:8);
  Alcotest.(check (list int))
    "doubling" [ 8; 16; 32; 64 ]
    (Tradeoff.default_grid ~max_cycles:100)

let test_render_zero_triplets () =
  let s =
    Tradeoff.render
      [
        { Tradeoff.cycles = 8; triplets = 0; test_length = 0 };
        { Tradeoff.cycles = 16; triplets = 0; test_length = 0 };
      ]
  in
  check "renders without dividing by zero" true (String.length s > 0)

(* --- reduction guard --------------------------------------------------- *)

let test_col_dominance_limit_skips () =
  (* Cyclic instance: every column is covered twice or more and no row's
     cover is a subset of another's, so columns survive the essentiality
     and row-dominance passes and the column-dominance guard is reached. *)
  let m =
    Matrix.of_rows ~cols:6
      (Array.of_list
         (List.map (Bitvec.of_list 6)
            [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 5 ]; [ 0; 5 ]; [ 1; 4 ]; [ 2; 5 ] ]))
  in
  let limited =
    { Reduce.default_config with Reduce.col_dominance_limit = 2 }
  in
  let r, skipped =
    delta "reduce_coldom_skipped" (fun () -> Reduce.run ~config:limited m)
  in
  check "pass skipped at least once" true (skipped >= 1);
  (* Skipping the pass must match disabling it outright. *)
  let off =
    Reduce.run ~config:{ Reduce.default_config with Reduce.col_dominance = false } m
  in
  check "limited = disabled" true
    (r.Reduce.necessary = off.Reduce.necessary
    && r.Reduce.remaining_rows = off.Reduce.remaining_rows
    && r.Reduce.remaining_cols = off.Reduce.remaining_cols);
  let full, skipped_full =
    delta "reduce_coldom_skipped" (fun () -> Reduce.run m)
  in
  check_int "default limit never skips here" 0 skipped_full;
  check_int "col dominance active by default" full.Reduce.cols_dominated
    full.Reduce.cols_dominated

(* --- budgets ----------------------------------------------------------- *)

let test_budget_sub () =
  let parent = Budget.create () in
  let child = Budget.sub ~deadline_s:(-1.0) parent in
  check "child trips on own deadline" true (Budget.expired child);
  check "parent unaffected by child" false (Budget.expired parent);
  check "child reason" true (Budget.stop_reason child = Some Budget.Deadline);
  let child2 = Budget.sub parent in
  check "fresh child live" false (Budget.expired child2);
  Budget.cancel parent;
  check "parent expiry reaches child" true (Budget.expired child2);
  check "reason inherited" true (Budget.stop_reason child2 = Some Budget.Cancelled)

(* --- batch runner ------------------------------------------------------ *)

let manifest_text =
  {|
# two circuits x one TPG, one explicit extra
circuits = c17
tpgs     = adder, subtracter
cycles   = 40
method   = exact
job c17 multiplier 60
|}

let test_batch_parse () =
  let m = Batch.parse_string manifest_text in
  check "method" true (m.Batch.method_ = Solution.Exact);
  check "objective defaults" true (m.Batch.objective = Flow.Min_triplets);
  check_int "scale defaults" 1 m.Batch.scale;
  check "no deadline" true (m.Batch.job_deadline = None);
  let reseed tpg cycles =
    Batch.Reseed { tpg; cycles; fault_model = Reseed_fault.Fault_model.Stuck_at }
  in
  check "jobs: cross product then explicit" true
    (m.Batch.jobs
    = [
        { Batch.circuit = "c17"; task = reseed "adder" 40 };
        { Batch.circuit = "c17"; task = reseed "subtracter" 40 };
        { Batch.circuit = "c17"; task = reseed "multiplier" 60 };
      ])

let test_batch_parse_errors () =
  let rejects name text =
    match Batch.parse_string text with
    | exception Error.Reseed_error e ->
        check (name ^ " is an input error") true (e.Error.code = Error.Input_error)
    | _ -> Alcotest.failf "%s: expected Reseed_error" name
  in
  rejects "unknown key" "frobnicate = 1\njob c17 adder 10";
  rejects "unknown tpg" "job c17 warp-core 10";
  rejects "bad cycles" "job c17 adder zero";
  rejects "bad job arity" "job c17 adder";
  rejects "empty manifest" "# nothing here\n";
  rejects "missing tpgs" "circuits = c17\ncycles = 10"

let test_batch_cold_warm_reports_identical () =
  with_store @@ fun store ->
  let m = Batch.parse_string manifest_text in
  let r_cold = Batch.run ~store m in
  let json_cold = Batch.report_json m r_cold in
  let r_warm, hits = delta "artifact_hits" (fun () -> Batch.run ~store m) in
  check "cold/warm results identical" true (r_cold = r_warm);
  check_string "cold/warm reports byte-identical" json_cold
    (Batch.report_json m r_warm);
  check "warm campaign hits the store" true (hits > 0);
  check "all ok" true (List.for_all (fun r -> r.Batch.status = Batch.Ok) r_warm)

let test_batch_expired_budget_skips () =
  let m = Batch.parse_string manifest_text in
  let budget = Budget.create () in
  Budget.cancel budget;
  let rs = Batch.run ~budget m in
  check "all skipped" true (List.for_all (fun r -> r.Batch.status = Batch.Skipped) rs);
  check_int "still one result per job" (List.length m.Batch.jobs) (List.length rs)

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "fingerprint: combinators framed" `Quick
          test_fingerprint_combinators;
        Alcotest.test_case "fingerprint: circuit structure" `Quick
          test_circuit_fingerprint;
        Alcotest.test_case "artifact: cached + corruption recovery" `Quick
          test_artifact_cached_and_corruption;
        Alcotest.test_case "atpg stage: every knob invalidates" `Quick
          test_atpg_stage_invalidation;
        Alcotest.test_case "matrix stage: warm hit bit-identical" `Quick
          test_matrix_stage_bit_identity;
        Alcotest.test_case "flow: staged = plain, warm sims nothing" `Quick
          test_staged_flow_matches_plain;
        Alcotest.test_case "sweep: prefix sharing = per-point flows" `Quick
          test_sweep_matches_per_point_runs;
        Alcotest.test_case "tradeoff: default_grid edges" `Quick test_default_grid_edges;
        Alcotest.test_case "tradeoff: render all-zero series" `Quick
          test_render_zero_triplets;
        Alcotest.test_case "reduce: col-dominance limit skips" `Quick
          test_col_dominance_limit_skips;
        Alcotest.test_case "budget: sub-budget semantics" `Quick test_budget_sub;
        Alcotest.test_case "batch: manifest parses" `Quick test_batch_parse;
        Alcotest.test_case "batch: bad manifests rejected" `Quick
          test_batch_parse_errors;
        Alcotest.test_case "batch: cold/warm reports identical" `Quick
          test_batch_cold_warm_reports_identical;
        Alcotest.test_case "batch: expired budget skips jobs" `Quick
          test_batch_expired_budget_skips;
      ] );
  ]
