let () =
  Alcotest.run "reseed"
    (Test_bitvec.suite @ Test_word.suite @ Test_rng.suite @ Test_stats_table.suite
   @ Test_gate.suite @ Test_circuit.suite @ Test_bench_io.suite
   @ Test_generator.suite @ Test_library.suite @ Test_logic_sim.suite
   @ Test_fault.suite @ Test_fault_sim.suite @ Test_ffr.suite @ Test_cpt.suite
   @ Test_ternary.suite
   @ Test_testability.suite @ Test_podem.suite @ Test_compact_random.suite
   @ Test_atpg.suite @ Test_tpg.suite @ Test_setcover.suite
   @ Test_portfolio.suite @ Test_sat.suite @ Test_satpg.suite
   @ Test_ga_gatsby.suite @ Test_flow.suite @ Test_fullscan_misr.suite
   @ Test_diagnose.suite @ Test_parallel.suite @ Test_properties.suite
   @ Test_observability.suite @ Test_pipeline.suite
   @ Test_workload.suite
   @ Test_robustness.suite @ Test_resilience.suite @ Test_scale.suite
   @ Test_chaos.suite @ Test_integration.suite)
