open Reseed_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- hand-built netlists ------------------------------------------------ *)

(* a -> buf -> buf -> PO.  One FFR rooted at the final buffer. *)
let test_buffer_chain () =
  let b = Circuit.Builder.create "chain" in
  let a = Circuit.Builder.add_input b "a" in
  let b1 = Circuit.Builder.add_gate b Gate.Buf [ a ] "b1" in
  let b2 = Circuit.Builder.add_gate b Gate.Buf [ b1 ] "b2" in
  Circuit.Builder.mark_output b b2;
  let c = Circuit.Builder.finalize b in
  let f = Ffr.compute c in
  let a = Circuit.find c "a"
  and b1 = Circuit.find c "b1"
  and b2 = Circuit.find c "b2" in
  check "a not stem" false (Ffr.is_stem f a);
  check "b1 not stem" false (Ffr.is_stem f b1);
  check "b2 is stem (PO)" true (Ffr.is_stem f b2);
  check_int "stem_of a" b2 (Ffr.stem_of f a);
  check_int "stem_of b1" b2 (Ffr.stem_of f b1);
  check_int "stem_of b2" b2 (Ffr.stem_of f b2);
  check_int "one stem" 1 (Ffr.stem_count f);
  (* idoms: everything funnels through b2, b2's idom is the sink. *)
  check_int "idom a" b1 (Ffr.idom f a);
  check_int "idom b1" b2 (Ffr.idom f b1);
  check_int "idom b2" (Ffr.sink f) (Ffr.idom f b2)

(* Reconvergent fanout: a feeds g1 = AND(a,b) and g2 = OR(a,b); both feed
   g3 = XOR(g1,g2), the only PO.  a and b are stems; their effects
   reconverge exactly at g3. *)
let test_reconvergent () =
  let b = Circuit.Builder.create "reconv" in
  let ia = Circuit.Builder.add_input b "a" in
  let ib = Circuit.Builder.add_input b "b" in
  let g1 = Circuit.Builder.add_gate b Gate.And [ ia; ib ] "g1" in
  let g2 = Circuit.Builder.add_gate b Gate.Or [ ia; ib ] "g2" in
  let g3 = Circuit.Builder.add_gate b Gate.Xor [ g1; g2 ] "g3" in
  Circuit.Builder.mark_output b g3;
  let c = Circuit.Builder.finalize b in
  let f = Ffr.compute c in
  let ia = Circuit.find c "a"
  and ib = Circuit.find c "b"
  and g1 = Circuit.find c "g1"
  and g2 = Circuit.find c "g2"
  and g3 = Circuit.find c "g3" in
  check "a is stem" true (Ffr.is_stem f ia);
  check "b is stem" true (Ffr.is_stem f ib);
  check "g1 not stem" false (Ffr.is_stem f g1);
  check "g2 not stem" false (Ffr.is_stem f g2);
  check "g3 is stem" true (Ffr.is_stem f g3);
  check_int "stem_of g1" g3 (Ffr.stem_of f g1);
  check_int "stem_of g2" g3 (Ffr.stem_of f g2);
  check_int "idom a = reconvergence" g3 (Ffr.idom f ia);
  check_int "idom b = reconvergence" g3 (Ffr.idom f ib);
  check_int "idom g3" (Ffr.sink f) (Ffr.idom f g3)

(* A node that is both a PO and fans out to further logic: its paths to
   observation share no interior node, so its idom is the sink. *)
let test_multi_output_stem () =
  let b = Circuit.Builder.create "mo" in
  let ia = Circuit.Builder.add_input b "a" in
  let ib = Circuit.Builder.add_input b "b" in
  let g1 = Circuit.Builder.add_gate b Gate.And [ ia; ib ] "g1" in
  let g2 = Circuit.Builder.add_gate b Gate.Not [ g1 ] "g2" in
  Circuit.Builder.mark_output b g1;
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finalize b in
  let f = Ffr.compute c in
  let g1 = Circuit.find c "g1" and g2 = Circuit.find c "g2" in
  check "g1 is stem" true (Ffr.is_stem f g1);
  check_int "idom g1 = sink" (Ffr.sink f) (Ffr.idom f g1);
  check_int "idom g2 = sink" (Ffr.sink f) (Ffr.idom f g2)

(* A gate driving the same fanin twice: two fanout edges to one gate make
   the feeder a stem (multi-pin effects would otherwise need multi-path
   derivatives inside the FFR). *)
let test_duplicate_edge_stem () =
  let b = Circuit.Builder.create "dup" in
  let ia = Circuit.Builder.add_input b "a" in
  let g1 = Circuit.Builder.add_gate b Gate.And [ ia; ia ] "g1" in
  Circuit.Builder.mark_output b g1;
  let c = Circuit.Builder.finalize b in
  let f = Ffr.compute c in
  let ia = Circuit.find c "a" in
  check "duplicate-edge feeder is stem" true (Ffr.is_stem f ia)

(* --- property tests on generated circuits ------------------------------- *)

(* Stem map is a fixpoint: stem_of i is a stem, and following the unique
   fanout edge of a non-stem lands on a node with the same stem. *)
let prop_stem_fixpoint () =
  List.iter
    (fun seed ->
      let spec =
        {
          (Generator.default_spec "ffr" ~inputs:8 ~outputs:4 ~gates:60) with
          Generator.seed;
        }
      in
      let c = Generator.generate spec in
      let f = Ffr.compute c in
      for i = 0 to Circuit.node_count c - 1 do
        let s = Ffr.stem_of f i in
        check "stem_of lands on a stem" true (Ffr.is_stem f s);
        if not (Ffr.is_stem f i) then begin
          check_int "one fanout edge" 1 (Array.length c.Circuit.fanouts.(i));
          check_int "fanout shares stem" s (Ffr.stem_of f c.Circuit.fanouts.(i).(0))
        end
      done)
    [ 11; 12; 13 ]

(* Brute-force dominator oracle: d > i dominates i iff removing d cuts
   every path from i to the sink.  idom must be the minimum dominator. *)
let prop_idom_brute_force () =
  List.iter
    (fun seed ->
      let spec =
        {
          (Generator.default_spec "dom" ~inputs:6 ~outputs:3 ~gates:40) with
          Generator.seed;
        }
      in
      let c = Generator.generate spec in
      let f = Ffr.compute c in
      let n = Circuit.node_count c in
      let sink = n in
      let is_po = Array.make n false in
      Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
      (* reaches the sink from [i] while never visiting [avoid]? *)
      let reaches_avoiding i avoid =
        let seen = Array.make (n + 1) false in
        let rec go j =
          if j = avoid || seen.(j) then false
          else if j = sink then true
          else begin
            seen.(j) <- true;
            (is_po.(j) && avoid <> sink && go sink)
            || Array.exists go c.Circuit.fanouts.(j)
          end
        in
        go i
      in
      for i = 0 to n - 1 do
        if not (reaches_avoiding i (-2)) then
          check_int (Printf.sprintf "dead node %d" i) (-1) (Ffr.idom f i)
        else begin
          check "reaches_po agrees" true (Ffr.reaches_po f i);
          let doms = ref [] in
          for d = n downto i + 1 do
            if not (reaches_avoiding i d) then doms := d :: !doms
          done;
          let expected = match !doms with [] -> sink | d :: _ -> d in
          check_int (Printf.sprintf "idom %d" i) expected (Ffr.idom f i)
        end
      done)
    [ 21; 22 ]

let suite =
  [
    ( "ffr",
      [
        Alcotest.test_case "buffer chain" `Quick test_buffer_chain;
        Alcotest.test_case "reconvergent fanout" `Quick test_reconvergent;
        Alcotest.test_case "multi-output stem" `Quick test_multi_output_stem;
        Alcotest.test_case "duplicate-edge stem" `Quick test_duplicate_edge_stem;
        Alcotest.test_case "stem fixpoint (random)" `Quick prop_stem_fixpoint;
        Alcotest.test_case "idom vs brute force (random)" `Quick prop_idom_brute_force;
      ] );
  ]
