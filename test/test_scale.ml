(* Scale-tier equivalence properties: the three Rowset representations
   are interchangeable, the sharded matrix build reproduces the
   monolithic one, and the streaming reduction matches a direct
   column-wise reference on random instances and real built matrices. *)

open Reseed_core
open Reseed_fault
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let reprs = [ Rowset.Dense; Rowset.Sparse; Rowset.Big ]

(* Run [f] with every subsequent [Rowset.of_bitvec] pinned to [r],
   restoring the automatic policy (or whatever RESEED_ROWSET forced)
   afterwards even on failure. *)
let with_force r f =
  let prev = Rowset.forced () in
  Rowset.set_force r;
  Fun.protect ~finally:(fun () -> Rowset.set_force prev) f

let random_bitvec rng len ~density =
  let v = Bitvec.create len in
  for i = 0 to len - 1 do
    if Rng.int rng 100 < density then Bitvec.set v i
  done;
  v

(* Every representation of the same bit set answers every query the
   dense one does. *)
let prop_rowset_equivalence =
  QCheck.Test.make ~name:"rowset: dense/sparse/big are interchangeable"
    ~count:60
    QCheck.(triple (int_range 1 300) (int_bound 100) (int_bound 9999))
    (fun (len, density, seed) ->
      let rng = Rng.create seed in
      let v = random_bitvec rng len ~density in
      let mask = random_bitvec rng len ~density:70 in
      let other = random_bitvec rng len ~density in
      let dense = Rowset.dense_of_bitvec v in
      List.for_all
        (fun r ->
          let row = with_force (Some r) (fun () -> Rowset.of_bitvec v) in
          Rowset.repr row = r
          && Rowset.count row = Bitvec.count v
          && Rowset.length row = len
          && Bitvec.equal (Rowset.to_bitvec row) v
          && Rowset.equal row dense
          && Rowset.to_list row = Bitvec.to_list v)
        reprs
      &&
      (* Set algebra agrees with the Bitvec reference for every
         representation, and subset_masked for every representation
         pair. *)
      List.for_all
        (fun r ->
          let row = with_force (Some r) (fun () -> Rowset.of_bitvec v) in
          let i = Rng.int rng len in
          let u = Bitvec.create len in
          Rowset.union_into ~into:u row;
          let d = Bitvec.copy mask in
          Rowset.diff_into ~into:d row;
          let d_ref = Bitvec.copy mask in
          Bitvec.iter_ones (fun j -> Bitvec.clear d_ref j) v;
          Rowset.mem row i = Bitvec.get v i
          && Bitvec.equal u v
          && Bitvec.equal d d_ref
          && Rowset.count_inter row mask = Bitvec.count_inter v mask
          && Rowset.intersects row mask = (Bitvec.count_inter v mask > 0)
          && List.for_all
               (fun r2 ->
                 let row2 = with_force (Some r2) (fun () -> Rowset.of_bitvec other) in
                 Rowset.subset_masked row row2 ~mask
                 = Bitvec.subset_masked v other ~mask
                 && Rowset.equal row row2 = Bitvec.equal v other)
               reprs)
        reprs)

let prop_big_roundtrip =
  QCheck.Test.make ~name:"bitvec.big: off-heap round-trip" ~count:60
    QCheck.(triple (int_range 1 500) (int_bound 100) (int_bound 9999))
    (fun (len, density, seed) ->
      let rng = Rng.create seed in
      let v = random_bitvec rng len ~density in
      let b = Bitvec.Big.of_bitvec v in
      Bitvec.Big.count b = Bitvec.count v
      && Bitvec.equal (Bitvec.Big.to_bitvec b) v
      && Bitvec.Big.fold_ones (fun acc i -> acc && Bitvec.get v i) true b
      &&
      let i = Rng.int rng len in
      Bitvec.Big.get b i = Bitvec.get v i)

(* The automatic policy honours the density cutover: rows at or below
   one set bit per 64 columns go sparse. *)
let prop_rowset_policy =
  QCheck.Test.make ~name:"rowset: density cutover policy" ~count:40
    QCheck.(pair (int_range 64 2000) (int_bound 9999))
    (fun (len, seed) ->
      let rng = Rng.create seed in
      let sparse_v = Bitvec.create len in
      Bitvec.set sparse_v (Rng.int rng len);
      let dense_v = random_bitvec rng len ~density:50 in
      Rowset.repr (Rowset.of_bitvec sparse_v) = Rowset.Sparse
      && Rowset.repr (Rowset.of_bitvec dense_v) <> Rowset.Sparse)

(* --- Sharded build vs monolithic build ------------------------------- *)

let build_fixture () =
  let spec =
    { (Generator.default_spec "scale-test" ~inputs:8 ~outputs:3 ~gates:60)
      with Generator.seed = 4242 }
  in
  let c = Generator.generate spec in
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let rng = Rng.create 7 in
  (* More rows than Checkpoint.chunk_rows, so the sharded build spans
     several shard artifacts. *)
  let tests = Array.init 40 (fun _ -> Array.init 8 (fun _ -> Rng.bool rng)) in
  let targets = Bitvec.create (Array.length faults) in
  Bitvec.fill_all targets;
  let tpg = Accumulator.adder 8 in
  (sim, tpg, tests, targets)

let same_build (a : Builder.t) (b : Builder.t) =
  Alcotest.(check int) "rows" (Matrix.rows a.Builder.matrix) (Matrix.rows b.Builder.matrix);
  Alcotest.(check int) "cols" (Matrix.cols a.Builder.matrix) (Matrix.cols b.Builder.matrix);
  Alcotest.(check int) "ones" (Matrix.ones a.Builder.matrix) (Matrix.ones b.Builder.matrix);
  for i = 0 to Matrix.rows a.Builder.matrix - 1 do
    if not (Rowset.equal (Matrix.rowset a.Builder.matrix i) (Matrix.rowset b.Builder.matrix i))
    then Alcotest.failf "row %d differs between builds" i
  done;
  Alcotest.(check (array int)) "useful_cycles" a.Builder.useful_cycles b.Builder.useful_cycles

let with_tmp_store f =
  let dir = Filename.temp_file "reseed-scale" "" in
  Sys.remove dir;
  let finally () =
    if Sys.file_exists dir then ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
  in
  Fun.protect ~finally (fun () -> f (Artifact.open_store dir))

let test_sharded_build_matches () =
  let sim, tpg, tests, targets = build_fixture () in
  let config = Builder.default_config in
  let mono = Builder.build sim tpg ~tests ~targets ~config in
  with_tmp_store @@ fun store ->
  let sharded = Builder.build ~store sim tpg ~tests ~targets ~config in
  same_build mono sharded;
  (* Drop the whole-stage artifact but keep the shards: the rebuild must
     restore every row from them without a single fault simulation. *)
  let fp = Builder.fingerprint ~tests ~targets tpg ~config in
  Sys.remove (Artifact.path store ~stage:"matrix" fp);
  let restored = Builder.build ~store sim tpg ~tests ~targets ~config in
  same_build mono restored;
  Alcotest.(check int) "all rows restored from shards" (Array.length tests)
    restored.Builder.rows_restored;
  Alcotest.(check int) "no simulations on shard restore" 0 restored.Builder.fault_sims

let test_build_identical_across_reprs () =
  let sim, tpg, tests, targets = build_fixture () in
  let config = Builder.default_config in
  let auto = Builder.build sim tpg ~tests ~targets ~config in
  List.iter
    (fun r ->
      let b =
        with_force (Some r) (fun () -> Builder.build sim tpg ~tests ~targets ~config)
      in
      same_build auto b)
    reprs

(* --- Streaming reduction vs column-wise reference --------------------- *)

(* The pre-streaming implementation, verbatim over the public Matrix
   API: column-wise essentials, quadratic masked-subset row dominance,
   hash column dedup and quadratic column dominance, iterated to a
   fixpoint.  Every survivor, iteration count and tally must coincide
   with what [Reduce.run] streams shard-by-shard. *)
let reference_reduce ?(config = Reduce.default_config) ?row_weights m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  let weight_ok ~dropped ~kept =
    match row_weights with None -> true | Some w -> w.(kept) <= w.(dropped)
  in
  let tie_break ~dropped ~kept =
    match row_weights with
    | None -> dropped > kept
    | Some w -> w.(kept) < w.(dropped) || (w.(kept) = w.(dropped) && dropped > kept)
  in
  let row_active = Array.make n_rows true in
  let col_active = Array.make n_cols true in
  let row_mask = Bitvec.create n_rows in
  let col_mask = Bitvec.create n_cols in
  Bitvec.fill_all row_mask;
  Bitvec.fill_all col_mask;
  List.iter
    (fun j -> col_active.(j) <- false; Bitvec.clear col_mask j)
    (Matrix.uncoverable m);
  let necessary = ref [] in
  let rows_dominated = ref 0 and cols_dominated = ref 0 in
  let drop_row i = row_active.(i) <- false; Bitvec.clear row_mask i in
  let drop_col j = col_active.(j) <- false; Bitvec.clear col_mask j in
  let select_row i =
    necessary := i :: !necessary;
    drop_row i;
    Bitvec.iter_ones (fun j -> if col_active.(j) then drop_col j) (Matrix.row m i)
  in
  let pass_essentials () =
    let changed = ref false in
    for j = 0 to n_cols - 1 do
      if col_active.(j) then begin
        let cover = Matrix.col m j in
        if Bitvec.count_inter cover row_mask = 1 then begin
          let r = ref (-1) in
          Bitvec.iter_ones (fun i -> if !r < 0 && row_active.(i) then r := i) cover;
          if !r >= 0 then begin select_row !r; changed := true end
        end
      end
    done;
    !changed
  in
  let active_rows () =
    List.filter (fun i -> row_active.(i)) (List.init n_rows Fun.id)
  in
  let active_cols () =
    List.filter (fun j -> col_active.(j)) (List.init n_cols Fun.id)
  in
  let pass_row_dominance () =
    let changed = ref false in
    let rows = Array.of_list (active_rows ()) in
    let counts =
      Array.map (fun i -> Bitvec.count_inter (Matrix.row m i) col_mask) rows
    in
    let n = Array.length rows in
    for a = 0 to n - 1 do
      let i = rows.(a) in
      if row_active.(i) then
        for bidx = 0 to n - 1 do
          let k = rows.(bidx) in
          if k <> i && row_active.(i) && row_active.(k) && counts.(a) <= counts.(bidx)
          then
            if
              weight_ok ~dropped:i ~kept:k
              && Bitvec.subset_masked (Matrix.row m i) (Matrix.row m k) ~mask:col_mask
              && (counts.(a) < counts.(bidx) || tie_break ~dropped:i ~kept:k)
            then begin drop_row i; incr rows_dominated; changed := true end
        done
    done;
    !changed
  in
  let cols_deduped = ref 0 in
  let pass_col_dedup () =
    let seen = Hashtbl.create 64 in
    let changed = ref false in
    for j = 0 to n_cols - 1 do
      if col_active.(j) then begin
        let key =
          Bitvec.fold_ones
            (fun acc i -> if row_active.(i) then i :: acc else acc)
            [] (Matrix.col m j)
        in
        if Hashtbl.mem seen key then begin
          drop_col j; incr cols_deduped; changed := true
        end
        else Hashtbl.add seen key ()
      end
    done;
    !changed
  in
  let pass_col_dominance () =
    let cols = Array.of_list (active_cols ()) in
    let n = Array.length cols in
    if n > config.Reduce.col_dominance_limit then false
    else begin
      let changed = ref false in
      let counts =
        Array.map (fun j -> Bitvec.count_inter (Matrix.col m j) row_mask) cols
      in
      for a = 0 to n - 1 do
        let c2 = cols.(a) in
        if col_active.(c2) then
          for bidx = 0 to n - 1 do
            let c1 = cols.(bidx) in
            if c1 <> c2 && col_active.(c2) && col_active.(c1)
               && counts.(bidx) <= counts.(a)
            then
              if
                Bitvec.subset_masked (Matrix.col m c1) (Matrix.col m c2) ~mask:row_mask
                && (counts.(bidx) < counts.(a) || c2 > c1)
              then begin drop_col c2; incr cols_dominated; changed := true end
          done
      done;
      !changed
    end
  in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let c1 = if config.Reduce.essentials then pass_essentials () else false in
    let c2 = if config.Reduce.row_dominance then pass_row_dominance () else false in
    let c3 =
      if config.Reduce.col_dominance then begin
        let deduped = pass_col_dedup () in
        pass_col_dominance () || deduped
      end
      else false
    in
    continue := c1 || c2 || c3
  done;
  List.iter
    (fun i -> if Bitvec.count_inter (Matrix.row m i) col_mask = 0 then drop_row i)
    (active_rows ());
  {
    Reduce.necessary = List.rev !necessary;
    remaining_rows = active_rows ();
    remaining_cols = active_cols ();
    iterations = !iterations;
    rows_dominated = !rows_dominated;
    cols_dominated = !cols_deduped + !cols_dominated;
  }

let random_matrix rng ~rows ~cols ~density =
  let m = Matrix.create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Rng.int rng 100 < density then Matrix.set m ~row:i ~col:j
    done
  done;
  (* Duplicate a few rows and columns: detection matrices are full of
     them and they exercise the dedup/dominance tie-breaks. *)
  if rows > 2 then
    for _ = 1 to rows / 3 do
      let src = Rng.int rng rows and dst = Rng.int rng rows in
      Bitvec.iter_ones (fun j -> Matrix.set m ~row:dst ~col:j) (Matrix.row m src)
    done;
  m

let same_reduction (a : Reduce.result) (b : Reduce.result) =
  a.Reduce.necessary = b.Reduce.necessary
  && a.Reduce.remaining_rows = b.Reduce.remaining_rows
  && a.Reduce.remaining_cols = b.Reduce.remaining_cols
  && a.Reduce.iterations = b.Reduce.iterations
  && a.Reduce.rows_dominated = b.Reduce.rows_dominated
  && a.Reduce.cols_dominated = b.Reduce.cols_dominated

let prop_reduce_matches_reference =
  QCheck.Test.make ~name:"reduce: streaming = column-wise reference" ~count:40
    QCheck.(
      quad (int_range 2 18) (int_range 2 40) (int_range 5 60) (int_bound 9999))
    (fun (rows, cols, density, seed) ->
      let rng = Rng.create seed in
      let m = random_matrix rng ~rows ~cols ~density in
      let weights =
        if Rng.bool rng then
          Some (Array.init rows (fun _ -> float_of_int (1 + Rng.int rng 4)))
        else None
      in
      same_reduction
        (Reduce.run ?row_weights:weights m)
        (reference_reduce ?row_weights:weights m))

(* The column-dominance limit still short-circuits the pass without a
   transpose: over the limit both sides must leave columns alone. *)
let prop_reduce_coldom_limit =
  QCheck.Test.make ~name:"reduce: col-dominance limit respected" ~count:15
    QCheck.(triple (int_range 2 10) (int_range 8 30) (int_bound 9999))
    (fun (rows, cols, seed) ->
      let rng = Rng.create seed in
      let m = random_matrix rng ~rows ~cols ~density:40 in
      let config = { Reduce.default_config with Reduce.col_dominance_limit = 4 } in
      same_reduction (Reduce.run ~config m) (reference_reduce ~config m))

let test_reduce_matches_on_built_matrix () =
  let sim, tpg, tests, targets = build_fixture () in
  let built = Builder.build sim tpg ~tests ~targets ~config:Builder.default_config in
  let m = built.Builder.matrix in
  let weights =
    Array.map float_of_int built.Builder.useful_cycles
  in
  if not (same_reduction (Reduce.run m) (reference_reduce m)) then
    Alcotest.fail "unweighted reduction diverged on a built matrix";
  if
    not
      (same_reduction
         (Reduce.run ~row_weights:weights m)
         (reference_reduce ~row_weights:weights m))
  then Alcotest.fail "weighted reduction diverged on a built matrix"

(* Same covering solution whichever representation backs the rows. *)
let prop_solution_identity_across_reprs =
  QCheck.Test.make ~name:"solve: identical across row representations" ~count:15
    QCheck.(quad (int_range 2 12) (int_range 2 30) (int_range 5 60) (int_bound 9999))
    (fun (rows, cols, density, seed) ->
      let rng = Rng.create seed in
      let m = random_matrix rng ~rows ~cols ~density in
      let base = Solution.solve m in
      List.for_all
        (fun r ->
          with_force (Some r) (fun () ->
              let rs =
                Array.init rows (fun i -> Rowset.of_bitvec (Matrix.row m i))
              in
              let m2 = Matrix.of_rowsets ~cols rs in
              let s = Solution.solve m2 in
              s.Solution.rows = base.Solution.rows
              && s.Solution.stats.Solution.necessary
                 = base.Solution.stats.Solution.necessary))
        reprs)

let suite =
  [
    ( "scale",
      [
        QCheck_alcotest.to_alcotest prop_rowset_equivalence;
        QCheck_alcotest.to_alcotest prop_big_roundtrip;
        QCheck_alcotest.to_alcotest prop_rowset_policy;
        Alcotest.test_case "sharded build = monolithic build" `Quick
          test_sharded_build_matches;
        Alcotest.test_case "build identical across representations" `Quick
          test_build_identical_across_reprs;
        QCheck_alcotest.to_alcotest prop_reduce_matches_reference;
        QCheck_alcotest.to_alcotest prop_reduce_coldom_limit;
        Alcotest.test_case "streaming reduce = reference on built matrix" `Quick
          test_reduce_matches_on_built_matrix;
        QCheck_alcotest.to_alcotest prop_solution_identity_across_reprs;
      ] );
  ]
