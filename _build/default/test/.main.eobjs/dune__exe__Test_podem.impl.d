test/test_podem.ml: Alcotest Array Bitvec Circuit Fault Fault_sim Fun Gate Library List Podem Printf Reseed_atpg Reseed_fault Reseed_netlist Reseed_util Rng
