test/test_rng.ml: Alcotest Array Fun List Reseed_util Rng
