test/test_sat.ml: Alcotest Array List QCheck QCheck_alcotest Reseed_sat Reseed_util Sat
