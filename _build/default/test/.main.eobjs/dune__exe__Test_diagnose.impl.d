test/test_diagnose.ml: Alcotest Array Bitvec Diagnose Fault Fault_sim Library List Reseed_fault Reseed_netlist Reseed_util
