test/test_fault_sim.ml: Alcotest Array Bitvec Circuit Fault Fault_sim Gate Generator Library List QCheck QCheck_alcotest Reseed_fault Reseed_netlist Reseed_sim Reseed_util Rng
