test/test_word.ml: Alcotest Gen Option QCheck QCheck_alcotest Reseed_util Rng Word
