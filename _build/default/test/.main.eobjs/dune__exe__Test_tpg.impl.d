test/test_tpg.ml: Accumulator Alcotest Array Lfsr List Option QCheck QCheck_alcotest Reseed_tpg Reseed_util Tpg Triplet Word
