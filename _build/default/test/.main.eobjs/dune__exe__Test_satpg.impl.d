test/test_satpg.ml: Alcotest Array Circuit Fault Fun Gate Generator Library List Podem Printf Reseed_atpg Reseed_fault Reseed_netlist Reseed_util Rng Satpg Testability
