test/test_ternary.ml: Alcotest Array Circuit Fault Gate Library Reseed_atpg Reseed_fault Reseed_netlist Reseed_sim Ternary
