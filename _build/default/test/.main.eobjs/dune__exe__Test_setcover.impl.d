test/test_setcover.ml: Alcotest Array Bitvec Greedy Ilp List Matrix QCheck QCheck_alcotest Reduce Reseed_setcover Reseed_util Rng Solution
