test/test_ga_gatsby.ml: Alcotest Array Bitvec Float Ga Gatsby List Reseed_fault Reseed_gatsby Reseed_netlist Reseed_tpg Reseed_util Rng
