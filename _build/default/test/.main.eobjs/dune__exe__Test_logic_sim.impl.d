test/test_logic_sim.ml: Alcotest Array Generator Library List Logic_sim Reseed_netlist Reseed_sim Reseed_util Rng
