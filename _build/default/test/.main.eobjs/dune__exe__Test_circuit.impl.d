test/test_circuit.ml: Alcotest Array Circuit Gate Library Reseed_netlist
