test/test_stats_table.ml: Alcotest Float Reseed_util Stats String Table
