test/test_bench_io.ml: Alcotest Array Bench_io Circuit Filename Fun Generator Library Reseed_netlist Reseed_sim Reseed_util Sys
