test/test_library.ml: Alcotest Array Circuit Gate Library List Logic_sim Reseed_netlist Reseed_sim Reseed_util
