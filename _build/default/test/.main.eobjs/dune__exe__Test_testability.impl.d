test/test_testability.ml: Alcotest Array Circuit Gate Library List Printf Reseed_atpg Reseed_netlist Testability
