test/main.mli:
