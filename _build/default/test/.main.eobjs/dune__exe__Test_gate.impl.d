test/test_gate.ml: Alcotest Array Gate List Reseed_netlist
