test/test_atpg.ml: Alcotest Array Atpg Bitvec Circuit Fault_sim Library List Reseed_atpg Reseed_fault Reseed_netlist Reseed_util
