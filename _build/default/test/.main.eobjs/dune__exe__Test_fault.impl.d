test/test_fault.ml: Alcotest Array Circuit Fault Fault_sim Gate Library List Reseed_atpg Reseed_fault Reseed_netlist Reseed_util
