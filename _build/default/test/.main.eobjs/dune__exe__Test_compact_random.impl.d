test/test_compact_random.ml: Alcotest Array Bitvec Circuit Compact Fault Fault_sim Library Random_gen Reseed_atpg Reseed_fault Reseed_netlist Reseed_util Rng
