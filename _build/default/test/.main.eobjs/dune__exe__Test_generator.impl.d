test/test_generator.ml: Alcotest Array Bench_io Circuit Gate Generator Library List Reseed_netlist Reseed_sim Reseed_util Rng
