open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_full_coverage_structured () =
  List.iter
    (fun c ->
      let sim, r = Atpg.run_circuit c in
      let cov = Atpg.fault_coverage sim r in
      if cov < 100.0 then Alcotest.failf "%s coverage %.2f" (Circuit.name c) cov;
      check "no aborts" true (r.Atpg.aborted = []))
    [ Library.c17 (); Library.ripple_adder 8; Library.parity 16; Library.mux_tree 3 ]

let test_detected_reproducible () =
  let c = Library.comparator 6 in
  let sim, r = Atpg.run_circuit c in
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let re = Fault_sim.detected_set sim r.Atpg.tests ~active in
  check "claimed coverage reproducible" true (Bitvec.equal re r.Atpg.detected)

let test_deterministic_given_seed () =
  let run () =
    let _, r = Atpg.run_circuit (Library.ripple_adder 6) in
    r.Atpg.tests
  in
  check "same seed same tests" true (run () = run ())

let test_seed_changes_tests () =
  let run seed =
    let _, r =
      Atpg.run_circuit ~config:{ Atpg.default_config with Atpg.seed } (Library.ripple_adder 6)
    in
    r.Atpg.tests
  in
  check "different seed different tests" true (run 1 <> run 2)

let test_no_random_phase () =
  let config = { Atpg.default_config with Atpg.use_random_phase = false } in
  let sim, r = Atpg.run_circuit ~config (Library.ripple_adder 4) in
  check_int "no random patterns" 0 r.Atpg.random_patterns_tried;
  check "still full coverage" true (Atpg.fault_coverage sim r >= 100.0)

let test_compaction_preserves_coverage () =
  let c = Library.comparator 8 in
  let with_c = { Atpg.default_config with Atpg.compaction = true } in
  let without_c = { Atpg.default_config with Atpg.compaction = false } in
  let sim1, r1 = Atpg.run_circuit ~config:with_c c in
  let _, r2 = Atpg.run_circuit ~config:without_c c in
  check "coverage equal" true (Bitvec.equal r1.Atpg.detected r2.Atpg.detected);
  check "compacted not longer" true (Array.length r1.Atpg.tests <= Array.length r2.Atpg.tests);
  ignore sim1

let test_untestable_alu () =
  (* the ALU contains a synthesised constant: some faults are redundant *)
  let sim, r = Atpg.run_circuit (Library.alu 4) in
  check "finds redundancies" true (List.length r.Atpg.untestable > 0);
  check "coverage of detectable is full" true (Atpg.fault_coverage sim r >= 100.0)

let test_synthetic_circuit () =
  let c = Library.load ~scale_factor:4 "c432" in
  let sim, r = Atpg.run_circuit c in
  let cov = Atpg.fault_coverage sim r in
  check "reasonable coverage" true (cov > 90.0);
  check "nonempty test set" true (Array.length r.Atpg.tests > 0);
  ignore sim


let test_sat_engine_equivalent () =
  (* The SAT engine must reach the same coverage as PODEM (both are
     complete); test sets may differ. *)
  let c = Library.alu 3 in
  let podem_cfg = { Atpg.default_config with Atpg.use_random_phase = false } in
  let sat_cfg = { podem_cfg with Atpg.engine = Atpg.Sat_engine } in
  let _, r1 = Atpg.run_circuit ~config:podem_cfg c in
  let _, r2 = Atpg.run_circuit ~config:sat_cfg c in
  check "same coverage" true (Bitvec.equal r1.Atpg.detected r2.Atpg.detected);
  check "same redundancies" true
    (List.sort compare r1.Atpg.untestable = List.sort compare r2.Atpg.untestable)

let suite =
  [
    ( "atpg",
      [
        Alcotest.test_case "full coverage on structured circuits" `Slow test_full_coverage_structured;
        Alcotest.test_case "detected set reproducible" `Quick test_detected_reproducible;
        Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_tests;
        Alcotest.test_case "PODEM-only mode" `Quick test_no_random_phase;
        Alcotest.test_case "compaction preserves coverage" `Slow test_compaction_preserves_coverage;
        Alcotest.test_case "redundancy on ALU" `Quick test_untestable_alu;
        Alcotest.test_case "synthetic circuit" `Slow test_synthetic_circuit;
        Alcotest.test_case "SAT engine equivalent" `Slow test_sat_engine_equivalent;
      ] );
  ]
