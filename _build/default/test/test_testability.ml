open Reseed_atpg
open Reseed_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_inputs_unit_cost () =
  let c = Library.c17 () in
  let tb = Testability.compute c in
  Array.iter
    (fun i ->
      check_int "cc0 of PI" 1 tb.Testability.cc0.(i);
      check_int "cc1 of PI" 1 tb.Testability.cc1.(i))
    c.Circuit.inputs

let test_po_observable () =
  let c = Library.c17 () in
  let tb = Testability.compute c in
  Array.iter (fun o -> check_int "PO co" 0 tb.Testability.co.(o)) c.Circuit.outputs

let test_and_gate_costs () =
  let b = Circuit.Builder.create "and" in
  let x = Circuit.Builder.add_input b "x" in
  let y = Circuit.Builder.add_input b "y" in
  let g = Circuit.Builder.add_gate b Gate.And [ x; y ] "g" in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finalize b in
  let tb = Testability.compute c in
  let gi = Circuit.find c "g" in
  (* CC1(AND) = CC1(x)+CC1(y)+1 = 3; CC0 = min+1 = 2 *)
  check_int "cc1 and" 3 tb.Testability.cc1.(gi);
  check_int "cc0 and" 2 tb.Testability.cc0.(gi);
  (* observing x requires y=1: co = 0 + cc1(y) + 1 = 2 *)
  check_int "co x" 2 tb.Testability.co.(Circuit.find c "x")

let test_wide_and_harder () =
  (* controllability-to-1 grows with AND width *)
  let build w =
    let b = Circuit.Builder.create "w" in
    let ins = List.init w (fun i -> Circuit.Builder.add_input b (Printf.sprintf "x%d" i)) in
    let g = Circuit.Builder.add_gate b Gate.And ins "g" in
    Circuit.Builder.mark_output b g;
    Circuit.Builder.finalize b
  in
  let cost w =
    let c = build w in
    (Testability.compute c).Testability.cc1.(Circuit.find c "g")
  in
  check "wider is harder" true (cost 8 > cost 3)

let test_cost_to_set () =
  let c = Library.c17 () in
  let tb = Testability.compute c in
  check_int "cost 0" tb.Testability.cc0.(0) (Testability.cost_to_set tb 0 false);
  check_int "cost 1" tb.Testability.cc1.(0) (Testability.cost_to_set tb 0 true)

let test_xor_symmetric () =
  let c = Library.parity 4 in
  let tb = Testability.compute c in
  let root = c.Circuit.outputs.(0) in
  (* balanced XOR tree: setting to 0 or 1 costs the same *)
  check_int "xor cc0 = cc1" tb.Testability.cc0.(root) tb.Testability.cc1.(root)

let suite =
  [
    ( "testability",
      [
        Alcotest.test_case "PI unit costs" `Quick test_inputs_unit_cost;
        Alcotest.test_case "PO observability zero" `Quick test_po_observable;
        Alcotest.test_case "AND gate SCOAP costs" `Quick test_and_gate_costs;
        Alcotest.test_case "wider AND harder" `Quick test_wide_and_harder;
        Alcotest.test_case "cost_to_set" `Quick test_cost_to_set;
        Alcotest.test_case "xor symmetric" `Quick test_xor_symmetric;
      ] );
  ]
