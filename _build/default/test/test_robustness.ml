(* Edge cases and failure injection across module boundaries. *)

open Reseed_core
open Reseed_fault
open Reseed_gatsby
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c17_sim () =
  let c = Library.c17 () in
  (c, Fault_sim.create c (Fault.all c))

let test_builder_empty_test_set () =
  let _, sim = c17_sim () in
  let tpg = Accumulator.adder 5 in
  let targets = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all targets;
  let b =
    Builder.build sim tpg ~tests:[||] ~targets ~config:Builder.default_config
  in
  check_int "no triplets" 0 (Array.length b.Builder.triplets);
  check_int "no rows" 0 (Matrix.rows b.Builder.matrix);
  (* the covering over an empty matrix: everything uncoverable, dropped *)
  let sol = Solution.solve b.Builder.matrix in
  check_int "empty solution" 0 (Solution.cardinality sol)

let test_builder_pattern_width_mismatch () =
  let _, sim = c17_sim () in
  let tpg = Accumulator.adder 4 (* wrong width *) in
  let targets = Bitvec.create (Fault_sim.fault_count sim) in
  check "width mismatch raises" true
    (try
       ignore
         (Builder.build sim tpg
            ~tests:[| Array.make 5 false |]
            ~targets ~config:Builder.default_config);
       false
     with Invalid_argument _ -> true)

let test_builder_target_mask_mismatch () =
  let _, sim = c17_sim () in
  let tpg = Accumulator.adder 5 in
  check "mask size raises" true
    (try
       ignore
         (Builder.build sim tpg
            ~tests:[| Array.make 5 false |]
            ~targets:(Bitvec.create 3) ~config:Builder.default_config);
       false
     with Invalid_argument _ -> true)

let test_gatsby_no_targets () =
  let _, sim = c17_sim () in
  let tpg = Accumulator.adder 5 in
  let targets = Bitvec.create (Fault_sim.fault_count sim) in
  (* no faults requested: GA stalls immediately and gives up cleanly *)
  let rng = Rng.create 3 in
  let g = Gatsby.run sim tpg ~rng ~targets in
  check_int "no triplets" 0 (List.length g.Gatsby.triplets);
  check "no detections" true (Bitvec.is_empty g.Gatsby.detected)

let test_fault_sim_no_faults () =
  let c = Library.c17 () in
  let sim = Fault_sim.create c [||] in
  let active = Bitvec.create 0 in
  let det = Fault_sim.detected_set sim [| Array.make 5 true |] ~active in
  check "empty detected" true (Bitvec.is_empty det)

let test_tradeoff_invalid_grid () =
  let p = Suite.prepare "c17" in
  let tpg = Accumulator.adder 5 in
  check "cycles 0 rejected" true
    (try
       ignore
         (Tradeoff.sweep p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
            ~grid:[ 0 ]);
       false
     with Invalid_argument _ -> true)

let test_solution_zero_rows () =
  let m = Matrix.create ~rows:0 ~cols:5 in
  let sol = Solution.solve m in
  check_int "no rows no picks" 0 (Solution.cardinality sol);
  check "verify trivially true" true (Solution.verify m sol)

let test_solution_zero_cols () =
  let m = Matrix.create ~rows:3 ~cols:0 in
  let sol = Solution.solve m in
  check_int "nothing to cover" 0 (Solution.cardinality sol)

let test_reduce_idempotent () =
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let rows = 4 + Rng.int rng 6 and cols = 4 + Rng.int rng 8 in
    let m = Matrix.create ~rows ~cols in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        if Rng.int rng 3 = 0 then Matrix.set m ~row:i ~col:j
      done
    done;
    let r1 = Reduce.run m in
    let residual, _, _ = Reduce.residual m r1 in
    let r2 = Reduce.run residual in
    (* a reduced instance has no essentials and no dominances left *)
    check "no new essentials" true (r2.Reduce.necessary = []);
    check_int "no new row dominance" 0 r2.Reduce.rows_dominated;
    check_int "no new col dominance" 0 r2.Reduce.cols_dominated
  done

let test_word_width_one () =
  let w = Reseed_util.Word.one 1 in
  check "1+1 wraps to 0" true (Reseed_util.Word.is_zero (Reseed_util.Word.add w w));
  check_int "popcount" 1 (Reseed_util.Word.popcount w)

let test_single_bit_vector () =
  let v = Bitvec.create 1 in
  Bitvec.set v 0;
  check_int "count" 1 (Bitvec.count v);
  Bitvec.fill_all v;
  check_int "fill" 1 (Bitvec.count v)

let test_misr_width_boundary () =
  (* 60+-bit MISR must not overflow aliasing computation *)
  let m = Misr.create ~width:62 () in
  check "aliasing ~0" true (Misr.aliasing_probability m = 0.0)

let test_flow_on_tiny_targets () =
  (* restrict targets to a handful of faults: minimal solutions stay valid *)
  let p = Suite.prepare "c17" in
  let tpg = Accumulator.adder 5 in
  let targets = Bitvec.create (Bitvec.length p.Suite.targets) in
  Bitvec.iter_ones (fun i -> if i mod 7 = 0 then Bitvec.set targets i) p.Suite.targets;
  let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets in
  check "covers restricted set" true (r.Flow.coverage_pct >= 100.0);
  check "small solution" true (Flow.reseedings r <= 3)

(* Property: the whole flow verifies end-to-end on random small circuits
   across all paper TPGs. *)
let prop_flow_verifies_everywhere =
  QCheck.Test.make ~name:"flow verifies on random circuits" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let spec =
        { (Generator.default_spec "rnd" ~inputs:8 ~outputs:3 ~gates:45) with
          Generator.seed = seed }
      in
      let c = Generator.generate spec in
      let p = Suite.prepare_circuit c in
      List.for_all
        (fun tpg ->
          let r =
            Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
          in
          Flow.verify p.Suite.sim tpg r && r.Flow.coverage_pct >= 100.0)
        (Suite.paper_tpgs p))

let suite =
  [
    ( "robustness",
      [
        Alcotest.test_case "builder: empty test set" `Quick test_builder_empty_test_set;
        Alcotest.test_case "builder: width mismatch" `Quick test_builder_pattern_width_mismatch;
        Alcotest.test_case "builder: mask mismatch" `Quick test_builder_target_mask_mismatch;
        Alcotest.test_case "gatsby: no targets" `Quick test_gatsby_no_targets;
        Alcotest.test_case "fault_sim: no faults" `Quick test_fault_sim_no_faults;
        Alcotest.test_case "tradeoff: invalid grid" `Quick test_tradeoff_invalid_grid;
        Alcotest.test_case "solution: zero rows" `Quick test_solution_zero_rows;
        Alcotest.test_case "solution: zero cols" `Quick test_solution_zero_cols;
        Alcotest.test_case "reduction idempotent" `Quick test_reduce_idempotent;
        Alcotest.test_case "word width 1" `Quick test_word_width_one;
        Alcotest.test_case "single-bit vector" `Quick test_single_bit_vector;
        Alcotest.test_case "misr width boundary" `Quick test_misr_width_boundary;
        Alcotest.test_case "flow on restricted targets" `Quick test_flow_on_tiny_targets;
        QCheck_alcotest.to_alcotest ~long:true prop_flow_verifies_everywhere;
      ] );
  ]
