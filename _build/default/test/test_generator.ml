open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_deterministic () =
  let spec = Generator.default_spec "det" ~inputs:10 ~outputs:3 ~gates:60 in
  let a = Generator.generate spec and b = Generator.generate spec in
  check_int "same node count" (Circuit.node_count a) (Circuit.node_count b);
  check "same bench text" true (Bench_io.to_string a = Bench_io.to_string b)

let test_seed_sensitivity () =
  let spec = Generator.default_spec "s" ~inputs:10 ~outputs:3 ~gates:60 in
  let a = Generator.generate spec in
  let b = Generator.generate { spec with Generator.seed = spec.Generator.seed + 1 } in
  check "different seed different circuit" true
    (Bench_io.to_string a <> Bench_io.to_string b)

let test_profile_respected () =
  let spec = Generator.default_spec "p" ~inputs:20 ~outputs:8 ~gates:200 in
  let c = Generator.generate spec in
  check_int "inputs exact" 20 (Circuit.input_count c);
  check_int "outputs exact" 8 (Circuit.output_count c);
  let g = Circuit.gate_count c in
  check "gates within 15%" true (g >= 170 && g <= 230);
  Circuit.validate c

let test_no_dangling () =
  let spec = Generator.default_spec "d" ~inputs:12 ~outputs:4 ~gates:100 in
  let c = Generator.generate spec in
  let is_po = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
  Array.iteri
    (fun i fo ->
      if Array.length fo = 0 && not is_po.(i) then
        Alcotest.failf "node %d dangles" i)
    c.Circuit.fanouts

let test_depth_reasonable () =
  let spec = Generator.default_spec "dep" ~inputs:30 ~outputs:10 ~gates:500 in
  let c = Generator.generate spec in
  let d = Circuit.max_level c in
  check "depth in realistic band" true (d >= 8 && d <= 60)

let test_balanced_signals () =
  (* Most internal nodes stay probabilistically balanced — the property
     that keeps the synthetic circuits testable like real ISCAS ones. *)
  let spec = Generator.default_spec "bal" ~inputs:25 ~outputs:8 ~gates:300 in
  let c = Generator.generate spec in
  let rng = Rng.create 9 in
  let trials = 512 in
  let ones = Array.make (Circuit.node_count c) 0 in
  for _ = 1 to trials do
    let pat = Array.init 25 (fun _ -> Rng.bool rng) in
    let v = Reseed_sim.Logic_sim.simulate_bool c pat in
    Array.iteri (fun i b -> if b then ones.(i) <- ones.(i) + 1) v
  done;
  let skewed =
    Array.fold_left
      (fun acc o ->
        let p = float_of_int o /. float_of_int trials in
        if p < 0.02 || p > 0.98 then acc + 1 else acc)
      0 ones
  in
  (* hard cores are intentionally skewed; they are a small minority *)
  check "skewed nodes < 25%" true (skewed * 4 < Circuit.node_count c)

let test_hard_cores_present () =
  let spec = Generator.default_spec "hard" ~inputs:30 ~outputs:10 ~gates:400 in
  let c = Generator.generate spec in
  let wide =
    Array.fold_left
      (fun acc (n : Circuit.node) ->
        if n.Circuit.kind = Gate.And && Array.length n.Circuit.fanins >= 8 then acc + 1
        else acc)
      0 c.Circuit.nodes
  in
  check "has wide AND cores" true (wide >= 2)

let test_invalid_specs () =
  let base = Generator.default_spec "x" ~inputs:10 ~outputs:2 ~gates:50 in
  List.iter
    (fun spec ->
      check "invalid rejected" true
        (try
           ignore (Generator.generate spec);
           false
         with Invalid_argument _ -> true))
    [
      { base with Generator.n_inputs = 1 };
      { base with Generator.n_outputs = 0 };
      { base with Generator.n_gates = 1 };
    ]

let test_scale () =
  let spec = Library.spec_of "s15850" in
  let scaled = Library.scale ~factor:8 spec in
  check "scaled gates" true (scaled.Generator.n_gates = spec.Generator.n_gates / 8);
  check "scale 1 is identity" true (Library.scale ~factor:1 spec = spec);
  check "floors hold" true
    ((Library.scale ~factor:1000 spec).Generator.n_gates >= 8)

let suite =
  [
    ( "generator",
      [
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "profile respected" `Quick test_profile_respected;
        Alcotest.test_case "no dangling logic" `Quick test_no_dangling;
        Alcotest.test_case "depth realistic" `Quick test_depth_reasonable;
        Alcotest.test_case "signals balanced" `Quick test_balanced_signals;
        Alcotest.test_case "hard cores present" `Quick test_hard_cores_present;
        Alcotest.test_case "invalid specs rejected" `Quick test_invalid_specs;
        Alcotest.test_case "library scaling" `Quick test_scale;
      ] );
  ]
