open Reseed_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bools_of_int k n = Array.init k (fun i -> n lsr i land 1 = 1)

(* eval_word over single-pattern words must agree with eval. *)
let test_eval_word_agrees () =
  let kinds = [ Gate.Buf; Gate.Not ] in
  List.iter
    (fun kind ->
      for v = 0 to 1 do
        let b = Gate.eval kind [| v = 1 |] in
        let w = Gate.eval_word kind [| v |] land 1 = 1 in
        check (Gate.kind_to_string kind) b w
      done)
    kinds;
  let kinds2 = [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  List.iter
    (fun kind ->
      for arity = 2 to 4 do
        for v = 0 to (1 lsl arity) - 1 do
          let bools = bools_of_int arity v in
          let words = Array.map (fun b -> if b then 1 else 0) bools in
          let expect = Gate.eval kind bools in
          let got = Gate.eval_word kind words land 1 = 1 in
          if expect <> got then
            Alcotest.failf "%s arity %d input %d" (Gate.kind_to_string kind) arity v
        done
      done)
    kinds2

let test_eval_word_parallel () =
  (* bit k of result = gate under pattern k *)
  let a = 0b1100 and b = 0b1010 in
  check_int "and" 0b1000 (Gate.eval_word Gate.And [| a; b |]);
  check_int "or" 0b1110 (Gate.eval_word Gate.Or [| a; b |]);
  check_int "xor" 0b0110 (Gate.eval_word Gate.Xor [| a; b |]);
  check_int "nand low bits" 0b0111 (Gate.eval_word Gate.Nand [| a; b |] land 0b1111)

let test_truth_tables () =
  check "and TT" true (Gate.eval Gate.And [| true; true |]);
  check "and TF" false (Gate.eval Gate.And [| true; false |]);
  check "nand TT" false (Gate.eval Gate.Nand [| true; true |]);
  check "nor FF" true (Gate.eval Gate.Nor [| false; false |]);
  check "xor3 TTT" true (Gate.eval Gate.Xor [| true; true; true |]);
  check "xnor3 TTF" true (Gate.eval Gate.Xnor [| true; true; false |]);
  check "const0" false (Gate.eval Gate.Const0 [||]);
  check "const1" true (Gate.eval Gate.Const1 [||])

let test_kind_strings () =
  List.iter
    (fun k ->
      if k <> Gate.Input then
        Alcotest.(check bool)
          (Gate.kind_to_string k) true
          (Gate.kind_of_string (Gate.kind_to_string k) = k))
    Gate.all_kinds;
  check "case insensitive" true (Gate.kind_of_string "nand" = Gate.Nand);
  check "buff alias" true (Gate.kind_of_string "BUFF" = Gate.Buf);
  check "inv alias" true (Gate.kind_of_string "INV" = Gate.Not);
  Alcotest.check_raises "unknown" (Invalid_argument "Gate.kind_of_string: unknown gate FOO")
    (fun () -> ignore (Gate.kind_of_string "foo"))

let test_arity () =
  check "input 0" true (Gate.arity_ok Gate.Input 0);
  check "input 1" false (Gate.arity_ok Gate.Input 1);
  check "not 1" true (Gate.arity_ok Gate.Not 1);
  check "not 2" false (Gate.arity_ok Gate.Not 2);
  check "and 2" true (Gate.arity_ok Gate.And 2);
  check "and 10" true (Gate.arity_ok Gate.And 10);
  check "and 1" false (Gate.arity_ok Gate.And 1)

let test_controlling_inversion () =
  check "and ctrl" true (Gate.controlling_value Gate.And = Some false);
  check "nor ctrl" true (Gate.controlling_value Gate.Nor = Some true);
  check "xor ctrl" true (Gate.controlling_value Gate.Xor = None);
  check "nand inverts" true (Gate.inversion Gate.Nand);
  check "and doesn't" false (Gate.inversion Gate.And)

let suite =
  [
    ( "gate",
      [
        Alcotest.test_case "eval_word agrees with eval" `Quick test_eval_word_agrees;
        Alcotest.test_case "eval_word is bit-parallel" `Quick test_eval_word_parallel;
        Alcotest.test_case "truth tables" `Quick test_truth_tables;
        Alcotest.test_case "kind <-> string" `Quick test_kind_strings;
        Alcotest.test_case "arity checks" `Quick test_arity;
        Alcotest.test_case "controlling/inversion" `Quick test_controlling_inversion;
      ] );
  ]
