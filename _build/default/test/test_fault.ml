open Reseed_netlist
open Reseed_fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_universe_c17 () =
  let c = Library.c17 () in
  let u = Fault.universe c in
  (* 11 nodes with output faults (5 PI + 6 gates) = 22, plus branch faults
     on pins fed by stems with fanout > 1.  In c17 stems 3, 11 and 16 have
     fanout 2 → 4 pins... each fanout-2 stem feeds 2 pins → 2 faults/pin. *)
  let branch_count =
    Array.fold_left
      (fun acc (f : Fault.t) ->
        match f.Fault.site with Fault.Pin _ -> acc + 1 | Fault.Out _ -> acc)
      0 u
  in
  check_int "output faults" 22 (Array.length u - branch_count);
  check_int "branch faults" 12 branch_count

let test_collapse_shrinks () =
  let c = Library.c17 () in
  let u = Fault.universe c in
  let col = Fault.all c in
  check "collapse shrinks" true (Array.length col < Array.length u);
  check_int "c17 collapsed" 28 (Array.length col)

let test_no_branch_faults_on_fanout_free () =
  let c = Library.parity 8 in
  (* XOR tree: every internal stem has fanout 1 → no branch faults at all *)
  let u = Fault.universe c in
  let branch =
    Array.exists (fun (f : Fault.t) -> match f.Fault.site with Fault.Pin _ -> true | _ -> false) u
  in
  check "no branch faults in a tree" false branch

let test_no_collapse_on_xor () =
  (* XOR gates admit no input-fault equivalence: collapse keeps them. *)
  let c = Library.parity 4 in
  check_int "tree keeps all output faults" (Array.length (Fault.universe c))
    (Array.length (Fault.all c))

let test_collapse_preserves_detectability () =
  (* Every dropped fault must be equivalent to a kept one: exhaustive
     detection signatures over all patterns must cover the same set of
     (pattern, output-difference) behaviours. Here: every universe fault
     detectable exhaustively is also detected at the same patterns as some
     kept fault. *)
  let c = Library.c17 () in
  let universe = Fault.universe c in
  let collapsed = Fault.all c in
  let signature faults =
    let sim = Fault_sim.create c faults in
    let patterns = Array.init 32 (fun p -> Array.init 5 (fun i -> p lsr i land 1 = 1)) in
    Fault_sim.detection_map sim patterns
  in
  let sig_u = signature universe and sig_c = signature collapsed in
  Array.iteri
    (fun i s ->
      if not (Reseed_util.Bitvec.is_empty s) then begin
        let found =
          Array.exists (fun s' -> Reseed_util.Bitvec.equal s s') sig_c
        in
        if not found then
          Alcotest.failf "universe fault %s has no equivalent representative"
            (Fault.to_string c universe.(i))
      end)
    sig_u

let test_site_node () =
  check_int "out site" 3 (Fault.site_node { Fault.site = Fault.Out 3; stuck = true });
  check_int "pin site" 7
    (Fault.site_node { Fault.site = Fault.Pin { gate = 7; pin = 1 }; stuck = false })

let test_to_string () =
  let c = Library.c17 () in
  let f = { Fault.site = Fault.Out (Circuit.find c "22"); stuck = false } in
  Alcotest.(check string) "render" "22/SA0" (Fault.to_string c f)

let test_po_stem_not_folded () =
  (* A stem that is itself a PO and feeds an inverter must keep its own
     fault: it is observable directly, so it is NOT equivalent to the
     inverter's output fault. *)
  let b = Circuit.Builder.create "po_stem" in
  let x = Circuit.Builder.add_input b "x" in
  let y = Circuit.Builder.add_input b "y" in
  let g = Circuit.Builder.add_gate b Gate.And [ x; y ] "g" in
  let n = Circuit.Builder.add_gate b Gate.Not [ g ] "n" in
  Circuit.Builder.mark_output b g;
  Circuit.Builder.mark_output b n;
  let c = Circuit.Builder.finalize b in
  let kept = Fault.all c in
  let has_g_fault =
    Array.exists
      (fun (f : Fault.t) -> f.Fault.site = Fault.Out (Circuit.find c "g"))
      kept
  in
  check "PO stem fault kept" true has_g_fault


let test_dominance_collapse_c17 () =
  let c = Library.c17 () in
  let eq = Fault.all c in
  let dom = Fault.all_collapsed c in
  (* c17 is all NANDs: every gate output s-a-0 is dominated and dropped *)
  check "dominance shrinks further" true (Array.length dom < Array.length eq);
  (* the canonical fully-collapsed c17 fault count is 22 *)
  check_int "c17 fully collapsed" 22 (Array.length dom)

let test_dominance_preserves_complete_coverage () =
  (* Any test set covering the dominance-collapsed list covers the whole
     equivalence-collapsed list. *)
  List.iter
    (fun c ->
      let eq = Fault.all c in
      let dom = Fault.all_collapsed c in
      let sim_dom = Fault_sim.create c dom in
      let _, r =
        ( sim_dom,
          Reseed_atpg.Atpg.run
            ~config:
              { Reseed_atpg.Atpg.default_config with Reseed_atpg.Atpg.seed = 5 }
            sim_dom )
      in
      (* require complete coverage of detectable dominance-collapsed faults *)
      if Reseed_atpg.Atpg.fault_coverage sim_dom r < 100.0 then
        Alcotest.failf "%s: incomplete base coverage" (Circuit.name c);
      (* now check the same tests against the larger equivalence list *)
      let sim_eq = Fault_sim.create c eq in
      let active = Reseed_util.Bitvec.create (Array.length eq) in
      Reseed_util.Bitvec.fill_all active;
      let det = Fault_sim.detected_set sim_eq r.Reseed_atpg.Atpg.tests ~active in
      (* every equivalence-collapsed fault detectable at all must be hit;
         undetectable ones are exactly the redundant ones *)
      Array.iteri
        (fun fi f ->
          if not (Reseed_util.Bitvec.get det fi) then begin
            (* must be genuinely undetectable *)
            let rng = Reseed_util.Rng.create 9 in
            match Reseed_atpg.Podem.generate c f ~rng ~max_backtracks:50_000 () with
            | Reseed_atpg.Podem.Test _ ->
                Alcotest.failf "%s: dominated fault %s escaped" (Circuit.name c)
                  (Fault.to_string c f)
            | Reseed_atpg.Podem.Untestable | Reseed_atpg.Podem.Aborted -> ()
          end)
        eq)
    [ Library.c17 (); Library.ripple_adder 4; Library.mux_tree 3 ]

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "universe on c17" `Quick test_universe_c17;
        Alcotest.test_case "collapse shrinks" `Quick test_collapse_shrinks;
        Alcotest.test_case "tree has no branch faults" `Quick test_no_branch_faults_on_fanout_free;
        Alcotest.test_case "xor keeps faults" `Quick test_no_collapse_on_xor;
        Alcotest.test_case "collapse preserves behaviours" `Quick test_collapse_preserves_detectability;
        Alcotest.test_case "site_node" `Quick test_site_node;
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "PO stem not folded" `Quick test_po_stem_not_folded;
        Alcotest.test_case "dominance collapse on c17" `Quick test_dominance_collapse_c17;
        Alcotest.test_case "dominance preserves coverage" `Slow test_dominance_preserves_complete_coverage;
      ] );
  ]
