open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)

(* A PODEM-produced test must actually detect the fault (checked through
   the independent fault simulator). *)
let validates_fault c fault pattern =
  let sim = Fault_sim.create c [| fault |] in
  let active = Bitvec.create 1 in
  Bitvec.fill_all active;
  let det = Fault_sim.detected_set sim [| pattern |] ~active in
  Bitvec.get det 0

let test_all_c17_faults () =
  let c = Library.c17 () in
  let rng = Rng.create 1 in
  Array.iter
    (fun fault ->
      match Podem.generate c fault ~rng () with
      | Podem.Test pattern ->
          if not (validates_fault c fault pattern) then
            Alcotest.failf "bogus test for %s" (Fault.to_string c fault)
      | Podem.Untestable ->
          Alcotest.failf "%s wrongly declared untestable" (Fault.to_string c fault)
      | Podem.Aborted -> Alcotest.failf "aborted on c17")
    (Fault.all c)

let test_structured_circuits () =
  let rng = Rng.create 2 in
  List.iter
    (fun c ->
      Array.iter
        (fun fault ->
          match Podem.generate c fault ~rng () with
          | Podem.Test pattern ->
              if not (validates_fault c fault pattern) then
                Alcotest.failf "%s: bogus test for %s" (Circuit.name c)
                  (Fault.to_string c fault)
          | Podem.Untestable | Podem.Aborted -> ())
        (Fault.all c))
    [ Library.ripple_adder 4; Library.parity 8; Library.mux_tree 3 ]

let test_redundant_fault_proven () =
  (* y = OR(x, NOT x) is constantly 1: its s-a-1 fault is undetectable. *)
  let b = Circuit.Builder.create "red" in
  let x = Circuit.Builder.add_input b "x" in
  let nx = Circuit.Builder.add_gate b Gate.Not [ x ] "nx" in
  let y = Circuit.Builder.add_gate b Gate.Or [ x; nx ] "y" in
  Circuit.Builder.mark_output b y;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Out (Circuit.find c "y"); stuck = true } in
  let rng = Rng.create 3 in
  check "redundancy proven" true (Podem.generate c fault ~rng () = Podem.Untestable)

let test_masked_internal_fault () =
  (* g = AND(x, y); h = AND(g, NOT y) is constant 0: h s-a-0 redundant. *)
  let b = Circuit.Builder.create "mask" in
  let x = Circuit.Builder.add_input b "x" in
  let y = Circuit.Builder.add_input b "y" in
  let g = Circuit.Builder.add_gate b Gate.And [ x; y ] "g" in
  let ny = Circuit.Builder.add_gate b Gate.Not [ y ] "ny" in
  let h = Circuit.Builder.add_gate b Gate.And [ g; ny ] "h" in
  Circuit.Builder.mark_output b h;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Out (Circuit.find c "h"); stuck = false } in
  let rng = Rng.create 4 in
  check "masked fault proven untestable" true
    (Podem.generate c fault ~rng () = Podem.Untestable)

let test_wide_and_needs_coincidence () =
  (* Deterministic generation succeeds where random detection is ~2^-16. *)
  let w = 16 in
  let b = Circuit.Builder.create "wide" in
  let ins = List.init w (fun i -> Circuit.Builder.add_input b (Printf.sprintf "x%d" i)) in
  let g = Circuit.Builder.add_gate b Gate.And ins "g" in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Out (Circuit.find c "g"); stuck = false } in
  let rng = Rng.create 5 in
  match Podem.generate c fault ~rng () with
  | Podem.Test pattern ->
      check "all inputs one" true (Array.for_all Fun.id pattern);
      check "valid" true (validates_fault c fault pattern)
  | _ -> Alcotest.fail "failed on wide AND"

let test_stats_accumulate () =
  let c = Library.c17 () in
  let rng = Rng.create 6 in
  let stats = Podem.new_stats () in
  Array.iter
    (fun fault -> ignore (Podem.generate c fault ~rng ~stats ()))
    (Fault.all c);
  check "decisions counted" true (stats.Podem.decisions > 0)

let test_abort_budget () =
  (* With a zero budget every non-trivial fault aborts. *)
  let c = Library.ripple_adder 8 in
  let rng = Rng.create 7 in
  let outcomes =
    Array.map
      (fun fault -> Podem.generate c fault ~rng ~max_backtracks:(-1) ())
      (Fault.all c)
  in
  check "all aborted at negative budget" true
    (Array.for_all (fun o -> o = Podem.Aborted) outcomes)

let suite =
  [
    ( "podem",
      [
        Alcotest.test_case "derives valid tests for all c17 faults" `Quick test_all_c17_faults;
        Alcotest.test_case "structured circuits" `Slow test_structured_circuits;
        Alcotest.test_case "proves redundancy (constant node)" `Quick test_redundant_fault_proven;
        Alcotest.test_case "proves redundancy (masked)" `Quick test_masked_internal_fault;
        Alcotest.test_case "wide AND coincidence" `Quick test_wide_and_needs_coincidence;
        Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
        Alcotest.test_case "abort budget" `Quick test_abort_budget;
      ] );
  ]
