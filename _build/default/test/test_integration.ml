(* Cross-module integration tests: the complete reproduction pipeline on
   a mid-size synthetic benchmark, exercising every subsystem together,
   plus shape checks mirroring the paper's claims. *)

open Reseed_core
open Reseed_gatsby
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)

let prepared = lazy (Suite.prepare ~scale_factor:2 "c432")

let test_pipeline_all_tpgs () =
  let p = Lazy.force prepared in
  List.iter
    (fun tpg ->
      let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
      check (tpg.Tpg.name ^ " coverage") true (r.Flow.coverage_pct >= 100.0);
      check (tpg.Tpg.name ^ " verified") true (Flow.verify p.Suite.sim tpg r);
      check
        (tpg.Tpg.name ^ " solution <= initial")
        true
        (Flow.reseedings r <= Array.length p.Suite.tests))
    (Suite.paper_tpgs p)

let test_reduction_is_effective () =
  (* Paper shape (Table 2): the residual matrix is dramatically smaller
     than the initial one. *)
  let p = Lazy.force prepared in
  let tpg = List.hd (Suite.paper_tpgs p) in
  let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  let s = r.Flow.solution.Solution.stats in
  check "rows shrink 2x+" true (s.Solution.reduced_rows * 2 <= s.Solution.initial_rows);
  check "cols shrink 10x+" true (s.Solution.reduced_cols * 10 <= s.Solution.initial_cols)

let test_sc_beats_or_ties_gatsby () =
  (* Paper shape (Table 1): at the calibrated baseline budget, set
     covering needs no more triplets than GATSBY (the paper's own data has
     one exception, s838 — we allow a one-triplet tie-break on this small
     scaled workload), and always costs far fewer fault simulations. *)
  let p = Lazy.force prepared in
  let tpg = List.hd (Suite.paper_tpgs p) in
  let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  let rng = Rng.create 1234 in
  let g = Gatsby.run p.Suite.sim tpg ~rng ~targets:p.Suite.targets in
  check "SC <= GATSBY triplets (+1 slack)" true
    (Flow.reseedings r <= List.length g.Gatsby.triplets + 1);
  check "SC uses fewer fault sims" true (r.Flow.fault_sims * 2 < g.Gatsby.fault_sims)

let test_flow_deterministic () =
  let p = Lazy.force prepared in
  let tpg = List.hd (Suite.paper_tpgs p) in
  let run () =
    let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
    (Flow.reseedings r, r.Flow.test_length)
  in
  check "two runs agree" true (run () = run ())

let test_bench_roundtrip_preserves_flow () =
  (* Export the circuit to .bench, re-import, re-run ATPG+flow: coverage
     still complete. *)
  let p = Lazy.force prepared in
  let text = Bench_io.to_string p.Suite.circuit in
  let c2 = Bench_io.parse ~name:"roundtrip" text in
  let p2 = Suite.prepare_circuit c2 in
  let tpg = Accumulator.adder (Circuit.input_count c2) in
  let r = Flow.run p2.Suite.sim tpg ~tests:p2.Suite.tests ~targets:p2.Suite.targets in
  check "roundtrip coverage" true (r.Flow.coverage_pct >= 100.0)

let test_mp_lfsr_flow () =
  (* The covering formulation is TPG-agnostic: an LFSR works as well. *)
  let p = Lazy.force prepared in
  let tpg = Reseed_tpg.Lfsr.multi_polynomial (Circuit.input_count p.Suite.circuit) in
  let r = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
  check "lfsr coverage" true (r.Flow.coverage_pct >= 100.0);
  check "lfsr verified" true (Flow.verify p.Suite.sim tpg r)

let test_figure2_shape () =
  let p = Lazy.force prepared in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let points = Suite.figure2 ~grid:[ 8; 64; 512 ] p tpg in
  let triplets = List.map (fun pt -> pt.Tradeoff.triplets) points in
  let rec non_increasing = function
    | a :: b :: r -> a >= b && non_increasing (b :: r)
    | _ -> true
  in
  check "triplets non-increasing in T" true (non_increasing triplets);
  check "largest T has fewest triplets" true
    (List.nth triplets 2 <= List.hd triplets)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "full pipeline, all paper TPGs" `Slow test_pipeline_all_tpgs;
        Alcotest.test_case "reduction effective (Table 2 shape)" `Slow test_reduction_is_effective;
        Alcotest.test_case "SC <= GATSBY (Table 1 shape)" `Slow test_sc_beats_or_ties_gatsby;
        Alcotest.test_case "flow deterministic" `Slow test_flow_deterministic;
        Alcotest.test_case "bench roundtrip preserves flow" `Slow test_bench_roundtrip_preserves_flow;
        Alcotest.test_case "mp-lfsr TPG works" `Slow test_mp_lfsr_flow;
        Alcotest.test_case "figure 2 shape" `Slow test_figure2_shape;
      ] );
  ]
