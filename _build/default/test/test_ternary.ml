open Reseed_atpg
open Reseed_fault
open Reseed_netlist

let check = Alcotest.(check bool)

let test_basics () =
  check "of_bool" true (Ternary.of_bool true = Ternary.T);
  check "to_bool" true (Ternary.to_bool Ternary.T);
  check "known X" false (Ternary.known Ternary.X);
  check "not X" true (Ternary.v_not Ternary.X = Ternary.X);
  check "not T" true (Ternary.v_not Ternary.T = Ternary.F);
  Alcotest.check_raises "to_bool X" (Invalid_argument "Ternary.to_bool: X") (fun () ->
      ignore (Ternary.to_bool Ternary.X))

let test_x_propagation () =
  let open Ternary in
  (* controlling value dominates X *)
  check "and 0,X = 0" true (eval Gate.And [| F; X |] = F);
  check "and 1,X = X" true (eval Gate.And [| T; X |] = X);
  check "or 1,X = 1" true (eval Gate.Or [| T; X |] = T);
  check "or 0,X = X" true (eval Gate.Or [| F; X |] = X);
  check "nand 0,X = 1" true (eval Gate.Nand [| F; X |] = T);
  check "nor 1,X = 0" true (eval Gate.Nor [| T; X |] = F);
  check "xor X = X" true (eval Gate.Xor [| T; X |] = X);
  check "xnor X = X" true (eval Gate.Xnor [| F; X |] = X);
  check "buf X" true (eval Gate.Buf [| X |] = X);
  check "const" true (eval Gate.Const0 [||] = F)

(* Ternary simulation restricted to fully-known inputs must agree with the
   boolean simulator. *)
let test_agrees_with_bool_sim () =
  let c = Library.c17 () in
  for p = 0 to 31 do
    let pattern = Array.init 5 (fun i -> p lsr i land 1 = 1) in
    let tern = Array.map Ternary.of_bool pattern in
    let tv = Ternary.simulate c tern () in
    let bv = Reseed_sim.Logic_sim.simulate_bool c pattern in
    Array.iteri
      (fun i b ->
        if Ternary.of_bool b <> tv.(i) then Alcotest.failf "node %d pattern %d" i p)
      bv
  done

let test_all_x_gives_x_outputs () =
  let c = Library.c17 () in
  let tv = Ternary.simulate c (Array.make 5 Ternary.X) () in
  Array.iter (fun o -> check "PO is X" true (tv.(o) = Ternary.X)) c.Circuit.outputs

let test_fault_injection_out () =
  let c = Library.c17 () in
  let node = Circuit.find c "22" in
  let fault = { Fault.site = Fault.Out node; stuck = true } in
  let tv = Ternary.simulate c (Array.make 5 Ternary.X) ~fault () in
  check "pinned to 1" true (tv.(node) = Ternary.T)

let test_fault_injection_pin () =
  (* Branch fault: only the faulted gate sees the forced value. *)
  let b = Circuit.Builder.create "pin" in
  let x = Circuit.Builder.add_input b "x" in
  let g1 = Circuit.Builder.add_gate b Gate.Buf [ x ] "g1" in
  let g2 = Circuit.Builder.add_gate b Gate.Buf [ x ] "g2" in
  Circuit.Builder.mark_output b g1;
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Pin { gate = Circuit.find c "g1"; pin = 0 }; stuck = true } in
  let tv = Ternary.simulate c [| Ternary.F |] ~fault () in
  check "faulted gate forced" true (tv.(Circuit.find c "g1") = Ternary.T);
  check "sibling unaffected" true (tv.(Circuit.find c "g2") = Ternary.F)

let test_error_detection () =
  let good = [| Ternary.T; Ternary.X; Ternary.T |] in
  let faulty = [| Ternary.F; Ternary.T; Ternary.T |] in
  check "error at 0" true (Ternary.error ~good ~faulty 0);
  check "no error with X" false (Ternary.error ~good ~faulty 1);
  check "no error equal" false (Ternary.error ~good ~faulty 2)

let suite =
  [
    ( "ternary",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "X propagation" `Quick test_x_propagation;
        Alcotest.test_case "agrees with boolean sim" `Quick test_agrees_with_bool_sim;
        Alcotest.test_case "all-X inputs" `Quick test_all_x_gives_x_outputs;
        Alcotest.test_case "Out fault injection" `Quick test_fault_injection_out;
        Alcotest.test_case "Pin fault injection" `Quick test_fault_injection_pin;
        Alcotest.test_case "error predicate" `Quick test_error_detection;
      ] );
  ]
