(* Cross-module property tests: random circuits, random patterns, and the
   invariants that tie the simulators, ATPG engines and covering flow
   together. *)

open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let random_circuit seed =
  Generator.generate
    {
      (Generator.default_spec "prop" ~inputs:8 ~outputs:3 ~gates:40) with
      Generator.seed = seed;
    }

(* Ternary simulation with fully-specified inputs agrees with the
   bit-parallel simulator on every node, for random circuits. *)
let prop_ternary_vs_parallel =
  QCheck.Test.make ~name:"ternary = bit-parallel on known inputs" ~count:40
    QCheck.(pair (int_range 0 500) (int_bound 255))
    (fun (cseed, pseed) ->
      let c = random_circuit cseed in
      let rng = Rng.create pseed in
      let pattern = Array.init 8 (fun _ -> Rng.bool rng) in
      let tern =
        Ternary.simulate c (Array.map Ternary.of_bool pattern) ()
      in
      let bools = Reseed_sim.Logic_sim.simulate_bool c pattern in
      Array.for_all Fun.id
        (Array.mapi (fun i b -> Ternary.of_bool b = tern.(i)) bools))

(* Every PODEM test validates through the independent fault simulator. *)
let prop_podem_tests_validate =
  QCheck.Test.make ~name:"podem tests validate" ~count:15
    QCheck.(int_range 0 300)
    (fun cseed ->
      let c = random_circuit cseed in
      let rng = Rng.create (cseed + 1) in
      let tb = Testability.compute c in
      let faults = Fault.all c in
      Array.for_all
        (fun fault ->
          match Podem.generate c fault ~rng ~testability:tb () with
          | Podem.Test pattern ->
              let sim = Fault_sim.create c [| fault |] in
              let active = Bitvec.create 1 in
              Bitvec.fill_all active;
              Bitvec.get (Fault_sim.detected_set sim [| pattern |] ~active) 0
          | Podem.Untestable | Podem.Aborted -> true)
        faults)

(* SAT and PODEM agree on testability (completeness cross-check). *)
let prop_sat_podem_agree =
  QCheck.Test.make ~name:"sat/podem testability agreement" ~count:8
    QCheck.(int_range 0 200)
    (fun cseed ->
      let c = random_circuit cseed in
      let rng = Rng.create (cseed + 2) in
      let tb = Testability.compute c in
      Array.for_all
        (fun fault ->
          let s = Satpg.generate c fault () in
          let p = Podem.generate c fault ~rng ~max_backtracks:50_000 ~testability:tb () in
          match (s, p) with
          | Satpg.Test _, Podem.Test _
          | Satpg.Untestable, Podem.Untestable
          | Satpg.Aborted, _
          | _, Podem.Aborted ->
              true
          | Satpg.Test _, Podem.Untestable | Satpg.Untestable, Podem.Test _ -> false)
        (Fault.all c))

(* Detection matrices built from a burst's patterns equal the union of
   per-pattern detection — the structural identity behind the Detection
   Matrix construction. *)
let prop_burst_detection_is_union =
  QCheck.Test.make ~name:"burst detection = union of patterns" ~count:15
    QCheck.(pair (int_range 0 200) (int_bound 10000))
    (fun (cseed, tseed) ->
      let c = random_circuit cseed in
      let faults = Fault.all c in
      let sim = Fault_sim.create c faults in
      let rng = Rng.create tseed in
      let tpg = Reseed_tpg.Accumulator.adder 8 in
      let seed = Word.random rng 8 and operand = Word.random rng 8 in
      let burst = Reseed_tpg.Tpg.run_bits tpg ~seed ~operand ~cycles:20 in
      let active = Bitvec.create (Array.length faults) in
      Bitvec.fill_all active;
      let whole = Fault_sim.detected_set sim burst ~active in
      let union = Bitvec.create (Array.length faults) in
      Array.iter
        (fun pattern ->
          Bitvec.union_into ~into:union
            (Fault_sim.detected_set sim [| pattern |] ~active))
        burst;
      Bitvec.equal whole union)

(* Reverse-order compaction never increases size and preserves coverage
   on arbitrary random test sets. *)
let prop_compaction_sound =
  QCheck.Test.make ~name:"compaction sound on random sets" ~count:15
    QCheck.(pair (int_range 0 200) (int_range 1 60))
    (fun (cseed, n_tests) ->
      let c = random_circuit cseed in
      let faults = Fault.all c in
      let sim = Fault_sim.create c faults in
      let rng = Rng.create (cseed * 7) in
      let tests =
        Array.init n_tests (fun _ -> Array.init 8 (fun _ -> Rng.bool rng))
      in
      let active = Bitvec.create (Array.length faults) in
      Bitvec.fill_all active;
      let before = Fault_sim.detected_set sim tests ~active in
      let kept, dropped = Compact.reverse_order sim tests in
      let after = Fault_sim.detected_set sim kept ~active in
      Bitvec.equal before after
      && Array.length kept + dropped = n_tests)

(* The full-scan conversion leaves PI+PO counts consistent with the DFF
   count on generated sequential sources. *)
let prop_fullscan_counts =
  QCheck.Test.make ~name:"full-scan PI/PO accounting" ~count:30
    QCheck.(int_range 1 6)
    (fun n_ff ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "INPUT(x)\nOUTPUT(z)\n";
      for i = 1 to n_ff do
        Printf.bprintf buf "q%d = DFF(d%d)\n" i i;
        Printf.bprintf buf "d%d = NOT(%s)\n" i (if i = 1 then "x" else Printf.sprintf "q%d" (i - 1))
      done;
      Printf.bprintf buf "z = AND(x, q%d)\n" n_ff;
      let c, dffs = Bench_io.parse_full_scan ~name:"chain" (Buffer.contents buf) in
      dffs = n_ff
      && Circuit.input_count c = 1 + n_ff
      && Circuit.output_count c = 1 + n_ff)

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_ternary_vs_parallel;
        QCheck_alcotest.to_alcotest prop_podem_tests_validate;
        QCheck_alcotest.to_alcotest prop_sat_podem_agree;
        QCheck_alcotest.to_alcotest prop_burst_detection_is_union;
        QCheck_alcotest.to_alcotest prop_compaction_sound;
        QCheck_alcotest.to_alcotest prop_fullscan_counts;
      ] );
  ]
