open Reseed_util

let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

let test_mean_stddev () =
  check_float "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  check_float "stddev const" 0.0 (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "stddev" 1.0 (Stats.stddev [ 1.; 3.; 1.; 3.; 1.; 3.; 1.; 3. ])

let test_median_percentile () =
  check_float "median odd" 2.0 (Stats.median [ 3.; 1.; 2. ]);
  check_float "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]);
  check_float "p100" 9.0 (Stats.percentile 100. [ 1.; 9.; 5. ]);
  check_float "p0 is min-ish" 1.0 (Stats.percentile 0. [ 1.; 9.; 5. ]);
  check_float "min" 1.0 (Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3.0 (Stats.maximum [ 3.; 1.; 2. ])

let test_empty_raises () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_ratio_pct () =
  check_float "ratio" 0.5 (Stats.ratio 1. 2.);
  Alcotest.(check bool) "ratio by zero is nan" true (Float.is_nan (Stats.ratio 1. 0.));
  check_float "pct" 50.0 (Stats.pct 1 2);
  check_float "pct zero whole" 0.0 (Stats.pct 1 0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "mentions yy" true (contains ~needle:"yy" s);
  Alcotest.(check bool) "right-aligns 22" true (contains ~needle:" 22 |" s)

let test_table_mismatch () =
  let t = Table.create ~title:"" [ ("a", Table.Left) ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Table.create ~title:"t" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x,1"; "plain" ];
  let csv = Table.to_csv t in
  check_str "csv" "a,b\n\"x,1\",plain\n" csv

let test_cells () =
  check_str "int" "42" (Table.cell_int 42);
  check_str "float" "1.50" (Table.cell_float 1.5);
  check_str "float decimals" "1.5000" (Table.cell_float ~decimals:4 1.5);
  check_str "pct" "97.31%" (Table.cell_pct 97.31);
  check_str "opt none" "-" (Table.cell_opt Table.cell_int None);
  check_str "opt some" "7" (Table.cell_opt Table.cell_int (Some 7))

let suite =
  [
    ( "stats+table",
      [
        Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
        Alcotest.test_case "median/percentile" `Quick test_median_percentile;
        Alcotest.test_case "empty raises" `Quick test_empty_raises;
        Alcotest.test_case "ratio/pct" `Quick test_ratio_pct;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table mismatch" `Quick test_table_mismatch;
        Alcotest.test_case "table csv" `Quick test_table_csv;
        Alcotest.test_case "cell helpers" `Quick test_cells;
      ] );
  ]
