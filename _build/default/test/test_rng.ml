open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let sa = List.init 20 (fun _ -> Rng.next a) in
  let sb = List.init 20 (fun _ -> Rng.next b) in
  check "same seed same stream" true (sa = sb)

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 10 (fun _ -> Rng.next a) in
  let sb = List.init 10 (fun _ -> Rng.next b) in
  check "different seeds differ" true (sa <> sb)

let test_copy () =
  let a = Rng.create 3 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check_int "copy continues identically" (Rng.next a) (Rng.next b)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let sa = List.init 10 (fun _ -> Rng.next a) in
  let sb = List.init 10 (fun _ -> Rng.next b) in
  check "split streams differ" true (sa <> sb)

let test_non_negative () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.next rng in
    if x < 0 then Alcotest.fail "negative output"
  done

let test_int_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_roughly_uniform () =
  let rng = Rng.create 17 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let x = Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iter
    (fun c ->
      (* each bucket expects 2000; allow ±15% *)
      if c < 1700 || c > 2300 then
        Alcotest.failf "bucket count %d far from uniform" c)
    buckets

let test_bits () =
  let rng = Rng.create 19 in
  check_int "0 bits" 0 (Rng.bits rng 0);
  for _ = 1 to 100 do
    let x = Rng.bits rng 5 in
    if x < 0 || x > 31 then Alcotest.fail "bits out of range"
  done

let test_float_range () =
  let rng = Rng.create 23 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_bool_balanced () =
  let rng = Rng.create 29 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr trues
  done;
  check "bool roughly balanced" true (!trues > 4600 && !trues < 5400)

let test_pick_shuffle () =
  let rng = Rng.create 31 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    let x = Rng.pick rng arr in
    if not (Array.mem x arr) then Alcotest.fail "pick not a member"
  done;
  let arr2 = Array.init 20 Fun.id in
  let orig = Array.copy arr2 in
  Rng.shuffle rng arr2;
  check "shuffle is a permutation" true
    (List.sort compare (Array.to_list arr2) = Array.to_list orig);
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_different_seeds;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "outputs non-negative" `Quick test_non_negative;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int uniformity" `Quick test_int_roughly_uniform;
        Alcotest.test_case "bits" `Quick test_bits;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "bool balance" `Quick test_bool_balanced;
        Alcotest.test_case "pick/shuffle" `Quick test_pick_shuffle;
      ] );
  ]
