open Reseed_core
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prepared_c17 = lazy (Suite.prepare "c17")
let prepared_addr = lazy (Suite.prepare_circuit (Library.ripple_adder 6))

(* --- Builder --- *)

let test_builder_one_triplet_per_pattern () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let b =
    Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~config:Builder.default_config
  in
  check_int "rows = patterns" (Array.length p.Suite.tests) (Array.length b.Builder.triplets);
  check_int "matrix rows" (Array.length p.Suite.tests) (Matrix.rows b.Builder.matrix)

let test_builder_seeds_are_patterns () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let b =
    Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~config:Builder.default_config
  in
  Array.iteri
    (fun i t ->
      check "seed = ATPG pattern" true
        (Word.to_bits t.Triplet.seed = p.Suite.tests.(i)))
    b.Builder.triplets

let test_builder_covers_targets_by_construction () =
  (* Union of all rows ⊇ targets: the seed is the burst's first pattern. *)
  let p = Lazy.force prepared_c17 in
  List.iter
    (fun tpg ->
      let b =
        Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
          ~config:Builder.default_config
      in
      let u = Bitvec.create (Matrix.cols b.Builder.matrix) in
      Array.iteri
        (fun i _ -> Bitvec.union_into ~into:u (Matrix.row b.Builder.matrix i))
        b.Builder.triplets;
      check (tpg.Tpg.name ^ " covers") true (Bitvec.subset p.Suite.targets u))
    (Accumulator.paper_tpgs 5)

let test_builder_nontarget_columns_empty () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let targets = Bitvec.copy p.Suite.targets in
  (* exclude a couple of faults *)
  Bitvec.clear targets 0;
  Bitvec.clear targets 5;
  let b =
    Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets
      ~config:Builder.default_config
  in
  check "excluded col 0 empty" true (Bitvec.is_empty (Matrix.col b.Builder.matrix 0));
  check "excluded col 5 empty" true (Bitvec.is_empty (Matrix.col b.Builder.matrix 5))

let test_builder_shared_operand () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let sigma = Word.of_int 5 7 in
  let config =
    { Builder.default_config with Builder.operand_mode = Builder.Shared_operand sigma }
  in
  let b = Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets ~config in
  Array.iter
    (fun t -> check "operand shared" true (Word.equal t.Triplet.operand sigma))
    b.Builder.triplets

let test_builder_cycle_config () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let config = { Builder.default_config with Builder.cycles = 3 } in
  let b = Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets ~config in
  Array.iter (fun t -> check_int "cycles" 3 t.Triplet.cycles) b.Builder.triplets

(* --- Flow --- *)

let flow_on p tpg = Flow.run p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets

let test_flow_full_coverage () =
  let p = Lazy.force prepared_c17 in
  List.iter
    (fun tpg ->
      let r = flow_on p tpg in
      check "coverage 100" true (r.Flow.coverage_pct >= 100.0);
      check "verifies" true (Flow.verify p.Suite.sim tpg r))
    (Accumulator.paper_tpgs 5)

let test_flow_minimality () =
  (* No triplet of the final solution is removable (the paper's definition
     of a minimal solution). *)
  let p = Lazy.force prepared_addr in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let r = flow_on p tpg in
  let rows = r.Flow.solution.Solution.rows in
  let m = r.Flow.initial.Builder.matrix in
  List.iter
    (fun dropped ->
      let subset = List.filter (fun x -> x <> dropped) rows in
      if Matrix.covers m ~rows_subset:subset then
        Alcotest.failf "triplet %d is removable" dropped)
    rows

let test_flow_test_length_bounds () =
  let p = Lazy.force prepared_addr in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let r = flow_on p tpg in
  check "positive" true (r.Flow.test_length > 0);
  check "each triplet within T" true
    (List.for_all
       (fun t -> t.Triplet.cycles <= Builder.default_config.Builder.cycles)
       r.Flow.final_triplets);
  check "uniform >= truncated" true (r.Flow.uniform_test_length >= r.Flow.test_length)

let test_flow_truncation_sound () =
  (* Truncated triplets must still achieve full target coverage — verify
     does exactly that, but check the count here explicitly. *)
  let p = Lazy.force prepared_addr in
  let tpg = Accumulator.subtracter (Circuit.input_count p.Suite.circuit) in
  let r = flow_on p tpg in
  let all = Array.concat (List.map (fun t -> Triplet.patterns tpg t) r.Flow.final_triplets) in
  let det = Reseed_fault.Fault_sim.detected_set p.Suite.sim all ~active:p.Suite.targets in
  check "truncated bursts still cover" true (Bitvec.subset p.Suite.targets det)

let test_flow_solution_cardinality_vs_greedy () =
  let p = Lazy.force prepared_addr in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let exact = flow_on p tpg in
  let greedy =
    Flow.run
      ~config:{ Flow.default_config with Flow.method_ = Solution.Greedy_only }
      p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
  in
  check "exact <= greedy" true (Flow.reseedings exact <= Flow.reseedings greedy)

let test_flow_fault_sims_counted () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let r = flow_on p tpg in
  check "fault sims > 0" true (r.Flow.fault_sims > 0)

(* --- Tradeoff --- *)

let test_tradeoff_monotone_triplets () =
  let p = Lazy.force prepared_addr in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let points =
    Tradeoff.sweep p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~grid:[ 4; 32; 256 ]
  in
  check_int "three points" 3 (List.length points);
  let triplet_counts = List.map (fun pt -> pt.Tradeoff.triplets) points in
  (* longer bursts never need more triplets *)
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  check "non-increasing" true (non_increasing triplet_counts)

let test_tradeoff_grid_sorted_and_rendered () =
  let p = Lazy.force prepared_c17 in
  let tpg = Accumulator.adder 5 in
  let points =
    Tradeoff.sweep p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~grid:[ 64; 4 ]
  in
  check "sorted by cycles" true
    (List.map (fun pt -> pt.Tradeoff.cycles) points = [ 4; 64 ]);
  let s = Tradeoff.render points in
  check "render nonempty" true (String.length s > 0)

let test_default_grid () =
  let g = Tradeoff.default_grid ~max_cycles:64 in
  check "grid" true (g = [ 8; 16; 32; 64 ])

(* --- Suite drivers --- *)

let test_table_rows () =
  let p = Lazy.force prepared_c17 in
  let row = Suite.table1_row ~with_gatsby:true p in
  check_int "three TPG entries" 3 (List.length row.Suite.entries);
  List.iter
    (fun e ->
      check "sc triplets positive" true (e.Suite.sc_triplets >= 1);
      check "gatsby present" true (e.Suite.gatsby_triplets <> None))
    row.Suite.entries;
  let row2 = Suite.table2_row p in
  check_int "t2 entries" 3 (List.length row2.Suite.t2_entries);
  check_int "initial triplets = |ATPGTS|" (Array.length p.Suite.tests) row2.Suite.initial_triplets;
  let s1 = Suite.render_table1 [ row ] in
  let s2 = Suite.render_table2 [ row2 ] in
  check "renders" true (String.length s1 > 0 && String.length s2 > 0)


let test_csv_outputs () =
  let p = Lazy.force prepared_c17 in
  let row = Suite.table1_row ~with_gatsby:false p in
  let csv1 = Suite.csv_table1 [ row ] in
  let csv2 = Suite.csv_table2 [ Suite.table2_row p ] in
  let fig = Suite.csv_figure2 [ { Tradeoff.cycles = 8; triplets = 3; test_length = 24 } ] in
  check "csv1 has header" true (String.length csv1 > 0 && String.sub csv1 0 7 = "Circuit");
  check "csv2 has header" true (String.length csv2 > 0 && String.sub csv2 0 7 = "Circuit");
  check "figure csv row" true (fig = "cycles,triplets,test_length\n8,3,24\n")

let suite =
  [
    ( "builder+flow",
      [
        Alcotest.test_case "one triplet per pattern" `Quick test_builder_one_triplet_per_pattern;
        Alcotest.test_case "seeds are ATPG patterns" `Quick test_builder_seeds_are_patterns;
        Alcotest.test_case "initial reseeding covers F" `Quick test_builder_covers_targets_by_construction;
        Alcotest.test_case "non-target columns empty" `Quick test_builder_nontarget_columns_empty;
        Alcotest.test_case "shared operand mode" `Quick test_builder_shared_operand;
        Alcotest.test_case "cycle configuration" `Quick test_builder_cycle_config;
        Alcotest.test_case "flow reaches 100% on targets" `Quick test_flow_full_coverage;
        Alcotest.test_case "solution is minimal" `Quick test_flow_minimality;
        Alcotest.test_case "test length accounting" `Quick test_flow_test_length_bounds;
        Alcotest.test_case "truncation is sound" `Quick test_flow_truncation_sound;
        Alcotest.test_case "exact <= greedy" `Quick test_flow_solution_cardinality_vs_greedy;
        Alcotest.test_case "fault sims counted" `Quick test_flow_fault_sims_counted;
        Alcotest.test_case "tradeoff monotone" `Slow test_tradeoff_monotone_triplets;
        Alcotest.test_case "tradeoff sorting/render" `Quick test_tradeoff_grid_sorted_and_rendered;
        Alcotest.test_case "default grid" `Quick test_default_grid;
        Alcotest.test_case "suite table rows" `Slow test_table_rows;
        Alcotest.test_case "csv outputs" `Quick test_csv_outputs;
      ] );
  ]
