open Reseed_netlist
open Reseed_fault
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Brute-force oracle: rebuild the whole faulty circuit per pattern. *)
let brute_force_detects c (fault : Fault.t) pattern =
  let goodv = Reseed_sim.Logic_sim.output_response c pattern in
  let values = Reseed_sim.Logic_sim.simulate_bool c pattern in
  let fvals = Array.copy values in
  let n_nodes = Circuit.node_count c in
  for i = 0 to n_nodes - 1 do
    (match c.Circuit.nodes.(i).Circuit.kind with
    | Gate.Input -> ()
    | k ->
        let args = Array.map (fun f -> fvals.(f)) c.Circuit.nodes.(i).Circuit.fanins in
        (match fault.Fault.site with
        | Fault.Pin { gate; pin } when gate = i -> args.(pin) <- fault.Fault.stuck
        | _ -> ());
        fvals.(i) <- Gate.eval k args);
    match fault.Fault.site with
    | Fault.Out g when g = i -> fvals.(i) <- fault.Fault.stuck
    | _ -> ()
  done;
  Array.map (fun o -> fvals.(o)) c.Circuit.outputs <> goodv

let cross_check c patterns =
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let map = Fault_sim.detection_map sim patterns in
  Array.iteri
    (fun fi fault ->
      Array.iteri
        (fun p pattern ->
          let brute = brute_force_detects c fault pattern in
          let fast = Bitvec.get map.(fi) p in
          if brute <> fast then
            Alcotest.failf "fault %s pattern %d: brute=%b fast=%b"
              (Fault.to_string c fault) p brute fast)
        patterns)
    faults

let test_oracle_c17_exhaustive () =
  let c = Library.c17 () in
  let patterns = Array.init 32 (fun p -> Array.init 5 (fun i -> p lsr i land 1 = 1)) in
  cross_check c patterns

let test_oracle_random_circuits () =
  let rng = Rng.create 555 in
  List.iter
    (fun seed ->
      let spec =
        { (Generator.default_spec "fs" ~inputs:9 ~outputs:3 ~gates:50) with Generator.seed = seed }
      in
      let c = Generator.generate spec in
      let patterns = Array.init 70 (fun _ -> Array.init 9 (fun _ -> Rng.bool rng)) in
      cross_check c patterns)
    [ 1; 2; 3 ]

let test_oracle_structured () =
  let rng = Rng.create 556 in
  List.iter
    (fun c ->
      let n = Circuit.input_count c in
      let patterns = Array.init 64 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
      cross_check c patterns)
    [ Library.ripple_adder 4; Library.comparator 4; Library.mux_tree 3; Library.alu 2 ]

let test_first_detections_drop () =
  let c = Library.c17 () in
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let patterns = Array.init 32 (fun p -> Array.init 5 (fun i -> p lsr i land 1 = 1)) in
  let firsts = Fault_sim.first_detections sim patterns in
  let map = Fault_sim.detection_map sim patterns in
  Array.iteri
    (fun fi first ->
      match (first, Bitvec.first_one map.(fi)) with
      | Some a, Some b when a = b -> ()
      | None, None -> ()
      | _ -> Alcotest.failf "first_detections disagrees on fault %d" fi)
    firsts

let test_active_mask_respected () =
  let c = Library.c17 () in
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let patterns = Array.init 32 (fun p -> Array.init 5 (fun i -> p lsr i land 1 = 1)) in
  let active = Bitvec.create (Array.length faults) in
  Bitvec.set active 0;
  Bitvec.set active 3;
  let det = Fault_sim.detected_set sim patterns ~active in
  check "detected ⊆ active" true (Bitvec.subset det active);
  let firsts = Fault_sim.first_detections sim ~active patterns in
  Array.iteri
    (fun fi f -> if f <> None && not (Bitvec.get active fi) then Alcotest.fail "mask leak")
    firsts

let test_count_matches_set () =
  let c = Library.ripple_adder 4 in
  let faults = Fault.all c in
  let sim = Fault_sim.create c faults in
  let rng = Rng.create 4 in
  let patterns = Array.init 20 (fun _ -> Array.init 9 (fun _ -> Rng.bool rng)) in
  let active = Bitvec.create (Array.length faults) in
  Bitvec.fill_all active;
  check_int "count = |set|"
    (Bitvec.count (Fault_sim.detected_set sim patterns ~active))
    (Fault_sim.count_new_detections sim patterns ~active)

let test_sims_counter_monotone () =
  let c = Library.c17 () in
  let sim = Fault_sim.create c (Fault.all c) in
  let before = Fault_sim.sims_performed sim in
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  ignore (Fault_sim.detected_set sim [| Array.make 5 true |] ~active);
  check "sims increased" true (Fault_sim.sims_performed sim > before)

let test_empty_patterns () =
  let c = Library.c17 () in
  let sim = Fault_sim.create c (Fault.all c) in
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let det = Fault_sim.detected_set sim [||] ~active in
  check "nothing detected" true (Bitvec.is_empty det)

let test_coverage_pct () =
  let c = Library.c17 () in
  let sim = Fault_sim.create c (Fault.all c) in
  let det = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.set det 0;
  let pct = Fault_sim.coverage_pct sim det in
  check "pct positive" true (pct > 0.0 && pct < 100.0)

(* Property: detection is stable under pattern-set permutation. *)
let prop_detection_order_independent =
  QCheck.Test.make ~name:"detected set independent of pattern order" ~count:20
    QCheck.(small_int)
    (fun seed ->
      let c = Library.ripple_adder 3 in
      let faults = Fault.all c in
      let sim = Fault_sim.create c faults in
      let rng = Rng.create seed in
      let patterns = Array.init 10 (fun _ -> Array.init 7 (fun _ -> Rng.bool rng)) in
      let shuffled = Array.copy patterns in
      Rng.shuffle rng shuffled;
      let active = Bitvec.create (Array.length faults) in
      Bitvec.fill_all active;
      Bitvec.equal
        (Fault_sim.detected_set sim patterns ~active)
        (Fault_sim.detected_set sim shuffled ~active))

let suite =
  [
    ( "fault_sim",
      [
        Alcotest.test_case "oracle: c17 exhaustive" `Quick test_oracle_c17_exhaustive;
        Alcotest.test_case "oracle: random circuits" `Slow test_oracle_random_circuits;
        Alcotest.test_case "oracle: structured circuits" `Slow test_oracle_structured;
        Alcotest.test_case "first_detections = first set bit" `Quick test_first_detections_drop;
        Alcotest.test_case "active mask respected" `Quick test_active_mask_respected;
        Alcotest.test_case "count matches set" `Quick test_count_matches_set;
        Alcotest.test_case "sims counter monotone" `Quick test_sims_counter_monotone;
        Alcotest.test_case "empty pattern set" `Quick test_empty_patterns;
        Alcotest.test_case "coverage pct" `Quick test_coverage_pct;
        QCheck_alcotest.to_alcotest prop_detection_order_independent;
      ] );
  ]
