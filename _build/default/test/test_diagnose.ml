open Reseed_fault
open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup () =
  let c = Library.c17 () in
  let sim = Fault_sim.create c (Fault.all c) in
  let patterns = Array.init 32 (fun p -> Array.init 5 (fun i -> p lsr i land 1 = 1)) in
  (sim, Diagnose.build sim patterns)

let test_dictionary_shape () =
  let sim, d = setup () in
  check_int "tests" 32 (Diagnose.test_count d);
  check_int "faults" (Fault_sim.fault_count sim) (Diagnose.fault_count d);
  check "resolution positive" true (Diagnose.resolution d > 0);
  check "resolution <= faults" true (Diagnose.resolution d <= Diagnose.fault_count d)

let test_injected_fault_diagnosed_first () =
  let _, d = setup () in
  (* inject each fault: its own class must rank first at distance 0 *)
  for fi = 0 to Diagnose.fault_count d - 1 do
    let observed = Diagnose.observe_fault d fi in
    if not (Bitvec.is_empty observed) then begin
      match Diagnose.diagnose d ~observed () with
      | [] -> Alcotest.fail "no candidates"
      | best :: _ ->
          if best.Diagnose.distance <> 0 then Alcotest.fail "nonzero distance";
          if not (List.mem fi best.Diagnose.faults) then
            Alcotest.failf "fault %d not in the top class" fi
    end
  done

let test_equivalent_faults_grouped () =
  let _, d = setup () in
  (* under the exhaustive test set, equal signatures = equivalent faults;
     each class lists all of them together *)
  let observed = Diagnose.observe_fault d 0 in
  if not (Bitvec.is_empty observed) then begin
    match Diagnose.diagnose d ~observed () with
    | best :: _ ->
        List.iter
          (fun fj ->
            check "same signature in class" true
              (Bitvec.equal (Diagnose.signature d fj) (Diagnose.signature d 0)))
          best.Diagnose.faults
    | [] -> Alcotest.fail "no candidates"
  end

let test_noisy_observation_ranks_close () =
  let _, d = setup () in
  (* flip one bit of a real signature: the true class should still rank
     within distance 1 at the top *)
  let observed = Diagnose.observe_fault d 3 in
  if Bitvec.count observed > 1 then begin
    (match Bitvec.first_one observed with
    | Some b -> Bitvec.clear observed b
    | None -> ());
    match Diagnose.diagnose d ~observed () with
    | best :: _ -> check "top candidate within distance 1" true (best.Diagnose.distance <= 1)
    | [] -> Alcotest.fail "no candidates"
  end

let test_candidate_cap () =
  let _, d = setup () in
  let observed = Bitvec.create (Diagnose.test_count d) in
  Bitvec.set observed 0;
  let c = Diagnose.diagnose d ~observed ~max_candidates:3 () in
  check "capped" true (List.length c <= 3)

let test_width_mismatch () =
  let _, d = setup () in
  check "mismatch raises" true
    (try
       ignore (Diagnose.diagnose d ~observed:(Bitvec.create 5) ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "diagnose",
      [
        Alcotest.test_case "dictionary shape" `Quick test_dictionary_shape;
        Alcotest.test_case "injected fault ranks first" `Quick test_injected_fault_diagnosed_first;
        Alcotest.test_case "equivalent faults grouped" `Quick test_equivalent_faults_grouped;
        Alcotest.test_case "noisy observation" `Quick test_noisy_observation_ranks_close;
        Alcotest.test_case "candidate cap" `Quick test_candidate_cap;
        Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
      ] );
  ]
