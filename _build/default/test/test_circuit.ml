open Reseed_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny () =
  let b = Circuit.Builder.create "tiny" in
  let a = Circuit.Builder.add_input b "a" in
  let bb = Circuit.Builder.add_input b "b" in
  let g1 = Circuit.Builder.add_gate b Gate.And [ a; bb ] "g1" in
  let g2 = Circuit.Builder.add_gate b Gate.Not [ g1 ] "g2" in
  Circuit.Builder.mark_output b g2;
  Circuit.Builder.finalize b

let test_basic_construction () =
  let c = tiny () in
  check_int "nodes" 4 (Circuit.node_count c);
  check_int "inputs" 2 (Circuit.input_count c);
  check_int "outputs" 1 (Circuit.output_count c);
  check_int "gates" 2 (Circuit.gate_count c);
  check_int "depth" 2 (Circuit.max_level c);
  Circuit.validate c

let test_find () =
  let c = tiny () in
  check_int "find g1" 2 (Circuit.find c "g1");
  Alcotest.check_raises "find missing" Not_found (fun () -> ignore (Circuit.find c "zzz"))

let test_fanouts () =
  let c = tiny () in
  let a = Circuit.find c "a" in
  check "a feeds g1" true (c.Circuit.fanouts.(a) = [| Circuit.find c "g1" |]);
  check "g2 has no fanout" true (c.Circuit.fanouts.(Circuit.find c "g2") = [||])

let test_cones () =
  let c = tiny () in
  let g2 = Circuit.find c "g2" in
  let cone = Circuit.fanin_cone c [| g2 |] in
  check_int "fanin cone covers all" 4 (Array.length cone);
  let a = Circuit.find c "a" in
  let fc = Circuit.fanout_cone c a in
  check "fanout cone of a" true (fc = [| a; Circuit.find c "g1"; g2 |]);
  check "output mask" true (Circuit.output_mask_of_cone c fc = [ 0 ])

let test_duplicate_label_rejected () =
  let b = Circuit.Builder.create "dup" in
  let _ = Circuit.Builder.add_input b "x" in
  Alcotest.check_raises "duplicate" (Failure "Builder(dup): duplicate label x")
    (fun () -> ignore (Circuit.Builder.add_input b "x"))

let test_bad_arity_rejected () =
  let b = Circuit.Builder.create "bad" in
  let x = Circuit.Builder.add_input b "x" in
  check "not with 2 inputs rejected" true
    (try
       ignore (Circuit.Builder.add_gate b Gate.Not [ x; x ] "n");
       false
     with Failure _ -> true)

let test_unknown_fanin_rejected () =
  let b = Circuit.Builder.create "unk" in
  let _ = Circuit.Builder.add_input b "x" in
  check "forward ref rejected" true
    (try
       ignore (Circuit.Builder.add_gate b Gate.Not [ 99 ] "n");
       false
     with Failure _ -> true)

let test_no_outputs_rejected () =
  let b = Circuit.Builder.create "noout" in
  let _ = Circuit.Builder.add_input b "x" in
  check "no outputs" true
    (try
       ignore (Circuit.Builder.finalize b);
       false
     with Failure _ -> true)

let test_no_inputs_rejected () =
  let b = Circuit.Builder.create "noin" in
  check "no inputs" true
    (try
       ignore (Circuit.Builder.finalize b);
       false
     with Failure _ -> true)

let test_double_output_rejected () =
  let b = Circuit.Builder.create "dblout" in
  let x = Circuit.Builder.add_input b "x" in
  Circuit.Builder.mark_output b x;
  check "double mark" true
    (try
       Circuit.Builder.mark_output b x;
       false
     with Failure _ -> true)

let test_output_can_be_input () =
  let b = Circuit.Builder.create "passthru" in
  let x = Circuit.Builder.add_input b "x" in
  let y = Circuit.Builder.add_input b "y" in
  let g = Circuit.Builder.add_gate b Gate.Or [ x; y ] "g" in
  Circuit.Builder.mark_output b x;
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finalize b in
  check_int "two outputs" 2 (Circuit.output_count c)

let test_levels () =
  let c = Library.ripple_adder 4 in
  Circuit.validate c;
  check "depth grows with width" true
    (Circuit.max_level (Library.ripple_adder 8) > Circuit.max_level c)

let suite =
  [
    ( "circuit",
      [
        Alcotest.test_case "basic construction" `Quick test_basic_construction;
        Alcotest.test_case "find by label" `Quick test_find;
        Alcotest.test_case "fanouts" `Quick test_fanouts;
        Alcotest.test_case "cones" `Quick test_cones;
        Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
        Alcotest.test_case "bad arity rejected" `Quick test_bad_arity_rejected;
        Alcotest.test_case "unknown fanin rejected" `Quick test_unknown_fanin_rejected;
        Alcotest.test_case "no outputs rejected" `Quick test_no_outputs_rejected;
        Alcotest.test_case "no inputs rejected" `Quick test_no_inputs_rejected;
        Alcotest.test_case "double output rejected" `Quick test_double_output_rejected;
        Alcotest.test_case "output can be an input" `Quick test_output_can_be_input;
        Alcotest.test_case "levels" `Quick test_levels;
      ] );
  ]
