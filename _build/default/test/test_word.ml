open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let w_of n x = Word.of_int n x
let to_int w = Option.get (Word.to_int w)

let test_of_to_int () =
  check_int "roundtrip 0" 0 (to_int (w_of 8 0));
  check_int "roundtrip 255" 255 (to_int (w_of 8 255));
  check_int "mod 2^8" 1 (to_int (w_of 8 257));
  check_int "width 1" 1 (to_int (w_of 1 3));
  check_int "wide roundtrip" 123456789 (to_int (w_of 40 123456789))

let test_add_sub () =
  check_int "add" 30 (to_int (Word.add (w_of 16 10) (w_of 16 20)));
  check_int "add wraps" 4 (to_int (Word.add (w_of 8 250) (w_of 8 10)));
  check_int "sub" 5 (to_int (Word.sub (w_of 8 10) (w_of 8 5)));
  check_int "sub wraps" 251 (to_int (Word.sub (w_of 8 5) (w_of 8 10)));
  check_int "neg" 246 (to_int (Word.neg (w_of 8 10)));
  check_int "neg zero" 0 (to_int (Word.neg (w_of 8 0)))

let test_mul () =
  check_int "mul small" 56 (to_int (Word.mul (w_of 8 7) (w_of 8 8)));
  check_int "mul wraps" ((123 * 231) mod 256) (to_int (Word.mul (w_of 8 123) (w_of 8 231)));
  (* cross-limb multiplication, width 45 *)
  let a = 123456789 and b = 987654 in
  let expect = a * b mod (1 lsl 45) in
  check_int "mul cross-limb" expect (to_int (Word.mul (w_of 45 a) (w_of 45 b)))

let test_logical () =
  check_int "xor" 0b0110 (to_int (Word.logxor (w_of 4 0b1010) (w_of 4 0b1100)));
  check_int "and" 0b1000 (to_int (Word.logand (w_of 4 0b1010) (w_of 4 0b1100)));
  check_int "or" 0b1110 (to_int (Word.logor (w_of 4 0b1010) (w_of 4 0b1100)));
  check_int "not" 0b0101 (to_int (Word.lognot (w_of 4 0b1010)))

let test_shift () =
  check_int "shl" 0b1010 (to_int (Word.shift_left (w_of 4 0b0101) 1));
  check_int "shl drop" 0b0100 (to_int (Word.shift_left (w_of 3 0b110) 1));
  check_int "shr" 0b0011 (to_int (Word.shift_right (w_of 4 0b0110) 1));
  check_int "shl by width" 0 (to_int (Word.shift_left (w_of 4 0b1111) 4));
  (* shifting across limb boundary *)
  let v = Word.shift_left (Word.one 40) 35 in
  check "bit 35" true (Word.get_bit v 35);
  check_int "popcount" 1 (Word.popcount v)

let test_bits () =
  let w = Word.of_bits [| true; false; true; true |] in
  check_int "of_bits" 0b1101 (to_int w);
  check "to_bits roundtrip" true (Word.to_bits w = [| true; false; true; true |]);
  let w2 = Word.set_bit w 1 true in
  check_int "set_bit" 0b1111 (to_int w2);
  check_int "immutable" 0b1101 (to_int w)

let test_ones_zero () =
  check_int "ones 5" 31 (to_int (Word.ones 5));
  check "is_zero" true (Word.is_zero (Word.zero 100));
  check "not zero" false (Word.is_zero (Word.one 100));
  check_int "popcount ones 70" 70 (Word.popcount (Word.ones 70))

let test_to_int_overflow () =
  let big = Word.ones 100 in
  check "to_int of 100-bit ones is None" true (Word.to_int big = None)

let test_hex () =
  Alcotest.(check string) "hex" "0x1af" (Word.to_hex (w_of 9 0x1af));
  Alcotest.(check string) "hex pads" "0x0f" (Word.to_hex (w_of 8 15))

let test_compare () =
  check "equal" true (Word.equal (w_of 64 42) (w_of 64 42));
  check "lt" true (Word.compare (w_of 64 41) (w_of 64 42) < 0);
  (* cross-limb comparison: high limb dominates *)
  let hi = Word.shift_left (Word.one 64) 40 in
  check "hi > low" true (Word.compare hi (w_of 64 0xFFFF) > 0)

let test_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Word.zero: width must be >= 1")
    (fun () -> ignore (Word.zero 0));
  Alcotest.check_raises "width mismatch" (Invalid_argument "Word: width mismatch")
    (fun () -> ignore (Word.add (Word.one 4) (Word.one 5)))

(* Properties: Word arithmetic agrees with native ints mod 2^n. *)

let gen_pair = QCheck.(triple (int_range 1 60) (int_bound 1_000_000_000) (int_bound 1_000_000_000))

let modn n x = x land ((1 lsl n) - 1)

let prop_add =
  QCheck.Test.make ~name:"word add = int add mod 2^n" ~count:500 gen_pair
    (fun (n, a, b) ->
      to_int (Word.add (w_of n a) (w_of n b)) = modn n (modn n a + modn n b))

let prop_mul =
  QCheck.Test.make ~name:"word mul = int mul mod 2^n" ~count:500
    QCheck.(triple (int_range 1 30) (int_bound 30000) (int_bound 30000))
    (fun (n, a, b) -> to_int (Word.mul (w_of n a) (w_of n b)) = modn n (modn n a * modn n b))

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:500 gen_pair (fun (n, a, b) ->
      let a' = w_of n a and b' = w_of n b in
      Word.equal (Word.sub (Word.add a' b') b') a')

let prop_random_width =
  QCheck.Test.make ~name:"random word has requested width" ~count:100
    QCheck.(pair (int_range 1 300) small_int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let w = Word.random rng n in
      Word.width w = n && Word.popcount w <= n)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"of_bits/to_bits roundtrip" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 120) bool)
    (fun bits -> Word.to_bits (Word.of_bits bits) = bits)

let suite =
  [
    ( "word",
      [
        Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
        Alcotest.test_case "add/sub/neg" `Quick test_add_sub;
        Alcotest.test_case "mul" `Quick test_mul;
        Alcotest.test_case "logical ops" `Quick test_logical;
        Alcotest.test_case "shifts" `Quick test_shift;
        Alcotest.test_case "bit conversion" `Quick test_bits;
        Alcotest.test_case "ones/zero/popcount" `Quick test_ones_zero;
        Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
        Alcotest.test_case "hex rendering" `Quick test_hex;
        Alcotest.test_case "equal/compare" `Quick test_compare;
        Alcotest.test_case "invalid arguments" `Quick test_invalid;
        QCheck_alcotest.to_alcotest prop_add;
        QCheck_alcotest.to_alcotest prop_mul;
        QCheck_alcotest.to_alcotest prop_sub_add_inverse;
        QCheck_alcotest.to_alcotest prop_random_width;
        QCheck_alcotest.to_alcotest prop_bits_roundtrip;
      ] );
  ]
