open Reseed_gatsby
open Reseed_util

let check = Alcotest.(check bool)

(* OneMax: the GA must nearly solve a 24-bit bit-counting problem. *)
let onemax_problem =
  {
    Ga.init = (fun rng -> Rng.bits rng 24);
    fitness = (fun g -> float_of_int (Bitvec.popcount_int g));
    crossover =
      (fun rng a b ->
        let mask = Rng.bits rng 24 in
        a land mask lor (b land lnot mask));
    mutate = (fun rng g -> g lxor (1 lsl Rng.int rng 24));
  }

let test_ga_optimizes () =
  let rng = Rng.create 42 in
  let out =
    Ga.optimize ~config:{ Ga.default_config with Ga.population = 30; generations = 40 }
      ~rng onemax_problem
  in
  check "near-optimal onemax" true (out.Ga.best_fitness >= 22.0)

let test_ga_deterministic () =
  let run () = (Ga.optimize ~rng:(Rng.create 7) onemax_problem).Ga.best_fitness in
  check "deterministic" true (run () = run ())

let test_ga_evaluation_count () =
  let rng = Rng.create 1 in
  let config = { Ga.default_config with Ga.population = 10; generations = 5; elite = 2 } in
  let out = Ga.optimize ~config ~rng onemax_problem in
  (* 10 initial + 5 generations × 8 children *)
  Alcotest.(check int) "evaluations" (10 + (5 * 8)) out.Ga.evaluations

let test_ga_best_never_lost () =
  (* with elitism, best fitness is monotone: final >= any population member
     we can observe — proxy: best >= initial best *)
  let rng = Rng.create 3 in
  let initial_best = ref neg_infinity in
  let problem =
    {
      onemax_problem with
      Ga.init =
        (fun rng ->
          let g = Rng.bits rng 24 in
          initial_best := Float.max !initial_best (float_of_int (Bitvec.popcount_int g));
          g);
    }
  in
  let out = Ga.optimize ~rng problem in
  check "no regression" true (out.Ga.best_fitness >= !initial_best)

let test_ga_config_validation () =
  let rng = Rng.create 1 in
  check "pop 1 rejected" true
    (try
       ignore (Ga.optimize ~config:{ Ga.default_config with Ga.population = 1 } ~rng onemax_problem);
       false
     with Invalid_argument _ -> true);
  check "elite >= pop rejected" true
    (try
       ignore
         (Ga.optimize
            ~config:{ Ga.default_config with Ga.population = 4; elite = 4 }
            ~rng onemax_problem);
       false
     with Invalid_argument _ -> true)

(* GATSBY end-to-end on a small circuit. *)

let setup () =
  let c = Reseed_netlist.Library.c17 () in
  let faults = Reseed_fault.Fault.all c in
  let sim = Reseed_fault.Fault_sim.create c faults in
  let tpg = Reseed_tpg.Accumulator.adder 5 in
  let targets = Bitvec.create (Array.length faults) in
  Bitvec.fill_all targets;
  (sim, tpg, targets)

let test_gatsby_covers_c17 () =
  let sim, tpg, targets = setup () in
  let rng = Rng.create 10 in
  let g = Gatsby.run sim tpg ~rng ~targets in
  check "full coverage" true (Bitvec.equal g.Gatsby.detected targets);
  check "at least one triplet" true (g.Gatsby.triplets <> []);
  check "test length consistent" true
    (g.Gatsby.test_length
    = List.fold_left (fun acc t -> acc + t.Reseed_tpg.Triplet.cycles) 0 g.Gatsby.triplets)

let test_gatsby_triplets_really_cover () =
  let sim, tpg, targets = setup () in
  let rng = Rng.create 11 in
  let g = Gatsby.run sim tpg ~rng ~targets in
  (* independent re-simulation of the committed (truncated) triplets *)
  let all =
    Array.concat (List.map (fun t -> Reseed_tpg.Triplet.patterns tpg t) g.Gatsby.triplets)
  in
  let re = Reseed_fault.Fault_sim.detected_set sim all ~active:targets in
  check "re-simulation matches" true (Bitvec.subset g.Gatsby.detected re)

let test_gatsby_respects_targets () =
  let sim, tpg, targets = setup () in
  Bitvec.clear targets 0;
  Bitvec.clear targets 1;
  let rng = Rng.create 12 in
  let g = Gatsby.run sim tpg ~rng ~targets in
  check "detected ⊆ targets" true (Bitvec.subset g.Gatsby.detected targets)

let test_gatsby_max_rounds () =
  let sim, tpg, targets = setup () in
  let rng = Rng.create 13 in
  let config = { Gatsby.default_config with Gatsby.max_rounds = 1 } in
  let g = Gatsby.run ~config sim tpg ~rng ~targets in
  check "at most one triplet" true (List.length g.Gatsby.triplets <= 1)

let test_gatsby_counts_sims () =
  let sim, tpg, targets = setup () in
  let rng = Rng.create 14 in
  let g = Gatsby.run sim tpg ~rng ~targets in
  check "fault sims counted" true (g.Gatsby.fault_sims > 0);
  check "ga evaluations counted" true (g.Gatsby.ga_evaluations > 0)

let suite =
  [
    ( "ga+gatsby",
      [
        Alcotest.test_case "GA optimizes onemax" `Quick test_ga_optimizes;
        Alcotest.test_case "GA deterministic" `Quick test_ga_deterministic;
        Alcotest.test_case "GA evaluation count" `Quick test_ga_evaluation_count;
        Alcotest.test_case "GA keeps the best" `Quick test_ga_best_never_lost;
        Alcotest.test_case "GA config validation" `Quick test_ga_config_validation;
        Alcotest.test_case "GATSBY covers c17" `Quick test_gatsby_covers_c17;
        Alcotest.test_case "GATSBY triplets re-simulate" `Quick test_gatsby_triplets_really_cover;
        Alcotest.test_case "GATSBY respects targets" `Quick test_gatsby_respects_targets;
        Alcotest.test_case "GATSBY round cap" `Quick test_gatsby_max_rounds;
        Alcotest.test_case "GATSBY cost accounting" `Quick test_gatsby_counts_sims;
      ] );
  ]
