open Reseed_tpg
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let w8 = Word.of_int 8

let test_adder_progression () =
  let tpg = Accumulator.adder 8 in
  let out = Tpg.run tpg ~seed:(w8 10) ~operand:(w8 3) ~cycles:5 in
  let expect = [ 10; 13; 16; 19; 22 ] in
  List.iteri
    (fun i e -> check_int "adder step" e (Option.get (Word.to_int out.(i))))
    expect

let test_adder_wraps () =
  let tpg = Accumulator.adder 8 in
  let out = Tpg.run tpg ~seed:(w8 250) ~operand:(w8 10) ~cycles:3 in
  check_int "wrap" 4 (Option.get (Word.to_int out.(1)));
  check_int "after wrap" 14 (Option.get (Word.to_int out.(2)))

let test_subtracter () =
  let tpg = Accumulator.subtracter 8 in
  let out = Tpg.run tpg ~seed:(w8 10) ~operand:(w8 3) ~cycles:4 in
  check_int "sub" 1 (Option.get (Word.to_int out.(3)));
  let out2 = Tpg.run tpg ~seed:(w8 1) ~operand:(w8 3) ~cycles:2 in
  check_int "sub wraps" 254 (Option.get (Word.to_int out2.(1)))

let test_multiplier () =
  let tpg = Accumulator.multiplier 8 in
  let out = Tpg.run tpg ~seed:(w8 3) ~operand:(w8 7) ~cycles:3 in
  check_int "mul1" 21 (Option.get (Word.to_int out.(1)));
  check_int "mul2" (21 * 7 mod 256) (Option.get (Word.to_int out.(2)))

let test_seed_is_first_pattern () =
  (* Crucial invariant for the covering flow: triplet i's burst starts at
     δ_i = the ATPG pattern itself. *)
  List.iter
    (fun tpg ->
      let seed = w8 0xAB in
      let out = Tpg.run tpg ~seed ~operand:(w8 0x31) ~cycles:3 in
      check "first = seed" true (Word.equal out.(0) seed))
    (Accumulator.paper_tpgs 8)

let test_run_bits_shape () =
  let tpg = Accumulator.adder 8 in
  let bits = Tpg.run_bits tpg ~seed:(w8 5) ~operand:(w8 1) ~cycles:4 in
  check_int "4 patterns" 4 (Array.length bits);
  check_int "8 bits each" 8 (Array.length bits.(0));
  check "lsb-first" true bits.(0).(0);
  check "bit2 of 5" true bits.(0).(2)

let test_width_checks () =
  let tpg = Accumulator.adder 8 in
  Alcotest.check_raises "seed width" (Invalid_argument "Tpg: seed/operand width mismatch")
    (fun () -> ignore (Tpg.run tpg ~seed:(Word.of_int 9 0) ~operand:(w8 1) ~cycles:2));
  Alcotest.check_raises "cycles < 1" (Invalid_argument "Tpg.run: cycles must be >= 1")
    (fun () -> ignore (Tpg.run tpg ~seed:(w8 1) ~operand:(w8 1) ~cycles:0))

let test_period_adder () =
  let tpg = Accumulator.adder 4 in
  (* operand 1 on a 4-bit adder: full period 16 *)
  check "period 16" true
    (Tpg.period tpg ~seed:(Word.of_int 4 0) ~operand:(Word.of_int 4 1) ~limit:100 = Some 16);
  (* operand 0: fixed point, period 1 *)
  check "period 1" true
    (Tpg.period tpg ~seed:(Word.of_int 4 5) ~operand:(Word.of_int 4 0) ~limit:100 = Some 1);
  check "limit respected" true
    (Tpg.period tpg ~seed:(Word.of_int 4 0) ~operand:(Word.of_int 4 1) ~limit:3 = None)

let test_lfsr_fibonacci () =
  (* 3-bit maximal LFSR with taps [2;1]: period 7 over nonzero states *)
  let tpg = Lfsr.fibonacci 3 [ 2; 1 ] in
  let seed = Word.of_int 3 1 in
  let p = Tpg.period tpg ~seed ~operand:(Word.of_int 3 0) ~limit:20 in
  check "lfsr period 7" true (p = Some 7);
  (* zero state is a fixed point *)
  check "zero fixed" true
    (Tpg.period tpg ~seed:(Word.of_int 3 0) ~operand:(Word.of_int 3 0) ~limit:20 = Some 1)

let test_lfsr_taps_validated () =
  Alcotest.check_raises "empty taps" (Invalid_argument "Lfsr.fibonacci: empty tap list")
    (fun () -> ignore (Lfsr.fibonacci 4 []));
  Alcotest.check_raises "tap range" (Invalid_argument "Lfsr.fibonacci: tap out of range")
    (fun () -> ignore (Lfsr.fibonacci 4 [ 4 ]))

let test_multi_polynomial () =
  let tpg = Lfsr.multi_polynomial 3 in
  (* operand acts as the tap mask: with mask for taps {2,1} behaviour
     matches the fixed-tap LFSR *)
  let fixed = Lfsr.fibonacci 3 [ 2; 1 ] in
  let mask = Word.of_bits [| false; true; true |] in
  let seed = Word.of_int 3 5 in
  let a = Tpg.run tpg ~seed ~operand:mask ~cycles:8 in
  let b = Tpg.run fixed ~seed ~operand:(Word.zero 3) ~cycles:8 in
  Array.iteri (fun i w -> check "mp matches fixed" true (Word.equal w b.(i))) a

let test_default_taps () =
  List.iter
    (fun w ->
      let taps = Lfsr.default_taps w in
      check "nonempty" true (taps <> []);
      List.iter (fun t -> check "in range" true (t >= 0 && t < w)) taps)
    [ 2; 3; 4; 5; 8; 16; 24; 32; 100 ]

let test_triplet () =
  let t = Triplet.make ~seed:(w8 1) ~operand:(w8 2) ~cycles:10 in
  check_int "cycles" 10 t.Triplet.cycles;
  let t2 = Triplet.truncate t 4 in
  check_int "truncated" 4 t2.Triplet.cycles;
  Alcotest.check_raises "truncate too long" (Invalid_argument "Triplet.truncate: bad cycle count")
    (fun () -> ignore (Triplet.truncate t 11));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Triplet.make: seed/operand width mismatch") (fun () ->
      ignore (Triplet.make ~seed:(w8 1) ~operand:(Word.of_int 9 2) ~cycles:1));
  (* storage: 8 + 8 + ceil(log2(11)) = 20 *)
  check_int "storage bits" 20 (Triplet.storage_bits t);
  check "equal" true (Triplet.equal t (Triplet.make ~seed:(w8 1) ~operand:(w8 2) ~cycles:10));
  let patterns = Triplet.patterns (Accumulator.adder 8) t in
  check_int "burst length" 10 (Array.length patterns)

(* Property: adder TPG step k = seed + k*operand mod 2^n. *)
let prop_adder_closed_form =
  QCheck.Test.make ~name:"adder burst closed form" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) (int_range 1 20))
    (fun (seed, operand, cycles) ->
      let tpg = Accumulator.adder 8 in
      let out = Tpg.run tpg ~seed:(w8 seed) ~operand:(w8 operand) ~cycles in
      let ok = ref true in
      Array.iteri
        (fun k w ->
          if Option.get (Word.to_int w) <> (seed + (k * operand)) mod 256 then ok := false)
        out;
      !ok)

let suite =
  [
    ( "tpg",
      [
        Alcotest.test_case "adder progression" `Quick test_adder_progression;
        Alcotest.test_case "adder wraps" `Quick test_adder_wraps;
        Alcotest.test_case "subtracter" `Quick test_subtracter;
        Alcotest.test_case "multiplier" `Quick test_multiplier;
        Alcotest.test_case "seed is first pattern" `Quick test_seed_is_first_pattern;
        Alcotest.test_case "run_bits shape" `Quick test_run_bits_shape;
        Alcotest.test_case "width checks" `Quick test_width_checks;
        Alcotest.test_case "period (adder)" `Quick test_period_adder;
        Alcotest.test_case "fibonacci lfsr" `Quick test_lfsr_fibonacci;
        Alcotest.test_case "lfsr tap validation" `Quick test_lfsr_taps_validated;
        Alcotest.test_case "multi-polynomial lfsr" `Quick test_multi_polynomial;
        Alcotest.test_case "default taps" `Quick test_default_taps;
        Alcotest.test_case "triplets" `Quick test_triplet;
        QCheck_alcotest.to_alcotest prop_adder_closed_form;
      ] );
  ]
