open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let v = Bitvec.create 0 in
  check_int "length" 0 (Bitvec.length v);
  check "empty" true (Bitvec.is_empty v);
  check_int "count" 0 (Bitvec.count v)

let test_set_get () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0;
  Bitvec.set v 61;
  Bitvec.set v 62;
  Bitvec.set v 129;
  check "bit 0" true (Bitvec.get v 0);
  check "bit 61" true (Bitvec.get v 61);
  check "bit 62" true (Bitvec.get v 62);
  check "bit 129" true (Bitvec.get v 129);
  check "bit 1" false (Bitvec.get v 1);
  check_int "count" 4 (Bitvec.count v)

let test_clear_assign () =
  let v = Bitvec.create 10 in
  Bitvec.assign v 3 true;
  check "set via assign" true (Bitvec.get v 3);
  Bitvec.clear v 3;
  check "cleared" false (Bitvec.get v 3);
  Bitvec.assign v 3 false;
  check "assign false" false (Bitvec.get v 3)

let test_bounds () =
  let v = Bitvec.create 5 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 5" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 5));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bitvec.create: negative length") (fun () ->
      ignore (Bitvec.create (-1)))

let test_fill_zero () =
  let v = Bitvec.create 100 in
  Bitvec.fill_all v;
  check_int "all ones" 100 (Bitvec.count v);
  check "bit 99" true (Bitvec.get v 99);
  Bitvec.zero_all v;
  check_int "all zero" 0 (Bitvec.count v)

let test_fill_exact_boundary () =
  (* length = exact multiple of the word size *)
  let v = Bitvec.create 124 in
  Bitvec.fill_all v;
  check_int "count at boundary" 124 (Bitvec.count v)

let test_set_ops () =
  let a = Bitvec.of_list 200 [ 1; 5; 100; 150 ] in
  let b = Bitvec.of_list 200 [ 5; 100; 199 ] in
  check_int "union" 5 (Bitvec.count (Bitvec.union a b));
  check_int "inter" 2 (Bitvec.count (Bitvec.inter a b));
  check_int "diff" 2 (Bitvec.count (Bitvec.diff a b));
  check_int "count_inter" 2 (Bitvec.count_inter a b);
  check_int "count_diff" 2 (Bitvec.count_diff a b);
  check "intersects" true (Bitvec.intersects a b);
  check "subset no" false (Bitvec.subset a b);
  check "subset yes" true (Bitvec.subset (Bitvec.inter a b) a)

let test_subset_masked () =
  let a = Bitvec.of_list 100 [ 1; 50 ] in
  let b = Bitvec.of_list 100 [ 1 ] in
  let mask = Bitvec.of_list 100 [ 1 ] in
  check "masked subset" true (Bitvec.subset_masked a b ~mask);
  let mask2 = Bitvec.of_list 100 [ 1; 50 ] in
  check "masked not subset" false (Bitvec.subset_masked a b ~mask:mask2)

let test_length_mismatch () =
  let a = Bitvec.create 10 and b = Bitvec.create 11 in
  Alcotest.check_raises "union mismatch" (Invalid_argument "Bitvec: length mismatch")
    (fun () -> ignore (Bitvec.union a b))

let test_iter_fold () =
  let v = Bitvec.of_list 300 [ 0; 62; 124; 299 ] in
  check "to_list roundtrip" true (Bitvec.to_list v = [ 0; 62; 124; 299 ]);
  let sum = Bitvec.fold_ones ( + ) 0 v in
  check_int "fold sum" (0 + 62 + 124 + 299) sum;
  check "first_one" true (Bitvec.first_one v = Some 0);
  check "first_one empty" true (Bitvec.first_one (Bitvec.create 10) = None)

let test_copy_independent () =
  let a = Bitvec.of_list 64 [ 3 ] in
  let b = Bitvec.copy a in
  Bitvec.set b 4;
  check "original unchanged" false (Bitvec.get a 4);
  check "copy changed" true (Bitvec.get b 4)

let test_equal_compare () =
  let a = Bitvec.of_list 64 [ 1; 2 ] and b = Bitvec.of_list 64 [ 1; 2 ] in
  check "equal" true (Bitvec.equal a b);
  check_int "compare eq" 0 (Bitvec.compare a b);
  Bitvec.set b 3;
  check "not equal" false (Bitvec.equal a b)

let test_popcount_int () =
  check_int "popcount 0" 0 (Bitvec.popcount_int 0);
  check_int "popcount 1" 1 (Bitvec.popcount_int 1);
  check_int "popcount max_int" 62 (Bitvec.popcount_int max_int);
  check_int "popcount 0b1011" 3 (Bitvec.popcount_int 0b1011)

(* Properties *)

let gen_ops =
  QCheck.(pair (int_bound 400) (small_list (int_bound 400)))

let prop_count_matches_list =
  QCheck.Test.make ~name:"count = |to_list|" ~count:200 gen_ops (fun (n, l) ->
      let n = n + 1 in
      let l = List.filter (fun i -> i < n) l in
      let v = Bitvec.of_list n l in
      Bitvec.count v = List.length (List.sort_uniq compare l))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:200
    QCheck.(triple (int_bound 200) (small_list (int_bound 200)) (small_list (int_bound 200)))
    (fun (n, la, lb) ->
      let n = n + 1 in
      let f l = List.filter (fun i -> i < n) l in
      let a = Bitvec.of_list n (f la) and b = Bitvec.of_list n (f lb) in
      Bitvec.equal (Bitvec.union a b) (Bitvec.union b a))

let prop_demorgan =
  QCheck.Test.make ~name:"diff = inter with complement" ~count:200
    QCheck.(triple (int_bound 150) (small_list (int_bound 150)) (small_list (int_bound 150)))
    (fun (n, la, lb) ->
      let n = n + 1 in
      let f l = List.filter (fun i -> i < n) l in
      let a = Bitvec.of_list n (f la) and b = Bitvec.of_list n (f lb) in
      let nb = Bitvec.copy b in
      (* complement of b *)
      let comp = Bitvec.create n in
      Bitvec.fill_all comp;
      Bitvec.diff_into ~into:comp nb;
      Bitvec.equal (Bitvec.diff a b) (Bitvec.inter a comp))

let prop_subset_consistent =
  QCheck.Test.make ~name:"subset a (a∪b)" ~count:200
    QCheck.(triple (int_bound 150) (small_list (int_bound 150)) (small_list (int_bound 150)))
    (fun (n, la, lb) ->
      let n = n + 1 in
      let f l = List.filter (fun i -> i < n) l in
      let a = Bitvec.of_list n (f la) and b = Bitvec.of_list n (f lb) in
      Bitvec.subset a (Bitvec.union a b))

let suite =
  [
    ( "bitvec",
      [
        Alcotest.test_case "create empty" `Quick test_create_empty;
        Alcotest.test_case "set/get across words" `Quick test_set_get;
        Alcotest.test_case "clear/assign" `Quick test_clear_assign;
        Alcotest.test_case "bounds checking" `Quick test_bounds;
        Alcotest.test_case "fill/zero" `Quick test_fill_zero;
        Alcotest.test_case "fill at word boundary" `Quick test_fill_exact_boundary;
        Alcotest.test_case "set operations" `Quick test_set_ops;
        Alcotest.test_case "subset_masked" `Quick test_subset_masked;
        Alcotest.test_case "length mismatch raises" `Quick test_length_mismatch;
        Alcotest.test_case "iter/fold/first" `Quick test_iter_fold;
        Alcotest.test_case "copy independence" `Quick test_copy_independent;
        Alcotest.test_case "equal/compare" `Quick test_equal_compare;
        Alcotest.test_case "popcount_int" `Quick test_popcount_int;
        QCheck_alcotest.to_alcotest prop_count_matches_list;
        QCheck_alcotest.to_alcotest prop_union_commutes;
        QCheck_alcotest.to_alcotest prop_demorgan;
        QCheck_alcotest.to_alcotest prop_subset_consistent;
      ] );
  ]
