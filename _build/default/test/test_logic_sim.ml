open Reseed_netlist
open Reseed_sim
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_block_width () = check_int "62 patterns per block" 62 Logic_sim.block_width

let test_valid_mask () =
  check_int "mask 1" 1 (Logic_sim.valid_mask 1);
  check_int "mask 3" 0b111 (Logic_sim.valid_mask 3);
  check_int "mask 62" max_int (Logic_sim.valid_mask 62);
  Alcotest.check_raises "mask 0" (Invalid_argument "Logic_sim.valid_mask") (fun () ->
      ignore (Logic_sim.valid_mask 0));
  Alcotest.check_raises "mask 63" (Invalid_argument "Logic_sim.valid_mask") (fun () ->
      ignore (Logic_sim.valid_mask 63))

(* The bit-parallel simulator must agree with the single-pattern oracle on
   every node, for random circuits and random pattern blocks. *)
let test_parallel_agrees_with_bool () =
  let rng = Rng.create 77 in
  List.iter
    (fun (inputs, gates) ->
      let spec =
        {
          (Generator.default_spec "sim" ~inputs ~outputs:3 ~gates) with
          Generator.seed = Rng.int rng 10000;
        }
      in
      let c = Generator.generate spec in
      let patterns =
        Array.init 62 (fun _ -> Array.init inputs (fun _ -> Rng.bool rng))
      in
      let block = Logic_sim.pack c patterns in
      let words = Logic_sim.simulate c block in
      Array.iteri
        (fun k pattern ->
          let bools = Logic_sim.simulate_bool c pattern in
          Array.iteri
            (fun node w ->
              let parallel_bit = w lsr k land 1 = 1 in
              if parallel_bit <> bools.(node) then
                Alcotest.failf "node %d pattern %d disagrees" node k)
            words)
        patterns)
    [ (8, 40); (15, 120) ]

let test_pack_rejects () =
  let c = Library.c17 () in
  Alcotest.check_raises "too many patterns"
    (Invalid_argument "Logic_sim.pack: block must hold 1..62 patterns") (fun () ->
      ignore (Logic_sim.pack c (Array.make 63 (Array.make 5 false))));
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Logic_sim.pack: pattern width mismatch") (fun () ->
      ignore (Logic_sim.pack c [| Array.make 4 false |]))

let test_pack_all_chunks () =
  let c = Library.c17 () in
  let patterns = Array.make 130 (Array.make 5 true) in
  let blocks = Logic_sim.pack_all c patterns in
  check_int "3 blocks" 3 (List.length blocks);
  check_int "sizes" 130
    (List.fold_left (fun acc (b : Logic_sim.block) -> acc + b.Logic_sim.width) 0 blocks)

let test_outputs_extraction () =
  let c = Library.c17 () in
  let pattern = [| true; true; false; true; false |] in
  let block = Logic_sim.pack c [| pattern |] in
  let values = Logic_sim.simulate c block in
  let outs = Logic_sim.outputs c values in
  let expect = Logic_sim.output_response c pattern in
  Array.iteri
    (fun i w -> check "output bit" (w land 1 = 1) expect.(i))
    outs

let test_known_c17_response () =
  let c = Library.c17 () in
  (* All-zero input: NAND trees force both outputs to known values. *)
  let out = Logic_sim.output_response c (Array.make 5 false) in
  (* 10 = NAND(0,0)=1, 11 = NAND(0,0)=1, 16 = NAND(0,1)=1, 19 = NAND(1,0)=1,
     22 = NAND(1,1)=0, 23 = NAND(1,1)=0 *)
  check "out 22" false out.(0);
  check "out 23" false out.(1)

let suite =
  [
    ( "logic_sim",
      [
        Alcotest.test_case "block width" `Quick test_block_width;
        Alcotest.test_case "valid_mask" `Quick test_valid_mask;
        Alcotest.test_case "bit-parallel = oracle" `Quick test_parallel_agrees_with_bool;
        Alcotest.test_case "pack validation" `Quick test_pack_rejects;
        Alcotest.test_case "pack_all chunks" `Quick test_pack_all_chunks;
        Alcotest.test_case "output extraction" `Quick test_outputs_extraction;
        Alcotest.test_case "known c17 response" `Quick test_known_c17_response;
      ] );
  ]
