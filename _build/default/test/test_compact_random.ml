open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup () =
  let c = Library.comparator 6 in
  let faults = Fault.all c in
  (c, Fault_sim.create c faults)

let test_compaction_never_loses_coverage () =
  let c, sim = setup () in
  let rng = Rng.create 11 in
  let n = Circuit.input_count c in
  let tests = Array.init 200 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let before = Fault_sim.detected_set sim tests ~active in
  let kept, dropped = Compact.reverse_order sim tests in
  let after = Fault_sim.detected_set sim kept ~active in
  check "coverage preserved" true (Bitvec.equal before after);
  check_int "kept + dropped = total" 200 (Array.length kept + dropped);
  check "drops redundancy" true (dropped > 0)

let test_compaction_keeps_order () =
  let c, sim = setup () in
  let rng = Rng.create 12 in
  let n = Circuit.input_count c in
  let tests = Array.init 50 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  let kept, _ = Compact.reverse_order sim tests in
  (* kept must be a subsequence of tests *)
  let rec subseq i j =
    if i >= Array.length kept then true
    else if j >= Array.length tests then false
    else if kept.(i) = tests.(j) then subseq (i + 1) (j + 1)
    else subseq i (j + 1)
  in
  check "subsequence" true (subseq 0 0)

let test_compaction_empty () =
  let _, sim = setup () in
  let kept, dropped = Compact.reverse_order sim [||] in
  check_int "empty kept" 0 (Array.length kept);
  check_int "empty dropped" 0 dropped

let test_random_gen_useful_patterns () =
  let _, sim = setup () in
  let rng = Rng.create 13 in
  let r = Random_gen.run sim ~rng () in
  check "made progress" true (Bitvec.count r.Random_gen.detected > 0);
  (* every kept pattern was a first-detector, so re-simulating the kept set
     must reach the same coverage *)
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let re = Fault_sim.detected_set sim r.Random_gen.tests ~active in
  check "kept patterns reach recorded coverage" true
    (Bitvec.subset r.Random_gen.detected re)

let test_random_gen_respects_already () =
  let _, sim = setup () in
  let rng = Rng.create 14 in
  let nf = Fault_sim.fault_count sim in
  let already = Bitvec.create nf in
  Bitvec.fill_all already;
  (* everything already detected: nothing to do *)
  let r = Random_gen.run sim ~rng ~already () in
  check "no new detections" true (Bitvec.is_empty r.Random_gen.detected);
  check_int "no kept tests" 0 (Array.length r.Random_gen.tests)

let test_random_gen_budget () =
  let _, sim = setup () in
  let rng = Rng.create 15 in
  let r = Random_gen.run sim ~rng ~max_patterns:62 ~give_up_after:1 () in
  check "budget respected" true (r.Random_gen.patterns_tried <= 124)

let test_covering_compaction_optimal () =
  let _, sim = setup () in
  let rng = Rng.create 21 in
  let c = Library.comparator 6 in
  let n = Circuit.input_count c in
  let tests = Array.init 120 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let before = Fault_sim.detected_set sim tests ~active in
  let kept_cov, dropped_cov = Compact.covering sim tests in
  let after = Fault_sim.detected_set sim kept_cov ~active in
  check "coverage preserved" true (Bitvec.equal before after);
  check "drops something" true (dropped_cov > 0);
  (* exact covering compaction is never worse than reverse-order *)
  let kept_rev, _ = Compact.reverse_order sim tests in
  check "covering <= reverse-order" true
    (Array.length kept_cov <= Array.length kept_rev)

let test_covering_compaction_empty () =
  let _, sim = setup () in
  let kept, dropped = Compact.covering sim [||] in
  check_int "empty" 0 (Array.length kept);
  check_int "none dropped" 0 dropped

let suite =
  [
    ( "compact+random_gen",
      [
        Alcotest.test_case "compaction preserves coverage" `Quick test_compaction_never_loses_coverage;
        Alcotest.test_case "compaction keeps order" `Quick test_compaction_keeps_order;
        Alcotest.test_case "compaction of empty set" `Quick test_compaction_empty;
        Alcotest.test_case "random phase useful patterns" `Quick test_random_gen_useful_patterns;
        Alcotest.test_case "already-detected respected" `Quick test_random_gen_respects_already;
        Alcotest.test_case "pattern budget respected" `Quick test_random_gen_budget;
        Alcotest.test_case "covering compaction optimal" `Quick test_covering_compaction_optimal;
        Alcotest.test_case "covering compaction empty" `Quick test_covering_compaction_empty;
      ] );
  ]
