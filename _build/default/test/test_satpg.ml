open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let check = Alcotest.(check bool)

(* PODEM and SAT-ATPG are both complete: they must agree on testability
   for every fault, and every produced pattern must validate. *)
let cross_validate c =
  let rng = Rng.create 31 in
  let tb = Testability.compute c in
  Array.iter
    (fun fault ->
      let sat_out = Satpg.generate_checked c fault ~rng () in
      let podem_out =
        Podem.generate c fault ~rng ~max_backtracks:100_000 ~testability:tb ()
      in
      match (sat_out, podem_out) with
      | Satpg.Test _, Podem.Test _ -> ()
      | Satpg.Untestable, Podem.Untestable -> ()
      | Satpg.Aborted, _ | _, Podem.Aborted -> () (* budget: no claim *)
      | Satpg.Test _, Podem.Untestable ->
          Alcotest.failf "%s: SAT found a test, PODEM claims redundant"
            (Fault.to_string c fault)
      | Satpg.Untestable, Podem.Test _ ->
          Alcotest.failf "%s: PODEM found a test, SAT claims redundant"
            (Fault.to_string c fault))
    (Fault.all c)

let test_agree_c17 () = cross_validate (Library.c17 ())
let test_agree_adder () = cross_validate (Library.ripple_adder 4)
let test_agree_alu () = cross_validate (Library.alu 2)
let test_agree_parity () = cross_validate (Library.parity 6)
let test_agree_mux () = cross_validate (Library.mux_tree 3)

let test_agree_synthetic () =
  let spec = Generator.default_spec "satpg" ~inputs:8 ~outputs:3 ~gates:40 in
  cross_validate (Generator.generate spec)

let test_redundant_proved () =
  let b = Circuit.Builder.create "red" in
  let x = Circuit.Builder.add_input b "x" in
  let nx = Circuit.Builder.add_gate b Gate.Not [ x ] "nx" in
  let y = Circuit.Builder.add_gate b Gate.Or [ x; nx ] "y" in
  Circuit.Builder.mark_output b y;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Out (Circuit.find c "y"); stuck = true } in
  check "sat proves redundancy" true (Satpg.generate c fault () = Satpg.Untestable)

let test_wide_and () =
  let w = 14 in
  let b = Circuit.Builder.create "wide" in
  let ins = List.init w (fun i -> Circuit.Builder.add_input b (Printf.sprintf "x%d" i)) in
  let g = Circuit.Builder.add_gate b Gate.And ins "g" in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finalize b in
  let fault = { Fault.site = Fault.Out (Circuit.find c "g"); stuck = false } in
  match Satpg.generate c fault () with
  | Satpg.Test pattern -> check "all ones" true (Array.for_all Fun.id pattern)
  | _ -> Alcotest.fail "sat failed on wide AND"

let test_disconnected_site () =
  (* fault on logic with no path to any PO: trivially untestable *)
  let b = Circuit.Builder.create "disc" in
  let x = Circuit.Builder.add_input b "x" in
  let y = Circuit.Builder.add_input b "y" in
  let dead = Circuit.Builder.add_gate b Gate.And [ x; y ] "dead" in
  let live = Circuit.Builder.add_gate b Gate.Or [ x; y ] "live" in
  ignore dead;
  Circuit.Builder.mark_output b live;
  let c = Circuit.Builder.finalize b in
  (* [dead] has no fanout: Fault.universe still enumerates its faults *)
  let fault = { Fault.site = Fault.Out (Circuit.find c "dead"); stuck = false } in
  check "disconnected untestable" true (Satpg.generate c fault () = Satpg.Untestable)

let suite =
  [
    ( "satpg",
      [
        Alcotest.test_case "agrees with PODEM on c17" `Quick test_agree_c17;
        Alcotest.test_case "agrees on ripple adder" `Quick test_agree_adder;
        Alcotest.test_case "agrees on alu" `Quick test_agree_alu;
        Alcotest.test_case "agrees on parity" `Quick test_agree_parity;
        Alcotest.test_case "agrees on mux" `Quick test_agree_mux;
        Alcotest.test_case "agrees on synthetic circuit" `Slow test_agree_synthetic;
        Alcotest.test_case "proves redundancy" `Quick test_redundant_proved;
        Alcotest.test_case "wide AND coincidence" `Quick test_wide_and;
        Alcotest.test_case "disconnected site" `Quick test_disconnected_site;
      ] );
  ]
