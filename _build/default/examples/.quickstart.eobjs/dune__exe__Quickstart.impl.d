examples/quickstart.ml: Accumulator Array Circuit Flow Format List Printf Reseed_core Reseed_netlist Reseed_tpg Reseed_util Suite Triplet
