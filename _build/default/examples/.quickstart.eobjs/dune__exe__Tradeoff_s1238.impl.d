examples/tradeoff_s1238.ml: Accumulator Circuit List Printf Reseed_core Reseed_netlist Reseed_tpg Suite Tradeoff
