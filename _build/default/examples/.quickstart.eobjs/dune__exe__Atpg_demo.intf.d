examples/atpg_demo.mli:
