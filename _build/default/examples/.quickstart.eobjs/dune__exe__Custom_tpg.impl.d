examples/custom_tpg.ml: Accumulator Circuit Flow Lfsr Library List Printf Reseed_core Reseed_netlist Reseed_tpg Reseed_util Suite Tpg Word
