examples/diagnosis.mli:
