examples/diagnosis.ml: Accumulator Array Bitvec Circuit Diagnose Fault Fault_sim Flow Library List Printf Reseed_core Reseed_fault Reseed_netlist Reseed_tpg Reseed_util Rng String Suite Triplet
