examples/tradeoff_s1238.mli:
