examples/atpg_demo.ml: Array Atpg Bitvec Circuit Fault Fault_sim Library List Podem Printf Reseed_atpg Reseed_fault Reseed_netlist Reseed_util String
