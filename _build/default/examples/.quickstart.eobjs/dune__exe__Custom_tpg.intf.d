examples/custom_tpg.mli:
