examples/quickstart.mli:
