(* A complete self-test architecture: accumulator TPG on the input side,
   MISR signature register on the output side.  Computes the minimal
   reseeding solution for a comparator UUT, derives the fault-free
   reference signature, and shows that every detected fault yields a
   different signature (i.e. no aliasing at this MISR width).

   Run with: dune exec examples/signature_bist.exe *)

open Reseed_core
open Reseed_fault
open Reseed_netlist
open Reseed_sim
open Reseed_tpg
open Reseed_util

(* Exact faulty-machine response for one pattern (reference semantics). *)
let faulty_output_response circuit (fault : Fault.t) pattern =
  let values = Logic_sim.simulate_bool circuit pattern in
  let fvals = Array.copy values in
  Array.iteri
    (fun i (node : Circuit.node) ->
      (match node.Circuit.kind with
      | Gate.Input -> ()
      | kind ->
          let args = Array.map (fun f -> fvals.(f)) node.Circuit.fanins in
          (match fault.Fault.site with
          | Fault.Pin { gate; pin } when gate = i -> args.(pin) <- fault.Fault.stuck
          | _ -> ());
          fvals.(i) <- Gate.eval kind args);
      match fault.Fault.site with
      | Fault.Out g when g = i -> fvals.(i) <- fault.Fault.stuck
      | _ -> ())
    circuit.Circuit.nodes;
  Array.map (fun o -> fvals.(o)) circuit.Circuit.outputs

let () =
  let circuit = Library.comparator 6 in
  let prepared = Suite.prepare_circuit circuit in
  let width = Circuit.input_count circuit in
  let tpg = Accumulator.adder width in
  Printf.printf "UUT: %s\n" (Circuit.stats_line circuit);

  (* 1. Minimal reseeding solution. *)
  let result =
    Flow.run prepared.Suite.sim tpg ~tests:prepared.Suite.tests
      ~targets:prepared.Suite.targets
  in
  Printf.printf "Reseeding: %d triplets, test length %d\n"
    (Flow.reseedings result) result.Flow.test_length;

  (* 2. The full applied pattern sequence and the reference signature. *)
  let patterns =
    Array.concat (List.map (fun t -> Triplet.patterns tpg t) result.Flow.final_triplets)
  in
  let misr = Misr.create ~width:16 () in
  let golden =
    Misr.signature_of_bits misr (Array.map (Logic_sim.output_response circuit) patterns)
  in
  Format.printf "Fault-free signature: %a (16-bit MISR, aliasing prob %.5f)@."
    Word.pp golden
    (Misr.aliasing_probability misr);

  (* 3. Signature of every faulty machine: detected target faults must
        yield a different signature unless aliasing strikes. *)
  let faults = Fault_sim.faults prepared.Suite.sim in
  let aliased = ref 0 and detected = ref 0 in
  Array.iteri
    (fun fi fault ->
      if Bitvec.get prepared.Suite.targets fi then begin
        incr detected;
        let faulty =
          Array.map (fun p -> faulty_output_response circuit fault p) patterns
        in
        let s = Misr.signature_of_bits misr faulty in
        if Word.equal s golden then incr aliased
      end)
    faults;
  Printf.printf "Target faults compressed: %d; aliased signatures: %d\n" !detected !aliased;
  if !aliased * 20 > !detected then begin
    Printf.printf "Aliasing rate implausibly high!\n";
    exit 1
  end;
  Printf.printf "Signature-based evaluation: OK\n"
