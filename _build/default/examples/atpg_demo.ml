(* The deterministic ATPG substrate on its own: generate a complete test
   set for a 16-bit ripple-carry adder, then shrink it by reverse-order
   compaction and show the per-phase statistics.

   Run with: dune exec examples/atpg_demo.exe *)

open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_util

let () =
  let circuit = Library.ripple_adder 16 in
  Printf.printf "Circuit: %s\n" (Circuit.stats_line circuit);
  let sim, result = Atpg.run_circuit circuit in
  Printf.printf "Collapsed faults: %d (universe %d)\n"
    (Fault_sim.fault_count sim)
    (Array.length (Fault.universe circuit));
  Printf.printf "Random phase:     %d patterns tried\n" result.Atpg.random_patterns_tried;
  Printf.printf "PODEM:            %d decisions, %d backtracks\n"
    result.Atpg.podem_stats.Podem.decisions result.Atpg.podem_stats.Podem.backtracks;
  Printf.printf "Untestable:       %d proven redundant\n"
    (List.length result.Atpg.untestable);
  Printf.printf "Aborted:          %d\n" (List.length result.Atpg.aborted);
  Printf.printf "Compaction:       dropped %d patterns\n" result.Atpg.dropped_by_compaction;
  Printf.printf "Final test set:   %d patterns, fault coverage %.2f%%\n"
    (Array.length result.Atpg.tests)
    (Atpg.fault_coverage sim result);
  (* Show the first few patterns. *)
  Array.iteri
    (fun i pattern ->
      if i < 5 then begin
        let bits =
          String.concat ""
            (List.map (fun b -> if b then "1" else "0") (Array.to_list pattern))
        in
        Printf.printf "  pattern %d: %s\n" i bits
      end)
    result.Atpg.tests;
  (* The detected set must be reproducible from the test set alone. *)
  let active = Bitvec.create (Fault_sim.fault_count sim) in
  Bitvec.fill_all active;
  let redetected = Fault_sim.detected_set sim result.Atpg.tests ~active in
  assert (Bitvec.equal redetected result.Atpg.detected);
  Printf.printf "Re-simulation check: PASSED\n"
