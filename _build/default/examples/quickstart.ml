(* Quickstart: compute a minimal reseeding solution for the real ISCAS'85
   c17 circuit with an adder-based accumulator TPG.

   Run with: dune exec examples/quickstart.exe *)

open Reseed_core
open Reseed_netlist
open Reseed_tpg

let () =
  (* 1. Load a circuit and run the ATPG front-end (fault list + ATPGTS). *)
  let prepared = Suite.prepare "c17" in
  let circuit = prepared.Suite.circuit in
  Printf.printf "Circuit: %s\n" (Circuit.stats_line circuit);
  Printf.printf "ATPG test set: %d patterns, %d target faults\n\n"
    (Array.length prepared.Suite.tests)
    (Reseed_util.Bitvec.count prepared.Suite.targets);

  (* 2. Pick the TPG: an adder-based accumulator as wide as the PI count. *)
  let tpg = Accumulator.adder (Circuit.input_count circuit) in

  (* 3. Run the whole covering flow of the paper (builder → detection
        matrix → reduction → exact solve → test-length accounting). *)
  let result =
    Flow.run prepared.Suite.sim tpg ~tests:prepared.Suite.tests
      ~targets:prepared.Suite.targets
  in

  Printf.printf "Reseeding solution: %d triplet(s), global test length %d\n"
    (Flow.reseedings result) result.Flow.test_length;
  Printf.printf "Fault coverage over targets: %.2f%%\n\n" result.Flow.coverage_pct;
  List.iteri
    (fun i t -> Format.printf "  triplet %d: %a@." i Triplet.pp t)
    result.Flow.final_triplets;

  (* 4. Independently verify: re-simulate the chosen bursts from scratch. *)
  let ok = Flow.verify prepared.Suite.sim tpg result in
  Printf.printf "\nEnd-to-end verification: %s\n" (if ok then "PASSED" else "FAILED");
  exit (if ok then 0 else 1)
