(* Closing the BIST loop: after the reseeding solution is computed, build
   a fault dictionary for the applied pattern sequence and locate injected
   defects from their pass/fail signatures.

   Run with: dune exec examples/diagnosis.exe *)

open Reseed_core
open Reseed_fault
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let () =
  let circuit = Library.mux_tree 4 in
  let prepared = Suite.prepare_circuit circuit in
  let tpg = Accumulator.adder (Circuit.input_count circuit) in
  Printf.printf "UUT: %s\n" (Circuit.stats_line circuit);

  let result =
    Flow.run prepared.Suite.sim tpg ~tests:prepared.Suite.tests
      ~targets:prepared.Suite.targets
  in
  let patterns =
    Array.concat (List.map (fun t -> Triplet.patterns tpg t) result.Flow.final_triplets)
  in
  Printf.printf "BIST session: %d triplets, %d applied patterns\n"
    (Flow.reseedings result) (Array.length patterns);

  (* Precompute the fault dictionary for this session. *)
  let dictionary = Diagnose.build prepared.Suite.sim patterns in
  Printf.printf "Dictionary: %d faults, %d distinct signatures\n"
    (Diagnose.fault_count dictionary)
    (Diagnose.resolution dictionary);

  (* Inject a handful of faults and locate them from their signatures. *)
  let rng = Rng.create 2024 in
  let located = ref 0 and ambiguous = ref 0 and trials = 12 in
  for _ = 1 to trials do
    let fi = Rng.int rng (Diagnose.fault_count dictionary) in
    let observed = Diagnose.observe_fault dictionary fi in
    if Bitvec.is_empty observed then ()
    else
      match Diagnose.diagnose dictionary ~observed () with
      | best :: _ when best.Diagnose.distance = 0 && List.mem fi best.Diagnose.faults ->
          incr located;
          if List.length best.Diagnose.faults > 1 then incr ambiguous
      | _ -> Printf.printf "  fault %d NOT located!\n" fi
  done;
  Printf.printf "Located %d injected defects (%d within an equivalence class)\n"
    !located !ambiguous;
  let faults = Fault_sim.faults prepared.Suite.sim in
  let example = Rng.int rng (Array.length faults) in
  let observed = Diagnose.observe_fault dictionary example in
  if not (Bitvec.is_empty observed) then begin
    Printf.printf "Example report for injected %s:\n"
      (Fault.to_string circuit faults.(example));
    List.iteri
      (fun rank c ->
        Printf.printf "  #%d (distance %d): %s\n" (rank + 1) c.Diagnose.distance
          (String.concat ", "
             (List.map (fun fj -> Fault.to_string circuit faults.(fj)) c.Diagnose.faults)))
      (Diagnose.diagnose dictionary ~observed ~max_candidates:3 ())
  end
