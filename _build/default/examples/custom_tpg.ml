(* Functional BIST is TPG-agnostic: reuse *any* on-chip module as the
   pattern generator.  This example defines two non-standard TPGs — a
   multiply-accumulate (MAC) step and a multiple-polynomial LFSR — and
   runs the same covering flow against an 8-bit ALU as the unit under
   test, comparing the resulting reseeding solutions.

   Run with: dune exec examples/custom_tpg.exe *)

open Reseed_core
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let () =
  let circuit = Library.alu 3 in
  let prepared = Suite.prepare_circuit circuit in
  let width = Circuit.input_count circuit in
  Printf.printf "UUT: %s\n\n" (Circuit.stats_line circuit);

  (* A MAC-style accumulator: state <- state * 3 + operand (mod 2^n) —
     the kind of datapath a DSP kernel leaves lying around. *)
  let three = Word.of_int width 3 in
  let mac =
    Tpg.make ~name:"mac3" ~width (fun ~state ~operand ->
        Word.add (Word.mul state three) operand)
  in
  (* A multiple-polynomial LFSR: the triplet's operand selects the
     feedback polynomial (classical reseeding, Hellebrand et al.). *)
  let mp_lfsr = Lfsr.multi_polynomial width in

  let tpgs = [ Accumulator.adder width; mac; mp_lfsr ] in
  List.iter
    (fun tpg ->
      let result =
        Flow.run prepared.Suite.sim tpg ~tests:prepared.Suite.tests
          ~targets:prepared.Suite.targets
      in
      let ok = Flow.verify prepared.Suite.sim tpg result in
      Printf.printf "%-12s %2d triplets, test length %4d, coverage %.1f%% (%s)\n"
        tpg.Tpg.name (Flow.reseedings result) result.Flow.test_length
        result.Flow.coverage_pct
        (if ok then "verified" else "VERIFY FAILED"))
    tpgs
