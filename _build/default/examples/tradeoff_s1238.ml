(* Figure 2 scenario: explore the trade-off between the number of
   reseedings (area to store triplets) and the global test length on the
   s1238 workload with an adder-based accumulator.

   Run with: dune exec examples/tradeoff_s1238.exe *)

open Reseed_core
open Reseed_netlist
open Reseed_tpg

let () =
  let prepared = Suite.prepare "s1238" in
  let tpg = Accumulator.adder (Circuit.input_count prepared.Suite.circuit) in
  Printf.printf "Workload: %s\n\n" (Circuit.stats_line prepared.Suite.circuit);
  let points = Suite.figure2 ~grid:[ 16; 64; 256; 1024 ] prepared tpg in
  print_string (Tradeoff.render points);
  (* The paper's observation: a handful of long-evolving triplets can
     replace many short ones — trade ROM area for test time. *)
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  Printf.printf
    "\nFrom %d triplets (test length %d) down to %d triplets (test length %d).\n"
    first.Tradeoff.triplets first.Tradeoff.test_length last.Tradeoff.triplets
    last.Tradeoff.test_length;
  if last.Tradeoff.triplets > first.Tradeoff.triplets then begin
    Printf.printf "Trade-off shape violated!\n";
    exit 1
  end
