(* reseed — command-line front-end to the Functional BIST reseeding
   toolkit.

   Subcommands:
     info      list the built-in benchmark catalog
     atpg      run the deterministic ATPG on a circuit
     solve     compute a minimal reseeding solution (the paper's flow)
     gatsby    run the GATSBY-style genetic baseline
     tradeoff  sweep evolution length T (Figure 2 style)
     gen       emit a synthetic ISCAS-like circuit as a .bench file

   Circuits are named by catalog entry ("c432", "s1238", …) or by a path
   to an ISCAS .bench file. *)

open Cmdliner
open Reseed_core
open Reseed_gatsby
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let load_circuit name ~scale =
  if Filename.check_suffix name ".bench" then Bench_io.parse_file name
  else Library.load ~scale_factor:scale name

let tpg_of_name name width =
  match name with
  | "adder" -> Accumulator.adder width
  | "subtracter" -> Accumulator.subtracter width
  | "multiplier" -> Accumulator.multiplier width
  | "mp-lfsr" -> Lfsr.multi_polynomial width
  | other -> failwith (Printf.sprintf "unknown TPG %S (adder|subtracter|multiplier|mp-lfsr)" other)

(* Common arguments *)

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc:"Catalog name or .bench file.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Divide synthetic circuit size by $(docv).")

let tpg_arg =
  Arg.(value & opt string "adder" & info [ "tpg" ] ~docv:"TPG" ~doc:"adder, subtracter, multiplier or mp-lfsr.")

let cycles_arg =
  Arg.(value & opt int 150 & info [ "cycles"; "T" ] ~docv:"T" ~doc:"Evolution length per triplet.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

(* info *)

let info_cmd =
  let run () =
    let t =
      Table.create ~title:"Built-in benchmark catalog"
        [
          ("Name", Table.Left);
          ("PIs", Table.Right);
          ("POs", Table.Right);
          ("Gates", Table.Right);
          ("Source", Table.Left);
        ]
    in
    List.iter
      (fun (name, spec) ->
        Table.add_row t
          [
            name;
            Table.cell_int spec.Generator.n_inputs;
            Table.cell_int spec.Generator.n_outputs;
            Table.cell_int spec.Generator.n_gates;
            (if name = "c17" then "embedded ISCAS netlist" else "synthetic ISCAS-like");
          ])
      Library.paper_suite;
    Table.print t
  in
  Cmd.v (Cmd.info "info" ~doc:"List the built-in benchmark catalog.")
    Term.(const run $ const ())

(* atpg *)

let atpg_cmd =
  let engine_arg =
    Arg.(value & opt string "podem" & info [ "engine" ] ~docv:"E" ~doc:"podem or sat.")
  in
  let run name scale engine_name =
    let c = load_circuit name ~scale in
    Printf.printf "%s\n" (Circuit.stats_line c);
    let engine =
      match engine_name with
      | "podem" -> Reseed_atpg.Atpg.Podem_engine
      | "sat" -> Reseed_atpg.Atpg.Sat_engine
      | other -> failwith (Printf.sprintf "unknown engine %S (podem|sat)" other)
    in
    let config = { Reseed_atpg.Atpg.default_config with Reseed_atpg.Atpg.engine } in
    let sim, r = Reseed_atpg.Atpg.run_circuit ~config c in
    Printf.printf "faults (collapsed): %d\n" (Reseed_fault.Fault_sim.fault_count sim);
    Printf.printf "test set: %d patterns\n" (Array.length r.Reseed_atpg.Atpg.tests);
    Printf.printf "coverage of detectable faults: %.2f%%\n"
      (Reseed_atpg.Atpg.fault_coverage sim r);
    Printf.printf "untestable: %d, aborted: %d\n"
      (List.length r.Reseed_atpg.Atpg.untestable)
      (List.length r.Reseed_atpg.Atpg.aborted)
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Run the deterministic ATPG on a circuit.")
    Term.(const run $ circuit_arg $ scale_arg $ engine_arg)

(* solve *)

let solve_cmd =
  let method_arg =
    Arg.(value & opt string "exact" & info [ "method" ] ~docv:"M" ~doc:"exact, greedy or noreduce.")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ] ~doc:"Re-simulate the final solution from scratch.")
  in
  let objective_arg =
    Arg.(value & opt string "triplets" & info [ "objective" ] ~docv:"O" ~doc:"triplets (paper) or length (weighted extension).")
  in
  let run name scale tpg_name cycles method_name verify objective_name =
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit c in
    let tpg = tpg_of_name tpg_name (Circuit.input_count c) in
    let method_ =
      match method_name with
      | "exact" -> Reseed_setcover.Solution.Exact
      | "greedy" -> Reseed_setcover.Solution.Greedy_only
      | "noreduce" -> Reseed_setcover.Solution.No_reduction_exact
      | other -> failwith (Printf.sprintf "unknown method %S" other)
    in
    let objective =
      match objective_name with
      | "triplets" -> Flow.Min_triplets
      | "length" -> Flow.Min_test_length
      | other -> failwith (Printf.sprintf "unknown objective %S (triplets|length)" other)
    in
    let config =
      {
        Flow.default_config with
        Flow.builder = { Builder.default_config with Builder.cycles };
        method_;
        objective;
      }
    in
    let r = Flow.run ~config p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets in
    let stats = r.Flow.solution.Reseed_setcover.Solution.stats in
    Printf.printf "%s + %s TPG (T=%d)\n" (Circuit.name c) tpg_name cycles;
    Printf.printf "initial matrix: %dx%d\n" stats.Reseed_setcover.Solution.initial_rows
      stats.Reseed_setcover.Solution.initial_cols;
    Printf.printf "necessary triplets: %d\n"
      (List.length stats.Reseed_setcover.Solution.necessary);
    Printf.printf "reduced matrix: %dx%d\n" stats.Reseed_setcover.Solution.reduced_rows
      stats.Reseed_setcover.Solution.reduced_cols;
    Printf.printf "from exact solver: %d\n"
      (List.length stats.Reseed_setcover.Solution.from_solver);
    Printf.printf "solution: %d triplets, test length %d, coverage %.2f%%\n"
      (Flow.reseedings r) r.Flow.test_length r.Flow.coverage_pct;
    List.iteri (fun i t -> Format.printf "  %2d: %a@." i Triplet.pp t) r.Flow.final_triplets;
    if verify then begin
      let ok = Flow.verify p.Suite.sim tpg r in
      Printf.printf "verification: %s\n" (if ok then "PASSED" else "FAILED");
      if not ok then exit 1
    end
  in
  Cmd.v (Cmd.info "solve" ~doc:"Compute a minimal reseeding solution (set covering flow).")
    Term.(
      const run $ circuit_arg $ scale_arg $ tpg_arg $ cycles_arg $ method_arg $ verify_arg
      $ objective_arg)

(* gatsby *)

let gatsby_cmd =
  let pop_arg = Arg.(value & opt int 12 & info [ "population" ] ~docv:"P") in
  let gens_arg = Arg.(value & opt int 6 & info [ "generations" ] ~docv:"G") in
  let run name scale tpg_name cycles seed pop gens =
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit c in
    let tpg = tpg_of_name tpg_name (Circuit.input_count c) in
    let config =
      {
        Gatsby.default_config with
        Gatsby.cycles;
        ga = { Ga.default_config with Ga.population = pop; generations = gens };
      }
    in
    let rng = Rng.create seed in
    let g = Gatsby.run ~config p.Suite.sim tpg ~rng ~targets:p.Suite.targets in
    Printf.printf "%s + %s TPG (T=%d, GA %dx%d)\n" (Circuit.name c) tpg_name cycles pop gens;
    Printf.printf "triplets: %d, test length: %d\n"
      (List.length g.Gatsby.triplets) g.Gatsby.test_length;
    Printf.printf "coverage: %.2f%% of targets\n"
      (Stats.pct (Bitvec.count g.Gatsby.detected) (max 1 (Bitvec.count p.Suite.targets)));
    Printf.printf "fault simulations: %d, GA evaluations: %d\n" g.Gatsby.fault_sims
      g.Gatsby.ga_evaluations
  in
  Cmd.v (Cmd.info "gatsby" ~doc:"Run the GATSBY-style genetic baseline.")
    Term.(const run $ circuit_arg $ scale_arg $ tpg_arg $ cycles_arg $ seed_arg $ pop_arg $ gens_arg)

(* tradeoff *)

let tradeoff_cmd =
  let grid_arg =
    Arg.(value & opt string "16,64,256,1024" & info [ "grid" ] ~docv:"T1,T2,.." ~doc:"Evolution lengths to sweep.")
  in
  let run name scale tpg_name grid =
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit c in
    let tpg = tpg_of_name tpg_name (Circuit.input_count c) in
    let grid = List.map int_of_string (String.split_on_char ',' grid) in
    let points = Suite.figure2 ~grid p tpg in
    print_string (Tradeoff.render points)
  in
  Cmd.v (Cmd.info "tradeoff" ~doc:"Sweep evolution length T: reseedings vs test length.")
    Term.(const run $ circuit_arg $ scale_arg $ tpg_arg $ grid_arg)

(* fullscan *)

let fullscan_cmd =
  let in_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Sequential .bench file.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output combinational-core .bench path.")
  in
  let run input out =
    let ic = open_in_bin input in
    let text =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    let base = Filename.remove_extension (Filename.basename input) in
    let core, dffs = Bench_io.parse_full_scan ~name:(base ^ "_core") text in
    Bench_io.write_file out core;
    Printf.printf "converted %d flip-flops; wrote %s (%s)\n" dffs out
      (Circuit.stats_line core)
  in
  Cmd.v
    (Cmd.info "fullscan"
       ~doc:"Extract the full-scan combinational core of a sequential .bench circuit.")
    Term.(const run $ in_arg $ out_arg)

(* gen *)

let gen_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .bench path.")
  in
  let run name scale out =
    let c = load_circuit name ~scale in
    Bench_io.write_file out c;
    Printf.printf "wrote %s (%s)\n" out (Circuit.stats_line c)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Emit a catalog circuit as an ISCAS .bench file.")
    Term.(const run $ circuit_arg $ scale_arg $ out_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info_ = Cmd.info "reseed" ~version:"1.0.0" ~doc:"Set-covering reseeding for Functional BIST (DATE 2001 reproduction)." in
  exit
    (Cmd.eval
       (Cmd.group ~default info_
          [ info_cmd; atpg_cmd; solve_cmd; gatsby_cmd; tradeoff_cmd; fullscan_cmd; gen_cmd ]))
