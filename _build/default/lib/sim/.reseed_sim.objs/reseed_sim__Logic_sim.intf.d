lib/sim/logic_sim.mli: Circuit Reseed_netlist
