lib/sim/logic_sim.ml: Array Circuit Gate List Reseed_netlist
