(** Bit-parallel good-machine logic simulation.

    Patterns are simulated 62 at a time: every node's value for a block of
    patterns is one native [int] whose bit [k] is the node's value under
    pattern [k].  The topological node order guaranteed by
    {!Reseed_netlist.Circuit} makes simulation a single forward loop. *)

open Reseed_netlist

(** Number of patterns per simulation block. *)
val block_width : int

(** A block of up to [block_width] input patterns, packed by input. *)
type block = private {
  width : int;  (** number of valid patterns, 1..62 *)
  per_input : int array;  (** one word per primary input *)
}

(** [pack c patterns] packs up to 62 patterns (each a [bool array] of
    length [input_count c], PI order) into a block. *)
val pack : Circuit.t -> bool array array -> block

(** [pack_all c patterns] splits an arbitrary pattern list into blocks. *)
val pack_all : Circuit.t -> bool array array -> block list

(** [simulate c block] returns the value word of every node. *)
val simulate : Circuit.t -> block -> int array

(** [outputs c values] extracts PO words from a node-value array. *)
val outputs : Circuit.t -> int array -> int array

(** [simulate_bool c pattern] is the single-pattern reference semantics;
    returns all node values.  Used as the oracle in tests. *)
val simulate_bool : Circuit.t -> bool array -> bool array

(** [output_response c pattern] is the PO vector for one pattern. *)
val output_response : Circuit.t -> bool array -> bool array

(** [valid_mask width] is the word with the low [width] bits set. *)
val valid_mask : int -> int
