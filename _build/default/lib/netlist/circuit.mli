(** Combinational gate-level circuits.

    A circuit is a DAG of {!Gate.kind} nodes stored in a flat array and
    guaranteed (by {!Builder.finalize}) to be listed in topological order:
    every gate's fanins have smaller indices.  This invariant lets the
    simulators run as simple forward loops. *)

type node = private {
  kind : Gate.kind;
  fanins : int array;  (** gate indices, each [< ] this gate's index *)
  label : string;  (** source-level net name, unique within the circuit *)
}

type t = private {
  name : string;
  nodes : node array;  (** in topological order *)
  inputs : int array;  (** indices of the [Input] nodes, in PI order *)
  outputs : int array;  (** indices of the nodes driving primary outputs *)
  fanouts : int array array;  (** reverse edges, derived *)
  level : int array;  (** logic depth per node; inputs are level 0 *)
}

val name : t -> string
val node_count : t -> int
val input_count : t -> int
val output_count : t -> int

(** [gate_count c] counts logic gates only (excludes [Input] and constant
    pseudo-nodes) — the number the ISCAS literature reports. *)
val gate_count : t -> int

(** [max_level c] is the circuit depth. *)
val max_level : t -> int

(** [find c label] is the index of the node named [label].
    Raises [Not_found]. *)
val find : t -> string -> int

(** [fanin_cone c roots] is the set of node indices reaching any of
    [roots] (inclusive), as a sorted array. *)
val fanin_cone : t -> int array -> int array

(** [fanout_cone c root] is the set of node indices reachable from [root]
    (inclusive), in topological order. *)
val fanout_cone : t -> int -> int array

(** [output_mask_of_cone c cone] lists the positions (in [outputs] order)
    of primary outputs inside [cone]. *)
val output_mask_of_cone : t -> int array -> int list

(** [validate c] re-checks every structural invariant; raises [Failure]
    with a diagnostic on violation.  Used by tests and after parsing. *)
val validate : t -> unit

(** [stats_line c] is a one-line human summary. *)
val stats_line : t -> string

(** Incremental construction.  Nodes may be added in any order;
    [finalize] topologically sorts, checks arities, acyclicity, name
    uniqueness and dangling references. *)
module Builder : sig
  type circuit := t
  type t

  val create : string -> t

  (** [add_input b label] declares a primary input, returns its handle. *)
  val add_input : t -> string -> int

  (** [add_gate b kind fanins label] adds a logic gate over previously
      returned handles; returns the new gate's handle. *)
  val add_gate : t -> Gate.kind -> int list -> string -> int

  (** [mark_output b handle] declares that [handle] drives a primary
      output.  The same handle may be marked only once. *)
  val mark_output : t -> int -> unit

  (** [finalize b] checks all invariants and produces the circuit.
      Raises [Failure] with a diagnostic on any violation. *)
  val finalize : t -> circuit
end
