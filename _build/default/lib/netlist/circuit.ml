type node = { kind : Gate.kind; fanins : int array; label : string }

type t = {
  name : string;
  nodes : node array;
  inputs : int array;
  outputs : int array;
  fanouts : int array array;
  level : int array;
}

let name c = c.name
let node_count c = Array.length c.nodes
let input_count c = Array.length c.inputs
let output_count c = Array.length c.outputs

let gate_count c =
  Array.fold_left
    (fun acc n ->
      match n.kind with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> acc
      | _ -> acc + 1)
    0 c.nodes

let max_level c = Array.fold_left max 0 c.level

let find c label =
  let n = Array.length c.nodes in
  let rec go i =
    if i >= n then raise Not_found
    else if c.nodes.(i).label = label then i
    else go (i + 1)
  in
  go 0

let fanin_cone c roots =
  let seen = Array.make (node_count c) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Array.iter visit c.nodes.(i).fanins
    end
  in
  Array.iter visit roots;
  let buf = ref [] in
  for i = node_count c - 1 downto 0 do
    if seen.(i) then buf := i :: !buf
  done;
  Array.of_list !buf

let fanout_cone c root =
  let seen = Array.make (node_count c) false in
  seen.(root) <- true;
  (* Nodes are topologically ordered, so one forward sweep suffices. *)
  let buf = ref [ root ] in
  for i = root + 1 to node_count c - 1 do
    if Array.exists (fun f -> seen.(f)) c.nodes.(i).fanins then begin
      seen.(i) <- true;
      buf := i :: !buf
    end
  done;
  Array.of_list (List.rev !buf)

let output_mask_of_cone c cone =
  let in_cone = Array.make (node_count c) false in
  Array.iter (fun i -> in_cone.(i) <- true) cone;
  let acc = ref [] in
  Array.iteri (fun pos out -> if in_cone.(out) then acc := pos :: !acc) c.outputs;
  List.rev !acc

let validate c =
  let n = Array.length c.nodes in
  let fail fmt = Printf.ksprintf failwith fmt in
  let names = Hashtbl.create n in
  Array.iteri
    (fun i node ->
      if Hashtbl.mem names node.label then
        fail "circuit %s: duplicate label %s" c.name node.label;
      Hashtbl.add names node.label ();
      if not (Gate.arity_ok node.kind (Array.length node.fanins)) then
        fail "circuit %s: gate %s has bad arity %d" c.name node.label
          (Array.length node.fanins);
      Array.iter
        (fun f ->
          if f < 0 || f >= i then
            fail "circuit %s: gate %s breaks topological order" c.name node.label)
        node.fanins)
    c.nodes;
  Array.iter
    (fun i ->
      if i < 0 || i >= n then fail "circuit %s: input index out of range" c.name;
      if c.nodes.(i).kind <> Gate.Input then
        fail "circuit %s: input list points at a non-input" c.name)
    c.inputs;
  let input_marks = Array.make n false in
  Array.iter (fun i -> input_marks.(i) <- true) c.inputs;
  Array.iteri
    (fun i node ->
      if node.kind = Gate.Input && not input_marks.(i) then
        fail "circuit %s: input node %s missing from input list" c.name node.label)
    c.nodes;
  Array.iter
    (fun i ->
      if i < 0 || i >= n then fail "circuit %s: output index out of range" c.name)
    c.outputs;
  if Array.length c.level <> n then fail "circuit %s: level array size" c.name;
  Array.iteri
    (fun i node ->
      let expect =
        Array.fold_left (fun acc f -> max acc (c.level.(f) + 1)) 0 node.fanins
      in
      let expect = if Array.length node.fanins = 0 then 0 else expect in
      if c.level.(i) <> expect then
        fail "circuit %s: level mismatch at %s" c.name node.label)
    c.nodes

let stats_line c =
  Printf.sprintf "%s: %d PIs, %d POs, %d gates, depth %d" c.name (input_count c)
    (output_count c) (gate_count c) (max_level c)

module Builder = struct
  type building = {
    bname : string;
    mutable bnodes : node list; (* reversed *)
    mutable bcount : int;
    mutable binputs : int list; (* reversed *)
    mutable boutputs : int list; (* reversed *)
    blabels : (string, unit) Hashtbl.t;
  }

  type t = building

  let create bname =
    { bname; bnodes = []; bcount = 0; binputs = []; boutputs = []; blabels = Hashtbl.create 64 }

  let push b node =
    if Hashtbl.mem b.blabels node.label then
      failwith (Printf.sprintf "Builder(%s): duplicate label %s" b.bname node.label);
    Hashtbl.add b.blabels node.label ();
    b.bnodes <- node :: b.bnodes;
    let h = b.bcount in
    b.bcount <- h + 1;
    h

  let add_input b label =
    let h = push b { kind = Gate.Input; fanins = [||]; label } in
    b.binputs <- h :: b.binputs;
    h

  let add_gate b kind fanins label =
    if not (Gate.arity_ok kind (List.length fanins)) then
      failwith
        (Printf.sprintf "Builder(%s): gate %s/%s has bad arity %d" b.bname label
           (Gate.kind_to_string kind) (List.length fanins));
    List.iter
      (fun f ->
        if f < 0 || f >= b.bcount then
          failwith
            (Printf.sprintf "Builder(%s): gate %s references unknown fanin" b.bname label))
      fanins;
    push b { kind; fanins = Array.of_list fanins; label }

  let mark_output b h =
    if h < 0 || h >= b.bcount then
      failwith (Printf.sprintf "Builder(%s): output handle out of range" b.bname);
    if List.mem h b.boutputs then
      failwith (Printf.sprintf "Builder(%s): output marked twice" b.bname);
    b.boutputs <- h :: b.boutputs

  let finalize b =
    if b.binputs = [] then failwith (Printf.sprintf "Builder(%s): no inputs" b.bname);
    if b.boutputs = [] then failwith (Printf.sprintf "Builder(%s): no outputs" b.bname);
    let nodes = Array.of_list (List.rev b.bnodes) in
    let level = Array.make (Array.length nodes) 0 in
    Array.iteri
      (fun i node ->
        level.(i) <-
          Array.fold_left (fun acc f -> max acc (level.(f) + 1)) 0 node.fanins)
      nodes;
    let fanouts = Array.make (Array.length nodes) [] in
    Array.iteri
      (fun i node -> Array.iter (fun f -> fanouts.(f) <- i :: fanouts.(f)) node.fanins)
      nodes;
    let c =
      {
        name = b.bname;
        nodes;
        inputs = Array.of_list (List.rev b.binputs);
        outputs = Array.of_list (List.rev b.boutputs);
        fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanouts;
        level;
      }
    in
    validate c;
    c
end
