lib/netlist/circuit.ml: Array Gate Hashtbl List Printf
