lib/netlist/gate.ml: Array Fun String
