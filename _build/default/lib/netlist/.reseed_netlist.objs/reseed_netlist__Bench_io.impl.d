lib/netlist/bench_io.ml: Array Buffer Circuit Filename Fun Gate Hashtbl List Option Printf String
