lib/netlist/generator.ml: Array Char Circuit Float Gate Hashtbl List Printf Reseed_util Rng String
