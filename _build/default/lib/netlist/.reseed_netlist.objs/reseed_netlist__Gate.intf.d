lib/netlist/gate.mli:
