lib/netlist/library.ml: Array Bench_io Circuit Gate Generator List Printf
