lib/netlist/library.mli: Circuit Generator
