(** Deterministic synthetic circuit generator.

    The ISCAS'85/'89 netlists evaluated in the paper are distribution data
    that does not ship with this repository.  This generator produces, from
    a fixed seed, circuits that match a target profile — primary input /
    output / gate counts, ISCAS-like gate-kind mix, recency-biased fanin
    selection (for realistic logic depth) and a configurable fraction of
    wide-AND/OR "coincidence" cores that make a subset of faults
    random-pattern resistant, which is precisely the regime the paper's
    reseeding method targets.  Real [.bench] files can be substituted at any
    time through {!Bench_io.parse_file} without touching any other code. *)

type spec = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;  (** target logic-gate count; achieved within a few % *)
  seed : int;  (** generation is a pure function of the spec *)
  hard_fraction : float;  (** share of gates in wide random-resistant cones *)
}

(** [default_spec name ~inputs ~outputs ~gates] fills in seed and
    hard-fraction defaults derived from [name] (so each benchmark is a
    distinct but reproducible circuit). *)
val default_spec : string -> inputs:int -> outputs:int -> gates:int -> spec

(** [generate spec] builds the circuit.  The result always passes
    {!Circuit.validate}; every internal gate lies on a path to some
    primary output. *)
val generate : spec -> Circuit.t
