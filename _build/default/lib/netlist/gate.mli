(** Gate kinds of the combinational netlist intermediate representation.

    The vocabulary matches the ISCAS [.bench] format: primary inputs are
    modelled as fanin-less gates, constants as zero-fanin pseudo-gates. *)

type kind =
  | Input  (** primary input; no fanins *)
  | Buf  (** identity; exactly one fanin *)
  | Not  (** inverter; exactly one fanin *)
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0  (** constant 0; no fanins *)
  | Const1  (** constant 1; no fanins *)

val kind_to_string : kind -> string

(** [kind_of_string s] accepts the ISCAS spellings, case-insensitively
    (["NAND"], ["not"], …). Raises [Invalid_argument] on unknown names. *)
val kind_of_string : string -> kind

(** [arity_ok kind n] checks that a gate of [kind] may have [n] fanins. *)
val arity_ok : kind -> int -> bool

(** [eval kind inputs] evaluates one gate over booleans (reference
    semantics, used by tests as the oracle for the bit-parallel
    simulator). *)
val eval : kind -> bool array -> bool

(** [eval_word kind inputs] evaluates bit-parallel over native-int pattern
    blocks: bit [k] of the result is the gate output under pattern [k]. The
    mask of valid bits is the caller's concern. *)
val eval_word : kind -> int array -> int

(** [controlling_value kind] is [Some c] when driving any single input to
    [c] fixes the output (AND/NAND → 0, OR/NOR → 1), [None] otherwise. *)
val controlling_value : kind -> bool option

(** [inversion kind] is [true] for gates whose output inverts the dominant
    sense (NAND, NOR, NOT, XNOR). *)
val inversion : kind -> bool

val all_kinds : kind list
