type kind =
  | Input
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0
  | Const1

let kind_to_string = function
  | Input -> "INPUT"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Input
  | "BUF" | "BUFF" -> Buf
  | "NOT" | "INV" -> Not
  | "AND" -> And
  | "NAND" -> Nand
  | "OR" -> Or
  | "NOR" -> Nor
  | "XOR" -> Xor
  | "XNOR" -> Xnor
  | "CONST0" -> Const0
  | "CONST1" -> Const1
  | other -> invalid_arg ("Gate.kind_of_string: unknown gate " ^ other)

let arity_ok kind n =
  match kind with
  | Input | Const0 | Const1 -> n = 0
  | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

let eval kind inputs =
  let fold_and () = Array.for_all Fun.id inputs in
  let fold_or () = Array.exists Fun.id inputs in
  let fold_xor () = Array.fold_left (fun acc b -> acc <> b) false inputs in
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no logic function"
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> fold_and ()
  | Nand -> not (fold_and ())
  | Or -> fold_or ()
  | Nor -> not (fold_or ())
  | Xor -> fold_xor ()
  | Xnor -> not (fold_xor ())
  | Const0 -> false
  | Const1 -> true

(* Full 62-bit payload mask; the sign bit of the native int is never used. *)
let word_mask = max_int

let eval_word kind inputs =
  let fold_and () = Array.fold_left ( land ) word_mask inputs in
  let fold_or () = Array.fold_left ( lor ) 0 inputs in
  let fold_xor () = Array.fold_left ( lxor ) 0 inputs in
  match kind with
  | Input -> invalid_arg "Gate.eval_word: Input has no logic function"
  | Buf -> inputs.(0)
  | Not -> lnot inputs.(0) land word_mask
  | And -> fold_and ()
  | Nand -> lnot (fold_and ()) land word_mask
  | Or -> fold_or ()
  | Nor -> lnot (fold_or ()) land word_mask
  | Xor -> fold_xor ()
  | Xnor -> lnot (fold_xor ()) land word_mask
  | Const0 -> 0
  | Const1 -> word_mask

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Buf | Not | Xor | Xnor | Const0 | Const1 -> None

let inversion = function
  | Nand | Nor | Not | Xnor -> true
  | Input | Buf | And | Or | Xor | Const0 | Const1 -> false

let all_kinds = [ Input; Buf; Not; And; Nand; Or; Nor; Xor; Xnor; Const0; Const1 ]
