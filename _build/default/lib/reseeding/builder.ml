open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type operand_mode = Random_operand | Shared_operand of Word.t

type config = { cycles : int; operand_mode : operand_mode; seed : int }

let default_config = { cycles = 150; operand_mode = Random_operand; seed = 17 }

type t = {
  triplets : Triplet.t array;
  matrix : Matrix.t;
  targets : Bitvec.t;
  useful_cycles : int array;
  fault_sims : int;
}

let build sim tpg ~tests ~targets ~config =
  let nf = Fault_sim.fault_count sim in
  if Bitvec.length targets <> nf then invalid_arg "Builder.build: target mask size";
  let width = tpg.Tpg.width in
  let rng = Rng.create config.seed in
  let operand_for _i =
    let raw =
      match config.operand_mode with
      | Random_operand -> Word.random rng width
      | Shared_operand w ->
          if Word.width w <> width then invalid_arg "Builder.build: shared operand width";
          w
    in
    tpg.Tpg.fix_operand raw
  in
  let sims_before = Fault_sim.sims_performed sim in
  let triplets =
    Array.mapi
      (fun i pattern ->
        if Array.length pattern <> width then
          invalid_arg "Builder.build: ATPG pattern width differs from TPG width";
        Triplet.make ~seed:(Word.of_bits pattern) ~operand:(operand_for i)
          ~cycles:config.cycles)
      tests
  in
  let useful_cycles = Array.make (Array.length triplets) 1 in
  let rows =
    Array.mapi
      (fun i triplet ->
        let burst = Triplet.patterns tpg triplet in
        let firsts = Fault_sim.first_detections sim ~active:targets burst in
        let row = Bitvec.create nf in
        Array.iteri
          (fun fi first ->
            match first with
            | Some p when Bitvec.get targets fi ->
                Bitvec.set row fi;
                if p + 1 > useful_cycles.(i) then useful_cycles.(i) <- p + 1
            | _ -> ())
          firsts;
        row)
      triplets
  in
  let matrix = Matrix.of_rows ~cols:nf rows in
  {
    triplets;
    matrix;
    targets;
    useful_cycles;
    fault_sims = Fault_sim.sims_performed sim - sims_before;
  }
