lib/reseeding/suite.mli: Atpg Bitvec Circuit Fault_sim Reseed_atpg Reseed_fault Reseed_netlist Reseed_tpg Reseed_util Tpg Tradeoff
