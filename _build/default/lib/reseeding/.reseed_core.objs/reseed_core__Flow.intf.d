lib/reseeding/flow.mli: Bitvec Builder Fault_sim Reduce Reseed_fault Reseed_setcover Reseed_tpg Reseed_util Solution Tpg Triplet
