lib/reseeding/flow.ml: Array Bitvec Builder Fault_sim List Reduce Reseed_fault Reseed_setcover Reseed_tpg Reseed_util Solution Stats Tpg Triplet Unix
