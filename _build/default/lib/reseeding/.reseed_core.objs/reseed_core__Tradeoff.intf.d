lib/reseeding/tradeoff.mli: Bitvec Fault_sim Flow Reseed_fault Reseed_tpg Reseed_util Tpg
