lib/reseeding/tradeoff.ml: Buffer Builder Flow List Printf String
