lib/reseeding/builder.mli: Bitvec Fault_sim Matrix Reseed_fault Reseed_setcover Reseed_tpg Reseed_util Tpg Triplet Word
