lib/reseeding/builder.ml: Array Bitvec Fault_sim Matrix Reseed_fault Reseed_setcover Reseed_tpg Reseed_util Rng Tpg Triplet Word
