
type point = { cycles : int; triplets : int; test_length : int }

let sweep ?(flow_config = Flow.default_config) sim tpg ~tests ~targets ~grid =
  List.map
    (fun cycles ->
      if cycles < 1 then invalid_arg "Tradeoff.sweep: cycles must be >= 1";
      let config =
        { flow_config with Flow.builder = { flow_config.Flow.builder with Builder.cycles } }
      in
      let r = Flow.run ~config sim tpg ~tests ~targets in
      { cycles; triplets = Flow.reseedings r; test_length = r.Flow.test_length })
    (List.sort compare grid)

let default_grid ~max_cycles =
  let rec go c acc = if c > max_cycles then List.rev acc else go (c * 2) (c :: acc) in
  go 8 []

let render points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Trade-off: reseedings vs test length\n";
  let max_triplets = List.fold_left (fun m p -> max m p.triplets) 1 points in
  List.iter
    (fun p ->
      let bar = String.make (max 1 (p.triplets * 40 / max_triplets)) '#' in
      Buffer.add_string buf
        (Printf.sprintf "T=%5d | %-40s %3d triplets, test length %6d\n" p.cycles bar
           p.triplets p.test_length))
    points;
  Buffer.contents buf
