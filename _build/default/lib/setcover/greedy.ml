open Reseed_util

let solve m =
  let n_cols = Matrix.cols m in
  let need = Bitvec.create n_cols in
  for j = 0 to n_cols - 1 do
    if not (Bitvec.is_empty (Matrix.col m j)) then Bitvec.set need j
  done;
  let chosen = ref [] in
  while not (Bitvec.is_empty need) do
    let best = ref (-1) and best_gain = ref 0 in
    for i = 0 to Matrix.rows m - 1 do
      let gain = Bitvec.count_inter (Matrix.row m i) need in
      if gain > !best_gain then begin
        best := i;
        best_gain := gain
      end
    done;
    (* Every needed column is coverable, so a positive-gain row exists. *)
    assert (!best >= 0);
    chosen := !best :: !chosen;
    Bitvec.diff_into ~into:need (Matrix.row m !best)
  done;
  List.rev !chosen
