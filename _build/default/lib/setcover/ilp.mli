(** Exact 0/1 integer solver for (weighted) unate set covering — the
    *LINGO* substitute.

    minimize    Σ w_i·x_i
    subject to  A·x ≥ 1 (every column covered),  x ∈ {0,1}^rows

    Branch-and-bound: branch on the hardest column (fewest covering
    rows), bound with a weighted independent-column lower bound plus the
    cost so far, seed the incumbent with the greedy solution.  The search
    is exhaustive, so on return with [optimal = true] the result is a
    global optimum — exactly what the paper gets out of LINGO on the
    reduced matrix. *)

type result = {
  selected : int list;  (** chosen row indices, ascending *)
  cost : float;
  optimal : bool;  (** false only when the node budget was exhausted *)
  nodes_explored : int;
}

(** [solve ?weights ?node_limit m] — [weights] defaults to all-ones
    (cardinality minimisation); [node_limit] defaults to 2_000_000.
    Raises [Invalid_argument] if some column is coverable by no row
    (infeasible) — reduce first, or check {!Matrix.uncoverable}. *)
val solve : ?weights:float array -> ?node_limit:int -> Matrix.t -> result
