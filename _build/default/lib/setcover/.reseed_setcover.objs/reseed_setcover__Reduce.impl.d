lib/setcover/reduce.ml: Array Bitvec Hashtbl List Matrix Reseed_util
