lib/setcover/ilp.mli: Matrix
