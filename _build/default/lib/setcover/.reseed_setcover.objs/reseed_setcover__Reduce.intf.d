lib/setcover/reduce.mli: Bitvec Matrix Reseed_util
