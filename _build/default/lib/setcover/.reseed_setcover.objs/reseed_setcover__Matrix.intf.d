lib/setcover/matrix.mli: Bitvec Format Reseed_util
