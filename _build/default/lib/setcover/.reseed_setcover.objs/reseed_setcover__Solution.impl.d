lib/setcover/solution.ml: Array Fun Greedy Ilp List Matrix Option Reduce Reseed_util
