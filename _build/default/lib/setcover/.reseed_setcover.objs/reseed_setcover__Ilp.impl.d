lib/setcover/ilp.ml: Array Bitvec Float Greedy List Matrix Reseed_util Stdlib
