lib/setcover/greedy.ml: Bitvec List Matrix Reseed_util
