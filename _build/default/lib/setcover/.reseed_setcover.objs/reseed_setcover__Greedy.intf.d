lib/setcover/greedy.mli: Matrix
