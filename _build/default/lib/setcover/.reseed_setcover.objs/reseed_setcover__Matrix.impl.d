lib/setcover/matrix.ml: Array Bitvec Format List Reseed_util
