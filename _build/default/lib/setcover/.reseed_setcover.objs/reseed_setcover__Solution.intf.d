lib/setcover/solution.mli: Matrix Reduce
