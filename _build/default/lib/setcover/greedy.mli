(** Greedy set covering (Chvátal): repeatedly take the row covering the
    most still-uncovered columns.  ln(n)-approximate; used as the upper
    bound seeding the exact branch-and-bound and as an ablation baseline
    against the exact solver. *)

(** [solve m] returns selected row indices in pick order.  Columns no row
    covers are ignored.  The result always covers every coverable
    column. *)
val solve : Matrix.t -> int list
