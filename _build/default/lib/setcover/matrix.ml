open Reseed_util

type t = {
  n_rows : int;
  n_cols : int;
  row_bits : Bitvec.t array; (* per row, over columns *)
  col_bits : Bitvec.t array; (* per column, over rows *)
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
  {
    n_rows = rows;
    n_cols = cols;
    row_bits = Array.init rows (fun _ -> Bitvec.create cols);
    col_bits = Array.init cols (fun _ -> Bitvec.create rows);
  }

let of_rows ~cols rows_arr =
  let m = create ~rows:(Array.length rows_arr) ~cols in
  Array.iteri
    (fun i v ->
      if Bitvec.length v <> cols then invalid_arg "Matrix.of_rows: row width mismatch";
      Bitvec.iter_ones
        (fun j ->
          Bitvec.set m.row_bits.(i) j;
          Bitvec.set m.col_bits.(j) i)
        v)
    rows_arr;
  m

let rows m = m.n_rows
let cols m = m.n_cols

let set m ~row ~col =
  Bitvec.set m.row_bits.(row) col;
  Bitvec.set m.col_bits.(col) row

let get m ~row ~col = Bitvec.get m.row_bits.(row) col

let row m i = m.row_bits.(i)
let col m j = m.col_bits.(j)

let ones m = Array.fold_left (fun acc v -> acc + Bitvec.count v) 0 m.row_bits

let density m =
  if m.n_rows = 0 || m.n_cols = 0 then 0.
  else float_of_int (ones m) /. float_of_int (m.n_rows * m.n_cols)

let covers m ~rows_subset =
  let union = Bitvec.create m.n_cols in
  List.iter (fun i -> Bitvec.union_into ~into:union m.row_bits.(i)) rows_subset;
  let all = Bitvec.create m.n_cols in
  Array.iter (fun v -> Bitvec.union_into ~into:all v) m.row_bits;
  Bitvec.subset all union

let uncoverable m =
  let acc = ref [] in
  for j = m.n_cols - 1 downto 0 do
    if Bitvec.is_empty m.col_bits.(j) then acc := j :: !acc
  done;
  !acc

let pp_stats ppf m =
  Format.fprintf ppf "%dx%d, %d ones (density %.4f)" m.n_rows m.n_cols (ones m)
    (density m)
