open Reseed_util

type 'a problem = {
  init : Rng.t -> 'a;
  fitness : 'a -> float;
  crossover : Rng.t -> 'a -> 'a -> 'a;
  mutate : Rng.t -> 'a -> 'a;
}

type config = {
  population : int;
  generations : int;
  elite : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
}

let default_config =
  {
    population = 24;
    generations = 16;
    elite = 2;
    tournament = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.5;
  }

type 'a outcome = { best : 'a; best_fitness : float; evaluations : int }

let optimize ?(config = default_config) ~rng problem =
  if config.population < 2 then invalid_arg "Ga.optimize: population must be >= 2";
  if config.elite >= config.population then invalid_arg "Ga.optimize: elite too large";
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    problem.fitness g
  in
  (* Population kept sorted by descending fitness. *)
  let scored = Array.init config.population (fun _ ->
      let g = problem.init rng in
      (g, eval g))
  in
  let sort () =
    Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored
  in
  sort ();
  let best = ref (fst scored.(0)) and best_fitness = ref (snd scored.(0)) in
  let tournament_pick () =
    let best_i = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament do
      let i = Rng.int rng config.population in
      if snd scored.(i) > snd scored.(!best_i) then best_i := i
    done;
    fst scored.(!best_i)
  in
  for _gen = 1 to config.generations do
    let next = Array.make config.population scored.(0) in
    for i = 0 to config.elite - 1 do
      next.(i) <- scored.(i)
    done;
    for i = config.elite to config.population - 1 do
      let a = tournament_pick () in
      let child =
        if Rng.float rng < config.crossover_rate then
          problem.crossover rng a (tournament_pick ())
        else a
      in
      let child = if Rng.float rng < config.mutation_rate then problem.mutate rng child else child in
      next.(i) <- (child, eval child)
    done;
    Array.blit next 0 scored 0 config.population;
    sort ();
    if snd scored.(0) > !best_fitness then begin
      best := fst scored.(0);
      best_fitness := snd scored.(0)
    end
  done;
  { best = !best; best_fitness = !best_fitness; evaluations = !evaluations }
