lib/gatsby/gatsby.mli: Bitvec Fault_sim Ga Reseed_fault Reseed_tpg Reseed_util Rng Tpg Triplet
