lib/gatsby/ga.ml: Array Float Reseed_util Rng
