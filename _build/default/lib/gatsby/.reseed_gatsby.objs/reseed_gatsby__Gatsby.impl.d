lib/gatsby/gatsby.ml: Array Bitvec Fault_sim Ga List Reseed_fault Reseed_tpg Reseed_util Rng Tpg Triplet Word
