lib/gatsby/ga.mli: Reseed_util Rng
