lib/sat/sat.mli:
