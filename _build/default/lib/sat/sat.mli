(** A small DPLL SAT solver over CNF.

    Built as the substrate for SAT-based test generation (Larrabee-style
    ATPG): unit propagation over occurrence lists, chronological
    backtracking, and a conflict budget that turns pathological instances
    into an explicit [Unknown] instead of a hang.  Complete within the
    budget: [Unsat] is a proof.

    Variables are positive integers [1..nvars]; a literal is [+v] or
    [-v]. *)

type t

type outcome =
  | Sat of bool array  (** model, indexed by variable (entry 0 unused) *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

(** [create nvars] — a solver over variables [1..nvars]. *)
val create : int -> t

(** [add_clause t lits] adds a disjunction.  Duplicate literals are
    merged; a clause containing both [v] and [-v] is dropped as a
    tautology.  Adding the empty clause makes the instance trivially
    unsatisfiable.  Raises [Invalid_argument] on out-of-range literals. *)
val add_clause : t -> int list -> unit

(** [solve ?assumptions ?max_conflicts t] — [assumptions] are literals
    fixed before search (default none); [max_conflicts] defaults to
    200_000. *)
val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> outcome

val nvars : t -> int
val clause_count : t -> int
