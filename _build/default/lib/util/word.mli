(** Arbitrary-width machine words with modular arithmetic.

    A [Word.t] models the contents of an [n]-bit hardware register
    (accumulator state, operand register, LFSR state).  All arithmetic is
    performed modulo [2^n], exactly as the corresponding datapath would.
    Values are immutable. *)

type t

(** [width w] is the register width in bits (>= 1). *)
val width : t -> int

(** [zero n] is the [n]-bit word 0. *)
val zero : int -> t

(** [one n] is the [n]-bit word 1. *)
val one : int -> t

(** [ones n] is the [n]-bit word with every bit set ([2^n - 1]). *)
val ones : int -> t

(** [of_int n x] is the [n]-bit word holding [x mod 2^n].  [x >= 0]. *)
val of_int : int -> int -> t

(** [to_int w] is the value of [w] if it fits in a native int. *)
val to_int : t -> int option

(** [get_bit w i] is bit [i] of [w] (bit 0 is least significant). *)
val get_bit : t -> int -> bool

(** [set_bit w i b] is [w] with bit [i] replaced by [b]. *)
val set_bit : t -> int -> bool -> t

(** [of_bits bits] packs [bits.(0)] as the least-significant bit. *)
val of_bits : bool array -> t

(** [to_bits w] is the LSB-first bit image of [w]. *)
val to_bits : t -> bool array

(** [add a b] is [(a + b) mod 2^n]. *)
val add : t -> t -> t

(** [sub a b] is [(a - b) mod 2^n]. *)
val sub : t -> t -> t

(** [neg a] is [(- a) mod 2^n]. *)
val neg : t -> t

(** [mul a b] is [(a * b) mod 2^n]. *)
val mul : t -> t -> t

(** [succ a] is [(a + 1) mod 2^n]. *)
val succ : t -> t

(** [logxor a b], [logand a b], [logor a b] are bitwise operations. *)
val logxor : t -> t -> t

val logand : t -> t -> t
val logor : t -> t -> t

(** [lognot a] flips every bit of [a]. *)
val lognot : t -> t

(** [shift_left a k] shifts in zeros at the LSB end, dropping overflow. *)
val shift_left : t -> int -> t

(** [shift_right a k] is a logical right shift. *)
val shift_right : t -> int -> t

(** [equal a b] requires equal widths. *)
val equal : t -> t -> bool

(** [compare] orders by width, then unsigned value. *)
val compare : t -> t -> int

val is_zero : t -> bool

(** [popcount w] is the number of set bits. *)
val popcount : t -> int

(** [random rng n] is a uniformly random [n]-bit word drawn from [rng]. *)
val random : Rng.t -> int -> t

(** [to_hex w] renders most-significant digit first, e.g. ["0x01af"]. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit
