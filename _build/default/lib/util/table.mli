(** Plain-text table rendering for experiment reports.

    Regenerated paper tables (Table 1, Table 2) and the Figure 2 series are
    printed through this module so that every bench target reports in a
    single consistent format, with an optional CSV dump for plotting. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table; each header also fixes the
    column's alignment. *)
val create : title:string -> (string * align) list -> t

(** [add_row t cells] appends a row; the number of cells must match the
    number of headers. *)
val add_row : t -> string list -> unit

(** [add_separator t] inserts a horizontal rule between row groups. *)
val add_separator : t -> unit

(** [render t] lays the table out with box-drawing rules. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** [to_csv t] is a CSV rendition (headers + rows, separators skipped). *)
val to_csv : t -> string

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string

(** [cell_pct x] renders ["97.31%"]-style percentages. *)
val cell_pct : float -> string

(** [cell_opt f o] renders [o] through [f], or ["-"] for [None] (used for
    the GATSBY columns the paper leaves empty on large circuits). *)
val cell_opt : ('a -> string) -> 'a option -> string
