(* Little-endian limbs of [limb_bits] bits each.  30-bit limbs keep every
   partial product of [mul] within the 62 safe bits of a native int. *)

let limb_bits = 30
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let width w = w.width

let nlimbs width = (width + limb_bits - 1) / limb_bits

let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

(* Canonicalise: clear bits above [width] in the top limb. *)
let normalize w =
  let n = Array.length w.limbs in
  if n > 0 then w.limbs.(n - 1) <- w.limbs.(n - 1) land top_mask w.width;
  w

let zero n =
  if n < 1 then invalid_arg "Word.zero: width must be >= 1";
  { width = n; limbs = Array.make (nlimbs n) 0 }

let of_int n x =
  if x < 0 then invalid_arg "Word.of_int: negative value";
  let w = zero n in
  let rec fill i x =
    if x <> 0 && i < Array.length w.limbs then begin
      w.limbs.(i) <- x land limb_mask;
      fill (i + 1) (x lsr limb_bits)
    end
  in
  fill 0 x;
  normalize w

let one n = of_int n 1
let ones n = let w = zero n in Array.fill w.limbs 0 (nlimbs n) limb_mask; normalize w

let to_int w =
  let n = Array.length w.limbs in
  let rec go i acc =
    if i < 0 then Some acc
    else if i * limb_bits >= 62 && w.limbs.(i) <> 0 then None
    else
      let shifted = acc lsl limb_bits in
      if shifted lsr limb_bits <> acc then None
      else go (i - 1) (shifted lor w.limbs.(i))
  in
  go (n - 1) 0

let get_bit w i =
  if i < 0 || i >= w.width then invalid_arg "Word.get_bit: out of range";
  w.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set_bit w i b =
  if i < 0 || i >= w.width then invalid_arg "Word.set_bit: out of range";
  let limbs = Array.copy w.limbs in
  let l = i / limb_bits and o = i mod limb_bits in
  limbs.(l) <- (if b then limbs.(l) lor (1 lsl o) else limbs.(l) land lnot (1 lsl o));
  { width = w.width; limbs }

let of_bits bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Word.of_bits: empty";
  let w = zero n in
  Array.iteri
    (fun i b ->
      if b then
        w.limbs.(i / limb_bits) <- w.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits)))
    bits;
  w

let to_bits w = Array.init w.width (fun i -> get_bit w i)

let same_width a b =
  if a.width <> b.width then invalid_arg "Word: width mismatch"

let add a b =
  same_width a b;
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize { width = a.width; limbs }

let lognot a =
  let limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs in
  normalize { width = a.width; limbs }

let neg a = add (lognot a) (of_int a.width 1)

let sub a b = same_width a b; add a (neg b)

let succ a = add a (of_int a.width 1)

let mul a b =
  same_width a b;
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  (* Schoolbook multiplication truncated to n limbs.  Partial sums are
     accumulated limb by limb with explicit carry propagation so that no
     intermediate exceeds 62 bits. *)
  for i = 0 to n - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let p = (a.limbs.(i) * b.limbs.(j)) + limbs.(i + j) + !carry in
        limbs.(i + j) <- p land limb_mask;
        carry := p lsr limb_bits
      done
    end
  done;
  normalize { width = a.width; limbs }

let map2 f a b =
  same_width a b;
  normalize
    { width = a.width; limbs = Array.init (Array.length a.limbs) (fun i -> f a.limbs.(i) b.limbs.(i)) }

let logxor a b = map2 ( lxor ) a b
let logand a b = map2 ( land ) a b
let logor a b = map2 ( lor ) a b

let shift_left a k =
  if k < 0 then invalid_arg "Word.shift_left: negative shift";
  if k = 0 then a
  else if k >= a.width then zero a.width
  else begin
    let r = zero a.width in
    for i = a.width - 1 downto k do
      if get_bit a (i - k) then
        r.limbs.(i / limb_bits) <- r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Word.shift_right: negative shift";
  if k = 0 then a
  else if k >= a.width then zero a.width
  else begin
    let r = zero a.width in
    for i = 0 to a.width - 1 - k do
      if get_bit a (i + k) then
        r.limbs.(i / limb_bits) <- r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    normalize r
  end

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c
  else
    (* Limbs are little-endian: compare from the most significant down. *)
    let rec go i =
      if i < 0 then 0
      else
        let c = Stdlib.compare a.limbs.(i) b.limbs.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length a.limbs - 1)

let is_zero a = Array.for_all (fun l -> l = 0) a.limbs

let popcount a = Array.fold_left (fun acc l -> acc + Bitvec.popcount_int l) 0 a.limbs

let random rng n =
  let w = zero n in
  for i = 0 to Array.length w.limbs - 1 do
    w.limbs.(i) <- Rng.bits rng limb_bits
  done;
  normalize w

let to_hex w =
  let digits = (w.width + 3) / 4 in
  let buf = Buffer.create (digits + 2) in
  Buffer.add_string buf "0x";
  for d = digits - 1 downto 0 do
    let v = ref 0 in
    for b = 3 downto 0 do
      let bit = (d * 4) + b in
      v := (!v lsl 1) lor (if bit < w.width && get_bit w bit then 1 else 0)
    done;
    Buffer.add_char buf "0123456789abcdef".[!v]
  done;
  Buffer.contents buf

let pp ppf w = Format.fprintf ppf "%s" (to_hex w)
