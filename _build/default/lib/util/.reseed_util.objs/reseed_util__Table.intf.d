lib/util/table.mli:
