lib/util/word.ml: Array Bitvec Buffer Format Rng Stdlib String
