lib/util/rng.mli:
