lib/util/word.mli: Format Rng
