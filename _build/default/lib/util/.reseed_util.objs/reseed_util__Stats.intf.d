lib/util/stats.mli:
