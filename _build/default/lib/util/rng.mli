(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (random operands, synthetic
    circuit generation, genetic algorithm, qcheck workloads) draws from an
    explicit [Rng.t] so that experiments are reproducible from a single
    seed.  The global [Random] state is never used. *)

type t

(** [create seed] is a fresh generator; equal seeds yield equal streams. *)
val create : int -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [split t] derives an independent generator and advances [t]. *)
val split : t -> t

(** [next t] is the next raw 62-bit non-negative output. *)
val next : t -> int

(** [bits t n] is a uniform [n]-bit non-negative int, [0 <= n <= 62]. *)
val bits : t -> int -> int

(** [int t bound] is uniform in [\[0, bound)]; [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [pick t arr] is a uniformly chosen element of the non-empty [arr]. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
