let require_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_non_empty "Stats.mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let xs = require_non_empty "Stats.stddev" xs in
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let sorted xs = List.sort Float.compare xs

let median xs =
  let xs = require_non_empty "Stats.median" xs in
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let xs = require_non_empty "Stats.percentile" xs in
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let minimum xs =
  let xs = require_non_empty "Stats.minimum" xs in
  List.fold_left Float.min Float.infinity xs

let maximum xs =
  let xs = require_non_empty "Stats.maximum" xs in
  List.fold_left Float.max Float.neg_infinity xs

let ratio a b = if b = 0. then Float.nan else a /. b

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
