(* Splitmix64 over Int64, truncated to the 62 non-negative bits of a native
   int on output.  Reference: Steele, Lea & Flood, OOPSLA 2014. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let split t = { state = mix (next64 t) }

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Rng.bits: n must be in [0, 62]";
  if n = 0 then 0 else next t lsr (62 - n)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling for exact uniformity. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let x = next t in
    if x >= limit then draw () else x mod bound
  in
  draw ()

let bool t = next t land 1 = 1

let float t = float_of_int (next t) /. 4611686018427387904.0 (* 2^62 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
