(** Small numeric helpers for experiment reporting. *)

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation of a non-empty list. *)
val stddev : float list -> float

(** [median xs] of a non-empty list. *)
val median : float list -> float

(** [percentile p xs] for [p] in [\[0, 100\]], nearest-rank on a sorted copy. *)
val percentile : float -> float list -> float

(** [minimum xs] / [maximum xs] of a non-empty list. *)
val minimum : float list -> float

val maximum : float list -> float

(** [ratio a b] is [a /. b], or [nan] when [b = 0.]. *)
val ratio : float -> float -> float

(** [pct part whole] is [100 * part / whole], or [0.] when [whole = 0.]. *)
val pct : int -> int -> float
