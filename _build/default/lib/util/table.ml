type align = Left | Right

type row = Cells of string array | Separator

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~title headers =
  let headers_arr = Array.of_list (List.map fst headers) in
  let aligns = Array.of_list (List.map snd headers) in
  { title; headers = headers_arr; aligns; rows = [] }

let add_row t cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let column_widths t =
  let widths = Array.map String.length t.headers in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    t.rows;
  widths

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 1024 in
  let rule ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells align_of =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (align_of i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  rule '-';
  line t.headers (fun _ -> Left);
  rule '=';
  List.iter
    (function
      | Separator -> rule '-'
      | Cells cells -> line cells (fun i -> t.aligns.(i)))
    (List.rev t.rows);
  rule '-';
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  let emit cells =
    Buffer.add_string buf
      (String.concat "," (List.map csv_escape (Array.to_list cells)));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Separator -> () | Cells c -> emit c) (List.rev t.rows);
  Buffer.contents buf

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.2f%%" x

let cell_opt f = function None -> "-" | Some x -> f x
