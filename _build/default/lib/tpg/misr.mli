(** Multiple-input signature register (MISR) — BIST response compaction.

    A Functional BIST architecture needs both a pattern source (the TPG)
    and a response evaluator; in practice the UUT's outputs are folded
    into a signature by a MISR and only the final signature is compared
    against the fault-free reference.  This module models a standard
    Fibonacci-style MISR: each cycle the state shifts left by one, the
    feedback polynomial is XORed in when the bit shifted out is 1, and
    the response word is XORed on top.

    A fault escapes detection only through *aliasing* — a faulty response
    stream compressing to the fault-free signature — with probability
    approaching [2^-width] for effectively random error streams. *)

open Reseed_util

type t

(** [create ~width ?taps ()] — [taps] is the feedback polynomial (bit
    positions XORed in on overflow), defaulting to {!Lfsr.default_taps}.
    [width] must be at least 2. *)
val create : width:int -> ?taps:int list -> unit -> t

val width : t -> int

(** [step misr ~state ~response] is one compaction cycle. *)
val step : t -> state:Word.t -> response:Word.t -> Word.t

(** [signature misr ?initial responses] folds a response stream (first
    element first) into a signature.  [initial] defaults to zero. *)
val signature : t -> ?initial:Word.t -> Word.t list -> Word.t

(** [signature_of_bits misr responses] — same, over PO bit vectors
    (LSB-first, padded/truncated to the MISR width). *)
val signature_of_bits : t -> bool array array -> Word.t

(** [aliasing_probability misr] is the asymptotic escape probability
    [2^-width] for a random error stream (clamped to avoid underflow). *)
val aliasing_probability : t -> float
