open Reseed_util

type t = {
  name : string;
  width : int;
  step : state:Word.t -> operand:Word.t -> Word.t;
  fix_operand : Word.t -> Word.t;
}

let make ~name ~width ?(fix_operand = Fun.id) step =
  if width < 1 then invalid_arg "Tpg.make: width must be >= 1";
  { name; width; step; fix_operand }

let check_widths tpg seed operand =
  if Word.width seed <> tpg.width || Word.width operand <> tpg.width then
    invalid_arg "Tpg: seed/operand width mismatch"

let run tpg ~seed ~operand ~cycles =
  check_widths tpg seed operand;
  if cycles < 1 then invalid_arg "Tpg.run: cycles must be >= 1";
  let out = Array.make cycles seed in
  let state = ref seed in
  for j = 1 to cycles - 1 do
    state := tpg.step ~state:!state ~operand;
    out.(j) <- !state
  done;
  out

let run_bits tpg ~seed ~operand ~cycles =
  Array.map Word.to_bits (run tpg ~seed ~operand ~cycles)

let period tpg ~seed ~operand ~limit =
  check_widths tpg seed operand;
  let seen = Hashtbl.create 64 in
  let rec go state step =
    if step > limit then None
    else if Hashtbl.mem seen state then Some step
    else begin
      Hashtbl.add seen state ();
      go (tpg.step ~state ~operand) (step + 1)
    end
  in
  go seed 0
