lib/tpg/lfsr.mli: Tpg
