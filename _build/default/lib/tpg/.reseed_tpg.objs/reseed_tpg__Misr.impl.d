lib/tpg/misr.ml: Array Lfsr List Reseed_util Word
