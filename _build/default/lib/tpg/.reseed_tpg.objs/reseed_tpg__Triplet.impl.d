lib/tpg/triplet.ml: Format Reseed_util Tpg Word
