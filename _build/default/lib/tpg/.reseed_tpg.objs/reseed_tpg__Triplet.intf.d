lib/tpg/triplet.mli: Format Reseed_util Tpg Word
