lib/tpg/accumulator.mli: Tpg
