lib/tpg/accumulator.ml: Reseed_util Tpg Word
