lib/tpg/tpg.ml: Array Fun Hashtbl Reseed_util Word
