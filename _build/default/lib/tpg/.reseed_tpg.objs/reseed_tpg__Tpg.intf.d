lib/tpg/tpg.mli: Reseed_util Word
