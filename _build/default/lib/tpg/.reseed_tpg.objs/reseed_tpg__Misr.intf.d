lib/tpg/misr.mli: Reseed_util Word
