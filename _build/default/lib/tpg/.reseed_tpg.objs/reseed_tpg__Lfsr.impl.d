lib/tpg/lfsr.ml: List Reseed_util Tpg Word
