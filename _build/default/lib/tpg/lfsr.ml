open Reseed_util

(* Parity of the bits of [w] selected by [mask]. *)
let masked_parity state mask =
  Word.popcount (Word.logand state mask) land 1 = 1

let shift_in state bit =
  let shifted = Word.shift_left state 1 in
  Word.set_bit shifted 0 bit

let fibonacci width taps =
  if taps = [] then invalid_arg "Lfsr.fibonacci: empty tap list";
  List.iter
    (fun t ->
      if t < 0 || t >= width then invalid_arg "Lfsr.fibonacci: tap out of range")
    taps;
  let mask =
    List.fold_left (fun acc t -> Word.set_bit acc t true) (Word.zero width) taps
  in
  Tpg.make ~name:"lfsr" ~width (fun ~state ~operand:_ ->
      shift_in state (masked_parity state mask))

let multi_polynomial width =
  Tpg.make ~name:"mp-lfsr" ~width (fun ~state ~operand ->
      shift_in state (masked_parity state operand))

(* Tap tables for primitive polynomials at common widths (Xilinx XAPP052
   convention, converted to 0-based bit positions). *)
let default_taps width =
  match width with
  | 2 -> [ 1; 0 ]
  | 3 -> [ 2; 1 ]
  | 4 -> [ 3; 2 ]
  | 5 -> [ 4; 2 ]
  | 6 -> [ 5; 4 ]
  | 7 -> [ 6; 5 ]
  | 8 -> [ 7; 5; 4; 3 ]
  | 16 -> [ 15; 14; 12; 3 ]
  | 24 -> [ 23; 22; 21; 16 ]
  | 32 -> [ 31; 21; 1; 0 ]
  | _ when width >= 2 -> [ width - 1; 0 ]
  | _ -> invalid_arg "Lfsr.default_taps: width must be >= 2"
