open Reseed_util

type t = { width : int; poly : Word.t }

let create ~width ?taps () =
  if width < 2 then invalid_arg "Misr.create: width must be >= 2";
  let taps = match taps with Some t -> t | None -> Lfsr.default_taps width in
  if taps = [] then invalid_arg "Misr.create: empty tap list";
  let poly =
    List.fold_left
      (fun acc tap ->
        if tap < 0 || tap >= width then invalid_arg "Misr.create: tap out of range";
        Word.set_bit acc tap true)
      (Word.zero width) taps
  in
  { width; poly }

let width m = m.width

let step m ~state ~response =
  if Word.width state <> m.width || Word.width response <> m.width then
    invalid_arg "Misr.step: width mismatch";
  let carry = Word.get_bit state (m.width - 1) in
  let shifted = Word.shift_left state 1 in
  let fed = if carry then Word.logxor shifted m.poly else shifted in
  Word.logxor fed response

let signature m ?initial responses =
  let state = match initial with Some s -> s | None -> Word.zero m.width in
  List.fold_left (fun state response -> step m ~state ~response) state responses

(* Pad or truncate a PO bit vector to the register width. *)
let word_of_bits m bits =
  let w = ref (Word.zero m.width) in
  Array.iteri (fun i b -> if b && i < m.width then w := Word.set_bit !w i true) bits;
  !w

let signature_of_bits m responses =
  signature m (List.map (word_of_bits m) (Array.to_list responses))

let aliasing_probability m =
  if m.width >= 60 then 0.0 else 1.0 /. float_of_int (1 lsl m.width)
