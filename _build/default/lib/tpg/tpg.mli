(** Test pattern generators (TPGs) for Functional BIST.

    A TPG is an existing system module reused as a pattern source: it has
    an [n]-bit state register and an [n]-bit input (operand) register.  A
    {!Triplet.t} [(δ, σ, T)] seeds the state with [δ], holds the operand
    at [σ], and clocks the module [T] times; the successive state words
    are the test patterns (one per cycle, the seed itself being the first
    output — pattern [p_j] appears at cycle [t_j], [0 <= j < T]).

    The paper evaluates three accumulator-based TPGs (adder, multiplier,
    subtracter); an LFSR model is included to show the approach is not
    tied to arithmetic modules. *)

open Reseed_util

type t = {
  name : string;
  width : int;
  step : state:Word.t -> operand:Word.t -> Word.t;
      (** one clock cycle: next state from current state and operand *)
  fix_operand : Word.t -> Word.t;
      (** canonicalise a candidate operand before use — e.g. a multiplier
          accumulator forces σ odd, since an even multiplier collapses the
          orbit onto multiples of growing powers of two.  Identity for
          most TPGs. *)
}

(** [make ~name ~width ?fix_operand step] wraps a next-state function.
    [fix_operand] defaults to the identity. *)
val make :
  name:string ->
  width:int ->
  ?fix_operand:(Word.t -> Word.t) ->
  (state:Word.t -> operand:Word.t -> Word.t) ->
  t

(** [run tpg ~seed ~operand ~cycles] is the emitted pattern sequence,
    [cycles] words starting with [seed].  Width of [seed] and [operand]
    must equal [tpg.width]. *)
val run : t -> seed:Word.t -> operand:Word.t -> cycles:int -> Word.t array

(** [run_bits tpg ~seed ~operand ~cycles] is {!run} with each word
    expanded to an LSB-first bit pattern — directly consumable by the
    logic/fault simulators. *)
val run_bits : t -> seed:Word.t -> operand:Word.t -> cycles:int -> bool array array

(** [period tpg ~seed ~operand ~limit] is the number of steps until the
    state first revisits a previous value, or [None] if no repeat occurs
    within [limit] steps. *)
val period : t -> seed:Word.t -> operand:Word.t -> limit:int -> int option
