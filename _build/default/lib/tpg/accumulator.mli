(** Accumulator-based TPGs — the three modules evaluated in the paper.

    An accumulator repeatedly combines its state register with a held
    operand through an arithmetic unit:

    - adder:       [state <- (state + operand) mod 2^n]
    - subtracter:  [state <- (state - operand) mod 2^n]
    - multiplier:  [state <- (state * operand) mod 2^n]

    Adder/subtracter accumulators sweep arithmetic progressions through
    the pattern space (Rajski/Tyszer arithmetic BIST); the multiplier
    walks multiplicative orbits.  All arithmetic is exact modular
    arithmetic over {!Reseed_util.Word}. *)

val adder : int -> Tpg.t
val subtracter : int -> Tpg.t
val multiplier : int -> Tpg.t

(** The paper's TPG set, Table 1 column order: adder, multiplier,
    subtracter — instantiated at a given register width. *)
val paper_tpgs : int -> Tpg.t list
