open Reseed_util

let adder width =
  Tpg.make ~name:"adder" ~width (fun ~state ~operand -> Word.add state operand)

let subtracter width =
  Tpg.make ~name:"subtracter" ~width (fun ~state ~operand -> Word.sub state operand)

let multiplier width =
  (* An even multiplier operand collapses the accumulator orbit onto
     multiples of growing powers of two; force σ odd. *)
  let make_odd w = Word.set_bit w 0 true in
  Tpg.make ~name:"multiplier" ~width ~fix_operand:make_odd (fun ~state ~operand ->
      Word.mul state operand)

let paper_tpgs width = [ adder width; multiplier width; subtracter width ]
