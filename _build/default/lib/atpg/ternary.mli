(** Three-valued (0 / 1 / X) logic used by the deterministic ATPG.

    PODEM tracks the good machine and the faulty machine as two ternary
    simulations; a node carries a fault effect (a "D" in the classical
    5-valued D-calculus) when its good and faulty values are both known
    and differ. *)

open Reseed_netlist

type v = F | T | X

val of_bool : bool -> v

(** [to_bool v] for known values; raises [Invalid_argument] on [X]. *)
val to_bool : v -> bool

val known : v -> bool
val v_not : v -> v

(** [eval kind args] evaluates one gate over ternary values with standard
    X-propagation (a controlling value dominates any X). *)
val eval : Gate.kind -> v array -> v

(** [simulate c pi_values ?fault ()] runs a full forward ternary
    simulation from the PI assignment (indexed in PI order).  With
    [?fault], the faulty machine is simulated instead: an [Out] fault
    pins the site node to its stuck value; a [Pin] fault forces that
    fanin while evaluating the faulty gate. *)
val simulate :
  Circuit.t -> v array -> ?fault:Reseed_fault.Fault.t -> unit -> v array

(** [error ~good ~faulty i] — node [i] carries a fault effect. *)
val error : good:v array -> faulty:v array -> int -> bool

val to_char : v -> char
