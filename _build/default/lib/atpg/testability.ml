open Reseed_netlist

type t = { cc0 : int array; cc1 : int array; co : int array }

let infinity_cost = 1 lsl 40

let clamp x = if x > infinity_cost then infinity_cost else x

let compute c =
  let n = Circuit.node_count c in
  let cc0 = Array.make n 0 and cc1 = Array.make n 0 in
  let sum_over fanins f =
    Array.fold_left (fun acc fi -> clamp (acc + f fi)) 0 fanins
  in
  let min_over fanins f =
    Array.fold_left (fun acc fi -> min acc (f fi)) infinity_cost fanins
  in
  (* XOR controllability over an n-ary gate: parity-DP over fanins. *)
  let xor_cc fanins =
    let even = ref 0 and odd = ref infinity_cost in
    Array.iter
      (fun fi ->
        let e = min (clamp (!even + cc0.(fi))) (clamp (!odd + cc1.(fi))) in
        let o = min (clamp (!even + cc1.(fi))) (clamp (!odd + cc0.(fi))) in
        even := e;
        odd := o)
      fanins;
    (!even, !odd)
  in
  for i = 0 to n - 1 do
    let node = c.Circuit.nodes.(i) in
    let fi = node.Circuit.fanins in
    let z0, z1 =
      match node.Circuit.kind with
      | Gate.Input -> (1, 1)
      | Gate.Buf -> (cc0.(fi.(0)), cc1.(fi.(0)))
      | Gate.Not -> (cc1.(fi.(0)), cc0.(fi.(0)))
      | Gate.And -> (min_over fi (fun f -> cc0.(f)), sum_over fi (fun f -> cc1.(f)))
      | Gate.Nand -> (sum_over fi (fun f -> cc1.(f)), min_over fi (fun f -> cc0.(f)))
      | Gate.Or -> (sum_over fi (fun f -> cc0.(f)), min_over fi (fun f -> cc1.(f)))
      | Gate.Nor -> (min_over fi (fun f -> cc1.(f)), sum_over fi (fun f -> cc0.(f)))
      | Gate.Xor -> xor_cc fi
      | Gate.Xnor ->
          let e, o = xor_cc fi in
          (o, e)
      | Gate.Const0 -> (0, infinity_cost)
      | Gate.Const1 -> (infinity_cost, 0)
    in
    cc0.(i) <- clamp (z0 + if node.Circuit.kind = Gate.Input then 0 else 1);
    cc1.(i) <- clamp (z1 + if node.Circuit.kind = Gate.Input then 0 else 1)
  done;
  (* Observability: reverse pass. *)
  let co = Array.make n infinity_cost in
  Array.iter (fun o -> co.(o) <- 0) c.Circuit.outputs;
  for i = n - 1 downto 0 do
    let node = c.Circuit.nodes.(i) in
    if co.(i) < infinity_cost then begin
      let fi = node.Circuit.fanins in
      let k = Array.length fi in
      for pin = 0 to k - 1 do
        let side_cost =
          match node.Circuit.kind with
          | Gate.Input | Gate.Const0 | Gate.Const1 -> 0
          | Gate.Buf | Gate.Not -> 0
          | Gate.And | Gate.Nand ->
              (* Other inputs must be 1. *)
              sum_over fi (fun f -> if f = fi.(pin) then 0 else cc1.(f))
          | Gate.Or | Gate.Nor ->
              sum_over fi (fun f -> if f = fi.(pin) then 0 else cc0.(f))
          | Gate.Xor | Gate.Xnor ->
              (* Other inputs must be known: take the cheaper value. *)
              sum_over fi (fun f -> if f = fi.(pin) then 0 else min cc0.(f) cc1.(f))
        in
        let through = clamp (co.(i) + side_cost + 1) in
        if through < co.(fi.(pin)) then co.(fi.(pin)) <- through
      done
    end
  done;
  { cc0; cc1; co }

let cost_to_set t node value = if value then t.cc1.(node) else t.cc0.(node)
