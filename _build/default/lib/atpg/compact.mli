(** Reverse-order static test-set compaction.

    Patterns are fault-simulated in reverse generation order with fault
    dropping; a pattern that detects no still-active fault is discarded.
    Because deterministic ATPG appends the hardest faults' tests last,
    reverse order lets late, highly-specific patterns subsume the early
    broad ones (Pomeranz & Reddy's classic observation cited as [15] in
    the paper). *)

open Reseed_fault

(** [reverse_order sim tests] returns the kept patterns, preserving their
    relative order, and the number dropped.  Coverage over the
    simulator's fault list is exactly preserved. *)
val reverse_order : Fault_sim.t -> bool array array -> bool array array * int

(** [covering sim tests] — exact minimum-cardinality compaction: selects
    a smallest subset of [tests] with the same fault coverage by solving
    the pattern × fault covering instance with the set covering engine
    (the COMPACTEST idea the paper cites as its precedent for covering
    models in testing).  More expensive than {!reverse_order} but optimal
    with respect to the given test set.  Returns the kept patterns (in
    original order) and the number dropped. *)
val covering : Fault_sim.t -> bool array array -> bool array array * int
