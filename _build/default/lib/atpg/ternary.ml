open Reseed_netlist
open Reseed_fault

type v = F | T | X

let of_bool b = if b then T else F

let to_bool = function
  | F -> false
  | T -> true
  | X -> invalid_arg "Ternary.to_bool: X"

let known = function X -> false | F | T -> true

let v_not = function F -> T | T -> F | X -> X

let and2 a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | _ -> X

let or2 a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | _ -> X

let xor2 a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | _ -> T

let fold2 op seed args = Array.fold_left op seed args

let eval kind args =
  match kind with
  | Gate.Input -> invalid_arg "Ternary.eval: Input"
  | Gate.Buf -> args.(0)
  | Gate.Not -> v_not args.(0)
  | Gate.And -> fold2 and2 T args
  | Gate.Nand -> v_not (fold2 and2 T args)
  | Gate.Or -> fold2 or2 F args
  | Gate.Nor -> v_not (fold2 or2 F args)
  | Gate.Xor -> fold2 xor2 F args
  | Gate.Xnor -> v_not (fold2 xor2 F args)
  | Gate.Const0 -> F
  | Gate.Const1 -> T

let simulate c pi_values ?fault () =
  if Array.length pi_values <> Circuit.input_count c then
    invalid_arg "Ternary.simulate: PI assignment width mismatch";
  let n = Circuit.node_count c in
  let values = Array.make n X in
  let pi = ref 0 in
  for i = 0 to n - 1 do
    let node = c.Circuit.nodes.(i) in
    (match node.Circuit.kind with
    | Gate.Input ->
        values.(i) <- pi_values.(!pi);
        incr pi
    | kind ->
        let args = Array.map (fun f -> values.(f)) node.Circuit.fanins in
        (match fault with
        | Some { Fault.site = Fault.Pin { gate; pin }; stuck } when gate = i ->
            args.(pin) <- of_bool stuck
        | _ -> ());
        values.(i) <- eval kind args);
    (* An Out fault pins the node after evaluation, whatever its kind. *)
    match fault with
    | Some { Fault.site = Fault.Out g; stuck } when g = i -> values.(i) <- of_bool stuck
    | _ -> ()
  done;
  values

let error ~good ~faulty i =
  known good.(i) && known faulty.(i) && good.(i) <> faulty.(i)

let to_char = function F -> '0' | T -> '1' | X -> 'x'
