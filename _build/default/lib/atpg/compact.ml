open Reseed_fault
open Reseed_setcover
open Reseed_util

let reverse_order sim tests =
  let n = Array.length tests in
  if n = 0 then ([||], 0)
  else begin
    let nf = Fault_sim.fault_count sim in
    (* Restrict to faults the set actually detects, so undetectable faults
       never hold patterns hostage. *)
    let detectable = Bitvec.create nf in
    let map = Fault_sim.detection_map sim tests in
    Array.iteri (fun fi v -> if not (Bitvec.is_empty v) then Bitvec.set detectable fi) map;
    let remaining = Bitvec.copy detectable in
    let keep = Array.make n false in
    for p = n - 1 downto 0 do
      if not (Bitvec.is_empty remaining) then begin
        (* Does pattern p detect any still-needed fault? *)
        let contributes = ref false in
        Array.iteri
          (fun fi v ->
            if Bitvec.get remaining fi && Bitvec.get v p then begin
              contributes := true;
              Bitvec.clear remaining fi
            end)
          map;
        keep.(p) <- !contributes
      end
    done;
    let kept =
      Array.of_list
        (List.filteri (fun p _ -> keep.(p)) (Array.to_list tests))
    in
    (kept, n - Array.length kept)
  end

let covering sim tests =
  let n = Array.length tests in
  if n = 0 then ([||], 0)
  else begin
    (* Rows: patterns; columns: faults.  detection_map is fault-major, so
       transpose while building the covering instance. *)
    let map = Fault_sim.detection_map sim tests in
    let nf = Array.length map in
    let rows = Array.init n (fun _ -> Bitvec.create nf) in
    Array.iteri
      (fun fi per_pattern ->
        Bitvec.iter_ones (fun p -> Bitvec.set rows.(p) fi) per_pattern)
      map;
    let m = Matrix.of_rows ~cols:nf rows in
    let solution = Solution.solve m in
    let keep = Array.make n false in
    List.iter (fun p -> keep.(p) <- true) solution.Solution.rows;
    let kept =
      Array.of_list (List.filteri (fun p _ -> keep.(p)) (Array.to_list tests))
    in
    (kept, n - Array.length kept)
  end
