(** SCOAP-style testability measures.

    Combinational controllability (CC0/CC1: a cost to set a node to 0/1)
    and observability (CO: a cost to propagate a node to a primary
    output).  PODEM uses them to choose branch orders: set the hardest
    non-controlling side-input first, propagate through the most
    observable D-frontier gate.  Goldstein's classic definitions. *)

open Reseed_netlist

type t = private { cc0 : int array; cc1 : int array; co : int array }

(** [compute c] evaluates all three measures in two linear passes.
    Values are clamped to avoid overflow on pathological netlists. *)
val compute : Circuit.t -> t

(** [cost_to_set t node value] is CC0 or CC1. *)
val cost_to_set : t -> int -> bool -> int
