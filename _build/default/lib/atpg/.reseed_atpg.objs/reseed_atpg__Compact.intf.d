lib/atpg/compact.mli: Fault_sim Reseed_fault
