lib/atpg/satpg.mli: Circuit Fault Reseed_fault Reseed_netlist Reseed_util Rng
