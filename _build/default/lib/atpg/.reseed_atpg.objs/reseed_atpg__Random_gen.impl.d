lib/atpg/random_gen.ml: Array Bitvec Circuit Fault_sim List Reseed_fault Reseed_netlist Reseed_util Rng
