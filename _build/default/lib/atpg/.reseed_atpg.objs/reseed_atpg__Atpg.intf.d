lib/atpg/atpg.mli: Bitvec Circuit Fault_sim Podem Reseed_fault Reseed_netlist Reseed_util
