lib/atpg/satpg.ml: Array Bitvec Circuit Fault Fault_sim Gate List Reseed_fault Reseed_netlist Reseed_sat Reseed_util Sat
