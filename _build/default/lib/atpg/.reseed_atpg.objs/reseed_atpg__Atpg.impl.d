lib/atpg/atpg.ml: Array Bitvec Compact Fault Fault_sim List Podem Random_gen Reseed_fault Reseed_util Rng Satpg Stats Testability
