lib/atpg/ternary.ml: Array Circuit Fault Gate Reseed_fault Reseed_netlist
