lib/atpg/testability.ml: Array Circuit Gate Reseed_netlist
