lib/atpg/random_gen.mli: Bitvec Fault_sim Reseed_fault Reseed_util Rng
