lib/atpg/testability.mli: Circuit Reseed_netlist
