lib/atpg/podem.ml: Array Circuit Fault Gate Option Reseed_fault Reseed_netlist Reseed_util Rng Ternary Testability
