lib/atpg/compact.ml: Array Bitvec Fault_sim List Matrix Reseed_fault Reseed_setcover Reseed_util Solution
