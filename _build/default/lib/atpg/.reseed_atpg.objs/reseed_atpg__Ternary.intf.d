lib/atpg/ternary.mli: Circuit Gate Reseed_fault Reseed_netlist
