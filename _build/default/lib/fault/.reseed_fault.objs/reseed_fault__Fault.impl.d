lib/fault/fault.ml: Array Circuit Gate Printf Reseed_netlist Seq Stdlib
