lib/fault/fault_sim.ml: Array Bitvec Circuit Fault Gate List Logic_sim Reseed_netlist Reseed_sim Reseed_util Stats
