lib/fault/diagnose.ml: Array Bitvec Fault_sim Hashtbl List Option Reseed_util
