lib/fault/fault_sim.mli: Bitvec Circuit Fault Reseed_netlist Reseed_util
