lib/fault/fault.mli: Circuit Reseed_netlist
