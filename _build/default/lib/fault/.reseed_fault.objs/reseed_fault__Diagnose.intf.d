lib/fault/diagnose.mli: Bitvec Fault_sim Reseed_util
