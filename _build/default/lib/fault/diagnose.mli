(** Dictionary-based fault diagnosis.

    Once a BIST session reports failing patterns, the classic way to
    locate the defect is a *fault dictionary*: the precomputed
    pass/fail signature of every modelled fault under the applied test
    set.  Diagnosis ranks faults by how well their stored signature
    matches the observed one.  Equivalent faults share a signature and
    are reported together as one candidate class. *)

open Reseed_util

type t

(** [build sim tests] fault-simulates the whole fault list against
    [tests] and stores one pass/fail signature (bit per pattern) per
    fault. *)
val build : Fault_sim.t -> bool array array -> t

val test_count : t -> int
val fault_count : t -> int

(** [signature t fi] is fault [fi]'s stored signature. *)
val signature : t -> int -> Bitvec.t

type candidate = {
  faults : int list;  (** fault indices sharing this signature *)
  distance : int;  (** Hamming distance to the observed signature *)
}

(** [diagnose t ~observed ?max_candidates ()] ranks candidate classes by
    ascending signature distance (0 = exact explanation).  Faults whose
    signature is empty (never detected by the test set) are excluded —
    they cannot explain any failure.  [observed] must have one bit per
    test pattern. *)
val diagnose : t -> observed:Bitvec.t -> ?max_candidates:int -> unit -> candidate list

(** [observe_fault t fi] is the signature the tester would record if
    fault [fi] were present — for closing the loop in tests and demos. *)
val observe_fault : t -> int -> Bitvec.t

(** [resolution t] is the number of distinct non-empty signatures — the
    dictionary's diagnostic resolution. *)
val resolution : t -> int
