(** Single stuck-at fault model.

    Faults live on gate output stems ([Out]) and on gate input pins whose
    driving stem has fanout greater than one ([Pin] — fanout-branch
    faults; for fanout-free stems the branch fault is equivalent to the
    stem fault and is never enumerated). *)

open Reseed_netlist

type site =
  | Out of int  (** output stem of the node with this index *)
  | Pin of { gate : int; pin : int }  (** fanout branch into [gate]'s pin *)

type t = { site : site; stuck : bool  (** [false] = s-a-0, [true] = s-a-1 *) }

(** [site_node f] is the node whose output function the fault perturbs:
    the stem node for [Out], the consuming gate for [Pin]. *)
val site_node : t -> int

(** [universe c] enumerates the full (uncollapsed) fault list, in a
    deterministic order: node by node, s-a-0 before s-a-1. *)
val universe : Circuit.t -> t array

(** [collapse c faults] removes structurally equivalent faults, keeping a
    canonical representative per class (gate-output side):
    - AND/NAND input s-a-0 ≡ output s-a-0/1; OR/NOR input s-a-1 likewise;
    - BUF/NOT input faults fold into output faults;
    - fanout-free branch faults never appear (see [universe]). *)
val collapse : Circuit.t -> t array -> t array

(** [all c] is [collapse c (universe c)] — the target fault list [F]. *)
val all : Circuit.t -> t array

(** [collapse_dominance c faults] additionally removes faults *dominated*
    by another listed fault — any test for the dominator necessarily
    detects the dominated fault, so complete coverage of the reduced list
    implies complete coverage of [faults]:
    - AND/NAND output stuck in the non-controlled sense (s-a-1 / s-a-0) is
      dominated by every input s-a-1;
    - OR/NOR output s-a-0 / s-a-1 likewise by every input s-a-0.
    Unlike equivalence collapsing this changes per-fault accounting (a
    dominated fault's detection is implied, not identical), so it is an
    opt-in refinement, not part of {!all}. *)
val collapse_dominance : Circuit.t -> t array -> t array

(** [all_collapsed c] is the fully collapsed list:
    [collapse_dominance c (all c)]. *)
val all_collapsed : Circuit.t -> t array

val equal : t -> t -> bool
val compare : t -> t -> int

(** [to_string c f] renders e.g. ["G10/SA0"] or ["G7->G10.2/SA1"]. *)
val to_string : Circuit.t -> t -> string
