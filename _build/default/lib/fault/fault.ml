open Reseed_netlist

type site = Out of int | Pin of { gate : int; pin : int }

type t = { site : site; stuck : bool }

let site_node f = match f.site with Out n -> n | Pin { gate; _ } -> gate

let universe c =
  let acc = ref [] in
  let n = Circuit.node_count c in
  for i = n - 1 downto 0 do
    let node = c.Circuit.nodes.(i) in
    (* Branch faults, only where the driving stem has fanout > 1. *)
    (match node.Circuit.kind with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | _ ->
        for pin = Array.length node.Circuit.fanins - 1 downto 0 do
          let stem = node.Circuit.fanins.(pin) in
          if Array.length c.Circuit.fanouts.(stem) > 1 then begin
            acc := { site = Pin { gate = i; pin }; stuck = true } :: !acc;
            acc := { site = Pin { gate = i; pin }; stuck = false } :: !acc
          end
        done);
    (match node.Circuit.kind with
    | Gate.Const0 | Gate.Const1 -> () (* constants are untestable by definition *)
    | _ ->
        acc := { site = Out i; stuck = true } :: !acc;
        acc := { site = Out i; stuck = false } :: !acc)
  done;
  Array.of_list !acc

let collapse c faults =
  let is_po = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
  let keep fault =
    match fault.site with
    | Out stem when is_po.(stem) -> true (* observable directly: never fold *)
    | Out stem -> (
        (* A BUF/NOT output fault is equivalent to a fault on its single
           input; keep the representative closest to the primary outputs,
           i.e. drop the *input-side* fault instead (handled below), keep
           stems. For single-fanout stems feeding BUF/NOT the downstream
           output fault subsumes this stem fault. *)
        match c.Circuit.fanouts.(stem) with
        | [| sink |] -> (
            match c.Circuit.nodes.(sink).Circuit.kind with
            | Gate.Buf | Gate.Not -> false (* folded into [Out sink] *)
            | _ -> true)
        | _ -> true)
    | Pin { gate; pin = _ } -> (
        match c.Circuit.nodes.(gate).Circuit.kind with
        | Gate.And | Gate.Nand -> fault.stuck (* input s-a-0 ≡ output fault *)
        | Gate.Or | Gate.Nor -> not fault.stuck (* input s-a-1 ≡ output fault *)
        | Gate.Buf | Gate.Not -> false (* input fault ≡ output fault *)
        | _ -> true)
  in
  Array.of_seq (Seq.filter keep (Array.to_seq faults))

let all c = collapse c (universe c)

let collapse_dominance c faults =
  let keep fault =
    match fault.site with
    | Pin _ -> true
    | Out g -> (
        let node = c.Circuit.nodes.(g) in
        (* The dominated output sense, if any, for this gate kind. *)
        let dominated_sense =
          match node.Circuit.kind with
          | Gate.And -> Some true (* out s-a-1 dominated by any input s-a-1 *)
          | Gate.Nand -> Some false
          | Gate.Or -> Some false
          | Gate.Nor -> Some true
          | Gate.Input | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor | Gate.Const0
          | Gate.Const1 ->
              None
        in
        match dominated_sense with
        | Some s when fault.stuck = s ->
            (* Valid only when some dominating input fault is actually in
               the collapsed list: any non-constant fanin provides one
               (a branch fault when the stem fans out, the stem's own
               output fault otherwise). *)
            let has_dominator =
              Array.exists
                (fun stem ->
                  match c.Circuit.nodes.(stem).Circuit.kind with
                  | Gate.Const0 | Gate.Const1 -> false
                  | _ -> true)
                node.Circuit.fanins
            in
            not has_dominator
        | _ -> true)
  in
  Array.of_seq (Seq.filter keep (Array.to_seq faults))

let all_collapsed c = collapse_dominance c (all c)

let equal a b = a = b

let compare = Stdlib.compare

let to_string c f =
  let sa = if f.stuck then "SA1" else "SA0" in
  match f.site with
  | Out n -> Printf.sprintf "%s/%s" c.Circuit.nodes.(n).Circuit.label sa
  | Pin { gate; pin } ->
      let stem = c.Circuit.nodes.(gate).Circuit.fanins.(pin) in
      Printf.sprintf "%s->%s.%d/%s"
        c.Circuit.nodes.(stem).Circuit.label
        c.Circuit.nodes.(gate).Circuit.label pin sa
