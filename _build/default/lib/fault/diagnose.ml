open Reseed_util

type t = { n_tests : int; signatures : Bitvec.t array }

let build sim tests =
  { n_tests = Array.length tests; signatures = Fault_sim.detection_map sim tests }

let test_count t = t.n_tests
let fault_count t = Array.length t.signatures

let signature t fi = t.signatures.(fi)

type candidate = { faults : int list; distance : int }

let diagnose t ~observed ?(max_candidates = 10) () =
  if Bitvec.length observed <> t.n_tests then
    invalid_arg "Diagnose.diagnose: observed signature width mismatch";
  (* Group faults by signature, then rank classes by Hamming distance. *)
  let classes = Hashtbl.create 256 in
  Array.iteri
    (fun fi s ->
      if not (Bitvec.is_empty s) then begin
        let key = Bitvec.to_list s in
        let previous = Option.value ~default:[] (Hashtbl.find_opt classes key) in
        Hashtbl.replace classes key (fi :: previous)
      end)
    t.signatures;
  let scored =
    Hashtbl.fold
      (fun _key faults acc ->
        let representative = List.hd faults in
        let s = t.signatures.(representative) in
        let distance =
          Bitvec.count_diff s observed + Bitvec.count_diff observed s
        in
        { faults = List.sort compare faults; distance } :: acc)
      classes []
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.distance b.distance in
        if c <> 0 then c else compare a.faults b.faults)
      scored
  in
  List.filteri (fun i _ -> i < max_candidates) sorted

let observe_fault t fi = Bitvec.copy t.signatures.(fi)

let resolution t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun s -> if not (Bitvec.is_empty s) then Hashtbl.replace seen (Bitvec.to_list s) ())
    t.signatures;
  Hashtbl.length seen
