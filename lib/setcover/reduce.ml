open Reseed_util

type config = {
  row_dominance : bool;
  col_dominance : bool;
  essentials : bool;
  col_dominance_limit : int;
}

let default_config =
  {
    row_dominance = true;
    col_dominance = true;
    essentials = true;
    col_dominance_limit = 6000;
  }

type result = {
  necessary : int list;
  remaining_rows : int list;
  remaining_cols : int list;
  iterations : int;
  rows_dominated : int;
  cols_dominated : int;
}

let m_iterations =
  Metrics.counter ~help:"reduction fixpoint iterations" "reduce_iterations"

let m_essential =
  Metrics.counter ~help:"rows selected as essential" "reduce_essential_rows"

let m_rows_dom =
  Metrics.counter ~help:"rows dropped by row dominance" "reduce_rows_dominated"

let m_cols_dedup =
  Metrics.counter ~help:"columns dropped as duplicates" "reduce_cols_deduped"

let m_cols_dom =
  Metrics.counter ~help:"columns dropped by column dominance" "reduce_cols_dominated"

let m_coldom_skipped =
  Metrics.counter
    ~help:"column-dominance passes skipped (instance over the column limit)"
    "reduce_coldom_skipped"

let run ?(config = default_config) ?row_weights m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  Trace.with_span "reduce.run"
    ~args:[ ("rows", string_of_int n_rows); ("cols", string_of_int n_cols) ]
  @@ fun () ->
  (match row_weights with
  | Some w when Array.length w <> n_rows ->
      invalid_arg "Reduce.run: row_weights size mismatch"
  | _ -> ());
  (* Dropping row i in favour of k is optimum-preserving only when k is
     not more expensive. *)
  let weight_ok ~dropped ~kept =
    match row_weights with
    | None -> true
    | Some w -> w.(kept) <= w.(dropped)
  in
  (* For rows with identical covers only one may be dropped; prefer the
     more expensive one, then the higher index. *)
  let tie_break ~dropped ~kept =
    match row_weights with
    | None -> dropped > kept
    | Some w -> w.(kept) < w.(dropped) || (w.(kept) = w.(dropped) && dropped > kept)
  in
  let row_active = Array.make n_rows true in
  let col_active = Array.make n_cols true in
  let col_mask = Bitvec.create n_cols in
  Bitvec.fill_all col_mask;
  (* Columns no row covers can never be satisfied: drop them up front. *)
  List.iter
    (fun j ->
      col_active.(j) <- false;
      Bitvec.clear col_mask j)
    (Matrix.uncoverable m);
  let necessary = ref [] in
  let rows_dominated = ref 0 and cols_dominated = ref 0 in
  let cols_deduped = ref 0 in
  let drop_row i = row_active.(i) <- false in
  let drop_col j =
    col_active.(j) <- false;
    Bitvec.clear col_mask j
  in
  let select_row i =
    necessary := i :: !necessary;
    drop_row i;
    Rowset.iter_ones (fun j -> if col_active.(j) then drop_col j) (Matrix.rowset m i)
  in
  (* Every pass below streams row-major over the row sets: the column
     view is never materialised (beyond the bounded shard the dominance
     pass builds for at most [col_dominance_limit] columns), so peak
     memory stays O(rows + cols + shard) whatever the matrix size. *)
  let pass_essentials () =
    Trace.with_span "reduce.essentials" @@ fun () ->
    let changed = ref false in
    (* One pass over the active rows: per active column, how many active
       rows cover it and the lowest-indexed one.  Selecting a row during
       the scan below removes only columns that row covers, so the
       counts of the columns still active — which that row by definition
       does not cover — are unchanged; the snapshot stays exact for the
       whole pass. *)
    let cover_count = Array.make n_cols 0 in
    let cover_row = Array.make n_cols (-1) in
    for i = n_rows - 1 downto 0 do
      if row_active.(i) then
        Rowset.iter_ones
          (fun j ->
            if col_active.(j) then begin
              cover_count.(j) <- cover_count.(j) + 1;
              (* Descending row scan: the last writer is the lowest row. *)
              cover_row.(j) <- i
            end)
          (Matrix.rowset m i)
    done;
    for j = 0 to n_cols - 1 do
      if col_active.(j) && cover_count.(j) = 1 && cover_row.(j) >= 0 then begin
        select_row cover_row.(j);
        changed := true
      end
    done;
    !changed
  in
  let active_rows () =
    let acc = ref [] in
    for i = n_rows - 1 downto 0 do
      if row_active.(i) then acc := i :: !acc
    done;
    !acc
  in
  let active_cols () =
    let acc = ref [] in
    for j = n_cols - 1 downto 0 do
      if col_active.(j) then acc := j :: !acc
    done;
    !acc
  in
  (* Row dominance drops exactly the rows that are non-maximal under the
     strict partial order "covers a subset (within the active columns)
     and is no cheaper, ties broken towards the lower index".  The order
     is transitive even with weights (a dominator is never more
     expensive than what it dominates), so the surviving set is unique —
     the streaming pass may discover drops in any order and still land
     on the sweep-to-fixpoint result of comparing all pairs. *)
  let pass_row_dominance () =
    Trace.with_span "reduce.row_dominance" @@ fun () ->
    let changed = ref false in
    let rows = Array.of_list (active_rows ()) in
    let counts =
      Array.map (fun i -> Rowset.count_inter (Matrix.rowset m i) col_mask) rows
    in
    let n = Array.length rows in
    (* Identical (masked) covers first, via one hash pass: the survivor
       of each class is its cheapest, lowest-index member — the only one
       the pairwise tie-break would keep. *)
    let seen = Hashtbl.create (max 16 n) in
    for a = 0 to n - 1 do
      let i = rows.(a) in
      let key =
        Rowset.fold_ones
          (fun acc j -> if col_active.(j) then j :: acc else acc)
          [] (Matrix.rowset m i)
      in
      match Hashtbl.find_opt seen key with
      | None -> Hashtbl.add seen key a
      | Some b ->
          let k = rows.(b) in
          if tie_break ~dropped:i ~kept:k && weight_ok ~dropped:i ~kept:k then begin
            drop_row i;
            incr rows_dominated;
            changed := true
          end
          else if tie_break ~dropped:k ~kept:i && weight_ok ~dropped:k ~kept:i
          then begin
            drop_row k;
            Hashtbl.replace seen key a;
            incr rows_dominated;
            changed := true
          end
    done;
    (* Strict-subset dominance among the distinct survivors.  Equal
       counts are either equal covers (already handled) or incomparable,
       so only strictly larger rows can dominate. *)
    let order = Array.init n (fun a -> a) in
    Array.sort (fun a b -> compare counts.(a) counts.(b)) order;
    let live = Array.init n (fun a -> row_active.(rows.(a))) in
    for oa = 0 to n - 1 do
      let a = order.(oa) in
      if live.(a) then begin
        let i = rows.(a) in
        let ob = ref (n - 1) in
        let dropped = ref false in
        while (not !dropped) && !ob >= 0 && counts.(order.(!ob)) > counts.(a) do
          let b = order.(!ob) in
          let k = rows.(b) in
          (* Compare against every distinct survivor of the dedup step,
             dropped later by its own dominator or not: dominance is
             transitive, so a transitive dominator always survives. *)
          if
            live.(b)
            && weight_ok ~dropped:i ~kept:k
            && Rowset.subset_masked (Matrix.rowset m i) (Matrix.rowset m k)
                 ~mask:col_mask
          then begin
            drop_row i;
            incr rows_dominated;
            changed := true;
            dropped := true
          end;
          decr ob
        done
      end
    done;
    !changed
  in
  (* Identical columns (faults detected by exactly the same triplets) are
     rampant in detection matrices — every easy fault is covered by every
     row.  Find the exact equivalence classes by partition refinement,
     one row-major pass over the ones: columns start in one class and
     each active row splits every class it straddles.  O(ones) time,
     O(cols) memory, no transpose and no hashing of full row lists. *)
  let pass_col_dedup () =
    Trace.with_span "reduce.col_dedup" @@ fun () ->
    let changed = ref false in
    let part = Array.make n_cols 0 in
    let next_id = ref 1 in
    let renamed = Hashtbl.create 64 in
    for i = 0 to n_rows - 1 do
      if row_active.(i) then begin
        Hashtbl.reset renamed;
        Rowset.iter_ones
          (fun j ->
            if col_active.(j) then
              match Hashtbl.find_opt renamed part.(j) with
              | Some id -> part.(j) <- id
              | None ->
                  let id = !next_id in
                  incr next_id;
                  Hashtbl.add renamed part.(j) id;
                  part.(j) <- id)
          (Matrix.rowset m i)
      end
    done;
    (* Classmates not covered by a row keep the old id while the covered
       ones move to a fresh one, so equal final ids <=> equal active-row
       sets.  First-seen (lowest index) of each class survives. *)
    let seen = Hashtbl.create 1024 in
    for j = 0 to n_cols - 1 do
      if col_active.(j) then
        if Hashtbl.mem seen part.(j) then begin
          drop_col j;
          incr cols_deduped;
          changed := true
        end
        else Hashtbl.add seen part.(j) ()
    done;
    !changed
  in
  let pass_col_dominance () =
    Trace.with_span "reduce.col_dominance" @@ fun () ->
    let cols = Array.of_list (active_cols ()) in
    let n = Array.length cols in
    (* The comparisons below are quadratic in active columns; beyond the
       configured limit the pass is skipped for the iteration
       (essentiality and row dominance will usually shrink the instance
       below it). *)
    if n > config.col_dominance_limit then begin
      Metrics.incr m_coldom_skipped;
      Trace.instant "reduce.col_dominance_skipped"
        ~args:
          [
            ("cols", string_of_int n);
            ("limit", string_of_int config.col_dominance_limit);
          ];
      false
    end
    else begin
      let changed = ref false in
      (* One-shot transposed shard restricted to the surviving columns —
         at most [col_dominance_limit] x rows bits — filled in a single
         row-major pass over the active rows. *)
      let pos = Hashtbl.create (max 16 n) in
      Array.iteri (fun a j -> Hashtbl.replace pos j a) cols;
      let colbits = Array.init n (fun _ -> Bitvec.create n_rows) in
      for i = 0 to n_rows - 1 do
        if row_active.(i) then
          Rowset.iter_ones
            (fun j ->
              match Hashtbl.find_opt pos j with
              | Some a -> Bitvec.unsafe_set colbits.(a) i
              | None -> ())
            (Matrix.rowset m i)
      done;
      let counts = Array.map Bitvec.count colbits in
      for a = 0 to n - 1 do
        let c2 = cols.(a) in
        if col_active.(c2) then
          for bidx = 0 to n - 1 do
            let c1 = cols.(bidx) in
            if
              c1 <> c2 && col_active.(c2) && col_active.(c1)
              && counts.(bidx) <= counts.(a)
            then
              (* rows(c1) ⊆ rows(c2): covering c1 implies covering c2. *)
              if
                Bitvec.subset colbits.(bidx) colbits.(a)
                && (counts.(bidx) < counts.(a) || c2 > c1)
              then begin
                drop_col c2;
                incr cols_dominated;
                changed := true
              end
          done
      done;
      !changed
    end
  in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let c1 = if config.essentials then pass_essentials () else false in
    let c2 = if config.row_dominance then pass_row_dominance () else false in
    let c3 =
      if config.col_dominance then begin
        let deduped = pass_col_dedup () in
        pass_col_dominance () || deduped
      end
      else false
    in
    continue := c1 || c2 || c3
  done;
  (* Rows left with no active column contribute nothing. *)
  List.iter
    (fun i ->
      if Rowset.count_inter (Matrix.rowset m i) col_mask = 0 then drop_row i)
    (active_rows ());
  Metrics.add m_iterations !iterations;
  Metrics.add m_essential (List.length !necessary);
  Metrics.add m_rows_dom !rows_dominated;
  Metrics.add m_cols_dedup !cols_deduped;
  Metrics.add m_cols_dom !cols_dominated;
  {
    necessary = List.rev !necessary;
    remaining_rows = active_rows ();
    remaining_cols = active_cols ();
    iterations = !iterations;
    rows_dominated = !rows_dominated;
    (* Duplicate and dominated columns have always been reported together
       in this field; the metrics registry splits them. *)
    cols_dominated = !cols_deduped + !cols_dominated;
  }

let residual m result =
  let rows = Array.of_list result.remaining_rows in
  let cols = Array.of_list result.remaining_cols in
  let col_index = Hashtbl.create (Array.length cols) in
  Array.iteri (fun idx j -> Hashtbl.replace col_index j idx) cols;
  let sub = Matrix.create ~rows:(Array.length rows) ~cols:(Array.length cols) in
  Array.iteri
    (fun ri i ->
      Bitvec.iter_ones
        (fun j ->
          match Hashtbl.find_opt col_index j with
          | Some cj -> Matrix.set sub ~row:ri ~col:cj
          | None -> ())
        (Matrix.row m i))
    rows;
  (sub, rows, cols)

let cover_of m rows =
  let u = Bitvec.create (Matrix.cols m) in
  List.iter (fun i -> Bitvec.union_into ~into:u (Matrix.row m i)) rows;
  u
