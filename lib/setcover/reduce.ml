open Reseed_util

type config = {
  row_dominance : bool;
  col_dominance : bool;
  essentials : bool;
  col_dominance_limit : int;
}

let default_config =
  {
    row_dominance = true;
    col_dominance = true;
    essentials = true;
    col_dominance_limit = 6000;
  }

type result = {
  necessary : int list;
  remaining_rows : int list;
  remaining_cols : int list;
  iterations : int;
  rows_dominated : int;
  cols_dominated : int;
}

let m_iterations =
  Metrics.counter ~help:"reduction fixpoint iterations" "reduce_iterations"

let m_essential =
  Metrics.counter ~help:"rows selected as essential" "reduce_essential_rows"

let m_rows_dom =
  Metrics.counter ~help:"rows dropped by row dominance" "reduce_rows_dominated"

let m_cols_dedup =
  Metrics.counter ~help:"columns dropped as duplicates" "reduce_cols_deduped"

let m_cols_dom =
  Metrics.counter ~help:"columns dropped by column dominance" "reduce_cols_dominated"

let m_coldom_skipped =
  Metrics.counter
    ~help:"column-dominance passes skipped (instance over the column limit)"
    "reduce_coldom_skipped"

let run ?(config = default_config) ?row_weights m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  Trace.with_span "reduce.run"
    ~args:[ ("rows", string_of_int n_rows); ("cols", string_of_int n_cols) ]
  @@ fun () ->
  (match row_weights with
  | Some w when Array.length w <> n_rows ->
      invalid_arg "Reduce.run: row_weights size mismatch"
  | _ -> ());
  (* Dropping row i in favour of k is optimum-preserving only when k is
     not more expensive. *)
  let weight_ok ~dropped ~kept =
    match row_weights with
    | None -> true
    | Some w -> w.(kept) <= w.(dropped)
  in
  (* For rows with identical covers only one may be dropped; prefer the
     more expensive one, then the higher index. *)
  let tie_break ~dropped ~kept =
    match row_weights with
    | None -> dropped > kept
    | Some w -> w.(kept) < w.(dropped) || (w.(kept) = w.(dropped) && dropped > kept)
  in
  let row_active = Array.make n_rows true in
  let col_active = Array.make n_cols true in
  let row_mask = Bitvec.create n_rows in
  let col_mask = Bitvec.create n_cols in
  Bitvec.fill_all row_mask;
  Bitvec.fill_all col_mask;
  (* Columns no row covers can never be satisfied: drop them up front. *)
  List.iter
    (fun j ->
      col_active.(j) <- false;
      Bitvec.clear col_mask j)
    (Matrix.uncoverable m);
  let necessary = ref [] in
  let rows_dominated = ref 0 and cols_dominated = ref 0 in
  let cols_deduped = ref 0 in
  let drop_row i =
    row_active.(i) <- false;
    Bitvec.clear row_mask i
  in
  let drop_col j =
    col_active.(j) <- false;
    Bitvec.clear col_mask j
  in
  let select_row i =
    necessary := i :: !necessary;
    drop_row i;
    Bitvec.iter_ones (fun j -> if col_active.(j) then drop_col j) (Matrix.row m i)
  in
  let pass_essentials () =
    Trace.with_span "reduce.essentials" @@ fun () ->
    let changed = ref false in
    for j = 0 to n_cols - 1 do
      if col_active.(j) then begin
        let cover = Matrix.col m j in
        let count = Bitvec.count_inter cover row_mask in
        if count = 1 then begin
          let r = ref (-1) in
          Bitvec.iter_ones (fun i -> if !r < 0 && row_active.(i) then r := i) cover;
          if !r >= 0 then begin
            select_row !r;
            changed := true
          end
        end
      end
    done;
    !changed
  in
  let active_rows () =
    let acc = ref [] in
    for i = n_rows - 1 downto 0 do
      if row_active.(i) then acc := i :: !acc
    done;
    !acc
  in
  let active_cols () =
    let acc = ref [] in
    for j = n_cols - 1 downto 0 do
      if col_active.(j) then acc := j :: !acc
    done;
    !acc
  in
  let pass_row_dominance () =
    Trace.with_span "reduce.row_dominance" @@ fun () ->
    let changed = ref false in
    let rows = Array.of_list (active_rows ()) in
    let counts =
      Array.map (fun i -> Bitvec.count_inter (Matrix.row m i) col_mask) rows
    in
    let n = Array.length rows in
    for a = 0 to n - 1 do
      let i = rows.(a) in
      if row_active.(i) then
        for bidx = 0 to n - 1 do
          let k = rows.(bidx) in
          if k <> i && row_active.(i) && row_active.(k) && counts.(a) <= counts.(bidx)
          then
            (* Equal covers: drop the higher index only. *)
            if
              weight_ok ~dropped:i ~kept:k
              && Bitvec.subset_masked (Matrix.row m i) (Matrix.row m k) ~mask:col_mask
              && (counts.(a) < counts.(bidx) || tie_break ~dropped:i ~kept:k)
            then begin
              drop_row i;
              incr rows_dominated;
              changed := true
            end
        done
    done;
    !changed
  in
  (* Identical columns (faults detected by exactly the same triplets) are
     rampant in detection matrices — every easy fault is covered by every
     row.  Deduplicate them in one linear hash pass so the quadratic
     dominance pass only sees distinct columns. *)
  let pass_col_dedup () =
    Trace.with_span "reduce.col_dedup" @@ fun () ->
    let seen = Hashtbl.create 1024 in
    let changed = ref false in
    for j = 0 to n_cols - 1 do
      if col_active.(j) then begin
        let key =
          Bitvec.fold_ones
            (fun acc i -> if row_active.(i) then i :: acc else acc)
            [] (Matrix.col m j)
        in
        if Hashtbl.mem seen key then begin
          drop_col j;
          incr cols_deduped;
          changed := true
        end
        else Hashtbl.add seen key ()
      end
    done;
    !changed
  in
  let pass_col_dominance () =
    Trace.with_span "reduce.col_dominance" @@ fun () ->
    let cols = Array.of_list (active_cols ()) in
    let n = Array.length cols in
    (* The comparisons below are quadratic in active columns; beyond the
       configured limit the pass is skipped for the iteration
       (essentiality and row dominance will usually shrink the instance
       below it). *)
    if n > config.col_dominance_limit then begin
      Metrics.incr m_coldom_skipped;
      Trace.instant "reduce.col_dominance_skipped"
        ~args:
          [
            ("cols", string_of_int n);
            ("limit", string_of_int config.col_dominance_limit);
          ];
      false
    end
    else begin
      let changed = ref false in
      let counts =
        Array.map (fun j -> Bitvec.count_inter (Matrix.col m j) row_mask) cols
      in
      for a = 0 to n - 1 do
        let c2 = cols.(a) in
        if col_active.(c2) then
          for bidx = 0 to n - 1 do
            let c1 = cols.(bidx) in
            if
              c1 <> c2 && col_active.(c2) && col_active.(c1)
              && counts.(bidx) <= counts.(a)
            then
              (* rows(c1) ⊆ rows(c2): covering c1 implies covering c2. *)
              if
                Bitvec.subset_masked (Matrix.col m c1) (Matrix.col m c2) ~mask:row_mask
                && (counts.(bidx) < counts.(a) || c2 > c1)
              then begin
                drop_col c2;
                incr cols_dominated;
                changed := true
              end
          done
      done;
      !changed
    end
  in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let c1 = if config.essentials then pass_essentials () else false in
    let c2 = if config.row_dominance then pass_row_dominance () else false in
    let c3 =
      if config.col_dominance then begin
        let deduped = pass_col_dedup () in
        pass_col_dominance () || deduped
      end
      else false
    in
    continue := c1 || c2 || c3
  done;
  (* Rows left with no active column contribute nothing. *)
  List.iter
    (fun i ->
      if Bitvec.count_inter (Matrix.row m i) col_mask = 0 then drop_row i)
    (active_rows ());
  Metrics.add m_iterations !iterations;
  Metrics.add m_essential (List.length !necessary);
  Metrics.add m_rows_dom !rows_dominated;
  Metrics.add m_cols_dedup !cols_deduped;
  Metrics.add m_cols_dom !cols_dominated;
  {
    necessary = List.rev !necessary;
    remaining_rows = active_rows ();
    remaining_cols = active_cols ();
    iterations = !iterations;
    rows_dominated = !rows_dominated;
    (* Duplicate and dominated columns have always been reported together
       in this field; the metrics registry splits them. *)
    cols_dominated = !cols_deduped + !cols_dominated;
  }

let residual m result =
  let rows = Array.of_list result.remaining_rows in
  let cols = Array.of_list result.remaining_cols in
  let col_index = Hashtbl.create (Array.length cols) in
  Array.iteri (fun idx j -> Hashtbl.replace col_index j idx) cols;
  let sub = Matrix.create ~rows:(Array.length rows) ~cols:(Array.length cols) in
  Array.iteri
    (fun ri i ->
      Bitvec.iter_ones
        (fun j ->
          match Hashtbl.find_opt col_index j with
          | Some cj -> Matrix.set sub ~row:ri ~col:cj
          | None -> ())
        (Matrix.row m i))
    rows;
  (sub, rows, cols)

let cover_of m rows =
  let u = Bitvec.create (Matrix.cols m) in
  List.iter (fun i -> Bitvec.union_into ~into:u (Matrix.row m i)) rows;
  u
