(** Detection-matrix reduction (Section 3.2).

    Applies essentiality and dominance to fixpoint:

    - {b essentiality}: a column covered by exactly one active row makes
      that row necessary — it enters the solution, its covered columns
      leave the instance;
    - {b row dominance}: an active row whose (active-column) cover is a
      subset of another active row's is removed;
    - {b column dominance} (optional; classical but not named in the
      paper — see DESIGN.md ablation #1): an active column whose covering
      row set is a superset of another's is implied by it and removed.

    The paper's "the reseeding solution only contains necessary triplets"
    case is exactly [result.remaining_cols = \[\]]. *)

open Reseed_util

type config = {
  row_dominance : bool;
  col_dominance : bool;
  essentials : bool;
  col_dominance_limit : int;
      (** Column dominance is quadratic in active columns; when an
          iteration sees more than this many the pass is skipped for that
          iteration (counted by the [reduce_coldom_skipped] metric and a
          [reduce.col_dominance_skipped] trace instant).  Default 6000. *)
}

val default_config : config

type result = {
  necessary : int list;  (** essential rows, in discovery order *)
  remaining_rows : int list;  (** active rows of the reduced instance *)
  remaining_cols : int list;  (** active columns of the reduced instance *)
  iterations : int;  (** fixpoint sweeps executed *)
  rows_dominated : int;
  cols_dominated : int;
}

(** [run ?config ?row_weights m] reduces the instance.  Columns covered
    by no row at all are dropped up front (they are unreachable for any
    solution and reported by {!Matrix.uncoverable}).

    With [row_weights] (for weighted objectives such as minimum test
    length), row dominance additionally requires the dominating row to be
    no more expensive — the condition under which dropping the dominated
    row preserves the weighted optimum. *)
val run : ?config:config -> ?row_weights:float array -> Matrix.t -> result

(** [residual m result] builds the reduced sub-matrix (remaining rows ×
    remaining columns) together with the maps from its indices back to
    the original ones. *)
val residual : Matrix.t -> result -> Matrix.t * int array * int array

(** [cover_of m rows] is the union of the given rows' columns. *)
val cover_of : Matrix.t -> int list -> Bitvec.t
