open Reseed_util

type t = {
  n_rows : int;
  n_cols : int;
  rows : Rowset.t array; (* per row, over columns *)
  mutable n_ones : int; (* incremental: updated by [set] *)
  mutable universe : Bitvec.t; (* union of all rows, over columns *)
  mutable transpose : Bitvec.t array option; (* per column, over rows; lazy *)
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
  {
    n_rows = rows;
    n_cols = cols;
    rows = Array.init rows (fun _ -> Rowset.dense_of_bitvec (Bitvec.create cols));
    n_ones = 0;
    universe = Bitvec.create cols;
    transpose = None;
  }

let of_rowsets ~cols rows_arr =
  let universe = Bitvec.create cols in
  let ones = ref 0 in
  Array.iter
    (fun r ->
      if Rowset.length r <> cols then
        invalid_arg "Matrix.of_rowsets: row width mismatch";
      ones := !ones + Rowset.count r;
      Rowset.union_into ~into:universe r)
    rows_arr;
  {
    n_rows = Array.length rows_arr;
    n_cols = cols;
    rows = rows_arr;
    n_ones = !ones;
    universe;
    transpose = None;
  }

let of_rows ~cols rows_arr =
  of_rowsets ~cols
    (Array.map
       (fun v ->
         if Bitvec.length v <> cols then
           invalid_arg "Matrix.of_rows: row width mismatch";
         Rowset.of_bitvec v)
       rows_arr)

let rows m = m.n_rows
let cols m = m.n_cols

let set m ~row ~col =
  if not (Rowset.mem m.rows.(row) col) then begin
    m.rows.(row) <- Rowset.add m.rows.(row) col;
    m.n_ones <- m.n_ones + 1;
    Bitvec.set m.universe col;
    match m.transpose with
    | Some t -> Bitvec.set t.(col) row
    | None -> ()
  end

let get m ~row ~col = Rowset.mem m.rows.(row) col

let rowset m i = m.rows.(i)

let row m i = Rowset.to_bitvec m.rows.(i)

(* The transposed view is a one-shot shard: nothing scale-critical uses
   it (the reduction and both solvers' hot paths are row-only), but the
   exact end-game and the historical [col] API still read columns, so
   the first call pays one pass over the rows and later calls are
   free. *)
let transpose m =
  match m.transpose with
  | Some t -> t
  | None ->
      let t = Array.init m.n_cols (fun _ -> Bitvec.create m.n_rows) in
      Array.iteri
        (fun i r -> Rowset.iter_ones (fun j -> Bitvec.unsafe_set t.(j) i) r)
        m.rows;
      m.transpose <- Some t;
      t

let col m j = (transpose m).(j)

let universe m = m.universe

let ones m = m.n_ones

let density m =
  if m.n_rows = 0 || m.n_cols = 0 then 0.
  else float_of_int m.n_ones /. float_of_int (m.n_rows * m.n_cols)

let covers m ~rows_subset =
  let union = Bitvec.create m.n_cols in
  List.iter (fun i -> Rowset.union_into ~into:union m.rows.(i)) rows_subset;
  Bitvec.subset m.universe union

let uncoverable m =
  let acc = ref [] in
  for j = m.n_cols - 1 downto 0 do
    if not (Bitvec.get m.universe j) then acc := j :: !acc
  done;
  !acc

let pp_stats ppf m =
  Format.fprintf ppf "%dx%d, %d ones (density %.4f)" m.n_rows m.n_cols (ones m)
    (density m)
