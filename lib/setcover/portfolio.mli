(** Racing covering-solver portfolio.

    Three legs attack the same (weighted) covering instance and share
    one incumbent:

    - {b ilp} — the resumable {!Ilp} branch-and-bound, advanced a node
      quantum per round; closing the search is an optimality proof.
    - {b sat} — {!Satcover} cardinality descent: one at-most-(k−1)
      query per round against the incumbent's cardinality [k];
      [No_cover] is an optimality proof.  Built only for the uniform
      objective on instances below [sat_row_limit] rows.
    - {b grasp} — greedy with a restricted candidate list, seeded
      probabilistic tie-breaking and redundancy trimming, a batch of
      restarts per round.  Never proves; pulls the incumbent down.

    Rounds are barriers: each active leg runs one deterministic work
    quantum (concurrently on the {!Pool} when one is supplied — legs
    own their state, so results are bit-identical at every job count),
    then candidates merge in fixed leg order with strictly-better-cost
    adoption, proofs are checked in fixed priority, and the shared
    incumbent is republished.  First leg to prove optimality wins;
    budget expiry returns the best incumbent with per-leg attribution.

    Determinism: with no wall-clock budget the result is a pure
    function of the instance, the weights and [config.seed] —
    independent of pool size and scheduling.  A budget can cut a
    quantum short, so deadline runs are deterministic only up to where
    the deadline lands. *)

open Reseed_util

type config = {
  node_quantum : int;  (** ILP nodes per round *)
  node_limit : int;  (** ILP total node cap *)
  restart_quantum : int;  (** GRASP restarts per round *)
  max_restarts : int;  (** GRASP total restarts *)
  rcl_alpha : float;
      (** restricted-candidate-list width: rows within [alpha] of the
          best cost-effectiveness ratio are tie-broken randomly *)
  sat_row_limit : int;  (** SAT leg built only below this many rows *)
  sat_conflict_quantum : int;  (** initial SAT conflicts per round *)
  sat_conflict_cap : int;
      (** the allowance doubles on [Unknown]; past this the leg retires *)
  seed : int;  (** GRASP tie-breaking seed *)
}

val default_config : config

type leg_stat = {
  leg : string;  (** ["ilp"], ["sat"] or ["grasp"] *)
  rounds : int;
  work : int;  (** nodes / conflicts / restarts — the leg's own unit *)
  best_cost : float;  (** best cost the leg itself produced *)
  improvements : int;  (** rounds its candidate improved the incumbent *)
  proved : bool;
}

type result = {
  selected : int list;  (** best cover found, rows ascending *)
  cost : float;
  optimal : bool;
  stop_reason : Ilp.stop_reason;
      (** [Complete] on any proof; [Budget] on expiry; [Node_limit]
          when every leg retired unproven *)
  winner : string;  (** leg holding the final incumbent; ["seed"] if
          the greedy seed was never beaten *)
  proved_by : string option;
      (** ["ilp"], ["sat"] or ["bound"] (root dual bound) *)
  legs : leg_stat list;
  rounds : int;
  root_lb : float;  (** the root Lagrangian dual bound *)
  uncovered : int list;  (** columns no row covers, ascending *)
}

(** [solve ?config ?weights ?budget ?pool m] races the legs on [m].
    [pool] defaults to the process-wide pool ({!Pool.default}); pass an
    explicit pool to control parallelism.  When the exact leg closes
    its search inside round 1 — every table-1 instance — the answer is
    bit-identical to {!Ilp.solve} on the same matrix. *)
val solve :
  ?config:config ->
  ?weights:float array ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  Matrix.t ->
  result
