type method_ = Exact | Greedy_only | No_reduction_exact | Portfolio_race

type stats = {
  initial_rows : int;
  initial_cols : int;
  necessary : int list;
  reduced_rows : int;
  reduced_cols : int;
  from_solver : int list;
  reduction_iterations : int;
  solver_nodes : int;
  solver_optimal : bool;
  solver_stop : Ilp.stop_reason;
  degraded : bool;
  uncovered : int list;
  portfolio_legs : Portfolio.leg_stat list;
  portfolio_winner : string option;
}

type t = { rows : int list; stats : stats }

(* An exact method whose end-game stopped early delivered the incumbent
   (greedy at worst) instead of a proven optimum: record that honestly.
   [Greedy_only] is not degraded — suboptimality is the method's
   contract, not a budget casualty. *)
let is_degraded method_ stop =
  match (method_, stop) with
  | Greedy_only, _ -> false
  | (Exact | No_reduction_exact | Portfolio_race), Ilp.Complete -> false
  | (Exact | No_reduction_exact | Portfolio_race), _ -> true

let method_name = function
  | Exact -> "exact"
  | Greedy_only -> "greedy"
  | No_reduction_exact -> "noreduce"
  | Portfolio_race -> "portfolio"

let solve ?(method_ = Exact) ?reduce_config ?row_weights ?budget ?pool m =
  Reseed_util.Trace.with_span "solution.solve"
    ~args:[ ("method", method_name method_) ]
  @@ fun () ->
  (* Columns of the input matrix no row covers: unreachable whatever the
     end-game selects (undetectable faults).  Every method degrades on
     them the same way — by skipping them — so they are surfaced here
     once instead of being dropped on the floor per-solver. *)
  let uncovered = Matrix.uncoverable m in
  match method_ with
  | No_reduction_exact ->
      (* Ilp.solve itself excludes uncoverable columns and reports them,
         so the unreduced matrix goes to the solver as-is. *)
      let r = Ilp.solve ?weights:row_weights ?budget m in
      {
        rows = r.Ilp.selected;
        stats =
          {
            initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = [];
            reduced_rows = Matrix.rows m;
            reduced_cols = Matrix.cols m;
            from_solver = r.Ilp.selected;
            reduction_iterations = 0;
            solver_nodes = r.Ilp.nodes_explored;
            solver_optimal = r.Ilp.optimal;
            solver_stop = r.Ilp.stop_reason;
            degraded = is_degraded method_ r.Ilp.stop_reason;
            uncovered = r.Ilp.uncovered;
            portfolio_legs = [];
            portfolio_winner = None;
          };
      }
  | Exact | Greedy_only | Portfolio_race ->
      let red = Reduce.run ?config:reduce_config ?row_weights m in
      let residual, row_map, _col_map = Reduce.residual m red in
      let from_solver, nodes, stop, optimal, legs, winner =
        if Matrix.rows residual = 0 || Matrix.cols residual = 0 then
          ([], 0, Ilp.Complete, true, [], None)
        else
          let weights =
            Option.map (fun w -> Array.map (fun ri -> w.(ri)) row_map) row_weights
          in
          match method_ with
          | Greedy_only ->
              let picks = Greedy.solve residual in
              (List.map (fun ri -> row_map.(ri)) picks, 0, Ilp.Complete, false, [], None)
          | Portfolio_race ->
              let r = Portfolio.solve ?weights ?budget ?pool residual in
              let ilp_nodes =
                List.fold_left
                  (fun acc l ->
                    if l.Portfolio.leg = "ilp" then l.Portfolio.work else acc)
                  0 r.Portfolio.legs
              in
              ( List.map (fun ri -> row_map.(ri)) r.Portfolio.selected,
                ilp_nodes,
                r.Portfolio.stop_reason,
                r.Portfolio.optimal,
                r.Portfolio.legs,
                Some r.Portfolio.winner )
          | Exact | No_reduction_exact ->
              let r = Ilp.solve ?weights ?budget residual in
              ( List.map (fun ri -> row_map.(ri)) r.Ilp.selected,
                r.Ilp.nodes_explored,
                r.Ilp.stop_reason,
                r.Ilp.optimal,
                [],
                None )
      in
      let rows = List.sort_uniq compare (red.Reduce.necessary @ from_solver) in
      {
        rows;
        stats =
          {
            initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = red.Reduce.necessary;
            reduced_rows = Matrix.rows residual;
            reduced_cols = Matrix.cols residual;
            from_solver;
            reduction_iterations = red.Reduce.iterations;
            solver_nodes = nodes;
            solver_optimal = optimal;
            solver_stop = stop;
            degraded = is_degraded method_ stop;
            uncovered;
            portfolio_legs = legs;
            portfolio_winner = winner;
          };
      }

let verify m t = Matrix.covers m ~rows_subset:t.rows

let cardinality t = List.length t.rows
