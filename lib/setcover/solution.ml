type method_ = Exact | Greedy_only | No_reduction_exact

type stats = {
  initial_rows : int;
  initial_cols : int;
  necessary : int list;
  reduced_rows : int;
  reduced_cols : int;
  from_solver : int list;
  reduction_iterations : int;
  solver_nodes : int;
  solver_optimal : bool;
  solver_stop : Ilp.stop_reason;
  degraded : bool;
}

type t = { rows : int list; stats : stats }

(* An exact method whose end-game stopped early delivered the incumbent
   (greedy at worst) instead of a proven optimum: record that honestly.
   [Greedy_only] is not degraded — suboptimality is the method's
   contract, not a budget casualty. *)
let is_degraded method_ stop =
  match (method_, stop) with
  | Greedy_only, _ -> false
  | (Exact | No_reduction_exact), Ilp.Complete -> false
  | (Exact | No_reduction_exact), _ -> true

let method_name = function
  | Exact -> "exact"
  | Greedy_only -> "greedy"
  | No_reduction_exact -> "noreduce"

let solve ?(method_ = Exact) ?reduce_config ?row_weights ?budget m =
  Reseed_util.Trace.with_span "solution.solve"
    ~args:[ ("method", method_name method_) ]
  @@ fun () ->
  match method_ with
  | No_reduction_exact ->
      (* Ilp.solve itself excludes uncoverable columns and reports them,
         so the unreduced matrix goes to the solver as-is. *)
      let r = Ilp.solve ?weights:row_weights ?budget m in
      {
        rows = r.Ilp.selected;
        stats =
          {
            initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = [];
            reduced_rows = Matrix.rows m;
            reduced_cols = Matrix.cols m;
            from_solver = r.Ilp.selected;
            reduction_iterations = 0;
            solver_nodes = r.Ilp.nodes_explored;
            solver_optimal = r.Ilp.optimal;
            solver_stop = r.Ilp.stop_reason;
            degraded = is_degraded method_ r.Ilp.stop_reason;
          };
      }
  | Exact | Greedy_only ->
      let red = Reduce.run ?config:reduce_config ?row_weights m in
      let residual, row_map, _col_map = Reduce.residual m red in
      let from_solver, nodes, stop, optimal =
        if Matrix.rows residual = 0 || Matrix.cols residual = 0 then
          ([], 0, Ilp.Complete, true)
        else
          match method_ with
          | Greedy_only ->
              let picks = Greedy.solve residual in
              (List.map (fun ri -> row_map.(ri)) picks, 0, Ilp.Complete, false)
          | Exact | No_reduction_exact ->
              let weights =
                Option.map
                  (fun w -> Array.map (fun ri -> w.(ri)) row_map)
                  row_weights
              in
              let r = Ilp.solve ?weights ?budget residual in
              ( List.map (fun ri -> row_map.(ri)) r.Ilp.selected,
                r.Ilp.nodes_explored,
                r.Ilp.stop_reason,
                r.Ilp.optimal )
      in
      let rows = List.sort_uniq compare (red.Reduce.necessary @ from_solver) in
      {
        rows;
        stats =
          {
            initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = red.Reduce.necessary;
            reduced_rows = Matrix.rows residual;
            reduced_cols = Matrix.cols residual;
            from_solver;
            reduction_iterations = red.Reduce.iterations;
            solver_nodes = nodes;
            solver_optimal = optimal;
            solver_stop = stop;
            degraded = is_degraded method_ stop;
          };
      }

let verify m t = Matrix.covers m ~rows_subset:t.rows

let cardinality t = List.length t.rows
