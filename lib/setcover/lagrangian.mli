(** Lagrangian lower bounds for (weighted) set covering.

    Relaxing the covering constraints with multipliers [u ≥ 0] gives
    [L(u) = Σ_j u_j + Σ_i min(0, w_i − u·row_i)], a valid lower bound on
    the optimal cover cost for {e any} feasible [u].  {!optimize} runs a
    few subgradient-ascent iterations (Held–Karp step control) at the
    root of the branch-and-bound; the resulting multipliers then price
    every subproblem through {!node_bound} at O(|need|) per node —
    strictly row-wise, never materialising the column view, so the bound
    scales to the xl tier.

    Used two ways by the solver stack: {!Ilp.solve} takes [lb ≥ ub − ε]
    as an optimality proof for its greedy seed without branching, and
    both the standalone ILP and the portfolio's racing legs prune with
    [max(independent-column bound, node_bound)]. *)

open Reseed_util

type t = {
  lb : float;  (** the best dual bound reached *)
  u : float array;
      (** multipliers per column (0 outside the coverable universe) *)
  slack : float;  (** Σ_i min(0, w_i − u·row_i) at those multipliers *)
}

(** [optimize ?iters ~ub ~weights m] — [iters] subgradient steps
    (default 25); [ub] is a known upper bound (greedy cost) steering the
    step size.  Deterministic. *)
val optimize : ?iters:int -> ub:float -> weights:float array -> Matrix.t -> t

(** [node_bound t need] is a lower bound on covering exactly the columns
    of [need] — monotone in [need], valid for every subproblem of the
    matrix [t] was optimised on. *)
val node_bound : t -> Bitvec.t -> float
