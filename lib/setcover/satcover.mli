(** SAT/cardinality encoding of unweighted set covering — the
    portfolio's third racing leg.

    Rows become Boolean selection variables, every coverable column a
    positive clause over the rows that cover it, and the cardinality
    objective a one-directional Sinz sequential counter whose outputs
    can be assumed off: [solve_at_most ~k] asks the {!Sat} solver for a
    cover of at most [k] rows under the single assumption
    [¬"at least k+1 selected"].  The encoding is built once per
    instance; successive calls with decreasing [k] reuse the clause
    database and only swap the assumption, so the leg walks the
    incumbent down one cardinality at a time and a [No_cover] at
    [k = best − 1] is an optimality proof.

    Only meaningful for the cardinality objective (all weights equal);
    the portfolio gates this leg accordingly. *)

open Reseed_util

type t

type outcome =
  | Cover of int list  (** a cover of at most [k] rows, ascending order *)
  | No_cover  (** proven: no cover of [≤ k] rows exists *)
  | Unknown  (** conflict or wall-clock budget exhausted *)

(** [create ~ub m] encodes [m]'s covering constraints plus a sequential
    counter sized for bounds up to [ub − 1] (the initial incumbent's
    cardinality makes at-most-[ub − 1] the first useful query).
    Uncoverable columns are skipped — the same silent degradation as
    {!Greedy.solve}. *)
val create : ub:int -> Matrix.t -> t

(** [solve_at_most t ~k ~max_conflicts ?budget ()] decides whether a
    cover of at most [k] rows exists.  [k ≥ rows] is vacuous (the cover
    clauses alone decide it); otherwise [k ≥ ub] raises
    [Invalid_argument] (the counter was not encoded that far); [k < 0]
    is trivially [No_cover] on a non-empty universe. *)
val solve_at_most :
  t -> k:int -> max_conflicts:int -> ?budget:Budget.t -> unit -> outcome

(** Total conflicts of the last [solve_at_most] call. *)
val conflicts : t -> int

val clause_count : t -> int
