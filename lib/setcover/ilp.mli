(** Exact 0/1 integer solver for (weighted) unate set covering — the
    *LINGO* substitute, run as an anytime algorithm.

    minimize    Σ w_i·x_i
    subject to  A·x ≥ 1 (every column covered),  x ∈ {0,1}^rows

    Branch-and-bound: branch on the hardest column (fewest covering
    rows), bound with a weighted independent-column lower bound plus the
    cost so far, seed the incumbent with the greedy solution.  When the
    search runs to completion ([stop_reason = Complete], [optimal =
    true]) the result is a global optimum — exactly what the paper gets
    out of LINGO on the reduced matrix.  When the node limit or the
    wall-clock budget trips first, the best incumbent found so far (at
    worst the greedy seed, always a valid cover) is returned with
    [optimal = false] and the reason recorded. *)

open Reseed_util

type stop_reason =
  | Complete  (** exhaustive search finished: global optimum *)
  | Node_limit  (** [node_limit] exhausted: best incumbent returned *)
  | Budget of Budget.stop_reason
      (** wall-clock deadline or cancellation: best incumbent returned *)

(** [stop_reason_name r] is ["complete"], ["node-limit"], ["deadline"] or
    ["cancelled"]. *)
val stop_reason_name : stop_reason -> string

type result = {
  selected : int list;
      (** chosen row indices, ascending — a valid cover of every
          coverable column *)
  cost : float;
  optimal : bool;  (** [stop_reason = Complete] *)
  nodes_explored : int;
  stop_reason : stop_reason;
  uncovered : int list;
      (** columns no row covers, ascending — unreachable for any
          selection (undetectable faults on an unreduced matrix).  The
          solve covered everything else; [[]] on a feasible instance. *)
}

(** [solve ?weights ?node_limit ?budget m] — [weights] defaults to
    all-ones (cardinality minimisation); [node_limit] defaults to
    2_000_000; [budget] bounds wall-clock time (polled every few thousand
    nodes; an already-expired budget returns the greedy incumbent without
    branching).  Columns coverable by no row are excluded from the
    instance and reported in [uncovered] — the same silent degradation
    {!Greedy.solve} applies — so the exact path never crashes mid-flow on
    a matrix that still carries undetectable faults. *)
val solve :
  ?weights:float array -> ?node_limit:int -> ?budget:Budget.t -> Matrix.t -> result
