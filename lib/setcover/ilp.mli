(** Exact 0/1 integer solver for (weighted) unate set covering — the
    *LINGO* substitute, run as an anytime algorithm.

    minimize    Σ w_i·x_i
    subject to  A·x ≥ 1 (every column covered),  x ∈ {0,1}^rows

    Branch-and-bound: branch on the hardest column (fewest covering
    rows), bound with the maximum of the weighted independent-column
    bound and a {!Lagrangian} dual bound priced from root multipliers,
    seed the incumbent with the (weighted) greedy solution.  A root dual
    bound that already meets the greedy seed proves optimality without
    opening a node.  When the search runs to completion ([stop_reason =
    Complete], [optimal = true]) the result is a global optimum — exactly
    what the paper gets out of LINGO on the reduced matrix.  When the
    node limit or the wall-clock budget trips first, the best incumbent
    found so far (at worst the greedy seed, always a valid cover) is
    returned with [optimal = false] and the reason recorded. *)

open Reseed_util

type stop_reason =
  | Complete  (** exhaustive search finished: global optimum *)
  | Node_limit  (** [node_limit] exhausted: best incumbent returned *)
  | Budget of Budget.stop_reason
      (** wall-clock deadline or cancellation: best incumbent returned *)

(** [stop_reason_name r] is ["complete"], ["node-limit"], ["deadline"] or
    ["cancelled"]. *)
val stop_reason_name : stop_reason -> string

type result = {
  selected : int list;
      (** chosen row indices, ascending — a valid cover of every
          coverable column *)
  cost : float;
  optimal : bool;  (** [stop_reason = Complete] *)
  nodes_explored : int;
  stop_reason : stop_reason;
  uncovered : int list;
      (** columns no row covers, ascending — unreachable for any
          selection (undetectable faults on an unreduced matrix).  The
          solve covered everything else; [[]] on a feasible instance. *)
}

(** [solve ?weights ?node_limit ?budget m] — [weights] defaults to
    all-ones (cardinality minimisation); [node_limit] defaults to
    2_000_000; [budget] bounds wall-clock time (polled every few thousand
    nodes; an already-expired budget returns the greedy incumbent without
    branching).  Columns coverable by no row are excluded from the
    instance and reported in [uncovered] — the same silent degradation
    {!Greedy.solve} applies — so the exact path never crashes mid-flow on
    a matrix that still carries undetectable faults. *)
val solve :
  ?weights:float array -> ?node_limit:int -> ?budget:Budget.t -> Matrix.t -> result

(** {1 Resumable search}

    The portfolio's racing leg: the same branch-and-bound as {!solve},
    but with the depth-first frontier held in an explicit stack so it
    can run a node quantum at a time and adopt foreign incumbents
    between quanta.  Pop order reproduces {!solve}'s recursion exactly,
    so a search left to run without injections explores the identical
    node sequence. *)

type search

(** [start ?weights ?node_limit ?bound ?seed m] prepares a search.
    [bound] overrides the pruning lower bound (default: the hybrid
    independent-column / Lagrangian bound built at the root); [seed] is
    the initial incumbent as [(rows, cost)] (default: the weighted
    greedy cover). *)
val start :
  ?weights:float array ->
  ?node_limit:int ->
  ?bound:(Bitvec.t -> float) ->
  ?seed:int list * float ->
  Matrix.t ->
  search

(** [advance ?quantum ?budget s] explores up to [quantum] further nodes
    (default: unbounded), stopping early on exhaustion (optimality
    proved), the node limit, or budget expiry. *)
val advance : ?quantum:int -> ?budget:Budget.t -> search -> unit

(** [inject s ~rows ~cost] adopts a foreign incumbent when strictly
    better than the search's current one (never on ties, so a completed
    search still reports its own first-found optimum). *)
val inject : search -> rows:int list -> cost:float -> unit

(** [best s] is the current incumbent, rows ascending. *)
val best : search -> int list * float

(** [exhausted s] — the frontier is empty and nothing stopped the
    search: the incumbent is a proven optimum. *)
val exhausted : search -> bool

(** [search_stop s] is [None] while the search may continue (or has
    completed); [Node_limit] / [Budget] once tripped. *)
val search_stop : search -> stop_reason option

val nodes_explored : search -> int
val incumbent_updates : search -> int
val prunes : search -> int
