(** Exact 0/1 integer solver for (weighted) unate set covering — the
    *LINGO* substitute, run as an anytime algorithm.

    minimize    Σ w_i·x_i
    subject to  A·x ≥ 1 (every column covered),  x ∈ {0,1}^rows

    Branch-and-bound: branch on the hardest column (fewest covering
    rows), bound with a weighted independent-column lower bound plus the
    cost so far, seed the incumbent with the greedy solution.  When the
    search runs to completion ([stop_reason = Complete], [optimal =
    true]) the result is a global optimum — exactly what the paper gets
    out of LINGO on the reduced matrix.  When the node limit or the
    wall-clock budget trips first, the best incumbent found so far (at
    worst the greedy seed, always a valid cover) is returned with
    [optimal = false] and the reason recorded. *)

open Reseed_util

type stop_reason =
  | Complete  (** exhaustive search finished: global optimum *)
  | Node_limit  (** [node_limit] exhausted: best incumbent returned *)
  | Budget of Budget.stop_reason
      (** wall-clock deadline or cancellation: best incumbent returned *)

(** [stop_reason_name r] is ["complete"], ["node-limit"], ["deadline"] or
    ["cancelled"]. *)
val stop_reason_name : stop_reason -> string

type result = {
  selected : int list;  (** chosen row indices, ascending — a valid cover *)
  cost : float;
  optimal : bool;  (** [stop_reason = Complete] *)
  nodes_explored : int;
  stop_reason : stop_reason;
}

(** [solve ?weights ?node_limit ?budget m] — [weights] defaults to
    all-ones (cardinality minimisation); [node_limit] defaults to
    2_000_000; [budget] bounds wall-clock time (polled every few thousand
    nodes; an already-expired budget returns the greedy incumbent without
    branching).  Raises [Invalid_argument] if some column is coverable by
    no row (infeasible) — reduce first, or check {!Matrix.uncoverable}. *)
val solve :
  ?weights:float array -> ?node_limit:int -> ?budget:Budget.t -> Matrix.t -> result
