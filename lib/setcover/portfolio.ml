open Reseed_util

type config = {
  node_quantum : int;
  node_limit : int;
  restart_quantum : int;
  max_restarts : int;
  rcl_alpha : float;
  sat_row_limit : int;
  sat_conflict_quantum : int;
  sat_conflict_cap : int;
  seed : int;
}

(* The ILP quantum is deliberately large: a leg that closes its search
   inside round 1 has, by construction, received no foreign incumbent,
   so its answer is bit-identical to the standalone {!Ilp.solve} — the
   property the table-1 acceptance check leans on. *)
let default_config =
  {
    node_quantum = 500_000;
    node_limit = 2_000_000;
    restart_quantum = 8;
    max_restarts = 64;
    rcl_alpha = 0.8;
    sat_row_limit = 256;
    sat_conflict_quantum = 20_000;
    sat_conflict_cap = 1_280_000;
    seed = 0;
  }

type leg_stat = {
  leg : string;
  rounds : int;
  work : int;
  best_cost : float;
  improvements : int;
  proved : bool;
}

type result = {
  selected : int list;
  cost : float;
  optimal : bool;
  stop_reason : Ilp.stop_reason;
  winner : string;
  proved_by : string option;
  legs : leg_stat list;
  rounds : int;
  root_lb : float;
  uncovered : int list;
}

let epsilon = 1e-9

let m_rounds = Metrics.counter ~help:"portfolio barrier rounds" "portfolio_rounds"

let m_improvements =
  Metrics.counter ~help:"portfolio shared-incumbent improvements"
    "portfolio_incumbent_updates"

let m_proofs =
  Metrics.counter ~help:"portfolio optimality proofs" "portfolio_proofs"

let m_ilp_nodes =
  Metrics.counter ~help:"portfolio exact-leg nodes" "portfolio_ilp_nodes"

let m_sat_conflicts =
  Metrics.counter ~help:"portfolio SAT-leg conflicts" "portfolio_sat_conflicts"

let m_grasp_restarts =
  Metrics.counter ~help:"portfolio GRASP-leg restarts" "portfolio_grasp_restarts"

(* A racing leg.  All mutable state is owned by the leg and touched only
   by its own [run] — the pool may execute legs on any worker, but each
   index writes only its own record, so results are bit-identical at
   every job count (the {!Pool} determinism contract). *)
type leg = {
  name : string;
  mutable active : bool;
  mutable rounds_run : int;
  mutable work_done : int;
  mutable leg_best : float;
  mutable leg_improvements : int;
  mutable leg_proved : bool;
  mutable candidate : (int list * float) option;
      (** this round's proposal, rows ascending *)
  run : leg -> rows:int list -> cost:float -> Budget.t option -> unit;
}

let stat_of l =
  {
    leg = l.name;
    rounds = l.rounds_run;
    work = l.work_done;
    best_cost = l.leg_best;
    improvements = l.leg_improvements;
    proved = l.leg_proved;
  }

let propose l rows cost =
  l.candidate <- Some (rows, cost);
  if cost < l.leg_best -. epsilon then l.leg_best <- cost

(* ------------------------------------------------------------------ *)
(* Leg 1: the exact branch-and-bound, run a node quantum per round.    *)

let ilp_leg cfg search =
  let run l ~rows ~cost budget =
    Ilp.inject search ~rows ~cost;
    Ilp.advance ~quantum:cfg.node_quantum ?budget search;
    l.work_done <- Ilp.nodes_explored search;
    let brows, bcost = Ilp.best search in
    propose l brows bcost;
    if Ilp.exhausted search then l.leg_proved <- true;
    if Ilp.search_stop search <> None || l.leg_proved then l.active <- false
  in
  {
    name = "ilp";
    active = true;
    rounds_run = 0;
    work_done = 0;
    leg_best = infinity;
    leg_improvements = 0;
    leg_proved = false;
    candidate = None;
    run;
  }

(* ------------------------------------------------------------------ *)
(* Leg 2: SAT/cardinality descent — one at-most-(k−1) query per round
   against the incumbent's cardinality k, with a conflict allowance
   that doubles on every inconclusive answer.  [No_cover] is an
   optimality proof for the incumbent.  Cardinality only, so the leg is
   built solely when the objective is uniform. *)

let sat_leg cfg ~cost_of enc =
  let allowance = ref cfg.sat_conflict_quantum in
  let run l ~rows ~cost:_ budget =
    let k = List.length rows - 1 in
    match Satcover.solve_at_most enc ~k ~max_conflicts:!allowance ?budget () with
    | exception Invalid_argument _ -> l.active <- false
    | outcome -> (
        l.work_done <- l.work_done + Satcover.conflicts enc;
        match outcome with
        | Satcover.Cover c -> propose l c (cost_of c)
        | Satcover.No_cover -> l.leg_proved <- true; l.active <- false
        | Satcover.Unknown ->
            if not (Budget.check budget) then begin
              allowance := !allowance * 2;
              if !allowance > cfg.sat_conflict_cap then l.active <- false
            end)
  in
  {
    name = "sat";
    active = true;
    rounds_run = 0;
    work_done = 0;
    leg_best = infinity;
    leg_improvements = 0;
    leg_proved = false;
    candidate = None;
    run;
  }

(* ------------------------------------------------------------------ *)
(* Leg 3: GRASP — greedy with a restricted candidate list and seeded
   probabilistic tie-breaking, restarted [restart_quantum] times per
   round, each restart followed by a redundancy trim.  Restart [r]'s
   generator depends only on [(cfg.seed, r)], never on scheduling, so
   the leg's output stream is identical at every job count. *)

let grasp_cover ~rng ~alpha ~weight m =
  let n = Matrix.rows m in
  let need = Bitvec.copy (Matrix.universe m) in
  let picked = ref [] in
  let stuck = ref false in
  while (not !stuck) && not (Bitvec.is_empty need) do
    let best = ref 0. in
    for i = 0 to n - 1 do
      let gain = Rowset.count_inter (Matrix.rowset m i) need in
      if gain > 0 then begin
        let r = float_of_int gain /. weight i in
        if r > !best then best := r
      end
    done;
    if !best <= 0. then stuck := true
    else begin
      let thresh = alpha *. !best in
      let rcl = ref [] and size = ref 0 in
      for i = n - 1 downto 0 do
        let gain = Rowset.count_inter (Matrix.rowset m i) need in
        if gain > 0 && float_of_int gain /. weight i >= thresh then begin
          rcl := i :: !rcl;
          incr size
        end
      done;
      let choice = List.nth !rcl (Rng.int rng !size) in
      picked := choice :: !picked;
      Rowset.diff_into ~into:need (Matrix.rowset m choice)
    end
  done;
  (* Trim: drop rows whose every column stays covered without them,
     most expensive (then highest-index) first. *)
  let counts = Array.make (Matrix.cols m) 0 in
  List.iter
    (fun i ->
      Rowset.iter_ones (fun j -> counts.(j) <- counts.(j) + 1) (Matrix.rowset m i))
    !picked;
  let order =
    List.sort
      (fun a b -> compare (weight b, b) (weight a, a))
      !picked
  in
  let kept =
    List.filter
      (fun i ->
        let rs = Matrix.rowset m i in
        let redundant = ref true in
        Rowset.iter_ones (fun j -> if counts.(j) < 2 then redundant := false) rs;
        if !redundant then begin
          Rowset.iter_ones (fun j -> counts.(j) <- counts.(j) - 1) rs;
          false
        end
        else true)
      order
  in
  List.sort compare kept

let grasp_leg cfg ~weights ~cost_of m =
  let weight i = match weights with None -> 1.0 | Some w -> w.(i) in
  let restarts_done = ref 0 in
  let run l ~rows:_ ~cost:_ budget =
    let n = min cfg.restart_quantum (cfg.max_restarts - !restarts_done) in
    let best = ref None in
    for r = 0 to n - 1 do
      if not (Budget.check budget) then begin
        let rng = Rng.create ((cfg.seed * 1_000_003) + !restarts_done + r) in
        let rows = grasp_cover ~rng ~alpha:cfg.rcl_alpha ~weight m in
        let c = cost_of rows in
        match !best with
        | Some (_, bc) when bc <= c +. epsilon -> ()
        | _ -> best := Some (rows, c)
      end
    done;
    restarts_done := !restarts_done + n;
    l.work_done <- !restarts_done;
    (match !best with Some (rows, c) -> propose l rows c | None -> ());
    if !restarts_done >= cfg.max_restarts then l.active <- false
  in
  {
    name = "grasp";
    active = true;
    rounds_run = 0;
    work_done = 0;
    leg_best = infinity;
    leg_improvements = 0;
    leg_proved = false;
    candidate = None;
    run;
  }

(* ------------------------------------------------------------------ *)

let solve ?(config = default_config) ?weights ?budget ?pool m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  Trace.with_span "portfolio.solve"
    ~args:[ ("rows", string_of_int n_rows); ("cols", string_of_int n_cols) ]
  @@ fun () ->
  (match weights with
  | Some w ->
      if Array.length w <> n_rows then
        invalid_arg "Portfolio.solve: weight count mismatch";
      Array.iter
        (fun x -> if x <= 0. then invalid_arg "Portfolio.solve: weights must be > 0")
        w
  | None -> ());
  let uncovered = Matrix.uncoverable m in
  let cost_of rows = Greedy.cost ?weights rows in
  let seed_rows = List.sort compare (Greedy.solve_weighted ?weights m) in
  let seed_cost = cost_of seed_rows in
  let w_arr =
    match weights with None -> Array.make n_rows 1.0 | Some w -> w
  in
  let lag =
    Lagrangian.optimize
      ~iters:(if Matrix.ones m > 2_000_000 then 8 else 25)
      ~ub:seed_cost ~weights:w_arr m
  in
  if lag.Lagrangian.lb >= seed_cost -. epsilon then begin
    (* Dual bound meets the greedy seed at the root: optimal before any
       leg runs — identical to {!Ilp.solve}'s root short-circuit, so the
       two methods agree on these instances by construction. *)
    Metrics.incr m_proofs;
    {
      selected = seed_rows;
      cost = seed_cost;
      optimal = true;
      stop_reason = Ilp.Complete;
      winner = "seed";
      proved_by = Some "bound";
      legs = [];
      rounds = 0;
      root_lb = lag.Lagrangian.lb;
      uncovered;
    }
  end
  else begin
    (* No [?bound] override: [Ilp.start] defaults to the same hybrid
       independent-column/Lagrangian bound [Ilp.solve] builds, so a leg
       that closes without foreign incumbents explores the standalone
       solver's exact node sequence and reports its exact answer. *)
    let search =
      Ilp.start ?weights ~node_limit:config.node_limit
        ~seed:(seed_rows, seed_cost) m
    in
    let uniform =
      match weights with
      | None -> true
      | Some w -> n_rows = 0 || Array.for_all (fun x -> x = w.(0)) w
    in
    let legs =
      List.concat
        [
          [ ilp_leg config search ];
          (if uniform && n_rows > 0 && n_rows <= config.sat_row_limit then
             [
               sat_leg config ~cost_of
                 (Satcover.create ~ub:(List.length seed_rows) m);
             ]
           else []);
          [ grasp_leg config ~weights ~cost_of m ];
        ]
    in
    let best_rows = ref seed_rows and best_cost = ref seed_cost in
    let winner = ref "seed" and proved_by = ref None in
    let rounds = ref 0 and improvements = ref 0 in
    let stop = ref None in
    while !stop = None && !proved_by = None
          && List.exists (fun l -> l.active) legs do
      incr rounds;
      let active = Array.of_list (List.filter (fun l -> l.active) legs) in
      let rows = !best_rows and cost = !best_cost in
      (* Race the legs: one index per leg, each a deterministic work
         quantum against the incumbent frozen at the barrier. *)
      Pool.parallel_for ?pool ~chunk:1 ~label:"portfolio.round"
        ~total:(Array.length active) (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            let l = active.(i) in
            l.candidate <- None;
            l.rounds_run <- l.rounds_run + 1;
            l.run l ~rows ~cost budget
          done);
      (* Merge in fixed leg order: strictly better cost wins, so an
         equal-cost rediscovery never displaces the current holder. *)
      Array.iter
        (fun l ->
          match l.candidate with
          | Some (crows, ccost) when ccost < !best_cost -. epsilon ->
              best_rows := crows;
              best_cost := ccost;
              winner := l.name;
              l.leg_improvements <- l.leg_improvements + 1;
              incr improvements
          | _ -> ())
        active;
      (* Proofs, fixed priority: a closed exact search names its own
         first-found optimum (the standalone-ILP answer when it closed
         without foreign incumbents); then the SAT descent's No_cover;
         then the root dual bound meeting the merged incumbent. *)
      Array.iter
        (fun l ->
          if l.leg_proved && !proved_by = None then begin
            proved_by := Some l.name;
            if l.name = "ilp" then begin
              let brows, bcost = Ilp.best search in
              best_rows := brows;
              best_cost := bcost;
              winner := "ilp"
            end
          end)
        active;
      if !proved_by = None && lag.Lagrangian.lb >= !best_cost -. epsilon then
        proved_by := Some "bound";
      (match budget with
      | Some b when !proved_by = None && Budget.expired b ->
          stop := Option.map (fun r -> Ilp.Budget r) (Budget.stop_reason b)
      | _ -> ())
    done;
    Metrics.add m_rounds !rounds;
    Metrics.add m_improvements !improvements;
    if !proved_by <> None then Metrics.incr m_proofs;
    List.iter
      (fun l ->
        match l.name with
        | "ilp" -> Metrics.add m_ilp_nodes l.work_done
        | "sat" -> Metrics.add m_sat_conflicts l.work_done
        | _ -> Metrics.add m_grasp_restarts l.work_done)
      legs;
    let stop_reason =
      match (!proved_by, !stop) with
      | Some _, _ -> Ilp.Complete
      | None, Some r -> r
      | None, None -> Ilp.Node_limit
    in
    {
      selected = !best_rows;
      cost = !best_cost;
      optimal = !proved_by <> None;
      stop_reason;
      winner = !winner;
      proved_by = !proved_by;
      legs = List.map stat_of legs;
      rounds = !rounds;
      root_lb = lag.Lagrangian.lb;
      uncovered;
    }
  end
