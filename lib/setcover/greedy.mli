(** Greedy set covering (Chvátal): repeatedly take the row covering the
    most still-uncovered columns — or, weighted, the row with the best
    cost-effectiveness ratio (new columns covered per unit weight).
    ln(n)-approximate; used as the upper bound seeding the exact
    branch-and-bound, as the deterministic baseline of the portfolio's
    restart leg, and as an ablation baseline against the exact solver. *)

(** [solve m] returns selected row indices in pick order, minimising
    cardinality.  Columns no row covers are ignored.  The result always
    covers every coverable column. *)
val solve : Matrix.t -> int list

(** [solve_weighted ?weights m] — with [weights], each pick maximises
    [gain /. weights.(i)] (ties broken by lowest index, like [solve]);
    without, this is exactly {!solve} — the unweighted path is shared, so
    cardinality results stay byte-identical.  Raises [Invalid_argument]
    on a weight count mismatch or non-positive weights. *)
val solve_weighted : ?weights:float array -> Matrix.t -> int list

(** [cost ?weights rows] is the objective value of a selection:
    cardinality without weights, [Σ weights.(i)] with. *)
val cost : ?weights:float array -> int list -> float
