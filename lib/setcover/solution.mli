(** End-to-end covering solutions over a Detection Matrix:
    reduce → exactly solve the residual → recombine (Section 3.3).

    [solve] is the complete Matrix Reducer + LINGO pipeline of Figure 1:
    the returned rows are the union of the necessary triplets found by
    reduction and the rows chosen by the exact solver on the reduced
    matrix. *)

open Reseed_util

type method_ = Exact | Greedy_only | No_reduction_exact

(** [method_name m] is ["exact"], ["greedy"] or ["noreduce"] — a stable
    tag used on the CLI and as a cache-key component. *)
val method_name : method_ -> string

(** [is_degraded method_ stop] is [solve]'s degradation contract — an
    exact method that stopped early delivered an incumbent; [Greedy_only]
    is never degraded.  Exposed so the staged flow pipeline assembles
    stats identical to [solve]'s. *)
val is_degraded : method_ -> Ilp.stop_reason -> bool

type stats = {
  initial_rows : int;
  initial_cols : int;
  necessary : int list;  (** rows forced by essentiality *)
  reduced_rows : int;  (** residual matrix size after reduction *)
  reduced_cols : int;
  from_solver : int list;  (** rows added by the end-game solver *)
  reduction_iterations : int;
  solver_nodes : int;
  solver_optimal : bool;
  solver_stop : Ilp.stop_reason;  (** why the end-game solver stopped *)
  degraded : bool;
      (** an exact method handed back a possibly-suboptimal (but valid)
          incumbent because a node or wall-clock budget expired — never
          set for [Greedy_only], whose suboptimality is intentional *)
}

type t = { rows : int list;  (** the final solution N, ascending *) stats : stats }

(** [solve ?method_ ?reduce_config ?row_weights m] — [method_] defaults
    to [Exact].  [Greedy_only] replaces the exact end-game with greedy
    (ablation #2); [No_reduction_exact] skips reduction entirely
    (ablation showing why the paper reduces first).

    [row_weights] switches the exact objective from cardinality to
    weighted cost (e.g. estimated per-triplet test length); reduction
    honours the weights, the greedy method ignores them.

    [budget] bounds the exact end-game: on expiry the solver's best
    incumbent (the greedy cover at worst) is used and the degradation is
    recorded in {!stats} ([degraded], [solver_stop]) instead of
    pretending optimality.  The returned rows are always a valid cover of
    the coverable columns. *)
val solve :
  ?method_:method_ ->
  ?reduce_config:Reduce.config ->
  ?row_weights:float array ->
  ?budget:Budget.t ->
  Matrix.t ->
  t

(** [verify m t] — the solution covers every coverable column. *)
val verify : Matrix.t -> t -> bool

val cardinality : t -> int
