(** End-to-end covering solutions over a Detection Matrix:
    reduce → exactly solve the residual → recombine (Section 3.3).

    [solve] is the complete Matrix Reducer + LINGO pipeline of Figure 1:
    the returned rows are the union of the necessary triplets found by
    reduction and the rows chosen by the exact solver on the reduced
    matrix. *)

open Reseed_util

type method_ =
  | Exact
  | Greedy_only
  | No_reduction_exact
  | Portfolio_race
      (** reduce, then race {!Portfolio}'s three legs (exact B&B,
          SAT/cardinality descent, GRASP restarts) on the residual *)

(** [method_name m] is ["exact"], ["greedy"], ["noreduce"] or
    ["portfolio"] — a stable tag used on the CLI and as a cache-key
    component. *)
val method_name : method_ -> string

(** [is_degraded method_ stop] is [solve]'s degradation contract — an
    exact method that stopped early delivered an incumbent; [Greedy_only]
    is never degraded.  Exposed so the staged flow pipeline assembles
    stats identical to [solve]'s. *)
val is_degraded : method_ -> Ilp.stop_reason -> bool

type stats = {
  initial_rows : int;
  initial_cols : int;
  necessary : int list;  (** rows forced by essentiality *)
  reduced_rows : int;  (** residual matrix size after reduction *)
  reduced_cols : int;
  from_solver : int list;  (** rows added by the end-game solver *)
  reduction_iterations : int;
  solver_nodes : int;
      (** branch-and-bound nodes (the exact leg's, for the portfolio) *)
  solver_optimal : bool;
  solver_stop : Ilp.stop_reason;  (** why the end-game solver stopped *)
  degraded : bool;
      (** an exact method handed back a possibly-suboptimal (but valid)
          incumbent because a node or wall-clock budget expired — never
          set for [Greedy_only], whose suboptimality is intentional *)
  uncovered : int list;
      (** columns of the {e input} matrix no row covers, ascending —
          undetectable faults every method silently skips; [[]] on a
          feasible instance *)
  portfolio_legs : Portfolio.leg_stat list;
      (** per-leg attribution; [[]] for non-portfolio methods *)
  portfolio_winner : string option;
      (** leg holding the final incumbent; [None] for other methods *)
}

type t = { rows : int list;  (** the final solution N, ascending *) stats : stats }

(** [solve ?method_ ?reduce_config ?row_weights ?budget ?pool m] —
    [method_] defaults to [Exact].  [Greedy_only] replaces the exact
    end-game with greedy (ablation #2); [No_reduction_exact] skips
    reduction entirely (ablation showing why the paper reduces first);
    [Portfolio_race] races exact, SAT and GRASP legs on the residual,
    sharing one incumbent ([pool] controls the racing parallelism —
    results are identical at every pool size).

    [row_weights] switches the objective from cardinality to weighted
    cost (e.g. estimated per-triplet test length); reduction honours the
    weights, the greedy method ignores them.

    [budget] bounds the end-game: on expiry the solver's best incumbent
    (the greedy cover at worst) is used and the degradation is recorded
    in {!stats} ([degraded], [solver_stop]) instead of pretending
    optimality.  The returned rows are always a valid cover of the
    coverable columns. *)
val solve :
  ?method_:method_ ->
  ?reduce_config:Reduce.config ->
  ?row_weights:float array ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  Matrix.t ->
  t

(** [verify m t] — the solution covers every coverable column. *)
val verify : Matrix.t -> t -> bool

val cardinality : t -> int
