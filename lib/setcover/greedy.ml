open Reseed_util

let solve m =
  (* The coverable columns are exactly the matrix universe, maintained at
     construction — no column view needed. *)
  let need = Bitvec.copy (Matrix.universe m) in
  let chosen = ref [] in
  while not (Bitvec.is_empty need) do
    let best = ref (-1) and best_gain = ref 0 in
    for i = 0 to Matrix.rows m - 1 do
      let gain = Rowset.count_inter (Matrix.rowset m i) need in
      if gain > !best_gain then begin
        best := i;
        best_gain := gain
      end
    done;
    (* Every needed column is coverable, so a positive-gain row exists. *)
    assert (!best >= 0);
    chosen := !best :: !chosen;
    Rowset.diff_into ~into:need (Matrix.rowset m !best)
  done;
  List.rev !chosen

let validate_weights m w =
  if Array.length w <> Matrix.rows m then
    invalid_arg "Greedy: weight count mismatch";
  Array.iter (fun x -> if x <= 0. then invalid_arg "Greedy: weights must be > 0") w

(* Weighted Chvátal: maximise the cost-effectiveness ratio gain/weight at
   every pick.  The unweighted entry point above is kept verbatim (and
   used when no weights are given) so the historical cardinality path
   stays byte-identical. *)
let solve_weighted ?weights m =
  match weights with
  | None -> solve m
  | Some w ->
      validate_weights m w;
      let need = Bitvec.copy (Matrix.universe m) in
      let chosen = ref [] in
      while not (Bitvec.is_empty need) do
        let best = ref (-1) and best_ratio = ref 0. in
        for i = 0 to Matrix.rows m - 1 do
          let gain = Rowset.count_inter (Matrix.rowset m i) need in
          if gain > 0 then begin
            let ratio = float_of_int gain /. w.(i) in
            if ratio > !best_ratio then begin
              best := i;
              best_ratio := ratio
            end
          end
        done;
        assert (!best >= 0);
        chosen := !best :: !chosen;
        Rowset.diff_into ~into:need (Matrix.rowset m !best)
      done;
      List.rev !chosen

let cost ?weights rows =
  match weights with
  | None -> float_of_int (List.length rows)
  | Some w -> List.fold_left (fun acc i -> acc +. w.(i)) 0. rows
