open Reseed_util

let solve m =
  (* The coverable columns are exactly the matrix universe, maintained at
     construction — no column view needed. *)
  let need = Bitvec.copy (Matrix.universe m) in
  let chosen = ref [] in
  while not (Bitvec.is_empty need) do
    let best = ref (-1) and best_gain = ref 0 in
    for i = 0 to Matrix.rows m - 1 do
      let gain = Rowset.count_inter (Matrix.rowset m i) need in
      if gain > !best_gain then begin
        best := i;
        best_gain := gain
      end
    done;
    (* Every needed column is coverable, so a positive-gain row exists. *)
    assert (!best >= 0);
    chosen := !best :: !chosen;
    Rowset.diff_into ~into:need (Matrix.rowset m !best)
  done;
  List.rev !chosen
