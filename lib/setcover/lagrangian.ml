open Reseed_util

type t = {
  lb : float;
  u : float array; (* per column; 0 outside the coverable universe *)
  slack : float; (* Σ_i min(0, w_i − u·row_i) at the bound's multipliers *)
}

let epsilon = 1e-9

(* Subgradient ascent on the Lagrangian dual of
     min Σ w_i x_i  s.t.  Σ_{i covers j} x_i ≥ 1,  x ∈ {0,1}:
   L(u) = Σ_j u_j + Σ_i min(0, w_i − Σ_{j ∈ row_i} u_j) for u ≥ 0 — every
   evaluation is a valid lower bound.  Held–Karp step-size control: the
   agility λ halves after a few non-improving steps.  Everything is
   row-wise (one pass over the nonzeros per iteration); the column view
   is never materialised, so the bound is usable on xl-tier matrices. *)
let optimize ?(iters = 25) ~ub ~weights m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  let universe = Matrix.universe m in
  let u = Array.make n_cols 0. in
  (* Row-wise init: spread each row's weight over its columns, keeping
     the cheapest offer per column — a feasible u ≥ 0 that already prices
     every coverable column. *)
  for i = 0 to n_rows - 1 do
    let r = Matrix.rowset m i in
    let c = Rowset.count r in
    if c > 0 then begin
      let share = weights.(i) /. float_of_int c in
      Rowset.iter_ones
        (fun j -> if u.(j) = 0. || share < u.(j) then u.(j) <- share)
        r
    end
  done;
  let best_lb = ref neg_infinity and best_u = ref (Array.copy u) in
  let best_slack = ref 0. in
  let lambda = ref 2.0 and since_improved = ref 0 in
  let cov = Array.make n_cols 0 in
  let k = ref 0 and stop = ref false in
  while (not !stop) && !k < iters do
    incr k;
    Array.fill cov 0 n_cols 0;
    let slack = ref 0. in
    for i = 0 to n_rows - 1 do
      let r = Matrix.rowset m i in
      let s = Rowset.fold_ones (fun acc j -> acc +. u.(j)) 0. r in
      let reduced = weights.(i) -. s in
      if reduced < 0. then begin
        slack := !slack +. reduced;
        Rowset.iter_ones (fun j -> cov.(j) <- cov.(j) + 1) r
      end
    done;
    let sum_u = ref 0. in
    Bitvec.iter_ones (fun j -> sum_u := !sum_u +. u.(j)) universe;
    let lb = !sum_u +. !slack in
    if lb > !best_lb +. epsilon then begin
      best_lb := lb;
      best_u := Array.copy u;
      best_slack := !slack;
      since_improved := 0
    end
    else begin
      incr since_improved;
      if !since_improved >= 3 then begin
        lambda := !lambda /. 2.;
        since_improved := 0
      end
    end;
    if !best_lb >= ub -. epsilon then stop := true
    else begin
      (* Subgradient of the uncovered-ness: g_j = 1 − |{i : x_i(u) = 1 ∋ j}|. *)
      let norm2 = ref 0. in
      Bitvec.iter_ones
        (fun j ->
          let g = 1. -. float_of_int cov.(j) in
          norm2 := !norm2 +. (g *. g))
        universe;
      if !norm2 < epsilon then stop := true (* x(u) is primal-feasible *)
      else begin
        let step = !lambda *. (ub -. lb) /. !norm2 in
        if step <= 0. then stop := true
        else
          Bitvec.iter_ones
            (fun j ->
              let g = 1. -. float_of_int cov.(j) in
              u.(j) <- Float.max 0. (u.(j) +. (step *. g)))
            universe
      end
    end
  done;
  { lb = Float.max 0. !best_lb; u = !best_u; slack = !best_slack }

(* For a sub-instance restricted to the still-needed columns, the root
   multipliers remain dual-feasible and every reduced cost only grows
   (u ≥ 0, fewer priced columns), so
     Σ_{j ∈ need} u_j + Σ_i min(0, w_i − u·row_i)   (slack at the root)
   lower-bounds the residual cover cost — an O(|need|) per-node bound. *)
let node_bound t need =
  let sum = Bitvec.fold_ones (fun acc j -> acc +. t.u.(j)) 0. need in
  sum +. t.slack
