open Reseed_util
open Reseed_sat

type t = {
  sat : Sat.t;
  n_rows : int;
  k_max : int; (* counter encoded up to k_max: at-most-k assumable, k < k_max *)
  final : int array; (* final.(j) = var "at least j+1 rows selected", j < k_max *)
  matrix : Matrix.t;
}

type outcome = Cover of int list | No_cover | Unknown

let conflicts t = Sat.conflicts t.sat

(* Row variable for row [i] is [i + 1] (SAT variables are 1-based). *)
let row_var i = i + 1

let create ~ub m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  let k_max = max 1 ub in
  let sat = Sat.create n_rows in
  (* Covering constraints, built row-wise (no transposed shard). *)
  let covering = Array.make n_cols [] in
  for i = n_rows - 1 downto 0 do
    Rowset.iter_ones
      (fun j -> covering.(j) <- row_var i :: covering.(j))
      (Matrix.rowset m i)
  done;
  let universe = Matrix.universe m in
  for j = 0 to n_cols - 1 do
    if Bitvec.get universe j then Sat.add_clause sat covering.(j)
  done;
  (* Sinz sequential counter, one direction only: r.(i).(j) is forced
     true whenever at least [j+1] of rows 0..i are selected, so assuming
     [¬ final.(k)] enforces "at most k rows".  The other direction is
     unnecessary for an at-most bound and would only slow the solver. *)
  let r = Array.make_matrix n_rows k_max 0 in
  for i = 0 to n_rows - 1 do
    for j = 0 to min i (k_max - 1) do
      r.(i).(j) <- Sat.new_var sat
    done
  done;
  for i = 0 to n_rows - 1 do
    let xi = row_var i in
    (* x_i → r_{i,1} *)
    Sat.add_clause sat [ -xi; r.(i).(0) ];
    if i > 0 then begin
      for j = 0 to min (i - 1) (k_max - 1) do
        (* r_{i−1,j} → r_{i,j} *)
        Sat.add_clause sat [ -r.(i - 1).(j); r.(i).(j) ];
        (* x_i ∧ r_{i−1,j} → r_{i,j+1} *)
        if j + 1 <= min i (k_max - 1) then
          Sat.add_clause sat [ -xi; -r.(i - 1).(j); r.(i).(j + 1) ]
      done
    end
  done;
  let final =
    Array.init k_max (fun j ->
        if n_rows = 0 then 0 else r.(n_rows - 1).(min j (min (n_rows - 1) (k_max - 1))))
  in
  { sat; n_rows; k_max; final; matrix = m }

let clause_count t = Sat.clause_count t.sat

let solve_at_most t ~k ~max_conflicts ?budget () =
  if k < 0 then No_cover
  else if t.n_rows = 0 then
    if Bitvec.is_empty (Matrix.universe t.matrix) then Cover [] else No_cover
  else if k >= t.n_rows then
    (* At-most-n is vacuous; the cover clauses alone decide it. *)
    (match Sat.solve ~max_conflicts ?budget t.sat with
    | Sat.Sat model ->
        Cover
          (List.filter (fun i -> model.(row_var i)) (List.init t.n_rows Fun.id))
    | Sat.Unsat -> No_cover
    | Sat.Unknown -> Unknown)
  else if k >= t.k_max then
    invalid_arg "Satcover.solve_at_most: bound exceeds the encoded counter"
  else
    match
      Sat.solve ~assumptions:[ -t.final.(k) ] ~max_conflicts ?budget t.sat
    with
    | Sat.Sat model ->
        let rows =
          List.filter (fun i -> model.(row_var i)) (List.init t.n_rows Fun.id)
        in
        assert (Matrix.covers t.matrix ~rows_subset:rows);
        assert (List.length rows <= k);
        Cover rows
    | Sat.Unsat -> No_cover
    | Sat.Unknown -> Unknown
