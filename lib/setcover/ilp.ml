open Reseed_util

type stop_reason = Complete | Node_limit | Budget of Budget.stop_reason

let stop_reason_name = function
  | Complete -> "complete"
  | Node_limit -> "node-limit"
  | Budget r -> Budget.stop_reason_name r

type result = {
  selected : int list;
  cost : float;
  optimal : bool;
  nodes_explored : int;
  stop_reason : stop_reason;
  uncovered : int list;
}

let epsilon = 1e-9

let m_nodes = Metrics.counter ~help:"ILP branch-and-bound nodes" "nodes_explored"

let m_incumbents =
  Metrics.counter ~help:"ILP incumbent improvements" "ilp_incumbent_updates"

let m_prunes =
  Metrics.counter ~help:"ILP subtrees cut by the lower bound" "ilp_bound_prunes"

(* Wall-clock polls are throttled to once per [budget_stride] nodes: a
   search node costs well under a microsecond, so the deadline is honoured
   within a few milliseconds without a clock read per node. *)
let budget_stride = 4096

let solve ?weights ?(node_limit = 2_000_000) ?budget m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  Trace.with_span "ilp.solve"
    ~args:[ ("rows", string_of_int n_rows); ("cols", string_of_int n_cols) ]
  @@ fun () ->
  let weights =
    match weights with
    | None -> Array.make n_rows 1.0
    | Some w ->
        if Array.length w <> n_rows then invalid_arg "Ilp.solve: weight count mismatch";
        Array.iter (fun x -> if x <= 0. then invalid_arg "Ilp.solve: weights must be > 0") w;
        w
  in
  (* Columns no row covers are unreachable for any selection.  Solve the
     coverable sub-instance and report the dead columns instead of
     raising: on an unreduced matrix with undetectable faults the exact
     method then degrades exactly like {!Greedy.solve}, which has always
     skipped them. *)
  let all_need = Bitvec.copy (Matrix.universe m) in
  let uncovered = ref [] in
  for j = n_cols - 1 downto 0 do
    if not (Bitvec.get all_need j) then uncovered := j :: !uncovered
  done;
  (* Incumbent: greedy upper bound — also the anytime fallback returned
     when the node or wall-clock budget expires before the search ends. *)
  let greedy_rows = Greedy.solve m in
  let best_set = ref greedy_rows in
  let best_cost =
    ref (List.fold_left (fun acc i -> acc +. weights.(i)) 0. greedy_rows)
  in
  let nodes = ref 0 in
  let incumbents = ref 0 and prunes = ref 0 in
  let stop = ref None in
  let out_of_budget () = !stop <> None in
  let note_budget () =
    if !stop = None then
      match budget with
      | Some b when !nodes mod budget_stride = 0 && Budget.expired b ->
          (match Budget.stop_reason b with
          | Some r -> stop := Some (Budget r)
          | None -> ())
      | _ -> ()
  in
  (* Weighted independent-column bound: columns whose covering-row sets
     are pairwise disjoint need pairwise distinct rows, so the cheapest
     row of each is a valid additive lower bound. *)
  let min_weight_of_col j =
    Bitvec.fold_ones
      (fun acc i -> Float.min acc weights.(i))
      Float.infinity (Matrix.col m j)
  in
  let lower_bound need =
    let used = Bitvec.create n_rows in
    let lb = ref 0. in
    Bitvec.iter_ones
      (fun j ->
        let cover = Matrix.col m j in
        if not (Bitvec.intersects cover used) then begin
          Bitvec.union_into ~into:used cover;
          lb := !lb +. min_weight_of_col j
        end)
      need;
    !lb
  in
  let rec branch need chosen cost =
    if out_of_budget () then ()
    else begin
      incr nodes;
      note_budget ();
      if !nodes > node_limit then stop := Some Node_limit
      else if out_of_budget () then ()
      else if Bitvec.is_empty need then begin
        if cost < !best_cost -. epsilon then begin
          incr incumbents;
          best_cost := cost;
          best_set := chosen
        end
      end
      else if cost +. lower_bound need >= !best_cost -. epsilon then incr prunes
      else begin
        (* Branch on the hardest column: fewest covering rows. *)
        let pick = ref (-1) and pick_count = ref max_int in
        Bitvec.iter_ones
          (fun j ->
            let cnt = Bitvec.count (Matrix.col m j) in
            if cnt < !pick_count then begin
              pick := j;
              pick_count := cnt
            end)
          need;
        let candidates =
          List.sort
            (fun a b ->
              (* Cheapest first; larger marginal coverage breaks ties. *)
              let c = Float.compare weights.(a) weights.(b) in
              if c <> 0 then c
              else
                Stdlib.compare
                  (Rowset.count_inter (Matrix.rowset m b) need)
                  (Rowset.count_inter (Matrix.rowset m a) need))
            (Bitvec.to_list (Matrix.col m !pick))
        in
        List.iter
          (fun i ->
            let need' = Bitvec.copy need in
            Rowset.diff_into ~into:need' (Matrix.rowset m i);
            branch need' (i :: chosen) (cost +. weights.(i)))
          candidates
      end
    end
  in
  (* A budget that expired before the search even starts (e.g. the matrix
     build consumed the whole allowance) returns the greedy incumbent
     immediately. *)
  (match budget with
  | Some b when Budget.expired b ->
      (match Budget.stop_reason b with Some r -> stop := Some (Budget r) | None -> ())
  | _ -> ());
  branch all_need [] 0.;
  Metrics.add m_nodes !nodes;
  Metrics.add m_incumbents !incumbents;
  Metrics.add m_prunes !prunes;
  {
    selected = List.sort compare !best_set;
    cost = !best_cost;
    optimal = !stop = None;
    nodes_explored = !nodes;
    stop_reason = (match !stop with None -> Complete | Some r -> r);
    uncovered = !uncovered;
  }
