open Reseed_util

type stop_reason = Complete | Node_limit | Budget of Budget.stop_reason

let stop_reason_name = function
  | Complete -> "complete"
  | Node_limit -> "node-limit"
  | Budget r -> Budget.stop_reason_name r

type result = {
  selected : int list;
  cost : float;
  optimal : bool;
  nodes_explored : int;
  stop_reason : stop_reason;
  uncovered : int list;
}

let epsilon = 1e-9

let m_nodes = Metrics.counter ~help:"ILP branch-and-bound nodes" "nodes_explored"

let m_incumbents =
  Metrics.counter ~help:"ILP incumbent improvements" "ilp_incumbent_updates"

let m_prunes =
  Metrics.counter ~help:"ILP subtrees cut by the lower bound" "ilp_bound_prunes"

let m_root_proofs =
  Metrics.counter ~help:"ILP solves closed at the root by the Lagrangian bound"
    "ilp_root_proofs"

(* Wall-clock polls are throttled to once per [budget_stride] nodes: a
   search node costs well under a microsecond, so the deadline is honoured
   within a few milliseconds without a clock read per node. *)
let budget_stride = 4096

let check_weights n_rows w =
  if Array.length w <> n_rows then invalid_arg "Ilp.solve: weight count mismatch";
  Array.iter (fun x -> if x <= 0. then invalid_arg "Ilp.solve: weights must be > 0") w

(* Weighted independent-column bound: columns whose covering-row sets
   are pairwise disjoint need pairwise distinct rows, so the cheapest
   row of each is a valid additive lower bound. *)
let independent_bound m weights =
  let n_rows = Matrix.rows m in
  let min_weight_of_col j =
    Bitvec.fold_ones
      (fun acc i -> Float.min acc weights.(i))
      Float.infinity (Matrix.col m j)
  in
  fun need ->
    let used = Bitvec.create n_rows in
    let lb = ref 0. in
    Bitvec.iter_ones
      (fun j ->
        let cover = Matrix.col m j in
        if not (Bitvec.intersects cover used) then begin
          Bitvec.union_into ~into:used cover;
          lb := !lb +. min_weight_of_col j
        end)
      need;
    !lb

(* ------------------------------------------------------------------ *)
(* Resumable depth-first branch-and-bound.

   The search keeps an explicit stack of pending subproblems instead of
   recursing, so it can stop after a node quantum and resume later with
   the frontier intact — the suspension point the racing portfolio needs.
   A stack frame records the parent's residual need plus the row the
   child subtracts; the child's vector is materialised only when the
   frame is popped, which keeps memory at the recursion's level (one
   live vector per tree level plus the frontier's parent references).

   The pop-order reproduces the historical recursive traversal exactly:
   candidates are pushed in reverse, so the cheapest-first candidate
   order is also the exploration order, and [nodes] counts one increment
   per popped frame — the recursive version's increment-on-entry. *)

type frame = {
  f_need : Bitvec.t; (* parent's residual columns (shared, read-only) *)
  f_sub : int; (* row the child picks, -1 for the root frame *)
  f_chosen : int list; (* parent's picks *)
  f_cost : float; (* parent's cost *)
}

type search = {
  s_matrix : Matrix.t;
  s_weights : float array;
  s_bound : Bitvec.t -> float;
  s_node_limit : int;
  mutable s_stack : frame list;
  mutable s_best : int list;
  mutable s_cost : float;
  mutable s_nodes : int;
  mutable s_incumbents : int;
  mutable s_prunes : int;
  mutable s_stop : stop_reason option;
}

(* Lagrangian iterations scale down on huge instances: the bound is
   O(iters × nnz) at the root and the xl end-game should spend its time
   branching, not polishing multipliers. *)
let lagrangian_iters m = if Matrix.ones m > 2_000_000 then 8 else 25

let hybrid_bound m weights ~ub =
  let lag = Lagrangian.optimize ~iters:(lagrangian_iters m) ~ub ~weights m in
  let indep = independent_bound m weights in
  (lag, fun need -> Float.max (indep need) (Lagrangian.node_bound lag need))

let seed_of ?weights m =
  (* The incumbent must optimise the same objective as the search: a
     cardinality-greedy seed on a weighted instance both starts the
     search from the wrong cover and reports the wrong cost when a
     budget expires before any improvement. *)
  let rows = Greedy.solve_weighted ?weights m in
  (rows, Greedy.cost ?weights rows)

let start ?weights ?(node_limit = 2_000_000) ?bound ?seed m =
  let n_rows = Matrix.rows m in
  let w =
    match weights with
    | None -> Array.make n_rows 1.0
    | Some w ->
        check_weights n_rows w;
        w
  in
  let seed_rows, seed_cost =
    match seed with Some s -> s | None -> seed_of ?weights m
  in
  let bound =
    match bound with Some b -> b | None -> snd (hybrid_bound m w ~ub:seed_cost)
  in
  let root_need = Bitvec.copy (Matrix.universe m) in
  {
    s_matrix = m;
    s_weights = w;
    s_bound = bound;
    s_node_limit = node_limit;
    s_stack = [ { f_need = root_need; f_sub = -1; f_chosen = []; f_cost = 0. } ];
    s_best = seed_rows;
    s_cost = seed_cost;
    s_nodes = 0;
    s_incumbents = 0;
    s_prunes = 0;
    s_stop = None;
  }

let inject s ~rows ~cost =
  if cost < s.s_cost -. epsilon then begin
    s.s_cost <- cost;
    s.s_best <- rows
  end

let best s = (List.sort compare s.s_best, s.s_cost)
let nodes_explored s = s.s_nodes
let incumbent_updates s = s.s_incumbents
let prunes s = s.s_prunes
let search_stop s = s.s_stop
let exhausted s = s.s_stack = [] && s.s_stop = None

let advance ?(quantum = max_int) ?budget s =
  let m = s.s_matrix and weights = s.s_weights in
  let deadline_nodes =
    if quantum > max_int - s.s_nodes then max_int else s.s_nodes + quantum
  in
  let note_budget () =
    if s.s_stop = None then
      match budget with
      | Some b when s.s_nodes mod budget_stride = 0 && Budget.expired b -> (
          match Budget.stop_reason b with
          | Some r -> s.s_stop <- Some (Budget r)
          | None -> ())
      | _ -> ()
  in
  while s.s_stop = None && s.s_stack <> [] && s.s_nodes < deadline_nodes do
    match s.s_stack with
    | [] -> ()
    | fr :: rest ->
        s.s_stack <- rest;
        s.s_nodes <- s.s_nodes + 1;
        note_budget ();
        if s.s_nodes > s.s_node_limit then s.s_stop <- Some Node_limit
        else if s.s_stop <> None then ()
        else begin
          let need, chosen, cost =
            if fr.f_sub < 0 then (fr.f_need, fr.f_chosen, fr.f_cost)
            else begin
              let need = Bitvec.copy fr.f_need in
              Rowset.diff_into ~into:need (Matrix.rowset m fr.f_sub);
              (need, fr.f_sub :: fr.f_chosen, fr.f_cost +. weights.(fr.f_sub))
            end
          in
          if Bitvec.is_empty need then begin
            if cost < s.s_cost -. epsilon then begin
              s.s_incumbents <- s.s_incumbents + 1;
              s.s_cost <- cost;
              s.s_best <- chosen
            end
          end
          else if cost +. s.s_bound need >= s.s_cost -. epsilon then
            s.s_prunes <- s.s_prunes + 1
          else begin
            (* Branch on the hardest column: fewest covering rows. *)
            let pick = ref (-1) and pick_count = ref max_int in
            Bitvec.iter_ones
              (fun j ->
                let cnt = Bitvec.count (Matrix.col m j) in
                if cnt < !pick_count then begin
                  pick := j;
                  pick_count := cnt
                end)
              need;
            let candidates =
              List.sort
                (fun a b ->
                  (* Cheapest first; larger marginal coverage breaks ties. *)
                  let c = Float.compare weights.(a) weights.(b) in
                  if c <> 0 then c
                  else
                    Stdlib.compare
                      (Rowset.count_inter (Matrix.rowset m b) need)
                      (Rowset.count_inter (Matrix.rowset m a) need))
                (Bitvec.to_list (Matrix.col m !pick))
            in
            (* Reverse push: the cheapest candidate is the next pop. *)
            List.iter
              (fun i ->
                s.s_stack <-
                  { f_need = need; f_sub = i; f_chosen = chosen; f_cost = cost }
                  :: s.s_stack)
              (List.rev candidates)
          end
        end
  done

(* ------------------------------------------------------------------ *)

let solve ?weights ?(node_limit = 2_000_000) ?budget m =
  let n_rows = Matrix.rows m and n_cols = Matrix.cols m in
  Trace.with_span "ilp.solve"
    ~args:[ ("rows", string_of_int n_rows); ("cols", string_of_int n_cols) ]
  @@ fun () ->
  Option.iter (check_weights n_rows) weights;
  let w = match weights with None -> Array.make n_rows 1.0 | Some w -> w in
  (* Columns no row covers are unreachable for any selection.  Solve the
     coverable sub-instance and report the dead columns instead of
     raising: on an unreduced matrix with undetectable faults the exact
     method then degrades exactly like {!Greedy.solve}, which has always
     skipped them. *)
  let uncovered = Matrix.uncoverable m in
  (* Incumbent: greedy upper bound — also the anytime fallback returned
     when the node or wall-clock budget expires before the search ends. *)
  let seed_rows, seed_cost = seed_of ?weights m in
  (* A budget that expired before the search even starts (e.g. the matrix
     build consumed the whole allowance) returns the greedy incumbent
     immediately. *)
  let already_expired =
    match budget with
    | Some b when Budget.expired b -> Budget.stop_reason b
    | _ -> None
  in
  match already_expired with
  | Some r ->
      {
        selected = List.sort compare seed_rows;
        cost = seed_cost;
        optimal = false;
        nodes_explored = 0;
        stop_reason = Budget r;
        uncovered;
      }
  | None ->
      let lag, bound = hybrid_bound m w ~ub:seed_cost in
      if lag.Lagrangian.lb >= seed_cost -. epsilon then begin
        (* The dual bound already meets the greedy seed: optimal without
           opening a single node — the Lagrangian version of the paper's
           "the reduction solved it" fast path. *)
        Metrics.incr m_root_proofs;
        {
          selected = List.sort compare seed_rows;
          cost = seed_cost;
          optimal = true;
          nodes_explored = 0;
          stop_reason = Complete;
          uncovered;
        }
      end
      else begin
        let s =
          start ?weights ~node_limit ~bound ~seed:(seed_rows, seed_cost) m
        in
        advance ?budget s;
        Metrics.add m_nodes s.s_nodes;
        Metrics.add m_incumbents s.s_incumbents;
        Metrics.add m_prunes s.s_prunes;
        let selected, cost = best s in
        {
          selected;
          cost;
          optimal = s.s_stop = None;
          nodes_explored = s.s_nodes;
          stop_reason = (match s.s_stop with None -> Complete | Some r -> r);
          uncovered;
        }
      end
