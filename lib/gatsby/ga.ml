open Reseed_util

type 'a problem = {
  init : Rng.t -> 'a;
  fitness : 'a -> float;
  crossover : Rng.t -> 'a -> 'a -> 'a;
  mutate : Rng.t -> 'a -> 'a;
}

type config = {
  population : int;
  generations : int;
  elite : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
}

let default_config =
  {
    population = 24;
    generations = 16;
    elite = 2;
    tournament = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.5;
  }

type 'a outcome = {
  best : 'a;
  best_fitness : float;
  evaluations : int;
  stopped_early : bool;
}

let m_generations =
  Metrics.counter ~help:"GA generations evolved" "ga_generations"

let m_evaluations =
  Metrics.counter ~help:"GA fitness evaluations" "ga_evaluations"

let optimize ?(config = default_config) ?eval_batch ?budget ~rng problem =
  if config.population < 2 then invalid_arg "Ga.optimize: population must be >= 2";
  if config.elite >= config.population then invalid_arg "Ga.optimize: elite too large";
  Trace.with_span "ga.optimize"
    ~args:
      [
        ("population", string_of_int config.population);
        ("generations", string_of_int config.generations);
      ]
  @@ fun () ->
  let evaluations = ref 0 in
  (* Genome creation (the only RNG consumer) stays sequential; fitness
     evaluation happens in whole-cohort batches so a caller-supplied
     [eval_batch] can fan the expensive evaluations out over domains.
     The batch boundary does not change which genomes are created or in
     which order, so results are independent of the evaluator. *)
  let eval_all gs =
    evaluations := !evaluations + Array.length gs;
    match eval_batch with
    | Some f -> f gs
    | None -> Array.map problem.fitness gs
  in
  let genomes = Array.init config.population (fun _ -> problem.init rng) in
  let fits = eval_all genomes in
  (* Population kept sorted by descending fitness. *)
  let scored = Array.init config.population (fun i -> (genomes.(i), fits.(i))) in
  let sort () =
    Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored
  in
  sort ();
  let best = ref (fst scored.(0)) and best_fitness = ref (snd scored.(0)) in
  let tournament_pick () =
    let best_i = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament do
      let i = Rng.int rng config.population in
      if snd scored.(i) > snd scored.(!best_i) then best_i := i
    done;
    fst scored.(!best_i)
  in
  (* Budget is polled once per generation: the initial cohort above always
     completes, so [best] is a valid (if unevolved) genome on expiry. *)
  let gen = ref 0 in
  while !gen < config.generations && not (Budget.check budget) do
    incr gen;
    Trace.with_span "ga.generation" @@ fun () ->
    let n_children = config.population - config.elite in
    let children =
      Array.init n_children (fun _ ->
          let a = tournament_pick () in
          let child =
            if Rng.float rng < config.crossover_rate then
              problem.crossover rng a (tournament_pick ())
            else a
          in
          if Rng.float rng < config.mutation_rate then problem.mutate rng child
          else child)
    in
    let child_fits = eval_all children in
    let next = Array.make config.population scored.(0) in
    for i = 0 to config.elite - 1 do
      next.(i) <- scored.(i)
    done;
    for k = 0 to n_children - 1 do
      next.(config.elite + k) <- (children.(k), child_fits.(k))
    done;
    Array.blit next 0 scored 0 config.population;
    sort ();
    if snd scored.(0) > !best_fitness then begin
      best := fst scored.(0);
      best_fitness := snd scored.(0)
    end
  done;
  Metrics.add m_generations !gen;
  Metrics.add m_evaluations !evaluations;
  {
    best = !best;
    best_fitness = !best_fitness;
    evaluations = !evaluations;
    stopped_early = Budget.check budget;
  }
