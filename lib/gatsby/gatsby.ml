open Reseed_fault
open Reseed_tpg
open Reseed_util

type config = {
  cycles : int;
  ga : Ga.config;
  max_rounds : int;
  stall_retries : int;
  target_coverage : float;
}

(* The GA budget (population × generations ≈ 72 burst fault-simulations
   per committed reseeding) is calibrated to the published GATSBY
   experiments' era: every fitness evaluation is a full burst fault
   simulation, which is precisely why the paper calls the approach
   simulation-bound.  bench/main.exe ablation sweeps this budget. *)
let default_config =
  {
    cycles = 150;
    ga = { Ga.default_config with Ga.population = 12; generations = 6 };
    max_rounds = 200;
    stall_retries = 2;
    target_coverage = 100.0;
  }

type result = {
  triplets : Triplet.t list;
  detected : Bitvec.t;
  test_length : int;
  fault_sims : int;
  ga_evaluations : int;
  stopped_early : bool;
}

type genome = { g_seed : Word.t; g_operand : Word.t }

let genome_problem ~width ~fitness =
  let mix rng a b =
    (* Uniform crossover: each bit drawn from either parent. *)
    let mask = Word.random rng width in
    Word.logor (Word.logand a mask) (Word.logand b (Word.lognot mask))
  in
  let flip_bits rng w =
    let n = 1 + Rng.int rng 2 in
    let rec go w k =
      if k = 0 then w
      else
        let pos = Rng.int rng width in
        go (Word.set_bit w pos (not (Word.get_bit w pos))) (k - 1)
    in
    go w n
  in
  {
    Ga.init = (fun rng -> { g_seed = Word.random rng width; g_operand = Word.random rng width });
    fitness;
    crossover =
      (fun rng a b ->
        { g_seed = mix rng a.g_seed b.g_seed; g_operand = mix rng a.g_operand b.g_operand });
    mutate =
      (fun rng g ->
        if Rng.bool rng then { g with g_seed = flip_bits rng g.g_seed }
        else { g with g_operand = flip_bits rng g.g_operand });
  }

let m_rounds = Metrics.counter ~help:"GATSBY reseeding rounds" "gatsby_rounds"

let m_committed =
  Metrics.counter ~help:"GATSBY triplets committed" "gatsby_triplets"

let run ?(config = default_config) ?pool ?budget sim tpg ~rng ~targets =
  let nf = Fault_sim.fault_count sim in
  if Bitvec.length targets <> nf then invalid_arg "Gatsby.run: target mask size";
  Trace.with_span "gatsby.run" ~args:[ ("tpg", tpg.Tpg.name) ] @@ fun () ->
  let width = tpg.Tpg.width in
  let active = Bitvec.copy targets in
  let detected = Bitvec.create nf in
  let total_targets = max 1 (Bitvec.count targets) in
  let sims_at_start = Fault_sim.sims_performed sim in
  let triplets = ref [] and test_length = ref 0 and ga_evals = ref 0 in
  let burst g =
    Tpg.run_bits tpg ~seed:g.g_seed
      ~operand:(tpg.Tpg.fix_operand g.g_operand)
      ~cycles:config.cycles
  in
  (* Population members are evaluated in parallel: each worker
     fault-simulates bursts on its own simulator shard against the shared
     read-only [active] mask (only mutated between GA rounds).  The GA's
     RNG never leaves the master domain, so the search trajectory is
     bit-identical at every job count. *)
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let shard = Fault_sim.shard sim (Pool.jobs pool) in
  let eval_batch genomes =
    let out = Array.make (Array.length genomes) 0.0 in
    Pool.parallel_for ~pool ~chunk:1 ~total:(Array.length genomes)
      (fun ~worker ~lo ~hi ->
        let s = shard.(worker) in
        for i = lo to hi - 1 do
          out.(i) <-
            float_of_int (Fault_sim.count_new_detections s (burst genomes.(i)) ~active)
        done);
    out
  in
  let coverage () = 100.0 *. float_of_int (Bitvec.count detected) /. float_of_int total_targets in
  let rounds = ref 0 and stalls = ref 0 and go = ref true in
  while !go && !rounds < config.max_rounds && coverage () < config.target_coverage
        && not (Budget.check budget) do
    incr rounds;
    Trace.with_span "gatsby.round" @@ fun () ->
    let fitness g =
      float_of_int (Fault_sim.count_new_detections sim (burst g) ~active)
    in
    let problem = genome_problem ~width ~fitness in
    let outcome = Ga.optimize ~config:config.ga ~eval_batch ?budget ~rng problem in
    ga_evals := !ga_evals + outcome.Ga.evaluations;
    if outcome.Ga.best_fitness < 0.5 then begin
      incr stalls;
      if !stalls > config.stall_retries then go := false
    end
    else begin
      stalls := 0;
      let g = outcome.Ga.best in
      let patterns = burst g in
      let firsts = Fault_sim.first_detections sim ~active patterns in
      let last_useful = ref (-1) in
      Array.iteri
        (fun fi first ->
          match first with
          | Some p when Bitvec.get active fi ->
              Bitvec.set detected fi;
              Bitvec.clear active fi;
              if p > !last_useful then last_useful := p
          | _ -> ())
        firsts;
      (* The GA claimed a positive gain, so some pattern was useful. *)
      assert (!last_useful >= 0);
      let eff = !last_useful + 1 in
      let triplet =
        Triplet.make ~seed:g.g_seed ~operand:(tpg.Tpg.fix_operand g.g_operand) ~cycles:eff
      in
      triplets := triplet :: !triplets;
      test_length := !test_length + eff
    end
  done;
  Fault_sim.merge_sims ~into:sim shard;
  Metrics.add m_rounds !rounds;
  Metrics.add m_committed (List.length !triplets);
  {
    triplets = List.rev !triplets;
    detected;
    test_length = !test_length;
    fault_sims = Fault_sim.sims_performed sim - sims_at_start;
    ga_evaluations = !ga_evals;
    stopped_early = Budget.check budget;
  }
