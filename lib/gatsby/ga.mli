(** Generic steady-state genetic algorithm.

    Tournament selection, elitism, uniform crossover and mutation over an
    abstract genome.  Deterministic given the RNG.  Used by the GATSBY
    reseeding baseline; kept generic so tests can exercise it on known
    closed-form landscapes. *)

open Reseed_util

type 'a problem = {
  init : Rng.t -> 'a;  (** fresh random genome *)
  fitness : 'a -> float;  (** higher is better; may be expensive *)
  crossover : Rng.t -> 'a -> 'a -> 'a;
  mutate : Rng.t -> 'a -> 'a;
}

type config = {
  population : int;
  generations : int;
  elite : int;  (** genomes copied unchanged each generation *)
  tournament : int;  (** tournament size for parent selection *)
  crossover_rate : float;
  mutation_rate : float;  (** probability a child is mutated *)
}

val default_config : config

type 'a outcome = {
  best : 'a;
  best_fitness : float;
  evaluations : int;  (** number of fitness calls performed *)
  stopped_early : bool;  (** the [budget] expired before [generations] ran *)
}

(** [optimize ?config ?eval_batch ?budget ~rng problem] runs the GA and
    returns the best genome ever seen.  Fitness is evaluated in
    whole-cohort batches: [eval_batch] (default
    [Array.map problem.fitness]) may compute the array in parallel —
    genome creation, which consumes the RNG, is already finished when it
    is called, so the outcome is identical whatever the evaluator's
    execution order.  [budget] is polled between generations; on expiry
    the best genome so far is returned with [stopped_early] set (the
    initial cohort always completes). *)
val optimize :
  ?config:config ->
  ?eval_batch:('a array -> float array) ->
  ?budget:Budget.t ->
  rng:Rng.t ->
  'a problem ->
  'a outcome
