(** GATSBY-style genetic reseeding baseline ([7][8] in the paper).

    GATSBY computes reseedings one at a time: a GA searches for the
    triplet [(δ, σ)] (evolution length fixed) that maximises the number
    of still-undetected faults caught by its burst; the winner is
    committed, its detections are dropped, and the search repeats until
    the target coverage is reached or the GA stalls.  Because every
    fitness evaluation is a fault simulation of a whole burst, the method
    is simulation-bound — the cost the paper's set covering approach
    eliminates.  No global minimisation is attempted, which is why it
    needs more triplets than the covering formulation. *)

open Reseed_fault
open Reseed_tpg
open Reseed_util

type config = {
  cycles : int;  (** evolution length T per triplet *)
  ga : Ga.config;
  max_rounds : int;  (** hard cap on reseedings *)
  stall_retries : int;  (** fresh GA restarts tolerated without progress *)
  target_coverage : float;  (** stop at this % of the target faults *)
}

val default_config : config

type result = {
  triplets : Triplet.t list;  (** committed reseedings, in order *)
  detected : Bitvec.t;  (** faults covered over the target list *)
  test_length : int;  (** Σ effective (truncated) burst lengths *)
  fault_sims : int;  (** total injections — the paper's cost metric *)
  ga_evaluations : int;
  stopped_early : bool;
      (** the [budget] expired: [triplets] holds the reseedings committed
          so far, still sound against [detected] *)
}

(** [run ?config ?pool ?budget sim tpg ~rng ~targets] hunts triplets until
    [targets] is covered (or the configuration gives up).  [targets]
    restricts the fault universe, mirroring the paper's "faults not
    covered by the other triplets" accounting.  GA fitness evaluations
    (burst fault simulations) run in parallel over [pool] (default:
    {!Pool.default}) on per-worker simulator shards; the GA's RNG stays
    on the calling domain, so the search is bit-identical at every job
    count.  [budget] is polled between GA generations and between rounds:
    on expiry the triplets committed so far are returned with
    [stopped_early] set. *)
val run :
  ?config:config ->
  ?pool:Pool.t ->
  ?budget:Budget.t ->
  Fault_sim.t ->
  Tpg.t ->
  rng:Rng.t ->
  targets:Bitvec.t ->
  result
