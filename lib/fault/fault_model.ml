open Reseed_netlist

type t = Stuck_at | Transition_delay

let all = [ Stuck_at; Transition_delay ]

let name = function Stuck_at -> "stuck" | Transition_delay -> "transition"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "stuck" | "stuck-at" | "stuck_at" -> Some Stuck_at
  | "transition" | "transition-delay" | "transition_delay" -> Some Transition_delay
  | _ -> None

let faults m c =
  match m with
  | Stuck_at -> Fault.all c
  | Transition_delay -> Fault.universe c

let site_signal c (f : Fault.t) =
  match f.Fault.site with
  | Fault.Out g -> g
  | Fault.Pin { gate; pin } -> c.Circuit.nodes.(gate).Circuit.fanins.(pin)

let fault_to_string m c (f : Fault.t) =
  match m with
  | Stuck_at -> Fault.to_string c f
  | Transition_delay ->
      let kind = if f.Fault.stuck then "STF" else "STR" in
      let base = Fault.to_string c f in
      (* Rewrite the stuck-at suffix rather than duplicating the site
         rendering. *)
      let cut =
        if String.length base >= 3 then String.sub base 0 (String.length base - 3)
        else base
      in
      cut ^ kind
