open Reseed_netlist
open Reseed_sim
open Reseed_util

type t = {
  circuit : Circuit.t;
  faults : Fault.t array;
  po_position : int array; (* node -> PO index, or -1 *)
  (* Scratch reused across fault injections; [stamp]/[in_heap] hold the id
     of the fault that last wrote them, so no clearing is ever needed. *)
  stamp : int array;
  fval : int array;
  heap : int array;
  mutable heap_len : int;
  in_heap : int array;
  mutable cur : int;
  mutable sims : int;
}

let create circuit faults =
  let n = Circuit.node_count circuit in
  let po_position = Array.make n (-1) in
  Array.iteri (fun pos node -> po_position.(node) <- pos) circuit.Circuit.outputs;
  {
    circuit;
    faults;
    po_position;
    stamp = Array.make n (-1);
    fval = Array.make n 0;
    heap = Array.make (max 16 n) 0;
    heap_len = 0;
    in_heap = Array.make n (-1);
    cur = -1;
    sims = 0;
  }

(* Fresh scratch over the same immutable circuit/fault/PO-map arrays: the
   copy can run [process] concurrently with the original from another
   domain.  Its sim counter starts at zero so per-worker tallies can be
   summed back with [merge_sims]. *)
let copy t =
  let n = Circuit.node_count t.circuit in
  {
    t with
    stamp = Array.make n (-1);
    fval = Array.make n 0;
    heap = Array.make (max 16 n) 0;
    heap_len = 0;
    in_heap = Array.make n (-1);
    cur = -1;
    sims = 0;
  }

let shard t n =
  if n < 1 then invalid_arg "Fault_sim.shard: need at least one shard";
  Array.init n (fun i -> if i = 0 then t else copy t)

let merge_sims ~into shards =
  Array.iter
    (fun s ->
      if s != into then begin
        into.sims <- into.sims + s.sims;
        s.sims <- 0
      end)
    shards

let circuit t = t.circuit
let faults t = t.faults
let fault_count t = Array.length t.faults
let sims_performed t = t.sims

(* Min-heap over node indices: pops nodes in topological order so every
   fanin is final before a node is evaluated. *)
let heap_push t i =
  if t.in_heap.(i) <> t.cur then begin
    t.in_heap.(i) <- t.cur;
    let pos = ref t.heap_len in
    t.heap_len <- t.heap_len + 1;
    t.heap.(!pos) <- i;
    let continue = ref true in
    while !continue && !pos > 0 do
      let parent = (!pos - 1) / 2 in
      if t.heap.(parent) > t.heap.(!pos) then begin
        let tmp = t.heap.(parent) in
        t.heap.(parent) <- t.heap.(!pos);
        t.heap.(!pos) <- tmp;
        pos := parent
      end
      else continue := false
    done
  end

let heap_pop t =
  let top = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !pos) + 1 and r = (2 * !pos) + 2 in
    let smallest = ref !pos in
    if l < t.heap_len && t.heap.(l) < t.heap.(!smallest) then smallest := l;
    if r < t.heap_len && t.heap.(r) < t.heap.(!smallest) then smallest := r;
    if !smallest <> !pos then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!pos);
      t.heap.(!pos) <- tmp;
      pos := !smallest
    end
    else continue := false
  done;
  top

let full = max_int

(* Value of node [f] as seen by the faulty machine of the current fault. *)
let value t (good : int array) f =
  if t.stamp.(f) = t.cur then t.fval.(f) else good.(f)

(* Re-evaluate node [i] in the faulty machine.  For a [Pin] fault at this
   node, [force_pin >= 0] pins that fanin to [force_word]. *)
let eval_faulty t good i ~force_pin ~force_word =
  let node = t.circuit.Circuit.nodes.(i) in
  let fanins = node.Circuit.fanins in
  let arg j = if j = force_pin then force_word else value t good fanins.(j) in
  let fold op seed =
    let acc = ref seed in
    for j = 0 to Array.length fanins - 1 do
      acc := op !acc (arg j)
    done;
    !acc
  in
  match node.Circuit.kind with
  | Gate.Input -> value t good i
  | Gate.Buf -> arg 0
  | Gate.Not -> lnot (arg 0) land full
  | Gate.And -> fold ( land ) full
  | Gate.Nand -> lnot (fold ( land ) full) land full
  | Gate.Or -> fold ( lor ) 0
  | Gate.Nor -> lnot (fold ( lor ) 0) land full
  | Gate.Xor -> fold ( lxor ) 0
  | Gate.Xnor -> lnot (fold ( lxor ) 0) land full
  | Gate.Const0 -> 0
  | Gate.Const1 -> full

(* Inject one fault against the good-machine block values and return the
   word of patterns that detect it at some primary output. *)
let process t (good : int array) mask (fault : Fault.t) =
  t.cur <- t.cur + 1;
  t.sims <- t.sims + 1;
  let stuck_word = if fault.Fault.stuck then full else 0 in
  let site, site_value =
    match fault.Fault.site with
    | Fault.Out g -> (g, stuck_word)
    | Fault.Pin { gate; pin } ->
        (gate, eval_faulty t good gate ~force_pin:pin ~force_word:stuck_word)
  in
  let diff0 = (site_value lxor good.(site)) land mask in
  if diff0 = 0 then 0
  else begin
    t.stamp.(site) <- t.cur;
    t.fval.(site) <- site_value;
    let detect = ref (if t.po_position.(site) >= 0 then diff0 else 0) in
    t.heap_len <- 0;
    Array.iter (fun s -> heap_push t s) t.circuit.Circuit.fanouts.(site);
    while t.heap_len > 0 do
      let i = heap_pop t in
      let v = eval_faulty t good i ~force_pin:(-1) ~force_word:0 in
      let diff = (v lxor good.(i)) land mask in
      if diff <> 0 then begin
        t.stamp.(i) <- t.cur;
        t.fval.(i) <- v;
        if t.po_position.(i) >= 0 then detect := !detect lor diff;
        Array.iter (fun s -> heap_push t s) t.circuit.Circuit.fanouts.(i)
      end
    done;
    !detect
  end

(* Blocks are packed and good-simulated one at a time so that [stop] — the
   fault-dropping early exit — skips the good-machine work of every block
   past the one where the last active fault was found. *)
let iter_blocks ?(stop = fun () -> false) t patterns f =
  let total = Array.length patterns in
  let base = ref 0 in
  while !base < total && not (stop ()) do
    let len = min Logic_sim.block_width (total - !base) in
    let block = Logic_sim.pack t.circuit (Array.sub patterns !base len) in
    let good = Logic_sim.simulate t.circuit block in
    let mask = Logic_sim.valid_mask block.Logic_sim.width in
    f ~base:!base ~good ~mask;
    base := !base + len
  done

let detection_map t patterns =
  let total = Array.length patterns in
  let result = Array.init (fault_count t) (fun _ -> Bitvec.create total) in
  iter_blocks t patterns (fun ~base ~good ~mask ->
      Array.iteri
        (fun fi fault ->
          let d = process t good mask fault in
          if d <> 0 then
            for k = 0 to Logic_sim.block_width - 1 do
              if d lsr k land 1 = 1 then Bitvec.set result.(fi) (base + k)
            done)
        t.faults);
  result

let detected_set t patterns ~active =
  if Bitvec.length active <> fault_count t then
    invalid_arg "Fault_sim.detected_set: active mask size mismatch";
  let detected = Bitvec.create (fault_count t) in
  let remaining = ref (Bitvec.count active) in
  iter_blocks ~stop:(fun () -> !remaining = 0) t patterns
    (fun ~base:_ ~good ~mask ->
      Array.iteri
        (fun fi fault ->
          if Bitvec.get active fi && not (Bitvec.get detected fi) then
            if process t good mask fault <> 0 then begin
              Bitvec.set detected fi;
              decr remaining
            end)
        t.faults);
  detected

let first_detections t ?active patterns =
  let result = Array.make (fault_count t) None in
  let live fi = match active with None -> true | Some a -> Bitvec.get a fi in
  let remaining =
    ref
      (match active with
      | None -> fault_count t
      | Some a -> Bitvec.count a)
  in
  iter_blocks ~stop:(fun () -> !remaining = 0) t patterns
    (fun ~base ~good ~mask ->
      Array.iteri
        (fun fi fault ->
          if live fi && result.(fi) = None then begin
            let d = process t good mask fault in
            if d <> 0 then begin
              let k = ref 0 in
              while d lsr !k land 1 = 0 do incr k done;
              result.(fi) <- Some (base + !k);
              decr remaining
            end
          end)
        t.faults);
  result

let count_new_detections t patterns ~active =
  Bitvec.count (detected_set t patterns ~active)

let coverage_pct t detected = Stats.pct (Bitvec.count detected) (fault_count t)
