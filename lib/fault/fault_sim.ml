open Reseed_netlist
open Reseed_sim
open Reseed_util

type engine = Event | Cpt | Hybrid

let engine_name = function Event -> "event" | Cpt -> "cpt" | Hybrid -> "hybrid"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "event" -> Some Event
  | "cpt" -> Some Cpt
  | "hybrid" -> Some Hybrid
  | _ -> None

type t = {
  circuit : Circuit.t;
  faults : Fault.t array;
  engine : engine;
  model : Fault_model.t;
  site_sig : int array;
      (* transition model only: per-fault launch-signal node (the stem
         whose good value at the launch pattern gates activation) *)
  launch_prev : Bytes.t;
      (* transition model only: every node's good value at the last lane
         of the previous block — the launch value of the next block's
         lane 0 *)
  mutable launch_valid : bool;
      (* false on a sweep's first block: lane 0 has no launch pattern *)
  ffr : Ffr.t;
  po_position : int array; (* node -> PO index, or -1 *)
  prop_stems : int array;
      (* stems whose observability needs a flip propagation — they reach a
         PO without being one; descending (reverse-topological) order so
         an eager sweep finishes downstream stems first *)
  (* Event-propagation scratch reused across injections; [stamp]/[in_heap]
     hold the id of the propagation that last wrote them, so no clearing
     is ever needed. *)
  stamp : int array;
  fval : int array;
  heap : int array;
  mutable heap_len : int;
  in_heap : int array;
  mutable cur : int;
  (* Per-block CPT scratch, invalidated by bumping [block]. *)
  mutable block : int;
  obs : int array; (* stem -> flip-observability word *)
  obs_stamp : int array;
  sens : int array; (* node -> word of patterns where flipping it is detected *)
  sens_stamp : int array;
  mutable sims : int;
  mutable props : int;
}

let scratch n =
  ( Array.make n (-1),
    Array.make n 0,
    Array.make (max 16 n) 0,
    Array.make n (-1),
    Array.make n 0,
    Array.make n (-1),
    Array.make n 0,
    Array.make n (-1) )

let create ?(engine = Hybrid) ?(model = Fault_model.Stuck_at) circuit faults =
  let n = Circuit.node_count circuit in
  let po_position = Array.make n (-1) in
  Array.iteri (fun pos node -> po_position.(node) <- pos) circuit.Circuit.outputs;
  let ffr = Ffr.compute circuit in
  let prop_stems =
    Array.fold_left
      (fun acc s ->
        if po_position.(s) < 0 && Ffr.reaches_po ffr s then s :: acc else acc)
      [] (Ffr.stems ffr)
    |> Array.of_list
  in
  let stamp, fval, heap, in_heap, obs, obs_stamp, sens, sens_stamp = scratch n in
  let site_sig =
    match model with
    | Fault_model.Stuck_at -> [||]
    | Fault_model.Transition_delay ->
        Array.map (Fault_model.site_signal circuit) faults
  in
  {
    circuit;
    faults;
    engine;
    model;
    site_sig;
    launch_prev = Bytes.make n '\000';
    launch_valid = false;
    ffr;
    po_position;
    prop_stems;
    stamp;
    fval;
    heap;
    heap_len = 0;
    in_heap;
    cur = -1;
    block = 0;
    obs;
    obs_stamp;
    sens;
    sens_stamp;
    sims = 0;
    props = 0;
  }

(* Fresh scratch over the same immutable circuit/fault/FFR/PO-map arrays:
   the copy can run [process] concurrently with the original from another
   domain.  Its work counters start at zero so per-worker tallies can be
   summed back with [merge_sims]. *)
let copy t =
  let n = Circuit.node_count t.circuit in
  let stamp, fval, heap, in_heap, obs, obs_stamp, sens, sens_stamp = scratch n in
  {
    t with
    launch_prev = Bytes.make n '\000';
    launch_valid = false;
    stamp;
    fval;
    heap;
    heap_len = 0;
    in_heap;
    cur = -1;
    block = 0;
    obs;
    obs_stamp;
    sens;
    sens_stamp;
    sims = 0;
    props = 0;
  }

let shard t n =
  if n < 1 then invalid_arg "Fault_sim.shard: need at least one shard";
  Array.init n (fun i -> if i = 0 then t else copy t)

let merge_sims ~into shards =
  Array.iter
    (fun s ->
      if s != into then begin
        into.sims <- into.sims + s.sims;
        into.props <- into.props + s.props;
        s.sims <- 0;
        s.props <- 0
      end)
    shards

let circuit t = t.circuit
let faults t = t.faults
let model t = t.model
let fault_count t = Array.length t.faults
let sims_performed t = t.sims
let event_propagations t = t.props
let engine t = t.engine

(* Min-heap over node indices: pops nodes in topological order so every
   fanin is final before a node is evaluated. *)
let heap_push t i =
  if t.in_heap.(i) <> t.cur then begin
    t.in_heap.(i) <- t.cur;
    let pos = ref t.heap_len in
    t.heap_len <- t.heap_len + 1;
    t.heap.(!pos) <- i;
    let continue = ref true in
    while !continue && !pos > 0 do
      let parent = (!pos - 1) / 2 in
      if t.heap.(parent) > t.heap.(!pos) then begin
        let tmp = t.heap.(parent) in
        t.heap.(parent) <- t.heap.(!pos);
        t.heap.(!pos) <- tmp;
        pos := parent
      end
      else continue := false
    done
  end

let heap_pop t =
  let top = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !pos) + 1 and r = (2 * !pos) + 2 in
    let smallest = ref !pos in
    if l < t.heap_len && t.heap.(l) < t.heap.(!smallest) then smallest := l;
    if r < t.heap_len && t.heap.(r) < t.heap.(!smallest) then smallest := r;
    if !smallest <> !pos then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!pos);
      t.heap.(!pos) <- tmp;
      pos := !smallest
    end
    else continue := false
  done;
  top

let full = max_int

(* Value of node [f] as seen by the faulty machine of the current fault. *)
let value t (good : int array) f =
  if t.stamp.(f) = t.cur then t.fval.(f) else good.(f)

(* Re-evaluate node [i] in the faulty machine.  For a [Pin] fault at this
   node, [force_pin >= 0] pins that fanin to [force_word]. *)
let eval_faulty t good i ~force_pin ~force_word =
  let node = t.circuit.Circuit.nodes.(i) in
  let fanins = node.Circuit.fanins in
  let arg j = if j = force_pin then force_word else value t good fanins.(j) in
  let fold op seed =
    let acc = ref seed in
    for j = 0 to Array.length fanins - 1 do
      acc := op !acc (arg j)
    done;
    !acc
  in
  match node.Circuit.kind with
  | Gate.Input -> value t good i
  | Gate.Buf -> arg 0
  | Gate.Not -> lnot (arg 0) land full
  | Gate.And -> fold ( land ) full
  | Gate.Nand -> lnot (fold ( land ) full) land full
  | Gate.Or -> fold ( lor ) 0
  | Gate.Nor -> lnot (fold ( lor ) 0) land full
  | Gate.Xor -> fold ( lxor ) 0
  | Gate.Xnor -> lnot (fold ( lxor ) 0) land full
  | Gate.Const0 -> 0
  | Gate.Const1 -> full

(* --- Event engine: single-fault event-driven propagation -------------- *)

(* Inject one fault against the good-machine block values and return the
   word of patterns that detect it at some primary output. *)
let process t (good : int array) mask (fault : Fault.t) =
  t.cur <- t.cur + 1;
  t.sims <- t.sims + 1;
  let stuck_word = if fault.Fault.stuck then full else 0 in
  let site, site_value =
    match fault.Fault.site with
    | Fault.Out g -> (g, stuck_word)
    | Fault.Pin { gate; pin } ->
        (gate, eval_faulty t good gate ~force_pin:pin ~force_word:stuck_word)
  in
  let diff0 = (site_value lxor good.(site)) land mask in
  if diff0 = 0 then 0
  else begin
    t.props <- t.props + 1;
    t.stamp.(site) <- t.cur;
    t.fval.(site) <- site_value;
    let detect = ref (if t.po_position.(site) >= 0 then diff0 else 0) in
    t.heap_len <- 0;
    Array.iter (fun s -> heap_push t s) t.circuit.Circuit.fanouts.(site);
    while t.heap_len > 0 do
      let i = heap_pop t in
      let v = eval_faulty t good i ~force_pin:(-1) ~force_word:0 in
      let diff = (v lxor good.(i)) land mask in
      if diff <> 0 then begin
        t.stamp.(i) <- t.cur;
        t.fval.(i) <- v;
        if t.po_position.(i) >= 0 then detect := !detect lor diff;
        Array.iter (fun s -> heap_push t s) t.circuit.Circuit.fanouts.(i)
      end
    done;
    !detect
  end

(* --- CPT engine: critical-path tracing over fanout-free regions ------- *)

(* Word of patterns where flipping fanin [pin] of gate [i] flips the
   gate's output, all other fanins held at their good values.  Gate-level
   inversions (NAND/NOR/NOT/XNOR) don't affect whether a flip passes. *)
let deriv t (good : int array) i ~pin =
  let node = t.circuit.Circuit.nodes.(i) in
  let fanins = node.Circuit.fanins in
  let fold_others op seed =
    let acc = ref seed in
    for j = 0 to Array.length fanins - 1 do
      if j <> pin then acc := op !acc good.(fanins.(j))
    done;
    !acc
  in
  match node.Circuit.kind with
  | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor -> full
  | Gate.And | Gate.Nand -> fold_others ( land ) full
  | Gate.Or | Gate.Nor -> lnot (fold_others ( lor ) 0) land full
  | Gate.Input | Gate.Const0 | Gate.Const1 ->
      (* gates with fanins only *)
      assert false

let pin_of t g p =
  let fanins = t.circuit.Circuit.nodes.(g).Circuit.fanins in
  let rec go j = if fanins.(j) = p then j else go (j + 1) in
  go 0

(* Observability word of stem [s]: patterns where complementing [s]
   changes some primary output.  Exact for single faults funnelled through
   [s] because the faulty machine downstream of [s] coincides, lane by
   lane, with the flip simulation.  Computed by one event-driven
   propagation of the flip; under [Hybrid] the propagation hands off early
   when the difference frontier collapses onto a single downstream stem
   whose observability is already known for this block — by construction
   all remaining fault effects funnel through that stem (its fanout cone
   is the only un-evaluated region left), which in practice fires at the
   stem's immediate dominator chain. *)
let compute_obs t (good : int array) mask s =
  if not (Ffr.reaches_po t.ffr s) then 0
  else if t.po_position.(s) >= 0 then mask (* flips are their own witness *)
  else begin
    t.cur <- t.cur + 1;
    t.props <- t.props + 1;
    t.stamp.(s) <- t.cur;
    t.fval.(s) <- lnot good.(s) land full;
    let detect = ref 0 in
    t.heap_len <- 0;
    Array.iter (fun q -> heap_push t q) t.circuit.Circuit.fanouts.(s);
    let chain = t.engine = Hybrid in
    let running = ref true in
    while !running && t.heap_len > 0 do
      if
        chain && t.heap_len = 1
        && Ffr.is_stem t.ffr t.heap.(0)
        && t.obs_stamp.(t.heap.(0)) = t.block
      then begin
        let x = heap_pop t in
        let v = eval_faulty t good x ~force_pin:(-1) ~force_word:0 in
        let diff = (v lxor good.(x)) land mask in
        detect := !detect lor (diff land t.obs.(x));
        running := false
      end
      else begin
        let i = heap_pop t in
        let v = eval_faulty t good i ~force_pin:(-1) ~force_word:0 in
        let diff = (v lxor good.(i)) land mask in
        if diff <> 0 then begin
          t.stamp.(i) <- t.cur;
          t.fval.(i) <- v;
          if t.po_position.(i) >= 0 then detect := !detect lor diff;
          Array.iter (fun q -> heap_push t q) t.circuit.Circuit.fanouts.(i)
        end
      end
    done;
    !detect
  end

let obs t good mask s =
  if t.obs_stamp.(s) = t.block then t.obs.(s)
  else begin
    let v = compute_obs t good mask s in
    t.obs.(s) <- v;
    t.obs_stamp.(s) <- t.block;
    v
  end

(* Detectability of a flip appearing at node [n]: the chain of single-path
   gate derivatives down to [n]'s FFR stem, ANDed with the stem's
   observability.  Memoised per block along the walked path. *)
let sens t good mask n =
  if t.sens_stamp.(n) = t.block then t.sens.(n)
  else begin
    (* Ascend the unique fanout path to the first memoised node or stem;
       [path] ends up ordered stem-side first. *)
    let path = ref [] in
    let top = ref n in
    while t.sens_stamp.(!top) <> t.block && not (Ffr.is_stem t.ffr !top) do
      path := !top :: !path;
      top := t.circuit.Circuit.fanouts.(!top).(0)
    done;
    let acc = ref 0 in
    if t.sens_stamp.(!top) = t.block then acc := t.sens.(!top)
    else begin
      acc := obs t good mask !top;
      t.sens.(!top) <- !acc;
      t.sens_stamp.(!top) <- t.block
    end;
    List.iter
      (fun p ->
        (if !acc <> 0 then
           let g = t.circuit.Circuit.fanouts.(p).(0) in
           acc := !acc land deriv t good g ~pin:(pin_of t g p));
        t.sens.(p) <- !acc;
        t.sens_stamp.(p) <- t.block)
      !path;
    !acc
  end

let process_cpt t (good : int array) mask (fault : Fault.t) =
  t.sims <- t.sims + 1;
  let stuck_word = if fault.Fault.stuck then full else 0 in
  match fault.Fault.site with
  | Fault.Out g ->
      let excite = (stuck_word lxor good.(g)) land mask in
      if excite = 0 then 0 else excite land sens t good mask g
  | Fault.Pin { gate; pin } ->
      (* Bump [cur] so [eval_faulty] sees pristine good values (stamps from
         earlier observability propagations go stale). *)
      t.cur <- t.cur + 1;
      let v = eval_faulty t good gate ~force_pin:pin ~force_word:stuck_word in
      let diff = (v lxor good.(gate)) land mask in
      if diff = 0 then 0 else diff land sens t good mask gate

(* --- Per-block engine dispatch ---------------------------------------- *)

type mode = Mode_event | Mode_cpt

(* [Hybrid] falls back to per-fault event propagation when the live fault
   set is sparse (fault-dropping tails): tracing then costs fewer
   propagations than refreshing every stem's observability would. *)
let begin_block t good mask ~live =
  t.block <- t.block + 1;
  match t.engine with
  | Event -> Mode_event
  | Cpt -> Mode_cpt
  | Hybrid ->
      if 2 * live >= Array.length t.prop_stems then begin
        (* Eager reverse-topological observability sweep: every stem's
           downstream stems are finished first, so each flip propagation
           stops at the first dominating stem instead of walking its whole
           fanout cone to the primary outputs. *)
        Array.iter (fun s -> ignore (obs t good mask s)) t.prop_stems;
        Mode_cpt
      end
      else Mode_event

let process_mode t good mask mode fault =
  match mode with
  | Mode_event -> process t good mask fault
  | Mode_cpt -> process_cpt t good mask fault

(* Per-fault dispatch with the fault model applied.  Under [Stuck_at]
   this is [process_mode] verbatim.  Under [Transition_delay] the
   capture-cycle detection word the stuck-at engines computed is masked
   down to the lanes whose {e preceding} pattern put the launch signal at
   the fault's slow initial value (= the capture stuck value): lane [k]'s
   launch value is lane [k-1] of [good] at the site signal, lane 0 takes
   the last lane of the previous block from [launch_prev], and lane 0 of
   a sweep's first block has no launch pattern at all and is masked
   out.  The [sims]/[props] accounting is the capture grade's, so the
   cost metrics stay comparable across models. *)
let process_fault t good mask mode fi fault =
  match t.model with
  | Fault_model.Stuck_at -> process_mode t good mask mode fault
  | Fault_model.Transition_delay ->
      let d = process_mode t good mask mode fault in
      if d = 0 then 0
      else begin
        let s = Array.unsafe_get t.site_sig fi in
        let carry = Char.code (Bytes.unsafe_get t.launch_prev s) in
        let launch = ((good.(s) lsl 1) lor carry) land mask in
        let ok =
          if fault.Fault.stuck then launch else lnot launch land mask
        in
        let valid = if t.launch_valid then mask else mask land lnot 1 in
        d land ok land valid
      end

(* Blocks are packed and good-simulated one at a time so that [stop] — the
   fault-dropping early exit or an expired wall-clock budget — skips the
   good-machine work of every block past the last one needed.  One block
   (62 patterns) is the cooperative-cancellation granularity of every
   sweep: a tripped budget is honoured before the next block starts.
   Every sweep treats its pattern array as a {e sequence}: under the
   transition model the launch value of each block's lane 0 carries over
   from the previous block's last lane. *)
let iter_blocks ?budget ?(stop = fun () -> false) t patterns f =
  let stop () = stop () || Budget.check budget in
  let total = Array.length patterns in
  t.launch_valid <- false;
  let base = ref 0 in
  while !base < total && not (stop ()) do
    let len = min Logic_sim.block_width (total - !base) in
    let block = Logic_sim.pack t.circuit (Array.sub patterns !base len) in
    let good = Logic_sim.simulate t.circuit block in
    let mask = Logic_sim.valid_mask block.Logic_sim.width in
    f ~base:!base ~good ~mask;
    if t.model = Fault_model.Transition_delay then begin
      let last = len - 1 in
      for i = 0 to Array.length good - 1 do
        Bytes.unsafe_set t.launch_prev i
          (Char.unsafe_chr ((good.(i) lsr last) land 1))
      done;
      t.launch_valid <- true
    end;
    base := !base + len
  done

(* Engine-level metrics.  Hot loops keep bumping the private per-shard
   [sims]/[props] fields (zero contention, bit-identical behaviour); each
   public sweep publishes its delta to the shared registry on the way
   out, exceptions included, so interrupted runs still report work done. *)
let m_sims =
  Metrics.counter ~help:"single-fault simulations performed" "fault_sims"

let m_props =
  Metrics.counter ~help:"event-driven difference propagations" "event_propagations"

let with_sweep name t patterns f =
  Trace.with_span name
    ~args:[ ("patterns", string_of_int (Array.length patterns)) ]
  @@ fun () ->
  let sims0 = t.sims and props0 = t.props in
  Fun.protect
    ~finally:(fun () ->
      Metrics.add m_sims (t.sims - sims0);
      Metrics.add m_props (t.props - props0))
    f

let detection_map ?budget t patterns =
  with_sweep "fault_sim.detection_map" t patterns @@ fun () ->
  let total = Array.length patterns in
  let result = Array.init (fault_count t) (fun _ -> Bitvec.create total) in
  iter_blocks ?budget t patterns (fun ~base ~good ~mask ->
      let mode = begin_block t good mask ~live:(fault_count t) in
      Array.iteri
        (fun fi fault ->
          let d = process_fault t good mask mode fi fault in
          if d <> 0 then
            (* [d land mask] keeps every set lane below the block length,
               so [base + k] is always in range. *)
            for k = 0 to Logic_sim.block_width - 1 do
              if d lsr k land 1 = 1 then Bitvec.unsafe_set result.(fi) (base + k)
            done)
        t.faults);
  result

let detected_set ?budget t patterns ~active =
  if Bitvec.length active <> fault_count t then
    invalid_arg "Fault_sim.detected_set: active mask size mismatch";
  with_sweep "fault_sim.detected_set" t patterns @@ fun () ->
  let detected = Bitvec.create (fault_count t) in
  let remaining = ref (Bitvec.count active) in
  iter_blocks ?budget ~stop:(fun () -> !remaining = 0) t patterns
    (fun ~base:_ ~good ~mask ->
      let mode = begin_block t good mask ~live:!remaining in
      (* [fi] ranges over the fault array, whose length both vectors were
         checked (or built) to match — the per-fault test is the hottest
         line of the sweep, so skip the bounds checks. *)
      Array.iteri
        (fun fi fault ->
          if Bitvec.unsafe_get active fi && not (Bitvec.unsafe_get detected fi)
          then
            if process_fault t good mask mode fi fault <> 0 then begin
              Bitvec.unsafe_set detected fi;
              decr remaining
            end)
        t.faults);
  detected

let first_detections ?budget t ?active patterns =
  (match active with
  | Some a when Bitvec.length a <> fault_count t ->
      invalid_arg "Fault_sim.first_detections: active mask size mismatch"
  | _ -> ());
  with_sweep "fault_sim.first_detections" t patterns @@ fun () ->
  let result = Array.make (fault_count t) None in
  let live fi =
    match active with None -> true | Some a -> Bitvec.unsafe_get a fi
  in
  let remaining =
    ref
      (match active with
      | None -> fault_count t
      | Some a -> Bitvec.count a)
  in
  iter_blocks ?budget ~stop:(fun () -> !remaining = 0) t patterns
    (fun ~base ~good ~mask ->
      let mode = begin_block t good mask ~live:!remaining in
      Array.iteri
        (fun fi fault ->
          if live fi && result.(fi) = None then begin
            let d = process_fault t good mask mode fi fault in
            if d <> 0 then begin
              let k = ref 0 in
              while d lsr !k land 1 = 0 do incr k done;
              result.(fi) <- Some (base + !k);
              decr remaining
            end
          end)
        t.faults);
  result

let count_new_detections ?budget t patterns ~active =
  Bitvec.count (detected_set ?budget t patterns ~active)

let coverage_pct t detected = Stats.pct (Bitvec.count detected) (fault_count t)
