(** Parallel-pattern fault simulation with selectable engines and fault
    models.

    Patterns are simulated 62 per block against the good machine once;
    per-fault detection words are then derived by the selected {!engine}:

    - {!Event}: every fault is injected and its fanout cone re-evaluated
      event-driven, in topological order — the exactness oracle;
    - {!Cpt}: critical-path tracing — the circuit is decomposed once into
      fanout-free regions ({!Reseed_netlist.Ffr}); faults inside a region
      are graded by a backward derivative chain over the good values, and
      only each region's stem costs an event-driven flip propagation for
      its observability word;
    - {!Hybrid} (default): {!Cpt} accelerated by dominator chaining (a
      stem's flip propagation stops at the first downstream stem whose
      observability is already known) and falling back to {!Event} on
      blocks whose live-fault set is sparse, where per-fault cones are
      cheaper than refreshing every stem.

    All three engines produce bit-identical results.

    The {!Fault_model.t} chosen at {!create} fixes the detection
    semantics of every sweep.  Under {!Fault_model.Stuck_at} (the
    default) behaviour is the historical single-pattern semantics,
    verbatim.  Under {!Fault_model.Transition_delay} every sweep treats
    its pattern array as a {e sequence}: pattern [p] detects a fault iff
    pattern [p-1] (launch) sets the fault's site signal to its slow
    initial value {e and} pattern [p] (capture) detects the
    corresponding stuck-at fault — the capture grade reuses the selected
    engine unchanged, including the hybrid CPT/dominator machinery, and
    the launch condition is applied as a per-lane mask with the carry
    across 62-pattern blocks handled internally.  The first pattern of a
    sweep has no launch predecessor and detects nothing.  Work counters
    ({!sims_performed}, {!event_propagations}) count the capture grades,
    so cost metrics stay comparable across models.

    Three entry points cover the library's needs:

    - {!detection_map}: full per-pattern detection bit-matrix — feeds the
      Detection Matrix construction of Section 3.1 of the paper;
    - {!first_detections}: fault-dropping sweep returning the first
      detecting pattern index per fault — feeds ATPG, compaction and the
      GATSBY fitness function;
    - {!count_new_detections}: cheap count of newly-detected faults for a
      candidate pattern set against an active mask. *)

open Reseed_netlist
open Reseed_util

type t

type engine =
  | Event  (** per-fault event-driven propagation *)
  | Cpt  (** critical-path tracing, full stem flip propagations *)
  | Hybrid  (** CPT + dominator chaining + sparse-block event fallback *)

(** [engine_name e] is ["event"], ["cpt"] or ["hybrid"]. *)
val engine_name : engine -> string

(** [engine_of_string s] parses {!engine_name} output (case-insensitive). *)
val engine_of_string : string -> engine option

(** [create ?engine ?model c faults] builds a reusable simulator
    ([engine] defaults to [Hybrid], [model] to
    {!Fault_model.Stuck_at}).  The fault order fixes the fault indexing
    used by every result; pair [faults] with the model's own enumeration
    ({!Fault_model.faults}) unless a test needs a custom list. *)
val create :
  ?engine:engine -> ?model:Fault_model.t -> Circuit.t -> Fault.t array -> t

(** [engine t] is the engine [t] was created with. *)
val engine : t -> engine

(** [model t] is the fault model [t] was created with. *)
val model : t -> Fault_model.t

(** [copy t] is a simulator over the same circuit and fault list with
    fresh private scratch and zeroed work counters; it can run
    concurrently with [t] from another domain (the shared arrays are
    never written after {!create}). *)
val copy : t -> t

(** [shard t n] is the per-worker simulator array for an [n]-participant
    parallel region: slot 0 is [t] itself, slots [1 .. n-1] are copies.
    Pair with {!merge_sims} after the region so [t]'s counters account
    for the whole region. *)
val shard : t -> int -> t array

(** [merge_sims ~into shards] adds every shard's work counters into
    [into]'s (skipping [into] itself) and zeroes the donors, so repeated
    merges never double-count. *)
val merge_sims : into:t -> t array -> unit

val circuit : t -> Circuit.t
val faults : t -> Fault.t array
val fault_count : t -> int

(** [sims_performed t] counts per-fault detectability evaluations — the
    paper's "number of fault simulations" cost metric.  Engine-independent
    by construction: a CPT fault grade counts exactly like an event-driven
    injection, so Table 1 comparisons stay meaningful across engines. *)
val sims_performed : t -> int

(** [event_propagations t] counts event-driven cone propagations actually
    launched: fault injections whose site difference was non-zero under
    [Event], plus stem observability flips under [Cpt]/[Hybrid].  This is
    the work metric the CPT engines shrink. *)
val event_propagations : t -> int

(** Every sweep below takes an optional [budget]: a tripped deadline or
    cancellation stops the sweep cleanly at the next 62-pattern block
    boundary, returning the (sound but possibly incomplete) detections
    gathered so far.  Callers that need completeness must re-check the
    budget after the call. *)

(** [detection_map ?budget t patterns] is one {!Bitvec.t} per fault,
    indexed over patterns: bit [p] set iff pattern [p] detects the fault.
    No dropping. *)
val detection_map : ?budget:Budget.t -> t -> bool array array -> Bitvec.t array

(** [detected_set ?budget t patterns ~active] is the set of faults from
    [active] detected by at least one pattern (with dropping inside the
    run).  Stops simulating blocks as soon as every active fault is
    detected. *)
val detected_set : ?budget:Budget.t -> t -> bool array array -> active:Bitvec.t -> Bitvec.t

(** [first_detections ?budget t ?active patterns] runs with fault
    dropping; result [i] is [Some p] when fault [i] is first detected by
    pattern [p].  Faults outside [active] (default: all) are skipped
    entirely.  Stops simulating blocks as soon as every live fault has a
    first detection. *)
val first_detections :
  ?budget:Budget.t -> t -> ?active:Bitvec.t -> bool array array -> int option array

(** [count_new_detections ?budget t patterns ~active] is
    [Bitvec.count (detected_set t patterns ~active)] without allocating
    the result set. *)
val count_new_detections : ?budget:Budget.t -> t -> bool array array -> active:Bitvec.t -> int

(** [coverage_pct t detected] renders fault coverage as a percentage of
    the simulator's fault list. *)
val coverage_pct : t -> Bitvec.t -> float
