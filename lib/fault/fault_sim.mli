(** Parallel-pattern, single-fault-propagation stuck-at fault simulation.

    Patterns are simulated 62 per block against the good machine once; each
    fault is then injected and only its fanout cone is re-evaluated
    (event-driven, in topological order).  Three entry points cover the
    library's needs:

    - {!detection_map}: full per-pattern detection bit-matrix — feeds the
      Detection Matrix construction of Section 3.1 of the paper;
    - {!first_detections}: fault-dropping sweep returning the first
      detecting pattern index per fault — feeds ATPG, compaction and the
      GATSBY fitness function;
    - {!count_new_detections}: cheap count of newly-detected faults for a
      candidate pattern set against an active mask. *)

open Reseed_netlist
open Reseed_util

type t

(** [create c faults] builds a reusable simulator.  The fault order fixes
    the fault indexing used by every result. *)
val create : Circuit.t -> Fault.t array -> t

(** [copy t] is a simulator over the same circuit and fault list with
    fresh private scratch and a zeroed {!sims_performed} counter; it can
    run concurrently with [t] from another domain (the shared arrays are
    never written after {!create}). *)
val copy : t -> t

(** [shard t n] is the per-worker simulator array for an [n]-participant
    parallel region: slot 0 is [t] itself, slots [1 .. n-1] are copies.
    Pair with {!merge_sims} after the region so [t]'s counter accounts for
    the whole region. *)
val shard : t -> int -> t array

(** [merge_sims ~into shards] adds every shard's counter into [into]'s
    (skipping [into] itself) and zeroes the donors, so repeated merges
    never double-count. *)
val merge_sims : into:t -> t array -> unit

val circuit : t -> Circuit.t
val faults : t -> Fault.t array
val fault_count : t -> int

(** [sims_performed t] counts fault-injection cone simulations executed so
    far — the paper's "number of fault simulations" cost metric. *)
val sims_performed : t -> int

(** [detection_map t patterns] is one {!Bitvec.t} per fault, indexed over
    patterns: bit [p] set iff pattern [p] detects the fault.  No
    dropping. *)
val detection_map : t -> bool array array -> Bitvec.t array

(** [detected_set t patterns ~active] is the set of faults from [active]
    detected by at least one pattern (with dropping inside the run).
    Stops simulating blocks as soon as every active fault is detected. *)
val detected_set : t -> bool array array -> active:Bitvec.t -> Bitvec.t

(** [first_detections t ?active patterns] runs with fault dropping; result
    [i] is [Some p] when fault [i] is first detected by pattern [p].
    Faults outside [active] (default: all) are skipped entirely.  Stops
    simulating blocks as soon as every live fault has a first detection. *)
val first_detections : t -> ?active:Bitvec.t -> bool array array -> int option array

(** [count_new_detections t patterns ~active] is
    [Bitvec.count (detected_set t patterns ~active)] without allocating
    the result set. *)
val count_new_detections : t -> bool array array -> active:Bitvec.t -> int

(** [coverage_pct t detected] renders fault coverage as a percentage of
    the simulator's fault list. *)
val coverage_pct : t -> Bitvec.t -> float
