open Reseed_netlist
open Reseed_util

type t = {
  universe : Fault.t array;
  all : Fault.t array;  (* equivalence representatives = Fault.all *)
  reps : Fault.t array;  (* simulation list, ⊆ all *)
  rep_of_universe : int array;  (* universe idx -> all idx of its class rep *)
  rep_index : int array;  (* all idx -> reps idx, -1 when dominance-removed *)
  resolved : int array array;  (* all idx -> reps idxs whose detection implies it *)
}

(* Canonical equivalence representative of a fault, following exactly the
   folds [Fault.collapse] applies when filtering: controlling-value input
   faults into the gate output, BUF/NOT input and single-fanout stem
   faults downstream (flipping polarity through NOT).  Terminates because
   every fold moves strictly toward the primary outputs. *)
let rec canon c (fault : Fault.t) =
  let kind g = c.Circuit.nodes.(g).Circuit.kind in
  let out g stuck = canon c { Fault.site = Fault.Out g; stuck } in
  match fault.Fault.site with
  | Fault.Pin { gate; pin = _ } -> (
      match (kind gate, fault.Fault.stuck) with
      | Gate.Buf, s -> out gate s
      | Gate.Not, s -> out gate (not s)
      | Gate.And, false -> out gate false
      | Gate.Nand, false -> out gate true
      | Gate.Or, true -> out gate true
      | Gate.Nor, true -> out gate false
      | _ -> fault)
  | Fault.Out g -> (
      if Array.exists (fun o -> o = g) c.Circuit.outputs then fault
      else
        match c.Circuit.fanouts.(g) with
        | [| sink |] -> (
            match kind sink with
            | Gate.Buf -> out sink fault.Fault.stuck
            | Gate.Not -> out sink (not fault.Fault.stuck)
            | _ -> fault)
        | _ -> fault)

let index_of faults =
  let h = Hashtbl.create (Array.length faults * 2) in
  Array.iteri (fun i f -> Hashtbl.replace h f i) faults;
  h

(* Dominating input faults of a dominance-removed gate-output fault, as
   concrete universe faults: the fanout branch when the stem fans out,
   the stem's own output fault otherwise.  Constant stems dominate
   nothing. *)
let dominator_faults c g ~input_stuck =
  let node = c.Circuit.nodes.(g) in
  let acc = ref [] in
  Array.iteri
    (fun pin stem ->
      match c.Circuit.nodes.(stem).Circuit.kind with
      | Gate.Const0 | Gate.Const1 -> ()
      | _ ->
          let site =
            if Array.length c.Circuit.fanouts.(stem) > 1 then
              Fault.Pin { gate = g; pin }
            else Fault.Out stem
          in
          acc := { Fault.site; stuck = input_stuck } :: !acc)
    node.Circuit.fanins;
  !acc

let compute ?(dominance = true) c =
  let universe = Fault.universe c in
  let all = Fault.all c in
  let reps = if dominance then Fault.all_collapsed c else all in
  let all_idx = index_of all in
  let reps_idx = index_of reps in
  let idx_in h f what =
    match Hashtbl.find_opt h f with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Collapse.compute: %s not in collapsed list (%s)"
             (Fault.to_string c f) what)
  in
  let rep_of_universe =
    Array.map (fun f -> idx_in all_idx (canon c f) "equivalence") universe
  in
  let rep_index =
    Array.map
      (fun f -> match Hashtbl.find_opt reps_idx f with Some i -> i | None -> -1)
      all
  in
  (* Resolve dominance impliers transitively down to surviving reps.  The
     implication edges point strictly toward the primary inputs, so the
     memoized recursion terminates. *)
  let n_all = Array.length all in
  let resolved = Array.make n_all [||] in
  let visited = Array.make n_all false in
  let rec resolve ai =
    if not visited.(ai) then begin
      visited.(ai) <- true;
      if rep_index.(ai) >= 0 then resolved.(ai) <- [| rep_index.(ai) |]
      else begin
        let g, input_stuck =
          match all.(ai) with
          | { Fault.site = Fault.Out g; stuck = _ } -> (
              match c.Circuit.nodes.(g).Circuit.kind with
              | Gate.And | Gate.Nand -> (g, true)
              | Gate.Or | Gate.Nor -> (g, false)
              | _ -> invalid_arg "Collapse.compute: unexpected dominance removal")
          | _ -> invalid_arg "Collapse.compute: dominance removed a branch fault"
        in
        let impliers =
          List.map
            (fun f -> idx_in all_idx (canon c f) "dominator")
            (dominator_faults c g ~input_stuck)
        in
        List.iter resolve impliers;
        resolved.(ai) <-
          Array.of_list
            (List.sort_uniq Stdlib.compare
               (List.concat_map (fun i -> Array.to_list resolved.(i)) impliers))
      end
    end
  in
  for ai = 0 to n_all - 1 do
    resolve ai
  done;
  { universe; all; reps; rep_of_universe; rep_index; resolved }

let universe t = t.universe
let reps t = t.reps
let universe_count t = Array.length t.universe
let rep_count t = Array.length t.reps
let equivalence_count t = Array.length t.all

let reduction_pct t =
  100.0 *. (1.0 -. (float_of_int (rep_count t) /. float_of_int (universe_count t)))

let check_length t detected =
  if Bitvec.length detected <> Array.length t.reps then
    invalid_arg "Collapse.expand: detection set not over the representatives"

let all_detected t detected ai =
  Array.exists (fun ri -> Bitvec.get detected ri) t.resolved.(ai)

let expand_to_all t detected =
  check_length t detected;
  let out = Bitvec.create (Array.length t.all) in
  Array.iteri
    (fun ai _ -> if all_detected t detected ai then Bitvec.set out ai)
    t.all;
  out

let expand t detected =
  check_length t detected;
  let out = Bitvec.create (Array.length t.universe) in
  Array.iteri
    (fun ui ai -> if all_detected t detected ai then Bitvec.set out ui)
    t.rep_of_universe;
  out

let coverage_pct t detected =
  Stats.pct (Bitvec.count (expand t detected)) (universe_count t)
