(** Structural fault-class collapsing with coverage expansion.

    {!Fault.collapse} / {!Fault.all_collapsed} shrink the fault {i list};
    this module additionally keeps the {i classes} — which universe faults
    each surviving representative stands for — so a detection result
    computed over the representatives expands back to coverage over the
    full uncollapsed universe:

    - {b equivalence} classes (BUF/NOT chains followed transitively,
      controlling-value input/output folds on AND/NAND/OR/NOR, fanout-free
      branch folding) are exact: a member is detected by precisely the
      patterns detecting its representative;
    - {b dominance} removals (gate-output faults in the dominated sense)
      are implied: the removed fault is detected whenever one of its
      dominating input faults is, resolved transitively down to surviving
      representatives.  Expansion through dominance is therefore a sound
      lower bound on true coverage (the standard accounting of collapsed
      fault simulators).

    Simulating only the representatives cuts the fault list by roughly a
    third on the ISCAS-style circuits while {!expand} restores
    universe-level reporting. *)

open Reseed_netlist
open Reseed_util

type t

(** [compute ?dominance c] builds the class structure for [c].
    [dominance] (default [true]) additionally removes dominated
    gate-output faults, i.e. representatives are {!Fault.all_collapsed};
    with [~dominance:false] they are exactly {!Fault.all} and {!expand}
    is exact. *)
val compute : ?dominance:bool -> Circuit.t -> t

(** The full uncollapsed fault list, {!Fault.universe} order. *)
val universe : t -> Fault.t array

(** The representatives to simulate, in the order fixing the fault
    indexing of any simulator built over them. *)
val reps : t -> Fault.t array

val universe_count : t -> int
val rep_count : t -> int

(** Size of the equivalence-collapsed list ({!Fault.all}), between
    [rep_count] and [universe_count]. *)
val equivalence_count : t -> int

(** [reduction_pct t] is the list-size cut, [100 * (1 - reps/universe)]. *)
val reduction_pct : t -> float

(** [expand t detected] maps a detection set over {!reps} to the implied
    detection set over {!universe}. *)
val expand : t -> Bitvec.t -> Bitvec.t

(** [expand_to_all t detected] — same, but over the equivalence-collapsed
    list ({!Fault.all} indexing). *)
val expand_to_all : t -> Bitvec.t -> Bitvec.t

(** [coverage_pct t detected] is the expanded universe coverage of a
    detection set over {!reps}, as a percentage. *)
val coverage_pct : t -> Bitvec.t -> float
