(** Fault models — the workload-facing face of [lib/fault].

    A fault model bundles the three decisions the rest of the pipeline
    must not hard-code: which sites carry faults (enumeration and
    collapsing rules), what activates a fault, and how a detection is
    observed.  Two models are built in:

    - {!Stuck_at} — the paper's single stuck-at model, byte-identical to
      the historical behaviour: equivalence-collapsed fault list
      ({!Fault.all}), a fault is detected by any single pattern that
      excites and observes it.
    - {!Transition_delay} — slow-to-rise / slow-to-fall faults detected
      by {e launch/capture pairs} of consecutive patterns: pattern
      [p-1] (launch) must put the fault site at its slow initial value,
      and pattern [p] (capture) must then detect the corresponding
      stuck-at fault (the site "stuck" at its pre-transition value).
      Consecutive TPG evolution states form exactly such pairs, which
      is what makes the model a natural fit for reseeding bursts.

    The {!Fault.t} record is shared: under {!Transition_delay},
    [stuck = false] reads as slow-to-rise (the site behaves s-a-0 during
    capture, so the launch value must be 0) and [stuck = true] as
    slow-to-fall (s-a-1 during capture, launch value 1).  In both cases
    the required launch value {e equals} the capture-cycle stuck value.

    Collapsing: stuck-at equivalence rules (e.g. AND input s-a-0 ≡
    output s-a-0) do {e not} lift to transition faults — the launch
    conditions of the two sites differ — so {!faults} enumerates the
    uncollapsed {!Fault.universe} for {!Transition_delay}. *)

open Reseed_netlist

type t = Stuck_at | Transition_delay

(** Every built-in model, in a fixed order. *)
val all : t list

(** [name m] is ["stuck"] or ["transition"] — the CLI / manifest /
    fingerprint spelling. *)
val name : t -> string

(** [of_string s] parses {!name} output (case-insensitive). *)
val of_string : string -> t option

(** [faults m c] enumerates the model's fault list with its collapsing
    rule applied: {!Fault.all} (equivalence-collapsed) for {!Stuck_at},
    {!Fault.universe} (uncollapsed) for {!Transition_delay}. *)
val faults : t -> Circuit.t -> Fault.t array

(** [site_signal c f] is the node whose {e good-machine} value at the
    launch pattern gates the fault's activation under
    {!Transition_delay}: the stem itself for an [Out] fault, the driving
    stem of the branch for a [Pin] fault (a branch carries its stem's
    value).  Meaningless under {!Stuck_at}. *)
val site_signal : Circuit.t -> Fault.t -> int

(** [fault_to_string m c f] renders the fault in the model's dialect:
    [".../SA0"]/[".../SA1"] under {!Stuck_at}, [".../STR"] (slow-to-rise)
    / [".../STF"] (slow-to-fall) under {!Transition_delay}. *)
val fault_to_string : t -> Circuit.t -> Fault.t -> string
