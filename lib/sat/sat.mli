(** A small DPLL SAT solver over CNF.

    Built as the substrate for SAT-based test generation (Larrabee-style
    ATPG) and the SAT leg of the covering-solver portfolio: unit
    propagation over occurrence lists, chronological backtracking, and a
    conflict budget that turns pathological instances into an explicit
    [Unknown] instead of a hang.  Complete within the budget: [Unsat] is
    a proof.

    The solver object is incremental in the assumption-based style:
    clauses and variables may be added between [solve] calls (the search
    structures are rebuilt per call), and [assumptions] scope a call to a
    sub-instance without committing clauses — retracting an assumption is
    just not passing it next time.

    Variables are positive integers [1..nvars]; a literal is [+v] or
    [-v]. *)

open Reseed_util

type t

type outcome =
  | Sat of bool array  (** model, indexed by variable (entry 0 unused) *)
  | Unsat
  | Unknown  (** conflict budget exhausted or wall-clock budget expired *)

(** [create nvars] — a solver over variables [1..nvars]. *)
val create : int -> t

(** [new_var t] extends the instance with a fresh variable and returns
    it.  Used by incremental encodings (e.g. cardinality counters) that
    outgrow the initial [create] allowance. *)
val new_var : t -> int

(** [add_clause t lits] adds a disjunction.  Duplicate literals are
    merged; a clause containing both [v] and [-v] is dropped as a
    tautology.  Adding the empty clause makes the instance trivially
    unsatisfiable.  Raises [Invalid_argument] on out-of-range literals. *)
val add_clause : t -> int list -> unit

(** [solve ?assumptions ?max_conflicts ?budget t] — [assumptions] are
    literals fixed before search (default none); [max_conflicts] defaults
    to 200_000.  [budget] adds cooperative wall-clock cancellation: the
    search loop polls it every ~1k steps (mirroring the ILP node-stride
    pattern) and returns [Unknown] when it has expired, so a SAT-backed
    ATPG or portfolio leg cannot overrun a [--deadline]. *)
val solve : ?assumptions:int list -> ?max_conflicts:int -> ?budget:Budget.t -> t -> outcome

val nvars : t -> int
val clause_count : t -> int

(** [conflicts t] is the conflict count of the most recent [solve] call
    (0 before any call) — portfolio work attribution. *)
val conflicts : t -> int
