open Reseed_util

type t = {
  mutable nvars : int;
  mutable clauses : int array list; (* reversed insertion order *)
  mutable n_clauses : int;
  mutable trivially_unsat : bool;
  mutable last_conflicts : int;
}

type outcome = Sat of bool array | Unsat | Unknown

let create nvars =
  if nvars < 0 then invalid_arg "Sat.create: negative variable count";
  { nvars; clauses = []; n_clauses = 0; trivially_unsat = false; last_conflicts = 0 }

let nvars t = t.nvars
let clause_count t = t.n_clauses
let conflicts t = t.last_conflicts

let new_var t =
  t.nvars <- t.nvars + 1;
  t.nvars

let add_clause t lits =
  List.iter
    (fun l ->
      let v = abs l in
      if l = 0 || v > t.nvars then invalid_arg "Sat.add_clause: bad literal")
    lits;
  let lits = List.sort_uniq compare lits in
  let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
  if not tautology then begin
    if lits = [] then t.trivially_unsat <- true
    else begin
      t.clauses <- Array.of_list lits :: t.clauses;
      t.n_clauses <- t.n_clauses + 1
    end
  end

(* One search instance; rebuilt per [solve] call so the solver object can
   accumulate clauses (and variables) between calls. *)
type search = {
  s_nvars : int;
  s_clauses : int array array;
  occ : int list array; (* literal (2v / 2v+1) -> clause indices *)
  assign : int array; (* var -> 0 unassigned / +1 / -1 *)
  trail : int array; (* assigned literals, chronological *)
  mutable trail_len : int;
  mutable queue_head : int; (* propagation frontier within the trail *)
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let value s l =
  let v = s.assign.(abs l) in
  if v = 0 then 0 else if (l > 0 && v = 1) || (l < 0 && v = -1) then 1 else -1

let enqueue s l =
  s.assign.(abs l) <- (if l > 0 then 1 else -1);
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

(* Propagate all pending assignments; returns [false] on conflict. *)
let propagate s =
  let ok = ref true in
  while !ok && s.queue_head < s.trail_len do
    let l = s.trail.(s.queue_head) in
    s.queue_head <- s.queue_head + 1;
    let falsified = lit_index (-l) in
    List.iter
      (fun ci ->
        if !ok then begin
          let clause = s.s_clauses.(ci) in
          let satisfied = ref false in
          let unassigned = ref 0 in
          let unit_lit = ref 0 in
          Array.iter
            (fun cl ->
              match value s cl with
              | 1 -> satisfied := true
              | 0 ->
                  incr unassigned;
                  unit_lit := cl
              | _ -> ())
            clause;
          if not !satisfied then
            if !unassigned = 0 then ok := false
            else if !unassigned = 1 then enqueue s !unit_lit
        end)
      s.occ.(falsified)
  done;
  !ok

(* Undo the trail back to length [mark]. *)
let backjump s mark =
  for i = s.trail_len - 1 downto mark do
    s.assign.(abs s.trail.(i)) <- 0
  done;
  s.trail_len <- mark;
  s.queue_head <- mark

type decision = { d_mark : int; d_lit : int; mutable d_flipped : bool }

(* Wall-clock polls are throttled to once per [budget_stride] search
   steps (decisions + conflicts), mirroring the ILP branch-and-bound: a
   step is microseconds, so the deadline is honoured within milliseconds
   without a clock read per step. *)
let budget_stride = 1024

let solve ?(assumptions = []) ?(max_conflicts = 200_000) ?budget t =
  t.last_conflicts <- 0;
  if t.trivially_unsat then Unsat
  else begin
    let clauses = Array.of_list (List.rev t.clauses) in
    let occ = Array.make ((2 * t.nvars) + 2) [] in
    Array.iteri
      (fun ci clause ->
        Array.iter (fun l -> occ.(lit_index l) <- ci :: occ.(lit_index l)) clause)
      clauses;
    let s =
      {
        s_nvars = t.nvars;
        s_clauses = clauses;
        occ;
        assign = Array.make (t.nvars + 1) 0;
        trail = Array.make (max 1 t.nvars) 0;
        trail_len = 0;
        queue_head = 0;
      }
    in
    (* Assumption level. *)
    let contradictory_assumption = ref false in
    List.iter
      (fun l ->
        match value s l with
        | 1 -> ()
        | -1 -> contradictory_assumption := true
        | _ -> enqueue s l)
      assumptions;
    if !contradictory_assumption || not (propagate s) then Unsat
    else begin
      let conflicts = ref 0 in
      let steps = ref 0 in
      let decisions : decision list ref = ref [] in
      let result = ref None in
      let out_of_budget () =
        incr steps;
        match budget with
        | Some b when !steps mod budget_stride = 0 && Budget.expired b -> true
        | _ -> false
      in
      let rec next_unassigned v =
        if v > s.s_nvars then 0 else if s.assign.(v) = 0 then v else next_unassigned (v + 1)
      in
      while !result = None do
        if !conflicts > max_conflicts || out_of_budget () then result := Some Unknown
        else begin
          let v = next_unassigned 1 in
          if v = 0 then begin
            (* Complete assignment: a model (propagation kept it sound). *)
            let model = Array.make (s.s_nvars + 1) false in
            for i = 1 to s.s_nvars do
              model.(i) <- s.assign.(i) = 1
            done;
            result := Some (Sat model)
          end
          else begin
            (* Decide [v = false] first (ATPG instances tend to prefer
               sparse activation), then propagate, handling conflicts by
               chronological backtracking. *)
            decisions := { d_mark = s.trail_len; d_lit = -v; d_flipped = false } :: !decisions;
            enqueue s (-v);
            let stable = ref false in
            while not !stable do
              if propagate s then stable := true
              else begin
                incr conflicts;
                if out_of_budget () then begin
                  result := Some Unknown;
                  stable := true
                end
                else begin
                  (* Find a decision to flip. *)
                  let rec unwind () =
                    match !decisions with
                    | [] ->
                        result := Some Unsat;
                        stable := true
                    | d :: rest ->
                        backjump s d.d_mark;
                        if d.d_flipped then begin
                          decisions := rest;
                          unwind ()
                        end
                        else begin
                          d.d_flipped <- true;
                          enqueue s (-d.d_lit)
                        end
                  in
                  unwind ()
                end
              end
            done
          end
        end
      done;
      t.last_conflicts <- !conflicts;
      Option.get !result
    end
  end
