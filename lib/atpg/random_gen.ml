open Reseed_netlist
open Reseed_fault
open Reseed_util

type result = {
  tests : bool array array;
  detected : Bitvec.t;
  patterns_tried : int;
}

let run ?budget sim ~rng ?already ?(max_patterns = 10_000) ?(give_up_after = 5) () =
  let c = Fault_sim.circuit sim in
  let n_pi = Circuit.input_count c in
  let nf = Fault_sim.fault_count sim in
  let detected =
    match already with
    | Some d ->
        if Bitvec.length d <> nf then invalid_arg "Random_gen.run: mask size";
        Bitvec.copy d
    | None -> Bitvec.create nf
  in
  let initially_detected = Bitvec.copy detected in
  let block_size = 62 in
  let kept = ref [] in
  let tried = ref 0 in
  let useless_blocks = ref 0 in
  while !tried < max_patterns && !useless_blocks < give_up_after
        && not (Budget.check budget) do
    let block =
      Array.init block_size (fun _ -> Array.init n_pi (fun _ -> Rng.bool rng))
    in
    tried := !tried + block_size;
    (* Which still-active faults does this block catch, and with which
       pattern first?  Keep only first-detecting patterns.  Each block is
       graded as its own sweep, so under the transition model detections
       only ever use launch/capture pairs from inside the block — and the
       launch pattern [p - 1] must be kept alongside the capture pattern
       [p], or the kept subset would no longer detect what it claims. *)
    let transition = Fault_sim.model sim = Fault_model.Transition_delay in
    let active = Bitvec.create nf in
    Bitvec.fill_all active;
    Bitvec.diff_into ~into:active detected;
    let firsts = Fault_sim.first_detections sim ~active block in
    let useful = Array.make block_size false in
    let progress = ref false in
    Array.iteri
      (fun fi first ->
        match first with
        | Some p when Bitvec.get active fi ->
            Bitvec.set detected fi;
            useful.(p) <- true;
            if transition && p > 0 then useful.(p - 1) <- true;
            progress := true
        | _ -> ())
      firsts;
    if !progress then begin
      useless_blocks := 0;
      Array.iteri (fun p pat -> if useful.(p) then kept := pat :: !kept) block
    end
    else incr useless_blocks
  done;
  let newly = Bitvec.diff detected initially_detected in
  { tests = Array.of_list (List.rev !kept); detected = newly; patterns_tried = !tried }
