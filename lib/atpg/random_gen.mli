(** Random-pattern phase of the ATPG flow.

    Generates blocks of uniformly random patterns, fault-simulates them
    with dropping, and keeps only the patterns that first-detect at least
    one fault.  Stops when a run of consecutive blocks yields no new
    detection (the classic random-resistance knee). *)

open Reseed_fault
open Reseed_util

type result = {
  tests : bool array array;  (** useful patterns, in generation order *)
  detected : Bitvec.t;  (** fault indices covered by [tests] *)
  patterns_tried : int;
}

(** [run ?budget sim ~rng ?already ?max_patterns ?give_up_after ()] —
    [already] marks faults to skip (default none); generation stops after
    [max_patterns] (default 10_000, the paper's random-testability
    threshold), after [give_up_after] consecutive useless blocks (default
    5), or when [budget] expires (the patterns kept so far are returned). *)
val run :
  ?budget:Budget.t ->
  Fault_sim.t ->
  rng:Rng.t ->
  ?already:Bitvec.t ->
  ?max_patterns:int ->
  ?give_up_after:int ->
  unit ->
  result
