open Reseed_netlist
open Reseed_fault
open Reseed_sat
open Reseed_util

type outcome = Test of bool array | Untestable | Aborted

(* Clause emission for one gate [y = kind(args)] in standard Tseitin
   form.  [fresh] mints auxiliary variables for XOR chains. *)
let emit_gate solver ~fresh y kind args =
  let add = Sat.add_clause solver in
  let all = Array.to_list args in
  match kind with
  | Gate.Input -> ()
  | Gate.Const0 -> add [ -y ]
  | Gate.Const1 -> add [ y ]
  | Gate.Buf ->
      add [ -y; args.(0) ];
      add [ y; -args.(0) ]
  | Gate.Not ->
      add [ -y; -args.(0) ];
      add [ y; args.(0) ]
  | Gate.And ->
      List.iter (fun a -> add [ -y; a ]) all;
      add (y :: List.map (fun a -> -a) all)
  | Gate.Nand ->
      List.iter (fun a -> add [ y; a ]) all;
      add (-y :: List.map (fun a -> -a) all)
  | Gate.Or ->
      List.iter (fun a -> add [ y; -a ]) all;
      add (-y :: all)
  | Gate.Nor ->
      List.iter (fun a -> add [ -y; -a ]) all;
      add (y :: all)
  | Gate.Xor | Gate.Xnor ->
      (* Chain binary XORs through fresh temporaries. *)
      let xor2 out a b =
        add [ -out; a; b ];
        add [ -out; -a; -b ];
        add [ out; -a; b ];
        add [ out; a; -b ]
      in
      let rec chain acc = function
        | [] -> acc
        | a :: rest ->
            let t = fresh () in
            xor2 t acc a;
            chain t rest
      in
      let final =
        match all with
        | a :: b :: rest ->
            let t = fresh () in
            xor2 t a b;
            chain t rest
        | _ -> invalid_arg "Satpg: xor arity"
      in
      if kind = Gate.Xor then begin
        add [ -y; final ];
        add [ y; -final ]
      end
      else begin
        add [ -y; -final ];
        add [ y; final ]
      end

let generate c fault ?(max_conflicts = 200_000) ?budget () =
  Trace.with_span "satpg.generate" @@ fun () ->
  let n = Circuit.node_count c in
  let site = Fault.site_node fault in
  let cone = Circuit.fanout_cone c site in
  let in_cone = Array.make n false in
  Array.iter (fun i -> in_cone.(i) <- true) cone;
  (* No PO reachable from the fault site: trivially undetectable. *)
  if Circuit.output_mask_of_cone c cone = [] then Untestable
  else begin
    (* Variable budget: good copy + faulty cone copy + XOR temporaries +
       miter bits; grow a counter and size the solver afterwards by
       pre-counting generously. *)
    let xor_temps =
      Array.fold_left
        (fun acc (node : Circuit.node) ->
          match node.Circuit.kind with
          | Gate.Xor | Gate.Xnor -> acc + (2 * Array.length node.Circuit.fanins)
          | _ -> acc)
        0 c.Circuit.nodes
    in
    let capacity = (2 * n) + (2 * xor_temps) + Array.length c.Circuit.outputs + 4 in
    let solver = Sat.create capacity in
    let counter = ref 0 in
    let fresh () =
      incr counter;
      if !counter > capacity then failwith "Satpg: variable budget exceeded";
      !counter
    in
    let gvar = Array.init n (fun _ -> 0) in
    for i = 0 to n - 1 do
      gvar.(i) <- fresh ()
    done;
    let fvar = Array.init n (fun i -> if in_cone.(i) then 0 else gvar.(i)) in
    Array.iter (fun i -> fvar.(i) <- fresh ()) cone;
    (* Good machine. *)
    Array.iteri
      (fun i (node : Circuit.node) ->
        emit_gate solver ~fresh gvar.(i) node.Circuit.kind
          (Array.map (fun f -> gvar.(f)) node.Circuit.fanins))
      c.Circuit.nodes;
    (* Faulty machine: only the cone needs fresh logic. *)
    let stuck_lit target = if fault.Fault.stuck then target else -target in
    Array.iter
      (fun i ->
        let node = c.Circuit.nodes.(i) in
        if i = site then
          match fault.Fault.site with
          | Fault.Out _ -> Sat.add_clause solver [ stuck_lit fvar.(i) ]
          | Fault.Pin { pin; _ } ->
              (* Inject a pinned auxiliary input on the faulted pin. *)
              let pinned = fresh () in
              Sat.add_clause solver [ stuck_lit pinned ];
              let args =
                Array.mapi
                  (fun pidx f -> if pidx = pin then pinned else fvar.(f))
                  node.Circuit.fanins
              in
              emit_gate solver ~fresh fvar.(i) node.Circuit.kind args
        else
          emit_gate solver ~fresh fvar.(i) node.Circuit.kind
            (Array.map (fun f -> fvar.(f)) node.Circuit.fanins))
      cone;
    (* Miter: some primary output must differ. *)
    let diff_lits = ref [] in
    Array.iter
      (fun o ->
        if in_cone.(o) then begin
          let d = fresh () in
          Sat.add_clause solver [ -d; gvar.(o); fvar.(o) ];
          Sat.add_clause solver [ -d; -gvar.(o); -fvar.(o) ];
          diff_lits := d :: !diff_lits
        end)
      c.Circuit.outputs;
    Sat.add_clause solver !diff_lits;
    match Sat.solve ~max_conflicts ?budget solver with
    | Sat.Unsat -> Untestable
    | Sat.Unknown -> Aborted
    | Sat.Sat model ->
        Test (Array.map (fun i -> model.(gvar.(i))) c.Circuit.inputs)
  end

let generate_checked c fault ~rng () =
  ignore rng;
  match generate c fault () with
  | Test pattern ->
      let sim = Fault_sim.create c [| fault |] in
      let active = Bitvec.create 1 in
      Bitvec.fill_all active;
      let detected = Fault_sim.detected_set sim [| pattern |] ~active in
      if not (Bitvec.get detected 0) then
        failwith "Satpg.generate_checked: SAT model is not a valid test";
      Test pattern
  | (Untestable | Aborted) as o -> o
