(** SAT-based deterministic test generation (Larrabee's formulation).

    The good machine and the faulty machine are both encoded in CNF over
    shared primary-input variables, the fault is injected by constraining
    the faulty copy, and a miter clause demands that at least one primary
    output differ.  A satisfying model *is* a test pattern; an UNSAT
    proof establishes redundancy.

    Serves as the independent cross-check for {!Podem}: both are complete,
    so they must agree on testability for every fault. *)

open Reseed_netlist
open Reseed_fault
open Reseed_util

type outcome =
  | Test of bool array  (** don't-cares in the model are as-assigned *)
  | Untestable
  | Aborted  (** SAT conflict budget exhausted *)

(** [generate c fault ?max_conflicts ?budget ()] derives a test or a
    redundancy proof.  [budget] bounds the SAT search by wall clock in
    addition to the conflict limit: an expired budget aborts the fault
    ([Aborted]) instead of overrunning a [--deadline] mid-search. *)
val generate :
  Circuit.t -> Fault.t -> ?max_conflicts:int -> ?budget:Budget.t -> unit -> outcome

(** [generate_checked c fault ~rng ()] — same, but the returned pattern
    is re-verified through the fault simulator (raises [Failure] if the
    SAT layer ever produced a bogus test; used by tests and the paranoid).
    [rng] is reserved for future don't-care randomisation. *)
val generate_checked : Circuit.t -> Fault.t -> rng:Rng.t -> unit -> outcome
