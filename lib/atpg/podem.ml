open Reseed_netlist
open Reseed_fault
open Reseed_util

type outcome = Test of bool array | Untestable | Aborted

type stats = { mutable backtracks : int; mutable decisions : int }

let new_stats () = { backtracks = 0; decisions = 0 }

type status = Detected | Possible | Blocked

(* One PI decision: which input, the value currently tried, and whether the
   complementary value has been tried already. *)
type decision = { pi : int; mutable value : bool; mutable alt_tried : bool }

let generate c fault ~rng ?(max_backtracks = 2000) ?budget ?testability ?stats () =
  Trace.with_span "podem.generate" @@ fun () ->
  let stats = match stats with Some s -> s | None -> new_stats () in
  let tb = match testability with Some t -> t | None -> Testability.compute c in
  let n_pi = Circuit.input_count c in
  let pi_vals = Array.make n_pi Ternary.X in
  let pi_pos = Array.make (Circuit.node_count c) (-1) in
  Array.iteri (fun pos node -> pi_pos.(node) <- pos) c.Circuit.inputs;
  (* The stem whose *good* value must differ from the stuck value for the
     fault to be excited. *)
  let site_ref, fault_gate =
    match fault.Fault.site with
    | Fault.Out g -> (g, None)
    | Fault.Pin { gate; pin } -> (c.Circuit.nodes.(gate).Circuit.fanins.(pin), Some gate)
  in
  let activation : Ternary.v = Ternary.of_bool (not fault.Fault.stuck) in
  let is_po = Array.make (Circuit.node_count c) false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;

  (* xpath.(i): node [i] is unresolved and an unresolved path leads from it
     to a primary output — the classical X-path check.  Computed by one
     reverse sweep over the topological order. *)
  let xpath_of good faulty =
    let n = Circuit.node_count c in
    let xpath = Array.make n false in
    let xish i = good.(i) = Ternary.X || faulty.(i) = Ternary.X in
    for i = n - 1 downto 0 do
      if xish i then
        xpath.(i) <-
          is_po.(i) || Array.exists (fun s -> xpath.(s)) c.Circuit.fanouts.(i)
    done;
    xpath
  in

  let assess good faulty xpath =
    let detected = ref false in
    Array.iter
      (fun o -> if Ternary.error ~good ~faulty o then detected := true)
      c.Circuit.outputs;
    if !detected then Detected
    else if good.(site_ref) = Ternary.X then
      (* Not excited yet: the site itself must still be able to show. *)
      if xpath.(site_ref) || faulty.(site_ref) = Ternary.X || fault_gate <> None then
        Possible
      else Blocked
    else if good.(site_ref) <> activation then Blocked
    else begin
      (* Excited: the fault effect must still be able to reach a PO — some
         gate with an errored fanin (or the faulted gate itself, for a
         branch fault) whose output is unresolved with an X-path onward. *)
      let possible = ref false in
      Array.iteri
        (fun i node ->
          if (not !possible) && xpath.(i) then
            let fed_by_error =
              Array.exists (fun f -> Ternary.error ~good ~faulty f) node.Circuit.fanins
            in
            let branch_here = fault_gate = Some i in
            if fed_by_error || branch_here then possible := true)
        c.Circuit.nodes;
      if !possible then Possible else Blocked
    end
  in

  (* Find a frontier gate and derive an objective (node, desired good
     value) from it; [None] means no workable objective — fall back to an
     arbitrary unassigned PI to keep the search complete. *)
  let objective good faulty xpath =
    if good.(site_ref) = Ternary.X then Some (site_ref, activation = Ternary.T)
    else begin
      (* Among frontier gates, prefer the most observable output; within
         it, the easiest-to-set X side-input. *)
      let best = ref None and best_co = ref max_int in
      Array.iteri
        (fun i node ->
          if xpath.(i) && (Testability.(tb.co).(i) : int) < !best_co then begin
            let fed_by_error =
              Array.exists (fun f -> Ternary.error ~good ~faulty f) node.Circuit.fanins
            in
            let branch_here = fault_gate = Some i in
            if fed_by_error || branch_here then begin
              let desired =
                match Gate.controlling_value node.Circuit.kind with
                | Some ctrl -> not ctrl
                | None -> true
              in
              let pick = ref None and pick_cost = ref max_int in
              Array.iter
                (fun f ->
                  if good.(f) = Ternary.X then begin
                    let cost = Testability.cost_to_set tb f desired in
                    if cost < !pick_cost then begin
                      pick := Some (f, desired);
                      pick_cost := cost
                    end
                  end)
                node.Circuit.fanins;
              match !pick with
              | Some _ ->
                  best := !pick;
                  best_co := Testability.(tb.co).(i)
              | None -> ()
            end
          end)
        c.Circuit.nodes;
      !best
    end
  in

  (* Map an objective to a PI assignment by walking back through X-valued
     nodes of the good machine. *)
  let rec backtrace good node desired =
    let n = c.Circuit.nodes.(node) in
    match n.Circuit.kind with
    | Gate.Input -> (pi_pos.(node), desired)
    | Gate.Buf -> backtrace good n.Circuit.fanins.(0) desired
    | Gate.Not -> backtrace good n.Circuit.fanins.(0) (not desired)
    | Gate.Const0 | Gate.Const1 -> assert false (* constants are never X *)
    | kind ->
        let want = if Gate.inversion kind then not desired else desired in
        let fanins = n.Circuit.fanins in
        (* Controlling objective (one input suffices): take the easiest X
           input.  Non-controlling (all inputs needed): take the hardest
           first, so infeasibility surfaces early. *)
        let easiest =
          match Gate.controlling_value kind with
          | Some ctrl -> want = ctrl
          | None -> true
        in
        let x_fanin = ref (-1) and x_cost = ref 0 in
        Array.iter
          (fun f ->
            if good.(f) = Ternary.X then begin
              let cost = Testability.cost_to_set tb f want in
              if
                !x_fanin < 0
                || (easiest && cost < !x_cost)
                || ((not easiest) && cost > !x_cost)
              then begin
                x_fanin := f;
                x_cost := cost
              end
            end)
          fanins;
        (* An X gate output always has at least one X fanin. *)
        assert (!x_fanin >= 0);
        backtrace good !x_fanin want
  in

  let trail : decision list ref = ref [] in
  let assign d = pi_vals.(d.pi) <- Ternary.of_bool d.value in
  let decide pi value =
    stats.decisions <- stats.decisions + 1;
    let d = { pi; value; alt_tried = false } in
    trail := d :: !trail;
    assign d
  in
  (* Undo decisions until one can be flipped; [false] when exhausted. *)
  let rec backtrack () =
    match !trail with
    | [] -> false
    | d :: rest ->
        if d.alt_tried then begin
          pi_vals.(d.pi) <- Ternary.X;
          trail := rest;
          backtrack ()
        end
        else begin
          d.alt_tried <- true;
          d.value <- not d.value;
          assign d;
          true
        end
  in

  let extract_test good faulty =
    (* Fill don't-cares randomly: collateral coverage helps the caller. *)
    ignore good;
    ignore faulty;
    Array.map
      (function
        | Ternary.T -> true
        | Ternary.F -> false
        | Ternary.X -> Rng.bool rng)
      pi_vals
  in

  let result = ref None in
  (* The decision loop is PODEM's hot loop: an expired budget aborts the
     fault like a blown backtrack limit — the caller records it as such. *)
  while !result = None do
    if stats.backtracks > max_backtracks || Reseed_util.Budget.check budget then
      result := Some Aborted
    else begin
      let good = Ternary.simulate c pi_vals () in
      let faulty = Ternary.simulate c pi_vals ~fault () in
      let xpath = xpath_of good faulty in
      match assess good faulty xpath with
      | Detected -> result := Some (Test (extract_test good faulty))
      | Blocked ->
          stats.backtracks <- stats.backtracks + 1;
          if not (backtrack ()) then result := Some Untestable
      | Possible -> (
          match objective good faulty xpath with
          | Some (node, desired) ->
              let pi, v = backtrace good node desired in
              decide pi v
          | None -> (
              (* No frontier objective reachable through good-machine Xs:
                 decide any unassigned PI to keep completeness. *)
              let free = ref (-1) in
              Array.iteri
                (fun i v -> if !free < 0 && v = Ternary.X then free := i)
                pi_vals;
              if !free < 0 then begin
                stats.backtracks <- stats.backtracks + 1;
                if not (backtrack ()) then result := Some Untestable
              end
              else decide !free true))
    end
  done;
  Option.get !result
