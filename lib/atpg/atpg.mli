(** Complete deterministic test-generation flow (the *TestGen* substitute).

    Pipeline: random-pattern phase with fault dropping → PODEM on every
    surviving fault (dropping collateral detections after each new test) →
    reverse-order static compaction.  The result is the deterministic test
    set [ATPGTS] the paper feeds to the Initial Reseeding Builder, plus
    the classification of every fault. *)

open Reseed_netlist
open Reseed_fault
open Reseed_util

type engine =
  | Podem_engine  (** structural PODEM (default) *)
  | Sat_engine  (** SAT-based generation (Larrabee); same completeness *)

type config = {
  seed : int;  (** RNG seed for random phase and don't-care fill *)
  max_random_patterns : int;  (** budget for the random phase *)
  max_backtracks : int;  (** PODEM budget per fault *)
  compaction : bool;  (** run reverse-order compaction *)
  use_random_phase : bool;
  engine : engine;
}

val default_config : config

type result = {
  tests : bool array array;  (** the deterministic test set, ATPGTS *)
  detected : Bitvec.t;  (** over the fault list, after the whole flow *)
  untestable : int list;  (** fault indices proven redundant *)
  aborted : int list;  (** fault indices abandoned (budget) *)
  random_patterns_tried : int;
  podem_stats : Podem.stats;
  dropped_by_compaction : int;
  stopped_early : bool;
      (** the [budget] expired mid-flow: surviving faults were classified
          [aborted] and compaction was skipped; [tests] is still sound *)
}

(** [fault_coverage sim r] is FC% over the detectable faults
    (testable-fault coverage, the figure the paper reports). *)
val fault_coverage : Fault_sim.t -> result -> float

(** [run ?config ?budget sim] generates tests for every fault of [sim]'s
    list; an expired [budget] aborts the remaining faults (see
    [stopped_early]).

    When [sim] was created with {!Fault_model.Transition_delay}, only the
    random phase runs: its kept patterns preserve launch/capture
    adjacency (the launch predecessor of every first-detecting pattern is
    kept with it), while the single-pattern deterministic engines and
    reverse-order compaction — both of which would break pair adjacency —
    are skipped, with surviving faults classified [aborted]. *)
val run : ?config:config -> ?budget:Budget.t -> Fault_sim.t -> result

(** [run_circuit ?config ?sim_engine ?fault_model ?faults ?budget c]
    builds the fault list ([faults] defaults to the [fault_model]'s own
    enumeration, {!Fault_model.faults} — equivalence-collapsed for
    stuck-at, uncollapsed for transition; pass [Collapse.reps] for
    class-collapsed stuck-at simulation) and the simulator ([sim_engine]
    selects the {!Fault_sim.engine}, default [Hybrid]; [fault_model]
    defaults to {!Fault_model.Stuck_at}), then runs the flow; returns the
    simulator too. *)
val run_circuit :
  ?config:config ->
  ?sim_engine:Fault_sim.engine ->
  ?fault_model:Fault_model.t ->
  ?faults:Fault.t array ->
  ?budget:Budget.t ->
  Circuit.t ->
  Fault_sim.t * result
