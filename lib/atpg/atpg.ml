open Reseed_fault
open Reseed_util

type engine = Podem_engine | Sat_engine

type config = {
  seed : int;
  max_random_patterns : int;
  max_backtracks : int;
  compaction : bool;
  use_random_phase : bool;
  engine : engine;
}

let default_config =
  {
    seed = 42;
    max_random_patterns = 10_000;
    max_backtracks = 2000;
    compaction = true;
    use_random_phase = true;
    engine = Podem_engine;
  }

type result = {
  tests : bool array array;
  detected : Bitvec.t;
  untestable : int list;
  aborted : int list;
  random_patterns_tried : int;
  podem_stats : Podem.stats;
  dropped_by_compaction : int;
  stopped_early : bool;
}

let fault_coverage sim r =
  let detectable = Fault_sim.fault_count sim - List.length r.untestable in
  Stats.pct (Bitvec.count r.detected) (max 1 detectable)

let m_random = Metrics.counter ~help:"random ATPG patterns tried" "atpg_random_patterns"

let m_decisions = Metrics.counter ~help:"PODEM PI decisions" "podem_decisions"

let m_backtracks = Metrics.counter ~help:"PODEM backtracks" "podem_backtracks"

let m_untestable = Metrics.counter ~help:"faults proved untestable" "atpg_untestable"

let m_aborted = Metrics.counter ~help:"fault targets aborted" "atpg_aborted"

let run ?(config = default_config) ?budget sim =
  let c = Fault_sim.circuit sim in
  let faults = Fault_sim.faults sim in
  let nf = Array.length faults in
  Trace.with_span "atpg.run" ~args:[ ("faults", string_of_int nf) ] @@ fun () ->
  let rng = Rng.create config.seed in
  let detected = Bitvec.create nf in
  let tests = ref [] in
  let n_tests = ref 0 in
  let push_tests arr =
    Array.iter (fun t -> tests := t :: !tests) arr;
    n_tests := !n_tests + Array.length arr
  in
  (* Phase 1: random patterns. *)
  let random_tried = ref 0 in
  if config.use_random_phase then begin
    Trace.with_span "atpg.random_phase" @@ fun () ->
    let r =
      Random_gen.run ?budget sim ~rng ~max_patterns:config.max_random_patterns ()
    in
    push_tests r.Random_gen.tests;
    Bitvec.union_into ~into:detected r.Random_gen.detected;
    random_tried := r.Random_gen.patterns_tried
  end;
  Metrics.add m_random !random_tried;
  (* Phase 2: PODEM per surviving fault, with collateral dropping. *)
  let podem_stats = Podem.new_stats () in
  let testability = Testability.compute c in
  let untestable = ref [] and aborted = ref [] in
  let deterministic_generate fault =
    match config.engine with
    | Podem_engine ->
        Podem.generate c fault ~rng ~max_backtracks:config.max_backtracks
          ?budget ~testability ~stats:podem_stats ()
    | Sat_engine -> (
        match Satpg.generate c fault ?budget () with
        | Satpg.Test t -> Podem.Test t
        | Satpg.Untestable -> Podem.Untestable
        | Satpg.Aborted -> Podem.Aborted)
  in
  (* An expired budget stops issuing deterministic generation: surviving
     faults are classified [aborted] (a budget casualty, like a PODEM
     backtrack limit), so the partial test set stays a sound result.
     The deterministic engines are single-pattern: they cannot construct
     the launch/capture pairs transition faults need, so under that model
     the phase is skipped wholesale and survivors are aborted honestly. *)
  let single_pattern = Fault_sim.model sim = Fault_model.Stuck_at in
  (Trace.with_span "atpg.deterministic_phase" @@ fun () ->
   for fi = 0 to nf - 1 do
     if not (Bitvec.get detected fi) then begin
       if (not single_pattern) || Budget.check budget then aborted := fi :: !aborted
       else
         match deterministic_generate faults.(fi) with
         | Podem.Test pattern ->
             let active = Bitvec.create nf in
             Bitvec.fill_all active;
             Bitvec.diff_into ~into:active detected;
             let newly = Fault_sim.detected_set sim [| pattern |] ~active in
             Bitvec.union_into ~into:detected newly;
             push_tests [| pattern |]
         | Podem.Untestable -> untestable := fi :: !untestable
         | Podem.Aborted -> aborted := fi :: !aborted
     end
   done);
  let tests_arr = Array.of_list (List.rev !tests) in
  (* Phase 3: compaction — skipped on expiry (it only shrinks the set)
     and under transition faults (reordering breaks launch/capture
     adjacency, so every pair the random phase kept would unravel). *)
  let tests_arr, dropped =
    if config.compaction && single_pattern && not (Budget.check budget) then
      Trace.with_span "atpg.compaction" @@ fun () ->
      Compact.reverse_order sim tests_arr
    else (tests_arr, 0)
  in
  Metrics.add m_decisions podem_stats.Podem.decisions;
  Metrics.add m_backtracks podem_stats.Podem.backtracks;
  Metrics.add m_untestable (List.length !untestable);
  Metrics.add m_aborted (List.length !aborted);
  {
    tests = tests_arr;
    detected;
    untestable = List.rev !untestable;
    aborted = List.rev !aborted;
    random_patterns_tried = !random_tried;
    podem_stats;
    dropped_by_compaction = dropped;
    stopped_early = Budget.check budget;
  }

let run_circuit ?config ?sim_engine ?(fault_model = Fault_model.Stuck_at) ?faults
    ?budget c =
  let faults =
    match faults with Some f -> f | None -> Fault_model.faults fault_model c
  in
  let sim = Fault_sim.create ?engine:sim_engine ~model:fault_model c faults in
  (sim, run ?config ?budget sim)
