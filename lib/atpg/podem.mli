(** PODEM — path-oriented decision making deterministic test generation.

    Classic Goel-style PODEM: decisions are made only on primary inputs,
    objectives are derived from fault activation and the D-frontier, and a
    backtrace maps each objective to a PI assignment.  The search is
    complete, so exhausting it proves the fault untestable (redundant);
    a backtrack budget bounds worst-case behaviour. *)

open Reseed_netlist
open Reseed_fault
open Reseed_util

type outcome =
  | Test of bool array
      (** a fully-specified test pattern (don't-cares filled from the RNG) *)
  | Untestable  (** complete search exhausted: the fault is redundant *)
  | Aborted  (** backtrack budget exceeded *)

type stats = { mutable backtracks : int; mutable decisions : int }

val new_stats : unit -> stats

(** [generate c fault ~rng ?max_backtracks ?budget ?testability ?stats ()]
    attempts to derive a test for [fault].  [max_backtracks] defaults to
    2000; an expired [budget] aborts the fault at the next decision, like
    a blown backtrack limit.  Pass a precomputed [testability] when
    generating for many faults of the same circuit (it guides branch
    ordering; recomputed per call otherwise). *)
val generate :
  Circuit.t ->
  Fault.t ->
  rng:Rng.t ->
  ?max_backtracks:int ->
  ?budget:Budget.t ->
  ?testability:Testability.t ->
  ?stats:stats ->
  unit ->
  outcome
