open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type operand_mode = Random_operand | Shared_operand of Word.t

type config = { cycles : int; operand_mode : operand_mode; seed : int }

let default_config = { cycles = 150; operand_mode = Random_operand; seed = 17 }

type t = {
  triplets : Triplet.t array;
  matrix : Matrix.t;
  targets : Bitvec.t;
  useful_cycles : int array;
  fault_sims : int;
  rows_skipped : int;
  rows_restored : int;
}

let operand_tag = function
  | Random_operand -> "random"
  | Shared_operand w -> "shared:" ^ Word.to_hex w

let m_rows_computed =
  Metrics.counter ~help:"detection-matrix rows fault-simulated" "builder_rows_computed"

let m_ck_hits =
  Metrics.counter ~help:"rows restored from a checkpoint" "builder_checkpoint_hits"

let m_rows_skipped =
  Metrics.counter ~help:"rows abandoned to an expired budget" "builder_rows_skipped"

(* Triplet construction stays sequential: the operand RNG stream is a
   fixed function of the seed, independent of the job count. *)
let make_triplets ~config tpg tests =
  let width = tpg.Tpg.width in
  let rng = Rng.create config.seed in
  let operand_for _i =
    let raw =
      match config.operand_mode with
      | Random_operand -> Word.random rng width
      | Shared_operand w ->
          if Word.width w <> width then invalid_arg "Builder.build: shared operand width";
          w
    in
    tpg.Tpg.fix_operand raw
  in
  Array.mapi
    (fun i pattern ->
      if Array.length pattern <> width then
        invalid_arg "Builder.build: ATPG pattern width differs from TPG width";
      Triplet.make ~seed:(Word.of_bits pattern) ~operand:(operand_for i)
        ~cycles:config.cycles)
    tests

let fingerprint ?salt ?(fault_model = Fault_model.Stuck_at) ~tests ~targets tpg
    ~config =
  let open Fingerprint in
  let h = salted "matrix" in
  let h = option int64 h salt in
  let h = string h ("workload:faults:" ^ Fault_model.name fault_model) in
  let h = int h config.cycles in
  let h = int h config.seed in
  let h = string h (operand_tag config.operand_mode) in
  let h = string h tpg.Tpg.name in
  let h = int h tpg.Tpg.width in
  let h = bitvec h targets in
  patterns h tests

(* The matrix artifact stores what fault simulation produced — row sets
   and useful-cycle counts.  Triplets are re-derived from the same seed
   (cheap and deterministic), so a warm hit costs zero injections. *)
let encode_built b =
  if b.rows_skipped > 0 then None
  else begin
    let n = Array.length b.useful_cycles in
    let cols = Bitvec.length b.targets in
    let buf = Buffer.create (8 + (n * 16)) in
    Artifact.Codec.u32 buf n;
    Artifact.Codec.u32 buf cols;
    Array.iteri
      (fun i useful ->
        Artifact.Codec.u32 buf useful;
        Artifact.Codec.rowset buf (Matrix.rowset b.matrix i))
      b.useful_cycles;
    Some (Buffer.contents buf)
  end

let decode_built ~config ~tests ~targets tpg r =
  let nf = Bitvec.length targets in
  let n = Artifact.Codec.get_u32 r in
  let cols = Artifact.Codec.get_u32 r in
  if n <> Array.length tests || cols <> nf then raise Artifact.Codec.Malformed;
  let useful_cycles = Array.make n 1 in
  let rows =
    Array.init n (fun i ->
        useful_cycles.(i) <- Artifact.Codec.get_u32 r;
        let row = Artifact.Codec.get_rowset r in
        if Rowset.length row <> nf then raise Artifact.Codec.Malformed;
        row)
  in
  {
    triplets = make_triplets ~config tpg tests;
    matrix = Matrix.of_rowsets ~cols:nf rows;
    targets;
    useful_cycles;
    fault_sims = 0;
    rows_skipped = 0;
    rows_restored = 0;
  }

(* One shard = one checkpoint-sized row range, published to the store as
   soon as its rows are complete and keyed by the matrix fingerprint
   plus the range.  A run that dies (or runs out of budget) after
   finishing some shards leaves them behind; the rerun restores them
   row-for-row and simulates only the rest — and at no point does any
   encoder need more than one shard of dense scratch in memory. *)
let encode_shard group =
  match group with
  | None -> None
  | Some rows ->
      let buf = Buffer.create (Array.length rows * 16) in
      Artifact.Codec.u32 buf (Array.length rows);
      Array.iter
        (fun (useful, row) ->
          Artifact.Codec.u32 buf useful;
          Artifact.Codec.rowset buf row)
        rows;
      Some (Buffer.contents buf)

let decode_shard ~nf ~expect r =
  let n = Artifact.Codec.get_u32 r in
  if n <> expect then raise Artifact.Codec.Malformed;
  Some
    (Array.init n (fun _ ->
         let useful = Artifact.Codec.get_u32 r in
         let row = Artifact.Codec.get_rowset r in
         if Rowset.length row <> nf then raise Artifact.Codec.Malformed;
         (useful, row)))

let build ?pool ?budget ?checkpoint ?store ?fingerprint:fp sim tpg ~tests ~targets
    ~config =
  let nf = Fault_sim.fault_count sim in
  if Bitvec.length targets <> nf then invalid_arg "Builder.build: target mask size";
  let fp =
    match (store, fp) with
    | Some _, None ->
        Some
          (fingerprint ~fault_model:(Fault_sim.model sim) ~tests ~targets tpg
             ~config)
    | _ -> fp
  in
  Artifact.cached
    (if fp = None then None else store)
    ~stage:"matrix"
    ~fp:(Option.value fp ~default:Fingerprint.empty)
    ~encode:encode_built
    ~decode:(decode_built ~config ~tests ~targets tpg)
  @@ fun () ->
  Trace.with_span "builder.build"
    ~args:
      [ ("rows", string_of_int (Array.length tests)); ("faults", string_of_int nf) ]
  @@ fun () ->
  let width = tpg.Tpg.width in
  let sims_before = Fault_sim.sims_performed sim in
  let triplets = make_triplets ~config tpg tests in
  let n = Array.length triplets in
  let useful_cycles = Array.make n 1 in
  (* Rows start empty and are compacted the moment they are simulated;
     only the in-flight rows of one chunk ever exist in dense scratch
     form, so the full M x F matrix is never resident during
     construction. *)
  let empty_row = Rowset.of_sorted_array nf [||] in
  let rows = Array.make n empty_row in
  let completed = Array.make n false in
  (* Resume: rows are pure functions of their index, so any complete row
     from a fingerprint-matching checkpoint is the row we would compute. *)
  let ck =
    Option.map
      (fun dir ->
        let fp =
          Checkpoint.fingerprint ~tests ~targets ~cycles:config.cycles
            ~seed:config.seed
            ~operand_tag:(operand_tag config.operand_mode)
            ~fault_model:(Fault_model.name (Fault_sim.model sim))
            ~tpg:tpg.Tpg.name ~width
        in
        Checkpoint.open_dir ~dir ~fingerprint:fp ~rows:n ~cols:nf)
      checkpoint
  in
  let restored = ref 0 in
  Option.iter
    (fun ck ->
      ignore
        (Checkpoint.restore ck (fun ~row ~useful bits ->
             if not completed.(row) then begin
               completed.(row) <- true;
               incr restored;
               rows.(row) <- Rowset.of_bitvec bits;
               useful_cycles.(row) <- useful
             end)))
    ck;
  (* One task per matrix row; each worker fault-simulates on its own
     simulator shard, and every write lands in the task's own row slot, so
     the matrix is bit-identical at every job count.  With a checkpoint or
     an artifact store the rows are processed in chunk-sized groups so each
     finished group can be persisted — and, for the store, restored —
     independently before the next starts; a budget-abandoned row stays
     empty and [completed] false, and is never persisted. *)
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let sim_shard = Fault_sim.shard sim (Pool.jobs pool) in
  let shard_store =
    match (store, fp) with Some s, Some _ -> Some s | _ -> None
  in
  let group =
    match (ck, shard_store) with
    | None, None -> max 1 n
    | _ -> Checkpoint.chunk_rows
  in
  let base_fp = Option.value fp ~default:Fingerprint.empty in
  let glo = ref 0 in
  while !glo < n do
    let lo = !glo and hi = min n (!glo + group) in
    glo := hi;
    let missing = ref false in
    for i = lo to hi - 1 do
      if not completed.(i) then missing := true
    done;
    if !missing && not (Budget.check budget) then begin
      let computed = ref false in
      let compute () =
        Trace.with_span "builder.chunk"
          ~args:[ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
        @@ fun () ->
        computed := true;
        Pool.parallel_for ~pool ~chunk:1 ~label:"detection-matrix rows"
          ~total:(hi - lo) (fun ~worker ~lo:tlo ~hi:thi ->
            let s = sim_shard.(worker) in
            for j = tlo to thi - 1 do
              let i = lo + j in
              if (not completed.(i)) && not (Budget.check budget) then begin
                let burst = Triplet.patterns tpg triplets.(i) in
                let firsts =
                  Fault_sim.first_detections ?budget s ~active:targets burst
                in
                (* An expired budget may have cut the sweep short: discard
                   the partial row rather than commit an understated one. *)
                if not (Budget.check budget) then begin
                  let row = Bitvec.create nf in
                  let useful = ref 1 in
                  Array.iteri
                    (fun fi first ->
                      match first with
                      | Some p when Bitvec.get targets fi ->
                          Bitvec.set row fi;
                          if p + 1 > !useful then useful := p + 1
                      | _ -> ())
                    firsts;
                  rows.(i) <- Rowset.of_bitvec row;
                  useful_cycles.(i) <- !useful;
                  completed.(i) <- true
                end
              end
            done);
        let all = ref true in
        for i = lo to hi - 1 do
          if not completed.(i) then all := false
        done;
        if !all then
          Some (Array.init (hi - lo) (fun j -> (useful_cycles.(lo + j), rows.(lo + j))))
        else None
      in
      let shard_result =
        Artifact.cached shard_store ~stage:"matrixshard"
          ~fp:Fingerprint.(int (int base_fp lo) hi)
          ~encode:encode_shard
          ~decode:(decode_shard ~nf ~expect:(hi - lo))
          compute
      in
      (match shard_result with
      | Some group_rows when not !computed ->
          (* Shard cache hit: adopt the stored rows. *)
          Array.iteri
            (fun j (useful, row) ->
              let i = lo + j in
              if not completed.(i) then begin
                completed.(i) <- true;
                incr restored;
                rows.(i) <- row;
                useful_cycles.(i) <- useful
              end)
            group_rows
      | _ -> ());
      match ck with
      | Some ck ->
          let all = ref true in
          for i = lo to hi - 1 do
            if not completed.(i) then all := false
          done;
          if !all then
            Checkpoint.store ck ~lo ~hi
              ~useful:(fun i -> useful_cycles.(i))
              ~row:(fun i -> Rowset.to_bitvec rows.(i))
      | None -> ()
    end
  done;
  Fault_sim.merge_sims ~into:sim sim_shard;
  let skipped = ref 0 in
  Array.iter (fun d -> if not d then incr skipped) completed;
  Metrics.add m_rows_computed (n - !restored - !skipped);
  Metrics.add m_ck_hits !restored;
  Metrics.add m_rows_skipped !skipped;
  let matrix = Matrix.of_rowsets ~cols:nf rows in
  {
    triplets;
    matrix;
    targets;
    useful_cycles;
    fault_sims = Fault_sim.sims_performed sim - sims_before;
    rows_skipped = !skipped;
    rows_restored = !restored;
  }
