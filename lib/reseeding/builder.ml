open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type operand_mode = Random_operand | Shared_operand of Word.t

type config = { cycles : int; operand_mode : operand_mode; seed : int }

let default_config = { cycles = 150; operand_mode = Random_operand; seed = 17 }

type t = {
  triplets : Triplet.t array;
  matrix : Matrix.t;
  targets : Bitvec.t;
  useful_cycles : int array;
  fault_sims : int;
}

let build ?pool sim tpg ~tests ~targets ~config =
  let nf = Fault_sim.fault_count sim in
  if Bitvec.length targets <> nf then invalid_arg "Builder.build: target mask size";
  let width = tpg.Tpg.width in
  let rng = Rng.create config.seed in
  let operand_for _i =
    let raw =
      match config.operand_mode with
      | Random_operand -> Word.random rng width
      | Shared_operand w ->
          if Word.width w <> width then invalid_arg "Builder.build: shared operand width";
          w
    in
    tpg.Tpg.fix_operand raw
  in
  let sims_before = Fault_sim.sims_performed sim in
  (* Triplet construction stays sequential: the operand RNG stream is a
     fixed function of the seed, independent of the job count. *)
  let triplets =
    Array.mapi
      (fun i pattern ->
        if Array.length pattern <> width then
          invalid_arg "Builder.build: ATPG pattern width differs from TPG width";
        Triplet.make ~seed:(Word.of_bits pattern) ~operand:(operand_for i)
          ~cycles:config.cycles)
      tests
  in
  let n = Array.length triplets in
  let useful_cycles = Array.make n 1 in
  (* One task per matrix row; each worker fault-simulates on its own
     simulator shard, and every write lands in the task's own row slot, so
     the matrix is bit-identical at every job count. *)
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let shard = Fault_sim.shard sim (Pool.jobs pool) in
  let rows = Array.make n (Bitvec.create 0) in
  Pool.parallel_for ~pool ~chunk:1 ~total:n (fun ~worker ~lo ~hi ->
      let s = shard.(worker) in
      for i = lo to hi - 1 do
        let burst = Triplet.patterns tpg triplets.(i) in
        let firsts = Fault_sim.first_detections s ~active:targets burst in
        let row = Bitvec.create nf in
        Array.iteri
          (fun fi first ->
            match first with
            | Some p when Bitvec.get targets fi ->
                Bitvec.set row fi;
                if p + 1 > useful_cycles.(i) then useful_cycles.(i) <- p + 1
            | _ -> ())
          firsts;
        rows.(i) <- row
      done);
  Fault_sim.merge_sims ~into:sim shard;
  let matrix = Matrix.of_rows ~cols:nf rows in
  {
    triplets;
    matrix;
    targets;
    useful_cycles;
    fault_sims = Fault_sim.sims_performed sim - sims_before;
  }
