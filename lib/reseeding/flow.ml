open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type objective = Min_triplets | Min_test_length

type config = {
  builder : Builder.config;
  method_ : Solution.method_;
  reduce : Reduce.config;
  objective : objective;
}

let default_config =
  {
    builder = Builder.default_config;
    method_ = Solution.Exact;
    reduce = Reduce.default_config;
    objective = Min_triplets;
  }

type result = {
  tpg_name : string;
  initial : Builder.t;
  solution : Solution.t;
  final_triplets : Triplet.t list;
  dropped_triplets : int;
  test_length : int;
  uniform_test_length : int;
  coverage_pct : float;
  fault_sims : int;
  elapsed_s : float;
  degraded : bool;
  stop_reason : Budget.stop_reason option;
}

let reseedings r = List.length r.final_triplets

let m_dropped =
  Metrics.counter
    ~help:"redundant selected triplets dropped during truncation"
    "flow_dropped_triplets"

(* Section 4 test-length accounting: apply the chosen triplets in order
   with fault dropping; each burst is truncated after the last pattern
   that detects a fault no earlier burst (or pattern) already covered. *)
let truncate_solution sim tpg ~triplets ~targets rows =
  Trace.with_span "flow.truncate" @@ fun () ->
  let active = Bitvec.copy targets in
  let final = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun row ->
      let triplet = triplets.(row) in
      let burst = Triplet.patterns tpg triplet in
      let firsts = Fault_sim.first_detections sim ~active burst in
      let last_useful = ref (-1) in
      Array.iteri
        (fun fi first ->
          match first with
          | Some p when Bitvec.get active fi ->
              Bitvec.clear active fi;
              if p > !last_useful then last_useful := p
          | _ -> ())
        firsts;
      (* A *minimal* cover gives every selected triplet some unique fault,
         so nothing is dropped on the optimal path.  A degraded (greedy /
         incumbent) cover can select redundant rows; those are dropped
         from the final reseeding and counted, not silently vanished. *)
      if !last_useful >= 0 then
        final := Triplet.truncate triplet (!last_useful + 1) :: !final
      else incr dropped)
    rows;
  (List.rev !final, active, !dropped)

(* ------------------------------------------------------------------ *)
(* Stage fingerprints and payload codecs for the covering stages.  The
   matrix-stage fingerprint [fpm] is the lineage root: reduce, solve and
   truncate keys all chain from it, so any upstream change — tests,
   targets, TPG, builder config, or the ATPG-stage salt — invalidates
   every downstream artifact at once. *)

let reduce_fingerprint ~fpm ~reduce ~row_weights =
  let open Fingerprint in
  let h = salted "reduce" in
  let h = int64 h fpm in
  let h = bool h reduce.Reduce.row_dominance in
  let h = bool h reduce.Reduce.col_dominance in
  let h = bool h reduce.Reduce.essentials in
  let h = int h reduce.Reduce.col_dominance_limit in
  option (array float) h row_weights

let solve_fingerprint ~base ~method_ ~row_weights =
  let open Fingerprint in
  let h = salted "solve" in
  let h = int64 h base in
  let h = string h (Solution.method_name method_) in
  option (array float) h row_weights

let truncate_fingerprint ~fpm ~rows =
  let open Fingerprint in
  let h = salted "truncate" in
  let h = int64 h fpm in
  list int h rows

let encode_reduce (r : Reduce.result) =
  let b = Buffer.create 256 in
  Artifact.Codec.int_list b r.Reduce.necessary;
  Artifact.Codec.int_list b r.Reduce.remaining_rows;
  Artifact.Codec.int_list b r.Reduce.remaining_cols;
  Artifact.Codec.vint b r.Reduce.iterations;
  Artifact.Codec.vint b r.Reduce.rows_dominated;
  Artifact.Codec.vint b r.Reduce.cols_dominated;
  Some (Buffer.contents b)

let decode_reduce r =
  let necessary = Artifact.Codec.get_int_list r in
  let remaining_rows = Artifact.Codec.get_int_list r in
  let remaining_cols = Artifact.Codec.get_int_list r in
  let iterations = Artifact.Codec.get_vint r in
  let rows_dominated = Artifact.Codec.get_vint r in
  let cols_dominated = Artifact.Codec.get_vint r in
  {
    Reduce.necessary;
    remaining_rows;
    remaining_cols;
    iterations;
    rows_dominated;
    cols_dominated;
  }

(* Only proven-complete end-games are worth reusing; an incumbent cut
   short by a budget must be recomputed next time (maybe with more time). *)
let encode_solve (selected, nodes, stop, optimal) =
  if stop <> Ilp.Complete then None
  else begin
    let b = Buffer.create 64 in
    Artifact.Codec.int_list b selected;
    Artifact.Codec.vint b nodes;
    Artifact.Codec.u32 b (if optimal then 1 else 0);
    Some (Buffer.contents b)
  end

let decode_solve r =
  let selected = Artifact.Codec.get_int_list r in
  let nodes = Artifact.Codec.get_vint r in
  let optimal =
    match Artifact.Codec.get_u32 r with
    | 0 -> false
    | 1 -> true
    | _ -> raise Artifact.Codec.Malformed
  in
  (selected, nodes, Ilp.Complete, optimal)

let encode_truncate ~targets (final, missed, dropped) =
  if Bitvec.length missed <> Bitvec.length targets then None
  else begin
    let b = Buffer.create 256 in
    Artifact.Codec.vint b dropped;
    Artifact.Codec.bitvec b missed;
    Artifact.Codec.u32 b (List.length final);
    List.iter
      (fun t ->
        Artifact.Codec.word b t.Triplet.seed;
        Artifact.Codec.word b t.Triplet.operand;
        Artifact.Codec.u32 b t.Triplet.cycles)
      final;
    Some (Buffer.contents b)
  end

let decode_truncate ~targets r =
  let dropped = Artifact.Codec.get_vint r in
  let missed = Artifact.Codec.get_bitvec r in
  if Bitvec.length missed <> Bitvec.length targets then
    raise Artifact.Codec.Malformed;
  let n = Artifact.Codec.get_u32 r in
  let final =
    List.init n (fun _ ->
        let seed = Artifact.Codec.get_word r in
        let operand = Artifact.Codec.get_word r in
        let cycles = Artifact.Codec.get_u32 r in
        try Triplet.make ~seed ~operand ~cycles
        with Invalid_argument _ -> raise Artifact.Codec.Malformed)
  in
  (final, missed, dropped)

(* Mirror of [Solution.solve] with each expensive leg memoised in the
   artifact store.  The stats record is assembled field-for-field the
   same way, so staged and plain runs are bit-identical. *)
let staged_solve ~method_ ~reduce ?row_weights ?budget ?pool store fpm m =
  Trace.with_span "solution.solve"
    ~args:[ ("method", Solution.method_name method_) ]
  @@ fun () ->
  let uncovered = Matrix.uncoverable m in
  match method_ with
  | Solution.No_reduction_exact ->
      let fp = solve_fingerprint ~base:fpm ~method_ ~row_weights in
      let selected, nodes, stop, optimal =
        Artifact.cached (Some store) ~stage:"solve" ~fp ~encode:encode_solve
          ~decode:decode_solve
        @@ fun () ->
        let r = Ilp.solve ?weights:row_weights ?budget m in
        (r.Ilp.selected, r.Ilp.nodes_explored, r.Ilp.stop_reason, r.Ilp.optimal)
      in
      {
        Solution.rows = selected;
        stats =
          {
            Solution.initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = [];
            reduced_rows = Matrix.rows m;
            reduced_cols = Matrix.cols m;
            from_solver = selected;
            reduction_iterations = 0;
            solver_nodes = nodes;
            solver_optimal = optimal;
            solver_stop = stop;
            degraded = Solution.is_degraded method_ stop;
            uncovered;
            portfolio_legs = [];
            portfolio_winner = None;
          };
      }
  | Solution.Exact | Solution.Greedy_only | Solution.Portfolio_race ->
      let fp_reduce = reduce_fingerprint ~fpm ~reduce ~row_weights in
      let red =
        Artifact.cached (Some store) ~stage:"reduce" ~fp:fp_reduce
          ~encode:encode_reduce ~decode:decode_reduce
        @@ fun () -> Reduce.run ~config:reduce ?row_weights m
      in
      (* The residual is cheap to rebuild and deterministic in (m, red),
         so it is recomputed rather than stored. *)
      let residual, row_map, _col_map = Reduce.residual m red in
      let weights =
        Option.map (fun w -> Array.map (fun ri -> w.(ri)) row_map) row_weights
      in
      let from_solver, nodes, stop, optimal, legs, winner =
        if Matrix.rows residual = 0 || Matrix.cols residual = 0 then
          ([], 0, Ilp.Complete, true, [], None)
        else
          match method_ with
          | Solution.Portfolio_race ->
              (* Per-leg attribution does not round-trip the solve codec,
                 and the race reads the shared incumbent as it runs — the
                 solve stage is recomputed rather than memoised (the
                 reduce stage above is still cached). *)
              let r = Portfolio.solve ?weights ?budget ?pool residual in
              let ilp_nodes =
                List.fold_left
                  (fun acc l ->
                    if l.Portfolio.leg = "ilp" then l.Portfolio.work else acc)
                  0 r.Portfolio.legs
              in
              ( List.map (fun ri -> row_map.(ri)) r.Portfolio.selected,
                ilp_nodes,
                r.Portfolio.stop_reason,
                r.Portfolio.optimal,
                r.Portfolio.legs,
                Some r.Portfolio.winner )
          | Solution.Greedy_only | Solution.Exact | Solution.No_reduction_exact
            ->
              let fp_solve =
                solve_fingerprint ~base:fp_reduce ~method_ ~row_weights
              in
              let from_solver, nodes, stop, optimal =
                Artifact.cached (Some store) ~stage:"solve" ~fp:fp_solve
                  ~encode:encode_solve ~decode:decode_solve
                @@ fun () ->
                match method_ with
                | Solution.Greedy_only ->
                    let picks = Greedy.solve residual in
                    ( List.map (fun ri -> row_map.(ri)) picks,
                      0,
                      Ilp.Complete,
                      false )
                | _ ->
                    let r = Ilp.solve ?weights ?budget residual in
                    ( List.map (fun ri -> row_map.(ri)) r.Ilp.selected,
                      r.Ilp.nodes_explored,
                      r.Ilp.stop_reason,
                      r.Ilp.optimal )
              in
              (from_solver, nodes, stop, optimal, [], None)
      in
      let rows = List.sort_uniq compare (red.Reduce.necessary @ from_solver) in
      {
        Solution.rows;
        stats =
          {
            Solution.initial_rows = Matrix.rows m;
            initial_cols = Matrix.cols m;
            necessary = red.Reduce.necessary;
            reduced_rows = Matrix.rows residual;
            reduced_cols = Matrix.cols residual;
            from_solver;
            reduction_iterations = red.Reduce.iterations;
            solver_nodes = nodes;
            solver_optimal = optimal;
            solver_stop = stop;
            degraded = Solution.is_degraded method_ stop;
            uncovered;
            portfolio_legs = legs;
            portfolio_winner = winner;
          };
      }

let run_prebuilt ?(config = default_config) ?pool ?budget ?store ?fingerprint:fpm
    sim tpg ~initial ~targets =
  let t0 = Unix.gettimeofday () in
  let sims_before = Fault_sim.sims_performed sim in
  let row_weights =
    match config.objective with
    | Min_triplets -> None
    | Min_test_length ->
        Some (Array.map float_of_int initial.Builder.useful_cycles)
  in
  (* A matrix with skipped rows differs from what its fingerprint
     promises: neither read nor write any downstream artifact for it. *)
  let store =
    if initial.Builder.rows_skipped > 0 then None
    else match (store, fpm) with Some st, Some _ -> Some st | _ -> None
  in
  let solution =
    match (store, fpm) with
    | Some st, Some fpm ->
        staged_solve ~method_:config.method_ ~reduce:config.reduce ?row_weights
          ?budget ?pool st fpm initial.Builder.matrix
    | _ ->
        Solution.solve ~method_:config.method_ ~reduce_config:config.reduce
          ?row_weights ?budget ?pool initial.Builder.matrix
  in
  let final_triplets, missed, dropped =
    let compute () =
      truncate_solution sim tpg ~triplets:initial.Builder.triplets ~targets
        solution.Solution.rows
    in
    match (store, fpm) with
    | Some st, Some fpm when not solution.Solution.stats.Solution.degraded ->
        let fp = truncate_fingerprint ~fpm ~rows:solution.Solution.rows in
        Artifact.cached (Some st) ~stage:"truncate" ~fp
          ~encode:(encode_truncate ~targets) ~decode:(decode_truncate ~targets)
          compute
    | _ -> compute ()
  in
  let covered = Bitvec.count targets - Bitvec.count missed in
  let test_length =
    List.fold_left (fun acc t -> acc + t.Triplet.cycles) 0 final_triplets
  in
  (* The uniform scheme (no per-burst truncation hardware) runs every
     *selected* triplet for its full configured burst length, so the
     comparison baseline uses the pre-truncation cycle counts and counts
     the redundant rows the truncated flow drops — not the truncated
     cycles of the surviving subset, which understated it. *)
  let uniform_cycles =
    List.fold_left
      (fun acc row -> max acc initial.Builder.triplets.(row).Triplet.cycles)
      0 solution.Solution.rows
  in
  Metrics.add m_dropped dropped;
  {
    tpg_name = tpg.Tpg.name;
    initial;
    solution;
    final_triplets;
    dropped_triplets = dropped;
    test_length;
    uniform_test_length = List.length solution.Solution.rows * uniform_cycles;
    coverage_pct = Stats.pct covered (max 1 (Bitvec.count targets));
    fault_sims =
      initial.Builder.fault_sims + (Fault_sim.sims_performed sim - sims_before);
    elapsed_s = Unix.gettimeofday () -. t0;
    degraded =
      solution.Solution.stats.Solution.degraded || initial.Builder.rows_skipped > 0;
    stop_reason = Option.join (Option.map Budget.stop_reason budget);
  }

let run ?(config = default_config) ?pool ?budget ?checkpoint ?store ?fingerprint sim
    tpg ~tests ~targets =
  Trace.with_span "flow.run" ~args:[ ("tpg", tpg.Tpg.name) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let fpm =
    Builder.fingerprint ?salt:fingerprint ~fault_model:(Fault_sim.model sim)
      ~tests ~targets tpg ~config:config.builder
  in
  let initial =
    Builder.build ?pool ?budget ?checkpoint ?store ~fingerprint:fpm sim tpg ~tests
      ~targets ~config:config.builder
  in
  let r =
    run_prebuilt ~config ?pool ?budget ?store ~fingerprint:fpm sim tpg ~initial
      ~targets
  in
  (* The prebuilt leg timed itself; report the whole flow, matrix build
     included.  [fault_sims] already covers both (it is counted from
     [initial.fault_sims] plus the truncation sweeps). *)
  { r with elapsed_s = Unix.gettimeofday () -. t0 }

let verify sim tpg r =
  let all_patterns =
    Array.concat (List.map (fun t -> Triplet.patterns tpg t) r.final_triplets)
  in
  let detected =
    Fault_sim.detected_set sim all_patterns ~active:r.initial.Builder.targets
  in
  Bitvec.subset r.initial.Builder.targets detected
