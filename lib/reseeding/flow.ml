open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type objective = Min_triplets | Min_test_length

type config = {
  builder : Builder.config;
  method_ : Solution.method_;
  reduce : Reduce.config;
  objective : objective;
}

let default_config =
  {
    builder = Builder.default_config;
    method_ = Solution.Exact;
    reduce = Reduce.default_config;
    objective = Min_triplets;
  }

type result = {
  tpg_name : string;
  initial : Builder.t;
  solution : Solution.t;
  final_triplets : Triplet.t list;
  dropped_triplets : int;
  test_length : int;
  uniform_test_length : int;
  coverage_pct : float;
  fault_sims : int;
  elapsed_s : float;
  degraded : bool;
  stop_reason : Budget.stop_reason option;
}

let reseedings r = List.length r.final_triplets

let m_dropped =
  Metrics.counter
    ~help:"redundant selected triplets dropped during truncation"
    "flow_dropped_triplets"

(* Section 4 test-length accounting: apply the chosen triplets in order
   with fault dropping; each burst is truncated after the last pattern
   that detects a fault no earlier burst (or pattern) already covered. *)
let truncate_solution sim tpg ~triplets ~targets rows =
  Trace.with_span "flow.truncate" @@ fun () ->
  let active = Bitvec.copy targets in
  let final = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun row ->
      let triplet = triplets.(row) in
      let burst = Triplet.patterns tpg triplet in
      let firsts = Fault_sim.first_detections sim ~active burst in
      let last_useful = ref (-1) in
      Array.iteri
        (fun fi first ->
          match first with
          | Some p when Bitvec.get active fi ->
              Bitvec.clear active fi;
              if p > !last_useful then last_useful := p
          | _ -> ())
        firsts;
      (* A *minimal* cover gives every selected triplet some unique fault,
         so nothing is dropped on the optimal path.  A degraded (greedy /
         incumbent) cover can select redundant rows; those are dropped
         from the final reseeding and counted, not silently vanished. *)
      if !last_useful >= 0 then
        final := Triplet.truncate triplet (!last_useful + 1) :: !final
      else incr dropped)
    rows;
  (List.rev !final, active, !dropped)

let run ?(config = default_config) ?pool ?budget ?checkpoint sim tpg ~tests ~targets =
  Trace.with_span "flow.run" ~args:[ ("tpg", tpg.Tpg.name) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let sims_before = Fault_sim.sims_performed sim in
  let initial =
    Builder.build ?pool ?budget ?checkpoint sim tpg ~tests ~targets
      ~config:config.builder
  in
  let row_weights =
    match config.objective with
    | Min_triplets -> None
    | Min_test_length ->
        Some (Array.map float_of_int initial.Builder.useful_cycles)
  in
  let solution =
    Solution.solve ~method_:config.method_ ~reduce_config:config.reduce
      ?row_weights ?budget initial.Builder.matrix
  in
  let final_triplets, missed, dropped =
    truncate_solution sim tpg ~triplets:initial.Builder.triplets ~targets
      solution.Solution.rows
  in
  let covered = Bitvec.count targets - Bitvec.count missed in
  let test_length =
    List.fold_left (fun acc t -> acc + t.Triplet.cycles) 0 final_triplets
  in
  (* The uniform scheme (no per-burst truncation hardware) runs every
     *selected* triplet for its full configured burst length, so the
     comparison baseline uses the pre-truncation cycle counts and counts
     the redundant rows the truncated flow drops — not the truncated
     cycles of the surviving subset, which understated it. *)
  let uniform_cycles =
    List.fold_left
      (fun acc row -> max acc initial.Builder.triplets.(row).Triplet.cycles)
      0 solution.Solution.rows
  in
  Metrics.add m_dropped dropped;
  {
    tpg_name = tpg.Tpg.name;
    initial;
    solution;
    final_triplets;
    dropped_triplets = dropped;
    test_length;
    uniform_test_length = List.length solution.Solution.rows * uniform_cycles;
    coverage_pct = Stats.pct covered (max 1 (Bitvec.count targets));
    fault_sims = Fault_sim.sims_performed sim - sims_before;
    elapsed_s = Unix.gettimeofday () -. t0;
    degraded =
      solution.Solution.stats.Solution.degraded || initial.Builder.rows_skipped > 0;
    stop_reason = Option.join (Option.map Budget.stop_reason budget);
  }

let verify sim tpg r =
  let all_patterns =
    Array.concat (List.map (fun t -> Triplet.patterns tpg t) r.final_triplets)
  in
  let detected =
    Fault_sim.detected_set sim all_patterns ~active:r.initial.Builder.targets
  in
  Bitvec.subset r.initial.Builder.targets detected
