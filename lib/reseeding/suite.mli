(** Experiment drivers regenerating the paper's tables and figure.

    Shared by [bench/main.exe] and the [reseed] CLI.  A {!prepared}
    workload bundles everything that is TPG-independent (circuit, fault
    list, ATPG test set); each table row then reuses it across the three
    accumulator TPGs, exactly like the paper's evaluation. *)

open Reseed_atpg
open Reseed_fault
open Reseed_netlist
open Reseed_tpg
open Reseed_util

type prepared = {
  circuit : Circuit.t;
  sim : Fault_sim.t;
  tests : bool array array;  (** ATPGTS *)
  targets : Bitvec.t;  (** fault list F := faults ATPGTS covers *)
  atpg : Atpg.result;
  fault_model : Fault_model.t;
      (** the detection semantics the workload was prepared under; [sim]
          was created with the same model *)
  collapse : Collapse.t option;
      (** class structure when prepared with [~collapse:true]: [sim] then
          runs over the class representatives only *)
  fingerprint : Fingerprint.t;
      (** the ATPG-stage fingerprint — netlist, ATPG config, simulation
          engine, fault model and collapse mode.  Lineage salt for every
          downstream stage key of this workload. *)
  store : Artifact.store option;
      (** the artifact store the workload was prepared against; threaded
          to every flow run on this workload *)
}

(** [circuit_fingerprint c] hashes the netlist structurally — every
    node's kind, fanins and label, plus the PI/PO lists — so editing a
    circuit (not merely renaming it) changes the fingerprint.  Exposed
    for cache-invalidation tests. *)
val circuit_fingerprint : Circuit.t -> Fingerprint.t

(** [prepare ?scale_factor ?atpg_config ?sim_engine ?fault_model ?collapse
    name] loads a catalog circuit and runs the ATPG front-end once.
    [sim_engine] selects the fault-simulation engine every downstream
    phase uses (default [Fault_sim.Hybrid]).  [fault_model] (default
    {!Fault_model.Stuck_at}) fixes the detection semantics of the whole
    workload — fault list, ATPG phases, every downstream sweep — and is
    folded into the [fingerprint], so artifacts never cross models.
    [collapse] (default [false]) simulates one representative per
    structural fault class ({!Collapse}), shrinking every downstream
    fault-simulation; it is a stuck-at notion and raises
    {!Reseed_util.Error.Reseed_error} ([Usage]) under any other model.
    [budget] bounds the ATPG front-end (see {!Atpg.run}): on expiry the
    test set is partial but sound, and [targets] shrinks accordingly.

    [store] memoises the ATPG stage: a warm prepare skips test
    generation entirely (the simulator is rebuilt, the result decoded),
    keyed by the [fingerprint] described on {!prepared}.  Budget-cut
    (partial) ATPG results are never persisted. *)
val prepare :
  ?scale_factor:int ->
  ?atpg_config:Atpg.config ->
  ?sim_engine:Fault_sim.engine ->
  ?fault_model:Fault_model.t ->
  ?collapse:bool ->
  ?budget:Budget.t ->
  ?store:Artifact.store ->
  string ->
  prepared

(** [prepare_circuit ?atpg_config ?sim_engine ?fault_model ?collapse
    ?budget ?store c] — same, for an arbitrary circuit. *)
val prepare_circuit :
  ?atpg_config:Atpg.config ->
  ?sim_engine:Fault_sim.engine ->
  ?fault_model:Fault_model.t ->
  ?collapse:bool ->
  ?budget:Budget.t ->
  ?store:Artifact.store ->
  Circuit.t ->
  prepared

(** [expanded_coverage_pct p detected] is universe-level coverage implied
    by a detection set over [p.sim]'s fault list, expanded through the
    collapse classes when present. *)
val expanded_coverage_pct : prepared -> Bitvec.t -> float

(** [paper_tpgs p] instantiates adder / multiplier / subtracter at the
    circuit's PI width. *)
val paper_tpgs : prepared -> Tpg.t list

(** One Table 1 cell group: set covering vs GATSBY for one TPG. *)
type table1_entry = {
  tpg : string;
  sc_triplets : int;
  sc_test_length : int;
  sc_rom_bits : int;  (** Σ triplet storage: the paper's area-overhead proxy *)
  sc_fault_sims : int;
  gatsby_triplets : int option;  (** [None] when GATSBY was skipped *)
  gatsby_test_length : int option;
  gatsby_fault_sims : int option;
}

type table1_row = { t1_name : string; entries : table1_entry list }

(** [table1_row ?cycles ?with_gatsby p] evaluates all three TPGs.
    [with_gatsby] defaults to [true]. *)
val table1_row : ?cycles:int -> ?with_gatsby:bool -> prepared -> table1_row

(** One Table 2 row: covering-instance statistics for one TPG. *)
type table2_entry = {
  t2_tpg : string;
  necessary : int;  (** triplets forced by essentiality *)
  reduced_rows : int;  (** residual matrix after reduction *)
  reduced_cols : int;
  from_solver : int;  (** triplets added by the exact solver *)
  iterations : int;
}

type table2_row = {
  t2_name : string;
  initial_triplets : int;  (** |ATPGTS| — rows of the initial matrix *)
  initial_faults : int;  (** |F| — columns that are real constraints *)
  t2_entries : table2_entry list;
}

val table2_row : ?cycles:int -> prepared -> table2_row

(** [figure2 ?grid p tpg] is the Figure 2 sweep for one TPG. *)
val figure2 : ?grid:int list -> prepared -> Tpg.t -> Tradeoff.point list

(** Rendering. *)

val render_table1 : table1_row list -> string
val render_table2 : table2_row list -> string

(** CSV renditions of the same tables, for plotting. *)

val csv_table1 : table1_row list -> string
val csv_table2 : table2_row list -> string
val csv_figure2 : Tradeoff.point list -> string

(** Suites: catalog names in Table 1 order. *)

val quick_suite : string list
(** small circuits — seconds each. *)

val full_suite : string list
(** every catalog entry; the largest are scaled unless [scale_factor 1]. *)

val xl_suite : string list
(** the scale tier ({!Reseed_netlist.Library.xl_names}): scaled-up
    catalog members with roughly 10k-100k universe faults, exercising
    the sparse/off-heap matrix paths.  Minutes each — bench-only. *)
