open Reseed_util

let magic = "RSAF"
let version = 1

(* magic(4) + version u32 + kind digest u64 + fingerprint u64 +
   payload length u32 + payload checksum u64 *)
let header_bytes = 4 + 4 + 8 + 8 + 4 + 8

let fp_read = Faultpoint.register "artifact.read"
let fp_write = Faultpoint.register "artifact.write"
let fp_publish = Faultpoint.register "artifact.publish"

(* Reads are always recoverable — a missing or unreadable blob is a
   cache miss, never an error — so transient read failures (including
   injected ones) are retried and anything that survives degrades to
   [None].  The payload passes the [artifact.read] data point, so chaos
   schedules can corrupt it in flight and exercise the checksum path. *)
let read_opt path =
  match
    Retry.run ~label:"artifact.read" (fun ~attempt:_ ->
        try Some (Faultpoint.mangle fp_read (In_channel.with_open_bin path In_channel.input_all))
        with Sys_error _ -> None)
  with
  | Ok r -> r
  | Error _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        Error.fail Error.Input_error "cannot create directory %s: %s" dir
          (Unix.error_message e)
  end
  else if not (Sys.is_directory dir) then
    Error.fail Error.Input_error "artifact path %s is not a directory" dir

(* Directory fsync makes the rename itself durable.  Some filesystems
   refuse to open or fsync a directory; that only weakens durability, so
   it stays best-effort rather than failing the write. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_fd fd data =
  let n = String.length data in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd data !pos (n - !pos)
  done

(* Crash-safe, durable write: the payload is written to a [.tmp] sibling
   and fsynced, renamed into place, and the parent directory fsynced —
   so the file appears under its final name only complete, and a crash
   immediately after publish cannot roll it back to a zero-length or
   missing blob.  Transient failures are retried with backoff; each
   attempt passes the [artifact.write] data point (payload mangling, IO
   errors) and the [artifact.publish] control point (crashpoints between
   write and rename). *)
let write_atomic path data =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  try
    Retry.with_retries ~label:"artifact.write" (fun ~attempt:_ ->
        let payload = Faultpoint.mangle fp_write data in
        let fd =
          Unix.openfile tmp
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_fd fd payload;
            Unix.fsync fd);
        Faultpoint.hit fp_publish;
        Sys.rename tmp path;
        fsync_dir (Filename.dirname path))
  with
  | Sys_error m -> Error.fail Error.Input_error "artifact write failed: %s" m
  | Unix.Unix_error (e, _, _) ->
      Error.fail Error.Input_error "artifact write failed: %s: %s" path
        (Unix.error_message e)

module Codec = struct
  let u32 b v =
    for k = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * k)) land 0xff))
    done

  let u64 b v =
    for k = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
    done

  let vint b v = u64 b (Int64.of_int v)
  let float b v = u64 b (Int64.bits_of_float v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let int_list b l =
    u32 b (List.length l);
    List.iter (fun v -> vint b v) l

  let bitvec b v =
    u32 b (Bitvec.length v);
    Buffer.add_bytes b (Bitvec.to_bytes v)

  (* A detection-matrix row in its native representation: sparse rows
     are stored as their index list (tag 1), anything dense as packed
     bits (tag 0) — so a 100k-column row that detects a dozen faults
     costs ~50 bytes on disk instead of 12.5 kB. *)
  let rowset b r =
    match Rowset.repr r with
    | Rowset.Sparse ->
        Buffer.add_char b '\001';
        u32 b (Rowset.length r);
        u32 b (Rowset.count r);
        Rowset.iter_ones (fun i -> u32 b i) r
    | Rowset.Dense | Rowset.Big ->
        Buffer.add_char b '\000';
        bitvec b (Rowset.to_bitvec r)

  let pattern b p =
    u32 b (Array.length p);
    let nb = (Array.length p + 7) / 8 in
    let by = Bytes.make nb '\000' in
    Array.iteri
      (fun i bit ->
        if bit then
          Bytes.set by (i / 8)
            (Char.chr (Char.code (Bytes.get by (i / 8)) lor (1 lsl (i mod 8)))))
      p;
    Buffer.add_bytes b by

  let patterns b ps =
    u32 b (Array.length ps);
    Array.iter (pattern b) ps

  let word b w =
    let bits = Word.to_bits w in
    u32 b (Array.length bits);
    let nb = (Array.length bits + 7) / 8 in
    let by = Bytes.make nb '\000' in
    Array.iteri
      (fun i bit ->
        if bit then
          Bytes.set by (i / 8)
            (Char.chr (Char.code (Bytes.get by (i / 8)) lor (1 lsl (i mod 8)))))
      bits;
    Buffer.add_bytes b by

  type reader = { s : string; mutable pos : int }

  exception Malformed

  let reader s = { s; pos = 0 }

  let take r n =
    if n < 0 || r.pos + n > String.length r.s then raise Malformed;
    let off = r.pos in
    r.pos <- off + n;
    off

  let get_u32 r =
    let off = take r 4 in
    let v = ref 0 in
    for k = 3 downto 0 do
      v := (!v lsl 8) lor Char.code r.s.[off + k]
    done;
    !v

  let get_u64 r =
    let off = take r 8 in
    let v = ref 0L in
    for k = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.s.[off + k]))
    done;
    !v

  let get_vint r =
    let v = get_u64 r in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      raise Malformed;
    Int64.to_int v

  let get_float r = Int64.float_of_bits (get_u64 r)

  let get_str r =
    let n = get_u32 r in
    let off = take r n in
    String.sub r.s off n

  let get_int_list r =
    let n = get_u32 r in
    List.init n (fun _ -> get_vint r)

  let get_bitvec r =
    let n = get_u32 r in
    let nb = (n + 7) / 8 in
    let off = take r nb in
    try Bitvec.of_bytes n (Bytes.of_string (String.sub r.s off nb))
    with Invalid_argument _ -> raise Malformed

  let get_rowset r =
    let tag = String.get r.s (take r 1) in
    let rs =
      match tag with
      | '\000' -> Rowset.of_bitvec (get_bitvec r)
      | '\001' ->
          let len = get_u32 r in
          let cnt = get_u32 r in
          if cnt > len then raise Malformed;
          let idx = Array.init cnt (fun _ -> get_u32 r) in
          (try Rowset.of_sorted_array len idx
           with Invalid_argument _ -> raise Malformed)
      | _ -> raise Malformed
    in
    (* A forced representation (RESEED_ROWSET) must win over whatever
       representation the artifact was written with. *)
    match Rowset.forced () with
    | Some _ -> Rowset.of_bitvec (Rowset.to_bitvec rs)
    | None -> rs

  let get_pattern r =
    let n = get_u32 r in
    let nb = (n + 7) / 8 in
    let off = take r nb in
    Array.init n (fun i -> Char.code r.s.[off + (i / 8)] land (1 lsl (i mod 8)) <> 0)

  let get_patterns r =
    let n = get_u32 r in
    Array.init n (fun _ -> get_pattern r)

  let get_word r =
    let n = get_u32 r in
    if n < 1 || n > 4096 then raise Malformed;
    let nb = (n + 7) / 8 in
    let off = take r nb in
    Word.of_bits
      (Array.init n (fun i ->
           Char.code r.s.[off + (i / 8)] land (1 lsl (i mod 8)) <> 0))

  let at_end r = r.pos = String.length r.s
end

let checksum payload = Fingerprint.raw_string Fingerprint.empty payload
let kind_digest kind = Fingerprint.string (Fingerprint.salted "artifact-kind") kind

let encode ~kind ~fingerprint payload =
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  Codec.u32 b version;
  Codec.u64 b (kind_digest kind);
  Codec.u64 b fingerprint;
  Codec.u32 b (String.length payload);
  Codec.u64 b (checksum payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode ~kind ~fingerprint s =
  if String.length s < header_bytes then None
  else
    let r = Codec.reader s in
    try
      let m = String.sub s (Codec.take r 4) 4 in
      if m <> magic then None
      else if Codec.get_u32 r <> version then None
      else if not (Fingerprint.equal (Codec.get_u64 r) (kind_digest kind)) then None
      else if not (Fingerprint.equal (Codec.get_u64 r) fingerprint) then None
      else begin
        let len = Codec.get_u32 r in
        let cks = Codec.get_u64 r in
        if String.length s <> header_bytes + len then None
        else
          let payload = String.sub s header_bytes len in
          if Fingerprint.equal (checksum payload) cks then Some payload else None
      end
    with Codec.Malformed -> None

type store = { dir : string }

let open_store dir =
  mkdir_p dir;
  { dir }

let from_env () =
  match Sys.getenv_opt "RESEED_CACHE" with
  | Some dir when dir <> "" -> Some (open_store dir)
  | _ -> None

let resolve ?dir () =
  match dir with Some d -> Some (open_store d) | None -> from_env ()

let root t = t.dir

let path t ~stage fp =
  Filename.concat (Filename.concat t.dir stage) (Fingerprint.to_hex fp ^ ".art")

let m_hits = Metrics.counter ~help:"artifact-store cache hits" "artifact_hits"
let m_misses = Metrics.counter ~help:"artifact-store cache misses" "artifact_misses"
let m_writes = Metrics.counter ~help:"artifacts persisted" "artifact_writes"

let m_corrupt =
  Metrics.counter ~help:"artifacts rejected as corrupt (recomputed)" "artifact_corrupt"

let m_rewrites =
  Metrics.counter
    ~help:"corrupt artifacts overwritten by a recomputed payload"
    "artifact_rewrites"

let m_save_failures =
  Metrics.counter
    ~help:"artifact saves that failed (result kept, cache not updated)"
    "artifact_write_failures"

let load t ~stage fp =
  match read_opt (path t ~stage fp) with
  | None -> None
  | Some s -> (
      match decode ~kind:stage ~fingerprint:fp s with
      | Some payload -> Some payload
      | None ->
          Metrics.incr m_corrupt;
          None)

let save t ~stage fp payload =
  Metrics.incr m_writes;
  write_atomic (path t ~stage fp) (encode ~kind:stage ~fingerprint:fp payload)

(* Per-stage hit/miss counters, registered on first use (idempotent). *)
let stage_counter stage which =
  Metrics.counter
    ~help:(Printf.sprintf "%s-stage cache %s" stage which)
    (Printf.sprintf "stage_%s_cache_%s" stage which)

let cached store ~stage ~fp ~encode:enc ~decode:dec compute =
  match store with
  | None -> compute ()
  | Some t -> (
      let decoded =
        match load t ~stage fp with
        | None -> None
        | Some payload -> (
            (* Any decoder failure — truncated stream, out-of-range field,
               trailing bytes — is corruption: recompute and overwrite. *)
            try
              let r = Codec.reader payload in
              let v = dec r in
              if Codec.at_end r then Some v
              else begin
                Metrics.incr m_corrupt;
                None
              end
            with _ ->
              Metrics.incr m_corrupt;
              None)
      in
      match decoded with
      | Some v ->
          Metrics.incr m_hits;
          Metrics.incr (stage_counter stage "hits");
          Trace.instant "artifact.hit"
            ~args:[ ("stage", stage); ("fp", Fingerprint.to_hex fp) ];
          v
      | None ->
          Metrics.incr m_misses;
          Metrics.incr (stage_counter stage "misses");
          (* A blob that exists but failed to load is corrupt: saving the
             recomputed payload over it is a rewrite worth counting. *)
          let corrupt_on_disk = Sys.file_exists (path t ~stage fp) in
          let v = compute () in
          (match enc v with
          | None -> ()
          | Some payload -> (
              (* The cache is an accelerator: a result we already hold is
                 never lost to a failed save.  The failure is counted and
                 traced, and the store simply misses again next run. *)
              match save t ~stage fp payload with
              | () -> if corrupt_on_disk then Metrics.incr m_rewrites
              | exception Error.Reseed_error _ ->
                  Metrics.incr m_save_failures;
                  Trace.instant "artifact.save_failed"
                    ~args:[ ("stage", stage); ("fp", Fingerprint.to_hex fp) ]));
          v)
