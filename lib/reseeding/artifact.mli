(** Content-addressed artifact store backing the stage pipeline.

    The reseeding flow is a fixed chain of stages — [atpg] → [matrix] →
    [reduce] → [solve] → [truncate] — each a pure function of its inputs.
    An artifact is one stage output, serialised and filed under the
    {!Reseed_util.Fingerprint} of everything it depends on:

    {v <root>/<stage>/<fingerprint-hex>.art v}

    so a rerun with identical inputs loads the bytes instead of
    recomputing, across processes and across the points of a campaign.

    Durability discipline (shared with — and generalised from — the
    {!Checkpoint} row store, which is now a thin client of the same
    codec):

    - {e write-then-rename, fsynced}: an artifact appears under its
      final name only complete; the payload is fsynced before the rename
      and the parent directory after it, so a published blob survives a
      crash.  A crash mid-write leaves at most a [.tmp] orphan;
    - {e checksummed}: every blob carries magic, format version, kind
      tag, fingerprint and an FNV-1a payload checksum; any defect makes
      {!load} return [None] and the stage recomputes — corruption can
      cost time, never correctness;
    - {e only complete results are stored}: callers pass [None] from
      their encoder when a budget degraded the result;
    - {e retried}: reads and writes go through the shared {!Retry}
      policy ([RESEED_RETRIES]), so transient IO errors heal before they
      surface.

    Fault injection: reads pass the [artifact.read] {!Faultpoint} (data
    point — payloads can be mangled in flight to exercise the checksum
    path), writes pass [artifact.write] (data point, per attempt) and
    [artifact.publish] (control point between the fsynced [.tmp] write
    and the rename — the crash-consistency window).

    The store root comes from the [RESEED_CACHE] environment variable or
    an explicit directory ([--cache] on the CLI). *)

open Reseed_util

(** [read_opt path] is the file's contents, or [None] when unreadable
    (after transient failures have been retried). *)
val read_opt : string -> string option

(** [write_atomic path data] writes to [path ^ ".tmp"], fsyncs it,
    renames into place and fsyncs the parent directory (best-effort on
    filesystems that refuse directory fsync).  Creates the parent
    directory.  Transient failures are retried; what survives raises
    {!Error.Reseed_error} ([Input_error]). *)
val write_atomic : string -> string -> unit

(** [mkdir_p dir] — [mkdir -p], raising {!Error.Reseed_error} on failure
    or when [dir] exists and is not a directory. *)
val mkdir_p : string -> unit

(** [encode ~kind ~fingerprint payload] frames [payload] with the blob
    header (magic, version, kind digest, fingerprint, length, checksum). *)
val encode : kind:string -> fingerprint:Fingerprint.t -> string -> string

(** [decode ~kind ~fingerprint blob] recovers the payload, or [None] on
    any structural defect: wrong magic/version, foreign kind or
    fingerprint, bad length or checksum. *)
val decode : kind:string -> fingerprint:Fingerprint.t -> string -> string option

(** Little-endian scalar codecs for artifact payloads. *)
module Codec : sig
  val u32 : Buffer.t -> int -> unit
  val u64 : Buffer.t -> int64 -> unit
  val vint : Buffer.t -> int -> unit
  (** [vint] writes a non-negative OCaml int as 8 LE bytes. *)

  val float : Buffer.t -> float -> unit
  val str : Buffer.t -> string -> unit
  val int_list : Buffer.t -> int list -> unit
  val bitvec : Buffer.t -> Bitvec.t -> unit

  (** [rowset] stores a detection-matrix row representation-aware: a
      sparse row as its index list, a dense one as packed bits.
      [get_rowset] honours a forced [RESEED_ROWSET] representation
      regardless of how the row was written. *)
  val rowset : Buffer.t -> Rowset.t -> unit

  (** [pattern] / [patterns] pack simulator bit patterns LSB-first, eight
      per byte, length-prefixed. *)
  val pattern : Buffer.t -> bool array -> unit

  val patterns : Buffer.t -> bool array array -> unit
  val word : Buffer.t -> Word.t -> unit

  (** Reader over a payload string.  Every getter raises {!Malformed} on
      truncation or an out-of-range value — {!cached} treats that as
      corruption and recomputes. *)
  type reader

  exception Malformed

  val reader : string -> reader
  val get_u32 : reader -> int
  val get_u64 : reader -> int64
  val get_vint : reader -> int
  val get_float : reader -> float
  val get_str : reader -> string
  val get_int_list : reader -> int list
  val get_bitvec : reader -> Bitvec.t
  val get_rowset : reader -> Rowset.t
  val get_pattern : reader -> bool array
  val get_patterns : reader -> bool array array
  val get_word : reader -> Word.t
  val at_end : reader -> bool
end

type store

(** [open_store dir] creates [dir] if needed and returns the store. *)
val open_store : string -> store

(** [from_env ()] opens the store named by [RESEED_CACHE], when set and
    non-empty. *)
val from_env : unit -> store option

(** [resolve ?dir ()] — explicit [dir] wins, then [RESEED_CACHE], then
    no store. *)
val resolve : ?dir:string -> unit -> store option

val root : store -> string

(** [path store ~stage fp] is where the artifact lives (whether or not it
    exists). *)
val path : store -> stage:string -> Fingerprint.t -> string

(** [load store ~stage fp] is the decoded payload, or [None] when the
    artifact is absent or fails {!decode}. *)
val load : store -> stage:string -> Fingerprint.t -> string option

(** [save store ~stage fp payload] persists atomically. *)
val save : store -> stage:string -> Fingerprint.t -> string -> unit

(** [cached store ~stage ~fp ~encode ~decode compute] is the stage
    memoiser: on a hit, [decode] rebuilds the result from the payload
    (any exception counts as corruption: recompute, overwrite); on a
    miss, [compute ()] runs and is persisted when [encode] returns
    [Some] ([None] marks a degraded result that must not be reused).
    [store = None] is a transparent pass-through to [compute].

    The cache is an accelerator, never a point of failure: if the save
    of a recomputed result fails even after retries, the result is still
    returned — the failure only bumps [artifact_write_failures] and the
    store misses again next run.

    Work accounting: bumps [artifact_hits] / [artifact_misses] /
    [artifact_corrupt] / [artifact_writes] plus the per-stage
    [stage_<stage>_cache_hits] / [stage_<stage>_cache_misses] counters;
    [artifact_rewrites] counts corrupt blobs overwritten by a recomputed
    payload.  Records a trace instant on every hit — the observability
    the warm-vs-cold acceptance gates read. *)
val cached :
  store option ->
  stage:string ->
  fp:Fingerprint.t ->
  encode:('a -> string option) ->
  decode:(Codec.reader -> 'a) ->
  (unit -> 'a) ->
  'a
