open Reseed_util

let chunk_rows = 16
let magic = "RSCK"
let meta_magic = "RSCKMETA"
let version = 1
let meta_name = "META"
let header_bytes = 40

type t = { dir : string; fingerprint : int64; rows : int; cols : int }

let dir t = t.dir

(* FNV-1a, 64-bit. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime
let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h
let fnv_bytes h b = fnv_string h (Bytes.unsafe_to_string b)
let fnv_int h v =
  (* 63-bit OCaml int, little-endian, 8 bytes *)
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h ((v lsr (8 * k)) land 0xff)
  done;
  !h

let fingerprint ~tests ~targets ~cycles ~seed ~operand_tag ~tpg ~width =
  let h = fnv_string fnv_offset "reseed-checkpoint-v1" in
  let h = fnv_int h cycles in
  let h = fnv_int h seed in
  let h = fnv_int h width in
  let h = fnv_string h operand_tag in
  let h = fnv_string h tpg in
  let h = fnv_bytes h (Bitvec.to_bytes targets) in
  let h = fnv_int h (Array.length tests) in
  Array.fold_left
    (fun h pat ->
      let h = fnv_int h (Array.length pat) in
      Array.fold_left (fun h b -> fnv_byte h (if b then 1 else 0)) h pat)
    h tests

(* Little-endian scalar codecs over Buffer / string. *)
let add_u32 b v =
  for k = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * k)) land 0xff))
  done

let add_u64 b v =
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
  done

let get_u32 s off =
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + k]
  done;
  !v

let get_u64 s off =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + k]))
  done;
  !v

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* Crash-safe write: the file appears under its final name only complete. *)
let write_file t name data =
  let path = Filename.concat t.dir name in
  let tmp = path ^ ".tmp" in
  try
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
    Sys.rename tmp path
  with Sys_error m -> Error.fail Error.Input_error "checkpoint write failed: %s" m

let meta_payload fingerprint =
  let b = Buffer.create 20 in
  Buffer.add_string b meta_magic;
  add_u32 b version;
  add_u64 b fingerprint;
  Buffer.contents b

let meta_matches t =
  match read_file (Filename.concat t.dir meta_name) with
  | Some s -> String.equal s (meta_payload t.fingerprint)
  | None -> false

let is_chunk_file name =
  String.length name > 3 && Filename.check_suffix name ".ck"

let wipe t =
  Array.iter
    (fun name ->
      if is_chunk_file name || Filename.check_suffix name ".tmp" then
        try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
    (try Sys.readdir t.dir with Sys_error _ -> [||])

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        Error.fail Error.Input_error "cannot create checkpoint directory %s: %s"
          dir (Unix.error_message e)
  end
  else if not (Sys.is_directory dir) then
    Error.fail Error.Input_error "checkpoint path %s is not a directory" dir

let open_dir ~dir ~fingerprint ~rows ~cols =
  mkdir_p dir;
  let t = { dir; fingerprint; rows; cols } in
  (* A stale fingerprint means the chunks describe a different build
     (other circuit, tests, TPG or config): auto-reset rather than mix. *)
  if not (meta_matches t) then begin
    wipe t;
    write_file t meta_name (meta_payload fingerprint)
  end;
  t

let row_bytes t = (t.cols + 7) / 8

let chunk_name lo hi = Printf.sprintf "chunk-%06d-%06d.ck" lo hi

let m_chunks =
  Metrics.counter ~help:"checkpoint chunk files written" "checkpoint_chunks_written"

let store t ~lo ~hi ~useful ~row =
  if not (0 <= lo && lo < hi && hi <= t.rows) then
    invalid_arg "Checkpoint.store: row range";
  Metrics.incr m_chunks;
  let payload = Buffer.create ((hi - lo) * (4 + row_bytes t)) in
  for i = lo to hi - 1 do
    add_u32 payload (useful i);
    let bits = row i in
    if Bitvec.length bits <> t.cols then invalid_arg "Checkpoint.store: row width";
    Buffer.add_bytes payload (Bitvec.to_bytes bits)
  done;
  let payload = Buffer.contents payload in
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  add_u32 b version;
  add_u64 b t.fingerprint;
  add_u32 b lo;
  add_u32 b hi;
  add_u32 b t.cols;
  add_u32 b (String.length payload);
  add_u64 b (fnv_string fnv_offset payload);
  Buffer.add_string b payload;
  write_file t (chunk_name lo hi) (Buffer.contents b)

(* Parse one chunk file; any structural defect — wrong magic or version,
   foreign fingerprint, short or oversized file, bad checksum — makes the
   whole chunk invalid.  [None] here never aborts a resume: the caller
   just re-simulates those rows. *)
let parse_chunk t s =
  let rb = row_bytes t in
  if String.length s < header_bytes then None
  else if String.sub s 0 4 <> magic then None
  else if get_u32 s 4 <> version then None
  else if get_u64 s 8 <> t.fingerprint then None
  else begin
    let lo = get_u32 s 16 and hi = get_u32 s 20 in
    let cols = get_u32 s 24 and payload_len = get_u32 s 28 in
    let checksum = get_u64 s 32 in
    if not (0 <= lo && lo < hi && hi <= t.rows) then None
    else if cols <> t.cols then None
    else if payload_len <> (hi - lo) * (4 + rb) then None
    else if String.length s <> header_bytes + payload_len then None
    else begin
      let payload = String.sub s header_bytes payload_len in
      if fnv_string fnv_offset payload <> checksum then None
      else begin
        let rows =
          Array.init (hi - lo) (fun k ->
              let off = k * (4 + rb) in
              let useful = get_u32 payload off in
              let bits =
                Bitvec.of_bytes t.cols
                  (Bytes.of_string (String.sub payload (off + 4) rb))
              in
              (useful, bits))
        in
        Some (lo, rows)
      end
    end
  end

let restore t f =
  let delivered = ref 0 in
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun name ->
      if is_chunk_file name then
        match read_file (Filename.concat t.dir name) with
        | None -> ()
        | Some s -> (
            match try parse_chunk t s with _ -> None with
            | None -> ()
            | Some (lo, rows) ->
                Array.iteri
                  (fun k (useful, bits) ->
                    f ~row:(lo + k) ~useful bits;
                    incr delivered)
                  rows))
    files;
  !delivered
