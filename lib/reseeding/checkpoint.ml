open Reseed_util

let chunk_rows = 16
let chunk_kind = "checkpoint-chunk"
let meta_kind = "checkpoint-meta"
let meta_name = "META"

type t = { dir : string; fingerprint : int64; rows : int; cols : int }

let dir t = t.dir

let fingerprint ~tests ~targets ~cycles ~seed ~operand_tag ~fault_model ~tpg
    ~width =
  let open Fingerprint in
  let h = salted "checkpoint" in
  let h = int h cycles in
  let h = int h seed in
  let h = int h width in
  let h = string h operand_tag in
  let h = string h ("workload:faults:" ^ fault_model) in
  let h = string h tpg in
  let h = bitvec h targets in
  patterns h tests

let meta_matches t =
  match Artifact.read_opt (Filename.concat t.dir meta_name) with
  | Some s -> Artifact.decode ~kind:meta_kind ~fingerprint:t.fingerprint s <> None
  | None -> false

let is_chunk_file name =
  String.length name > 3 && Filename.check_suffix name ".ck"

let wipe t =
  Array.iter
    (fun name ->
      if is_chunk_file name || Filename.check_suffix name ".tmp" then
        try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
    (try Sys.readdir t.dir with Sys_error _ -> [||])

let open_dir ~dir ~fingerprint ~rows ~cols =
  Artifact.mkdir_p dir;
  let t = { dir; fingerprint; rows; cols } in
  (* A stale fingerprint means the chunks describe a different build
     (other circuit, tests, TPG or config): auto-reset rather than mix. *)
  if not (meta_matches t) then begin
    wipe t;
    Artifact.write_atomic (Filename.concat t.dir meta_name)
      (Artifact.encode ~kind:meta_kind ~fingerprint "")
  end;
  t

let row_bytes t = (t.cols + 7) / 8

let chunk_name lo hi = Printf.sprintf "chunk-%06d-%06d.ck" lo hi

let m_chunks =
  Metrics.counter ~help:"checkpoint chunk files written" "checkpoint_chunks_written"

let fp_store = Faultpoint.register "checkpoint.store"

let store t ~lo ~hi ~useful ~row =
  if not (0 <= lo && lo < hi && hi <= t.rows) then
    invalid_arg "Checkpoint.store: row range";
  Metrics.incr m_chunks;
  let payload = Buffer.create (12 + ((hi - lo) * (8 + row_bytes t))) in
  Artifact.Codec.u32 payload lo;
  Artifact.Codec.u32 payload hi;
  Artifact.Codec.u32 payload t.cols;
  for i = lo to hi - 1 do
    Artifact.Codec.u32 payload (useful i);
    let bits = row i in
    if Bitvec.length bits <> t.cols then invalid_arg "Checkpoint.store: row width";
    Artifact.Codec.bitvec payload bits
  done;
  let blob =
    Artifact.encode ~kind:chunk_kind ~fingerprint:t.fingerprint
      (Buffer.contents payload)
  in
  (* Chunk stores run between parallel regions, so they carry their own
     retry envelope — a transient failure costs one rewrite of an
     idempotent chunk file, never the build. *)
  Retry.with_retries ~label:"checkpoint.store" (fun ~attempt:_ ->
      Faultpoint.hit fp_store;
      Artifact.write_atomic (Filename.concat t.dir (chunk_name lo hi)) blob)

(* Parse one chunk file; any structural defect — wrong magic or version,
   foreign fingerprint, short or oversized file, bad checksum — makes the
   whole chunk invalid.  [None] here never aborts a resume: the caller
   just re-simulates those rows. *)
let parse_chunk t s =
  match Artifact.decode ~kind:chunk_kind ~fingerprint:t.fingerprint s with
  | None -> None
  | Some payload -> (
      let r = Artifact.Codec.reader payload in
      try
        let lo = Artifact.Codec.get_u32 r in
        let hi = Artifact.Codec.get_u32 r in
        let cols = Artifact.Codec.get_u32 r in
        if not (0 <= lo && lo < hi && hi <= t.rows && cols = t.cols) then None
        else begin
          let rows =
            Array.init (hi - lo) (fun _ ->
                let useful = Artifact.Codec.get_u32 r in
                let bits = Artifact.Codec.get_bitvec r in
                if Bitvec.length bits <> t.cols then raise Artifact.Codec.Malformed;
                (useful, bits))
          in
          if Artifact.Codec.at_end r then Some (lo, rows) else None
        end
      with Artifact.Codec.Malformed -> None)

let restore t f =
  let delivered = ref 0 in
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun name ->
      if is_chunk_file name then
        match Artifact.read_opt (Filename.concat t.dir name) with
        | None -> ()
        | Some s -> (
            match try parse_chunk t s with _ -> None with
            | None -> ()
            | Some (lo, rows) ->
                Array.iteri
                  (fun k (useful, bits) ->
                    f ~row:(lo + k) ~useful bits;
                    incr delivered)
                  rows))
    files;
  !delivered
