(** Workloads — the problem families the covering core solves.

    The set-covering pipeline (matrix → reduce → end-game solve) is
    workload-generic; what varies is how rows and columns are minted and
    what a selected row costs:

    - {!Faults}: the paper's reseeding workload.  Rows are TPG triplets,
      columns are faults of a {!Reseed_fault.Fault_model.t}; the mapping
      is {!Builder.build}, pricing is either unit (minimise reseedings)
      or the triplet's useful burst length (minimise test length, see
      {!Flow.objective}).
    - {!Compression}: code-based test-data compression.  Rows are
      candidate dictionary entries (fully-specified words), columns are
      the ternary test-data blocks of a seed corpus; an entry covers a
      block when it matches every care bit.  Pricing is uniform — every
      entry costs [width] ROM bits — so minimum cardinality is minimum
      dictionary area.  Selecting a cover is exactly the dictionary
      selection problem: every block is then encoded as an index into the
      dictionary.

    This module holds the workload tags plus the whole compression
    workload: corpus construction, candidate minting, the covering
    matrix, and a solver that reuses the cached covering pipeline
    ({!Flow.staged_solve}) under a compression-salted fingerprint. *)

open Reseed_setcover
open Reseed_util

type t =
  | Faults of Reseed_fault.Fault_model.t
  | Compression

(** [name w] is a stable tag — ["faults:stuck"], ["faults:transition"]
    or ["compress"] — used in stage keys, manifests and reports. *)
val name : t -> string

(** {1 Compression corpus}

    A corpus is the test data to compress, chopped into blocks of a fixed
    [width] (1–62 bits).  Each block is ternary: bit [j] of [care] is set
    when the block specifies bit [j], and [value] holds the specified
    bits ([value land lnot care = 0] by construction — don't-cares read
    as 0 there). *)

type block = { value : int; care : int }

type corpus = { width : int; blocks : block array }

(** [corpus_of_text ?file ~width s] parses raw corpus text: one test
    vector of [[01Xx]+] per line (blank lines and [#] comments skipped),
    each vector chopped into [width]-bit blocks, the tail block padded
    with don't-cares.  Bit [j] of a block is the [j]-th character of its
    chunk.  Raises {!Error.Reseed_error} ([Input_error], with [?file] and
    the 1-based line) on any other character, and [Invalid_argument] when
    [width] is outside 1–62. *)
val corpus_of_text : ?file:string -> width:int -> string -> corpus

(** [corpus_of_patterns ~width tests] builds the corpus from
    fully-specified test patterns (e.g. an ATPG test set): each pattern
    is a vector of its bits in order, chopped and tail-padded exactly as
    {!corpus_of_text} does. *)
val corpus_of_patterns : width:int -> bool array array -> corpus

(** [candidates corpus] mints the dictionary candidates: the don't-care →
    0 completion of every block, deduplicated, in first-occurrence order.
    Every block is covered by its own completion, so the covering
    instance is always feasible. *)
val candidates : corpus -> int array

(** [covers ~entry b] — the entry matches every care bit of [b]. *)
val covers : entry:int -> block -> bool

(** [matrix corpus cands] is the covering instance: row [i] covers column
    [j] iff candidate [i] covers block [j].  Columns are {e all} blocks,
    duplicates included — duplicate columns cost nothing after reduction
    and keep block indices meaningful. *)
val matrix : corpus -> int array -> Matrix.t

(** [fingerprint corpus] keys the compression matrix stage: the workload
    tag, the block width and every block's (value, care).  The same
    lineage-root role {!Builder.fingerprint} plays for the faults
    workload; reduce/solve artifacts chain from it. *)
val fingerprint : corpus -> Fingerprint.t

(** {1 Compression solve} *)

type compressed = {
  corpus_blocks : int;  (** columns of the covering instance *)
  distinct_blocks : int;  (** blocks up to (value, care) equality *)
  entries : int list;
      (** the selected dictionary, as fully-specified words, ascending
          candidate order *)
  solution : Solution.t;  (** the underlying covering solution *)
  dictionary_bits : int;  (** |entries| × width — dictionary ROM *)
  index_bits : int;  (** blocks × ⌈log₂ |entries|⌉ — the encoded stream *)
  raw_bits : int;  (** blocks × width — the uncompressed baseline *)
}

(** [solve ?method_ ?reduce ?budget ?pool ?store corpus] selects a
    minimum dictionary covering every block.  With [store] the reduce and
    end-game stages are memoised through {!Flow.staged_solve} under
    {!fingerprint} — cached compression artifacts share the store with
    reseeding runs but can never collide with them (different stage
    salt and workload tag).  [method_] defaults to
    [Solution.Exact]. *)
val solve :
  ?method_:Solution.method_ ->
  ?reduce:Reduce.config ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  ?store:Artifact.store ->
  corpus ->
  compressed

(** [entry_to_string ~width e] renders a dictionary word as [width]
    characters of [0]/[1], bit 0 first (the same order the corpus was
    parsed in). *)
val entry_to_string : width:int -> int -> string
