(** Initial Reseeding Builder (Section 3.1 / Figure 1).

    From a deterministic ATPG test set [ATPGTS = p_0 … p_{M-1}], build the
    initial reseeding [T] — one triplet per pattern, [δ_i = p_i], [σ_i]
    random (or shared), evolution length fixed — and fill the Detection
    Matrix by fault-simulating every burst against the target fault list.

    Because a TPG burst emits its seed as the first pattern, triplet [i]
    detects at least the faults [p_i] detects, so [T] covers the whole
    target list by construction. *)

open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type operand_mode =
  | Random_operand  (** a fresh random σ per triplet (the paper's choice) *)
  | Shared_operand of Word.t  (** one σ for every triplet (ablation #4) *)

type config = {
  cycles : int;  (** evolution length T, "experimentally tuned" *)
  operand_mode : operand_mode;
  seed : int;  (** RNG seed for the random operands *)
}

val default_config : config

(** [operand_tag mode] is a stable textual tag of the operand mode, used
    as a fingerprint/checkpoint key component. *)
val operand_tag : operand_mode -> string

type t = {
  triplets : Triplet.t array;  (** the initial reseeding T, ATPGTS order *)
  matrix : Matrix.t;  (** rows: triplets; cols: the full fault list *)
  targets : Bitvec.t;  (** columns that must be covered (the list F) *)
  useful_cycles : int array;
      (** per triplet: 1 + index of the last burst pattern that detects a
          target fault no earlier pattern of the same burst caught — an
          upper estimate of the triplet's effective test length, used as
          the row weight by the minimum-test-length objective *)
  fault_sims : int;  (** injections spent building the matrix *)
  rows_skipped : int;
      (** rows abandoned empty because the [budget] expired; their
          triplet detects nothing in the matrix, so the covering step
          sees an honestly smaller instance *)
  rows_restored : int;
      (** rows loaded from the [checkpoint] directory or from shard
          artifacts in the [store] instead of being re-simulated *)
}

(** [make_triplets ~config tpg tests] is the initial reseeding [T] alone:
    one triplet per ATPG pattern, operands drawn from the seeded RNG
    stream (a fixed function of [config.seed], independent of everything
    else).  [build] uses exactly this construction; it is exposed so a
    warm cache hit — and the trade-off sweep — can rebuild triplets
    without touching a fault simulator. *)
val make_triplets : config:config -> Tpg.t -> bool array array -> Triplet.t array

(** [fingerprint ?salt ?fault_model ~tests ~targets tpg ~config] keys the
    [matrix] stage: the ATPG patterns, target mask, TPG identity and
    width, and the builder config (cycles, operand mode, seed).  [salt]
    folds in the upstream lineage — the ATPG-stage fingerprint — so
    changing how the tests were produced (ATPG config, simulation engine,
    fault collapsing) misses the cache even when the patterns happen to
    coincide.  [fault_model] (default {!Fault_model.Stuck_at}) salts the
    key with the detection semantics the rows were simulated under, so a
    stuck-at matrix can never satisfy a transition-delay request. *)
val fingerprint :
  ?salt:Fingerprint.t ->
  ?fault_model:Fault_model.t ->
  tests:bool array array -> targets:Bitvec.t -> Tpg.t -> config:config -> Fingerprint.t

(** [build ?pool ?budget ?checkpoint ?store ?fingerprint sim tpg ~tests
    ~targets ~config] — [tests] is ATPGTS; [targets] selects the fault
    list F among the simulator's faults.  Matrix columns outside
    [targets] are left empty (they are not constraints).  Matrix rows are
    fault-simulated in parallel over [pool] (default: {!Pool.default}) on
    per-worker simulator shards; the result — matrix, [useful_cycles] and
    [fault_sims] — is bit-identical at every job count.

    [checkpoint] names a directory: completed rows are streamed to it in
    {!Checkpoint.chunk_rows}-sized crash-safe chunks, and any valid rows
    already present (same build fingerprint) are restored instead of
    re-simulated, bit-identically.  An expired [budget] stops the build
    at the next row boundary; unfinished rows stay empty and are counted
    in [rows_skipped], never persisted.

    [store] memoises the whole stage under [fingerprint] (computed via
    {!fingerprint} when omitted): a warm hit reconstructs the result with
    zero fault simulations ([fault_sims = 0]); results with
    [rows_skipped > 0] are never persisted.  On a whole-stage miss the
    build is sharded: rows are simulated in chunk-sized groups, and each
    complete group is published to the store independently (stage
    [matrixshard], keyed by the matrix fingerprint and the row range) the
    moment it finishes — so a crashed or budget-stopped run leaves its
    finished shards behind, and the rerun restores them row-for-row
    (counted in [rows_restored]) and simulates only the rest.  Rows are
    compacted to their {!Reseed_util.Rowset} representation as soon as
    they are produced; the full dense matrix is never resident during
    construction. *)
val build :
  ?pool:Pool.t ->
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?store:Artifact.store ->
  ?fingerprint:Fingerprint.t ->
  Fault_sim.t -> Tpg.t -> tests:bool array array -> targets:Bitvec.t -> config:config -> t
