open Reseed_fault
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type task =
  | Reseed of { tpg : string; cycles : int; fault_model : Fault_model.t }
  | Compress of { width : int }

type job = { circuit : string; task : task }

type manifest = {
  method_ : Solution.method_;
  objective : Flow.objective;
  scale : int;
  job_deadline : float option;
  fault_model : Fault_model.t;
  jobs : job list;
}

let job_model j =
  match j.task with
  | Reseed r -> r.fault_model
  (* The compression corpus is the stuck-at ATPG test set. *)
  | Compress _ -> Fault_model.Stuck_at

let task_to_string = function
  | Reseed { tpg; cycles; fault_model } ->
      let tag =
        match fault_model with
        | Fault_model.Stuck_at -> ""
        | m -> Printf.sprintf " [%s]" (Fault_model.name m)
      in
      Printf.sprintf "%s T=%d%s" tpg cycles tag
  | Compress { width } -> Printf.sprintf "compress w=%d" width

let tpg_names = [ "adder"; "subtracter"; "multiplier"; "mp-lfsr" ]

let tpg_of_name name width =
  match name with
  | "adder" -> Accumulator.adder width
  | "subtracter" -> Accumulator.subtracter width
  | "multiplier" -> Accumulator.multiplier width
  | "mp-lfsr" -> Lfsr.multi_polynomial width
  | _ -> Error.fail Error.Input_error "unknown TPG %S" name

(* --- manifest parsing ------------------------------------------------ *)

let trim = String.trim

let split_list s =
  String.split_on_char ',' s |> List.map trim |> List.filter (fun x -> x <> "")

let parse_string ?(path = "<manifest>") text =
  let fail_line line fmt = Error.fail ~file:path ~line Error.Input_error fmt in
  let circuits = ref [] and tpgs = ref [] and cycles = ref [] in
  let method_ = ref Solution.Exact and objective = ref Flow.Min_triplets in
  let scale = ref 1 and job_deadline = ref None in
  let fault_model = ref Fault_model.Stuck_at in
  let explicit = ref [] in
  let check_tpg line name =
    if not (List.mem name tpg_names) then
      fail_line line "unknown TPG %S (expected %s)" name (String.concat ", " tpg_names)
  in
  let parse_cycles line s =
    match int_of_string_opt s with
    | Some c when c >= 1 -> c
    | _ -> fail_line line "bad evolution length %S (positive integer expected)" s
  in
  let parse_model line s =
    match Fault_model.of_string s with
    | Some m -> m
    | None -> fail_line line "unknown fault model %S (stuck|transition)" s
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s =
        match String.index_opt raw '#' with
        | Some k -> trim (String.sub raw 0 k)
        | None -> trim raw
      in
      if s <> "" then
        match String.index_opt s '=' with
        | Some k ->
            let key = trim (String.sub s 0 k) in
            let v = trim (String.sub s (k + 1) (String.length s - k - 1)) in
            if v = "" then fail_line line "empty value for %S" key;
            (match key with
            | "circuits" -> circuits := split_list v
            | "tpgs" ->
                let l = split_list v in
                List.iter (check_tpg line) l;
                tpgs := l
            | "cycles" -> cycles := List.map (parse_cycles line) (split_list v)
            | "method" -> (
                match v with
                | "exact" -> method_ := Solution.Exact
                | "greedy" -> method_ := Solution.Greedy_only
                | "noreduce" -> method_ := Solution.No_reduction_exact
                | "portfolio" -> method_ := Solution.Portfolio_race
                | _ ->
                    fail_line line
                      "unknown method %S (exact|greedy|noreduce|portfolio)" v)
            | "objective" -> (
                match v with
                | "triplets" -> objective := Flow.Min_triplets
                | "length" -> objective := Flow.Min_test_length
                | _ -> fail_line line "unknown objective %S (triplets|length)" v)
            | "scale" -> (
                match int_of_string_opt v with
                | Some n when n >= 1 -> scale := n
                | _ -> fail_line line "bad scale %S (positive integer expected)" v)
            | "job_deadline" -> (
                match float_of_string_opt v with
                | Some d when d > 0. -> job_deadline := Some d
                | _ -> fail_line line "bad job_deadline %S (positive seconds expected)" v)
            | "fault_model" -> fault_model := parse_model line v
            | _ -> fail_line line "unknown manifest key %S" key)
        | None -> (
            match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
            | [ "job"; circuit; tpg; cy ] ->
                check_tpg line tpg;
                explicit :=
                  {
                    circuit;
                    task =
                      Reseed
                        {
                          tpg;
                          cycles = parse_cycles line cy;
                          fault_model = !fault_model;
                        };
                  }
                  :: !explicit
            | [ "job"; circuit; tpg; cy; model ] ->
                check_tpg line tpg;
                explicit :=
                  {
                    circuit;
                    task =
                      Reseed
                        {
                          tpg;
                          cycles = parse_cycles line cy;
                          fault_model = parse_model line model;
                        };
                  }
                  :: !explicit
            | "job" :: _ ->
                fail_line line "job line wants: job CIRCUIT TPG CYCLES [FAULT_MODEL]"
            | [ "compress"; circuit; w ] -> (
                match int_of_string_opt w with
                | Some width when width >= 1 && width <= 62 ->
                    explicit := { circuit; task = Compress { width } } :: !explicit
                | _ -> fail_line line "bad block width %S (integer 1-62 expected)" w)
            | "compress" :: _ -> fail_line line "compress line wants: compress CIRCUIT WIDTH"
            | w :: _ :: _ ->
                fail_line line
                  "unknown workload %S (job or compress line expected)" w
            | _ -> fail_line line "cannot parse %S (KEY = VALUE or job line expected)" s))
    (String.split_on_char '\n' text);
  let product =
    List.concat_map
      (fun circuit ->
        List.concat_map
          (fun tpg ->
            List.map
              (fun cycles ->
                { circuit; task = Reseed { tpg; cycles; fault_model = !fault_model } })
              !cycles)
          !tpgs)
      !circuits
  in
  let jobs = product @ List.rev !explicit in
  if jobs = [] then
    Error.fail ~file:path Error.Input_error
      "manifest defines no jobs (need circuits+tpgs+cycles, or job lines)";
  {
    method_ = !method_;
    objective = !objective;
    scale = !scale;
    job_deadline = !job_deadline;
    fault_model = !fault_model;
    jobs;
  }

let parse_file path =
  match Artifact.read_opt path with
  | Some text -> parse_string ~path text
  | None -> Error.fail Error.Input_error "cannot read manifest %s" path

(* --- campaign execution --------------------------------------------- *)

type status = Ok | Skipped

type metrics =
  | Reseed_metrics of {
      triplets : int;
      test_length : int;
      rom_bits : int;
      coverage_pct : float;
    }
  | Compress_metrics of {
      entries : int;
      dictionary_bits : int;
      index_bits : int;
      raw_bits : int;
    }

type job_result = { job : job; status : status; metrics : metrics; degraded : bool }

let m_completed =
  Metrics.counter ~help:"batch jobs completed" "batch_jobs_completed"

let m_skipped =
  Metrics.counter ~help:"batch jobs skipped (campaign budget expired)"
    "batch_jobs_skipped"

(* Chaos schedules can fail or stall whole campaign jobs here; the pool's
   retry policy then re-runs the job chunk, exercising idempotent job
   re-execution against the shared prepared workloads. *)
let fp_job = Faultpoint.register "batch.job"

let skipped_result job =
  let metrics =
    match job.task with
    | Reseed _ ->
        Reseed_metrics
          { triplets = 0; test_length = 0; rom_bits = 0; coverage_pct = 0. }
    | Compress _ ->
        Compress_metrics
          { entries = 0; dictionary_bits = 0; index_bits = 0; raw_bits = 0 }
  in
  { job; status = Skipped; metrics; degraded = true }

let run ?pool ?store ?budget ?on_done manifest =
  Trace.with_span "batch.run"
    ~args:[ ("jobs", string_of_int (List.length manifest.jobs)) ]
  @@ fun () ->
  let jobs = Array.of_list manifest.jobs in
  (* Distinct (circuit, fault model) pairs prepare once, sequentially:
     the ATPG front-end is itself parallel inside, and each prepared
     workload is then shared read-only by every job on it.  A stuck-at
     and a transition job on the same circuit are different workloads —
     different fault list, different test set. *)
  let prepared : (string * string, Suite.prepared) Hashtbl.t = Hashtbl.create 8 in
  let prep_key j = (j.circuit, Fault_model.name (job_model j)) in
  Array.iter
    (fun j ->
      let key = prep_key j in
      if not (Hashtbl.mem prepared key) then
        Hashtbl.replace prepared key
          (Suite.prepare ~scale_factor:manifest.scale ~fault_model:(job_model j)
             ?budget ?store j.circuit))
    jobs;
  let results = Array.map skipped_result jobs in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Pool.parallel_for ~pool ~chunk:1 ~label:"batch jobs" ~total:(Array.length jobs)
    (fun ~worker:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        let job = jobs.(i) in
        Faultpoint.hit fp_job;
        if Budget.check budget then Metrics.incr m_skipped
        else begin
          let job_budget =
            match (budget, manifest.job_deadline) with
            | Some g, Some d -> Some (Budget.sub ~deadline_s:d g)
            | Some g, None -> Some g
            | None, Some d -> Some (Budget.create ~deadline_s:d ())
            | None, None -> None
          in
          let p = Hashtbl.find prepared (prep_key job) in
          (match job.task with
          | Reseed { tpg = tpg_name; cycles; fault_model = _ } ->
              (* Concurrent jobs on one circuit must not share the
                 prepared simulator's scratch state. *)
              let sim = Fault_sim.copy p.Suite.sim in
              let tpg = tpg_of_name tpg_name (Circuit.input_count p.Suite.circuit) in
              let config =
                {
                  Flow.default_config with
                  Flow.builder = { Builder.default_config with Builder.cycles };
                  method_ = manifest.method_;
                  objective = manifest.objective;
                }
              in
              let r =
                Flow.run ~config ?budget:job_budget ?store:p.Suite.store
                  ~fingerprint:p.Suite.fingerprint sim tpg ~tests:p.Suite.tests
                  ~targets:p.Suite.targets
              in
              results.(i) <-
                {
                  job;
                  status = Ok;
                  metrics =
                    Reseed_metrics
                      {
                        triplets = Flow.reseedings r;
                        test_length = r.Flow.test_length;
                        rom_bits =
                          List.fold_left
                            (fun acc t -> acc + Triplet.storage_bits t)
                            0 r.Flow.final_triplets;
                        coverage_pct = r.Flow.coverage_pct;
                      };
                  degraded =
                    r.Flow.degraded || p.Suite.atpg.Reseed_atpg.Atpg.stopped_early;
                }
          | Compress { width } ->
              let corpus = Workload.corpus_of_patterns ~width p.Suite.tests in
              let c =
                Workload.solve ~method_:manifest.method_ ?budget:job_budget
                  ?store:p.Suite.store corpus
              in
              results.(i) <-
                {
                  job;
                  status = Ok;
                  metrics =
                    Compress_metrics
                      {
                        entries = List.length c.Workload.entries;
                        dictionary_bits = c.Workload.dictionary_bits;
                        index_bits = c.Workload.index_bits;
                        raw_bits = c.Workload.raw_bits;
                      };
                  degraded =
                    c.Workload.solution.Solution.stats.Solution.degraded
                    || p.Suite.atpg.Reseed_atpg.Atpg.stopped_early;
                });
          Metrics.incr m_completed
        end;
        Option.iter (fun f -> f i results.(i)) on_done
      done);
  Array.to_list results

(* --- report ---------------------------------------------------------- *)

let status_name = function Ok -> "ok" | Skipped -> "skipped"

(* No timings, host names or cache statistics in the report: a warm
   resume must reproduce the cold report byte for byte. *)
let report_json manifest results =
  let b = Buffer.create 1024 in
  let count f = List.length (List.filter f results) in
  Buffer.add_string b "{\n  \"method\": ";
  Buffer.add_string b (Printf.sprintf "%S" (Solution.method_name manifest.method_));
  Buffer.add_string b
    (Printf.sprintf ",\n  \"objective\": %S"
       (match manifest.objective with
       | Flow.Min_triplets -> "triplets"
       | Flow.Min_test_length -> "length"));
  Buffer.add_string b (Printf.sprintf ",\n  \"scale\": %d" manifest.scale);
  Buffer.add_string b ",\n  \"jobs\": [";
  List.iteri
    (fun i r ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      (* Stuck-at reseeding jobs keep the historical line format exactly;
         the fault_model field appears only for other models, so a
         stuck-at-only report is byte-identical to older releases. *)
      match (r.job.task, r.metrics) with
      | Reseed { tpg; cycles; fault_model }, Reseed_metrics m ->
          let model_field =
            match fault_model with
            | Fault_model.Stuck_at -> ""
            | fm -> Printf.sprintf "\"fault_model\": %S, " (Fault_model.name fm)
          in
          Buffer.add_string b
            (Printf.sprintf
               "    { \"circuit\": %S, \"tpg\": %S, \"cycles\": %d, %s\"status\": \
                %S, \"triplets\": %d, \"test_length\": %d, \"rom_bits\": %d, \
                \"coverage_pct\": %.4f, \"degraded\": %b }"
               r.job.circuit tpg cycles model_field (status_name r.status)
               m.triplets m.test_length m.rom_bits m.coverage_pct r.degraded)
      | Compress { width }, Compress_metrics m ->
          Buffer.add_string b
            (Printf.sprintf
               "    { \"circuit\": %S, \"task\": \"compress\", \"width\": %d, \
                \"status\": %S, \"entries\": %d, \"dictionary_bits\": %d, \
                \"index_bits\": %d, \"raw_bits\": %d, \"degraded\": %b }"
               r.job.circuit width (status_name r.status) m.entries
               m.dictionary_bits m.index_bits m.raw_bits r.degraded)
      | _ -> assert false)
    results;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"summary\": { \"total\": %d, \"ok\": %d, \"skipped\": %d, \"degraded\": \
        %d }\n"
       (List.length results)
       (count (fun r -> r.status = Ok))
       (count (fun r -> r.status = Skipped))
       (count (fun r -> r.degraded)));
  Buffer.add_string b "}\n";
  Buffer.contents b
