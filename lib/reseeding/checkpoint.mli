(** Crash-safe persistence for the Detection Matrix build.

    The matrix rows are pure functions of the build inputs (ATPG tests,
    target mask, TPG, builder config), so a build interrupted by a
    deadline or SIGINT can resume bit-identically from whatever rows it
    managed to finish.  Rows are persisted in fixed-size {!chunk_rows}
    groups, one file per group, each carrying:

    - a magic tag and format version;
    - a 64-bit FNV-1a {!fingerprint} of the build inputs, so a checkpoint
      directory reused for a different circuit/TPG/config is detected and
      auto-reset instead of silently mixed in;
    - the row range, the column count, the payload length and a payload
      checksum.

    Files are written to a [.tmp] name, fsynced, renamed into place and
    the directory fsynced (via {!Artifact.write_atomic}), so a chunk
    either exists complete and durable or not at all; a truncated or
    corrupt chunk is simply ignored on {!restore} and its rows
    re-simulated.  {!store} passes the [checkpoint.store] {!Faultpoint}
    and retries transient failures through the shared {!Retry} policy. *)

open Reseed_util

type t

(** Rows per chunk file — the granularity of both persistence and loss. *)
val chunk_rows : int

(** [fingerprint ~tests ~targets ~cycles ~seed ~operand_tag ~fault_model
    ~tpg ~width] digests every input the matrix rows depend on;
    [fault_model] is the {!Reseed_fault.Fault_model.name} tag of the
    detection semantics the rows were simulated under, so a checkpoint
    directory from a stuck-at build is auto-reset rather than resumed
    into a transition-delay one. *)
val fingerprint :
  tests:bool array array ->
  targets:Bitvec.t ->
  cycles:int ->
  seed:int ->
  operand_tag:string ->
  fault_model:string ->
  tpg:string ->
  width:int ->
  int64

(** [open_dir ~dir ~fingerprint ~rows ~cols] creates [dir] if needed and
    validates its [META] file; on fingerprint mismatch (or a fresh
    directory) all stale chunks are removed and a new [META] written.
    Raises {!Error.Reseed_error} ([Input_error]) when [dir] cannot be
    created or written. *)
val open_dir : dir:string -> fingerprint:int64 -> rows:int -> cols:int -> t

val dir : t -> string

(** [store t ~lo ~hi ~useful ~row] persists rows [lo..hi-1] as one chunk:
    [useful i] is the row's useful-cycle count, [row i] its detection
    bitvector (width [cols]).  Atomic and durable: fsynced
    write-then-rename, retried on transient failure. *)
val store : t -> lo:int -> hi:int -> useful:(int -> int) -> row:(int -> Bitvec.t) -> unit

(** [restore t f] calls [f ~row ~useful bits] for every row of every
    valid chunk in the directory and returns the number of rows
    delivered.  Invalid chunks (bad magic, version, fingerprint, bounds,
    checksum, or unreadable file) are skipped silently. *)
val restore : t -> (row:int -> useful:int -> Bitvec.t -> unit) -> int
