open Reseed_atpg
open Reseed_fault
open Reseed_gatsby
open Reseed_netlist
open Reseed_tpg
open Reseed_util

type prepared = {
  circuit : Circuit.t;
  sim : Fault_sim.t;
  tests : bool array array;
  targets : Bitvec.t;
  atpg : Atpg.result;
  collapse : Collapse.t option;
}

let prepare_circuit ?atpg_config ?sim_engine ?(collapse = false) ?budget circuit =
  Trace.with_span "suite.prepare" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  let classes =
    if collapse then
      Some (Trace.with_span "collapse.compute" @@ fun () -> Collapse.compute circuit)
    else None
  in
  let faults = Option.map Collapse.reps classes in
  let sim, atpg =
    Atpg.run_circuit ?config:atpg_config ?sim_engine ?faults ?budget circuit
  in
  {
    circuit;
    sim;
    tests = atpg.Atpg.tests;
    targets = atpg.Atpg.detected;
    atpg;
    collapse = classes;
  }

let prepare ?scale_factor ?atpg_config ?sim_engine ?collapse ?budget name =
  prepare_circuit ?atpg_config ?sim_engine ?collapse ?budget
    (Library.load ?scale_factor name)

(* Universe-level coverage implied by a detection set over the prepared
   fault list: expanded through the collapse classes when present,
   otherwise reported over the (equivalence-collapsed) list itself. *)
let expanded_coverage_pct p detected =
  match p.collapse with
  | Some cl -> Collapse.coverage_pct cl detected
  | None -> Fault_sim.coverage_pct p.sim detected

let paper_tpgs p = Accumulator.paper_tpgs (Circuit.input_count p.circuit)

type table1_entry = {
  tpg : string;
  sc_triplets : int;
  sc_test_length : int;
  sc_rom_bits : int;
  sc_fault_sims : int;
  gatsby_triplets : int option;
  gatsby_test_length : int option;
  gatsby_fault_sims : int option;
}

type table1_row = { t1_name : string; entries : table1_entry list }

let flow_config_with_cycles cycles =
  match cycles with
  | None -> Flow.default_config
  | Some c ->
      {
        Flow.default_config with
        Flow.builder = { Builder.default_config with Builder.cycles = c };
      }

(* Flow runs are deterministic; Table 1 and Table 2 share them. *)
let flow_cache : (string * string * int, Flow.result) Hashtbl.t = Hashtbl.create 64

let cached_flow p tpg config =
  let key =
    (Circuit.name p.circuit, tpg.Tpg.name, config.Flow.builder.Builder.cycles)
  in
  match Hashtbl.find_opt flow_cache key with
  | Some r -> r
  | None ->
      let r = Flow.run ~config p.sim tpg ~tests:p.tests ~targets:p.targets in
      Hashtbl.replace flow_cache key r;
      r

let table1_row ?cycles ?(with_gatsby = true) p =
  let config = flow_config_with_cycles cycles in
  let entries =
    List.map
      (fun tpg ->
        let r = cached_flow p tpg config in
        let gatsby =
          if with_gatsby then begin
            let gconfig =
              {
                Gatsby.default_config with
                Gatsby.cycles = config.Flow.builder.Builder.cycles;
              }
            in
            let rng = Rng.create 1234 in
            Some (Gatsby.run ~config:gconfig p.sim tpg ~rng ~targets:p.targets)
          end
          else None
        in
        {
          tpg = tpg.Tpg.name;
          sc_triplets = Flow.reseedings r;
          sc_test_length = r.Flow.test_length;
          sc_rom_bits =
            List.fold_left
              (fun acc t -> acc + Triplet.storage_bits t)
              0 r.Flow.final_triplets;
          sc_fault_sims = r.Flow.fault_sims;
          gatsby_triplets = Option.map (fun g -> List.length g.Gatsby.triplets) gatsby;
          gatsby_test_length = Option.map (fun g -> g.Gatsby.test_length) gatsby;
          gatsby_fault_sims = Option.map (fun g -> g.Gatsby.fault_sims) gatsby;
        })
      (paper_tpgs p)
  in
  { t1_name = Circuit.name p.circuit; entries }

type table2_entry = {
  t2_tpg : string;
  necessary : int;
  reduced_rows : int;
  reduced_cols : int;
  from_solver : int;
  iterations : int;
}

type table2_row = {
  t2_name : string;
  initial_triplets : int;
  initial_faults : int;
  t2_entries : table2_entry list;
}

let table2_row ?cycles p =
  let config = flow_config_with_cycles cycles in
  let t2_entries =
    List.map
      (fun tpg ->
        let r = cached_flow p tpg config in
        let s = r.Flow.solution.Reseed_setcover.Solution.stats in
        {
          t2_tpg = tpg.Tpg.name;
          necessary = List.length s.Reseed_setcover.Solution.necessary;
          reduced_rows = s.Reseed_setcover.Solution.reduced_rows;
          reduced_cols = s.Reseed_setcover.Solution.reduced_cols;
          from_solver = List.length s.Reseed_setcover.Solution.from_solver;
          iterations = s.Reseed_setcover.Solution.reduction_iterations;
        })
      (paper_tpgs p)
  in
  {
    t2_name = Circuit.name p.circuit;
    initial_triplets = Array.length p.tests;
    initial_faults = Bitvec.count p.targets;
    t2_entries;
  }

let figure2 ?grid p tpg =
  let grid =
    match grid with Some g -> g | None -> Tradeoff.default_grid ~max_cycles:256
  in
  Tradeoff.sweep p.sim tpg ~tests:p.tests ~targets:p.targets ~grid

let table1_table rows =
  let t =
    Table.create ~title:"Table 1: Reseeding solution (set covering vs GATSBY)"
      [
        ("Circuit", Table.Left);
        ("TPG", Table.Left);
        ("#Triplets", Table.Right);
        ("Test Length", Table.Right);
        ("ROM bits", Table.Right);
        ("GATSBY #Triplets", Table.Right);
        ("GATSBY Test Length", Table.Right);
        ("Δ#Triplets", Table.Right);
      ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun e ->
          Table.add_row t
            [
              row.t1_name;
              e.tpg;
              Table.cell_int e.sc_triplets;
              Table.cell_int e.sc_test_length;
              Table.cell_int e.sc_rom_bits;
              Table.cell_opt Table.cell_int e.gatsby_triplets;
              Table.cell_opt Table.cell_int e.gatsby_test_length;
              Table.cell_opt
                (fun g -> Table.cell_int (e.sc_triplets - g))
                e.gatsby_triplets;
            ])
        row.entries;
      Table.add_separator t)
    rows;
  t

let render_table1 rows = Table.render (table1_table rows)

let csv_table1 rows = Table.to_csv (table1_table rows)

let table2_table rows =
  let t =
    Table.create ~title:"Table 2: Set Covering algorithm (matrix reduction impact)"
      [
        ("Circuit", Table.Left);
        ("Initial matrix", Table.Right);
        ("TPG", Table.Left);
        ("Necessary", Table.Right);
        ("Reduced matrix", Table.Right);
        ("From solver", Table.Right);
        ("Iter", Table.Right);
      ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun e ->
          Table.add_row t
            [
              row.t2_name;
              Printf.sprintf "%dx%d" row.initial_triplets row.initial_faults;
              e.t2_tpg;
              Table.cell_int e.necessary;
              Printf.sprintf "%dx%d" e.reduced_rows e.reduced_cols;
              Table.cell_int e.from_solver;
              Table.cell_int e.iterations;
            ])
        row.t2_entries;
      Table.add_separator t)
    rows;
  t

let render_table2 rows = Table.render (table2_table rows)

let csv_table2 rows = Table.to_csv (table2_table rows)

let csv_figure2 points =
  let t =
    Table.create ~title:"figure2"
      [ ("cycles", Table.Right); ("triplets", Table.Right); ("test_length", Table.Right) ]
  in
  List.iter
    (fun (pt : Tradeoff.point) ->
      Table.add_row t
        [
          Table.cell_int pt.Tradeoff.cycles;
          Table.cell_int pt.Tradeoff.triplets;
          Table.cell_int pt.Tradeoff.test_length;
        ])
    points;
  Table.to_csv t

let quick_suite = [ "c17"; "c432"; "c499"; "c880"; "s420"; "s641"; "s820"; "s1238" ]

let full_suite = Library.names
