open Reseed_atpg
open Reseed_fault
open Reseed_gatsby
open Reseed_netlist
open Reseed_tpg
open Reseed_util

type prepared = {
  circuit : Circuit.t;
  sim : Fault_sim.t;
  tests : bool array array;
  targets : Bitvec.t;
  atpg : Atpg.result;
  fault_model : Fault_model.t;
  collapse : Collapse.t option;
  fingerprint : Fingerprint.t;
  store : Artifact.store option;
}

(* The netlist itself is hashed node by node, so editing a circuit file —
   not just renaming it — invalidates every downstream artifact. *)
let circuit_fingerprint c =
  let open Fingerprint in
  let h = salted "circuit" in
  let h = string h (Circuit.name c) in
  let h =
    Array.fold_left
      (fun h (n : Circuit.node) ->
        let h = string h (Gate.kind_to_string n.Circuit.kind) in
        let h = array int h n.Circuit.fanins in
        string h n.Circuit.label)
      h c.Circuit.nodes
  in
  let h = array int h c.Circuit.inputs in
  array int h c.Circuit.outputs

let atpg_engine_tag = function
  | Atpg.Podem_engine -> "podem"
  | Atpg.Sat_engine -> "sat"

(* The ATPG-stage key digests everything the prepared workload depends
   on: the netlist, the full ATPG config, the fault-simulation engine,
   the fault model and the collapse mode.  It doubles as the lineage salt
   for every later stage of this circuit's pipeline, so the workload tag
   below propagates into every downstream stage key — a warm stuck-at
   store is a guaranteed miss for a transition-delay request. *)
let atpg_fingerprint ?sim_engine ?(fault_model = Fault_model.Stuck_at) ~config
    ~collapse circuit =
  let open Fingerprint in
  let h = salted "atpg" in
  let h = string h ("workload:faults:" ^ Fault_model.name fault_model) in
  let h = int64 h (circuit_fingerprint circuit) in
  let h = int h config.Atpg.seed in
  let h = int h config.Atpg.max_random_patterns in
  let h = int h config.Atpg.max_backtracks in
  let h = bool h config.Atpg.compaction in
  let h = bool h config.Atpg.use_random_phase in
  let h = string h (atpg_engine_tag config.Atpg.engine) in
  let h =
    string h
      (Fault_sim.engine_name (Option.value sim_engine ~default:Fault_sim.Hybrid))
  in
  bool h collapse

let encode_atpg (r : Atpg.result) =
  if r.Atpg.stopped_early then None
  else begin
    let b = Buffer.create 4096 in
    Artifact.Codec.patterns b r.Atpg.tests;
    Artifact.Codec.bitvec b r.Atpg.detected;
    Artifact.Codec.int_list b r.Atpg.untestable;
    Artifact.Codec.int_list b r.Atpg.aborted;
    Artifact.Codec.vint b r.Atpg.random_patterns_tried;
    Artifact.Codec.vint b r.Atpg.podem_stats.Podem.backtracks;
    Artifact.Codec.vint b r.Atpg.podem_stats.Podem.decisions;
    Artifact.Codec.vint b r.Atpg.dropped_by_compaction;
    Some (Buffer.contents b)
  end

let decode_atpg ~width ~fault_count r =
  let tests = Artifact.Codec.get_patterns r in
  Array.iter
    (fun p -> if Array.length p <> width then raise Artifact.Codec.Malformed)
    tests;
  let detected = Artifact.Codec.get_bitvec r in
  if Bitvec.length detected <> fault_count then raise Artifact.Codec.Malformed;
  let untestable = Artifact.Codec.get_int_list r in
  let aborted = Artifact.Codec.get_int_list r in
  let random_patterns_tried = Artifact.Codec.get_vint r in
  let podem_stats = Podem.new_stats () in
  podem_stats.Podem.backtracks <- Artifact.Codec.get_vint r;
  podem_stats.Podem.decisions <- Artifact.Codec.get_vint r;
  let dropped_by_compaction = Artifact.Codec.get_vint r in
  {
    Atpg.tests;
    detected;
    untestable;
    aborted;
    random_patterns_tried;
    podem_stats;
    dropped_by_compaction;
    stopped_early = false;
  }

let prepare_circuit ?atpg_config ?sim_engine ?(fault_model = Fault_model.Stuck_at)
    ?(collapse = false) ?budget ?store circuit =
  Trace.with_span "suite.prepare" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  if collapse && fault_model <> Fault_model.Stuck_at then
    Error.fail Error.Usage
      "fault model %s does not support collapsing (stuck-at equivalences do not \
       lift to launch/capture semantics)"
      (Fault_model.name fault_model);
  let config = Option.value atpg_config ~default:Atpg.default_config in
  let fingerprint =
    atpg_fingerprint ?sim_engine ~fault_model ~config ~collapse circuit
  in
  let classes =
    if collapse then
      Some (Trace.with_span "collapse.compute" @@ fun () -> Collapse.compute circuit)
    else None
  in
  let faults =
    match classes with
    | Some cl -> Collapse.reps cl
    | None -> Fault_model.faults fault_model circuit
  in
  (* On a warm hit the ATPG never runs, so the simulator it would have
     returned is rebuilt directly — same circuit, fault order, engine and
     model, hence the same detection behaviour. *)
  let sim_ref = ref None in
  let atpg =
    Artifact.cached store ~stage:"atpg" ~fp:fingerprint ~encode:encode_atpg
      ~decode:
        (decode_atpg
           ~width:(Circuit.input_count circuit)
           ~fault_count:(Array.length faults))
    @@ fun () ->
    let sim, r =
      Atpg.run_circuit ~config ?sim_engine ~fault_model ~faults ?budget circuit
    in
    sim_ref := Some sim;
    r
  in
  let sim =
    match !sim_ref with
    | Some s -> s
    | None -> Fault_sim.create ?engine:sim_engine ~model:fault_model circuit faults
  in
  {
    circuit;
    sim;
    tests = atpg.Atpg.tests;
    targets = atpg.Atpg.detected;
    atpg;
    fault_model;
    collapse = classes;
    fingerprint;
    store;
  }

let prepare ?scale_factor ?atpg_config ?sim_engine ?fault_model ?collapse ?budget
    ?store name =
  prepare_circuit ?atpg_config ?sim_engine ?fault_model ?collapse ?budget ?store
    (Library.load ?scale_factor name)

(* Universe-level coverage implied by a detection set over the prepared
   fault list: expanded through the collapse classes when present,
   otherwise reported over the (equivalence-collapsed) list itself. *)
let expanded_coverage_pct p detected =
  match p.collapse with
  | Some cl -> Collapse.coverage_pct cl detected
  | None -> Fault_sim.coverage_pct p.sim detected

let paper_tpgs p = Accumulator.paper_tpgs (Circuit.input_count p.circuit)

type table1_entry = {
  tpg : string;
  sc_triplets : int;
  sc_test_length : int;
  sc_rom_bits : int;
  sc_fault_sims : int;
  gatsby_triplets : int option;
  gatsby_test_length : int option;
  gatsby_fault_sims : int option;
}

type table1_row = { t1_name : string; entries : table1_entry list }

let flow_config_with_cycles cycles =
  match cycles with
  | None -> Flow.default_config
  | Some c ->
      {
        Flow.default_config with
        Flow.builder = { Builder.default_config with Builder.cycles = c };
      }

(* Flow runs are deterministic; Table 1 and Table 2 share them.  The key
   carries the fault-model tag so a stuck-at and a transition row for the
   same circuit/TPG/T never collide within one process. *)
let flow_cache : (string * string * string * int, Flow.result) Hashtbl.t =
  Hashtbl.create 64

let cached_flow p tpg config =
  let key =
    ( Circuit.name p.circuit,
      Fault_model.name p.fault_model,
      tpg.Tpg.name,
      config.Flow.builder.Builder.cycles )
  in
  match Hashtbl.find_opt flow_cache key with
  | Some r -> r
  | None ->
      let r =
        Flow.run ~config ?store:p.store ~fingerprint:p.fingerprint p.sim tpg
          ~tests:p.tests ~targets:p.targets
      in
      Hashtbl.replace flow_cache key r;
      r

let gatsby_fingerprint p tpg ~gconfig ~seed =
  let open Fingerprint in
  let h = salted "gatsby" in
  let h = int64 h p.fingerprint in
  let h = string h tpg.Tpg.name in
  let h = int h gconfig.Gatsby.cycles in
  let h = int h gconfig.Gatsby.max_rounds in
  let h = int h gconfig.Gatsby.ga.Ga.population in
  let h = int h gconfig.Gatsby.ga.Ga.generations in
  int h seed

(* Table 1 only reports three numbers from the GA leg; caching them (not
   the triplets) is what makes a warm table1 rerun skip the most
   expensive uncached phase. *)
let gatsby_summary p tpg ~gconfig ~seed =
  Artifact.cached p.store ~stage:"gatsby"
    ~fp:(gatsby_fingerprint p tpg ~gconfig ~seed)
    ~encode:(fun (triplets, test_length, fault_sims, stopped_early) ->
      if stopped_early then None
      else begin
        let b = Buffer.create 32 in
        Artifact.Codec.vint b triplets;
        Artifact.Codec.vint b test_length;
        Artifact.Codec.vint b fault_sims;
        Some (Buffer.contents b)
      end)
    ~decode:(fun r ->
      let triplets = Artifact.Codec.get_vint r in
      let test_length = Artifact.Codec.get_vint r in
      let fault_sims = Artifact.Codec.get_vint r in
      (triplets, test_length, fault_sims, false))
  @@ fun () ->
  let rng = Rng.create seed in
  let g = Gatsby.run ~config:gconfig p.sim tpg ~rng ~targets:p.targets in
  ( List.length g.Gatsby.triplets,
    g.Gatsby.test_length,
    g.Gatsby.fault_sims,
    g.Gatsby.stopped_early )

let table1_row ?cycles ?(with_gatsby = true) p =
  let config = flow_config_with_cycles cycles in
  let entries =
    List.map
      (fun tpg ->
        let r = cached_flow p tpg config in
        let gatsby =
          if with_gatsby then begin
            let gconfig =
              {
                Gatsby.default_config with
                Gatsby.cycles = config.Flow.builder.Builder.cycles;
              }
            in
            Some (gatsby_summary p tpg ~gconfig ~seed:1234)
          end
          else None
        in
        {
          tpg = tpg.Tpg.name;
          sc_triplets = Flow.reseedings r;
          sc_test_length = r.Flow.test_length;
          sc_rom_bits =
            List.fold_left
              (fun acc t -> acc + Triplet.storage_bits t)
              0 r.Flow.final_triplets;
          sc_fault_sims = r.Flow.fault_sims;
          gatsby_triplets = Option.map (fun (t, _, _, _) -> t) gatsby;
          gatsby_test_length = Option.map (fun (_, l, _, _) -> l) gatsby;
          gatsby_fault_sims = Option.map (fun (_, _, s, _) -> s) gatsby;
        })
      (paper_tpgs p)
  in
  { t1_name = Circuit.name p.circuit; entries }

type table2_entry = {
  t2_tpg : string;
  necessary : int;
  reduced_rows : int;
  reduced_cols : int;
  from_solver : int;
  iterations : int;
}

type table2_row = {
  t2_name : string;
  initial_triplets : int;
  initial_faults : int;
  t2_entries : table2_entry list;
}

let table2_row ?cycles p =
  let config = flow_config_with_cycles cycles in
  let t2_entries =
    List.map
      (fun tpg ->
        let r = cached_flow p tpg config in
        let s = r.Flow.solution.Reseed_setcover.Solution.stats in
        {
          t2_tpg = tpg.Tpg.name;
          necessary = List.length s.Reseed_setcover.Solution.necessary;
          reduced_rows = s.Reseed_setcover.Solution.reduced_rows;
          reduced_cols = s.Reseed_setcover.Solution.reduced_cols;
          from_solver = List.length s.Reseed_setcover.Solution.from_solver;
          iterations = s.Reseed_setcover.Solution.reduction_iterations;
        })
      (paper_tpgs p)
  in
  {
    t2_name = Circuit.name p.circuit;
    initial_triplets = Array.length p.tests;
    initial_faults = Bitvec.count p.targets;
    t2_entries;
  }

let figure2 ?grid p tpg =
  let grid =
    match grid with Some g -> g | None -> Tradeoff.default_grid ~max_cycles:256
  in
  Tradeoff.sweep ?store:p.store ~fingerprint:p.fingerprint p.sim tpg ~tests:p.tests
    ~targets:p.targets ~grid

let table1_table rows =
  let t =
    Table.create ~title:"Table 1: Reseeding solution (set covering vs GATSBY)"
      [
        ("Circuit", Table.Left);
        ("TPG", Table.Left);
        ("#Triplets", Table.Right);
        ("Test Length", Table.Right);
        ("ROM bits", Table.Right);
        ("GATSBY #Triplets", Table.Right);
        ("GATSBY Test Length", Table.Right);
        ("Δ#Triplets", Table.Right);
      ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun e ->
          Table.add_row t
            [
              row.t1_name;
              e.tpg;
              Table.cell_int e.sc_triplets;
              Table.cell_int e.sc_test_length;
              Table.cell_int e.sc_rom_bits;
              Table.cell_opt Table.cell_int e.gatsby_triplets;
              Table.cell_opt Table.cell_int e.gatsby_test_length;
              Table.cell_opt
                (fun g -> Table.cell_int (e.sc_triplets - g))
                e.gatsby_triplets;
            ])
        row.entries;
      Table.add_separator t)
    rows;
  t

let render_table1 rows = Table.render (table1_table rows)

let csv_table1 rows = Table.to_csv (table1_table rows)

let table2_table rows =
  let t =
    Table.create ~title:"Table 2: Set Covering algorithm (matrix reduction impact)"
      [
        ("Circuit", Table.Left);
        ("Initial matrix", Table.Right);
        ("TPG", Table.Left);
        ("Necessary", Table.Right);
        ("Reduced matrix", Table.Right);
        ("From solver", Table.Right);
        ("Iter", Table.Right);
      ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun e ->
          Table.add_row t
            [
              row.t2_name;
              Printf.sprintf "%dx%d" row.initial_triplets row.initial_faults;
              e.t2_tpg;
              Table.cell_int e.necessary;
              Printf.sprintf "%dx%d" e.reduced_rows e.reduced_cols;
              Table.cell_int e.from_solver;
              Table.cell_int e.iterations;
            ])
        row.t2_entries;
      Table.add_separator t)
    rows;
  t

let render_table2 rows = Table.render (table2_table rows)

let csv_table2 rows = Table.to_csv (table2_table rows)

let csv_figure2 points =
  let t =
    Table.create ~title:"figure2"
      [ ("cycles", Table.Right); ("triplets", Table.Right); ("test_length", Table.Right) ]
  in
  List.iter
    (fun (pt : Tradeoff.point) ->
      Table.add_row t
        [
          Table.cell_int pt.Tradeoff.cycles;
          Table.cell_int pt.Tradeoff.triplets;
          Table.cell_int pt.Tradeoff.test_length;
        ])
    points;
  Table.to_csv t

let quick_suite = [ "c17"; "c432"; "c499"; "c880"; "s420"; "s641"; "s820"; "s1238" ]

let full_suite = Library.names

let xl_suite = Library.xl_names
