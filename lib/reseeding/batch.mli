(** Manifest-driven multi-circuit campaigns ([reseed batch]).

    A campaign is the cross product circuits × TPGs × evolution lengths
    (plus explicit [job] lines) from a small text manifest:

    {v
    # lines starting with # are comments
    circuits     = c17, c432
    tpgs         = adder, multiplier
    cycles       = 100, 150
    method       = exact          # exact | greedy | noreduce
    objective    = triplets       # triplets | length
    scale        = 1              # synthetic-circuit divisor
    job_deadline = 30             # seconds per job (optional)
    job s420 subtracter 200       # explicit extra job
    v}

    Jobs run in parallel on the shared {!Reseed_util.Pool}, each on its
    own {!Reseed_fault.Fault_sim.copy} of the prepared simulator (the
    scratch state is not shared), each under its own child
    {!Reseed_util.Budget} of the campaign budget.  Results land in job
    order and are bit-identical at every job count.

    With an artifact store, every stage a job completes is persisted, so
    a campaign killed by SIGINT resumes by rerunning: finished stages
    load back warm and the report comes out identical to an uninterrupted
    run. *)

open Reseed_setcover
open Reseed_util

type job = { circuit : string; tpg : string; cycles : int }

type manifest = {
  method_ : Solution.method_;
  objective : Flow.objective;
  scale : int;
  job_deadline : float option;
  jobs : job list;  (** expanded: cross product first, explicit jobs after *)
}

(** [parse_string ?path s] parses manifest text.  Raises
    {!Error.Reseed_error} ([Input_error]) with [path:line] coordinates on
    unknown keys, malformed values, unknown TPG names or an empty job
    list. *)
val parse_string : ?path:string -> string -> manifest

(** [parse_file path] — {!parse_string} over the file's contents. *)
val parse_file : string -> manifest

type status = Ok | Skipped  (** [Skipped]: the campaign budget had already expired *)

type job_result = {
  job : job;
  status : status;
  triplets : int;
  test_length : int;
  rom_bits : int;  (** Σ triplet storage bits — the ROM-area proxy *)
  coverage_pct : float;
  degraded : bool;
      (** the job's own deadline (or the campaign budget) cut it short *)
}

(** [run ?pool ?store ?budget ?on_done manifest] prepares each distinct
    circuit once (sequentially, ATPG-stage cached when [store] is given),
    then runs every job on the pool.  [budget] is the campaign budget:
    jobs starting after it expires are [Skipped]; [job_deadline] becomes
    a {!Budget.sub} child of it per job.  [on_done i r] fires as each job
    finishes (from worker domains — synchronise in the callback).
    Results are in manifest job order. *)
val run :
  ?pool:Pool.t ->
  ?store:Artifact.store ->
  ?budget:Budget.t ->
  ?on_done:(int -> job_result -> unit) ->
  manifest ->
  job_result list

(** [report_json manifest results] renders the aggregated campaign
    report.  Deterministic: job order, fixed field order, no timings or
    cache/host information — so a warm rerun's report is byte-identical
    to the cold one. *)
val report_json : manifest -> job_result list -> string
