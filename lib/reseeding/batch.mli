(** Manifest-driven multi-workload campaigns ([reseed batch]).

    A campaign is the cross product circuits × TPGs × evolution lengths
    (plus explicit [job] and [compress] lines) from a small text
    manifest:

    {v
    # lines starting with # are comments
    circuits     = c17, c432
    tpgs         = adder, multiplier
    cycles       = 100, 150
    method       = exact          # exact | greedy | noreduce | portfolio
    objective    = triplets       # triplets | length
    scale        = 1              # synthetic-circuit divisor
    job_deadline = 30             # seconds per job (optional)
    fault_model  = stuck          # stuck | transition: cross-product and
                                  # job-line default
    job s420 subtracter 200       # explicit extra job (default model)
    job s420 adder 150 transition # explicit job with its own fault model
    compress c17 8                # compression job: 8-bit blocks over
                                  # the circuit's stuck-at ATPG test set
    v}

    Unknown keys, unknown [fault_model]/workload values, malformed
    widths and malformed job lines are all rejected with [path:line]
    coordinates — a manifest either parses completely or not at all.

    Jobs run in parallel on the shared {!Reseed_util.Pool}, each on its
    own {!Reseed_fault.Fault_sim.copy} of the prepared simulator (the
    scratch state is not shared), each under its own child
    {!Reseed_util.Budget} of the campaign budget.  Each distinct
    (circuit, fault model) pair is prepared once and shared; compression
    jobs compress the circuit's stuck-at ATPG test set.  Results land in
    job order and are bit-identical at every job count.

    With an artifact store, every stage a job completes is persisted, so
    a campaign killed by SIGINT resumes by rerunning: finished stages
    load back warm and the report comes out identical to an uninterrupted
    run. *)

open Reseed_fault
open Reseed_setcover
open Reseed_util

type task =
  | Reseed of { tpg : string; cycles : int; fault_model : Fault_model.t }
  | Compress of { width : int }  (** block width, 1-62 bits *)

type job = { circuit : string; task : task }

type manifest = {
  method_ : Solution.method_;
  objective : Flow.objective;
  scale : int;
  job_deadline : float option;
  fault_model : Fault_model.t;
      (** the manifest-level default model ([fault_model =] key) *)
  jobs : job list;  (** expanded: cross product first, explicit jobs after *)
}

(** [job_model j] is the fault model [j]'s workload prepares under:
    the reseed task's own model, {!Fault_model.Stuck_at} for compression
    (the corpus is the stuck-at ATPG test set). *)
val job_model : job -> Fault_model.t

(** [task_to_string t] is a short human rendering for progress lines:
    ["adder T=150"], ["adder T=150 [transition]"], ["compress w=8"]. *)
val task_to_string : task -> string

(** [parse_string ?path s] parses manifest text.  Raises
    {!Error.Reseed_error} ([Input_error]) with [path:line] coordinates on
    unknown keys, malformed values, unknown TPG names, unknown fault
    models or workloads, or an empty job list. *)
val parse_string : ?path:string -> string -> manifest

(** [parse_file path] — {!parse_string} over the file's contents. *)
val parse_file : string -> manifest

type status = Ok | Skipped  (** [Skipped]: the campaign budget had already expired *)

type metrics =
  | Reseed_metrics of {
      triplets : int;
      test_length : int;
      rom_bits : int;  (** Σ triplet storage bits — the ROM-area proxy *)
      coverage_pct : float;
    }
  | Compress_metrics of {
      entries : int;  (** selected dictionary entries *)
      dictionary_bits : int;
      index_bits : int;
      raw_bits : int;
    }

type job_result = {
  job : job;
  status : status;
  metrics : metrics;  (** zeros when [Skipped] *)
  degraded : bool;
      (** the job's own deadline (or the campaign budget) cut it short *)
}

(** [run ?pool ?store ?budget ?on_done manifest] prepares each distinct
    (circuit, fault model) workload once (sequentially, ATPG-stage cached
    when [store] is given), then runs every job on the pool.  [budget] is
    the campaign budget: jobs starting after it expires are [Skipped];
    [job_deadline] becomes a {!Budget.sub} child of it per job.
    [on_done i r] fires as each job finishes (from worker domains —
    synchronise in the callback).  Results are in manifest job order. *)
val run :
  ?pool:Pool.t ->
  ?store:Artifact.store ->
  ?budget:Budget.t ->
  ?on_done:(int -> job_result -> unit) ->
  manifest ->
  job_result list

(** [report_json manifest results] renders the aggregated campaign
    report.  Deterministic: job order, fixed field order, no timings or
    cache/host information — so a warm rerun's report is byte-identical
    to the cold one.  Stuck-at reseeding job lines keep the historical
    format exactly (no [fault_model] field), so a stuck-at-only report
    is also byte-identical across releases; transition jobs add
    ["fault_model": "transition"] and compression jobs use their own
    object shape (["task": "compress"], entry/bit counts). *)
val report_json : manifest -> job_result list -> string
