(** Reseedings vs. test length trade-off (Figure 2).

    Re-runs the full covering flow for a grid of evolution lengths [T]:
    longer bursts let single triplets cover more faults, shrinking the
    solution at the price of a longer global test — the paper's s1238
    series goes from 11 triplets / 5 427 patterns to 2 triplets / 15 551
    patterns. *)

open Reseed_fault
open Reseed_tpg
open Reseed_util

type point = {
  cycles : int;  (** the swept evolution length T *)
  triplets : int;  (** reseedings in the minimal solution *)
  test_length : int;  (** truncated global test length *)
}

(** [sweep ?flow_config ?pool sim tpg ~tests ~targets ~grid] runs one
    flow per grid entry (ascending) and returns one point per entry.
    Grid points run in parallel over [pool] (default: {!Pool.default}) on
    per-worker simulator shards; the series is bit-identical at every job
    count. *)
val sweep :
  ?flow_config:Flow.config ->
  ?pool:Pool.t ->
  Fault_sim.t ->
  Tpg.t ->
  tests:bool array array ->
  targets:Bitvec.t ->
  grid:int list ->
  point list

(** [default_grid ~max_cycles] is a geometric grid from 8 up to
    [max_cycles]. *)
val default_grid : max_cycles:int -> int list

(** [render points] draws the trade-off as a small ASCII chart plus the
    numeric series, in the spirit of Figure 2. *)
val render : point list -> string
