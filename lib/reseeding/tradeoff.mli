(** Reseedings vs. test length trade-off (Figure 2).

    Re-runs the full covering flow for a grid of evolution lengths [T]:
    longer bursts let single triplets cover more faults, shrinking the
    solution at the price of a longer global test — the paper's s1238
    series goes from 11 triplets / 5 427 patterns to 2 triplets / 15 551
    patterns. *)

open Reseed_fault
open Reseed_tpg
open Reseed_util

type point = {
  cycles : int;  (** the swept evolution length T *)
  triplets : int;  (** reseedings in the minimal solution *)
  test_length : int;  (** truncated global test length *)
}

(** [sweep ?flow_config ?pool ?store ?fingerprint sim tpg ~tests ~targets
    ~grid] computes one point per grid entry (ascending).

    A T-cycle burst is a prefix of the 2T-cycle burst from the same
    triplet, so the sweep fault-simulates each row {e once} at
    [max grid], records every fault's first-detection index, and derives
    each shorter point's detection matrix by thresholding — identical, bit
    for bit, to running the full flow per point, at a fraction of the
    injections.  Points then run the covering half in parallel over
    [pool] (default: {!Pool.default}) on per-worker simulator shards; the
    series is bit-identical at every job count.

    [store] caches the shared first-detection table (stage [sweep]) and
    the per-point covering stages, keyed off [fingerprint] (the upstream
    ATPG lineage) so points share artifacts with standalone runs at the
    same evolution length. *)
val sweep :
  ?flow_config:Flow.config ->
  ?pool:Pool.t ->
  ?store:Artifact.store ->
  ?fingerprint:Fingerprint.t ->
  Fault_sim.t ->
  Tpg.t ->
  tests:bool array array ->
  targets:Bitvec.t ->
  grid:int list ->
  point list

(** [default_grid ~max_cycles] is a geometric grid from 8 up to
    [max_cycles]; [\[max_cycles\]] itself when that is below 8 (the old
    behaviour was a silently empty grid).  Raises [Invalid_argument] when
    [max_cycles < 1]. *)
val default_grid : max_cycles:int -> int list

(** [render points] draws the trade-off as a small ASCII chart plus the
    numeric series, in the spirit of Figure 2. *)
val render : point list -> string
