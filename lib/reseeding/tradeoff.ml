open Reseed_fault
open Reseed_util

type point = { cycles : int; triplets : int; test_length : int }

let sweep ?(flow_config = Flow.default_config) ?pool sim tpg ~tests ~targets ~grid =
  let grid = Array.of_list (List.sort compare grid) in
  Array.iter
    (fun cycles ->
      if cycles < 1 then invalid_arg "Tradeoff.sweep: cycles must be >= 1")
    grid;
  Trace.with_span "tradeoff.sweep"
    ~args:[ ("points", string_of_int (Array.length grid)) ]
  @@ fun () ->
  (* Grid points are independent flows, so they run in parallel, each on
     the executing worker's simulator shard.  A nested Builder.build then
     degrades to its sequential path (the pool is busy), which keeps every
     per-point result identical to a sequential sweep. *)
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let shard = Fault_sim.shard sim (Pool.jobs pool) in
  let points = Array.make (Array.length grid) None in
  Pool.parallel_for ~pool ~chunk:1 ~total:(Array.length grid)
    (fun ~worker ~lo ~hi ->
      let s = shard.(worker) in
      for i = lo to hi - 1 do
        let cycles = grid.(i) in
        Trace.with_span "tradeoff.point"
          ~args:[ ("cycles", string_of_int cycles) ]
        @@ fun () ->
        let config =
          { flow_config with Flow.builder = { flow_config.Flow.builder with Builder.cycles } }
        in
        let r = Flow.run ~config s tpg ~tests ~targets in
        points.(i) <-
          Some { cycles; triplets = Flow.reseedings r; test_length = r.Flow.test_length }
      done);
  Fault_sim.merge_sims ~into:sim shard;
  Array.to_list (Array.map (function Some p -> p | None -> assert false) points)

let default_grid ~max_cycles =
  let rec go c acc = if c > max_cycles then List.rev acc else go (c * 2) (c :: acc) in
  go 8 []

let render points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Trade-off: reseedings vs test length\n";
  let max_triplets = List.fold_left (fun m p -> max m p.triplets) 1 points in
  List.iter
    (fun p ->
      let bar = String.make (max 1 (p.triplets * 40 / max_triplets)) '#' in
      Buffer.add_string buf
        (Printf.sprintf "T=%5d | %-40s %3d triplets, test length %6d\n" p.cycles bar
           p.triplets p.test_length))
    points;
  Buffer.contents buf
