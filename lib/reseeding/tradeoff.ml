open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type point = { cycles : int; triplets : int; test_length : int }

(* A T-cycle burst is a prefix of the 2T-cycle burst from the same
   triplet (the TPG just clocks on), and matrix rows are simulated
   independently with the full target mask active.  So one sweep at
   T_max = max(grid) yields, per row, the first-detection index of every
   fault — and the detection matrix for any shorter T is exactly the
   thresholding "first < T" of those indices.  The whole grid costs one
   matrix build instead of |grid|. *)

let sweep_fingerprint ?salt ?(fault_model = Fault_model.Stuck_at) ~tests ~targets
    ~builder ~t_max tpg =
  let open Fingerprint in
  let h = salted "sweep" in
  let h = option int64 h salt in
  let h = string h ("workload:faults:" ^ Fault_model.name fault_model) in
  let h = int h t_max in
  let h = int h builder.Builder.seed in
  let h = string h (Builder.operand_tag builder.Builder.operand_mode) in
  let h = string h tpg.Tpg.name in
  let h = int h tpg.Tpg.width in
  let h = bitvec h targets in
  patterns h tests

(* firsts.(i).(f) is the first burst index at which row i's T_max burst
   detects fault f, or -1; stored as first+1 so the codec stays
   non-negative. *)
let encode_firsts firsts =
  let n = Array.length firsts in
  let nf = if n = 0 then 0 else Array.length firsts.(0) in
  let b = Buffer.create (8 + (n * nf * 4)) in
  Artifact.Codec.u32 b n;
  Artifact.Codec.u32 b nf;
  Array.iter
    (fun row -> Array.iter (fun first -> Artifact.Codec.u32 b (first + 1)) row)
    firsts;
  Some (Buffer.contents b)

let decode_firsts ~rows ~faults r =
  let n = Artifact.Codec.get_u32 r in
  let nf = Artifact.Codec.get_u32 r in
  if n <> rows || nf <> faults then raise Artifact.Codec.Malformed;
  Array.init n (fun _ -> Array.init nf (fun _ -> Artifact.Codec.get_u32 r - 1))

let sweep ?(flow_config = Flow.default_config) ?pool ?store ?fingerprint sim tpg
    ~tests ~targets ~grid =
  let grid = Array.of_list (List.sort compare grid) in
  Array.iter
    (fun cycles ->
      if cycles < 1 then invalid_arg "Tradeoff.sweep: cycles must be >= 1")
    grid;
  if Array.length grid = 0 then []
  else begin
    Trace.with_span "tradeoff.sweep"
      ~args:[ ("points", string_of_int (Array.length grid)) ]
    @@ fun () ->
    let t_max = grid.(Array.length grid - 1) in
    let builder = flow_config.Flow.builder in
    let config_at cycles =
      { flow_config with Flow.builder = { builder with Builder.cycles } }
    in
    let triplets_max =
      Builder.make_triplets ~config:{ builder with Builder.cycles = t_max } tpg tests
    in
    let n = Array.length triplets_max in
    let nf = Fault_sim.fault_count sim in
    if Bitvec.length targets <> nf then invalid_arg "Tradeoff.sweep: target mask size";
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let shard = Fault_sim.shard sim (Pool.jobs pool) in
    let firsts =
      Artifact.cached store ~stage:"sweep"
        ~fp:
          (sweep_fingerprint ?salt:fingerprint
             ~fault_model:(Fault_sim.model sim) ~tests ~targets ~builder ~t_max
             tpg)
        ~encode:encode_firsts
        ~decode:(decode_firsts ~rows:n ~faults:nf)
      @@ fun () ->
      let firsts = Array.make n [||] in
      (* One task per row on per-worker shards, exactly as Builder.build
         sequences it: bit-identical at every job count. *)
      Trace.with_span "tradeoff.firsts" ~args:[ ("rows", string_of_int n) ]
      @@ fun () ->
      Pool.parallel_for ~pool ~chunk:1 ~label:"trade-off burst sweeps" ~total:n
        (fun ~worker ~lo ~hi ->
          let s = shard.(worker) in
          for i = lo to hi - 1 do
            let burst = Triplet.patterns tpg triplets_max.(i) in
            firsts.(i) <-
              Array.map
                (function Some p -> p | None -> -1)
                (Fault_sim.first_detections s ~active:targets burst)
          done);
      firsts
    in
    (* Each grid point thresholds the shared firsts into the detection
       matrix it would have built at its own T, then runs the covering
       half of the flow.  The per-point fingerprint is the plain
       matrix-stage key at that T, so reduce/solve/truncate artifacts are
       shared with standalone runs at the same evolution length. *)
    let points = Array.make (Array.length grid) None in
    Pool.parallel_for ~pool ~chunk:1 ~total:(Array.length grid)
      (fun ~worker ~lo ~hi ->
        let s = shard.(worker) in
        for gi = lo to hi - 1 do
          let cycles = grid.(gi) in
          Trace.with_span "tradeoff.point" ~args:[ ("cycles", string_of_int cycles) ]
          @@ fun () ->
          let config = config_at cycles in
          let triplets =
            Builder.make_triplets ~config:config.Flow.builder tpg tests
          in
          let useful_cycles = Array.make n 1 in
          let rows =
            Array.init n (fun i ->
                let row = Bitvec.create nf in
                Array.iteri
                  (fun fi first ->
                    if first >= 0 && first < cycles && Bitvec.get targets fi then begin
                      Bitvec.set row fi;
                      if first + 1 > useful_cycles.(i) then
                        useful_cycles.(i) <- first + 1
                    end)
                  firsts.(i);
                row)
          in
          let initial =
            {
              Builder.triplets;
              matrix = Matrix.of_rows ~cols:nf rows;
              targets;
              useful_cycles;
              fault_sims = 0;
              rows_skipped = 0;
              rows_restored = 0;
            }
          in
          let fpm =
            Builder.fingerprint ?salt:fingerprint
              ~fault_model:(Fault_sim.model sim) ~tests ~targets tpg
              ~config:config.Flow.builder
          in
          let r =
            Flow.run_prebuilt ~config ?store ~fingerprint:fpm s tpg ~initial
              ~targets
          in
          points.(gi) <-
            Some
              { cycles; triplets = Flow.reseedings r; test_length = r.Flow.test_length }
        done);
    Fault_sim.merge_sims ~into:sim shard;
    Array.to_list (Array.map (function Some p -> p | None -> assert false) points)
  end

let default_grid ~max_cycles =
  if max_cycles < 1 then invalid_arg "Tradeoff.default_grid: max_cycles must be >= 1"
  else if max_cycles < 8 then [ max_cycles ]
  else
    let rec go c acc = if c > max_cycles then List.rev acc else go (c * 2) (c :: acc) in
    go 8 []

let render points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Trade-off: reseedings vs test length\n";
  let max_triplets = List.fold_left (fun m p -> max m p.triplets) 0 points in
  List.iter
    (fun p ->
      (* Degenerate series — all-zero or negative counts — draw an empty
         bar rather than tripping String.make. *)
      let bar =
        if p.triplets <= 0 || max_triplets <= 0 then ""
        else String.make (max 1 (p.triplets * 40 / max_triplets)) '#'
      in
      Buffer.add_string buf
        (Printf.sprintf "T=%5d | %-40s %3d triplets, test length %6d\n" p.cycles bar
           p.triplets p.test_length))
    points;
  Buffer.contents buf
