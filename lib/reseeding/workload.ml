open Reseed_setcover
open Reseed_util

type t =
  | Faults of Reseed_fault.Fault_model.t
  | Compression

let name = function
  | Faults m -> "faults:" ^ Reseed_fault.Fault_model.name m
  | Compression -> "compress"

type block = { value : int; care : int }

type corpus = { width : int; blocks : block array }

let check_width width =
  if width < 1 || width > 62 then
    invalid_arg "Workload: block width must be within 1-62"

(* Chop one vector (as a bit producer) into width-sized blocks; the tail
   block is padded with don't-cares. *)
let chop ~width ~len bit_at acc =
  let i = ref 0 in
  while !i < len do
    let value = ref 0 and care = ref 0 in
    for j = 0 to width - 1 do
      let k = !i + j in
      if k < len then begin
        care := !care lor (1 lsl j);
        match bit_at k with
        | Some true -> value := !value lor (1 lsl j)
        | Some false -> ()
        | None -> care := !care land lnot (1 lsl j)
      end
    done;
    acc := { value = !value land !care; care = !care } :: !acc;
    i := !i + width
  done

let corpus_of_text ?file ~width s =
  check_width width;
  let acc = ref [] in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        String.iteri
          (fun col c ->
            match c with
            | '0' | '1' | 'X' | 'x' -> ()
            | _ ->
                Error.fail ?file ~line:(i + 1) ~column:(col + 1)
                  Error.Input_error
                  "corpus vector must be over [01X], got %C" c)
          line;
        chop ~width ~len:(String.length line)
          (fun k ->
            match line.[k] with
            | '1' -> Some true
            | '0' -> Some false
            | _ -> None)
          acc
      end)
    lines;
  { width; blocks = Array.of_list (List.rev !acc) }

let corpus_of_patterns ~width tests =
  check_width width;
  let acc = ref [] in
  Array.iter
    (fun pattern ->
      chop ~width ~len:(Array.length pattern) (fun k -> Some pattern.(k)) acc)
    tests;
  { width; blocks = Array.of_list (List.rev !acc) }

let candidates corpus =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun b ->
      let e = b.value land b.care in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        out := e :: !out
      end)
    corpus.blocks;
  Array.of_list (List.rev !out)

let covers ~entry b = entry land b.care = b.value

let matrix corpus cands =
  let nb = Array.length corpus.blocks in
  let rows =
    Array.map
      (fun entry ->
        let row = Bitvec.create nb in
        Array.iteri
          (fun j b -> if covers ~entry b then Bitvec.set row j)
          corpus.blocks;
        row)
      cands
  in
  Matrix.of_rows ~cols:nb rows

let fingerprint corpus =
  let open Fingerprint in
  let h = salted "compress" in
  let h = string h "workload:compress" in
  let h = int h corpus.width in
  let h = int h (Array.length corpus.blocks) in
  Array.fold_left (fun h b -> int (int h b.value) b.care) h corpus.blocks

type compressed = {
  corpus_blocks : int;
  distinct_blocks : int;
  entries : int list;
  solution : Solution.t;
  dictionary_bits : int;
  index_bits : int;
  raw_bits : int;
}

let bits_for n =
  if n <= 1 then 0
  else begin
    let b = ref 0 and v = ref (n - 1) in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let distinct_count corpus =
  let seen = Hashtbl.create 64 in
  Array.iter (fun b -> Hashtbl.replace seen (b.value, b.care) ()) corpus.blocks;
  Hashtbl.length seen

let solve ?(method_ = Solution.Exact) ?(reduce = Reduce.default_config) ?budget
    ?pool ?store corpus =
  Trace.with_span "workload.compress"
    ~args:[ ("blocks", string_of_int (Array.length corpus.blocks)) ]
  @@ fun () ->
  let cands = candidates corpus in
  let m = matrix corpus cands in
  let solution =
    if Array.length corpus.blocks = 0 then
      Solution.solve ~method_ ~reduce_config:reduce ?budget ?pool m
    else
      match store with
      | Some st ->
          Flow.staged_solve ~method_ ~reduce ?budget ?pool st
            (fingerprint corpus) m
      | None -> Solution.solve ~method_ ~reduce_config:reduce ?budget ?pool m
  in
  let entries = List.map (fun r -> cands.(r)) solution.Solution.rows in
  let nb = Array.length corpus.blocks in
  let ne = List.length entries in
  {
    corpus_blocks = nb;
    distinct_blocks = distinct_count corpus;
    entries;
    solution;
    dictionary_bits = ne * corpus.width;
    index_bits = nb * bits_for ne;
    raw_bits = nb * corpus.width;
  }

let entry_to_string ~width e =
  String.init width (fun j -> if e land (1 lsl j) <> 0 then '1' else '0')
