(** The complete reseeding computation flow of Figure 1:

    ATPG test set + fault list → Initial Reseeding Builder → Detection
    Matrix → Matrix Reducer (essentiality + dominance) → exact solver on
    the residual → final reseeding solution [N], with the test-length
    accounting of Section 4 (per-triplet truncation of the trailing
    patterns that add no coverage). *)

open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type objective =
  | Min_triplets
      (** the paper's objective: minimise the number of reseedings (ROM
          area for storing triplets) *)
  | Min_test_length
      (** extension: minimise the estimated global test length instead,
          using each triplet's useful burst length as its cost *)

type config = {
  builder : Builder.config;
  method_ : Solution.method_;
  reduce : Reduce.config;
  objective : objective;
}

val default_config : config

type result = {
  tpg_name : string;
  initial : Builder.t;  (** the initial reseeding and its matrix *)
  solution : Solution.t;  (** selected row indices + pipeline stats *)
  final_triplets : Triplet.t list;  (** truncated, in application order *)
  dropped_triplets : int;
      (** selected rows dropped by the Section-4 truncation because they
          detected no fault the earlier triplets missed — 0 for a minimal
          cover, possibly positive for a degraded (incumbent/greedy) one *)
  test_length : int;  (** Σ truncated burst lengths *)
  uniform_test_length : int;
      (** |selected| × max configured burst length (uniform-T mode):
          every selected triplet at its full pre-truncation T, dropped
          rows included *)
  coverage_pct : float;
      (** over the target list F — 100 by construction unless the run was
          [degraded], in which case it honestly reports what the partial
          reseeding covers *)
  fault_sims : int;  (** total injections for matrix + accounting *)
  elapsed_s : float;
  degraded : bool;
      (** the budget expired somewhere: matrix rows were skipped and/or
          the solver returned a suboptimal incumbent *)
  stop_reason : Budget.stop_reason option;
      (** why the budget tripped, when it did *)
}

(** [reseedings r] is the paper's “#Triplets”. *)
val reseedings : result -> int

(** [truncate_solution sim tpg ~triplets ~targets rows] — the Section-4
    accounting pass: applies the selected [rows] in order with fault
    dropping, truncating each burst after its last useful pattern.
    Returns (truncated triplets, still-undetected targets, number of
    selected rows dropped as useless).  Exposed for tests. *)
val truncate_solution :
  Fault_sim.t ->
  Tpg.t ->
  triplets:Triplet.t array ->
  targets:Bitvec.t ->
  int list ->
  Triplet.t list * Bitvec.t * int

(** [run ?config ?pool ?budget ?checkpoint ?store ?fingerprint sim tpg
    ~tests ~targets] executes the whole flow.  [tests] is the
    deterministic test set (ATPGTS), [targets] the fault list F.  [pool]
    is forwarded to the parallel Detection-Matrix build
    ({!Builder.build}) and to the portfolio method's racing legs,
    [budget] to every expensive phase (matrix build
    and covering solver), [checkpoint] to the matrix build for crash-safe
    resume.  On budget expiry the result is valid but possibly partial:
    see [degraded], [coverage_pct] and {!Builder.t.rows_skipped}.

    [store] memoises each stage — [matrix], [reduce], [solve],
    [truncate] — in the artifact store, keyed by {!Builder.fingerprint}
    salted with [fingerprint] (the upstream ATPG-stage lineage, see
    {!Suite.prepared}).  A fully warm run touches no fault simulator and
    no solver; results are bit-identical to the uncached path.  Degraded
    results are never persisted. *)
val run :
  ?config:config ->
  ?pool:Pool.t ->
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?store:Artifact.store ->
  ?fingerprint:Fingerprint.t ->
  Fault_sim.t ->
  Tpg.t ->
  tests:bool array array ->
  targets:Bitvec.t ->
  result

(** [staged_solve ~method_ ~reduce ?row_weights ?budget ?pool store fpm m]
    is {!Reseed_setcover.Solution.solve} with each expensive leg —
    reduce, end-game solve — memoised in [store], keyed off the
    matrix-stage fingerprint [fpm] exactly as {!run} keys them.  Staged
    and plain runs are bit-identical.  Exposed so other workloads mapped
    onto the same covering {!Reseed_setcover.Matrix} (the compression
    workload, see {!Workload}) can reuse the cached covering pipeline. *)
val staged_solve :
  method_:Solution.method_ ->
  reduce:Reduce.config ->
  ?row_weights:float array ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  Artifact.store ->
  Fingerprint.t ->
  Matrix.t ->
  Solution.t

(** [run_prebuilt ?config ?pool ?budget ?store ?fingerprint sim tpg
    ~initial ~targets] is the back half of {!run} — covering, end-game
    and Section-4 truncation — over an already-built {!Builder.t}.  The
    trade-off sweep uses it to share one matrix build across grid points.
    [pool] drives the portfolio method's racing legs (other methods
    ignore it).  [fingerprint] is the {e matrix-stage} fingerprint of
    [initial] (i.e. {!Builder.fingerprint} of the inputs that produced
    it); when both it and [store] are present the reduce/solve/truncate
    stages are memoised exactly as in {!run}.  [elapsed_s] and
    [fault_sims] cover this half only, plus [initial.fault_sims]. *)
val run_prebuilt :
  ?config:config ->
  ?pool:Pool.t ->
  ?budget:Budget.t ->
  ?store:Artifact.store ->
  ?fingerprint:Fingerprint.t ->
  Fault_sim.t ->
  Tpg.t ->
  initial:Builder.t ->
  targets:Bitvec.t ->
  result

(** [verify sim tpg r] re-simulates the final truncated reseeding from
    scratch and checks it covers the whole target list.  Used by tests
    and examples as the end-to-end oracle. *)
val verify : Fault_sim.t -> Tpg.t -> result -> bool
