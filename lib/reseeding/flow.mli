(** The complete reseeding computation flow of Figure 1:

    ATPG test set + fault list → Initial Reseeding Builder → Detection
    Matrix → Matrix Reducer (essentiality + dominance) → exact solver on
    the residual → final reseeding solution [N], with the test-length
    accounting of Section 4 (per-triplet truncation of the trailing
    patterns that add no coverage). *)

open Reseed_fault
open Reseed_setcover
open Reseed_tpg
open Reseed_util

type objective =
  | Min_triplets
      (** the paper's objective: minimise the number of reseedings (ROM
          area for storing triplets) *)
  | Min_test_length
      (** extension: minimise the estimated global test length instead,
          using each triplet's useful burst length as its cost *)

type config = {
  builder : Builder.config;
  method_ : Solution.method_;
  reduce : Reduce.config;
  objective : objective;
}

val default_config : config

type result = {
  tpg_name : string;
  initial : Builder.t;  (** the initial reseeding and its matrix *)
  solution : Solution.t;  (** selected row indices + pipeline stats *)
  final_triplets : Triplet.t list;  (** truncated, in application order *)
  test_length : int;  (** Σ truncated burst lengths *)
  uniform_test_length : int;  (** |N| × max burst length (uniform-T mode) *)
  coverage_pct : float;  (** over the target list F — 100 by construction *)
  fault_sims : int;  (** total injections for matrix + accounting *)
  elapsed_s : float;
}

(** [reseedings r] is the paper's “#Triplets”. *)
val reseedings : result -> int

(** [run ?config ?pool sim tpg ~tests ~targets] executes the whole flow.
    [tests] is the deterministic test set (ATPGTS), [targets] the fault
    list F.  [pool] is forwarded to the parallel Detection-Matrix build
    ({!Builder.build}). *)
val run :
  ?config:config ->
  ?pool:Pool.t ->
  Fault_sim.t ->
  Tpg.t ->
  tests:bool array array ->
  targets:Bitvec.t ->
  result

(** [verify sim tpg r] re-simulates the final truncated reseeding from
    scratch and checks it covers the whole target list.  Used by tests
    and examples as the end-to-end oracle. *)
val verify : Fault_sim.t -> Tpg.t -> result -> bool
