(** Reseeding triplets [(δ, σ, T)].

    One triplet fully determines one TPG burst: seed the state register
    with [δ], hold the operand register at [σ], clock for [cycles] = [T].
    A reseeding solution is a list of triplets applied back to back
    (Section 2 of the paper). *)

open Reseed_util

type t = { seed : Word.t; operand : Word.t; cycles : int }

(** [make ~seed ~operand ~cycles] checks widths match and [cycles >= 1]. *)
val make : seed:Word.t -> operand:Word.t -> cycles:int -> t

(** [patterns tpg t] is the burst emitted by [tpg] under triplet [t], as
    simulator-ready bit patterns ([t.cycles] of them). *)
val patterns : Tpg.t -> t -> bool array array

(** [truncate t cycles] shortens the burst (["deleting the last
    subsequence of patterns not contributing to the fault coverage"],
    Section 4).  [cycles] must be in [\[1, t.cycles\]]. *)
val truncate : t -> int -> t

(** [storage_bits t] is the ROM cost of the triplet: |δ| + |σ| plus the
    ceil(log2 T) bits (at least one) of the cycle counter. *)
val storage_bits : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
