open Reseed_util

type t = { seed : Word.t; operand : Word.t; cycles : int }

let make ~seed ~operand ~cycles =
  if Word.width seed <> Word.width operand then
    invalid_arg "Triplet.make: seed/operand width mismatch";
  if cycles < 1 then invalid_arg "Triplet.make: cycles must be >= 1";
  { seed; operand; cycles }

let patterns tpg t = Tpg.run_bits tpg ~seed:t.seed ~operand:t.operand ~cycles:t.cycles

let truncate t cycles =
  if cycles < 1 || cycles > t.cycles then invalid_arg "Triplet.truncate: bad cycle count";
  { t with cycles }

let storage_bits t =
  (* A T-cycle burst needs a counter with T distinct states, i.e.
     ceil(log2 T) bits — floor(log2 T) + 1 overcounts by one whenever T
     is a power of two.  At least one bit even for T = 1. *)
  let counter_bits =
    let rec go n acc = if n <= 1 then acc else go ((n + 1) / 2) (acc + 1) in
    max 1 (go t.cycles 0)
  in
  Word.width t.seed + Word.width t.operand + counter_bits

let equal a b = Word.equal a.seed b.seed && Word.equal a.operand b.operand && a.cycles = b.cycles

let pp ppf t =
  Format.fprintf ppf "(δ=%a, σ=%a, T=%d)" Word.pp t.seed Word.pp t.operand t.cycles
