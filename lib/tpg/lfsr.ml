open Reseed_util

(* Parity of the bits of [w] selected by [mask]. *)
let masked_parity state mask =
  Word.popcount (Word.logand state mask) land 1 = 1

let shift_in state bit =
  let shifted = Word.shift_left state 1 in
  Word.set_bit shifted 0 bit

let fibonacci width taps =
  if taps = [] then invalid_arg "Lfsr.fibonacci: empty tap list";
  List.iter
    (fun t ->
      if t < 0 || t >= width then invalid_arg "Lfsr.fibonacci: tap out of range")
    taps;
  let mask =
    List.fold_left (fun acc t -> Word.set_bit acc t true) (Word.zero width) taps
  in
  Tpg.make ~name:"lfsr" ~width (fun ~state ~operand:_ ->
      shift_in state (masked_parity state mask))

let multi_polynomial width =
  Tpg.make ~name:"mp-lfsr" ~width (fun ~state ~operand ->
      shift_in state (masked_parity state operand))

let m_fallback =
  Metrics.counter
    ~help:"LFSR widths served non-primitive fallback taps" "lfsr_fallback_taps"

(* Tap tables for primitive polynomials, all widths 2..64 (Xilinx
   XAPP052 convention, converted to 0-based bit positions).  Every
   circuit in {!Library.catalog} with <= 64 inputs gets a
   maximal-period register; wider PI counts fall back to the
   non-primitive [x^width + x + 1] taps, flagged in the metrics
   registry so short LFSR orbits are visible instead of silently
   shrinking the reachable pattern space. *)
let default_taps width =
  match width with
  | 2 -> [ 1; 0 ]
  | 3 -> [ 2; 1 ]
  | 4 -> [ 3; 2 ]
  | 5 -> [ 4; 2 ]
  | 6 -> [ 5; 4 ]
  | 7 -> [ 6; 5 ]
  | 8 -> [ 7; 5; 4; 3 ]
  | 9 -> [ 8; 4 ]
  | 10 -> [ 9; 6 ]
  | 11 -> [ 10; 8 ]
  | 12 -> [ 11; 5; 3; 0 ]
  | 13 -> [ 12; 3; 2; 0 ]
  | 14 -> [ 13; 4; 2; 0 ]
  | 15 -> [ 14; 13 ]
  | 16 -> [ 15; 14; 12; 3 ]
  | 17 -> [ 16; 13 ]
  | 18 -> [ 17; 10 ]
  | 19 -> [ 18; 5; 1; 0 ]
  | 20 -> [ 19; 16 ]
  | 21 -> [ 20; 18 ]
  | 22 -> [ 21; 20 ]
  | 23 -> [ 22; 17 ]
  | 24 -> [ 23; 22; 21; 16 ]
  | 25 -> [ 24; 21 ]
  | 26 -> [ 25; 5; 1; 0 ]
  | 27 -> [ 26; 4; 1; 0 ]
  | 28 -> [ 27; 24 ]
  | 29 -> [ 28; 26 ]
  | 30 -> [ 29; 5; 3; 0 ]
  | 31 -> [ 30; 27 ]
  | 32 -> [ 31; 21; 1; 0 ]
  | 33 -> [ 32; 19 ]
  | 34 -> [ 33; 26; 1; 0 ]
  | 35 -> [ 34; 32 ]
  | 36 -> [ 35; 24 ]
  | 37 -> [ 36; 4; 3; 2; 1; 0 ]
  | 38 -> [ 37; 5; 4; 0 ]
  | 39 -> [ 38; 34 ]
  | 40 -> [ 39; 37; 20; 18 ]
  | 41 -> [ 40; 37 ]
  | 42 -> [ 41; 40; 19; 18 ]
  | 43 -> [ 42; 41; 37; 36 ]
  | 44 -> [ 43; 42; 17; 16 ]
  | 45 -> [ 44; 43; 41; 40 ]
  | 46 -> [ 45; 44; 25; 24 ]
  | 47 -> [ 46; 41 ]
  | 48 -> [ 47; 46; 20; 19 ]
  | 49 -> [ 48; 39 ]
  | 50 -> [ 49; 48; 23; 22 ]
  | 51 -> [ 50; 49; 35; 34 ]
  | 52 -> [ 51; 48 ]
  | 53 -> [ 52; 51; 37; 36 ]
  | 54 -> [ 53; 52; 17; 16 ]
  | 55 -> [ 54; 30 ]
  | 56 -> [ 55; 54; 34; 33 ]
  | 57 -> [ 56; 49 ]
  | 58 -> [ 57; 38 ]
  | 59 -> [ 58; 57; 37; 36 ]
  | 60 -> [ 59; 58 ]
  | 61 -> [ 60; 59; 45; 44 ]
  | 62 -> [ 61; 60; 5; 4 ]
  | 63 -> [ 62; 61 ]
  | 64 -> [ 63; 62; 60; 59 ]
  | _ when width >= 2 ->
      Metrics.incr m_fallback;
      Trace.instant "lfsr.fallback_taps"
        ~args:[ ("width", string_of_int width) ];
      [ width - 1; 0 ]
  | _ -> invalid_arg "Lfsr.default_taps: width must be >= 2"
