(** LFSR-based TPG.

    A Fibonacci linear feedback shift register whose feedback polynomial
    is given by its tap positions.  Included to demonstrate that the set
    covering formulation is TPG-agnostic (classical reseeding à la
    Hellebrand et al. uses exactly this structure); the "operand" word of
    the generic {!Tpg.t} interface selects the feedback polynomial, so a
    multiple-polynomial LFSR is one TPG whose operand varies per
    triplet. *)

(** [fibonacci width taps] — [taps] are bit positions (0-based, < width)
    XORed into the bit shifted in.  Raises [Invalid_argument] on an empty
    or out-of-range tap list. *)
val fibonacci : int -> int list -> Tpg.t

(** [multi_polynomial width] — a TPG whose operand word encodes the tap
    mask: state is shifted left by one and the inserted bit is the parity
    of [state land operand].  Seeding with operand [p] runs the LFSR with
    polynomial mask [p], so one hardware module provides a whole family
    of sequences. *)
val multi_polynomial : int -> Tpg.t

(** [default_taps width] is a primitive-polynomial tap set (maximal
    period 2^width - 1) for every width in 2..64, covering all library
    circuits with at most 64 inputs.  Wider registers fall back to the
    non-primitive [[width-1; 0]] taps; each fallback bumps the
    [lfsr_fallback_taps] metric and drops a trace instant so the short
    orbit is visible. *)
val default_taps : int -> int list
