open Reseed_util

let fail ?file ?line fmt = Error.fail ?file ?line Error.Input_error fmt

type statement =
  | Decl_input of string
  | Decl_output of string
  | Def of { net : string; gate : string; args : string list }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '[' || c = ']' || c = '$' || c = '/'

let strip s =
  let n = String.length s in
  let b = ref 0 and e = ref n in
  while !b < n && (s.[!b] = ' ' || s.[!b] = '\t' || s.[!b] = '\r') do incr b done;
  while !e > !b && (s.[!e - 1] = ' ' || s.[!e - 1] = '\t' || s.[!e - 1] = '\r') do decr e done;
  String.sub s !b (!e - !b)

let check_ident ?file lineno s =
  if s = "" then fail ?file ~line:lineno "empty identifier";
  String.iter
    (fun c -> if not (is_ident_char c) then fail ?file ~line:lineno "bad identifier %S" s)
    s;
  s

(* Parse "KIND(a, b, c)" returning (kind, args). *)
let parse_call ?file lineno s =
  match String.index_opt s '(' with
  | None -> fail ?file ~line:lineno "expected gate application in %S" s
  | Some lp ->
      if s.[String.length s - 1] <> ')' then fail ?file ~line:lineno "missing ')' in %S" s;
      let gate = strip (String.sub s 0 lp) in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      let args =
        String.split_on_char ',' inner |> List.map strip |> List.filter (fun a -> a <> "")
      in
      (check_ident ?file lineno gate, List.map (check_ident ?file lineno) args)

let parse_line ?file lineno raw =
  let line =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let line = strip line in
  if line = "" then None
  else
    match String.index_opt line '=' with
    | Some eq ->
        let net = check_ident ?file lineno (strip (String.sub line 0 eq)) in
        let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let gate, args = parse_call ?file lineno rhs in
        Some (Def { net; gate; args })
    | None ->
        let keyword, args = parse_call ?file lineno line in
        let arg =
          match args with
          | [ a ] -> a
          | _ -> fail ?file ~line:lineno "%s expects exactly one net" keyword
        in
        (match String.uppercase_ascii keyword with
        | "INPUT" -> Some (Decl_input arg)
        | "OUTPUT" -> Some (Decl_output arg)
        | other -> fail ?file ~line:lineno "unknown declaration %S" other)

(* Each surviving statement keeps its 1-based source line, so the build
   phase below can point semantic errors at real coordinates. *)
let statements_of_text ?file text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i l ->
         match parse_line ?file (i + 1) l with
         | Some s -> [ (i + 1, s) ]
         | None -> [])
       lines)

(* [scan_dffs = false]: reject DFFs.  [true]: full-scan conversion — a
   flip-flop [q = DFF(d)] becomes pseudo-PI [q] and pseudo-PO [d].
   Every statement carries its source line, so semantic errors (double
   definition, undefined or cyclic nets, bad gate kinds) point at the
   offending statement rather than at "the file". *)
let build ~name ~scan_dffs ?file statements =
  let inputs = ref [] and outputs = ref [] and defs = Hashtbl.create 64 in
  let def_order = ref [] in
  let dffs = ref 0 in
  List.iter
    (fun (line, stmt) ->
      match stmt with
      | Decl_input n -> inputs := (line, n) :: !inputs
      | Decl_output n -> outputs := (line, n) :: !outputs
      | Def { net; gate; args } ->
          if Hashtbl.mem defs net then fail ?file ~line "net %s defined twice" net;
          if String.uppercase_ascii gate = "DFF" then begin
            if not scan_dffs then
              fail ?file ~line
                "net %s: sequential element DFF not supported (use the full-scan core)"
                net;
            match args with
            | [ d ] ->
                incr dffs;
                inputs := (line, net) :: !inputs;
                outputs := (line, d) :: !outputs
            | _ -> fail ?file ~line "net %s: DFF expects exactly one data input" net
          end
          else begin
            Hashtbl.add defs net (line, gate, args);
            def_order := net :: !def_order
          end)
    statements;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let b = Circuit.Builder.create name in
  let handles = Hashtbl.create 64 in
  List.iter
    (fun (line, n) ->
      if Hashtbl.mem defs n then fail ?file ~line "net %s is both INPUT and defined" n;
      Hashtbl.replace handles n (Circuit.Builder.add_input b n))
    inputs;
  (* Topological insertion by DFS over definitions; [visiting] detects
     combinational loops.  [from] is the line of the statement that
     referenced [net], the best coordinate for a missing definition. *)
  let visiting = Hashtbl.create 16 in
  let rec resolve ~from net =
    match Hashtbl.find_opt handles net with
    | Some h -> h
    | None ->
        if Hashtbl.mem visiting net then
          fail ?file ~line:from
            "combinational loop through net %s (a gate depends on its own output)" net;
        (match Hashtbl.find_opt defs net with
        | None ->
            fail ?file ~line:from
              "undefined net %s (referenced but never declared INPUT or defined)" net
        | Some (line, gate, args) ->
            Hashtbl.add visiting net ();
            let fanins = List.map (resolve ~from:line) args in
            Hashtbl.remove visiting net;
            let kind =
              try Gate.kind_of_string gate
              with Invalid_argument m -> fail ?file ~line "net %s: %s" net m
            in
            let h = Circuit.Builder.add_gate b kind fanins net in
            Hashtbl.replace handles net h;
            h)
  in
  List.iter
    (fun net ->
      let line, _, _ = Hashtbl.find defs net in
      ignore (resolve ~from:line net))
    (List.rev !def_order);
  let seen_out = Hashtbl.create 16 in
  List.iter
    (fun (line, net) ->
      if Hashtbl.mem seen_out net then begin
        (* Scan conversion can legitimately surface the same net twice
           (e.g. a state net that already was a primary output). *)
        if not scan_dffs then fail ?file ~line "net %s listed as OUTPUT twice" net
      end
      else begin
        Hashtbl.add seen_out net ();
        Circuit.Builder.mark_output b (resolve ~from:line net)
      end)
    outputs;
  let circuit = try Circuit.Builder.finalize b with Failure m -> fail ?file "%s" m in
  (circuit, !dffs)

let parse ?file ~name text =
  fst (build ~name ~scan_dffs:false ?file (statements_of_text ?file text))

let parse_full_scan ?file ~name text =
  build ~name ~scan_dffs:true ?file (statements_of_text ?file text)

let read_text path =
  try
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with Sys_error m -> fail "cannot read %s: %s" path m

let parse_file path =
  let base = Filename.remove_extension (Filename.basename path) in
  parse ~file:path ~name:base (read_text path)

let parse_file_full_scan path =
  let base = Filename.remove_extension (Filename.basename path) in
  parse_full_scan ~file:path ~name:(base ^ "_core") (read_text path)

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s\n" (Circuit.stats_line c);
  Array.iter (fun i -> Printf.bprintf buf "INPUT(%s)\n" c.nodes.(i).label) c.inputs;
  Array.iter (fun i -> Printf.bprintf buf "OUTPUT(%s)\n" c.nodes.(i).label) c.outputs;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (node : Circuit.node) ->
      match node.kind with
      | Gate.Input -> ()
      | Gate.Const0 | Gate.Const1 ->
          (* .bench has no constants; encode via a self-evident gate on the
             first input would change logic, so refuse loudly. *)
          failwith "Bench_io.to_string: constant nodes are not representable in .bench"
      | kind ->
          Printf.bprintf buf "%s = %s(%s)\n" node.label (Gate.kind_to_string kind)
            (String.concat ", "
               (Array.to_list (Array.map (fun f -> c.nodes.(f).label) node.fanins))))
    c.nodes;
  Buffer.contents buf

let fp_write = Faultpoint.register "bench.write"

let write_file path c =
  (* Serialise before opening the file, so a serialisation failure never
     leaves a truncated netlist behind. *)
  let text = to_string c in
  let data = Faultpoint.mangle fp_write text in
  try
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc data)
  with Sys_error m -> fail "cannot write %s: %s" path m
