type t = {
  node_count : int;
  is_stem : bool array;
  stem : int array;
  stems : int array;
  idom : int array; (* length node_count; -1 = cannot reach the sink *)
}

let sink t = t.node_count

let compute c =
  let n = Circuit.node_count c in
  let is_po = Array.make n false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
  (* A stem bounds a fanout-free region: any node observed at more than one
     place (several fanout edges, or a primary output — which adds an
     implicit observation point beside any fanout), or at none (dead). *)
  let is_stem =
    Array.init n (fun i -> is_po.(i) || Array.length c.Circuit.fanouts.(i) <> 1)
  in
  let stem = Array.make n (-1) in
  for i = n - 1 downto 0 do
    stem.(i) <- (if is_stem.(i) then i else stem.(c.Circuit.fanouts.(i).(0)))
  done;
  let stems = ref [] in
  for i = n - 1 downto 0 do
    if is_stem.(i) then stems := i :: !stems
  done;
  (* Immediate dominators over the fanout DAG augmented with a virtual sink
     [n] fed by every primary output: [idom.(i)] is the unique node every
     path from [i] to an observation point passes through first.  Nodes are
     already in topological order (fanout edges strictly increase), so one
     reverse sweep with the Cooper–Harvey–Kennedy two-finger intersection
     suffices; dominators of a node always have larger indices. *)
  let idom = Array.make (n + 1) (-1) in
  idom.(n) <- n;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      if !a < !b then a := idom.(!a) else b := idom.(!b)
    done;
    !a
  in
  (* Successors that cannot reach the sink lie on no [i] -> sink path and
     therefore never constrain the dominator. *)
  let meet acc s =
    if s <> n && idom.(s) < 0 then acc
    else match acc with -1 -> s | a -> intersect a s
  in
  for i = n - 1 downto 0 do
    let acc = Array.fold_left meet (-1) c.Circuit.fanouts.(i) in
    idom.(i) <- (if is_po.(i) then meet acc n else acc)
  done;
  { node_count = n; is_stem; stem; stems = Array.of_list !stems; idom }

let is_stem t i = t.is_stem.(i)
let stem_of t i = t.stem.(i)
let stems t = t.stems
let stem_count t = Array.length t.stems
let idom t i = t.idom.(i)
let reaches_po t i = t.idom.(i) >= 0
