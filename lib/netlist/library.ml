let c17_bench =
  {|# ISCAS'85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let c17 () = Bench_io.parse ~name:"c17" c17_bench

let ripple_adder n =
  if n < 1 then invalid_arg "Library.ripple_adder: width must be >= 1";
  let b = Circuit.Builder.create (Printf.sprintf "add%d" n) in
  let a = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "b%d" i)) in
  let cin = Circuit.Builder.add_input b "cin" in
  let carry = ref cin in
  let gate = Circuit.Builder.add_gate b in
  for i = 0 to n - 1 do
    let axb = gate Gate.Xor [ a.(i); bb.(i) ] (Printf.sprintf "axb%d" i) in
    let sum = gate Gate.Xor [ axb; !carry ] (Printf.sprintf "s%d" i) in
    let g1 = gate Gate.And [ a.(i); bb.(i) ] (Printf.sprintf "g1_%d" i) in
    let g2 = gate Gate.And [ axb; !carry ] (Printf.sprintf "g2_%d" i) in
    let cout = gate Gate.Or [ g1; g2 ] (Printf.sprintf "c%d" i) in
    Circuit.Builder.mark_output b sum;
    carry := cout
  done;
  Circuit.Builder.mark_output b !carry;
  Circuit.Builder.finalize b

let parity n =
  if n < 2 then invalid_arg "Library.parity: need at least 2 inputs";
  let b = Circuit.Builder.create (Printf.sprintf "parity%d" n) in
  let inputs =
    Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "x%d" i))
  in
  (* Balanced XOR tree. *)
  let counter = ref 0 in
  let rec reduce = function
    | [] -> assert false
    | [ single ] -> single
    | signals ->
        let rec pair acc = function
          | x :: y :: rest ->
              incr counter;
              let g =
                Circuit.Builder.add_gate b Gate.Xor [ x; y ]
                  (Printf.sprintf "p%d" !counter)
              in
              pair (g :: acc) rest
          | [ x ] -> pair (x :: acc) []
          | [] -> List.rev acc
        in
        reduce (pair [] signals)
  in
  Circuit.Builder.mark_output b (reduce (Array.to_list inputs));
  Circuit.Builder.finalize b

let mux_tree k =
  if k < 1 || k > 8 then invalid_arg "Library.mux_tree: k must be in [1, 8]";
  let b = Circuit.Builder.create (Printf.sprintf "mux%d" k) in
  let n = 1 lsl k in
  let data = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "d%d" i)) in
  let sel = Array.init k (fun i -> Circuit.Builder.add_input b (Printf.sprintf "s%d" i)) in
  let gate = Circuit.Builder.add_gate b in
  let counter = ref 0 in
  let fresh prefix = incr counter; Printf.sprintf "%s%d" prefix !counter in
  let sel_not = Array.map (fun s -> gate Gate.Not [ s ] (fresh "ns")) sel in
  (* Level-by-level 2:1 reduction: level j keyed by select bit j. *)
  let rec level j signals =
    match signals with
    | [ single ] -> single
    | _ ->
        let rec pair acc = function
          | x :: y :: rest ->
              let t0 = gate Gate.And [ x; sel_not.(j) ] (fresh "m0_") in
              let t1 = gate Gate.And [ y; sel.(j) ] (fresh "m1_") in
              let o = gate Gate.Or [ t0; t1 ] (fresh "mo_") in
              pair (o :: acc) rest
          | [ x ] -> pair (x :: acc) []
          | [] -> List.rev acc
        in
        level (j + 1) (pair [] signals)
  in
  Circuit.Builder.mark_output b (level 0 (Array.to_list data));
  Circuit.Builder.finalize b

let comparator n =
  if n < 1 then invalid_arg "Library.comparator: width must be >= 1";
  let b = Circuit.Builder.create (Printf.sprintf "cmp%d" n) in
  let a = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "b%d" i)) in
  let gate = Circuit.Builder.add_gate b in
  let eqs =
    Array.to_list
      (Array.init n (fun i -> gate Gate.Xnor [ a.(i); bb.(i) ] (Printf.sprintf "e%d" i)))
  in
  let eq =
    match eqs with
    | [ single ] -> gate Gate.Buf [ single ] "eq"
    | many -> gate Gate.And many "eq"
  in
  (* lt_i: a_i < b_i and all higher bits equal. *)
  let not_a = Array.init n (fun i -> gate Gate.Not [ a.(i) ] (Printf.sprintf "na%d" i)) in
  let eq_arr = Array.of_list eqs in
  let terms = ref [] in
  for i = n - 1 downto 0 do
    let strict = gate Gate.And [ not_a.(i); bb.(i) ] (Printf.sprintf "lt_bit%d" i) in
    let higher = ref [ strict ] in
    for j = i + 1 to n - 1 do
      higher := eq_arr.(j) :: !higher
    done;
    let term =
      match !higher with
      | [ single ] -> single
      | many -> gate Gate.And many (Printf.sprintf "lt_term%d" i)
    in
    terms := term :: !terms
  done;
  let lt =
    match !terms with
    | [ single ] -> gate Gate.Buf [ single ] "lt"
    | many -> gate Gate.Or many "lt"
  in
  Circuit.Builder.mark_output b eq;
  Circuit.Builder.mark_output b lt;
  Circuit.Builder.finalize b

let alu n =
  if n < 1 then invalid_arg "Library.alu: width must be >= 1";
  let b = Circuit.Builder.create (Printf.sprintf "alu%d" n) in
  let a = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "b%d" i)) in
  let s0 = Circuit.Builder.add_input b "op0" in
  let s1 = Circuit.Builder.add_input b "op1" in
  let gate = Circuit.Builder.add_gate b in
  let ns0 = gate Gate.Not [ s0 ] "nop0" in
  let ns1 = gate Gate.Not [ s1 ] "nop1" in
  (* op 00: ADD, 01: AND, 10: OR, 11: XOR *)
  let sel_add = gate Gate.And [ ns0; ns1 ] "sel_add" in
  let sel_and = gate Gate.And [ s0; ns1 ] "sel_and" in
  let sel_or = gate Gate.And [ ns0; s1 ] "sel_or" in
  let sel_xor = gate Gate.And [ s0; s1 ] "sel_xor" in
  let carry = ref sel_xor (* arbitrary 0/1 signal reused as cin = sel_xor? no: *) in
  (* Carry-in must be constant 0; synthesise it as AND(s0, ns0). *)
  let zero = gate Gate.And [ s0; ns0 ] "zero" in
  carry := zero;
  for i = 0 to n - 1 do
    let axb = gate Gate.Xor [ a.(i); bb.(i) ] (Printf.sprintf "axb%d" i) in
    let sum = gate Gate.Xor [ axb; !carry ] (Printf.sprintf "sum%d" i) in
    let g1 = gate Gate.And [ a.(i); bb.(i) ] (Printf.sprintf "cg1_%d" i) in
    let g2 = gate Gate.And [ axb; !carry ] (Printf.sprintf "cg2_%d" i) in
    let cout = gate Gate.Or [ g1; g2 ] (Printf.sprintf "cout%d" i) in
    let t_add = gate Gate.And [ sum; sel_add ] (Printf.sprintf "t_add%d" i) in
    let t_and = gate Gate.And [ g1; sel_and ] (Printf.sprintf "t_and%d" i) in
    let orv = gate Gate.Or [ a.(i); bb.(i) ] (Printf.sprintf "orv%d" i) in
    let t_or = gate Gate.And [ orv; sel_or ] (Printf.sprintf "t_or%d" i) in
    let t_xor = gate Gate.And [ axb; sel_xor ] (Printf.sprintf "t_xor%d" i) in
    let out =
      gate Gate.Or [ t_add; t_and; t_or; t_xor ] (Printf.sprintf "y%d" i)
    in
    Circuit.Builder.mark_output b out;
    carry := cout
  done;
  Circuit.Builder.mark_output b !carry;
  Circuit.Builder.finalize b

(* Published PI/PO/gate profiles.  ISCAS'89 entries describe the full-scan
   combinational core: scan cells appear as extra PI/PO pairs. *)
let raw_catalog =
  [
    (* name,    PIs, POs, gates *)
    ("c17", 5, 2, 6);
    ("c432", 36, 7, 160);
    ("c499", 41, 32, 202);
    ("c880", 60, 26, 383);
    ("c1355", 41, 32, 546);
    ("c1908", 33, 25, 880);
    ("c7552", 207, 108, 3512);
    (* Remaining ISCAS'85 members, not part of the paper's Table 1 but
       included so the library covers the whole benchmark family. *)
    ("c2670", 233, 140, 1193);
    ("c3540", 50, 22, 1669);
    ("c5315", 178, 123, 2307);
    ("c6288", 32, 32, 2416);
    ("s420", 34, 17, 218);
    ("s641", 54, 42, 379);
    ("s820", 23, 24, 289);
    ("s838", 66, 33, 446);
    ("s953", 45, 52, 395);
    ("s1238", 32, 32, 508);
    ("s1423", 91, 79, 657);
    ("s5378", 214, 228, 2779);
    ("s9234", 247, 250, 5597);
    ("s13207", 700, 790, 7951);
    ("s15850", 611, 684, 9772);
  ]

let extended_names = [ "c2670"; "c3540"; "c5315"; "c6288" ]

let full_catalog =
  List.map
    (fun (name, inputs, outputs, gates) ->
      (name, Generator.default_spec name ~inputs ~outputs ~gates))
    raw_catalog

let paper_suite =
  List.filter (fun (name, _) -> not (List.mem name extended_names)) full_catalog

let spec_of name =
  match List.assoc_opt name full_catalog with
  | Some s -> s
  | None ->
      Reseed_util.Error.fail Reseed_util.Error.Input_error
        "unknown circuit %S (catalog: %s)" name
        (String.concat ", " (List.map fst full_catalog))

let scale ~factor (spec : Generator.spec) =
  if factor < 1 then invalid_arg "Library.scale: factor must be >= 1";
  if factor = 1 then spec
  else
    {
      spec with
      Generator.n_inputs = max 2 (spec.Generator.n_inputs / factor);
      n_outputs = max 1 (spec.Generator.n_outputs / factor);
      n_gates = max 8 (spec.Generator.n_gates / factor);
    }

(* Integer sqrt by scan: factors stay <= 64, so this is instant. *)
let isqrt n =
  let r = ref 1 in
  while (!r + 1) * (!r + 1) <= n do
    incr r
  done;
  !r

let scale_up ~factor (spec : Generator.spec) =
  if factor < 1 then invalid_arg "Library.scale_up: factor must be >= 1";
  if factor = 1 then spec
  else begin
    let name = Printf.sprintf "%s_x%d" spec.Generator.name factor in
    (* Gates scale linearly; the interface grows like the square root of
       the logic, Rent-style — real large designs are logic-dominated,
       not pad-dominated.  The seed is re-derived from the new name so
       every xl member is a distinct circuit, not a magnified twin. *)
    let widened = isqrt factor in
    let base =
      Generator.default_spec name
        ~inputs:(spec.Generator.n_inputs * widened)
        ~outputs:(spec.Generator.n_outputs * widened)
        ~gates:(spec.Generator.n_gates * factor)
    in
    { base with Generator.hard_fraction = spec.Generator.hard_fraction }
  end

(* "<base>_x<factor>" resolves to the scaled-up spec of any catalog
   member, e.g. "s1238_x32".  The curated xl suite below names the tier
   the scale bench exercises (~10k-100k universe faults). *)
let parse_xl name =
  match String.rindex_opt name '_' with
  | Some i
    when i + 2 < String.length name
         && name.[i + 1] = 'x'
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub name (i + 2) (String.length name - i - 2)) ->
      let base = String.sub name 0 i in
      let factor = int_of_string (String.sub name (i + 2) (String.length name - i - 2)) in
      if List.mem_assoc base full_catalog && factor >= 2 && factor <= 64 then
        Some (base, factor)
      else None
  | _ -> None

let xl_names = [ "s953_x8"; "s1238_x16"; "s1238_x32"; "c880_x64" ]

let spec_of name =
  match parse_xl name with
  | Some (base, factor) -> scale_up ~factor (spec_of base)
  | None -> spec_of name

let load ?(scale_factor = 1) name =
  if name = "c17" then c17 ()
  else Generator.generate (scale ~factor:scale_factor (spec_of name))

let names = List.map fst paper_suite

let all_names = List.map fst full_catalog
