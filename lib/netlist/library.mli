(** Built-in circuits.

    Three sources:
    - the real ISCAS'85 [c17] netlist (small enough to embed verbatim);
    - structural parametric circuits (adders, parity trees, multiplexer
      trees, comparators, a small ALU) used by examples and tests;
    - the catalog of ISCAS-like synthetic stand-ins for every benchmark in
      the paper's evaluation, generated with the published PI/PO/gate
      profile (see {!Generator} and DESIGN.md for the substitution
      rationale).  For the full-scan ISCAS'89 circuits the profile is the
      combinational core: scan flip-flops count as extra PI/PO pairs. *)

(** The genuine ISCAS'85 c17 netlist (5 PIs, 2 POs, 6 NAND gates). *)
val c17 : unit -> Circuit.t

(** [ripple_adder n] adds two [n]-bit operands with carry-in; outputs the
    [n] sum bits then carry-out.  Inputs: [a0..], [b0..], [cin]. *)
val ripple_adder : int -> Circuit.t

(** [parity n] is an [n]-input XOR tree ([n >= 2]). *)
val parity : int -> Circuit.t

(** [mux_tree k] selects one of [2^k] data inputs by [k] select lines. *)
val mux_tree : int -> Circuit.t

(** [comparator n] compares two [n]-bit operands; outputs [eq] and [lt]
    (unsigned A < B). *)
val comparator : int -> Circuit.t

(** [alu n] is an [n]-bit, 4-operation ALU (ADD, AND, OR, XOR) with two
    select lines; outputs [n] result bits and the adder carry-out. *)
val alu : int -> Circuit.t

(** Paper benchmark suite, in the order of Table 1.  Each entry gives the
    circuit name and its generation spec. *)
val paper_suite : (string * Generator.spec) list

(** [spec_of name] is the catalog spec for an ISCAS benchmark name, or —
    for a name of the form ["<base>_x<factor>"] with a catalog [base] and
    a factor in [2, 64], e.g. ["s1238_x32"] — the {!scale_up} of that
    base.  Raises {!Reseed_util.Error.Reseed_error} ([Input_error]) for
    unknown names, listing the catalog. *)
val spec_of : string -> Generator.spec

(** [scale ~factor spec] shrinks a spec's gate/PI/PO counts by [factor]
    (>= 1), keeping at least 2 inputs / 1 output / 8 gates.  Used for quick
    bench runs on the largest circuits. *)
val scale : factor:int -> Generator.spec -> Generator.spec

(** [scale_up ~factor spec] grows a spec into the 10k-100k-gate tier:
    gates multiply by [factor], the PI/PO interface by [isqrt factor]
    (Rent-style — big designs are logic-dominated), the name gains an
    ["_x<factor>"] suffix and the seed is re-derived from it, so each xl
    member is a distinct deterministic circuit rather than a magnified
    twin of its base. *)
val scale_up : factor:int -> Generator.spec -> Generator.spec

(** The curated xl suite — scaled-up catalog members spanning roughly
    10k to 100k universe faults, smallest first.  All resolvable by
    {!spec_of} / {!load}. *)
val xl_names : string list

(** [load ?scale_factor name] materialises a benchmark: the embedded real
    netlist for ["c17"], otherwise the synthetic ISCAS-like circuit.
    Unknown names fail like {!spec_of}. *)
val load : ?scale_factor:int -> string -> Circuit.t

(** Catalog names appearing in the paper's Table 1, in its order. *)
val names : string list

(** Every loadable circuit, including the ISCAS'85 members the paper does
    not evaluate (c2670, c3540, c5315, c6288). *)
val all_names : string list
