open Reseed_util

type spec = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  seed : int;
  hard_fraction : float;
}

let default_spec name ~inputs ~outputs ~gates =
  (* Seed derived from the name so each benchmark is a distinct circuit. *)
  let seed = String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 name in
  { name; n_inputs = inputs; n_outputs = outputs; n_gates = gates; seed; hard_fraction = 0.06 }

(* Weighted gate-kind mix close to the published ISCAS profiles. *)
let sample_kind rng =
  let r = Rng.int rng 100 in
  if r < 28 then Gate.Nand
  else if r < 44 then Gate.And
  else if r < 58 then Gate.Nor
  else if r < 70 then Gate.Or
  else if r < 82 then Gate.Not
  else if r < 90 then Gate.Xor
  else if r < 95 then Gate.Xnor
  else Gate.Buf

(* Output one-probability under an input-independence assumption.  Used to
   keep internal signals balanced: without this, AND/NOR-heavy random
   structures drift to near-constant nodes within a few levels and the
   whole circuit becomes untestable — unlike any real netlist. *)
let output_prob kind input_probs =
  let p_and = List.fold_left ( *. ) 1.0 input_probs in
  let p_or = 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 input_probs in
  let p_xor =
    List.fold_left (fun acc p -> (acc *. (1.0 -. p)) +. ((1.0 -. acc) *. p)) 0.0 input_probs
  in
  match kind with
  | Gate.Input -> invalid_arg "Generator.output_prob: Input"
  | Gate.Buf -> List.hd input_probs
  | Gate.Not -> 1.0 -. List.hd input_probs
  | Gate.And -> p_and
  | Gate.Nand -> 1.0 -. p_and
  | Gate.Or -> p_or
  | Gate.Nor -> 1.0 -. p_or
  | Gate.Xor -> p_xor
  | Gate.Xnor -> 1.0 -. p_xor
  | Gate.Const0 -> 0.0
  | Gate.Const1 -> 1.0

let generate spec =
  if spec.n_inputs < 2 then invalid_arg "Generator.generate: need at least 2 inputs";
  if spec.n_outputs < 1 then invalid_arg "Generator.generate: need at least 1 output";
  if spec.n_gates < spec.n_outputs then
    invalid_arg "Generator.generate: fewer gates than outputs";
  let rng = Rng.create spec.seed in
  let b = Circuit.Builder.create spec.name in
  (* Real ISCAS circuits are wide and shallow (depth 15-50 over thousands
     of gates).  Build level by level: each gate draws most fanins from
     the previous level and a few from anywhere earlier (reconvergence). *)
  let depth =
    let lg = int_of_float (Float.log2 (float_of_int (max 2 spec.n_gates))) in
    max 6 (min 40 (6 + (2 * lg)))
  in
  let per_level = max 1 ((spec.n_gates + depth - 1) / depth) in
  let unused = Hashtbl.create 256 in
  (* Growable oldest-first array of every signal.  The former signal
     list was converted to an array inside every fanin pick — O(gates²)
     overall, the wall dominating 10k+-gate generation. *)
  let all_signals = ref (Array.make 1024 (-1)) and all_count = ref 0 in
  let prob : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let prev_level = ref [||] in
  let push_all h p =
    if !all_count = Array.length !all_signals then begin
      let bigger = Array.make (2 * !all_count) (-1) in
      Array.blit !all_signals 0 bigger 0 !all_count;
      all_signals := bigger
    end;
    !all_signals.(!all_count) <- h;
    incr all_count;
    Hashtbl.replace unused h ();
    Hashtbl.replace prob h p
  in
  (* Uniform pick over all signals, emulating [Rng.pick] on the
     newest-first array the list used to produce: one [Rng.int] draw,
     index flipped — the RNG stream and the picked signal are identical,
     so every circuit generated before this change is reproduced
     bit-for-bit. *)
  let pick_any () =
    let n = !all_count in
    !all_signals.(n - 1 - Rng.int rng n)
  in
  let inputs =
    Array.init spec.n_inputs (fun i ->
        let h = Circuit.Builder.add_input b (Printf.sprintf "I%d" (i + 1)) in
        push_all h 0.5;
        h)
  in
  prev_level := inputs;
  let fresh_label =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Printf.sprintf "G%d" !counter
  in
  let p_of h = Hashtbl.find prob h in
  let add_gate kind fanins =
    List.iter (fun h -> Hashtbl.remove unused h) fanins;
    let h = Circuit.Builder.add_gate b kind fanins (fresh_label ()) in
    push_all h (output_prob kind (List.map p_of fanins));
    h
  in
  (* Pick [k] distinct fanins: mostly previous level (consuming unused
     signals first so nothing dangles), sometimes any earlier signal. *)
  let pick_fanins k =
    let prev = !prev_level in
    let chosen = Hashtbl.create k in
    let take h = Hashtbl.replace chosen h () in
    let dangling = Array.of_list (List.filter (Hashtbl.mem unused) (Array.to_list prev)) in
    if Array.length dangling > 0 then take (Rng.pick rng dangling);
    let guard = ref 0 in
    while Hashtbl.length chosen < k && !guard < 60 do
      if Rng.int rng 100 < 75 then take (Rng.pick rng prev) else take (pick_any ());
      incr guard
    done;
    List.of_seq (Hashtbl.to_seq_keys chosen)
  in
  (* Among a few sampled kinds, keep the one whose output probability is
     closest to 1/2 given these fanins. *)
  let balanced_kind fanins =
    let probs = List.map p_of fanins in
    let score kind = Float.abs (output_prob kind probs -. 0.5) in
    let candidates = [ sample_kind rng; sample_kind rng; sample_kind rng ] in
    let viable = List.filter (fun k -> Gate.arity_ok k (List.length fanins)) candidates in
    let viable = if viable = [] then [ Gate.Nand ] else viable in
    List.fold_left
      (fun best k -> if score k < score best then k else best)
      (List.hd viable) (List.tl viable)
  in
  let gates_made = ref 0 in
  (* Random-pattern-resistant cores, emitted right after the inputs like
     the address decoders and constant comparators of real designs: a wide
     AND over a window of primary inputs (detection probability 2^-w for
     its stuck-at faults — the "not random testable by 10k patterns"
     regime the paper's evaluation selects for), re-balanced through an
     XOR so the fabric above stays balanced and the core stays perfectly
     observable.  Windows are spread with a stride so tests for different
     cores are mutually compatible and ATPG compaction can merge them —
     as happens in the real ISCAS circuits. *)
  let hard_outputs =
    let n_cores =
      let by_budget =
        int_of_float (spec.hard_fraction *. float_of_int spec.n_gates /. 8.)
      in
      max 2 (min 24 by_budget)
    in
    let max_width = min 16 (spec.n_inputs - 2) in
    if max_width < 4 then []
    else
      List.init n_cores (fun k ->
          let width = min max_width (8 + (k mod 8)) in
          let stride = max 1 (spec.n_inputs / n_cores) in
          let window =
            List.init width (fun j ->
                inputs.(((k * stride) + j) mod spec.n_inputs))
          in
          let window = List.sort_uniq compare window in
          let hard = add_gate Gate.And window in
          let partner = inputs.(((k * stride) + width) mod spec.n_inputs) in
          let partner = if partner = hard then inputs.(0) else partner in
          let obs = add_gate Gate.Xor [ hard; partner ] in
          gates_made := !gates_made + 2;
          obs)
  in
  (* Seed the level stream with the observation points so core effects
     flow through the fabric toward the outputs. *)
  prev_level := Array.append !prev_level (Array.of_list hard_outputs);
  while !gates_made < spec.n_gates do
    let this_level = ref [] in
    let want = min per_level (spec.n_gates - !gates_made) in
    let made_here = ref 0 in
    while !made_here < want do
      begin
        let arity =
          let r = Rng.int rng 100 in
          if r < 12 then 1 else if r < 80 then 2 else 3
        in
        let fanins = pick_fanins arity in
        let kind =
          match fanins with
          | [ _ ] -> if Rng.bool rng then Gate.Not else Gate.Buf
          | _ -> balanced_kind fanins
        in
        this_level := add_gate kind fanins :: !this_level;
        incr made_here;
        incr gates_made
      end
    done;
    prev_level := Array.of_list (List.rev !this_level)
  done;
  (* Fold leftover unused signals into XOR observation trees until at most
     [n_outputs] signals remain unused; these become the primary outputs.
     The old sort-per-step always paired the two smallest handles and
     produced a gate whose handle exceeds every live one — exactly a
     FIFO over the initially-sorted handles, without the re-sorts. *)
  let unused_list () = List.sort compare (List.of_seq (Hashtbl.to_seq_keys unused)) in
  let fold_down () =
    let q = Queue.create () in
    List.iter (fun h -> Queue.add h q) (unused_list ());
    while Queue.length q > spec.n_outputs do
      let a = Queue.pop q in
      let c = Queue.pop q in
      Queue.add (add_gate Gate.Xor [ a; c ]) q
    done;
    List.of_seq (Queue.to_seq q)
  in
  let outs = ref (fold_down ()) in
  (* Newest-first over all signals; prefer deep signals as outputs. *)
  let i = ref 0 in
  while List.length !outs < spec.n_outputs && !i < !all_count do
    let h = !all_signals.(!all_count - 1 - !i) in
    if not (List.mem h !outs) then outs := h :: !outs;
    incr i
  done;
  List.iter (Circuit.Builder.mark_output b) !outs;
  Circuit.Builder.finalize b
