(** Fanout-free region (FFR) decomposition and fanout-graph dominators.

    A *stem* is any node whose value is observed at more than one place —
    several fanout edges (including two pins of the same gate), or a
    primary output — or at none at all (dead logic).  Every other node has
    exactly one fanout edge, so the set of nodes funnelling into a given
    stem forms a fanout-free region: all paths from an FFR-internal node
    to any primary output pass through the region's stem, single-file.

    This is the static backbone of critical-path-tracing fault
    simulation: inside an FFR, fault effects propagate along a unique
    path, so per-pattern detectability follows from good-machine values
    alone; only stems need genuine propagation analysis.

    The module also builds an immediate-dominator tree over the fanout
    DAG augmented with a virtual sink fed by every primary output.
    [idom i] is the first node that every path from [i] to an observation
    point must cross — the point where a stem's fault effects are known
    to reconverge, which lets a simulator hand off to already-computed
    downstream observability. *)

type t

(** [compute c] runs the whole analysis in one pass over the circuit
    (linear in edges, near-linear for the dominator sweep). *)
val compute : Circuit.t -> t

(** [is_stem t i] — [i] bounds a fanout-free region (fanout edge count
    differs from one, or [i] drives a primary output). *)
val is_stem : t -> int -> bool

(** [stem_of t i] is the stem of [i]'s fanout-free region: [i] itself when
    [is_stem t i], otherwise the stem reached by following the unique
    fanout edges. *)
val stem_of : t -> int -> int

(** [stems t] is the ascending array of all stem nodes. *)
val stems : t -> int array

val stem_count : t -> int

(** [idom t i] is the immediate dominator of [i] on paths to the virtual
    sink: a node index, {!sink} when the paths share no interior node (or
    [i] drives a primary output and fans out besides), or [-1] when [i]
    cannot reach any primary output. *)
val idom : t -> int -> int

(** [sink t] is the virtual sink's id, [Circuit.node_count c]. *)
val sink : t -> int

(** [reaches_po t i] — some path from [i] reaches a primary output
    (equivalently, [idom t i >= 0]). *)
val reaches_po : t -> int -> bool
