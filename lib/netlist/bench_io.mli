(** Reader and writer for the ISCAS [.bench] netlist format.

    The format used by the ISCAS'85/'89 benchmark distributions:

    {v
    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = DFF(G10)        # rejected: circuits must be combinational
    v}

    Definitions may appear in any order; the reader topologically sorts
    them.  [DFF]s are rejected — the paper (and this library) work on the
    combinational cores of full-scan circuits, where every flip-flop has
    already been turned into a PI/PO pair (see {!Generator}). *)

(** Malformed input — syntax errors, bad identifiers, double definitions,
    undefined or cyclic nets, sequential elements in combinational mode —
    raises {!Reseed_util.Error.Reseed_error} with code [Input_error], the
    1-based source line of the offending statement, and (for the
    [*_file] entry points) the file name. *)

(** [parse ?file ~name text] builds a circuit from [.bench] source;
    [file] only decorates error messages. *)
val parse : ?file:string -> name:string -> string -> Circuit.t

(** [parse_full_scan ?file ~name text] accepts sequential [.bench] sources and
    performs the full-scan transformation the paper applies to the
    ISCAS'89 circuits: every [q = DFF(d)] becomes a pseudo primary input
    [q] (the scanned-in state) plus a pseudo primary output on [d] (the
    scanned-out next state).  The result is the combinational core.
    Returns the core and the number of converted flip-flops. *)
val parse_full_scan : ?file:string -> name:string -> string -> Circuit.t * int

(** [parse_file path] reads and parses [path]; the circuit is named after
    the file's basename without extension.  An unreadable file raises the
    same [Input_error] as a malformed one. *)
val parse_file : string -> Circuit.t

(** [parse_file_full_scan path] is {!parse_full_scan} over [path]'s
    contents; the core is named [<basename>_core]. *)
val parse_file_full_scan : string -> Circuit.t * int

(** [to_string c] renders a circuit back to [.bench] text.  Output nets
    that are also inputs or need aliasing are emitted through [BUF]s, so
    [parse (to_string c)] is structurally equivalent to [c]. *)
val to_string : Circuit.t -> string

(** [write_file path c] writes [to_string c] to [path]. *)
val write_file : string -> Circuit.t -> unit
