(** Typed counter/gauge registry for flow-wide work accounting.

    One process-wide registry.  Counters are monotonically increasing
    atomic ints safe to advance from any domain; gauges hold a last-set
    float.  The convention throughout the pipeline: hot loops keep their
    private per-shard tallies (bit-identity and zero contention) and
    publish {e deltas} here at phase boundaries — a fault-simulation
    sweep ending, a solver returning, shards merging — so the registry
    is always consistent at the points where it is read.

    Registration is idempotent by name, so modules declare their metrics
    at toplevel:
    {[ let m_sims = Metrics.counter ~help:"fault simulations" "fault_sims" ]}

    Export: {!to_json} (flat [{"name": value}] object, also embedded into
    [BENCH_reseed.json]) or {!to_ndjson} (one self-describing object per
    line); [--metrics FILE] on the CLI picks by extension. *)

type counter
type gauge

(** A snapshot value: counters are ints, gauges floats. *)
type value = Counter_v of int | Gauge_v of float

(** [counter ?help name] returns the counter registered under [name],
    creating it at zero on first call.  Raises [Invalid_argument] if
    [name] is already a gauge. *)
val counter : ?help:string -> string -> counter

(** [gauge ?help name] — gauge analogue of {!counter}. *)
val gauge : ?help:string -> string -> gauge

val incr : counter -> unit

(** [add c n] advances [c] by [n] ([n = 0] is free; negative deltas are
    not checked but break the monotonic reading). *)
val add : counter -> int -> unit

val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val counter_name : counter -> string
val gauge_name : gauge -> string

(** [snapshot ()] is every registered metric, sorted by name. *)
val snapshot : unit -> (string * value) list

(** [get name] is the current value of the metric named [name]. *)
val get : string -> value option

(** [help name] is the help string given at registration. *)
val help : string -> string option

(** [reset ()] zeroes every metric, keeping registrations.  Test-only:
    concurrent writers make the zeroing point ill-defined. *)
val reset : unit -> unit

(** [to_json ()] — flat JSON object [{"metric": value, ...}]. *)
val to_json : unit -> string

(** [to_ndjson ()] — one [{"name":..,"type":..,"value":..}] per line. *)
val to_ndjson : unit -> string

(** [write_file path] writes {!to_ndjson} when [path] ends in
    [.ndjson], {!to_json} otherwise. *)
val write_file : string -> unit
