external peak_rss_kb : unit -> int = "reseed_peak_rss_kb"

let peak_kb () =
  let kb = peak_rss_kb () in
  if kb < 0 then None else Some kb
