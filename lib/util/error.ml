type code =
  | Usage
  | Input_error
  | Infeasible
  | Task_failed
  | Interrupted
  | Internal

type t = {
  code : code;
  message : string;
  file : string option;
  line : int option;
  column : int option;
}

exception Reseed_error of t

let exit_code = function
  | Usage -> 2
  | Input_error -> 3
  | Infeasible -> 4
  | Task_failed -> 5
  | Internal -> 70
  | Interrupted -> 130

let code_name = function
  | Usage -> "usage"
  | Input_error -> "input"
  | Infeasible -> "infeasible"
  | Task_failed -> "task"
  | Interrupted -> "interrupted"
  | Internal -> "internal"

let fail ?file ?line ?column code fmt =
  Printf.ksprintf
    (fun message -> raise (Reseed_error { code; message; file; line; column }))
    fmt

let to_string e =
  let b = Buffer.create 64 in
  (match e.file with
  | Some f -> Buffer.add_string b (f ^ ":")
  | None -> ());
  (match e.line with
  | Some l ->
      Buffer.add_string b (string_of_int l ^ ":");
      (match e.column with
      | Some c -> Buffer.add_string b (string_of_int c ^ ":")
      | None -> ())
  | None -> ());
  if Buffer.length b > 0 then Buffer.add_char b ' ';
  Buffer.add_string b e.message;
  Buffer.contents b

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Reseed_error e -> Some (Printf.sprintf "Reseed_error(%s: %s)" (code_name e.code) (to_string e))
    | _ -> None)
