/* Peak resident set size via getrusage(2), for the scale-tier bench.
   ru_maxrss is kilobytes on Linux and bytes on macOS. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value reseed_peak_rss_kb(value unit)
{
  struct rusage ru;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return Val_long(-1);
#ifdef __APPLE__
  return Val_long(ru.ru_maxrss / 1024);
#else
  return Val_long(ru.ru_maxrss);
#endif
}
