(* Deterministic fault injection behind named points.

   Production code registers a point once at module toplevel and calls
   [hit] (control points) or [mangle] (data points) wherever a failure
   could strike in the field: an IO syscall, a worker task, a publish
   step.  With no schedule configured — the default — both cost a single
   atomic load, exactly like a disabled [Trace] span, so the points stay
   in the hot paths permanently.

   A schedule is an env var / CLI spec ([RESEED_CHAOS] / [--chaos]):

     <seed>:<point>=<kind>[:<arg>][@<sel>][,<rule>...]

   and is deterministic: nth-hit selectors count a per-point atomic hit
   counter, probabilistic selectors draw from a per-point splitmix64
   stream seeded by (seed, point name).  Reconfiguring resets every
   counter and stream, so equal seeds replay equal schedules. *)

type kind = Eio | Enospc | Torn | Flip | Fail | Latency | Abort

let kind_name = function
  | Eio -> "eio"
  | Enospc -> "enospc"
  | Torn -> "torn"
  | Flip -> "flip"
  | Fail -> "fail"
  | Latency -> "latency"
  | Abort -> "abort"

let kind_of_name = function
  | "eio" -> Some Eio
  | "enospc" -> Some Enospc
  | "torn" -> Some Torn
  | "flip" -> Some Flip
  | "fail" -> Some Fail
  | "latency" -> Some Latency
  | "abort" -> Some Abort
  | _ -> None

let all_kinds = [ Eio; Enospc; Torn; Flip; Fail; Latency; Abort ]
let abort_exit_code = 66

exception Injected of { point : string; fault : string }

let () =
  Printexc.register_printer (function
    | Injected { point; fault } ->
        Some (Printf.sprintf "Faultpoint.Injected(%s at %s)" fault point)
    | _ -> None)

type selector = Every | Nth of int | Prob of float

type rule = { pattern : string; kind : kind; arg : float option; sel : selector }

type config = { seed : int; rules : rule list }

type t = {
  pname : string;
  hits : int Atomic.t;
  mutable active : rule list;  (* rules whose pattern matches [pname] *)
  mutable rng : Rng.t;  (* per-point stream for [Prob] selectors *)
  rng_m : Mutex.t;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let current : config option ref = ref None
let registry : t list ref = ref []
let registry_m = Mutex.create ()

(* "*" matches everything; a trailing "*" matches by prefix. *)
let matches pattern name =
  pattern = name
  ||
  let np = String.length pattern in
  np > 0
  && pattern.[np - 1] = '*'
  && String.length name >= np - 1
  && String.sub name 0 (np - 1) = String.sub pattern 0 (np - 1)

let point_seed seed name =
  Int64.to_int
    (Fingerprint.string (Fingerprint.int (Fingerprint.salted "chaos") seed) name)
  land max_int

(* Call with [registry_m] held. *)
let apply_config t =
  (match !current with
  | None -> t.active <- []
  | Some c ->
      t.active <- List.filter (fun r -> matches r.pattern t.pname) c.rules;
      t.rng <- Rng.create (point_seed c.seed t.pname));
  Atomic.set t.hits 0

let register name =
  Mutex.lock registry_m;
  let t =
    match List.find_opt (fun t -> t.pname = name) !registry with
    | Some t -> t
    | None ->
        let t =
          {
            pname = name;
            hits = Atomic.make 0;
            active = [];
            rng = Rng.create 0;
            rng_m = Mutex.create ();
          }
        in
        apply_config t;
        registry := t :: !registry;
        t
  in
  Mutex.unlock registry_m;
  t

let name t = t.pname
let hit_count t = Atomic.get t.hits

let all () =
  Mutex.lock registry_m;
  let names = List.map (fun t -> t.pname) !registry in
  Mutex.unlock registry_m;
  List.sort compare names

(* --- spec parsing ----------------------------------------------------- *)

let parse_rule s =
  let bad fmt = Error.fail Error.Usage fmt in
  match String.index_opt s '=' with
  | None -> bad "chaos rule %S: expected POINT=KIND[:ARG][@SEL]" s
  | Some eq ->
      let pattern = String.trim (String.sub s 0 eq) in
      if pattern = "" then bad "chaos rule %S: empty point name" s;
      let rest = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
      let rest, sel =
        match String.index_opt rest '@' with
        | None -> (rest, Every)
        | Some at ->
            let sv = String.sub rest (at + 1) (String.length rest - at - 1) in
            let sel =
              if String.length sv > 0 && sv.[0] = 'p' then
                match float_of_string_opt (String.sub sv 1 (String.length sv - 1)) with
                | Some p when 0. <= p && p <= 1. -> Prob p
                | _ -> bad "chaos rule %S: bad probability %S (want @p0.0-1.0)" s sv
              else
                match int_of_string_opt sv with
                | Some n when n >= 1 -> Nth n
                | _ -> bad "chaos rule %S: bad hit selector %S (want @N or @pP)" s sv
            in
            (String.sub rest 0 at, sel)
      in
      let kname, arg =
        match String.index_opt rest ':' with
        | None -> (rest, None)
        | Some c -> (
            let av = String.sub rest (c + 1) (String.length rest - c - 1) in
            match float_of_string_opt av with
            | Some f when f >= 0. -> (String.sub rest 0 c, Some f)
            | _ -> bad "chaos rule %S: bad argument %S (non-negative number)" s av)
      in
      let kind =
        match kind_of_name (String.trim kname) with
        | Some k -> k
        | None ->
            bad "chaos rule %S: unknown fault %S (want %s)" s kname
              (String.concat "|" (List.map kind_name all_kinds))
      in
      { pattern; kind; arg; sel }

let parse_spec spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map parse_rule

let reapply () =
  Mutex.lock registry_m;
  List.iter apply_config !registry;
  Mutex.unlock registry_m

let configure ~seed ~spec =
  let rules = parse_spec spec in
  if rules = [] then
    Error.fail Error.Usage "chaos spec %S defines no rules" spec;
  current := Some { seed; rules };
  reapply ();
  Atomic.set enabled_flag true

let configure_string s =
  match String.index_opt s ':' with
  | None ->
      Error.fail Error.Usage "chaos spec %S: expected <seed>:<point>=<kind>,..." s
  | Some c -> (
      match int_of_string_opt (String.trim (String.sub s 0 c)) with
      | Some seed ->
          configure ~seed ~spec:(String.sub s (c + 1) (String.length s - c - 1))
      | None ->
          Error.fail Error.Usage "chaos spec %S: bad seed %S (integer expected)" s
            (String.sub s 0 c))

let disable () =
  Atomic.set enabled_flag false;
  current := None;
  reapply ()

(* --- injection --------------------------------------------------------- *)

let m_injected = Metrics.counter ~help:"chaos faults injected" "chaos_injected"

let selected t rule hit =
  match rule.sel with
  | Every -> true
  | Nth n -> hit = n
  | Prob p ->
      Mutex.lock t.rng_m;
      let x = Rng.float t.rng in
      Mutex.unlock t.rng_m;
      x < p

let flip_bit data hit =
  if data = "" then data
  else begin
    let b = Bytes.of_string data in
    let bit = hit * 7919 mod (8 * Bytes.length b) in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

(* One hit of point [t]: every matching rule fires in spec order.
   Control faults raise or abort; data faults transform [data]. *)
let fire t data =
  let hit = 1 + Atomic.fetch_and_add t.hits 1 in
  let data = ref data in
  List.iter
    (fun r ->
      if selected t r hit then begin
        Metrics.incr m_injected;
        Trace.instant "faultpoint.hit"
          ~args:
            [
              ("point", t.pname);
              ("fault", kind_name r.kind);
              ("hit", string_of_int hit);
            ];
        match r.kind with
        | Latency -> Unix.sleepf (Option.value r.arg ~default:0.01)
        | Eio -> raise (Unix.Unix_error (Unix.EIO, "chaos", t.pname))
        | Enospc -> raise (Unix.Unix_error (Unix.ENOSPC, "chaos", t.pname))
        | Fail -> raise (Injected { point = t.pname; fault = "fail" })
        | Abort ->
            Printf.eprintf "reseed: chaos: abort injected at %s (hit %d)\n%!"
              t.pname hit;
            Unix._exit abort_exit_code
        | Torn -> (
            match !data with
            | None -> ()
            | Some d ->
                let frac = Option.value r.arg ~default:0.5 in
                let keep =
                  max 0 (min (String.length d)
                           (int_of_float (frac *. float_of_int (String.length d))))
                in
                data := Some (String.sub d 0 keep))
        | Flip -> (
            match !data with
            | None -> ()
            | Some d -> data := Some (flip_bit d hit))
      end)
    t.active;
  !data

let hit t = if Atomic.get enabled_flag then ignore (fire t None)

let mangle t data =
  if not (Atomic.get enabled_flag) then data
  else match fire t (Some data) with Some d -> d | None -> data

(* A malformed RESEED_CHAOS must not silently run without chaos: report
   and exit with the documented usage code before any work starts. *)
let () =
  match Sys.getenv_opt "RESEED_CHAOS" with
  | Some s when String.trim s <> "" -> (
      try configure_string s
      with Error.Reseed_error e ->
        Printf.eprintf "reseed: RESEED_CHAOS: %s\n%!" (Error.to_string e);
        exit (Error.exit_code e.Error.code))
  | _ -> ()
