(* Span tracer with per-domain buffers.

   Every domain (the caller and each Pool worker) appends completed spans
   to its own buffer, created lazily through domain-local storage and
   registered once under a mutex — recording never contends, whatever the
   job count.  Buffers are merged only at export time, after the parallel
   work has joined.  Timestamps come from the monotonic clock
   (CLOCK_MONOTONIC via bechamel's no-alloc stub), so spans are immune to
   wall-clock jumps.  When the tracer is disabled — the default — a span
   costs one atomic load and nothing else: no clock read, no allocation. *)

type event = {
  name : string;
  ph : char;  (* 'X' complete span, 'i' instant *)
  ts_ns : int64;  (* start, ns since [enable] *)
  dur_ns : int64;  (* span duration, 0 for instants *)
  tid : int;  (* recording domain id *)
  args : (string * string) list;
}

let dummy = { name = ""; ph = 'X'; ts_ns = 0L; dur_ns = 0L; tid = 0; args = [] }

type buffer = { mutable events : event array; mutable len : int }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Trace epoch: subtracted from every timestamp so exported traces start
   near zero.  Written by [enable]/[reset] only (single-domain phases). *)
let epoch = ref 0L

let now_ns () = Monotonic_clock.now ()

let registry : buffer list ref = ref []
let registry_m = Mutex.create ()

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { events = Array.make 256 dummy; len = 0 } in
      Mutex.lock registry_m;
      registry := b :: !registry;
      Mutex.unlock registry_m;
      b)

let push e =
  let b = Domain.DLS.get buffer_key in
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- e;
  b.len <- b.len + 1

let record_span ~name ~args ~start ~stop =
  push
    {
      name;
      ph = 'X';
      ts_ns = Int64.sub start !epoch;
      dur_ns = Int64.sub stop start;
      tid = (Domain.self () :> int);
      args;
    }

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let start = now_ns () in
    match f () with
    | v ->
        record_span ~name ~args ~start ~stop:(now_ns ());
        v
    | exception e ->
        record_span ~name ~args ~start ~stop:(now_ns ());
        raise e
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then
    push
      {
        name;
        ph = 'i';
        ts_ns = Int64.sub (now_ns ()) !epoch;
        dur_ns = 0L;
        tid = (Domain.self () :> int);
        args;
      }

let reset () =
  Mutex.lock registry_m;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_m;
  epoch := now_ns ()

let enable () =
  if not (Atomic.get enabled_flag) then begin
    if !epoch = 0L then epoch := now_ns ();
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

(* Merged view of every domain's buffer.  Only sound once the recording
   work has joined (Pool regions complete); sorted by start time with
   longer spans first so a parent always precedes the children it
   encloses. *)
let events () =
  Mutex.lock registry_m;
  let bufs = !registry in
  Mutex.unlock registry_m;
  let all =
    List.concat_map (fun b -> Array.to_list (Array.sub b.events 0 b.len)) bufs
  in
  List.sort
    (fun a b ->
      let c = Int64.compare a.ts_ns b.ts_ns in
      if c <> 0 then c
      else
        let c = Int64.compare b.dur_ns a.dur_ns in
        if c <> 0 then c else compare (a.tid, a.name) (b.tid, b.name))
    all

let span_names () = List.map (fun e -> e.name) (events ())

(* --- Chrome trace_event JSON export ----------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Chrome's "ts"/"dur" are microseconds; emit ns precision as µs.nnn. *)
let add_us buf ns =
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L)
       (Int64.rem (Int64.abs ns) 1000L))

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n{\"name\":";
      add_json_string buf e.name;
      Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%c\",\"ts\":" e.ph);
      add_us buf e.ts_ns;
      if e.ph = 'X' then begin
        Buffer.add_string buf ",\"dur\":";
        add_us buf e.dur_ns
      end
      else Buffer.add_string buf ",\"s\":\"t\"";
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.tid);
      if e.args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            add_json_string buf k;
            Buffer.add_char buf ':';
            add_json_string buf v)
          e.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ()))
