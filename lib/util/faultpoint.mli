(** Deterministic fault injection behind named points.

    The chaos layer that crash-consistency testing drives: production
    code registers an injection point once at module toplevel

    {[ let fp_write = Faultpoint.register "artifact.write" ]}

    and calls {!hit} (control points: syscalls, task dispatch, publish
    steps) or {!mangle} (data points: payloads about to be written or
    just read) where a real-world failure could strike.  With no
    schedule configured — the default — both cost a single atomic load,
    like a disabled {!Trace} span, so the points live in production
    paths permanently.

    A schedule comes from the [RESEED_CHAOS] environment variable or the
    [--chaos] CLI flag, both of the form

    {v <seed>:<point>=<kind>[:<arg>][@<sel>][,<rule>...] v}

    - {b point}: a registered name, or a prefix wildcard
      ([artifact.*], or [*] alone for every point);
    - {b kind}: [eio] | [enospc] (raise [Unix.Unix_error] as the real
      syscall would) | [torn] (truncate the mangled payload to [arg]
      fraction, default 0.5) | [flip] (flip one deterministic payload
      bit) | [fail] (raise {!Injected}) | [latency] (sleep [arg]
      seconds, default 0.01) | [abort] (hard [Unix._exit]
      {!abort_exit_code} — a crashpoint: no [at_exit], like a kill);
    - {b sel}: [@N] fires on exactly the Nth hit of the point (1-based),
      [@pP] fires each hit with probability [P] drawn from a per-point
      stream seeded by ([seed], point name), absent = every hit.

    The schedule is deterministic: equal seeds and equal hit sequences
    replay equal injections.  {!configure} resets every per-point hit
    counter and probability stream.

    Work accounting: every injection bumps the [chaos_injected] counter
    and records a [faultpoint.hit] trace instant. *)

type kind = Eio | Enospc | Torn | Flip | Fail | Latency | Abort

(** Raised by [fail]-kind injections (and by nothing else): a synthetic
    task failure with no real-IO analogue. *)
exception Injected of { point : string; fault : string }

(** Process exit status of an [abort] crashpoint (documented in the
    README exit-code table). *)
val abort_exit_code : int

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

(** A registered injection point. *)
type t

(** [register name] returns the point registered under [name], creating
    it on first call (idempotent, thread-safe).  Call at module
    toplevel so {!all} can enumerate the catalog before any work runs. *)
val register : string -> t

val name : t -> string

(** [hit_count t] — hits since the last {!configure}/{!disable}. *)
val hit_count : t -> int

(** [all ()] is every registered point name, sorted — the catalog the
    chaos harness sweeps. *)
val all : unit -> string list

(** [enabled ()] — whether a schedule is active. *)
val enabled : unit -> bool

(** [configure ~seed ~spec] installs a schedule (rules as above, comma
    separated) and resets all hit counters and probability streams.
    Raises {!Error.Reseed_error} ([Usage]) on a malformed or empty
    spec. *)
val configure : seed:int -> spec:string -> unit

(** [configure_string s] parses ["<seed>:<spec>"] — the [RESEED_CHAOS] /
    [--chaos] syntax — and {!configure}s it. *)
val configure_string : string -> unit

(** [disable ()] removes the schedule; points return to the one-load
    fast path. *)
val disable : unit -> unit

(** [hit t] — pass a control point: injects latency, IO errors,
    {!Injected} failures or an abort when the schedule selects this
    hit; no-op (one atomic load) otherwise. *)
val hit : t -> unit

(** [mangle t data] — pass a data point: like {!hit}, and additionally
    applies [torn]/[flip] transformations to [data].  Returns [data]
    unchanged when nothing fires. *)
val mangle : t -> string -> string
