type t = { len : int; words : int array }

let bits_per_word = 62

(* All 62 payload bits of a word; equals [max_int] on 64-bit platforms. *)
let full_mask = max_int

let nwords len = if len = 0 then 0 else (len + bits_per_word - 1) / bits_per_word

(* Mask selecting the valid bits of the last word. *)
let tail_mask len =
  let r = len mod bits_per_word in
  if r = 0 then full_mask else (1 lsl r) - 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let length v = v.len

let copy v = { len = v.len; words = Array.copy v.words }

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check v i;
  v.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let set v i =
  check v i;
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) lor (1 lsl (i mod bits_per_word))

let clear v i =
  check v i;
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) land lnot (1 lsl (i mod bits_per_word))

let assign v i b = if b then set v i else clear v i

let fill_all v =
  let n = Array.length v.words in
  if n > 0 then begin
    Array.fill v.words 0 n full_mask;
    v.words.(n - 1) <- tail_mask v.len
  end

let zero_all v = Array.fill v.words 0 (Array.length v.words) 0

(* Parallel-sum popcount on the 62 payload bits of a native int. *)
let popcount_int x =
  let m1 = 0x1555555555555555 (* even bit positions 0..60 *)
  and m2 = 0x3333333333333333 (* two-bit fields, covering bits 0..61 *)
  and m4 = 0x0f0f0f0f0f0f0f0f in
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * 0x0101010101010101) lsr 56 land 0x7f

let count v = Array.fold_left (fun acc w -> acc + popcount_int w) 0 v.words

let is_empty v = Array.for_all (fun w -> w = 0) v.words

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let union_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

let inter_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land src.words.(i)
  done

let diff_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot src.words.(i)
  done

let union a b = let r = copy a in union_into ~into:r b; r
let inter a b = let r = copy a in inter_into ~into:r b; r
let diff a b = let r = copy a in diff_into ~into:r b; r

let subset a b =
  same_len a b;
  let ok = ref true in
  let i = ref 0 in
  let n = Array.length a.words in
  while !ok && !i < n do
    if a.words.(!i) land lnot b.words.(!i) <> 0 then ok := false;
    incr i
  done;
  !ok

let subset_masked a b ~mask =
  same_len a b;
  same_len a mask;
  let ok = ref true in
  let i = ref 0 in
  let n = Array.length a.words in
  while !ok && !i < n do
    if a.words.(!i) land mask.words.(!i) land lnot b.words.(!i) <> 0 then ok := false;
    incr i
  done;
  !ok

let intersects a b =
  same_len a b;
  let hit = ref false in
  let i = ref 0 in
  let n = Array.length a.words in
  while (not !hit) && !i < n do
    if a.words.(!i) land b.words.(!i) <> 0 then hit := true;
    incr i
  done;
  !hit

let count_inter a b =
  same_len a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_int (a.words.(i) land b.words.(i))
  done;
  !acc

let count_diff a b =
  same_len a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_int (a.words.(i) land lnot b.words.(i))
  done;
  !acc

let iter_ones f v =
  for wi = 0 to Array.length v.words - 1 do
    let w = ref v.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      (* Isolate lowest set bit; log2 via sequential scan of the residue. *)
      let low = !w land (- !w) in
      let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
      f (base + bit_index low 0);
      w := !w land lnot low
    done
  done

let fold_ones f acc v =
  let acc = ref acc in
  iter_ones (fun i -> acc := f !acc i) v;
  !acc

let first_one v =
  let n = Array.length v.words in
  let rec scan wi =
    if wi >= n then None
    else if v.words.(wi) = 0 then scan (wi + 1)
    else begin
      let w = v.words.(wi) in
      let low = w land (-w) in
      let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
      Some ((wi * bits_per_word) + bit_index low 0)
    end
  in
  scan 0

let of_list n l =
  let v = create n in
  List.iter (fun i -> set v i) l;
  v

let to_list v = List.rev (fold_ones (fun acc i -> i :: acc) [] v)

let append_ones v buf = fold_ones (fun acc i -> i :: acc) buf v

(* 8 bits per byte, independent of the 62-bit packing, so the encoding is
   stable across any future change of the in-memory word layout. *)
let to_bytes v =
  let nb = (v.len + 7) / 8 in
  let b = Bytes.make nb '\000' in
  for i = 0 to v.len - 1 do
    if v.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1 then
      Bytes.set_uint8 b (i / 8) (Bytes.get_uint8 b (i / 8) lor (1 lsl (i mod 8)))
  done;
  b

let of_bytes n b =
  if n < 0 then invalid_arg "Bitvec.of_bytes: negative length";
  if Bytes.length b <> (n + 7) / 8 then invalid_arg "Bitvec.of_bytes: size mismatch";
  let v = create n in
  for i = 0 to n - 1 do
    if Bytes.get_uint8 b (i / 8) lsr (i mod 8) land 1 = 1 then set v i
  done;
  (* Padding bits beyond [n] must be zero: catches truncation/corruption
     that a length check alone would miss. *)
  if n mod 8 <> 0 then begin
    let last = Bytes.get_uint8 b (Bytes.length b - 1) in
    if last lsr (n mod 8) <> 0 then invalid_arg "Bitvec.of_bytes: nonzero padding"
  end;
  v

let pp ppf v =
  Format.fprintf ppf "{";
  let first = ref true in
  iter_ones
    (fun i ->
      if !first then first := false else Format.fprintf ppf ",";
      Format.fprintf ppf "%d" i)
    v;
  Format.fprintf ppf "}"

let unsafe_get v i =
  Array.unsafe_get v.words (i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let unsafe_set v i =
  let w = i / bits_per_word in
  Array.unsafe_set v.words w
    (Array.unsafe_get v.words w lor (1 lsl (i mod bits_per_word)))

module Big = struct
  open Bigarray

  type big = { blen : int; ba : (int64, int64_elt, c_layout) Array1.t }

  (* Same 62-bits-per-word packing as the heap representation, stored in
     the low bits of each int64 element; the top two bits stay zero, so
     [Int64.to_int] is lossless and mixed in-heap/off-heap operations
     work directly on native ints. *)
  let create len =
    if len < 0 then invalid_arg "Bitvec.Big.create: negative length";
    let ba = Array1.create int64 c_layout (nwords len) in
    Array1.fill ba 0L;
    { blen = len; ba }

  let length b = b.blen

  let word b i = Int64.to_int (Array1.unsafe_get b.ba i)

  let check b i =
    if i < 0 || i >= b.blen then invalid_arg "Bitvec.Big: index out of range"

  let unsafe_get b i = word b (i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

  let unsafe_set b i =
    let w = i / bits_per_word in
    Array1.unsafe_set b.ba w
      (Int64.of_int (word b w lor (1 lsl (i mod bits_per_word))))

  let get b i = check b i; unsafe_get b i
  let set b i = check b i; unsafe_set b i

  let count b =
    let acc = ref 0 in
    for i = 0 to Array1.dim b.ba - 1 do
      acc := !acc + popcount_int (word b i)
    done;
    !acc

  let iter_ones f b =
    for wi = 0 to Array1.dim b.ba - 1 do
      let w = ref (word b wi) in
      let base = wi * bits_per_word in
      while !w <> 0 do
        let low = !w land (- !w) in
        let rec bit_index x i = if x = 1 then i else bit_index (x lsr 1) (i + 1) in
        f (base + bit_index low 0);
        w := !w land lnot low
      done
    done

  let fold_ones f acc b =
    let acc = ref acc in
    iter_ones (fun i -> acc := f !acc i) b;
    !acc

  let of_bitvec v =
    let b = create v.len in
    for i = 0 to Array.length v.words - 1 do
      Array1.unsafe_set b.ba i (Int64.of_int v.words.(i))
    done;
    b

  let to_bitvec b =
    (* [create] here is [Big.create]; build the heap record directly. *)
    let v = { len = b.blen; words = Array.make (nwords b.blen) 0 } in
    for i = 0 to Array.length v.words - 1 do
      v.words.(i) <- word b i
    done;
    v

  let same_len_bd b v =
    if b.blen <> v.len then invalid_arg "Bitvec.Big: length mismatch"

  let union_into ~into b =
    same_len_bd b into;
    for i = 0 to Array.length into.words - 1 do
      into.words.(i) <- into.words.(i) lor word b i
    done

  let diff_into ~into b =
    same_len_bd b into;
    for i = 0 to Array.length into.words - 1 do
      into.words.(i) <- into.words.(i) land lnot (word b i)
    done

  let count_inter b v =
    same_len_bd b v;
    let acc = ref 0 in
    for i = 0 to Array.length v.words - 1 do
      acc := !acc + popcount_int (word b i land v.words.(i))
    done;
    !acc

  let subset_masked_bb a b ~mask =
    same_len_bd a mask;
    same_len_bd b mask;
    let ok = ref true in
    let i = ref 0 in
    let n = Array.length mask.words in
    while !ok && !i < n do
      if word a !i land mask.words.(!i) land lnot (word b !i) <> 0 then ok := false;
      incr i
    done;
    !ok

  let subset_masked_bd a b ~mask =
    same_len_bd a b;
    same_len_bd a mask;
    let ok = ref true in
    let i = ref 0 in
    let n = Array.length mask.words in
    while !ok && !i < n do
      if word a !i land mask.words.(!i) land lnot b.words.(!i) <> 0 then ok := false;
      incr i
    done;
    !ok

  let subset_masked_db a b ~mask =
    same_len_bd b a;
    same_len_bd b mask;
    let ok = ref true in
    let i = ref 0 in
    let n = Array.length mask.words in
    while !ok && !i < n do
      if a.words.(!i) land mask.words.(!i) land lnot (word b !i) <> 0 then ok := false;
      incr i
    done;
    !ok
end
