(** One detection-matrix row behind three storage representations.

    A row over [n] columns is stored either as an in-heap {!Bitvec.t}
    ([Dense]), as a sorted int array of set columns ([Sparse]), or as an
    off-heap {!Bitvec.Big} vector ([Big]).  {!of_bitvec} picks the
    representation automatically: rows at or below the density cutover
    (one set bit per 64 columns) go sparse; denser rows go off-heap once
    the row is wide enough for the GC pressure to matter, and stay
    in-heap below that.  The cardinality is cached at construction, so
    {!count} is O(1) for every representation.

    The choice can be forced — for the dense-vs-sparse solution-identity
    check in CI and for the equivalence property tests — with the
    [RESEED_ROWSET] environment variable ([dense] | [sparse] | [big] |
    [auto]) or {!set_force}. *)

type t

type repr = Dense | Sparse | Big

val repr : t -> repr
val repr_name : repr -> string

(** [of_bitvec v] compacts [v] into the representation the policy picks
    for its length and cardinality.  [v] is copied; the result never
    aliases it. *)
val of_bitvec : Bitvec.t -> t

(** [dense_of_bitvec v] wraps [v] as a dense row {e sharing} [v]'s
    storage — the caller transfers ownership.  Used by the mutable
    [Matrix.create]/[set] path. *)
val dense_of_bitvec : Bitvec.t -> t

(** [of_sorted_array n idx] is the sparse row over [n] columns with
    exactly the set bits [idx], which must be strictly increasing and in
    range.  The array is not copied. *)
val of_sorted_array : int -> int array -> t

val length : t -> int

(** [count r] is the number of set columns — O(1), cached. *)
val count : t -> int

val density : t -> float
val mem : t -> int -> bool
val iter_ones : (int -> unit) -> t -> unit
val fold_ones : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [to_list r] is the ascending list of set columns. *)
val to_list : t -> int list

(** [to_bitvec r] is a dense view of [r].  For a [Dense] row this is the
    backing vector itself (do not mutate); otherwise a fresh copy. *)
val to_bitvec : t -> Bitvec.t

(** [add r i] is [r] with column [i] set.  A [Dense] row is mutated in
    place and returned; other representations are converted to [Dense]
    first.  Only the small mutable-matrix path uses this. *)
val add : t -> int -> t

(** [union_into ~into r] ors [r] into the dense accumulator. *)
val union_into : into:Bitvec.t -> t -> unit

(** [diff_into ~into r] clears [into]'s bits that are set in [r]. *)
val diff_into : into:Bitvec.t -> t -> unit

(** [count_inter r v] is [|r ∩ v|] without allocating. *)
val count_inter : t -> Bitvec.t -> int

(** [intersects r v] is [true] iff [r ∩ v] is non-empty. *)
val intersects : t -> Bitvec.t -> bool

(** [subset_masked a b ~mask] is [a ∩ mask ⊆ b ∩ mask], across any
    representation pair. *)
val subset_masked : t -> t -> mask:Bitvec.t -> bool

(** [equal a b] — same length and same set of columns (representations
    may differ). *)
val equal : t -> t -> bool

(** [set_force (Some r)] pins every subsequent {!of_bitvec} to
    representation [r]; [set_force None] restores the automatic policy.
    Initialised from [RESEED_ROWSET] at program start. *)
val set_force : repr option -> unit

val forced : unit -> repr option

(** [repr_of_string s] parses ["dense"] / ["sparse"] / ["big"];
    ["auto"] and anything else is [None]. *)
val repr_of_string : string -> repr option
