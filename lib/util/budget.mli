(** Wall-clock deadlines and cooperative cancellation.

    A budget is a thread-safe token threaded through the expensive phases
    of the flow (detection-matrix build, branch-and-bound, ATPG, GA
    rounds, fault-simulation sweeps).  Hot loops poll {!expired} at a
    coarse granularity — one matrix row, one simulation block, a few
    thousand search nodes — and wind down gracefully when it trips,
    returning the best valid partial result instead of raising.

    Two stop sources share one token: a wall-clock [deadline] fixed at
    creation, and {!cancel}, which any domain (or a signal handler) may
    call at any time.  Once a budget has expired it stays expired. *)

type t

type stop_reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** {!cancel} was called (e.g. from a SIGINT handler) *)

(** [stop_reason_name r] is ["deadline"] or ["cancelled"]. *)
val stop_reason_name : stop_reason -> string

(** [create ?deadline_s ()] — [deadline_s] is a wall-clock allowance in
    seconds measured from now; omitted means no time limit (the budget
    can still be {!cancel}led).  [deadline_s <= 0.] expires immediately. *)
val create : ?deadline_s:float -> unit -> t

(** [sub ?deadline_s parent] is a child budget that expires when its own
    deadline passes {e or} [parent] expires (whichever first, with the
    parent's reason inherited).  The campaign-runner idiom: one parent
    token carries the global deadline and the SIGINT handler, each job
    polls its own child with the per-job allowance. *)
val sub : ?deadline_s:float -> t -> t

(** [cancel t] trips the budget from any domain.  Idempotent; safe to
    call from a signal handler.  Cancelling a parent trips every child
    at its next poll; cancelling a child leaves the parent live. *)
val cancel : t -> unit

(** [expired t] — true once the deadline has passed or [cancel] was
    called.  Cheap (one atomic load on the fast path after first expiry;
    one clock read otherwise), but hot loops should still throttle calls
    to a coarse granularity. *)
val expired : t -> bool

(** [stop_reason t] is [None] while the budget is live.  [Cancelled]
    takes precedence over [Deadline] when both apply. *)
val stop_reason : t -> stop_reason option

(** [remaining_s t] is the wall-clock time left, [infinity] when no
    deadline was set, and [0.] once expired. *)
val remaining_s : t -> float

(** [check b] — [expired] lifted over an optional budget: [false] when
    [b] is [None].  The idiom for [?budget] parameters. *)
val check : t option -> bool
