(** Structured, user-facing errors with documented exit codes.

    Replaces the bare [failwith]/[invalid_arg] previously scattered
    through input parsing ({i Bench_io}), the benchmark catalog
    ({i Library.load}) and the CLI front-end.  Every error carries a
    machine-readable class plus optional source coordinates, so the CLI
    can print [file:line:col: message] and exit with a stable code.

    Exit-code table (also in the README):
    {v
    0    success (including deadline-degraded runs: valid partial result)
    2    usage error (bad command line; produced by Cmdliner)
    3    input error (malformed .bench, unknown circuit, bad checkpoint)
    4    infeasible instance (no valid cover exists)
    5    worker task failure (a pool task kept failing after retries)
    66   chaos abort (an injected {!Faultpoint} crashpoint; testing only)
    70   internal error (a bug: unexpected exception)
    130  interrupted (SIGINT; checkpointed state was flushed first)
    v} *)

type code =
  | Usage
  | Input_error
  | Infeasible
  | Task_failed
  | Interrupted
  | Internal

type t = {
  code : code;
  message : string;
  file : string option;  (** source file the error points into, if any *)
  line : int option;  (** 1-based line within [file] *)
  column : int option;  (** 1-based column within [line] *)
}

exception Reseed_error of t

(** [exit_code c] is the process exit status for class [c] (table above). *)
val exit_code : code -> int

(** [code_name c] is a stable lowercase tag ("usage", "input", …). *)
val code_name : code -> string

(** [fail ?file ?line ?column code fmt …] raises {!Reseed_error}. *)
val fail :
  ?file:string -> ?line:int -> ?column:int -> code -> ('a, unit, string, 'b) format4 -> 'a

(** [to_string e] renders ["file:line:col: message"] (coordinates only
    when present). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
