(** Span-based flow tracer exporting Chrome [trace_event] JSON.

    One process-wide tracer, disabled by default.  When disabled, a span
    costs a single atomic load — no clock read, no allocation — so
    instrumentation can stay in the hot paths permanently.  When enabled,
    each completed span is appended to the recording domain's own buffer
    (created lazily via domain-local storage, registered once), so
    Pool worker domains never contend on a shared sink; buffers are
    merged only at export time, after the parallel work has joined.

    Timestamps come from the monotonic clock, so spans are immune to
    wall-clock adjustments.  Nesting is positional, exactly as in the
    Chrome trace format: a span encloses every span of the same domain
    that starts and ends within it.  View exports with Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or [chrome://tracing]. *)

(** One recorded trace event (a completed ['X'] span or an ['i'] instant
    marker).  Timestamps are nanoseconds since {!enable}/{!reset}. *)
type event = {
  name : string;
  ph : char;  (** ['X'] complete span, ['i'] instant *)
  ts_ns : int64;  (** start time *)
  dur_ns : int64;  (** duration; [0] for instants *)
  tid : int;  (** id of the recording domain *)
  args : (string * string) list;
}

(** [enabled ()] — whether spans are currently being recorded. *)
val enabled : unit -> bool

(** [enable ()] starts recording and, on the first call, anchors the
    trace epoch.  Call from the main domain before spawning work. *)
val enable : unit -> unit

(** [disable ()] stops recording.  Already-recorded events remain
    exportable. *)
val disable : unit -> unit

(** [reset ()] drops every recorded event and re-anchors the epoch.
    Call only while no other domain is recording. *)
val reset : unit -> unit

(** [with_span ?args name f] runs [f ()] inside a span named [name].
    The span is recorded when [f] returns {i or raises} (the exception
    is re-raised), in the buffer of the domain that ran it.  [args]
    become the span's Chrome-trace [args] object; avoid building them
    in hot paths — they are evaluated whether or not the tracer is
    enabled. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?args name] records a zero-duration marker (warnings,
    incumbent updates, checkpoint flushes). *)
val instant : ?args:(string * string) list -> string -> unit

(** [events ()] is the merged, time-sorted view of every domain's
    buffer (parents sort before the spans they enclose).  Only sound
    once outstanding parallel regions have joined. *)
val events : unit -> event list

(** [span_names ()] is [events ()] projected to names — the determinism
    oracle used by tests comparing runs at different job counts. *)
val span_names : unit -> string list

(** [to_json ()] renders the merged events as a Chrome [trace_event]
    JSON object ([{"traceEvents": [...]}]). *)
val to_json : unit -> string

(** [write_file path] writes {!to_json} to [path]. *)
val write_file : string -> unit
