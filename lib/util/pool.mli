(** Fixed-size domain pool for data-parallel index loops.

    A pool owns [jobs - 1] worker domains (the submitting domain is the
    remaining participant, worker slot 0), fed through a single
    mutex/condition work queue — no dependency beyond the OCaml 5 stdlib.
    Work is distributed as contiguous index chunks claimed atomically, so
    load-balancing is dynamic while every index is executed exactly once.

    Determinism contract: all combinators assign result slot [i] from the
    task for index [i], whatever domain ran it, so any computation whose
    tasks are pure functions of their index (plus read-only shared state)
    produces bit-identical results at every job count.

    Nested parallelism is safe but not amplified: a [parallel_*] call made
    while the same pool is already running a region (from a worker, or
    reentrantly from the caller's own chunk) degrades to an inline
    sequential loop. *)

type t

(** Raised by the [parallel_*] combinators when a chunk body keeps
    failing: the chunk is retried on the same worker through the shared
    {!Retry} policy — [RESEED_RETRIES] retries (default 1) with
    exponential, deterministically jittered backoff — so transient
    faults heal (bodies must be idempotent per index, which every slot-
    writing combinator here is).  {!Error.Reseed_error} diagnostics are
    classified permanent and never retried.  The surviving exception is
    wrapped with its task context — the region's [label], the worker
    slot, the index range, the attempt count and the total backoff — so
    failures in a fleet of domains stay attributable.  The first failing
    chunk wins; chunks not yet started are skipped.  Every chunk attempt
    also passes the [pool.task] {!Faultpoint}. *)
exception
  Task_error of {
    label : string;  (** the [?label] of the failed region *)
    worker : int;  (** participant slot that ran the chunk *)
    lo : int;  (** failed index range, [lo] inclusive *)
    hi : int;  (** … [hi] exclusive *)
    attempts : int;  (** runs of the chunk body, including retries *)
    backoff_s : float;  (** total time spent backing off between attempts *)
    exn : exn;  (** the underlying exception (last attempt's) *)
  }

(** [default_jobs ()] is the parallelism used by {!default}: the
    [RESEED_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns a pool with [jobs] participants ([jobs - 1]
    worker domains).  [jobs >= 1]; [jobs = 1] spawns nothing and runs
    every region inline. *)
val create : jobs:int -> unit -> t

(** [default ()] is the lazily-created process-wide pool sized by
    {!default_jobs}; it is shut down automatically at exit. *)
val default : unit -> t

(** [jobs t] is the number of participants (worker slots [0 .. jobs-1]). *)
val jobs : t -> int

(** [shutdown t] joins the pool's worker domains.  Idempotent.  Calling a
    [parallel_*] combinator on a shut-down pool runs inline. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f pool] and always shuts the pool down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [parallel_for ?pool ?chunk ?label ~total body] runs
    [body ~worker ~lo ~hi] over disjoint chunks covering [0 .. total-1]
    ([lo] inclusive, [hi] exclusive).  [worker] identifies the
    participant slot executing the chunk — index per-worker scratch
    (e.g. {i Fault_sim} shards) with it.  [chunk] is the claim
    granularity (default: coarse, [total/(8*jobs)]).  [label] names the
    region in failure reports (default ["parallel region"]).  A chunk
    that raises is retried once; a second failure is re-raised in the
    caller as {!Task_error} (first failing chunk wins) after every
    participant has stopped — the pool itself never hangs or dies. *)
val parallel_for :
  ?pool:t ->
  ?chunk:int ->
  ?label:string ->
  total:int ->
  (worker:int -> lo:int -> hi:int -> unit) ->
  unit

(** [parallel_init ?pool ?chunk ?label n f] is [Array.init n f] with the
    calls to [f] distributed over the pool. *)
val parallel_init : ?pool:t -> ?chunk:int -> ?label:string -> int -> (int -> 'a) -> 'a array

(** [parallel_map_array ?pool ?chunk ?label f arr] is [Array.map f arr]
    with the calls to [f] distributed over the pool. *)
val parallel_map_array :
  ?pool:t -> ?chunk:int -> ?label:string -> ('a -> 'b) -> 'a array -> 'b array
