(* Bounded retry with exponential backoff and deterministic jitter.

   One policy for every transient-failure site (worker chunks, artifact
   and checkpoint IO): classify the exception, retry transients up to a
   bounded attempt count with exponentially growing delays, give up on
   permanents immediately.  Jitter is drawn from a splitmix64 stream
   seeded by (label, attempt), so two runs back off identically — the
   determinism-under-restart contract extends to the failure paths. *)

type class_ = Transient | Permanent

type config = { max_attempts : int; base_delay_s : float; max_delay_s : float }

(* RESEED_RETRIES = number of retries after the first attempt; the
   default (1) preserves the pool's historical retry-once behaviour.
   Unparsable values fall back, like RESEED_JOBS. *)
let env_retries () =
  match Sys.getenv_opt "RESEED_RETRIES" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> 1)
  | None -> 1

let default_config () =
  { max_attempts = env_retries () + 1; base_delay_s = 0.005; max_delay_s = 0.25 }

(* Default classification: errors a retry can plausibly heal (resource
   blips, interrupted syscalls, injected chaos) are transient; errors
   that will recur (no space, no file, no permission) and structured
   diagnostics are permanent.  [Sys_error] hides its errno, so it gets
   the benefit of the doubt: one duplicate attempt is cheap. *)
let classify = function
  | Unix.Unix_error
      ((Unix.EIO | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENFILE
       | Unix.EMFILE | Unix.EBUSY),
        _, _ ) ->
      Transient
  | Unix.Unix_error (_, _, _) -> Permanent
  | Faultpoint.Injected _ -> Transient
  | Sys_error _ -> Transient
  | Error.Reseed_error _ -> Permanent
  | _ -> Permanent

let class_name = function Transient -> "transient" | Permanent -> "permanent"

type failure = { attempts : int; backoff_s : float; exn : exn }

let m_retries =
  Metrics.counter ~help:"transient failures retried with backoff" "retry_attempts"

(* min(base * 2^(attempt-1), max) scaled by a deterministic jitter factor
   in [1, 1.5) — a pure function of (label, attempt). *)
let delay_for cfg ~label ~attempt =
  let d = cfg.base_delay_s *. (2. ** float_of_int (attempt - 1)) in
  let d = Float.min d cfg.max_delay_s in
  let seed =
    Int64.to_int
      (Fingerprint.int (Fingerprint.string (Fingerprint.salted "retry") label) attempt)
    land max_int
  in
  d *. (1. +. (0.5 *. Rng.float (Rng.create seed)))

let run ?config ?(classify = classify) ?(label = "io") f =
  let rec go attempt backoff_s =
    match f ~attempt with
    | v -> Ok v
    | exception e -> (
        (* The config (and so the env) is only consulted on the failure
           path, keeping the success path allocation- and syscall-free. *)
        let cfg = match config with Some c -> c | None -> default_config () in
        match classify e with
        | Permanent -> Error { attempts = attempt; backoff_s; exn = e }
        | Transient when attempt >= cfg.max_attempts ->
            Error { attempts = attempt; backoff_s; exn = e }
        | Transient ->
            let d = delay_for cfg ~label ~attempt in
            Metrics.incr m_retries;
            Trace.instant "retry.backoff"
              ~args:
                [
                  ("label", label);
                  ("attempt", string_of_int attempt);
                  ("delay_s", Printf.sprintf "%.4f" d);
                ];
            if d > 0. then Unix.sleepf d;
            go (attempt + 1) (backoff_s +. d))
  in
  go 1 0.

let with_retries ?config ?classify ?label f =
  match run ?config ?classify ?label f with
  | Ok v -> v
  | Error { exn; _ } -> raise exn
