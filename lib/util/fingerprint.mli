(** Stable 64-bit fingerprints of pipeline-stage inputs.

    A fingerprint digests everything a pipeline stage's output depends on
    — circuit netlist, configuration records, pattern sets, fault masks —
    into a single [int64] used as the content address of the stage's
    cached artifact ({!Reseed_core.Artifact}).  The hash is FNV-1a over a
    canonical little-endian byte stream, so values are stable across
    platforms, word sizes and processes; they are {e not} meant to resist
    adversarial collisions.

    Combinators fold left: [Fingerprint.(int (string (salted "matrix")
    "adder") 150)].  Every combinator feeds the value's length or a tag
    where ambiguity is possible ([list], [option], [pattern]), so
    adjacent fields cannot alias ([["ab"; "c"]] vs [["a"; "bc"]]).

    {!salted} mixes in {!code_version}: bump the version string whenever
    an algorithm change makes previously cached artifacts stale, and
    every stage key changes at once. *)

type t = int64

(** Cache-busting salt baked into {!salted}.  Bump on any change that
    invalidates cached stage outputs. *)
val code_version : string

(** The raw FNV-1a offset basis — an unsalted starting point, used where
    a format owns its own version tag (e.g. the checkpoint files). *)
val empty : t

(** [salted tag] is the starting fingerprint for stage [tag], salted with
    {!code_version}. *)
val salted : string -> t

val byte : t -> int -> t

(** [int h v] hashes [v] as 8 little-endian bytes. *)
val int : t -> int -> t

val int64 : t -> int64 -> t
val bool : t -> bool -> t

(** [float h v] hashes the IEEE-754 bit pattern of [v]. *)
val float : t -> float -> t

(** [string h s] hashes [s]'s length, then its bytes. *)
val string : t -> string -> t

(** [raw_string h s] hashes only [s]'s bytes — no length prefix.  For
    reproducing fixed legacy streams; prefer {!string}. *)
val raw_string : t -> string -> t

val bytes : t -> bytes -> t
val option : (t -> 'a -> t) -> t -> 'a option -> t
val list : (t -> 'a -> t) -> t -> 'a list -> t
val array : (t -> 'a -> t) -> t -> 'a array -> t

(** [pattern h p] hashes one simulator bit pattern. *)
val pattern : t -> bool array -> t

(** [patterns h ps] hashes a whole test set. *)
val patterns : t -> bool array array -> t

val bitvec : t -> Bitvec.t -> t
val equal : t -> t -> bool

(** [to_hex fp] is the 16-digit lowercase hex rendering — the artifact
    file basename. *)
val to_hex : t -> string
