(* Typed counter/gauge registry.

   Counters are atomic ints advanced from any domain; the pipeline's hot
   loops keep their private per-shard tallies and publish deltas here at
   phase boundaries (sweep end, solver exit, merge), so the registry adds
   no contention to the inner loops while still absorbing every scattered
   counter behind one exportable API. *)

type counter = { c_name : string; c_help : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_help : string; g_cell : float Atomic.t }

type metric = C of counter | G of gauge

type value = Counter_v of int | Gauge_v of float

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_m = Mutex.create ()

let with_registry f =
  Mutex.lock registry_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_m) f

(* Registration is idempotent by name so modules can declare their
   metrics at toplevel and tests can re-reference them. *)
let counter ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some (G _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a gauge")
      | None ->
          let c = { c_name = name; c_help = help; c_cell = Atomic.make 0 } in
          Hashtbl.add registry name (C c);
          c)

let gauge ?(help = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some (C _) -> invalid_arg ("Metrics.gauge: " ^ name ^ " is a counter")
      | None ->
          let g = { g_name = name; g_help = help; g_cell = Atomic.make 0.0 } in
          Hashtbl.add registry name (G g);
          g)

let incr c = Atomic.incr c.c_cell

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.c_cell n)

let value c = Atomic.get c.c_cell

let set g v = Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

let counter_name c = c.c_name
let gauge_name g = g.g_name

let snapshot () =
  let entries =
    with_registry (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            let v =
              match m with
              | C c -> Counter_v (Atomic.get c.c_cell)
              | G g -> Gauge_v (Atomic.get g.g_cell)
            in
            (name, v) :: acc)
          registry [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let get name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> Some (Counter_v (Atomic.get c.c_cell))
      | Some (G g) -> Some (Gauge_v (Atomic.get g.g_cell))
      | None -> None)

let help name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> Some c.c_help
      | Some (G g) -> Some g.g_help
      | None -> None)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.c_cell 0
          | G g -> Atomic.set g.g_cell 0.0)
        registry)

(* --- Export ------------------------------------------------------------ *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Counter_v n -> Buffer.add_string buf (string_of_int n)
  | Gauge_v x -> Buffer.add_string buf (Printf.sprintf "%.6g" x)

(* Flat JSON object, one key per metric — the shape embedded into
   BENCH_reseed.json and written by [--metrics FILE.json]. *)
let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      add_json_string buf name;
      Buffer.add_string buf ": ";
      add_value buf v)
    (snapshot ());
  Buffer.add_string buf "\n}";
  Buffer.contents buf

(* One self-describing JSON object per line — the [.ndjson] flavour. *)
let to_ndjson () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf "{\"name\":";
      add_json_string buf name;
      Buffer.add_string buf ",\"type\":";
      (match v with
      | Counter_v _ -> Buffer.add_string buf "\"counter\""
      | Gauge_v _ -> Buffer.add_string buf "\"gauge\"");
      Buffer.add_string buf ",\"value\":";
      add_value buf v;
      (match help name with
      | Some h when h <> "" ->
          Buffer.add_string buf ",\"help\":";
          add_json_string buf h
      | _ -> ());
      Buffer.add_string buf "}\n")
    (snapshot ());
  Buffer.contents buf

let write_file path =
  let contents =
    if Filename.check_suffix path ".ndjson" then to_ndjson ()
    else to_json () ^ "\n"
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
