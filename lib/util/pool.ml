(* Fixed worker domains fed by a single mutex/condition queue.  One job is
   in flight at a time; participants (the caller, slot 0, plus each worker
   domain) claim contiguous index chunks with an atomic cursor, so the
   schedule is dynamic but every index runs exactly once and lands in its
   own result slot — results are independent of the job count. *)

exception
  Task_error of {
    label : string;
    worker : int;
    lo : int;
    hi : int;
    attempts : int;
    backoff_s : float;
    exn : exn;
  }

let () =
  Printexc.register_printer (function
    | Task_error { label; worker; lo; hi; attempts; backoff_s; exn } ->
        Some
          (Printf.sprintf
             "Pool.Task_error(task %S, worker %d, chunk [%d,%d), %d attempts, \
              %.3fs backoff: %s)"
             label worker lo hi attempts backoff_s (Printexc.to_string exn))
    | _ -> None)

type job = {
  id : int;
  total : int;
  chunk : int;
  label : string;
  next : int Atomic.t;  (* next unclaimed index *)
  failed : bool Atomic.t;  (* set on first exception: later chunks are skipped *)
  body : worker:int -> lo:int -> hi:int -> unit;
  jm : Mutex.t;  (* guards [completed] and [exn] *)
  done_c : Condition.t;
  mutable completed : int;  (* indices claimed and accounted for *)
  mutable exn : exn option;
}

type state = Idle | Work of job | Stop

type t = {
  n_jobs : int;
  m : Mutex.t;  (* guards [state] *)
  ready : Condition.t;
  mutable state : state;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t;  (* a region is running: nested calls degrade to inline *)
  mutable next_id : int;
  mutable shut : bool;
}

let jobs t = t.n_jobs

let default_jobs () =
  match Sys.getenv_opt "RESEED_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* A chunk that raises is retried on the same worker through the shared
   {!Retry} policy (RESEED_RETRIES, default one retry with backoff)
   before the job is declared failed — transient faults (resource blips,
   interrupted syscalls, injected chaos) heal; deterministic ones cost
   duplicate runs.  Chunk bodies therefore must be idempotent per index
   (every combinator here writes result slot [i] from task [i], which
   is).  The surviving exception is wrapped in {!Task_error} with the
   attempt count and total backoff, so failures in a fleet of domains
   stay attributable.  Structured {!Error.Reseed_error} diagnostics and
   already-contained nested {!Task_error}s are permanent: retrying a
   documented failure only duplicates its side effects. *)
let task_classify = function
  | Task_error _ | Error.Reseed_error _ -> Retry.Permanent
  | _ -> Retry.Transient

let fp_task = Faultpoint.register "pool.task"

let run_chunk_retrying ~label body ~worker ~lo ~hi =
  match
    Retry.run ~classify:task_classify ~label (fun ~attempt:_ ->
        Faultpoint.hit fp_task;
        body ~worker ~lo ~hi)
  with
  | Ok () -> ()
  | Error { Retry.exn = Task_error _ as e; _ } ->
      raise e (* already contained (and retried) deeper down *)
  | Error { Retry.attempts; backoff_s; exn } ->
      raise (Task_error { label; worker; lo; hi; attempts; backoff_s; exn })

let run_body j ~worker ~lo ~hi = run_chunk_retrying ~label:j.label j.body ~worker ~lo ~hi

(* Every claimed chunk is accounted exactly once, run or skipped, so
   [completed = total] is the completion condition even after a failure. *)
let run_chunks j ~worker =
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo >= j.total then continue := false
    else begin
      let hi = min j.total (lo + j.chunk) in
      (if not (Atomic.get j.failed) then
         try run_body j ~worker ~lo ~hi
         with e ->
           Atomic.set j.failed true;
           Mutex.lock j.jm;
           if j.exn = None then j.exn <- Some e;
           Mutex.unlock j.jm);
      Mutex.lock j.jm;
      j.completed <- j.completed + (hi - lo);
      if j.completed = j.total then Condition.broadcast j.done_c;
      Mutex.unlock j.jm
    end
  done

let rec worker_loop t ~slot ~last_id =
  Mutex.lock t.m;
  let rec wait () =
    match t.state with
    | Stop ->
        Mutex.unlock t.m;
        None
    | Work j when j.id <> last_id ->
        Mutex.unlock t.m;
        Some j
    | Idle | Work _ ->
        Condition.wait t.ready t.m;
        wait ()
  in
  match wait () with
  | None -> ()
  | Some j ->
      run_chunks j ~worker:slot;
      worker_loop t ~slot ~last_id:j.id

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      m = Mutex.create ();
      ready = Condition.create ();
      state = Idle;
      workers = [];
      busy = Atomic.make false;
      next_id = 0;
      shut = false;
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~slot:(i + 1) ~last_id:(-1)));
  t

let shutdown t =
  let ws =
    Mutex.lock t.m;
    if t.shut then begin
      Mutex.unlock t.m;
      []
    end
    else begin
      t.shut <- true;
      t.state <- Stop;
      Condition.broadcast t.ready;
      Mutex.unlock t.m;
      t.workers
    end
  in
  List.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_pool = ref None
let default_m = Mutex.create ()

let default () =
  Mutex.lock default_m;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create ~jobs:(default_jobs ()) () in
        default_pool := Some t;
        at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock default_m;
  t

let resolve = function Some t -> t | None -> default ()

let run_inline ~label ~total body =
  run_chunk_retrying ~label body ~worker:0 ~lo:0 ~hi:total

let parallel_for ?pool ?chunk ?(label = "parallel region") ~total body =
  if total > 0 then begin
    let t = resolve pool in
    if t.n_jobs = 1 || t.shut || not (Atomic.compare_and_set t.busy false true)
    then run_inline ~label ~total body
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.busy false)
        (fun () ->
          let chunk =
            match chunk with
            | Some c when c >= 1 -> c
            | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
            | None -> max 1 (total / (t.n_jobs * 8))
          in
          t.next_id <- t.next_id + 1;
          let j =
            {
              id = t.next_id;
              total;
              chunk;
              label;
              next = Atomic.make 0;
              failed = Atomic.make false;
              body;
              jm = Mutex.create ();
              done_c = Condition.create ();
              completed = 0;
              exn = None;
            }
          in
          Mutex.lock t.m;
          t.state <- Work j;
          Condition.broadcast t.ready;
          Mutex.unlock t.m;
          run_chunks j ~worker:0;
          Mutex.lock j.jm;
          while j.completed < j.total do
            Condition.wait j.done_c j.jm
          done;
          let e = j.exn in
          Mutex.unlock j.jm;
          Mutex.lock t.m;
          t.state <- Idle;
          Mutex.unlock t.m;
          match e with Some e -> raise e | None -> ())
  end

let parallel_init ?pool ?chunk ?label n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?pool ?chunk ?label ~total:n (fun ~worker:_ ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f i)
        done);
    Array.map
      (function Some v -> v | None -> assert false (* every index ran *))
      out
  end

let parallel_map_array ?pool ?chunk ?label f arr =
  parallel_init ?pool ?chunk ?label (Array.length arr) (fun i -> f arr.(i))
