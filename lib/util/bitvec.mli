(** Fixed-length bit vectors packed into native integers.

    Used throughout the library for fault sets, detection-matrix rows and
    simulation pattern blocks.  All operations that combine two vectors
    require them to have the same length. *)

type t

(** Number of payload bits per backing word (62: the usable bits of a native
    OCaml [int] minus the sign bit). *)
val bits_per_word : int

(** [create n] is an all-zero vector of length [n].  [n >= 0]. *)
val create : int -> t

(** [length v] is the number of bits in [v]. *)
val length : t -> int

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [get v i] is bit [i].  Raises [Invalid_argument] when out of range. *)
val get : t -> int -> bool

(** [set v i] sets bit [i] to one. *)
val set : t -> int -> unit

(** [clear v i] sets bit [i] to zero. *)
val clear : t -> int -> unit

(** [assign v i b] sets bit [i] to [b]. *)
val assign : t -> int -> bool -> unit

(** [fill_all v] sets every bit of [v] to one. *)
val fill_all : t -> unit

(** [zero_all v] sets every bit of [v] to zero. *)
val zero_all : t -> unit

(** [count v] is the number of one bits (population count). *)
val count : t -> int

(** [is_empty v] is [true] iff no bit is set. *)
val is_empty : t -> bool

(** [equal a b] is [true] iff [a] and [b] have the same length and bits. *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [union_into ~into src] ors [src] into [into]. *)
val union_into : into:t -> t -> unit

(** [inter_into ~into src] ands [src] into [into]. *)
val inter_into : into:t -> t -> unit

(** [diff_into ~into src] removes from [into] every bit set in [src]. *)
val diff_into : into:t -> t -> unit

(** [union a b] is a fresh vector [a ∪ b]. *)
val union : t -> t -> t

(** [inter a b] is a fresh vector [a ∩ b]. *)
val inter : t -> t -> t

(** [diff a b] is a fresh vector [a \ b]. *)
val diff : t -> t -> t

(** [subset a b] is [true] iff every bit of [a] is also set in [b]. *)
val subset : t -> t -> bool

(** [subset_masked a b ~mask] is [subset (inter a mask) (inter b mask)]
    without allocating. *)
val subset_masked : t -> t -> mask:t -> bool

(** [intersects a b] is [true] iff [a ∩ b] is non-empty. *)
val intersects : t -> t -> bool

(** [count_inter a b] is [count (inter a b)] without allocating. *)
val count_inter : t -> t -> int

(** [count_diff a b] is [count (diff a b)] without allocating. *)
val count_diff : t -> t -> int

(** [iter_ones f v] applies [f] to the index of every set bit, ascending. *)
val iter_ones : (int -> unit) -> t -> unit

(** [fold_ones f acc v] folds [f] over set-bit indices, ascending. *)
val fold_ones : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [first_one v] is the lowest set-bit index, or [None]. *)
val first_one : t -> int option

(** [of_list n l] is a vector of length [n] with exactly the bits in [l]. *)
val of_list : int -> int list -> t

(** [to_list v] is the ascending list of set-bit indices. *)
val to_list : t -> int list

(** [append_ones v buf] pushes indices of set bits onto [buf]. *)
val append_ones : t -> int list -> int list

(** [to_bytes v] is a compact little-endian byte serialisation (8 bits
    per byte, [ceil (length / 8)] bytes); platform- and version-stable,
    used by the checkpoint format. *)
val to_bytes : t -> bytes

(** [of_bytes n b] rebuilds a vector of length [n] from {!to_bytes}
    output.  Raises [Invalid_argument] on a size mismatch or when padding
    bits beyond [n] are set. *)
val of_bytes : int -> bytes -> t

(** [pp] prints as a ["{1,5,9}"]-style set, for debugging. *)
val pp : Format.formatter -> t -> unit

(** [popcount_int x] is the number of set bits in the native int [x],
    counting all 63 payload bits.  Exposed for the simulator. *)
val popcount_int : int -> int

(** [unsafe_get v i] / [unsafe_set v i] are {!get} / {!set} without the
    range check.  Only for hot inner loops whose indices are already
    proven in range; out-of-range indices are undefined behaviour. *)
val unsafe_get : t -> int -> bool

val unsafe_set : t -> int -> unit

(** Off-heap bit vectors backed by an int64 [Bigarray].

    Same 62-payload-bits-per-word layout as {!t}, so mixed operations
    (an off-heap vector against an in-heap mask) run word-wise with no
    conversion.  The backing store lives outside the OCaml heap: the GC
    neither scans nor copies it, which is what makes 10k x 100k
    detection matrices tractable. *)
module Big : sig
  type big

  val create : int -> big
  val length : big -> int
  val get : big -> int -> bool
  val set : big -> int -> unit
  val unsafe_get : big -> int -> bool
  val unsafe_set : big -> int -> unit
  val count : big -> int
  val iter_ones : (int -> unit) -> big -> unit
  val fold_ones : ('a -> int -> 'a) -> 'a -> big -> 'a

  (** [of_bitvec v] / [to_bitvec b] copy between heaps. *)
  val of_bitvec : t -> big

  val to_bitvec : big -> t

  (** [union_into ~into b] ors the off-heap [b] into the in-heap [into]. *)
  val union_into : into:t -> big -> unit

  (** [diff_into ~into b] clears [into]'s bits that are set in [b]. *)
  val diff_into : into:t -> big -> unit

  (** [count_inter b v] is [|b ∩ v|] without allocating. *)
  val count_inter : big -> t -> int

  (** [subset_masked_* a b ~mask] — [a ∩ mask ⊆ b ∩ mask] for the
      off-heap/in-heap operand combinations. *)
  val subset_masked_bb : big -> big -> mask:t -> bool

  val subset_masked_bd : big -> t -> mask:t -> bool
  val subset_masked_db : t -> big -> mask:t -> bool
end
