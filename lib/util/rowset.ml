type repr = Dense | Sparse | Big

type rep =
  | RDense of Bitvec.t
  | RSparse of int array (* strictly increasing column indices *)
  | RBig of Bitvec.Big.big

type t = { len : int; mutable cnt : int; mutable rep : rep }

let repr_name = function Dense -> "dense" | Sparse -> "sparse" | Big -> "big"

let repr r =
  match r.rep with RDense _ -> Dense | RSparse _ -> Sparse | RBig _ -> Big

let repr_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | "big" -> Some Big
  | _ -> None

let force =
  ref
    (match Sys.getenv_opt "RESEED_ROWSET" with
    | Some s -> repr_of_string s
    | None -> None)

let set_force f = force := f
let forced () = !force

(* Density cutover: at one set bit per 64 columns a sorted-int-array row
   costs about the same memory as the packed words; below it, strictly
   less, and iteration touches only the set entries.  Dense rows move
   off-heap once they are wide enough for GC scanning to matter. *)
let sparse_cutover_shift = 6 (* sparse iff count <= len / 64 *)
let big_threshold = 4096 (* dense rows at least this wide go off-heap *)

let auto_repr ~len ~count =
  if count lsl sparse_cutover_shift <= len then Sparse
  else if len >= big_threshold then Big
  else Dense

let sparse_of_bitvec v =
  let idx = Array.make (Bitvec.count v) 0 in
  let k = ref 0 in
  Bitvec.iter_ones
    (fun i ->
      idx.(!k) <- i;
      incr k)
    v;
  idx

let of_bitvec v =
  let len = Bitvec.length v in
  let cnt = Bitvec.count v in
  let r = match !force with Some r -> r | None -> auto_repr ~len ~count:cnt in
  let rep =
    match r with
    | Sparse -> RSparse (sparse_of_bitvec v)
    | Big -> RBig (Bitvec.Big.of_bitvec v)
    | Dense -> RDense (Bitvec.copy v)
  in
  { len; cnt; rep }

let dense_of_bitvec v =
  { len = Bitvec.length v; cnt = Bitvec.count v; rep = RDense v }

let of_sorted_array len idx =
  let n = Array.length idx in
  for k = 0 to n - 1 do
    if idx.(k) < 0 || idx.(k) >= len then
      invalid_arg "Rowset.of_sorted_array: index out of range";
    if k > 0 && idx.(k - 1) >= idx.(k) then
      invalid_arg "Rowset.of_sorted_array: indices not strictly increasing"
  done;
  { len; cnt = n; rep = RSparse idx }

let length r = r.len
let count r = r.cnt

let density r =
  if r.len = 0 then 0. else float_of_int r.cnt /. float_of_int r.len

let sparse_mem idx i =
  let lo = ref 0 and hi = ref (Array.length idx) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if idx.(mid) < i then lo := mid + 1
    else if idx.(mid) > i then hi := mid
    else begin
      lo := mid;
      hi := mid
    end
  done;
  !lo < Array.length idx && idx.(!lo) = i

let mem r i =
  match r.rep with
  | RDense v -> Bitvec.get v i
  | RBig b -> Bitvec.Big.get b i
  | RSparse idx ->
      if i < 0 || i >= r.len then invalid_arg "Rowset.mem: index out of range";
      sparse_mem idx i

let iter_ones f r =
  match r.rep with
  | RDense v -> Bitvec.iter_ones f v
  | RBig b -> Bitvec.Big.iter_ones f b
  | RSparse idx -> Array.iter f idx

let fold_ones f acc r =
  match r.rep with
  | RDense v -> Bitvec.fold_ones f acc v
  | RBig b -> Bitvec.Big.fold_ones f acc b
  | RSparse idx -> Array.fold_left f acc idx

let to_list r = List.rev (fold_ones (fun acc i -> i :: acc) [] r)

let to_bitvec r =
  match r.rep with
  | RDense v -> v
  | RBig b -> Bitvec.Big.to_bitvec b
  | RSparse idx ->
      let v = Bitvec.create r.len in
      Array.iter (fun i -> Bitvec.set v i) idx;
      v

let add r i =
  let v =
    match r.rep with
    | RDense v -> v
    | RBig _ | RSparse _ ->
        let v = to_bitvec r in
        let v = match r.rep with RDense _ -> Bitvec.copy v | _ -> v in
        r.rep <- RDense v;
        v
  in
  if not (Bitvec.get v i) then begin
    Bitvec.set v i;
    r.cnt <- r.cnt + 1
  end;
  r

let union_into ~into r =
  match r.rep with
  | RDense v -> Bitvec.union_into ~into v
  | RBig b -> Bitvec.Big.union_into ~into b
  | RSparse idx ->
      if Bitvec.length into <> r.len then invalid_arg "Rowset: length mismatch";
      Array.iter (fun i -> Bitvec.unsafe_set into i) idx

let diff_into ~into r =
  match r.rep with
  | RDense v -> Bitvec.diff_into ~into v
  | RBig b -> Bitvec.Big.diff_into ~into b
  | RSparse idx ->
      if Bitvec.length into <> r.len then invalid_arg "Rowset: length mismatch";
      Array.iter (fun i -> Bitvec.clear into i) idx

let count_inter r v =
  match r.rep with
  | RDense d -> Bitvec.count_inter d v
  | RBig b -> Bitvec.Big.count_inter b v
  | RSparse idx ->
      if Bitvec.length v <> r.len then invalid_arg "Rowset: length mismatch";
      let acc = ref 0 in
      for k = 0 to Array.length idx - 1 do
        if Bitvec.unsafe_get v idx.(k) then incr acc
      done;
      !acc

let intersects r v =
  match r.rep with
  | RDense d -> Bitvec.intersects d v
  | RBig _ | RSparse _ -> count_inter r v > 0

exception Not_subset

let subset_masked a b ~mask =
  if a.len <> b.len || Bitvec.length mask <> a.len then
    invalid_arg "Rowset.subset_masked: length mismatch";
  match (a.rep, b.rep) with
  | RDense da, RDense db -> Bitvec.subset_masked da db ~mask
  | RBig ba, RBig bb -> Bitvec.Big.subset_masked_bb ba bb ~mask
  | RBig ba, RDense db -> Bitvec.Big.subset_masked_bd ba db ~mask
  | RDense da, RBig bb -> Bitvec.Big.subset_masked_db da bb ~mask
  | RSparse idx, _ -> (
      try
        Array.iter
          (fun i ->
            if Bitvec.unsafe_get mask i && not (mem b i) then raise Not_subset)
          idx;
        true
      with Not_subset -> false)
  | _, RSparse _ -> (
      try
        iter_ones
          (fun i ->
            if Bitvec.unsafe_get mask i && not (mem b i) then raise Not_subset)
          a;
        true
      with Not_subset -> false)

let equal a b =
  a.len = b.len && a.cnt = b.cnt
  &&
  try
    iter_ones (fun i -> if not (mem b i) then raise Not_subset) a;
    true
  with Not_subset -> false
