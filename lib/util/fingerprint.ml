type t = int64

let code_version = "reseed-pipeline-v1"

(* FNV-1a, 64-bit. *)
let empty = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let raw_string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let int h v =
  (* 63-bit OCaml int, little-endian, 8 bytes. *)
  let h = ref h in
  for k = 0 to 7 do
    h := byte !h ((v lsr (8 * k)) land 0xff)
  done;
  !h

let int64 h v =
  let h = ref h in
  for k = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
  done;
  !h

let bool h b = byte h (if b then 1 else 0)
let float h v = int64 h (Int64.bits_of_float v)
let string h s = raw_string (int h (String.length s)) s
let bytes h b = string h (Bytes.unsafe_to_string b)
let salted tag = string (string empty code_version) tag

let option f h = function None -> byte h 0 | Some v -> f (byte h 1) v
let list f h l = List.fold_left f (int h (List.length l)) l
let array f h a = Array.fold_left f (int h (Array.length a)) a

let pattern h p =
  Array.fold_left (fun h b -> byte h (if b then 1 else 0)) (int h (Array.length p)) p

let patterns h ps = array pattern h ps
let bitvec h v = bytes (int h (Bitvec.length v)) (Bitvec.to_bytes v)
let equal = Int64.equal
let to_hex fp = Printf.sprintf "%016Lx" fp
