(** Bounded retry with exponential backoff and deterministic jitter.

    The one retry policy shared by every transient-failure site: pool
    worker chunks, artifact-store IO, checkpoint chunk writes.  An
    exception is {e classified} transient or permanent; transients are
    retried up to a bounded attempt count with exponentially growing,
    deterministically jittered delays; permanents (and exhausted
    transients) surface immediately with their attempt count and total
    backoff attached.

    Determinism: the jitter for attempt [k] of a site labelled [l] is a
    pure function of [(l, k)] (a splitmix64 draw from a
    {!Fingerprint}-derived seed), so reruns back off identically —
    failure paths stay as reproducible as the happy path.

    Work accounting: every retry bumps the [retry_attempts] counter and
    records a [retry.backoff] trace instant. *)

type class_ = Transient | Permanent

type config = {
  max_attempts : int;  (** total attempts, including the first ([>= 1]) *)
  base_delay_s : float;  (** delay before the second attempt *)
  max_delay_s : float;  (** cap on the un-jittered delay *)
}

(** [env_retries ()] is the [RESEED_RETRIES] environment variable when
    set to a non-negative integer — the number of {e retries} after the
    first attempt — and [1] otherwise (the historical retry-once
    policy). *)
val env_retries : unit -> int

(** [default_config ()] is [{ max_attempts = env_retries () + 1;
    base_delay_s = 0.005; max_delay_s = 0.25 }], re-reading the
    environment on each call. *)
val default_config : unit -> config

(** [classify e] — the default classification: [EIO]/[EINTR]/[EAGAIN]/
    [EWOULDBLOCK]/[ENFILE]/[EMFILE]/[EBUSY], {!Faultpoint.Injected} and
    [Sys_error] are transient; other [Unix_error]s,
    {!Error.Reseed_error} and everything else are permanent. *)
val classify : exn -> class_

val class_name : class_ -> string

(** The context of a gave-up retry loop. *)
type failure = {
  attempts : int;  (** attempts made, including the first *)
  backoff_s : float;  (** total time slept between attempts *)
  exn : exn;  (** the last attempt's exception *)
}

(** [run ?config ?classify ?label f] calls [f ~attempt:1] and retries
    per the policy.  [config] defaults to {!default_config} (consulted
    only on the failure path, so the success path costs nothing);
    [label] names the site in metrics, traces and the jitter seed.
    Returns [Ok v] on success, [Error failure] when the policy gives
    up — the caller decides whether to raise, wrap or degrade. *)
val run :
  ?config:config ->
  ?classify:(exn -> class_) ->
  ?label:string ->
  (attempt:int -> 'a) ->
  ('a, failure) result

(** [with_retries ?config ?classify ?label f] is {!run} that re-raises
    the final exception on failure. *)
val with_retries :
  ?config:config ->
  ?classify:(exn -> class_) ->
  ?label:string ->
  (attempt:int -> 'a) ->
  'a
