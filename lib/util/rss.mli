(** Process peak-memory accounting for the scale-tier bench. *)

(** [peak_kb ()] is the peak resident set size of this process in
    kilobytes, from [getrusage(2)], or [None] when the platform cannot
    report it.  Monotone over the process lifetime: it never decreases,
    so per-stage samples attribute a high-water mark to the first stage
    that reached it. *)
val peak_kb : unit -> int option
