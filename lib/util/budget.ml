type stop_reason = Deadline | Cancelled

let stop_reason_name = function Deadline -> "deadline" | Cancelled -> "cancelled"

(* [tripped] latches the first observed stop: 0 live, 1 deadline,
   2 cancelled.  Latching keeps the fast path to one atomic load and makes
   the reported reason stable across repeated polls. *)
type t = { deadline : float option; tripped : int Atomic.t; parent : t option }

let create ?deadline_s () =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  { deadline; tripped = Atomic.make 0; parent = None }

let sub ?deadline_s parent =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  { deadline; tripped = Atomic.make 0; parent = Some parent }

let cancel t = Atomic.set t.tripped 2

let rec refresh t =
  match Atomic.get t.tripped with
  | 0 -> (
      (* A tripped parent trips the child with the same reason; the
         child's latch keeps the inherited reason stable even though the
         parent is polled only while the child is live. *)
      match Option.map refresh t.parent with
      | Some s when s <> 0 ->
          ignore (Atomic.compare_and_set t.tripped 0 s);
          Atomic.get t.tripped
      | _ -> (
          match t.deadline with
          | Some d when Unix.gettimeofday () >= d ->
              (* Never overwrite a concurrent cancel. *)
              ignore (Atomic.compare_and_set t.tripped 0 1);
              Atomic.get t.tripped
          | _ -> 0))
  | s -> s

let expired t = refresh t <> 0

let stop_reason t =
  match refresh t with 0 -> None | 1 -> Some Deadline | _ -> Some Cancelled

let rec remaining_s t =
  if expired t then 0.
  else
    let own =
      match t.deadline with
      | None -> infinity
      | Some d -> Float.max 0. (d -. Unix.gettimeofday ())
    in
    match t.parent with
    | None -> own
    | Some p -> Float.min own (remaining_s p)

let check = function None -> false | Some t -> expired t
