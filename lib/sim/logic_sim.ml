open Reseed_netlist

let block_width = 62

type block = { width : int; per_input : int array }

let valid_mask width =
  if width < 1 || width > block_width then invalid_arg "Logic_sim.valid_mask";
  if width = block_width then max_int else (1 lsl width) - 1

let pack c patterns =
  let count = Array.length patterns in
  if count < 1 || count > block_width then
    invalid_arg "Logic_sim.pack: block must hold 1..62 patterns";
  let n = Circuit.input_count c in
  let per_input = Array.make n 0 in
  Array.iteri
    (fun k pattern ->
      if Array.length pattern <> n then
        invalid_arg "Logic_sim.pack: pattern width mismatch";
      for i = 0 to n - 1 do
        if pattern.(i) then per_input.(i) <- per_input.(i) lor (1 lsl k)
      done)
    patterns;
  { width = count; per_input }

let pack_all c patterns =
  let total = Array.length patterns in
  let rec go start acc =
    if start >= total then List.rev acc
    else
      let len = min block_width (total - start) in
      go (start + len) (pack c (Array.sub patterns start len) :: acc)
  in
  go 0 []

(* Evaluate one gate directly against the node-value array, avoiding any
   per-gate allocation in the hot loop. *)
let eval_node (values : int array) kind (fanins : int array) =
  let full = max_int in
  let fold op seed =
    let acc = ref seed in
    for j = 0 to Array.length fanins - 1 do
      acc := op !acc values.(fanins.(j))
    done;
    !acc
  in
  match kind with
  | Gate.Input -> invalid_arg "Logic_sim.eval_node: Input"
  | Gate.Buf -> values.(fanins.(0))
  | Gate.Not -> lnot values.(fanins.(0)) land full
  | Gate.And -> fold ( land ) full
  | Gate.Nand -> lnot (fold ( land ) full) land full
  | Gate.Or -> fold ( lor ) 0
  | Gate.Nor -> lnot (fold ( lor ) 0) land full
  | Gate.Xor -> fold ( lxor ) 0
  | Gate.Xnor -> lnot (fold ( lxor ) 0) land full
  | Gate.Const0 -> 0
  | Gate.Const1 -> full

let simulate c block =
  let n = Circuit.node_count c in
  let values = Array.make n 0 in
  let pi = ref 0 in
  for i = 0 to n - 1 do
    let node = c.Circuit.nodes.(i) in
    match node.Circuit.kind with
    | Gate.Input ->
        values.(i) <- block.per_input.(!pi);
        incr pi
    | kind -> values.(i) <- eval_node values kind node.Circuit.fanins
  done;
  values

let outputs c values = Array.map (fun o -> values.(o)) c.Circuit.outputs

(* Boolean twin of [eval_node]: reads fanin values in place, so the
   single-pattern reference simulator allocates nothing per gate. *)
let eval_node_bool (values : bool array) kind (fanins : int array) =
  let fold op seed =
    let acc = ref seed in
    for j = 0 to Array.length fanins - 1 do
      acc := op !acc values.(fanins.(j))
    done;
    !acc
  in
  match kind with
  | Gate.Input -> invalid_arg "Logic_sim.eval_node_bool: Input"
  | Gate.Buf -> values.(fanins.(0))
  | Gate.Not -> not values.(fanins.(0))
  | Gate.And -> fold ( && ) true
  | Gate.Nand -> not (fold ( && ) true)
  | Gate.Or -> fold ( || ) false
  | Gate.Nor -> not (fold ( || ) false)
  | Gate.Xor -> fold ( <> ) false
  | Gate.Xnor -> not (fold ( <> ) false)
  | Gate.Const0 -> false
  | Gate.Const1 -> true

let simulate_bool c pattern =
  if Array.length pattern <> Circuit.input_count c then
    invalid_arg "Logic_sim.simulate_bool: pattern width mismatch";
  let n = Circuit.node_count c in
  let values = Array.make n false in
  let pi = ref 0 in
  for i = 0 to n - 1 do
    let node = c.Circuit.nodes.(i) in
    match node.Circuit.kind with
    | Gate.Input ->
        values.(i) <- pattern.(!pi);
        incr pi
    | kind -> values.(i) <- eval_node_bool values kind node.Circuit.fanins
  done;
  values

let output_response c pattern =
  let values = simulate_bool c pattern in
  Array.map (fun o -> values.(o)) c.Circuit.outputs
