(* Benchmark harness regenerating every table and figure of the paper.

   Subcommands (default [all]):
     table1   — Table 1: reseeding solution, set covering vs GATSBY
     table2   — Table 2: detection-matrix reduction statistics
     figure2  — Figure 2: reseedings vs test length trade-off (s1238/adder)
     ablation — design-choice ablations called out in DESIGN.md
     micro    — bechamel micro-benchmarks of the hot kernels
     enginecheck — cross-check the fault-simulation engines bit-for-bit
     scale    — the xl tier: per-stage wall time and peak RSS on
                10k-100k-fault circuits, written to BENCH_scale.json

   Environment:
     RESEED_BENCH_FULL=1   run the full circuit suite (slow) instead of the
                           quick suite.
     RESEED_BENCH_SCALE=N  divisor applied to the biggest circuits' specs
                           (default 4; set 1 for the unscaled suite).
     RESEED_BENCH_CSV=DIR  also dump table1.csv / table2.csv / figure2.csv
                           into DIR for plotting.
     RESEED_BENCH_JSON=F   machine-readable run summary path (default
                           BENCH_reseed.json in the working directory).
     RESEED_COLLAPSE=0     disable structural fault collapsing (on by
                           default here: one simulated representative per
                           equivalence/dominance class).
     RESEED_ENGINE=E       fault-simulation engine: event | cpt | hybrid
                           (default hybrid).
     RESEED_BENCH_BASELINE=F
                           embed a previously written summary (e.g. a
                           sequential event-engine run) verbatim under the
                           "baseline" key of the new summary.
     RESEED_JOBS=N         worker-domain count for the parallel phases
                           (default: the machine's recommended count).
     RESEED_CACHE=DIR      artifact store: completed pipeline stages
                           (ATPG, matrix, reduce, solve, truncate, sweep,
                           gatsby) persist under DIR and reload on the
                           next run; a warm table1 rerun touches neither
                           ATPG nor the matrix builder.
     RESEED_SCALE_CIRCUITS=a,b
                           xl-tier members for the [scale] bench (default:
                           the smallest xl circuit; "all" = the whole
                           suite).
     RESEED_SCALE_JSON=F   scale-bench summary path (default
                           BENCH_scale.json in the working directory).
     RESEED_SCALE_RSS_BUDGET_KB=N
                           peak-RSS budget recorded in the scale summary
                           (default: 1.5x the measured peak, rounded up
                           to a 64 MB boundary) — the value CI gates
                           fresh runs against.
     RESEED_ROWSET=R       pin the row representation (dense | sparse |
                           big | auto); used by the CI solution-identity
                           check. *)

open Reseed_core
open Reseed_gatsby
open Reseed_netlist
open Reseed_setcover
open Reseed_tpg
open Reseed_util

let full_run = Sys.getenv_opt "RESEED_BENCH_FULL" = Some "1"

let scale_factor =
  match Sys.getenv_opt "RESEED_BENCH_SCALE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let log fmt = Printf.printf (fmt ^^ "\n%!")

let csv_dir = Sys.getenv_opt "RESEED_BENCH_CSV"

let collapse_on =
  match Sys.getenv_opt "RESEED_COLLAPSE" with Some "0" -> false | _ -> true

let sim_engine =
  match Sys.getenv_opt "RESEED_ENGINE" with
  | None -> Reseed_fault.Fault_sim.Hybrid
  | Some s -> (
      match Reseed_fault.Fault_sim.engine_of_string s with
      | Some e -> e
      | None ->
          Printf.eprintf "RESEED_ENGINE=%S: expected event|cpt|hybrid\n" s;
          exit 2)

let bench_json_path =
  match Sys.getenv_opt "RESEED_BENCH_JSON" with
  | Some p -> p
  | None -> "BENCH_reseed.json"

let store = Artifact.from_env ()

(* Per-circuit wall-clock / work accounting feeding BENCH_reseed.json. *)
type circuit_stats = {
  mutable prep_s : float;
  mutable table1_s : float;
  mutable fault_sims : int;
  mutable event_props : int;
      (* cumulative event propagations on the circuit's simulator *)
  mutable universe_faults : int;
  mutable rep_faults : int;
}

let stats : (string, circuit_stats) Hashtbl.t = Hashtbl.create 16
let stats_order : string list ref = ref []

let stats_for name =
  match Hashtbl.find_opt stats name with
  | Some s -> s
  | None ->
      let s =
        {
          prep_s = 0.0;
          table1_s = 0.0;
          fault_sims = 0;
          event_props = 0;
          universe_faults = 0;
          rep_faults = 0;
        }
      in
      Hashtbl.add stats name s;
      stats_order := name :: !stats_order;
      s

(* Transition-delay dimension: the same Table 1 flow re-run under the
   launch/capture model on a small subset.  Collapsing stays off (stuck-at
   equivalences do not lift to launch/capture semantics) and GATSBY is
   skipped — the point is the covering flow under another fault model, not
   the GA baseline.  Feeds the "transition" array of BENCH_reseed.json. *)
let transition_suite = [ "c432"; "s820" ]

let transition_rows :
    (string * int * int * float * Suite.table1_row) list ref =
  ref []

let write_bench_json ~total_s () =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\n";
  pr "  \"suite\": \"%s\",\n" (if full_run then "full" else "quick");
  pr "  \"jobs\": %d,\n" (Pool.default_jobs ());
  pr "  \"collapse\": %b,\n" collapse_on;
  pr "  \"engine\": \"%s\",\n" (Reseed_fault.Fault_sim.engine_name sim_engine);
  pr "  \"scale_factor\": %d,\n" scale_factor;
  pr "  \"circuits\": [";
  List.iteri
    (fun i name ->
      let s = Hashtbl.find stats name in
      pr "%s\n    { \"name\": \"%s\", \"prep_s\": %.3f, \"table1_s\": %.3f, \"fault_sims\": %d, \"event_props\": %d, \"universe_faults\": %d, \"simulated_faults\": %d }"
        (if i = 0 then "" else ",")
        name s.prep_s s.table1_s s.fault_sims s.event_props s.universe_faults
        s.rep_faults)
    (List.rev !stats_order);
  pr "\n  ],\n";
  pr "  \"transition\": [";
  List.iteri
    (fun i (name, faults, patterns, wall_s, row) ->
      pr "%s\n    { \"name\": \"%s\", \"faults\": %d, \"patterns\": %d, \"wall_s\": %.3f, \"tpgs\": [%s] }"
        (if i = 0 then "" else ",")
        name faults patterns wall_s
        (String.concat ", "
           (List.map
              (fun e ->
                Printf.sprintf
                  "{ \"tpg\": \"%s\", \"triplets\": %d, \"test_length\": %d, \"fault_sims\": %d }"
                  e.Suite.tpg e.Suite.sc_triplets e.Suite.sc_test_length
                  e.Suite.sc_fault_sims)
              row.Suite.entries)))
    (List.rev !transition_rows);
  pr "\n  ],\n";
  let cv name = match Metrics.get name with Some (Metrics.Counter_v v) -> v | _ -> 0 in
  pr "  \"cache\": { \"enabled\": %b, \"hits\": %d, \"misses\": %d, \"corrupt\": %d },\n"
    (store <> None) (cv "artifact_hits") (cv "artifact_misses") (cv "artifact_corrupt");
  pr "  \"metrics\": %s,\n" (Metrics.to_json ());
  pr "  \"total_s\": %.3f" total_s;
  (* A previous run's summary (typically RESEED_ENGINE=event RESEED_JOBS=1)
     embeds verbatim so one file carries both sides of the comparison. *)
  (match Sys.getenv_opt "RESEED_BENCH_BASELINE" with
  | Some path when Sys.file_exists path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
            really_input_string ic len)
      in
      pr ",\n  \"baseline\": %s" (String.trim contents)
  | _ -> ());
  pr "\n}\n";
  let oc = open_out bench_json_path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (Buffer.contents buf));
  log "  [json] wrote %s" bench_json_path

let dump_csv name contents =
  match csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
          output_string oc contents);
      log "  [csv] wrote %s" path

(* GATSBY is simulation-bound; the paper itself has no GATSBY numbers for
   the largest circuits ("too large to be dealt with by GATSBY"). *)
let gatsby_gate_limit = 1600

let suite_names () = if full_run then Suite.full_suite else Suite.quick_suite

let scale_for name =
  let spec = Library.spec_of name in
  if spec.Generator.n_gates > 2000 then scale_factor else 1

let prepared = Hashtbl.create 16

let prepare name =
  match Hashtbl.find_opt prepared name with
  | Some p -> p
  | None ->
      let t0 = Unix.gettimeofday () in
      let p =
        Suite.prepare ~scale_factor:(scale_for name) ~sim_engine
          ~collapse:collapse_on ?store name
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let s = stats_for name in
      s.prep_s <- elapsed;
      (match p.Suite.collapse with
      | Some c ->
          s.universe_faults <- Reseed_fault.Collapse.universe_count c;
          s.rep_faults <- Reseed_fault.Collapse.rep_count c
      | None ->
          s.universe_faults <- Array.length (Reseed_fault.Fault.universe p.Suite.circuit);
          s.rep_faults <- Reseed_fault.Fault_sim.fault_count p.Suite.sim);
      log "  [prep] %s: %d PIs, %d gates, %d ATPG patterns, %d target faults%s (%.1fs)"
        name
        (Circuit.input_count p.Suite.circuit)
        (Circuit.gate_count p.Suite.circuit)
        (Array.length p.Suite.tests)
        (Bitvec.count p.Suite.targets)
        (match p.Suite.collapse with
        | Some c ->
            Printf.sprintf " (%d classes, -%.0f%%)" (Reseed_fault.Collapse.rep_count c)
              (Reseed_fault.Collapse.reduction_pct c)
        | None -> "")
        elapsed;
      Hashtbl.add prepared name p;
      p

let run_transition_table1 () =
  log "== Table 1 (transition-delay faults, subset) ==";
  let rows =
    List.map
      (fun name ->
        let t0 = Unix.gettimeofday () in
        let p =
          Suite.prepare ~scale_factor:(scale_for name) ~sim_engine
            ~fault_model:Reseed_fault.Fault_model.Transition_delay
            ~collapse:false ?store name
        in
        let row = Suite.table1_row ~with_gatsby:false p in
        let wall_s = Unix.gettimeofday () -. t0 in
        let faults = Reseed_fault.Fault_sim.fault_count p.Suite.sim in
        let patterns = Array.length p.Suite.tests in
        log "  [t1-transition] %s done (%.1fs, %d faults, %d patterns)" name
          wall_s faults patterns;
        transition_rows :=
          (name, faults, patterns, wall_s, row) :: !transition_rows;
        row)
      transition_suite
  in
  print_string (Suite.render_table1 rows);
  log "Launch/capture semantics: each fault needs a pattern pair, so the";
  log "detection matrix is sparser — the covering flow itself is unchanged."

let run_table1 () =
  log "== Table 1: reseeding solutions (set covering vs GATSBY) ==";
  let rows =
    List.map
      (fun name ->
        let p = prepare name in
        let with_gatsby = Circuit.gate_count p.Suite.circuit <= gatsby_gate_limit in
        let t0 = Unix.gettimeofday () in
        let row = Suite.table1_row ~with_gatsby p in
        let elapsed = Unix.gettimeofday () -. t0 in
        let s = stats_for name in
        s.table1_s <- elapsed;
        s.fault_sims <-
          List.fold_left
            (fun acc e ->
              acc + e.Suite.sc_fault_sims + Option.value ~default:0 e.Suite.gatsby_fault_sims)
            0 row.Suite.entries;
        s.event_props <- Reseed_fault.Fault_sim.event_propagations p.Suite.sim;
        log "  [t1] %s done (%.1fs, %d event propagations)" name elapsed s.event_props;
        row)
      (suite_names ())
  in
  print_string (Suite.render_table1 rows);
  dump_csv "table1.csv" (Suite.csv_table1 rows);
  log "Paper shape: set covering needs as few or fewer triplets than GATSBY";
  log "(improvements of -2..-25 triplets on the paper's circuits), at a";
  log "fraction of the fault simulations; GATSBY column empty where skipped.";
  print_newline ();
  run_transition_table1 ()

let run_table2 () =
  log "== Table 2: set covering algorithm (reduction impact) ==";
  let rows = List.map (fun name -> Suite.table2_row (prepare name)) (suite_names ()) in
  print_string (Suite.render_table2 rows);
  dump_csv "table2.csv" (Suite.csv_table2 rows);
  log "Paper shape: reduction prunes the matrix by orders of magnitude; on";
  log "several circuits the residual is empty (necessary triplets only)."

let run_figure2 () =
  log "== Figure 2: trade-off reseedings vs test length (s1238, adder) ==";
  let p = prepare "s1238" in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let grid = [ 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  let points = Suite.figure2 ~grid p tpg in
  print_string (Tradeoff.render points);
  let t =
    Table.create ~title:"Figure 2 series"
      [
        ("T (cycles)", Table.Right);
        ("#Triplets", Table.Right);
        ("Test Length", Table.Right);
      ]
  in
  List.iter
    (fun pt ->
      Table.add_row t
        [
          Table.cell_int pt.Tradeoff.cycles;
          Table.cell_int pt.Tradeoff.triplets;
          Table.cell_int pt.Tradeoff.test_length;
        ])
    points;
  Table.print t;
  dump_csv "figure2.csv" (Suite.csv_figure2 points);
  log "Paper shape: s1238 goes from 11 triplets / 5,427 patterns to 2";
  log "triplets / 15,551 patterns as T grows — monotone fewer triplets,";
  log "monotone longer test."

let run_ablation () =
  log "== Ablations (DESIGN.md section 5) ==";
  let p = prepare "s1238" in
  let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
  let base_builder = Builder.default_config in
  let flow_with ?(method_ = Solution.Exact) ?(reduce = Reduce.default_config)
      ?(builder = base_builder) ?(objective = Flow.Min_triplets) () =
    Flow.run
      ~config:{ Flow.builder; method_; reduce; objective }
      p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
  in
  let t =
    Table.create ~title:"Ablation: solver & reduction variants (s1238, adder)"
      [
        ("Variant", Table.Left);
        ("#Triplets", Table.Right);
        ("Test Length", Table.Right);
        ("Residual", Table.Right);
        ("Solver nodes", Table.Right);
        ("Time (s)", Table.Right);
      ]
  in
  let add name r =
    let s = r.Flow.solution.Solution.stats in
    Table.add_row t
      [
        name;
        Table.cell_int (Flow.reseedings r);
        Table.cell_int r.Flow.test_length;
        Printf.sprintf "%dx%d" s.Solution.reduced_rows s.Solution.reduced_cols;
        Table.cell_int s.Solution.solver_nodes;
        Table.cell_float ~decimals:2 r.Flow.elapsed_s;
      ]
  in
  add "full (essential+rowdom+coldom, exact)" (flow_with ());
  add "no column dominance"
    (flow_with ~reduce:{ Reduce.default_config with Reduce.col_dominance = false } ());
  add "essentials only"
    (flow_with
       ~reduce:
         {
           Reduce.default_config with
           Reduce.essentials = true;
           row_dominance = false;
           col_dominance = false;
         }
       ());
  add "greedy end-game" (flow_with ~method_:Solution.Greedy_only ());
  add "exact, no reduction" (flow_with ~method_:Solution.No_reduction_exact ());
  add "portfolio end-game" (flow_with ~method_:Solution.Portfolio_race ());
  add "shared operand σ=1"
    (flow_with
       ~builder:
         {
           base_builder with
           Builder.operand_mode =
             Builder.Shared_operand (Word.one (Circuit.input_count p.Suite.circuit));
         }
       ());
  add "objective: min test length" (flow_with ~objective:Flow.Min_test_length ());
  Table.print t;
  (* GATSBY budget sensitivity: a modern GA budget narrows the gap — the
     published GATSBY numbers come from a far more constrained tool. *)
  let t2 =
    Table.create ~title:"Ablation: GATSBY GA budget (s1238, adder)"
      [
        ("Budget (pop x gens)", Table.Left);
        ("#Triplets", Table.Right);
        ("Coverage %", Table.Right);
        ("Fault sims", Table.Right);
      ]
  in
  List.iter
    (fun (pop, gens) ->
      let config =
        {
          Gatsby.default_config with
          Gatsby.ga = { Ga.default_config with Ga.population = pop; generations = gens };
        }
      in
      let rng = Rng.create 1234 in
      let g = Gatsby.run ~config p.Suite.sim tpg ~rng ~targets:p.Suite.targets in
      Table.add_row t2
        [
          Printf.sprintf "%dx%d" pop gens;
          Table.cell_int (List.length g.Gatsby.triplets);
          Table.cell_float ~decimals:1
            (100.0
            *. float_of_int (Bitvec.count g.Gatsby.detected)
            /. float_of_int (max 1 (Bitvec.count p.Suite.targets)));
          Table.cell_int g.Gatsby.fault_sims;
        ])
    [ (6, 3); (10, 5); (12, 6); (16, 8); (24, 16) ];
  Table.print t2

(* CI gate: every engine must grade every fault of every pattern
   identically; exits non-zero on the first divergence.  Also prints the
   propagation-count ratio the CPT engines buy. *)
let run_enginecheck () =
  log "== Engine cross-check (event vs cpt vs hybrid) ==";
  let module FS = Reseed_fault.Fault_sim in
  let mismatches = ref 0 in
  List.iter
    (fun name ->
      let c = Library.load name in
      let faults = Reseed_fault.Fault.all c in
      let rng = Rng.create 97 in
      let n = Circuit.input_count c in
      let patterns = Array.init 150 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
      let grade engine =
        let sim = FS.create ~engine c faults in
        let map = FS.detection_map sim patterns in
        let detections = Array.fold_left (fun acc row -> acc + Bitvec.count row) 0 map in
        (map, detections, FS.event_propagations sim)
      in
      let ev_map, ev_det, ev_props = grade FS.Event in
      List.iter
        (fun engine ->
          let map, det, props = grade engine in
          let identical =
            Array.length map = Array.length ev_map
            && Array.for_all2 Bitvec.equal map ev_map
          in
          if not identical then incr mismatches;
          log "  [%s] %-6s: %d detections (event %d), %d props (event %d, %.1fx)%s"
            name (FS.engine_name engine) det ev_det props ev_props
            (float_of_int ev_props /. float_of_int (max 1 props))
            (if identical then "" else "  ** MISMATCH **"))
        [ FS.Cpt; FS.Hybrid ])
    [ "c17"; "c432"; "s420" ];
  if !mismatches > 0 then begin
    log "enginecheck FAILED: %d engine(s) diverged from the event oracle" !mismatches;
    exit 1
  end;
  log "enginecheck OK: detection matrices bit-identical across engines"

let run_micro () =
  log "== Micro-benchmarks (bechamel) ==";
  let open Bechamel in
  let c = Library.load "c432" in
  let faults = Reseed_fault.Fault.all c in
  let sim = Reseed_fault.Fault_sim.create c faults in
  let rng = Rng.create 3 in
  let n = Circuit.input_count c in
  let patterns = Array.init 62 (fun _ -> Array.init n (fun _ -> Rng.bool rng)) in
  let active = Bitvec.create (Array.length faults) in
  Bitvec.fill_all active;
  let p = prepare "c432" in
  let tpg = Accumulator.adder n in
  let initial =
    Builder.build p.Suite.sim tpg ~tests:p.Suite.tests ~targets:p.Suite.targets
      ~config:Builder.default_config
  in
  let w1 = Word.random rng 64 and w2 = Word.random rng 64 in
  let tests =
    [
      Test.make ~name:"fault_sim_block_c432"
        (Staged.stage (fun () ->
             ignore (Reseed_fault.Fault_sim.detected_set sim patterns ~active)));
      Test.make ~name:"matrix_reduction_c432"
        (Staged.stage (fun () -> ignore (Reduce.run initial.Builder.matrix)));
      Test.make ~name:"exact_cover_c432"
        (Staged.stage (fun () -> ignore (Solution.solve initial.Builder.matrix)));
      Test.make ~name:"word_mul_64b" (Staged.stage (fun () -> ignore (Word.mul w1 w2)));
      Test.make ~name:"tpg_burst_adder_62"
        (Staged.stage (fun () ->
             ignore
               (Tpg.run_bits tpg ~seed:(Word.random rng n) ~operand:(Word.random rng n)
                  ~cycles:62)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> log "  %-26s %12.1f ns/run" name est
          | _ -> log "  %-26s (no estimate)" name)
        results)
    tests

(* The scale tier.  Unlike the table benches this measures the pipeline's
   resource envelope, not the paper's numbers: per-stage wall clock and
   peak RSS over xl circuits (10k-100k universe faults) land in
   BENCH_scale.json, and CI gates a fresh run's peak against the
   committed [rss_budget_kb].  Peak RSS is monotone over the process, so
   each stage's sample is the high-water mark reached by the end of that
   stage. *)

let scale_json_path =
  Option.value (Sys.getenv_opt "RESEED_SCALE_JSON") ~default:"BENCH_scale.json"

let scale_circuits () =
  match Sys.getenv_opt "RESEED_SCALE_CIRCUITS" with
  | Some "all" -> Suite.xl_suite
  | Some s ->
      List.filter
        (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' s))
  | None -> [ List.hd Suite.xl_suite ]

type scale_stage = { stage : string; wall_s : float; stage_rss_kb : int }

type scale_row = {
  sc_name : string;
  sc_gates : int;
  sc_universe : int;
  sc_rows : int;
  sc_cols : int;
  sc_ones : int;
  sc_repr : (string * int) list;  (** rowset representation mix *)
  sc_solution : int;
  sc_sims : int;
  sc_stages : scale_stage list;
}

let run_scale () =
  log "== Scale tier: per-stage wall / peak RSS (xl suite) ==";
  let rss () = Option.value (Rss.peak_kb ()) ~default:0 in
  let rows =
    List.map
      (fun name ->
        let stages = ref [] in
        let staged stage f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          let wall_s = Unix.gettimeofday () -. t0 in
          stages := { stage; wall_s; stage_rss_kb = rss () } :: !stages;
          log "  [%s] %-7s %7.1fs  rss %d MB" name stage wall_s (rss () / 1024);
          r
        in
        (* Full xl gate count: scale_for would divide it back down. *)
        let p =
          staged "prepare" (fun () ->
              Suite.prepare ~scale_factor:1 ~sim_engine ~collapse:collapse_on
                ?store name)
        in
        let tpg = Accumulator.adder (Circuit.input_count p.Suite.circuit) in
        let built =
          staged "matrix" (fun () ->
              Builder.build ?store p.Suite.sim tpg ~tests:p.Suite.tests
                ~targets:p.Suite.targets ~config:Builder.default_config)
        in
        let m = built.Builder.matrix in
        ignore (staged "reduce" (fun () -> Reduce.run m));
        (* [solve] re-runs its own reduction; the residual it solves is
           tiny, so the stage is dominated by the end-game itself. *)
        let sol = staged "solve" (fun () -> Solution.solve m) in
        if not (Solution.verify m sol) then begin
          log "scale FAILED: %s solution does not cover the matrix" name;
          exit 1
        end;
        let repr = [| 0; 0; 0 |] in
        for i = 0 to Matrix.rows m - 1 do
          let k =
            match Rowset.repr (Matrix.rowset m i) with
            | Rowset.Dense -> 0
            | Rowset.Sparse -> 1
            | Rowset.Big -> 2
          in
          repr.(k) <- repr.(k) + 1
        done;
        let universe =
          match p.Suite.collapse with
          | Some c -> Reseed_fault.Collapse.universe_count c
          | None -> Array.length (Reseed_fault.Fault.universe p.Suite.circuit)
        in
        log "  [%s] matrix %dx%d (%d ones), %d universe faults, %d triplets"
          name (Matrix.rows m) (Matrix.cols m) (Matrix.ones m) universe
          (Solution.cardinality sol);
        {
          sc_name = name;
          sc_gates = Circuit.gate_count p.Suite.circuit;
          sc_universe = universe;
          sc_rows = Matrix.rows m;
          sc_cols = Matrix.cols m;
          sc_ones = Matrix.ones m;
          sc_repr =
            [ ("dense", repr.(0)); ("sparse", repr.(1)); ("big", repr.(2)) ];
          sc_solution = Solution.cardinality sol;
          sc_sims = built.Builder.fault_sims;
          sc_stages = List.rev !stages;
        })
      (scale_circuits ())
  in
  let peak = rss () in
  let budget =
    match Sys.getenv_opt "RESEED_SCALE_RSS_BUDGET_KB" with
    | Some s -> ( try int_of_string s with _ -> 0)
    | None ->
        (* 1.5x the measured peak, up to the next 64 MB boundary: slack
           for allocator noise without letting a dense-matrix regression
           slip through. *)
        let raw = peak + (peak / 2) in
        (raw + 65535) / 65536 * 65536
  in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "{\n";
  pr "  \"jobs\": %d,\n" (Pool.default_jobs ());
  pr "  \"engine\": \"%s\",\n" (Reseed_fault.Fault_sim.engine_name sim_engine);
  pr "  \"collapse\": %b,\n" collapse_on;
  pr "  \"rowset\": \"%s\",\n"
    (match Rowset.forced () with
    | Some r -> Rowset.repr_name r
    | None -> "auto");
  pr "  \"circuits\": [";
  List.iteri
    (fun i r ->
      pr "%s\n    { \"name\": \"%s\", \"gates\": %d, \"universe_faults\": %d,\n"
        (if i = 0 then "" else ",")
        r.sc_name r.sc_gates r.sc_universe;
      pr "      \"matrix\": { \"rows\": %d, \"cols\": %d, \"ones\": %d, \"density\": %.6f,\n"
        r.sc_rows r.sc_cols r.sc_ones
        (float_of_int r.sc_ones /. float_of_int (max 1 (r.sc_rows * r.sc_cols)));
      pr "        \"repr\": { %s } },\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) r.sc_repr));
      pr "      \"solution_triplets\": %d, \"fault_sims\": %d,\n" r.sc_solution
        r.sc_sims;
      pr "      \"stages\": [%s] }"
        (String.concat ", "
           (List.map
              (fun s ->
                Printf.sprintf
                  "{ \"stage\": \"%s\", \"wall_s\": %.3f, \"rss_kb\": %d }"
                  s.stage s.wall_s s.stage_rss_kb)
              r.sc_stages)))
    rows;
  pr "\n  ],\n";
  pr "  \"peak_rss_kb\": %d,\n" peak;
  pr "  \"rss_budget_kb\": %d\n" budget;
  pr "}\n";
  let oc = open_out scale_json_path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (Buffer.contents buf));
  log "  [json] wrote %s (peak rss %d MB, budget %d MB)" scale_json_path
    (peak / 1024) (budget / 1024)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (* Observability mirrors the CLI's --trace/--metrics: at_exit writers
     so even an aborted bench dumps what it recorded. *)
  (match Sys.getenv_opt "RESEED_TRACE" with
  | Some path when path <> "" ->
      Trace.enable ();
      at_exit (fun () -> try Trace.write_file path with Sys_error _ -> ())
  | _ -> ());
  (match Sys.getenv_opt "RESEED_METRICS" with
  | Some path when path <> "" ->
      at_exit (fun () -> try Metrics.write_file path with Sys_error _ -> ())
  | _ -> ());
  let t0 = Unix.gettimeofday () in
  (match mode with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "figure2" -> run_figure2 ()
  | "ablation" -> run_ablation ()
  | "micro" -> run_micro ()
  | "enginecheck" -> run_enginecheck ()
  | "scale" -> run_scale ()
  | "all" ->
      run_table1 ();
      print_newline ();
      run_table2 ();
      print_newline ();
      run_figure2 ();
      print_newline ();
      run_ablation ();
      print_newline ();
      run_micro ()
  | other ->
      Printf.eprintf
        "unknown bench %S (table1|table2|figure2|ablation|micro|enginecheck|scale|all)\n"
        other;
      exit 2);
  let total_s = Unix.gettimeofday () -. t0 in
  (* enginecheck is a pass/fail gate with no table stats, and scale
     writes its own summary; either would clobber a real run's JSON. *)
  if mode <> "enginecheck" && mode <> "scale" then write_bench_json ~total_s ();
  log "\nTotal bench time: %.1fs (jobs=%d, engine=%s, collapse=%b)" total_s
    (Pool.default_jobs ())
    (Reseed_fault.Fault_sim.engine_name sim_engine)
    collapse_on
