(* reseed — command-line front-end to the Functional BIST reseeding
   toolkit.

   Subcommands:
     info      list the built-in benchmark catalog
     atpg      run the deterministic ATPG on a circuit
     solve     compute a minimal reseeding solution (the paper's flow)
     gatsby    run the GATSBY-style genetic baseline
     tradeoff  sweep evolution length T (Figure 2 style)
     batch     run a manifest-driven multi-circuit campaign
     compress  code-based test-data compression over the covering core
     fullscan  extract the combinational core of a sequential circuit
     gen       emit a synthetic ISCAS-like circuit as a .bench file
     chaos     crash-consistency harness: sweep fault injections over
               child solve runs and check the solution never changes

   Circuits are named by catalog entry ("c432", "s1238", …), by a
   scaled-up xl-tier name ("s1238_x32": any catalog base with an _x2 to
   _x64 suffix), or by a path to an ISCAS .bench file.

   Exit codes (see Reseed_util.Error): 0 success (including
   deadline-degraded runs), 2 usage, 3 input, 4 infeasible, 5 worker
   task failure, 66 chaos abort crashpoint, 70 internal, 130
   interrupted. *)

open Cmdliner
open Reseed_core
open Reseed_gatsby
open Reseed_netlist
open Reseed_tpg
open Reseed_util

let load_circuit name ~scale =
  if Filename.check_suffix name ".bench" then Bench_io.parse_file name
  else Library.load ~scale_factor:scale name

(* Uniform error containment: structured errors print as
   [file:line:col: message] and map to their documented exit code;
   environment failures (filesystem, OS) are input errors; anything
   else is a bug and exits 70 — no exception ever reaches OCaml's
   default handler, whose exit code (2) would collide with Usage. *)
let guard f =
  try f () with
  | Error.Reseed_error e ->
      Printf.eprintf "reseed: %s\n%!" (Error.to_string e);
      exit (Error.exit_code e.Error.code)
  | Pool.Task_error _ as e ->
      Printf.eprintf "reseed: %s\n%!" (Printexc.to_string e);
      exit (Error.exit_code Error.Task_failed)
  | Sys_error m ->
      Printf.eprintf "reseed: %s\n%!" m;
      exit (Error.exit_code Error.Input_error)
  | Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "reseed: %s%s: %s\n%!" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message err);
      exit (Error.exit_code Error.Input_error)
  | e ->
      Printf.eprintf "reseed: internal error: %s\n%!" (Printexc.to_string e);
      exit (Error.exit_code Error.Internal)

(* A budget is created for every long-running command: the deadline (if
   any) and SIGINT share the same token, so both wind the flow down
   through the same graceful paths.  A second SIGINT exits immediately. *)
let budget_with_sigint deadline =
  let budget = Budget.create ?deadline_s:deadline () in
  let again = ref false in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if !again then exit (Error.exit_code Error.Interrupted);
         again := true;
         Budget.cancel budget));
  budget

(* Exit 130 when the run ended because of ^C; callers flush their
   checkpointed/partial state before reaching this. *)
let exit_if_interrupted budget =
  match Budget.stop_reason budget with
  | Some Budget.Cancelled -> exit (Error.exit_code Error.Interrupted)
  | Some Budget.Deadline | None -> ()

let with_jobs jobs f =
  match jobs with
  | None -> f None
  | Some j -> Pool.with_pool ~jobs:j (fun p -> f (Some p))

(* Common arguments *)

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc:"Catalog name or .bench file.")

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Divide synthetic circuit size by $(docv).")

let tpg_kind_conv =
  Arg.enum
    [
      ("adder", `Adder);
      ("subtracter", `Subtracter);
      ("multiplier", `Multiplier);
      ("mp-lfsr", `Mp_lfsr);
    ]

let tpg_arg =
  Arg.(value & opt tpg_kind_conv `Adder & info [ "tpg" ] ~docv:"TPG" ~doc:"TPG model: $(b,adder), $(b,subtracter), $(b,multiplier) or $(b,mp-lfsr).")

let tpg_of_kind kind width =
  match kind with
  | `Adder -> Accumulator.adder width
  | `Subtracter -> Accumulator.subtracter width
  | `Multiplier -> Accumulator.multiplier width
  | `Mp_lfsr -> Lfsr.multi_polynomial width

let cycles_arg =
  Arg.(value & opt int 150 & info [ "cycles"; "T" ] ~docv:"T" ~doc:"Evolution length per triplet.")

let fault_model_conv =
  Arg.enum
    [
      ("stuck", Reseed_fault.Fault_model.Stuck_at);
      ("transition", Reseed_fault.Fault_model.Transition_delay);
    ]

let fault_model_arg =
  Arg.(value & opt fault_model_conv Reseed_fault.Fault_model.Stuck_at & info [ "fault-model" ] ~docv:"M" ~doc:"Fault model: $(b,stuck) (single stuck-at, the paper's model, default) or $(b,transition) (transition-delay faults detected by launch/capture pairs of consecutive patterns).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc:"Wall-clock budget in seconds.  On expiry the flow degrades gracefully: every phase returns its best partial result and the run still exits 0.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the parallel phases (default: available cores).")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc:"Stream completed detection-matrix rows to $(docv) (crash-safe chunks) and resume from whatever valid rows it already holds.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Record phase spans and write a Chrome trace_event JSON to $(docv) (open in Perfetto or chrome://tracing).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Write the work-counter registry to $(docv) as JSON, or NDJSON if $(docv) ends in .ndjson.")

let cache_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc:"Content-addressed artifact store: completed pipeline stages (ATPG, matrix, reduce, solve, truncate) are persisted under $(docv) and reloaded on reruns.  Defaults to $(b,RESEED_CACHE) when set.")

let chaos_arg =
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc:"Deterministic fault injection schedule $(i,SEED:POINT=KIND[:ARG][@SEL][,...]) — a development/testing tool (see the manual).  Overrides $(b,RESEED_CHAOS).")

let apply_chaos = function
  | Some spec -> Faultpoint.configure_string spec
  | None -> ()

let cache_stats_line () =
  let v name = Metrics.value (Metrics.counter name) in
  Printf.sprintf "cache: %d hits, %d misses, %d corrupt" (v "artifact_hits")
    (v "artifact_misses") (v "artifact_corrupt")

(* The writers run from [at_exit] so interrupted (exit 130) and failed
   runs still dump whatever was recorded; a write failure never masks
   the run's own exit code. *)
let setup_observability ~trace ~metrics =
  Option.iter
    (fun path ->
      Trace.enable ();
      at_exit (fun () -> try Trace.write_file path with Sys_error _ -> ()))
    trace;
  Option.iter
    (fun path ->
      at_exit (fun () -> try Metrics.write_file path with Sys_error _ -> ()))
    metrics

(* info *)

let info_cmd =
  let run () =
    let t =
      Table.create ~title:"Built-in benchmark catalog"
        [
          ("Name", Table.Left);
          ("PIs", Table.Right);
          ("POs", Table.Right);
          ("Gates", Table.Right);
          ("Source", Table.Left);
        ]
    in
    List.iter
      (fun (name, spec) ->
        Table.add_row t
          [
            name;
            Table.cell_int spec.Generator.n_inputs;
            Table.cell_int spec.Generator.n_outputs;
            Table.cell_int spec.Generator.n_gates;
            (if name = "c17" then "embedded ISCAS netlist" else "synthetic ISCAS-like");
          ])
      Library.paper_suite;
    Table.print t;
    let xl =
      Table.create ~title:"Scale tier (synthetic, 10k-100k universe faults)"
        [
          ("Name", Table.Left);
          ("PIs", Table.Right);
          ("POs", Table.Right);
          ("Gates", Table.Right);
        ]
    in
    List.iter
      (fun name ->
        let spec = Library.spec_of name in
        Table.add_row xl
          [
            name;
            Table.cell_int spec.Generator.n_inputs;
            Table.cell_int spec.Generator.n_outputs;
            Table.cell_int spec.Generator.n_gates;
          ])
      Library.xl_names;
    Table.print xl;
    print_string
      "Any catalog name takes an _x2.._x64 suffix (e.g. c880_x64) to scale it up.\n"
  in
  Cmd.v (Cmd.info "info" ~doc:"List the built-in benchmark catalog and the xl scale tier.")
    Term.(const run $ const ())

(* atpg *)

let atpg_cmd =
  let engine_conv =
    Arg.enum [ ("podem", Reseed_atpg.Atpg.Podem_engine); ("sat", Reseed_atpg.Atpg.Sat_engine) ]
  in
  let engine_arg =
    Arg.(value & opt engine_conv Reseed_atpg.Atpg.Podem_engine & info [ "engine" ] ~docv:"E" ~doc:"Deterministic engine: $(b,podem) or $(b,sat).")
  in
  let run name scale engine fault_model deadline chaos trace metrics =
    guard @@ fun () ->
    apply_chaos chaos;
    setup_observability ~trace ~metrics;
    let budget = budget_with_sigint deadline in
    let c = load_circuit name ~scale in
    Printf.printf "%s\n" (Circuit.stats_line c);
    let config = { Reseed_atpg.Atpg.default_config with Reseed_atpg.Atpg.engine } in
    let sim, r = Reseed_atpg.Atpg.run_circuit ~config ~fault_model ~budget c in
    (match fault_model with
    | Reseed_fault.Fault_model.Stuck_at ->
        Printf.printf "faults (collapsed): %d\n"
          (Reseed_fault.Fault_sim.fault_count sim)
    | Reseed_fault.Fault_model.Transition_delay ->
        Printf.printf "fault model: transition\n";
        Printf.printf "faults (uncollapsed): %d\n"
          (Reseed_fault.Fault_sim.fault_count sim));
    Printf.printf "test set: %d patterns\n" (Array.length r.Reseed_atpg.Atpg.tests);
    Printf.printf "coverage of detectable faults: %.2f%%\n"
      (Reseed_atpg.Atpg.fault_coverage sim r);
    Printf.printf "untestable: %d, aborted: %d\n"
      (List.length r.Reseed_atpg.Atpg.untestable)
      (List.length r.Reseed_atpg.Atpg.aborted);
    if r.Reseed_atpg.Atpg.stopped_early then
      Printf.printf "degraded: true (%s; partial test set)\n"
        (match Budget.stop_reason budget with
        | Some s -> Budget.stop_reason_name s
        | None -> "budget");
    exit_if_interrupted budget
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Run the deterministic ATPG on a circuit.")
    Term.(
      const run $ circuit_arg $ scale_arg $ engine_arg $ fault_model_arg
      $ deadline_arg $ chaos_arg $ trace_arg $ metrics_arg)

(* solve *)

let solve_cmd =
  let method_conv =
    Arg.enum
      [
        ("exact", Reseed_setcover.Solution.Exact);
        ("greedy", Reseed_setcover.Solution.Greedy_only);
        ("noreduce", Reseed_setcover.Solution.No_reduction_exact);
        ("portfolio", Reseed_setcover.Solution.Portfolio_race);
      ]
  in
  let method_arg =
    Arg.(value & opt method_conv Reseed_setcover.Solution.Exact & info [ "method" ] ~docv:"M" ~doc:"Covering method: $(b,exact), $(b,greedy), $(b,noreduce) or $(b,portfolio) (racing exact/SAT/GRASP legs).")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ] ~doc:"Re-simulate the final solution from scratch.")
  in
  let objective_conv =
    Arg.enum [ ("triplets", Flow.Min_triplets); ("length", Flow.Min_test_length) ]
  in
  let objective_arg =
    Arg.(value & opt objective_conv Flow.Min_triplets & info [ "objective" ] ~docv:"O" ~doc:"$(b,triplets) (paper) or $(b,length) (weighted extension).")
  in
  let run name scale tpg_kind cycles fault_model method_ verify objective deadline
      jobs checkpoint cache chaos trace metrics =
    guard @@ fun () ->
    apply_chaos chaos;
    setup_observability ~trace ~metrics;
    let budget = budget_with_sigint deadline in
    with_jobs jobs @@ fun pool ->
    let store = Artifact.resolve ?dir:cache () in
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit ~fault_model ~budget ?store c in
    let tpg = tpg_of_kind tpg_kind (Circuit.input_count c) in
    let config =
      {
        Flow.default_config with
        Flow.builder = { Builder.default_config with Builder.cycles };
        method_;
        objective;
      }
    in
    let r =
      Flow.run ~config ?pool ~budget ?checkpoint ?store:p.Suite.store
        ~fingerprint:p.Suite.fingerprint p.Suite.sim tpg ~tests:p.Suite.tests
        ~targets:p.Suite.targets
    in
    let stats = r.Flow.solution.Reseed_setcover.Solution.stats in
    Printf.printf "%s + %s TPG (T=%d)\n" (Circuit.name c) tpg.Tpg.name cycles;
    if fault_model <> Reseed_fault.Fault_model.Stuck_at then
      Printf.printf "fault model: %s\n" (Reseed_fault.Fault_model.name fault_model);
    Printf.printf "initial matrix: %dx%d\n" stats.Reseed_setcover.Solution.initial_rows
      stats.Reseed_setcover.Solution.initial_cols;
    Printf.printf "necessary triplets: %d\n"
      (List.length stats.Reseed_setcover.Solution.necessary);
    Printf.printf "reduced matrix: %dx%d\n" stats.Reseed_setcover.Solution.reduced_rows
      stats.Reseed_setcover.Solution.reduced_cols;
    Printf.printf "from exact solver: %d\n"
      (List.length stats.Reseed_setcover.Solution.from_solver);
    (match stats.Reseed_setcover.Solution.uncovered with
    | [] -> ()
    | u ->
        Printf.printf "warning: %d columns coverable by no triplet (skipped)\n"
          (List.length u));
    (match stats.Reseed_setcover.Solution.portfolio_winner with
    | None -> ()
    | Some winner ->
        Printf.printf "portfolio: winner %s, %s\n" winner
          (Reseed_setcover.Ilp.stop_reason_name
             stats.Reseed_setcover.Solution.solver_stop);
        List.iter
          (fun l ->
            Printf.printf
              "  leg %-5s rounds %d  work %d  best %s  improvements %d%s\n"
              l.Reseed_setcover.Portfolio.leg l.Reseed_setcover.Portfolio.rounds
              l.Reseed_setcover.Portfolio.work
              (if l.Reseed_setcover.Portfolio.best_cost = infinity then "-"
               else Printf.sprintf "%g" l.Reseed_setcover.Portfolio.best_cost)
              l.Reseed_setcover.Portfolio.improvements
              (if l.Reseed_setcover.Portfolio.proved then "  PROVED" else ""))
          stats.Reseed_setcover.Solution.portfolio_legs);
    if checkpoint <> None then
      Printf.printf "checkpoint: %d rows restored, %d rows skipped\n"
        r.Flow.initial.Builder.rows_restored r.Flow.initial.Builder.rows_skipped;
    Printf.printf "solution: %d triplets, test length %d, coverage %.2f%%\n"
      (Flow.reseedings r) r.Flow.test_length r.Flow.coverage_pct;
    if r.Flow.dropped_triplets > 0 then
      Printf.printf "warning: %d selected triplets added no coverage and were dropped\n"
        r.Flow.dropped_triplets;
    let degraded = r.Flow.degraded || p.Suite.atpg.Reseed_atpg.Atpg.stopped_early in
    if degraded then
      Printf.printf "degraded: true (%s)\n"
        (match r.Flow.stop_reason with
        | Some s -> Budget.stop_reason_name s
        | None -> "solver budget");
    List.iteri (fun i t -> Format.printf "  %2d: %a@." i Triplet.pp t) r.Flow.final_triplets;
    if verify && not degraded then begin
      let ok = Flow.verify p.Suite.sim tpg r in
      Printf.printf "verification: %s\n" (if ok then "PASSED" else "FAILED");
      if not ok then exit 1
    end;
    if store <> None then Printf.printf "%s\n" (cache_stats_line ());
    exit_if_interrupted budget
  in
  Cmd.v (Cmd.info "solve" ~doc:"Compute a minimal reseeding solution (set covering flow).")
    Term.(
      const run $ circuit_arg $ scale_arg $ tpg_arg $ cycles_arg $ fault_model_arg
      $ method_arg $ verify_arg $ objective_arg $ deadline_arg $ jobs_arg
      $ checkpoint_arg $ cache_arg $ chaos_arg $ trace_arg $ metrics_arg)

(* gatsby *)

let gatsby_cmd =
  let pop_arg = Arg.(value & opt int 12 & info [ "population" ] ~docv:"P") in
  let gens_arg = Arg.(value & opt int 6 & info [ "generations" ] ~docv:"G") in
  let run name scale tpg_kind cycles seed pop gens deadline jobs trace metrics =
    guard @@ fun () ->
    setup_observability ~trace ~metrics;
    let budget = budget_with_sigint deadline in
    with_jobs jobs @@ fun pool ->
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit ~budget c in
    let tpg = tpg_of_kind tpg_kind (Circuit.input_count c) in
    let config =
      {
        Gatsby.default_config with
        Gatsby.cycles;
        ga = { Ga.default_config with Ga.population = pop; generations = gens };
      }
    in
    let rng = Rng.create seed in
    let g = Gatsby.run ~config ?pool ~budget p.Suite.sim tpg ~rng ~targets:p.Suite.targets in
    Printf.printf "%s + %s TPG (T=%d, GA %dx%d)\n" (Circuit.name c) tpg.Tpg.name cycles pop gens;
    Printf.printf "triplets: %d, test length: %d\n"
      (List.length g.Gatsby.triplets) g.Gatsby.test_length;
    Printf.printf "coverage: %.2f%% of targets\n"
      (Stats.pct (Bitvec.count g.Gatsby.detected) (max 1 (Bitvec.count p.Suite.targets)));
    Printf.printf "fault simulations: %d, GA evaluations: %d\n" g.Gatsby.fault_sims
      g.Gatsby.ga_evaluations;
    if g.Gatsby.stopped_early || p.Suite.atpg.Reseed_atpg.Atpg.stopped_early then
      Printf.printf "degraded: true (%s)\n"
        (match Budget.stop_reason budget with
        | Some s -> Budget.stop_reason_name s
        | None -> "budget");
    exit_if_interrupted budget
  in
  Cmd.v (Cmd.info "gatsby" ~doc:"Run the GATSBY-style genetic baseline.")
    Term.(
      const run $ circuit_arg $ scale_arg $ tpg_arg $ cycles_arg $ seed_arg $ pop_arg
      $ gens_arg $ deadline_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* tradeoff *)

let tradeoff_cmd =
  let grid_arg =
    Arg.(value & opt (list int) [ 16; 64; 256; 1024 ] & info [ "grid" ] ~docv:"T1,T2,.." ~doc:"Evolution lengths to sweep (comma-separated integers).")
  in
  let run name scale tpg_kind grid jobs trace metrics =
    guard @@ fun () ->
    setup_observability ~trace ~metrics;
    if grid = [] then Error.fail Error.Usage "--grid needs at least one evolution length";
    List.iter
      (fun t -> if t < 1 then Error.fail Error.Usage "--grid: evolution length %d < 1" t)
      grid;
    with_jobs jobs @@ fun _pool ->
    let c = load_circuit name ~scale in
    let p = Suite.prepare_circuit c in
    let tpg = tpg_of_kind tpg_kind (Circuit.input_count c) in
    let points = Suite.figure2 ~grid p tpg in
    print_string (Tradeoff.render points)
  in
  Cmd.v (Cmd.info "tradeoff" ~doc:"Sweep evolution length T: reseedings vs test length.")
    Term.(
      const run $ circuit_arg $ scale_arg $ tpg_arg $ grid_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

(* batch *)

let batch_cmd =
  let manifest_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MANIFEST" ~doc:"Campaign manifest file (circuits × TPGs × evolution lengths; see the manual).")
  in
  let report_arg =
    Arg.(value & opt string "batch_report.json" & info [ "report" ] ~docv:"FILE" ~doc:"Write the aggregated campaign report to $(docv).")
  in
  let run manifest_path report deadline jobs cache chaos trace metrics =
    guard @@ fun () ->
    apply_chaos chaos;
    setup_observability ~trace ~metrics;
    let budget = budget_with_sigint deadline in
    let store = Artifact.resolve ?dir:cache () in
    let m = Batch.parse_file manifest_path in
    let total = List.length m.Batch.jobs in
    Printf.printf "campaign: %d jobs%s\n%!" total
      (match store with
      | Some s -> Printf.sprintf " (cache: %s)" (Artifact.root s)
      | None -> "");
    (* on_done fires from worker domains; serialise progress output. *)
    let mu = Mutex.create () in
    let on_done _i (r : Batch.job_result) =
      Mutex.lock mu;
      let circuit = r.Batch.job.Batch.circuit in
      let task = Batch.task_to_string r.Batch.job.Batch.task in
      (match (r.Batch.status, r.Batch.metrics) with
      | Batch.Ok, Batch.Reseed_metrics { triplets; test_length; coverage_pct; _ } ->
          Printf.printf "  %-10s %-20s %4d triplets, length %5d, %.2f%%%s\n%!"
            circuit task triplets test_length coverage_pct
            (if r.Batch.degraded then "  [degraded]" else "")
      | ( Batch.Ok,
          Batch.Compress_metrics { entries; dictionary_bits; index_bits; raw_bits } )
        ->
          Printf.printf
            "  %-10s %-20s %4d entries, dict %5d + index %5d bits (raw %d)%s\n%!"
            circuit task entries dictionary_bits index_bits raw_bits
            (if r.Batch.degraded then "  [degraded]" else "")
      | Batch.Skipped, _ ->
          Printf.printf "  %-10s %-20s skipped (budget expired)\n%!" circuit task);
      Mutex.unlock mu
    in
    let results =
      with_jobs jobs @@ fun pool -> Batch.run ?pool ?store ~budget ~on_done m
    in
    Artifact.write_atomic report (Batch.report_json m results);
    let ok = List.length (List.filter (fun r -> r.Batch.status = Batch.Ok) results) in
    Printf.printf "done: %d/%d jobs, report %s\n" ok total report;
    if store <> None then Printf.printf "%s\n" (cache_stats_line ());
    exit_if_interrupted budget
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a manifest-driven campaign: circuits × TPGs × evolution lengths in parallel, with per-job deadlines and an aggregated JSON report.  With $(b,--cache), an interrupted campaign resumes from its completed stages and reproduces the report byte-for-byte.")
    Term.(
      const run $ manifest_arg $ report_arg $ deadline_arg $ jobs_arg $ cache_arg
      $ chaos_arg $ trace_arg $ metrics_arg)

(* compress *)

let compress_cmd =
  let source_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE" ~doc:"Corpus source: a catalog circuit or .bench file (the corpus is its deterministic ATPG test set), or any other existing file read as raw corpus text — one $(b,[01X]) test vector per line, $(b,#) comments allowed.")
  in
  let width_arg =
    Arg.(value & opt int 8 & info [ "block-width"; "w" ] ~docv:"W" ~doc:"Test-data block width in bits (1-62).  Vectors are chopped into $(docv)-bit blocks, the tail block padded with don't-cares.")
  in
  let method_conv =
    Arg.enum
      [
        ("exact", Reseed_setcover.Solution.Exact);
        ("greedy", Reseed_setcover.Solution.Greedy_only);
        ("noreduce", Reseed_setcover.Solution.No_reduction_exact);
        ("portfolio", Reseed_setcover.Solution.Portfolio_race);
      ]
  in
  let method_arg =
    Arg.(value & opt method_conv Reseed_setcover.Solution.Exact & info [ "method" ] ~docv:"M" ~doc:"Covering method: $(b,exact), $(b,greedy), $(b,noreduce) or $(b,portfolio).")
  in
  let run source scale width method_ deadline jobs cache chaos trace metrics =
    guard @@ fun () ->
    apply_chaos chaos;
    setup_observability ~trace ~metrics;
    if width < 1 || width > 62 then
      Error.fail Error.Usage "--block-width %d out of range (1-62)" width;
    let budget = budget_with_sigint deadline in
    with_jobs jobs @@ fun pool ->
    let store = Artifact.resolve ?dir:cache () in
    let corpus, origin =
      if Sys.file_exists source && not (Filename.check_suffix source ".bench") then
        match Artifact.read_opt source with
        | Some text ->
            (Workload.corpus_of_text ~file:source ~width text, "raw corpus " ^ source)
        | None -> Error.fail Error.Input_error "cannot read corpus %s" source
      else begin
        let c = load_circuit source ~scale in
        let p = Suite.prepare_circuit ~budget ?store c in
        ( Workload.corpus_of_patterns ~width p.Suite.tests,
          Printf.sprintf "ATPG test set of %s (%d patterns)" (Circuit.name c)
            (Array.length p.Suite.tests) )
      end
    in
    let r = Workload.solve ~method_ ?pool ~budget ?store corpus in
    let stats = r.Workload.solution.Reseed_setcover.Solution.stats in
    Printf.printf "corpus: %s\n" origin;
    Printf.printf "blocks: %d (%d distinct), width %d\n" r.Workload.corpus_blocks
      r.Workload.distinct_blocks corpus.Workload.width;
    Printf.printf "covering matrix: %dx%d, reduced %dx%d, necessary %d\n"
      stats.Reseed_setcover.Solution.initial_rows
      stats.Reseed_setcover.Solution.initial_cols
      stats.Reseed_setcover.Solution.reduced_rows
      stats.Reseed_setcover.Solution.reduced_cols
      (List.length stats.Reseed_setcover.Solution.necessary);
    Printf.printf "dictionary: %d entries, %d bits\n"
      (List.length r.Workload.entries)
      r.Workload.dictionary_bits;
    let total = r.Workload.dictionary_bits + r.Workload.index_bits in
    Printf.printf "encoded: %d index bits, total %d bits (raw %d, ratio %.2f)\n"
      r.Workload.index_bits total r.Workload.raw_bits
      (if total = 0 then 1.0 else float_of_int r.Workload.raw_bits /. float_of_int total);
    List.iteri
      (fun i e ->
        Printf.printf "  %3d: %s\n" i
          (Workload.entry_to_string ~width:corpus.Workload.width e))
      r.Workload.entries;
    if stats.Reseed_setcover.Solution.degraded then
      Printf.printf "degraded: true (%s)\n"
        (match Budget.stop_reason budget with
        | Some s -> Budget.stop_reason_name s
        | None -> "solver budget");
    if store <> None then Printf.printf "%s\n" (cache_stats_line ());
    exit_if_interrupted budget
  in
  Cmd.v
    (Cmd.info "compress"
       ~doc:"Code-based test-data compression: select a minimum dictionary of fully-specified words covering every ternary test-data block of the corpus, via the same covering pipeline (matrix, reduce, exact end-game) the reseeding flow uses.")
    Term.(
      const run $ source_arg $ scale_arg $ width_arg $ method_arg $ deadline_arg
      $ jobs_arg $ cache_arg $ chaos_arg $ trace_arg $ metrics_arg)

(* fullscan *)

let fullscan_cmd =
  let in_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Sequential .bench file.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output combinational-core .bench path.")
  in
  let run input out =
    guard @@ fun () ->
    let core, dffs = Bench_io.parse_file_full_scan input in
    Bench_io.write_file out core;
    Printf.printf "converted %d flip-flops; wrote %s (%s)\n" dffs out
      (Circuit.stats_line core)
  in
  Cmd.v
    (Cmd.info "fullscan"
       ~doc:"Extract the full-scan combinational core of a sequential .bench circuit.")
    Term.(const run $ in_arg $ out_arg)

(* gen *)

let gen_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .bench path.")
  in
  let run name scale out =
    guard @@ fun () ->
    let c = load_circuit name ~scale in
    Bench_io.write_file out c;
    Printf.printf "wrote %s (%s)\n" out (Circuit.stats_line c)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Emit a catalog circuit as an ISCAS .bench file.")
    Term.(const run $ circuit_arg $ scale_arg $ out_arg)

(* chaos — crash-consistency harness.

   Sweeps every registered faultpoint × a set of fault kinds, each leg a
   child [reseed solve] process with a one-shot injection ([@1]) into a
   fresh cache + checkpoint.  A leg passes when the run either
   - exits 0 with output byte-identical to a clean reference run
     (the fault healed through retries, or never fired), or
   - exits with a documented failure code (the fault surfaced as a
     diagnostic, never a wrong answer), or
   - aborts at the crashpoint (exit 66) and a chaos-free rerun against
     the same cache/checkpoint then reproduces the reference exactly
     (crash consistency: the interrupted state is resumable). *)

let chaos_cmd =
  let circuit_arg =
    Arg.(value & pos 0 string "c432" & info [] ~docv:"CIRCUIT" ~doc:"Circuit the harness sweeps (catalog name or .bench file).")
  in
  let kind_conv =
    Arg.enum (List.map (fun k -> (Faultpoint.kind_name k, k)) Faultpoint.all_kinds)
  in
  let kinds_arg =
    Arg.(value & opt (list kind_conv) Faultpoint.[ Eio; Enospc; Torn; Flip; Fail; Abort ] & info [ "kinds" ] ~docv:"K1,K2,.." ~doc:"Fault kinds to sweep (default: all but latency).")
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun n -> rm_rf (Filename.concat path n))
          (try Sys.readdir path with Sys_error _ -> [||]);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  (* The child must not inherit the harness's own schedule: injection
     reaches it only through an explicit --chaos. *)
  let child_env () =
    Array.of_list
      (List.filter
         (fun s -> not (String.starts_with ~prefix:"RESEED_CHAOS=" s))
         (Array.to_list (Unix.environment ())))
  in
  let run_child args ~out_file =
    let fd = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let pid =
      Unix.create_process_env Sys.executable_name
        (Array.of_list (Sys.executable_name :: args))
        (child_env ()) Unix.stdin fd Unix.stderr
    in
    Unix.close fd;
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s
  in
  (* Cache and checkpoint statistics legitimately differ between cold,
     faulted and resumed runs; everything else must be byte-identical. *)
  let filtered_output file =
    In_channel.with_open_bin file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l ->
           not
             (String.starts_with ~prefix:"cache:" l
             || String.starts_with ~prefix:"checkpoint:" l))
    |> String.concat "\n"
  in
  let run circuit seed kinds jobs =
    guard @@ fun () ->
    Faultpoint.disable ();
    let jobs = Option.value jobs ~default:2 in
    let root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "reseed-chaos-%d" (Unix.getpid ()))
    in
    rm_rf root;
    Artifact.mkdir_p root;
    Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
    let n = ref 0 in
    let fresh_leg () =
      incr n;
      let dir = Filename.concat root (Printf.sprintf "leg-%03d" !n) in
      let sub s = Filename.concat dir s in
      Artifact.mkdir_p dir;
      (sub "cache", sub "ckpt", sub "out")
    in
    let solve_args ~cache ~ckpt chaos =
      [ "solve"; circuit; "--jobs"; string_of_int jobs; "--cache"; cache;
        "--checkpoint"; ckpt ]
      @ (match chaos with Some s -> [ "--chaos"; s ] | None -> [])
    in
    let reference =
      let cache, ckpt, out = fresh_leg () in
      let code = run_child (solve_args ~cache ~ckpt None) ~out_file:out in
      if code <> 0 then
        Error.fail Error.Internal "chaos: clean reference run exited %d" code;
      filtered_output out
    in
    let documented =
      List.map Error.exit_code
        Error.[ Usage; Input_error; Infeasible; Task_failed; Internal; Interrupted ]
    in
    let failures = ref 0 in
    let leg point kind =
      let spec =
        Printf.sprintf "%d:%s=%s@1" seed point (Faultpoint.kind_name kind)
      in
      let cache, ckpt, out = fresh_leg () in
      let code = run_child (solve_args ~cache ~ckpt (Some spec)) ~out_file:out in
      let ok, detail =
        if code = 0 then
          if filtered_output out = reference then (true, "healed, output identical")
          else (false, "exit 0 but output diverged")
        else if code = Faultpoint.abort_exit_code then begin
          let _, _, out2 = fresh_leg () in
          let rcode = run_child (solve_args ~cache ~ckpt None) ~out_file:out2 in
          if rcode = 0 && filtered_output out2 = reference then
            (true, "aborted, resume identical")
          else (false, Printf.sprintf "aborted, resume exit %d/diverged" rcode)
        end
        else if List.mem code documented then
          (true, Printf.sprintf "documented failure (exit %d)" code)
        else (false, Printf.sprintf "undocumented exit %d" code)
      in
      if not ok then incr failures;
      Printf.printf "  %-20s %-8s %-4s %s\n%!" point (Faultpoint.kind_name kind)
        (if ok then "ok" else "FAIL")
        detail
    in
    let points = Faultpoint.all () in
    Printf.printf "chaos: %s, seed %d, %d jobs, %d points x %d kinds\n%!" circuit
      seed jobs (List.length points) (List.length kinds);
    List.iter (fun p -> List.iter (leg p) kinds) points;
    if !failures > 0 then begin
      Printf.printf "chaos: %d leg(s) FAILED\n" !failures;
      exit 1
    end
    else Printf.printf "chaos: all %d legs passed\n" (List.length points * List.length kinds)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Crash-consistency harness: inject one fault per registered faultpoint into child solve runs and check the solution is byte-identical, a documented failure, or resumable after an abort.")
    Term.(const run $ circuit_arg $ seed_arg $ kinds_arg $ jobs_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info_ = Cmd.info "reseed" ~version:"1.0.0" ~doc:"Set-covering reseeding for Functional BIST (DATE 2001 reproduction)." in
  let code =
    Cmd.eval
      (Cmd.group ~default info_
         [
           info_cmd;
           atpg_cmd;
           solve_cmd;
           gatsby_cmd;
           tradeoff_cmd;
           batch_cmd;
           compress_cmd;
           fullscan_cmd;
           gen_cmd;
           chaos_cmd;
         ])
  in
  (* Cmdliner reports CLI parse errors as 124; the documented usage code
     is 2 (see Reseed_util.Error). *)
  exit (if code = 124 then Error.exit_code Error.Usage else code)
